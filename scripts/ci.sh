#!/bin/sh
# CI matrix for usuba-cpp (documented in README.md):
#
#   release  - the default NDEBUG build; proves the ICE channel and the
#              pass checkpoints work without assert().
#   debug    - asserts on, catches invariant slips early.
#   sanitize - ASan + UBSan over the whole suite, including the parser
#              fuzz corpus and the JIT's fork/timeout path.
#
# Usage: scripts/ci.sh [release|debug|sanitize|all]   (default: all)
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MATRIX=${1:-all}

run_job() {
  NAME=$1
  shift
  echo "==== ci job: $NAME ===="
  cmake -B "build-ci-$NAME" -S . "$@"
  cmake --build "build-ci-$NAME" -j "$JOBS"
  (cd "build-ci-$NAME" && ctest --output-on-failure -j "$JOBS")
}

case "$MATRIX" in
release) run_job release -DCMAKE_BUILD_TYPE=Release ;;
debug) run_job debug -DCMAKE_BUILD_TYPE=Debug ;;
sanitize) run_job sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUSUBA_SANITIZE=ON ;;
all)
  run_job release -DCMAKE_BUILD_TYPE=Release
  run_job debug -DCMAKE_BUILD_TYPE=Debug
  run_job sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUSUBA_SANITIZE=ON
  ;;
*)
  echo "unknown job '$MATRIX' (want release|debug|sanitize|all)" >&2
  exit 2
  ;;
esac
