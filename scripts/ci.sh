#!/bin/sh
# CI matrix for usuba-cpp (documented in README.md):
#
#   release  - the default NDEBUG build; proves the ICE channel and the
#              pass checkpoints work without assert().
#   debug    - asserts on, catches invariant slips early.
#   sanitize - ASan + UBSan over the whole suite, including the parser
#              fuzz corpus, the JIT's fork/timeout path, and the layout
#              property tests (SWAR transposition vs the naive oracle),
#              followed by the differential fuzz smoke: a fixed-seed
#              campaign of 200 random programs, each compiled optimized
#              vs -O0 across the vector ISAs and diffed byte for byte
#              (bench/fuzz_differential --seed 0xC0FFEE). Also builds a
#              TSan tree (-DUSUBA_SANITIZE=thread) and runs the
#              work-stealing pool stress tests, the threaded engine
#              tests, and the CipherService suite under it — the races a
#              stealing scheduler or a cross-stream coalescer can have
#              are exactly the ones ASan cannot see.
#   perf     - perf smoke: Release build of the JSON throughput bench,
#              run on two small configs across the {1,2,4,8} thread
#              matrix with telemetry on, the output validated
#              (well-formed JSON, every field present, positive rates,
#              pool_utilization present exactly on rows where the pool
#              engaged, scaling_vs_1t on threads>1 rows, telemetry
#              snapshot attached), the chrome://tracing trace archived
#              as a CI artifact, and the fresh numbers gated against the
#              checked-in BENCH_throughput.json by scripts/bench_gate.py
#              (tolerance: USUBA_BENCH_TOLERANCE, default 3.0x; plus the
#              hardware-aware utilization/scaling floors — see
#              bench_gate.py). Catches runtime-path breakage and
#              catastrophic slowdowns that correctness tests alone would
#              miss. Then the service latency smoke: a short
#              bench/service_latency sweep (1 vs 8 tenants) validated by
#              bench_gate.py --validate-latency (schema, finite
#              percentiles, per-stage histogram blocks, multi-session
#              fill-ratio win), the validator's own self-test run first;
#              the sweep's Prometheus-text metrics export is archived at
#              build-ci-perf/service_metrics.prom, and the sweep is
#              repeated with telemetry off to gate the metrics-on p50
#              against the baseline (USUBA_TELEMETRY_TOLERANCE, default
#              2.0x + 50us slack). Also compiles every
#              bundled program with usubac --remarks=<json>, validates
#              each report (JSON parses, >= 1 remark per back-end pass
#              that ran), and archives the reports as an artifact at
#              build-ci-perf/remarks/. Runs the opt-ablation
#              step: the bitsliced rows measured with USUBA_MIDEND=0 and
#              again with the mid-end on, gated so the optimized build
#              is never slower (tolerance USUBA_ABLATION_TOLERANCE,
#              default 1.25x). Finally the circuit-db step: every
#              known-circuit database entry re-proven against its truth
#              table by ROBDD (gtest CircuitDb.*) and a fixed-budget
#              usubac --superopt run twice and compared byte for byte
#              (determinism makes regenerated entries reviewable).
#
# Usage: scripts/ci.sh [release|debug|sanitize|perf|all]   (default: all)
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MATRIX=${1:-all}

run_job() {
  NAME=$1
  shift
  echo "==== ci job: $NAME ===="
  cmake -B "build-ci-$NAME" -S . "$@"
  cmake --build "build-ci-$NAME" -j "$JOBS"
  (cd "build-ci-$NAME" && ctest --output-on-failure -j "$JOBS")
}

# Differential fuzz smoke under the sanitized build: a fixed-seed
# campaign of random programs, each compiled optimized vs -O0 across the
# vector ISAs (with a sampled JIT leg) and compared byte for byte. The
# seed is pinned so CI is deterministic; any differential writes a
# minimized reproducer into the build tree and fails the job.
fuzz_smoke() {
  echo "==== ci job: sanitize (fuzz smoke) ===="
  cmake --build build-ci-sanitize -j "$JOBS" --target fuzz_differential
  ./build-ci-sanitize/bench/fuzz_differential \
    --seed 0xC0FFEE --count 200 --jit-every 8 \
    --out-dir build-ci-sanitize/fuzz-repro
  echo "fuzz-smoke OK: 200 programs, zero differentials"
}

# TSan over the concurrency surface: the persistent work-stealing pool
# (chunk claiming, worker spawn/park, concurrent job publication), the
# threaded cipher engine on top of it, and the lock-free telemetry
# primitives (histogram buckets, sharded counter cells, the seqlock
# trace ring). Scoped to those suites — TSan is ~10x, and the rest of
# the suite is single-threaded.
tsan_smoke() {
  echo "==== ci job: sanitize (tsan smoke) ===="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DUSUBA_SANITIZE=thread
  cmake --build build-ci-tsan -j "$JOBS" --target runtime_test \
    cipher_api_test service_test support_test
  ./build-ci-tsan/tests/runtime_test --gtest_filter='ThreadPoolStress*'
  ./build-ci-tsan/tests/cipher_api_test \
    --gtest_filter='ThreadedEngine*:ArchDispatch*'
  # The service's coalescer is the one place client threads, the flush
  # timer, and batch dispatch all meet — exactly TSan's territory.
  ./build-ci-tsan/tests/service_test
  # Telemetry's enabled path is lock-free by design (relaxed histogram
  # buckets, sharded cells, seqlock ring): prove it under TSan.
  ./build-ci-tsan/tests/support_test --gtest_filter='Histogram*:Telemetry*'
  echo "tsan-smoke OK: pool stress + threaded engine + cipher service" \
    "+ telemetry primitives clean under TSan"
}

perf_smoke() {
  echo "==== ci job: perf ===="
  cmake -B build-ci-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "build-ci-perf" -j "$JOBS" --target throughput_json
  # Telemetry on: the report carries the cycle-attribution snapshot and
  # the run leaves a chrome://tracing trace behind as the CI artifact.
  USUBA_BENCH_BYTES=262144 USUBA_TELEMETRY=1 \
    USUBA_TRACE_FILE=build-ci-perf/usuba_trace.json \
    ./build-ci-perf/bench/throughput_json \
    --ciphers rectangle,chacha20 --archs sse --threads 1,2,4,8 \
    --out build-ci-perf/BENCH_throughput.json
  python3 - build-ci-perf/BENCH_throughput.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
results = doc["results"]
assert results, "perf-smoke produced no results"
assert doc.get("host_threads", 0) >= 1, "missing/absurd host_threads"
for r in results:
    for key in ("cipher", "slicing", "arch", "engine", "threads",
                "ctr_cycles_per_byte", "ctr_gib_per_s",
                "kernel_cycles_per_byte", "kernel_gates", "kernel_depth",
                "batches_per_call"):
        assert key in r, "missing field: " + key
    assert r["ctr_cycles_per_byte"] > 0, "non-positive cycles/byte"
    assert r["ctr_gib_per_s"] > 0, "non-positive GiB/s"
    assert isinstance(r["kernel_gates"], int) and r["kernel_gates"] > 0, \
        "kernel_gates must be a positive integer"
    assert isinstance(r["kernel_depth"], int) and \
        0 < r["kernel_depth"] <= r["kernel_gates"], \
        "kernel_depth must be a positive integer bounded by kernel_gates"
    # pool_utilization appears exactly when the pool engaged: never on
    # threads=1 rows (no pool ran — the old 0.0 placeholder is gone).
    if r["threads"] == 1:
        assert "pool_utilization" not in r, \
            "threads=1 row has pool_utilization"
        assert "scaling_vs_1t" not in r, "threads=1 row has scaling_vs_1t"
    else:
        assert 0 < r["scaling_vs_1t"], "missing/absurd scaling_vs_1t"
        if "pool_utilization" in r:
            assert 0 < r["pool_utilization"] <= 1.5, \
                "absurd pool_utilization"
telemetry = doc["telemetry"]
assert telemetry["enabled"], "telemetry snapshot missing from report"
assert telemetry["counters"], "telemetry enabled but no counters recorded"
print("perf-smoke OK: %d records, %d telemetry counters"
      % (len(results), len(telemetry["counters"])))
EOF
  test -s build-ci-perf/usuba_trace.json ||
    { echo "perf-smoke: trace artifact missing" >&2; exit 1; }
  echo "perf-smoke: trace artifact at build-ci-perf/usuba_trace.json"
  # The gate validates itself machine-independently first, then holds
  # the fresh numbers against the checked-in baseline.
  python3 scripts/bench_gate.py BENCH_throughput.json --self-test
  python3 scripts/bench_gate.py BENCH_throughput.json \
    build-ci-perf/BENCH_throughput.json
  service_smoke
  opt_ablation
  remarks_report
  circuit_db_smoke
}

# Known-circuit database verification: re-prove every shipped entry
# (hand seeds + the generated CircuitDbEntries.cpp) equivalent to its
# truth table with ROBDDs and re-check the provenance schema against
# the actual circuits, via the CircuitDb gtest suite. Then the
# superoptimizer determinism smoke: the same fixed-budget --superopt
# search run twice on the Rectangle 4->4 table must print byte-identical
# summaries — the property that makes regenerated database entries
# reviewable diffs instead of noise.
circuit_db_smoke() {
  echo "==== ci job: perf (circuit-db verify + superopt determinism) ===="
  cmake --build build-ci-perf -j "$JOBS" --target circuits_test usubac
  ./build-ci-perf/tests/circuits_test --gtest_filter='CircuitDb.*:Superopt.*'
  USUBAC=./build-ci-perf/examples/usubac
  "$USUBAC" --superopt --superopt-budget=50000 rectangle \
    > build-ci-perf/superopt_run1.txt
  "$USUBAC" --superopt --superopt-budget=50000 rectangle \
    > build-ci-perf/superopt_run2.txt
  cmp build-ci-perf/superopt_run1.txt build-ci-perf/superopt_run2.txt ||
    { echo "circuit-db-smoke: --superopt is not deterministic" >&2
      exit 1; }
  grep -q "improved" build-ci-perf/superopt_run1.txt ||
    { echo "circuit-db-smoke: budgeted search found no improvement" >&2
      exit 1; }
  echo "circuit-db-smoke OK: all database entries re-proven," \
    "fixed-budget --superopt deterministic"
}

# Service latency smoke: a short open-loop sweep over the CipherService
# (1 vs 8 tenants at one offered load), validated by the latency mode of
# bench_gate.py — schema, finite percentiles, per-stage histogram
# blocks, and the multi-tenancy claim that 8 sessions coalesce into
# fuller batches than 1. The validator self-tests first so a broken
# latency gate cannot wave a broken report through. The run exports the
# service's Prometheus-text metrics as a CI artifact, then repeats with
# telemetry off and holds the metrics-on p50 against the baseline:
# observability that is not cheap enough to leave on in production
# fails CI here, not in a pager rotation.
service_smoke() {
  echo "==== ci job: perf (service latency smoke) ===="
  cmake --build build-ci-perf -j "$JOBS" --target service_latency
  ./build-ci-perf/bench/service_latency \
    --sessions 1,8 --rps 3000 --seconds 0.25 \
    --metrics build-ci-perf/service_metrics.prom \
    --out build-ci-perf/BENCH_latency.json
  python3 scripts/bench_gate.py --validate-latency --self-test \
    BENCH_latency.json
  python3 scripts/bench_gate.py --validate-latency \
    build-ci-perf/BENCH_latency.json
  test -s build-ci-perf/service_metrics.prom ||
    { echo "service-smoke: metrics artifact missing" >&2; exit 1; }
  grep -q '^usuba_service_requests_total ' \
    build-ci-perf/service_metrics.prom ||
    { echo "service-smoke: metrics export lacks request counter" >&2
      exit 1; }
  echo "service-smoke: metrics artifact at" \
    "build-ci-perf/service_metrics.prom"
  # Telemetry-off baseline for the overhead gate. Same sweep, no
  # stamps, no histograms, no ring writes.
  ./build-ci-perf/bench/service_latency \
    --sessions 1,8 --rps 3000 --seconds 0.25 --no-telemetry \
    --out build-ci-perf/BENCH_latency_notelemetry.json
  # Per-combo p50 with metrics on must stay within a multiplicative
  # tolerance of off, plus an absolute slack: on a busy 1-core CI box a
  # sub-100us p50 can double from scheduler noise alone, so the slack
  # keeps the gate about telemetry cost, not microsecond jitter.
  USUBA_TELEMETRY_TOLERANCE="${USUBA_TELEMETRY_TOLERANCE:-2.0}" \
    python3 - build-ci-perf/BENCH_latency.json \
    build-ci-perf/BENCH_latency_notelemetry.json <<'EOF'
import json, os, sys
with open(sys.argv[1]) as f:
    on = {r["sessions"]: r for r in json.load(f)["results"]}
with open(sys.argv[2]) as f:
    off = {r["sessions"]: r for r in json.load(f)["results"]}
tol = float(os.environ["USUBA_TELEMETRY_TOLERANCE"])
slack_us = 50.0
assert set(on) == set(off), "combo sets differ between on/off runs"
for sessions, row in sorted(on.items()):
    base = off[sessions]
    limit = base["p50_us"] * tol + slack_us
    assert row["p50_us"] <= limit, (
        "telemetry overhead gate: sessions=%d p50 %.1fus with metrics on"
        " vs %.1fus off (limit %.1fus)"
        % (sessions, row["p50_us"], base["p50_us"], limit))
    assert "stages" in row, "metrics-on row lost its stage breakdown"
    assert "stages" not in base, "metrics-off row grew a stage breakdown"
    print("telemetry overhead sessions=%d: p50 %.1fus on vs %.1fus off"
          " (limit %.1fus)"
          % (sessions, row["p50_us"], base["p50_us"], limit))
print("telemetry overhead gate OK (tolerance %.2fx + %.0fus slack)"
      % (tol, slack_us))
EOF
  echo "service-smoke OK: latency report validated, metrics exported," \
    "telemetry overhead within gate"
}

# Mid-end ablation: measure the same rows with the Usuba0 optimizer off
# (USUBA_MIDEND=0) and on, then gate the optimized run against the -O0
# run. The tolerance (default 1.25x) is tighter than the cross-machine
# perf gate because both runs happen back-to-back on the same machine,
# but not zero: single-core CI boxes show ~10% run-to-run jitter, and
# the gate exists to prove the optimizer never makes a row *meaningfully*
# slower. The workload is larger than perf-smoke's to shrink that jitter.
opt_ablation() {
  echo "==== ci job: perf (opt-ablation) ===="
  USUBA_BENCH_BYTES=1048576 USUBA_MIDEND=0 \
    ./build-ci-perf/bench/throughput_json \
    --ciphers des,present --archs sse --threads 1 \
    --out build-ci-perf/BENCH_midend_off.json
  USUBA_BENCH_BYTES=1048576 \
    ./build-ci-perf/bench/throughput_json \
    --ciphers des,present --archs sse --threads 1 \
    --out build-ci-perf/BENCH_midend_on.json
  python3 scripts/bench_gate.py build-ci-perf/BENCH_midend_off.json \
    build-ci-perf/BENCH_midend_on.json \
    --tolerance "${USUBA_ABLATION_TOLERANCE:-1.25}"
  echo "opt-ablation OK: optimized build no slower than -O0 on any row"
}

# Compile every bundled program with remarks on, dump each compile's
# remarks as JSON, validate the reports, and leave them behind as the CI
# artifact explaining what the compiler did to each cipher this build.
remarks_report() {
  echo "==== ci job: perf (remarks reports) ===="
  cmake --build build-ci-perf -j "$JOBS" --target usubac
  USUBAC=./build-ci-perf/examples/usubac
  REMARKS_DIR=build-ci-perf/remarks
  mkdir -p "$REMARKS_DIR"
  # Each program at a slicing that type-checks (Table 2's configs; AES's
  # hslice needs an arch with a shuffle instance).
  for spec in \
    "rectangle -V -w 16" \
    "rectangle_dec -V -w 16" \
    "des -B" \
    "aes -H -w 16 -arch sse" \
    "aes_dec -H -w 16 -arch sse" \
    "chacha20 -V -w 32" \
    "serpent -V -w 32" \
    "serpent_dec -V -w 32" \
    "present -B" \
    "present_dec -B" \
    "trivium -V -w 64"; do
    set -- $spec
    prog=$1
    shift
    "$USUBAC" "$@" --remarks="$REMARKS_DIR/$prog.json" "$prog" \
      -o /dev/null
  done
  python3 - "$REMARKS_DIR" <<'EOF'
import json, os, sys
remarks_dir = sys.argv[1]
reports = sorted(f for f in os.listdir(remarks_dir) if f.endswith(".json"))
assert reports, "no remark reports produced"
total = 0
for name in reports:
    with open(os.path.join(remarks_dir, name)) as f:
        doc = json.load(f)  # must parse: the dump is hand-rendered JSON
    assert doc["input"], name + ": no input recorded"
    assert isinstance(doc["remarks"], list), name + ": remarks not a list"
    passes = set(doc["passes"])
    covered = {r["pass"] for r in doc["remarks"]}
    missing = passes - covered
    assert not missing, "%s: passes ran without a remark: %s" % (
        name, sorted(missing))
    for r in doc["remarks"]:
        for key in ("kind", "pass", "name", "message"):
            assert key in r, "%s: remark missing %s" % (name, key)
    total += len(doc["remarks"])
print("remarks OK: %d reports, %d remarks, every executed pass covered"
      % (len(reports), total))
EOF
  echo "remarks artifact at $REMARKS_DIR/"
}

case "$MATRIX" in
release) run_job release -DCMAKE_BUILD_TYPE=Release ;;
debug) run_job debug -DCMAKE_BUILD_TYPE=Debug ;;
sanitize)
  run_job sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUSUBA_SANITIZE=ON
  fuzz_smoke
  tsan_smoke
  ;;
perf) perf_smoke ;;
all)
  run_job release -DCMAKE_BUILD_TYPE=Release
  run_job debug -DCMAKE_BUILD_TYPE=Debug
  run_job sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUSUBA_SANITIZE=ON
  fuzz_smoke
  tsan_smoke
  perf_smoke
  ;;
*)
  echo "unknown job '$MATRIX' (want release|debug|sanitize|perf|all)" >&2
  exit 2
  ;;
esac
