#!/usr/bin/env python3
"""Throughput regression gate for usuba-cpp.

Compares a freshly produced bench/throughput_json report against the
checked-in baseline (BENCH_throughput.json), row by row. Rows are keyed
by (cipher, slicing, arch, threads) and judged on ctr_cycles_per_byte:
a row fails when

    fresh_cycles_per_byte > baseline_cycles_per_byte * tolerance

The tolerance is a ratio (3.0 = "no more than 3x slower"), deliberately
loose by default because CI machines differ from the machine that
produced the baseline; it bounds catastrophic regressions (a kernel
silently falling off the native engine, an accidental O(n^2) in the
transposition) rather than chasing single-digit percent noise. Override
per run with --tolerance or USUBA_BENCH_TOLERANCE.

Rows whose engine differs between baseline and fresh (e.g. "native" vs
"interp" on a machine without a host C compiler) are reported and
skipped: cross-engine cycle counts are not comparable, and engine
availability is a property of the machine, not the change under test.

A baseline row that is absent from the fresh report is a FAILURE, not a
skip, whenever the fresh report's "filters" key says the row was in
scope (a cipher/arch/threads combination the run was asked to measure).
Silently vanished rows are how a cipher that stops compiling — or a
(cipher, arch) pair that falls off the bench matrix — used to slip
through the gate. Rows excluded by the filters (CI's perf-smoke only
measures a subset) are still skipped; a fresh report with no "filters"
key at all is held to full coverage.

Beyond the baseline comparison, the gate holds the *fresh* report to
absolute thread-scaling quality floors — the numbers the work-stealing
engine is accountable for, hardware-aware via the report's host_threads
field (rows asking for more threads than the host has cores cannot
physically scale and are skipped, which keeps one-core CI boxes honest
without muting real machines):

  * every threads>=2 row over a large batch (batches_per_call >=
    4*threads) must report pool_utilization (absence means the threaded
    engine never engaged) and clear --utilization-floor (default 0.7,
    USUBA_UTILIZATION_FLOOR);
  * every threads>=4 such row must clear --scaling-floor on
    scaling_vs_1t (default 1.5, USUBA_SCALING_FLOOR) when its threads=1
    anchor row exists.

threads=1 rows legitimately carry no pool_utilization key (no pool ran;
older reports wrote a misleading 0.0) and are never held to the floors.
Reports without host_threads (pre-scaling-matrix format) skip the
quality gates entirely.

The per-row kernel_gates / kernel_depth keys (the compiled kernel's gate
count and critical-path depth, machine-independent by construction) are
validated exactly: finite positive integers, identical across the
thread rows of one (cipher, slicing, arch) group, and the gates*depth
product must not regress against the baseline group — the gate the
superoptimizer's database entries are accountable to. Reports without
the keys (pre-superopt format) skip this check.

--validate-latency switches the gate into a second mode: the positional
report is a BENCH_latency.json produced by bench/service_latency, and it
is validated standalone (no baseline comparison) — non-empty results,
unique (sessions, offered_rps) keys, positive completed counts, finite
non-NaN p50/p99/mean/achieved_rps/fill_ratio with p50 <= p99, and the
multi-tenancy claim itself: wherever a sweep has both single- and
multi-session rows at one offered load, the multi-session fill_ratio
must beat the single-session one. Each row must also carry the
per-stage histogram block ("stages": queue_wait / coalesce_wait /
kernel / callback, each with a non-negative integer count and finite
non-negative p50_us / p99_us / mean_us, p99 >= p50, and at least one
sample across the four stages) that service_latency records from the
service's lifecycle histograms. Combine with --self-test to exercise
the latency validator against injected corruptions instead.

--self-test runs the gate's own logic machine-independently: the
baseline must pass against itself, must fail once a synthetic 2x
slowdown is injected into one row, must fail when an in-scope row is
deleted from the fresh report, and must pass when the deleted row is
excluded by the fresh report's filters; synthetic reports exercise the
quality floors (utilization failure, scaling failure, over-subscribed
and small-batch skips, old-format skip). CI runs this before the real
comparison so a broken gate cannot silently wave regressions through.

Exit codes: 0 pass, 1 regression (or failed self-test), 2 usage/IO.
"""

import argparse
import copy
import json
import math
import os
import sys


class ReportError(Exception):
    """A structurally broken report row: a missing or non-numeric
    ctr_cycles_per_byte. Raised instead of letting a KeyError traceback
    (or a silently-false NaN comparison) escape; main() turns it into a
    clear message and exit code 2."""


def row_cpb(row, name, which):
    """The row's ctr_cycles_per_byte as a usable float, or ReportError."""
    try:
        value = row["ctr_cycles_per_byte"]
    except KeyError:
        raise ReportError("%s report: row %s has no ctr_cycles_per_byte "
                          "field" % (which, name))
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReportError("%s report: row %s has a non-numeric "
                          "ctr_cycles_per_byte (%r)" % (which, name, value))
    value = float(value)
    if math.isnan(value):
        # NaN compares false against everything, so without this check a
        # NaN row would print "ok" and wave the gate through.
        raise ReportError("%s report: row %s has NaN ctr_cycles_per_byte"
                          % (which, name))
    return value


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("bench_gate: cannot read %s: %s" % (path, e), file=sys.stderr)
        sys.exit(2)
    if "results" not in doc or not isinstance(doc["results"], list):
        print("bench_gate: %s has no results array" % path, file=sys.stderr)
        sys.exit(2)
    # Older reports have no "telemetry" key; nothing here depends on it.
    return doc


def row_key(row):
    return (row["cipher"], row["slicing"], row["arch"], row["threads"])


def index_rows(doc, path):
    rows = {}
    for row in doc["results"]:
        try:
            key = row_key(row)
        except KeyError as e:
            print("bench_gate: %s: row missing %s" % (path, e),
                  file=sys.stderr)
            sys.exit(2)
        if key in rows:
            print("bench_gate: %s: duplicate row %s" % (path, key),
                  file=sys.stderr)
            sys.exit(2)
        rows[key] = row
    return rows


def row_in_scope(key, filters):
    """Whether the fresh run was asked to measure this baseline row.

    `filters` is the fresh report's "filters" object ({"ciphers": [...],
    "archs": [...], "threads": [...]}, empty list = no filter). None
    (older report without the key) means full coverage: every baseline
    row is in scope.
    """
    if filters is None:
        return True
    cipher, _slicing, arch, threads = key
    ciphers = filters.get("ciphers") or []
    archs = filters.get("archs") or []
    thread_list = filters.get("threads") or []
    if ciphers and cipher not in ciphers:
        return False
    if archs and arch not in archs:
        return False
    if thread_list and str(threads) not in [str(t) for t in thread_list]:
        return False
    return True


def compare(baseline, fresh, tolerance, quiet=False):
    """Returns (failures, compared, skipped) comparing fresh vs baseline.

    failures is a list of (row name, reason) strings covering both
    regressions and in-scope rows missing from the fresh report.
    """
    base_rows = index_rows(baseline, "baseline")
    fresh_rows = index_rows(fresh, "fresh")
    filters = fresh.get("filters")
    failures = []
    compared = 0
    skipped = []

    for key, base in sorted(base_rows.items()):
        name = "%s/%s/%s/t%d" % key
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            if row_in_scope(key, filters):
                failures.append((name, "in-scope baseline row missing from "
                                       "fresh report"))
            else:
                skipped.append((name, "excluded by fresh report filters"))
            continue
        if base.get("engine") != fresh_row.get("engine"):
            skipped.append((name, "engine %s -> %s (not comparable)" %
                            (base.get("engine"), fresh_row.get("engine"))))
            continue
        base_cpb = row_cpb(base, name, "baseline")
        fresh_cpb = row_cpb(fresh_row, name, "fresh")
        if base_cpb <= 0 or fresh_cpb <= 0:
            skipped.append((name, "non-positive cycles/byte"))
            continue
        compared += 1
        ratio = fresh_cpb / base_cpb
        verdict = "ok" if ratio <= tolerance else "FAIL"
        if not quiet:
            print("  %-32s %8.4f -> %8.4f cpb  (%.2fx, limit %.2fx)  %s" %
                  (name, base_cpb, fresh_cpb, ratio, tolerance, verdict))
        if ratio > tolerance:
            failures.append((name, "%.2fx slower (limit %.2fx)" %
                             (ratio, tolerance)))

    if not quiet:
        for name, why in skipped:
            print("  %-32s skipped: %s" % (name, why))
    return failures, compared, skipped


def check_quality(fresh, util_floor, scaling_floor, quiet=False):
    """Holds the fresh report to absolute thread-scaling floors.

    Returns (failures, checked, skipped) like compare(). Hardware-aware:
    a row is only accountable when the host could physically satisfy it
    (threads <= host_threads) and the workload was large enough to
    amortize the pool (batches_per_call >= 4 * threads). threads=1 rows
    are never checked — no pool ran, so pool_utilization is rightly
    absent. Reports without host_threads (pre-scaling-matrix format)
    skip everything rather than guess at the host.
    """
    failures = []
    checked = 0
    skipped = []
    host = fresh.get("host_threads")
    if not isinstance(host, int) or host < 1:
        skipped.append(("(report)", "no host_threads field — quality "
                                    "floors need the new report format"))
        if not quiet:
            for name, why in skipped:
                print("  %-32s quality skipped: %s" % (name, why))
        return failures, checked, skipped

    for row in fresh["results"]:
        try:
            key = row_key(row)
        except KeyError:
            continue  # index_rows already diagnoses malformed rows
        name = "%s/%s/%s/t%d" % key
        threads = row["threads"]
        if not isinstance(threads, int) or threads < 2:
            continue
        if threads > host:
            skipped.append((name, "threads %d > host cores %d (cannot "
                                  "physically scale)" % (threads, host)))
            continue
        batches = row.get("batches_per_call")
        if not isinstance(batches, (int, float)) or batches < 4 * threads:
            skipped.append((name, "batch too small to amortize the pool "
                                  "(%r batches/call, want >= %d)" %
                            (batches, 4 * threads)))
            continue
        checked += 1
        util = row.get("pool_utilization")
        if not isinstance(util, (int, float)) or isinstance(util, bool):
            failures.append((name, "threaded engine never engaged: no "
                                   "pool_utilization on a threads=%d "
                                   "large-batch row" % threads))
        elif util < util_floor:
            failures.append((name, "pool_utilization %.3f below floor "
                                   "%.2f" % (util, util_floor)))
        elif not quiet:
            print("  %-32s pool_utilization %.3f  (floor %.2f)  ok" %
                  (name, util, util_floor))
        if threads >= 4:
            scaling = row.get("scaling_vs_1t")
            if not isinstance(scaling, (int, float)):
                # No threads=1 anchor in this run (e.g. --threads 4,8
                # subset): scaling is unmeasurable, not failing.
                skipped.append((name, "no scaling_vs_1t (threads=1 anchor "
                                      "row not in this run)"))
            elif scaling < scaling_floor:
                failures.append((name, "scaling_vs_1t %.3f below floor "
                                       "%.2f" % (scaling, scaling_floor)))
            elif not quiet:
                print("  %-32s scaling_vs_1t   %.3f  (floor %.2f)  ok" %
                      (name, scaling, scaling_floor))

    if not quiet:
        for name, why in skipped:
            print("  %-32s quality skipped: %s" % (name, why))
    return failures, checked, skipped


def check_kernel_metrics(baseline, fresh, quiet=False):
    """Validates the per-row kernel_gates / kernel_depth keys.

    Returns (failures, checked, skipped) like compare(). The metrics are
    machine-independent (they count gates in the compiled kernel, not
    cycles), so the gate is exact: every fresh row must carry both keys
    as finite positive integers, all rows of one (cipher, slicing, arch)
    group must agree (thread count cannot change the kernel), and the
    gates x depth product must not regress against the baseline group.
    Old-format reports without the keys anywhere skip cleanly.
    """
    failures = []
    checked = 0
    skipped = []

    def group_of(row):
        return (row["cipher"], row["slicing"], row["arch"])

    if not any("kernel_gates" in r or "kernel_depth" in r
               for r in fresh["results"]):
        skipped.append(("(report)", "no kernel_gates/kernel_depth keys — "
                                    "pre-superopt report format"))
        if not quiet:
            for name, why in skipped:
                print("  %-32s kernel metrics skipped: %s" % (name, why))
        return failures, checked, skipped

    def metric(row, name, field):
        value = row.get(field)
        if value is None:
            failures.append((name, "missing %s" % field))
            return None
        if (isinstance(value, bool) or not isinstance(value, int)
                or isinstance(value, float)):
            failures.append((name, "%s is not an integer (%r)" %
                             (field, value)))
            return None
        if value <= 0:
            failures.append((name, "%s must be positive, got %d" %
                             (field, value)))
            return None
        return value

    groups = {}
    for row in fresh["results"]:
        try:
            name = "%s/%s/%s/t%d" % row_key(row)
            group = group_of(row)
        except KeyError:
            continue  # index_rows already diagnoses malformed rows
        gates = metric(row, name, "kernel_gates")
        depth = metric(row, name, "kernel_depth")
        if gates is None or depth is None:
            continue
        checked += 1
        if depth > gates:
            failures.append((name, "kernel_depth %d exceeds kernel_gates "
                                   "%d (the critical path is a chain "
                                   "through the gates)" % (depth, gates)))
            continue
        seen = groups.get(group)
        if seen is None:
            groups[group] = (gates, depth, name)
        elif seen[:2] != (gates, depth):
            failures.append((name, "kernel metrics %d/%d disagree with %s "
                                   "(%d/%d): thread count cannot change "
                                   "the kernel" %
                             (gates, depth, seen[2], seen[0], seen[1])))

    base_groups = {}
    for row in baseline["results"]:
        try:
            group = group_of(row)
        except KeyError:
            continue
        gates, depth = row.get("kernel_gates"), row.get("kernel_depth")
        if isinstance(gates, int) and isinstance(depth, int) \
                and not isinstance(gates, bool) and not isinstance(depth,
                                                                   bool):
            base_groups.setdefault(group, (gates, depth))
    for group, (gates, depth, name) in sorted(groups.items()):
        base = base_groups.get(group)
        if base is None:
            skipped.append(("%s/%s/%s" % group,
                            "no kernel metrics in baseline"))
            continue
        if gates * depth > base[0] * base[1]:
            failures.append((name, "kernel gates*depth regressed: "
                                   "%d*%d > baseline %d*%d" %
                             (gates, depth, base[0], base[1])))
        elif not quiet:
            print("  %-32s kernel %5d gates depth %3d  (baseline %d/%d)  "
                  "ok" % ("%s/%s/%s" % group, gates, depth, base[0],
                          base[1]))

    if not quiet:
        for name, why in skipped:
            print("  %-32s kernel metrics skipped: %s" % (name, why))
    return failures, checked, skipped


def _metric_row(threads=1, gates=100, depth=10, cipher="serpent",
                arch="avx2"):
    """A synthetic row for the kernel-metric self-tests."""
    row = _quality_row(threads, cipher=cipher, arch=arch)
    if gates is not None:
        row["kernel_gates"] = gates
    if depth is not None:
        row["kernel_depth"] = depth
    return row


def kernel_metrics_self_test():
    """Corruption-case validation of the kernel_gates/kernel_depth gate."""
    base = {"results": [_metric_row()]}

    # Identical metrics: clean pass. An improvement also passes.
    for label, fresh_row in [("identical metrics", _metric_row()),
                             ("improved metrics",
                              _metric_row(gates=80, depth=8))]:
        failures, checked, _ = check_kernel_metrics(
            base, {"results": [fresh_row]}, quiet=True)
        if failures or checked != 1:
            print("bench_gate self-test FAILED: %s gave failures %r "
                  "over %d checked rows (want 0 over 1)" %
                  (label, failures, checked))
            return False

    # Each corruption must produce exactly one failure naming the cause.
    cases = [
        ("missing kernel_depth", _metric_row(depth=None), "missing"),
        ("NaN kernel_gates", _metric_row(gates=float("nan")),
         "not an integer"),
        ("float kernel_depth", _metric_row(depth=9.5), "not an integer"),
        ("boolean kernel_gates", _metric_row(gates=True),
         "not an integer"),
        ("zero kernel_gates", _metric_row(gates=0), "positive"),
        ("negative kernel_depth", _metric_row(depth=-3), "positive"),
        ("depth above gates", _metric_row(gates=10, depth=11),
         "critical path"),
        ("gates*depth regression", _metric_row(gates=150, depth=12),
         "regressed"),
    ]
    for label, row, want in cases:
        failures, _, _ = check_kernel_metrics(base, {"results": [row]},
                                              quiet=True)
        if len(failures) != 1 or want not in failures[0][1]:
            print("bench_gate self-test FAILED: %s gave failures %r "
                  "(want one containing %r)" % (label, failures, want))
            return False

    # Thread rows of one group must agree on the (thread-invariant)
    # kernel; old-format fresh reports skip rather than fail.
    split = {"results": [_metric_row(threads=1),
                         _metric_row(threads=2, gates=99)]}
    failures, _, _ = check_kernel_metrics(base, split, quiet=True)
    if len(failures) != 1 or "disagree" not in failures[0][1]:
        print("bench_gate self-test FAILED: disagreeing thread rows gave "
              "failures %r (want one 'disagree')" % (failures,))
        return False
    old = {"results": [_quality_row(1)]}
    failures, checked, skipped = check_kernel_metrics(base, old, quiet=True)
    if failures or checked != 0 or not skipped:
        print("bench_gate self-test FAILED: old-format report gave "
              "failures %r, %d checked, %d skipped (want clean skip)" %
              (failures, checked, len(skipped)))
        return False

    print("bench_gate kernel-metric self-test OK: identical/improved "
          "metrics pass; missing/non-integer/non-positive keys, "
          "depth > gates, gates*depth regressions and disagreeing "
          "thread rows fail; old-format reports skip")
    return True


def _quality_row(threads, util=None, scaling=None, batches=64,
                 cipher="chacha20", arch="avx2"):
    """A synthetic fresh-report row for the quality self-tests."""
    row = {"cipher": cipher, "slicing": "vslice", "arch": arch,
           "threads": threads, "engine": "native",
           "ctr_cycles_per_byte": 4.0, "batches_per_call": batches}
    if util is not None:
        row["pool_utilization"] = util
    if scaling is not None:
        row["scaling_vs_1t"] = scaling
    return row


def quality_self_test():
    """Synthetic-report validation of the hardware-aware quality floors."""
    util_floor, scaling_floor = 0.7, 1.5

    # A healthy scaling matrix on an 8-core host: clean pass.
    good = {"host_threads": 8, "results": [
        _quality_row(1),  # no pool_utilization key: legitimate, unchecked
        _quality_row(2, util=0.9),
        _quality_row(4, util=0.85, scaling=1.9),
        _quality_row(8, util=0.8, scaling=3.1),
    ]}
    failures, checked, _ = check_quality(good, util_floor, scaling_floor,
                                         quiet=True)
    if failures or checked != 3:
        print("bench_gate self-test FAILED: healthy quality doc gave "
              "failures %r over %d checked rows (want 0 over 3)" %
              (failures, checked))
        return False

    # Each floor must trip on its own: bad utilization, missing
    # utilization (pool never engaged), bad scaling.
    for label, row, want in [
            ("low utilization", _quality_row(2, util=0.3), "below floor"),
            ("missing utilization", _quality_row(2), "never engaged"),
            ("low scaling", _quality_row(4, util=0.9, scaling=1.1),
             "scaling_vs_1t"),
    ]:
        doc = {"host_threads": 8, "results": [row]}
        failures, _, _ = check_quality(doc, util_floor, scaling_floor,
                                       quiet=True)
        if len(failures) != 1 or want not in failures[0][1]:
            print("bench_gate self-test FAILED: %s gave failures %r "
                  "(want one containing %r)" % (label, failures, want))
            return False

    # Hardware-awareness: rows the host cannot satisfy, rows too small to
    # amortize the pool, and old-format reports are skips, not failures.
    for label, doc in [
            ("over-subscribed row",
             {"host_threads": 2, "results": [_quality_row(4)]}),
            ("small-batch row",
             {"host_threads": 8,
              "results": [_quality_row(4, batches=8)]}),
            ("old-format report", {"results": [_quality_row(4)]}),
    ]:
        failures, checked, skipped = check_quality(doc, util_floor,
                                                   scaling_floor, quiet=True)
        if failures or checked != 0 or not skipped:
            print("bench_gate self-test FAILED: %s gave failures %r, "
                  "%d checked, %d skipped (want clean skip)" %
                  (label, failures, checked, len(skipped)))
            return False

    print("bench_gate quality self-test OK: healthy matrix passes; low/"
          "missing utilization and low scaling fail; over-subscribed, "
          "small-batch and old-format rows skip")
    return True


LATENCY_NUMERIC = ("achieved_rps", "p50_us", "p99_us", "mean_us",
                   "fill_ratio")

LATENCY_STAGES = ("queue_wait", "coalesce_wait", "kernel", "callback")
LATENCY_STAGE_NUMERIC = ("p50_us", "p99_us", "mean_us")


def validate_stages(row, name, failures):
    """Per-stage histogram block of one latency row: all four lifecycle
    stages present, integer count >= 0, finite non-negative percentiles
    with p99 >= p50, and at least one sample across the stages (an
    all-zero block means the service recorded nothing — a wiring bug,
    not a quiet run, since every completed request records queue_wait
    and callback samples)."""
    stages = row.get("stages")
    if not isinstance(stages, dict):
        failures.append((name, "stages block missing or not an object"))
        return
    total_count = 0
    for stage in LATENCY_STAGES:
        block = stages.get(stage)
        if not isinstance(block, dict):
            failures.append((name, "stage %s missing" % stage))
            continue
        count = block.get("count")
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            failures.append((name, "stage %s count missing or negative"
                             % stage))
            continue
        total_count += count
        bad = False
        for key in LATENCY_STAGE_NUMERIC:
            value = block.get(key)
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or not math.isfinite(value) or \
                    value < 0:
                failures.append((name, "stage %s %s missing or not finite"
                                 % (stage, key)))
                bad = True
        if not bad and block["p99_us"] < block["p50_us"]:
            failures.append((name, "stage %s p99_us %.1f < p50_us %.1f" %
                             (stage, block["p99_us"], block["p50_us"])))
    if total_count < 1:
        failures.append((name, "stages carry zero samples"))


def validate_latency(doc, path):
    """Failure strings for a BENCH_latency.json document.

    Schema: a non-empty results array whose rows are keyed by unique
    (sessions, offered_rps) pairs, each carrying a positive completed
    count, finite (non-NaN, non-inf) achieved_rps / p50_us / p99_us /
    mean_us / fill_ratio with p50 <= p99, and a well-formed per-stage
    histogram block (validate_stages). Beyond the shape, the
    service's multi-tenancy claim is held structurally: wherever the
    sweep has both a sessions=1 row and multi-session rows at the same
    offered load, the best multi-session fill_ratio must exceed the
    single-session one — the coalescer demonstrably packing cross-stream
    traffic into fuller batches.
    """
    failures = []
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        return [(path, "missing or empty results array")]
    seen = set()
    for i, row in enumerate(rows):
        name = "latency row %d" % i
        sessions = row.get("sessions")
        rps = row.get("offered_rps")
        if not isinstance(sessions, int) or sessions < 1 or \
                not isinstance(rps, int) or rps < 1:
            failures.append((name, "bad sessions/offered_rps key"))
            continue
        name = "latency row (sessions=%d, rps=%d)" % (sessions, rps)
        if (sessions, rps) in seen:
            failures.append((name, "duplicate (sessions, offered_rps)"))
            continue
        seen.add((sessions, rps))
        completed = row.get("completed")
        if not isinstance(completed, int) or completed < 1:
            failures.append((name, "completed missing or < 1"))
        bad = False
        for key in LATENCY_NUMERIC:
            value = row.get(key)
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or not math.isfinite(value):
                failures.append((name, "%s missing or not finite" % key))
                bad = True
        if not bad and row["p99_us"] < row["p50_us"]:
            failures.append((name, "p99_us %.1f < p50_us %.1f" %
                             (row["p99_us"], row["p50_us"])))
        validate_stages(row, name, failures)
    # The coalescing claim: best multi-session fill beats single-session
    # at the same offered load.
    by_rps = {}
    for row in rows:
        if isinstance(row.get("fill_ratio"), (int, float)):
            by_rps.setdefault(row.get("offered_rps"), []).append(row)
    for rps, group in sorted(by_rps.items()):
        singles = [r["fill_ratio"] for r in group if r.get("sessions") == 1]
        multis = [r["fill_ratio"] for r in group
                  if isinstance(r.get("sessions"), int) and r["sessions"] > 1]
        if singles and multis and max(multis) <= max(singles):
            failures.append(
                ("latency rps=%s" % rps,
                 "multi-session fill_ratio %.4f does not beat "
                 "single-session %.4f" % (max(multis), max(singles))))
    return failures


def latency_self_test(doc):
    """Validates the latency validator itself: the real report passes,
    and each class of corruption (NaN p50, missing p99, duplicate key,
    zero completed, inverted fill-ratio claim) is caught."""
    failures = validate_latency(doc, "baseline")
    if failures:
        print("bench_gate latency self-test FAILED: clean report gave %r"
              % failures)
        return False

    def corrupt(mutate, label):
        broken = copy.deepcopy(doc)
        mutate(broken)
        got = validate_latency(broken, "synthetic")
        if not got:
            print("bench_gate latency self-test FAILED: %s passed" % label)
            return False
        return True

    def nan_p50(d):
        d["results"][0]["p50_us"] = float("nan")

    def drop_p99(d):
        del d["results"][0]["p99_us"]

    def dup_key(d):
        d["results"].append(copy.deepcopy(d["results"][0]))

    def zero_completed(d):
        d["results"][0]["completed"] = 0

    def invert_fill(d):
        for row in d["results"]:
            row["fill_ratio"] = 0.5 if row["sessions"] == 1 else 0.01

    def no_stages(d):
        del d["results"][0]["stages"]

    def drop_stage(d):
        del d["results"][0]["stages"]["kernel"]

    def nan_stage_p50(d):
        d["results"][0]["stages"]["queue_wait"]["p50_us"] = float("nan")

    def invert_stage(d):
        block = d["results"][0]["stages"]["coalesce_wait"]
        block["p50_us"], block["p99_us"] = 50.0, 1.0

    def zero_stage_counts(d):
        for block in d["results"][0]["stages"].values():
            block["count"] = 0

    cases = [(nan_p50, "NaN p50_us"), (drop_p99, "missing p99_us"),
             (dup_key, "duplicate row key"),
             (zero_completed, "zero completed"),
             (invert_fill, "inverted fill-ratio claim"),
             (no_stages, "missing stages block"),
             (drop_stage, "missing kernel stage"),
             (nan_stage_p50, "NaN stage p50_us"),
             (invert_stage, "stage p99 < p50"),
             (zero_stage_counts, "all-zero stage counts")]
    for mutate, label in cases:
        if not corrupt(mutate, label):
            return False
    print("bench_gate latency self-test OK: clean report passes; NaN/"
          "missing percentiles, duplicate keys, empty combos, a "
          "non-coalescing fill ratio and malformed/missing/inverted/"
          "empty stage blocks are rejected")
    return True


def self_test(baseline, tolerance):
    """Machine-independent gate validation: baseline passes against
    itself; an injected 2x slowdown must fail; a deleted in-scope row
    must fail; the same deletion under excluding filters must pass."""
    failures, compared, _ = compare(baseline, baseline, tolerance, quiet=True)
    if failures or compared == 0:
        print("bench_gate self-test FAILED: baseline vs itself gave %d "
              "failures over %d rows" % (len(failures), compared))
        return False

    slowed = copy.deepcopy(baseline)
    victim = slowed["results"][0]
    victim["ctr_cycles_per_byte"] *= 2.0 * max(tolerance, 1.0)
    failures, _, _ = compare(baseline, slowed, tolerance, quiet=True)
    if len(failures) != 1:
        print("bench_gate self-test FAILED: injected slowdown in %s "
              "produced %d failures (want 1)" %
              (row_key(victim), len(failures)))
        return False

    # Deleting an in-scope row must fail: a cipher silently falling off
    # the bench matrix is a regression, not noise.
    gutted = copy.deepcopy(baseline)
    dropped = gutted["results"].pop(0)
    failures, _, _ = compare(baseline, gutted, tolerance, quiet=True)
    if len(failures) != 1 or "missing" not in failures[0][1]:
        print("bench_gate self-test FAILED: deleted row %s produced "
              "failures %r (want exactly one 'missing' failure)" %
              (row_key(dropped), failures))
        return False

    # ... but the same deletion is fine when the fresh report's filters
    # say the row was never in scope (CI's perf-smoke subset runs).
    kept_ciphers = sorted({r["cipher"] for r in gutted["results"]} -
                          {dropped["cipher"]})
    if kept_ciphers:
        gutted["filters"] = {"ciphers": kept_ciphers, "archs": [],
                             "threads": []}
        gutted["results"] = [r for r in gutted["results"]
                             if r["cipher"] in kept_ciphers]
        failures, compared, _ = compare(baseline, gutted, tolerance,
                                        quiet=True)
        if failures or compared == 0:
            print("bench_gate self-test FAILED: filtered deletion of %s "
                  "gave failures %r over %d rows (want clean pass)" %
                  (row_key(dropped), failures, compared))
            return False

    # A missing or NaN ctr_cycles_per_byte must be a clear ReportError,
    # not a traceback (missing) or a silent pass (NaN compares false
    # against the tolerance, so the row would print "ok").
    for corruption in ("missing", "nan"):
        broken = copy.deepcopy(baseline)
        if corruption == "missing":
            del broken["results"][0]["ctr_cycles_per_byte"]
        else:
            broken["results"][0]["ctr_cycles_per_byte"] = float("nan")
        try:
            compare(baseline, broken, tolerance, quiet=True)
        except ReportError:
            pass
        else:
            print("bench_gate self-test FAILED: %s ctr_cycles_per_byte "
                  "did not raise ReportError" % corruption)
            return False

    print("bench_gate self-test OK: clean baseline passes, injected "
          "%.1fx slowdown fails, deleted in-scope row fails, filtered "
          "deletion passes, broken cycles-per-byte fields are rejected"
          % (2.0 * max(tolerance, 1.0)))
    return quality_self_test() and kernel_metrics_self_test()


def main():
    parser = argparse.ArgumentParser(
        description="compare a fresh throughput report against the baseline")
    parser.add_argument("baseline", help="checked-in BENCH_throughput.json")
    parser.add_argument("fresh", nargs="?",
                        help="freshly produced report (omit with --self-test)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("USUBA_BENCH_TOLERANCE",
                                                     "3.0")),
                        help="max allowed fresh/baseline cycles-per-byte "
                             "ratio (default: USUBA_BENCH_TOLERANCE or 3.0)")
    parser.add_argument("--utilization-floor", type=float,
                        default=float(os.environ.get(
                            "USUBA_UTILIZATION_FLOOR", "0.7")),
                        help="min pool_utilization on threads>=2 "
                             "large-batch rows the host can satisfy "
                             "(default: USUBA_UTILIZATION_FLOOR or 0.7)")
    parser.add_argument("--scaling-floor", type=float,
                        default=float(os.environ.get(
                            "USUBA_SCALING_FLOOR", "1.5")),
                        help="min scaling_vs_1t on threads>=4 such rows "
                             "(default: USUBA_SCALING_FLOOR or 1.5)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the gate against the baseline alone")
    parser.add_argument("--validate-latency", action="store_true",
                        help="treat the positional report as a "
                             "BENCH_latency.json service-latency report and "
                             "validate it standalone (schema, finite "
                             "percentiles, multi-session fill-ratio win); "
                             "with --self-test, exercise the latency "
                             "validator against injected corruptions")
    args = parser.parse_args()

    if args.tolerance <= 0:
        print("bench_gate: tolerance must be positive", file=sys.stderr)
        return 2

    if args.validate_latency:
        doc = load_report(args.baseline)
        if args.self_test:
            return 0 if latency_self_test(doc) else 1
        failures = validate_latency(doc, args.baseline)
        if failures:
            print("bench_gate: %d failing latency checks in %s:" %
                  (len(failures), args.baseline))
            for name, reason in failures:
                print("  %s: %s" % (name, reason))
            return 1
        rows = doc["results"]
        print("bench_gate: latency report OK (%d combos, peak fill_ratio "
              "%.4f)" % (len(rows),
                         max(r["fill_ratio"] for r in rows)))
        return 0

    baseline = load_report(args.baseline)
    try:
        if args.self_test:
            return 0 if self_test(baseline, args.tolerance) else 1

        if not args.fresh:
            parser.error("fresh report required unless --self-test")
        fresh = load_report(args.fresh)
        print("bench_gate: %s vs %s (tolerance %.2fx)" %
              (args.fresh, args.baseline, args.tolerance))
        failures, compared, skipped = compare(baseline, fresh,
                                              args.tolerance)
        q_failures, q_checked, q_skipped = check_quality(
            fresh, args.utilization_floor, args.scaling_floor)
        if q_checked:
            print("bench_gate: quality floors checked on %d rows "
                  "(utilization >= %.2f, scaling >= %.2f)" %
                  (q_checked, args.utilization_floor, args.scaling_floor))
        failures += q_failures
        k_failures, k_checked, _k_skipped = check_kernel_metrics(
            baseline, fresh)
        if k_checked:
            print("bench_gate: kernel gates/depth validated on %d rows "
                  "(exact no-regression on gates*depth)" % k_checked)
        failures += k_failures
    except ReportError as e:
        print("bench_gate: %s" % e, file=sys.stderr)
        return 2
    if failures:
        print("bench_gate: %d failing rows (of %d compared, tolerance "
              "%.2fx):" % (len(failures), compared, args.tolerance))
        for name, reason in failures:
            print("  %s: %s" % (name, reason))
        return 1
    if compared == 0:
        print("bench_gate: no comparable rows (%d skipped) — treating as "
              "pass; the gate needs at least one shared (cipher, slicing, "
              "arch, threads) row with matching engines" % len(skipped))
        return 0
    print("bench_gate: OK (%d rows compared, %d skipped)" %
          (compared, len(skipped)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
