# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/cbackend_test[1]_include.cmake")
include("/root/repo/build/tests/cipher_api_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
