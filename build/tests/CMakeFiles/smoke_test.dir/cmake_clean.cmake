file(REMOVE_RECURSE
  "CMakeFiles/smoke_test.dir/integration/AesTest.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/AesTest.cpp.o.d"
  "CMakeFiles/smoke_test.dir/integration/Chacha20Test.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/Chacha20Test.cpp.o.d"
  "CMakeFiles/smoke_test.dir/integration/DesTest.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/DesTest.cpp.o.d"
  "CMakeFiles/smoke_test.dir/integration/ExtensionsTest.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/ExtensionsTest.cpp.o.d"
  "CMakeFiles/smoke_test.dir/integration/RectangleTest.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/RectangleTest.cpp.o.d"
  "CMakeFiles/smoke_test.dir/integration/SerpentTest.cpp.o"
  "CMakeFiles/smoke_test.dir/integration/SerpentTest.cpp.o.d"
  "smoke_test"
  "smoke_test.pdb"
  "smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
