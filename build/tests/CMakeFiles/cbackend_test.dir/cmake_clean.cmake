file(REMOVE_RECURSE
  "CMakeFiles/cbackend_test.dir/cbackend/CEmitterTest.cpp.o"
  "CMakeFiles/cbackend_test.dir/cbackend/CEmitterTest.cpp.o.d"
  "CMakeFiles/cbackend_test.dir/cbackend/NativeJitTest.cpp.o"
  "CMakeFiles/cbackend_test.dir/cbackend/NativeJitTest.cpp.o.d"
  "cbackend_test"
  "cbackend_test.pdb"
  "cbackend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbackend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
