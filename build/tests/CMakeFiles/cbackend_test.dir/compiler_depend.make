# Empty compiler generated dependencies file for cbackend_test.
# This may be replaced when dependencies are built.
