# Empty compiler generated dependencies file for cipher_api_test.
# This may be replaced when dependencies are built.
