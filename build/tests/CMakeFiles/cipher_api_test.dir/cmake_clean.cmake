file(REMOVE_RECURSE
  "CMakeFiles/cipher_api_test.dir/ciphers/UsubaCipherTest.cpp.o"
  "CMakeFiles/cipher_api_test.dir/ciphers/UsubaCipherTest.cpp.o.d"
  "cipher_api_test"
  "cipher_api_test.pdb"
  "cipher_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cipher_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
