file(REMOVE_RECURSE
  "CMakeFiles/trivium_keystream.dir/trivium_keystream.cpp.o"
  "CMakeFiles/trivium_keystream.dir/trivium_keystream.cpp.o.d"
  "trivium_keystream"
  "trivium_keystream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trivium_keystream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
