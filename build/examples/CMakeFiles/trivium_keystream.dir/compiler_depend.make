# Empty compiler generated dependencies file for trivium_keystream.
# This may be replaced when dependencies are built.
