# Empty dependencies file for ctr_file_encrypt.
# This may be replaced when dependencies are built.
