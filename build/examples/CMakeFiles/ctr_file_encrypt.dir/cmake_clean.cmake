file(REMOVE_RECURSE
  "CMakeFiles/ctr_file_encrypt.dir/ctr_file_encrypt.cpp.o"
  "CMakeFiles/ctr_file_encrypt.dir/ctr_file_encrypt.cpp.o.d"
  "ctr_file_encrypt"
  "ctr_file_encrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctr_file_encrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
