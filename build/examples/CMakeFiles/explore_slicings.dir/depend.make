# Empty dependencies file for explore_slicings.
# This may be replaced when dependencies are built.
