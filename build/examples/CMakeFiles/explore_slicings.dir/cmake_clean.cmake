file(REMOVE_RECURSE
  "CMakeFiles/explore_slicings.dir/explore_slicings.cpp.o"
  "CMakeFiles/explore_slicings.dir/explore_slicings.cpp.o.d"
  "explore_slicings"
  "explore_slicings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_slicings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
