file(REMOVE_RECURSE
  "CMakeFiles/usubac.dir/usubac.cpp.o"
  "CMakeFiles/usubac.dir/usubac.cpp.o.d"
  "usubac"
  "usubac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usubac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
