# Empty compiler generated dependencies file for usubac.
# This may be replaced when dependencies are built.
