# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_cipher "/root/repo/build/examples/custom_cipher")
set_tests_properties(example_custom_cipher PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trivium_keystream "/root/repo/build/examples/trivium_keystream")
set_tests_properties(example_trivium_keystream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_usubac_emit "/root/repo/build/examples/usubac" "-V" "-w" "16" "-arch" "avx2" "rectangle" "-o" "/dev/null")
set_tests_properties(example_usubac_emit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_usubac_dump_u0 "/root/repo/build/examples/usubac" "-B" "-w" "16" "-dump-u0" "rectangle" "-o" "/dev/null")
set_tests_properties(example_usubac_dump_u0 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
