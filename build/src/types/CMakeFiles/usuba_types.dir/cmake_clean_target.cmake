file(REMOVE_RECURSE
  "libusuba_types.a"
)
