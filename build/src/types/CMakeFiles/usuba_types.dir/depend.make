# Empty dependencies file for usuba_types.
# This may be replaced when dependencies are built.
