file(REMOVE_RECURSE
  "CMakeFiles/usuba_types.dir/Arch.cpp.o"
  "CMakeFiles/usuba_types.dir/Arch.cpp.o.d"
  "CMakeFiles/usuba_types.dir/Type.cpp.o"
  "CMakeFiles/usuba_types.dir/Type.cpp.o.d"
  "CMakeFiles/usuba_types.dir/TypeClasses.cpp.o"
  "CMakeFiles/usuba_types.dir/TypeClasses.cpp.o.d"
  "libusuba_types.a"
  "libusuba_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
