file(REMOVE_RECURSE
  "libusuba_frontend.a"
)
