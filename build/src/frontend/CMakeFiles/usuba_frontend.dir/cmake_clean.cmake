file(REMOVE_RECURSE
  "CMakeFiles/usuba_frontend.dir/Ast.cpp.o"
  "CMakeFiles/usuba_frontend.dir/Ast.cpp.o.d"
  "CMakeFiles/usuba_frontend.dir/AstPrinter.cpp.o"
  "CMakeFiles/usuba_frontend.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/usuba_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/usuba_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/usuba_frontend.dir/Parser.cpp.o"
  "CMakeFiles/usuba_frontend.dir/Parser.cpp.o.d"
  "libusuba_frontend.a"
  "libusuba_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
