# Empty compiler generated dependencies file for usuba_frontend.
# This may be replaced when dependencies are built.
