file(REMOVE_RECURSE
  "libusuba_support.a"
)
