file(REMOVE_RECURSE
  "CMakeFiles/usuba_support.dir/BitUtils.cpp.o"
  "CMakeFiles/usuba_support.dir/BitUtils.cpp.o.d"
  "CMakeFiles/usuba_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/usuba_support.dir/Diagnostics.cpp.o.d"
  "libusuba_support.a"
  "libusuba_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
