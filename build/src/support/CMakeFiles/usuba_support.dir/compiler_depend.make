# Empty compiler generated dependencies file for usuba_support.
# This may be replaced when dependencies are built.
