file(REMOVE_RECURSE
  "libusuba_ciphers.a"
)
