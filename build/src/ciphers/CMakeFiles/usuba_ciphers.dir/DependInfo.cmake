
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ciphers/DesTables.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/DesTables.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/DesTables.cpp.o.d"
  "/root/repo/src/ciphers/RefAes.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefAes.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefAes.cpp.o.d"
  "/root/repo/src/ciphers/RefChacha20.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefChacha20.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefChacha20.cpp.o.d"
  "/root/repo/src/ciphers/RefDes.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefDes.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefDes.cpp.o.d"
  "/root/repo/src/ciphers/RefPresent.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefPresent.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefPresent.cpp.o.d"
  "/root/repo/src/ciphers/RefRectangle.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefRectangle.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefRectangle.cpp.o.d"
  "/root/repo/src/ciphers/RefSerpent.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefSerpent.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefSerpent.cpp.o.d"
  "/root/repo/src/ciphers/RefTrivium.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefTrivium.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/RefTrivium.cpp.o.d"
  "/root/repo/src/ciphers/UsubaCipher.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaCipher.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaCipher.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourceAes.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceAes.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceAes.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourceChacha20.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceChacha20.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceChacha20.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourceDes.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceDes.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceDes.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourcePresent.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourcePresent.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourcePresent.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourceSerpent.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceSerpent.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceSerpent.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourceTrivium.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceTrivium.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourceTrivium.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSources.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSources.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSources.cpp.o.d"
  "/root/repo/src/ciphers/UsubaSourcesDec.cpp" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourcesDec.cpp.o" "gcc" "src/ciphers/CMakeFiles/usuba_ciphers.dir/UsubaSourcesDec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cbackend/CMakeFiles/usuba_cbackend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/usuba_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/usuba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/usuba_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/usuba_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/usuba_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/usuba_types.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/usuba_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
