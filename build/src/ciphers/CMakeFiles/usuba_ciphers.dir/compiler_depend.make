# Empty compiler generated dependencies file for usuba_ciphers.
# This may be replaced when dependencies are built.
