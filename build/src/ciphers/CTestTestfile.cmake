# CMake generated Testfile for 
# Source directory: /root/repo/src/ciphers
# Build directory: /root/repo/build/src/ciphers
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
