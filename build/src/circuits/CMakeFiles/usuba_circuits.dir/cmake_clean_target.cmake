file(REMOVE_RECURSE
  "libusuba_circuits.a"
)
