file(REMOVE_RECURSE
  "CMakeFiles/usuba_circuits.dir/AesTowerSbox.cpp.o"
  "CMakeFiles/usuba_circuits.dir/AesTowerSbox.cpp.o.d"
  "CMakeFiles/usuba_circuits.dir/Circuit.cpp.o"
  "CMakeFiles/usuba_circuits.dir/Circuit.cpp.o.d"
  "libusuba_circuits.a"
  "libusuba_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
