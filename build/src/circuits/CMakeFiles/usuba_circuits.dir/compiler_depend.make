# Empty compiler generated dependencies file for usuba_circuits.
# This may be replaced when dependencies are built.
