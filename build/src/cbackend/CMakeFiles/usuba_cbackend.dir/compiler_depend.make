# Empty compiler generated dependencies file for usuba_cbackend.
# This may be replaced when dependencies are built.
