file(REMOVE_RECURSE
  "libusuba_cbackend.a"
)
