
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cbackend/CEmitter.cpp" "src/cbackend/CMakeFiles/usuba_cbackend.dir/CEmitter.cpp.o" "gcc" "src/cbackend/CMakeFiles/usuba_cbackend.dir/CEmitter.cpp.o.d"
  "/root/repo/src/cbackend/NativeJit.cpp" "src/cbackend/CMakeFiles/usuba_cbackend.dir/NativeJit.cpp.o" "gcc" "src/cbackend/CMakeFiles/usuba_cbackend.dir/NativeJit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usuba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/usuba_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/usuba_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/usuba_types.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/usuba_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
