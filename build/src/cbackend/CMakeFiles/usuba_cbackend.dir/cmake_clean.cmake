file(REMOVE_RECURSE
  "CMakeFiles/usuba_cbackend.dir/CEmitter.cpp.o"
  "CMakeFiles/usuba_cbackend.dir/CEmitter.cpp.o.d"
  "CMakeFiles/usuba_cbackend.dir/NativeJit.cpp.o"
  "CMakeFiles/usuba_cbackend.dir/NativeJit.cpp.o.d"
  "libusuba_cbackend.a"
  "libusuba_cbackend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_cbackend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
