file(REMOVE_RECURSE
  "CMakeFiles/usuba_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/usuba_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/usuba_interp.dir/SimdReg.cpp.o"
  "CMakeFiles/usuba_interp.dir/SimdReg.cpp.o.d"
  "libusuba_interp.a"
  "libusuba_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
