# Empty dependencies file for usuba_interp.
# This may be replaced when dependencies are built.
