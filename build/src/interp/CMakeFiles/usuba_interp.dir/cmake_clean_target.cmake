file(REMOVE_RECURSE
  "libusuba_interp.a"
)
