file(REMOVE_RECURSE
  "libusuba_runtime.a"
)
