# Empty compiler generated dependencies file for usuba_runtime.
# This may be replaced when dependencies are built.
