file(REMOVE_RECURSE
  "CMakeFiles/usuba_runtime.dir/Dudect.cpp.o"
  "CMakeFiles/usuba_runtime.dir/Dudect.cpp.o.d"
  "CMakeFiles/usuba_runtime.dir/KernelRunner.cpp.o"
  "CMakeFiles/usuba_runtime.dir/KernelRunner.cpp.o.d"
  "CMakeFiles/usuba_runtime.dir/Layout.cpp.o"
  "CMakeFiles/usuba_runtime.dir/Layout.cpp.o.d"
  "libusuba_runtime.a"
  "libusuba_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
