
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Dudect.cpp" "src/runtime/CMakeFiles/usuba_runtime.dir/Dudect.cpp.o" "gcc" "src/runtime/CMakeFiles/usuba_runtime.dir/Dudect.cpp.o.d"
  "/root/repo/src/runtime/KernelRunner.cpp" "src/runtime/CMakeFiles/usuba_runtime.dir/KernelRunner.cpp.o" "gcc" "src/runtime/CMakeFiles/usuba_runtime.dir/KernelRunner.cpp.o.d"
  "/root/repo/src/runtime/Layout.cpp" "src/runtime/CMakeFiles/usuba_runtime.dir/Layout.cpp.o" "gcc" "src/runtime/CMakeFiles/usuba_runtime.dir/Layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/usuba_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/usuba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/usuba_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/usuba_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/usuba_types.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/usuba_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
