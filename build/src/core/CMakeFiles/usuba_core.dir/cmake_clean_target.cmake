file(REMOVE_RECURSE
  "libusuba_core.a"
)
