file(REMOVE_RECURSE
  "CMakeFiles/usuba_core.dir/AstPasses.cpp.o"
  "CMakeFiles/usuba_core.dir/AstPasses.cpp.o.d"
  "CMakeFiles/usuba_core.dir/Compiler.cpp.o"
  "CMakeFiles/usuba_core.dir/Compiler.cpp.o.d"
  "CMakeFiles/usuba_core.dir/Normalize.cpp.o"
  "CMakeFiles/usuba_core.dir/Normalize.cpp.o.d"
  "CMakeFiles/usuba_core.dir/Passes.cpp.o"
  "CMakeFiles/usuba_core.dir/Passes.cpp.o.d"
  "CMakeFiles/usuba_core.dir/TypeChecker.cpp.o"
  "CMakeFiles/usuba_core.dir/TypeChecker.cpp.o.d"
  "CMakeFiles/usuba_core.dir/Usuba0.cpp.o"
  "CMakeFiles/usuba_core.dir/Usuba0.cpp.o.d"
  "libusuba_core.a"
  "libusuba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
