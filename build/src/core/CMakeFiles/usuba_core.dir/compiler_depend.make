# Empty compiler generated dependencies file for usuba_core.
# This may be replaced when dependencies are built.
