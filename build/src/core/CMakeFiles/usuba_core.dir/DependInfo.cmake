
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AstPasses.cpp" "src/core/CMakeFiles/usuba_core.dir/AstPasses.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/AstPasses.cpp.o.d"
  "/root/repo/src/core/Compiler.cpp" "src/core/CMakeFiles/usuba_core.dir/Compiler.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/Compiler.cpp.o.d"
  "/root/repo/src/core/Normalize.cpp" "src/core/CMakeFiles/usuba_core.dir/Normalize.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/Normalize.cpp.o.d"
  "/root/repo/src/core/Passes.cpp" "src/core/CMakeFiles/usuba_core.dir/Passes.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/Passes.cpp.o.d"
  "/root/repo/src/core/TypeChecker.cpp" "src/core/CMakeFiles/usuba_core.dir/TypeChecker.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/TypeChecker.cpp.o.d"
  "/root/repo/src/core/Usuba0.cpp" "src/core/CMakeFiles/usuba_core.dir/Usuba0.cpp.o" "gcc" "src/core/CMakeFiles/usuba_core.dir/Usuba0.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/usuba_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/usuba_types.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/usuba_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/usuba_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
