file(REMOVE_RECURSE
  "CMakeFiles/table2_optimal_configs.dir/table2_optimal_configs.cpp.o"
  "CMakeFiles/table2_optimal_configs.dir/table2_optimal_configs.cpp.o.d"
  "table2_optimal_configs"
  "table2_optimal_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_optimal_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
