# Empty dependencies file for table2_optimal_configs.
# This may be replaced when dependencies are built.
