# Empty dependencies file for table3_reference_comparison.
# This may be replaced when dependencies are built.
