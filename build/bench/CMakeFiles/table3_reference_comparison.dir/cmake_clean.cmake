file(REMOVE_RECURSE
  "CMakeFiles/table3_reference_comparison.dir/table3_reference_comparison.cpp.o"
  "CMakeFiles/table3_reference_comparison.dir/table3_reference_comparison.cpp.o.d"
  "table3_reference_comparison"
  "table3_reference_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_reference_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
