# Empty compiler generated dependencies file for ablation_unrolling.
# This may be replaced when dependencies are built.
