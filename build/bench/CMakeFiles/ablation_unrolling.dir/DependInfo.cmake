
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_unrolling.cpp" "bench/CMakeFiles/ablation_unrolling.dir/ablation_unrolling.cpp.o" "gcc" "bench/CMakeFiles/ablation_unrolling.dir/ablation_unrolling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/usuba_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ciphers/CMakeFiles/usuba_ciphers.dir/DependInfo.cmake"
  "/root/repo/build/src/cbackend/CMakeFiles/usuba_cbackend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/usuba_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/usuba_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/usuba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/usuba_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/usuba_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/usuba_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/usuba_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
