file(REMOVE_RECURSE
  "CMakeFiles/ablation_unrolling.dir/ablation_unrolling.cpp.o"
  "CMakeFiles/ablation_unrolling.dir/ablation_unrolling.cpp.o.d"
  "ablation_unrolling"
  "ablation_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
