file(REMOVE_RECURSE
  "CMakeFiles/ablation_inlining.dir/ablation_inlining.cpp.o"
  "CMakeFiles/ablation_inlining.dir/ablation_inlining.cpp.o.d"
  "ablation_inlining"
  "ablation_inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
