# Empty dependencies file for ablation_inlining.
# This may be replaced when dependencies are built.
