# Empty compiler generated dependencies file for transposition_cost.
# This may be replaced when dependencies are built.
