file(REMOVE_RECURSE
  "CMakeFiles/transposition_cost.dir/transposition_cost.cpp.o"
  "CMakeFiles/transposition_cost.dir/transposition_cost.cpp.o.d"
  "transposition_cost"
  "transposition_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transposition_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
