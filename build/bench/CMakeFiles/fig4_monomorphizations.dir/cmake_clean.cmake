file(REMOVE_RECURSE
  "CMakeFiles/fig4_monomorphizations.dir/fig4_monomorphizations.cpp.o"
  "CMakeFiles/fig4_monomorphizations.dir/fig4_monomorphizations.cpp.o.d"
  "fig4_monomorphizations"
  "fig4_monomorphizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_monomorphizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
