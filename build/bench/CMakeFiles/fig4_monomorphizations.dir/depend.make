# Empty dependencies file for fig4_monomorphizations.
# This may be replaced when dependencies are built.
