file(REMOVE_RECURSE
  "CMakeFiles/usuba_bench_support.dir/BenchSupport.cpp.o"
  "CMakeFiles/usuba_bench_support.dir/BenchSupport.cpp.o.d"
  "libusuba_bench_support.a"
  "libusuba_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usuba_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
