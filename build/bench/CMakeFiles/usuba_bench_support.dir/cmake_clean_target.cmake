file(REMOVE_RECURSE
  "libusuba_bench_support.a"
)
