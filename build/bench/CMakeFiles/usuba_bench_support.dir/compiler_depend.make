# Empty compiler generated dependencies file for usuba_bench_support.
# This may be replaced when dependencies are built.
