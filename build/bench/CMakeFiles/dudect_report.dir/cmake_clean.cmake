file(REMOVE_RECURSE
  "CMakeFiles/dudect_report.dir/dudect_report.cpp.o"
  "CMakeFiles/dudect_report.dir/dudect_report.cpp.o.d"
  "dudect_report"
  "dudect_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dudect_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
