# Empty dependencies file for dudect_report.
# This may be replaced when dependencies are built.
