//===- custom_cipher.cpp - Bring your own Usuba program --------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library is not limited to the bundled primitives: this example
/// defines a brand-new toy SPN in Usuba source *inside the program*,
/// compiles it for several slicings and architectures, runs it through
/// the batching runtime, checks all specializations agree, and prints
/// the generated C for one of them.
///
/// (The toy cipher is for demonstration only — 8 rounds of a 4-bit S-box
/// and a rotation is not cryptography.)
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"
#include "core/Compiler.h"
#include "runtime/KernelRunner.h"

#include <cstdio>
#include <random>
#include <vector>

using namespace usuba;

namespace {

// A 32-bit toy SPN: 2 rows of 16 bits, the Rectangle S-box applied
// columnwise on (row0, row1, row0 <<< 8, row1 <<< 8)... simply a small
// demonstration of tables, foralls and rotations.
const char *ToySource = R"(
table S (in:v4) returns (out:v4) {
  6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2
}

node Round (st:u16x4, k:u16x4) returns (out:u16x4)
vars t:u16x4
let
  t = S(st ^ k);
  out[0] = t[0] <<< 1;
  out[1] = t[1] <<< 3;
  out[2] = t[2] <<< 5;
  out[3] = t[3] <<< 7
tel

node Toy (plain:u16x4, key:u16x4[8]) returns (cipher:u16x4)
vars r:u16x4[8]
let
  r[0] = plain;
  forall i in [0,6] { r[i+1] = Round(r[i], key[i]) }
  cipher = r[7] ^ key[7]
tel
)";

std::vector<uint64_t> runToy(Dir Direction, bool Bitslice,
                             const Arch &Target, unsigned NumBlocks,
                             bool &Native) {
  CompileOptions Options;
  Options.Direction = Direction;
  Options.WordBits = 16;
  Options.Bitslice = Bitslice;
  Options.Target = &Target;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(ToySource, Options, Diags);
  if (!Kernel) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return {};
  }
  Native = false;
  KernelRunner Runner(std::move(*Kernel));
  (void)Native;

  // Fixed pseudo-random inputs: NumBlocks blocks of 4 atoms + 32 key
  // atoms, expanded to bit-atoms under -B.
  std::mt19937_64 Rng(0x70F);
  std::vector<uint64_t> Keys(8 * 4);
  for (uint64_t &K : Keys)
    K = Rng() & 0xFFFF;
  std::vector<uint64_t> Blocks(size_t{NumBlocks} * 4);
  for (uint64_t &B : Blocks)
    B = Rng() & 0xFFFF;

  auto Expand = [&](const std::vector<uint64_t> &Atoms) {
    if (!Bitslice)
      return Atoms;
    std::vector<uint64_t> Bits(Atoms.size() * 16);
    for (size_t I = 0; I < Atoms.size(); ++I)
      for (unsigned J = 0; J < 16; ++J)
        Bits[I * 16 + J] = (Atoms[I] >> (15 - J)) & 1;
    return Bits;
  };

  std::vector<uint64_t> KeyAtoms = Expand(Keys);
  std::vector<uint64_t> Result;
  const unsigned Batch = Runner.blocksPerCall();
  for (unsigned Base = 0; Base < NumBlocks; Base += Batch) {
    std::vector<uint64_t> BatchAtoms(size_t{Batch} * 4, 0);
    for (unsigned B = 0; B < Batch && Base + B < NumBlocks; ++B)
      for (unsigned A = 0; A < 4; ++A)
        BatchAtoms[size_t{B} * 4 + A] = Blocks[size_t{Base + B} * 4 + A];
    std::vector<uint64_t> In = Expand(BatchAtoms);
    std::vector<uint64_t> Out(In.size());
    Runner.runBatch({{false, In.data()}, {true, KeyAtoms.data()}},
                    Out.data());
    for (unsigned B = 0; B < Batch && Base + B < NumBlocks; ++B)
      for (unsigned A = 0; A < 4; ++A) {
        uint64_t Atom = 0;
        if (Bitslice) {
          for (unsigned J = 0; J < 16; ++J)
            Atom = (Atom << 1) | (Out[(size_t{B} * 4 + A) * 16 + J] & 1);
        } else {
          Atom = Out[size_t{B} * 4 + A];
        }
        Result.push_back(Atom);
      }
  }
  return Result;
}

} // namespace

int main() {
  std::printf("compiling an ad-hoc cipher defined in this very file...\n\n");

  struct Variant {
    const char *Name;
    Dir Direction;
    bool Bitslice;
    const Arch *Target;
  };
  const Variant Variants[] = {
      {"vslice/gp64", Dir::Vert, false, &archGP64()},
      {"vslice/avx2", Dir::Vert, false, &archAVX2()},
      {"hslice/sse", Dir::Horiz, false, &archSSE()},
      {"bitslice/avx512", Dir::Vert, true, &archAVX512()},
      {"vslice/neon (simulated)", Dir::Vert, false, &archNeon()},
  };

  std::vector<uint64_t> Reference;
  bool AllAgree = true;
  for (const Variant &V : Variants) {
    bool Native = false;
    std::vector<uint64_t> Out =
        runToy(V.Direction, V.Bitslice, *V.Target, 100, Native);
    if (Out.empty()) {
      std::printf("  %-26s failed to compile\n", V.Name);
      AllAgree = false;
      continue;
    }
    if (Reference.empty())
      Reference = Out;
    bool Agrees = Out == Reference;
    AllAgree &= Agrees;
    std::printf("  %-26s 100 blocks, %s\n", V.Name,
                Agrees ? "agrees with the first variant" : "DISAGREES");
  }

  // Show a slice of the generated C for the AVX2 specialization.
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(ToySource, Options, Diags);
  if (Kernel) {
    EmittedC C = emitC(Kernel->Prog);
    std::printf("\ngenerated C (avx2, %zu instructions), first lines:\n",
                Kernel->InstrCount);
    size_t Shown = 0, Pos = 0;
    while (Shown < 12 && Pos < C.Code.size()) {
      size_t End = C.Code.find('\n', Pos);
      std::printf("  %s\n", C.Code.substr(Pos, End - Pos).c_str());
      Pos = End + 1;
      ++Shown;
    }
  }
  return AllAgree ? 0 : 1;
}
