//===- quickstart.cpp - First steps with usuba-cpp ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: compile the paper's Rectangle program (Figure 1)
/// for this machine, encrypt a message in counter mode, decrypt it back,
/// and peek at what the compiler did (slicing, interleaving, instruction
/// count, native vs simulated execution).
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build --target quickstart
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace usuba;

int main() {
  // 1. Pick a cipher and a slicing. Vertical slicing of Rectangle packs
  //    one 16-bit row per SIMD element — 16 blocks in parallel on AVX2.
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archAVX2();
  Config.Interleave = true; // Table 2's winning flag for Rectangle

  CipherResult Result = UsubaCipher::compile(Config);
  if (!Result) {
    // On failure the result carries the compiler's diagnostics (with
    // source locations), not just a flat string.
    std::fprintf(stderr, "compilation failed:\n%s\n",
                 Result.errorText().c_str());
    return 1;
  }
  UsubaCipher Cipher = std::move(Result).take();

  CipherStats Stats = Cipher.stats();
  std::printf("compiled rectangle/vslice for %s: %zu instructions, "
              "%u blocks per call, interleave x%u, %s execution\n",
              Config.Target->Name, Cipher.kernel().InstrCount,
              Cipher.blocksPerCall(), Cipher.kernel().InterleaveFactor(),
              Stats.Native ? "native (JIT-compiled C)" : "simulated");
  if (!Stats.Native)
    std::printf("  (fallback: %s — %s)\n",
                engineFallbackName(Stats.Fallback),
                Stats.FallbackDetail.c_str());

  // 2. Encrypt. Counter mode turns the block cipher into a stream cipher
  //    (and is what makes slicing shine: every block is independent).
  const uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const uint8_t Nonce[8] = {0x4e, 0x4f, 0x4e, 0x43, 0x45, 0x21, 0x21, 0x21};
  Cipher.setKey(Key, sizeof(Key));

  std::string Message = "Usuba: high-throughput and constant-time "
                        "ciphers, by construction.";
  std::string Buffer = Message;
  Cipher.ctrXor(reinterpret_cast<uint8_t *>(Buffer.data()), Buffer.size(),
                Nonce, /*Counter=*/0);
  std::printf("ciphertext (hex): ");
  for (unsigned char C : Buffer.substr(0, 24))
    std::printf("%02x", C);
  std::printf("...\n");

  // 3. Decrypt: counter mode is its own inverse.
  Cipher.ctrXor(reinterpret_cast<uint8_t *>(Buffer.data()), Buffer.size(),
                Nonce, /*Counter=*/0);
  std::printf("roundtrip: %s\n",
              Buffer == Message ? "ok" : "MISMATCH (bug!)");

  // 4. The same source compiles to every slicing the type system admits.
  std::printf("\nslicings supported by rectangle on %s:",
              Config.Target->Name);
  for (SlicingMode Mode :
       UsubaCipher::supportedSlicings(CipherId::Rectangle, *Config.Target))
    std::printf(" %s", slicingName(Mode));
  std::printf("\nslicings supported by chacha20 on %s:",
              Config.Target->Name);
  for (SlicingMode Mode :
       UsubaCipher::supportedSlicings(CipherId::Chacha20, *Config.Target))
    std::printf(" %s", slicingName(Mode));
  std::printf("  (no bitslice: 32-bit addition has no Boolean instance)\n");
  return Buffer == Message ? 0 : 1;
}
