//===- explore_slicings.cpp - One program, every specialization -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline capability (Section 4.3): a single polymorphic
/// Usuba program specializes, at no source cost, to every slicing mode
/// and instruction set — "allowing us to carry the first performance
/// evaluation of slicing modes across instruction sets". This example
/// walks every cipher x slicing x architecture combination, reports
/// which type-check (and why the others do not), confirms that all the
/// compiled variants agree bit-for-bit on the same plaintext, and prints
/// a small throughput survey.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace usuba;

namespace {

double megabytesPerSecond(UsubaCipher &Cipher, std::vector<uint8_t> &Buffer,
                          const uint8_t *Nonce) {
  // One warm pass, one timed pass.
  Cipher.ctrXor(Buffer.data(), Buffer.size(), Nonce, 0);
  auto Start = std::chrono::steady_clock::now();
  Cipher.ctrXor(Buffer.data(), Buffer.size(), Nonce, 0);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return static_cast<double>(Buffer.size()) / (1 << 20) / Seconds;
}

} // namespace

int main() {
  const CipherId Ciphers[] = {CipherId::Rectangle, CipherId::Des,
                              CipherId::Aes128,    CipherId::Chacha20,
                              CipherId::Serpent,   CipherId::Present};
  const SlicingMode Modes[] = {SlicingMode::Bitslice, SlicingMode::Vslice,
                               SlicingMode::Hslice};
  const Arch &Target = archAVX2();
  const uint8_t Nonce[12] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};

  std::printf("cipher      slicing    status       MiB/s     engine\n");
  for (CipherId Id : Ciphers) {
    std::vector<uint8_t> Key(16, 0x33);
    std::vector<uint8_t> Reference; // ciphertext of the first variant
    for (SlicingMode Mode : Modes) {
      CipherConfig Config;
      Config.Id = Id;
      Config.Slicing = Mode;
      Config.Target = &Target;
      CipherResult Result = UsubaCipher::compile(Config);
      if (!Result) {
        // The type error explains exactly which operator is missing —
        // the paper's "meaningful feedback" (Section 3.1). The result
        // carries the diagnostics structurally; render the first one.
        std::printf("%-11s %-10s rejected: %s\n", cipherName(Id),
                    slicingName(Mode),
                    Result.diagnostics()[0].str().substr(0, 80).c_str());
        continue;
      }
      std::optional<UsubaCipher> Cipher = std::move(Result).take();
      Key.resize(Cipher->keyBytes(), 0x33);
      Cipher->setKey(Key.data(), Key.size());

      // All slicings of one cipher must produce identical ciphertext.
      std::vector<uint8_t> Probe(4096);
      for (size_t I = 0; I < Probe.size(); ++I)
        Probe[I] = static_cast<uint8_t>(I);
      Cipher->ctrXor(Probe.data(), Probe.size(), Nonce, 0);
      const char *Status = "ok";
      if (Reference.empty())
        Reference = Probe;
      else if (Probe != Reference)
        Status = "DISAGREES";

      std::vector<uint8_t> Buffer(4u << 20, 0xAA);
      double Throughput = megabytesPerSecond(*Cipher, Buffer, Nonce);
      std::printf("%-11s %-10s %-12s %-9.1f %s\n", cipherName(Id),
                  slicingName(Mode), Status, Throughput,
                  Cipher->isNative() ? "native" : "sim");
    }
  }
  std::printf("\nEvery accepted variant of a cipher computes the same "
              "function; every rejection is a *type* error, caught before "
              "any code runs.\n");
  return 0;
}
