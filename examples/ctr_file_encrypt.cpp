//===- ctr_file_encrypt.cpp - Bulk encryption with sliced ChaCha20 --------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload the paper's introduction motivates: a server pushing
/// bulk data through a high-throughput, constant-time stream cipher.
/// Encrypts (or decrypts — CTR is an involution) a file with the
/// Usuba-compiled ChaCha20, verifying against the portable reference and
/// reporting throughput.
///
///   ctr_file_encrypt <input> <output> [hex-key-32-bytes]
///
/// With no arguments, runs on 16 MiB of in-memory data instead.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefChacha20.h"
#include "ciphers/UsubaCipher.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

using namespace usuba;

namespace {

bool parseHexKey(const char *Text, uint8_t Key[32]) {
  if (std::strlen(Text) != 64)
    return false;
  for (unsigned I = 0; I < 32; ++I) {
    unsigned Value;
    if (std::sscanf(Text + 2 * I, "%2x", &Value) != 1)
      return false;
    Key[I] = static_cast<uint8_t>(Value);
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  uint8_t Key[32];
  for (unsigned I = 0; I < 32; ++I)
    Key[I] = static_cast<uint8_t>(I * 7 + 1);
  if (argc >= 4 && !parseHexKey(argv[3], Key)) {
    std::fprintf(stderr, "error: key must be 64 hex digits\n");
    return 1;
  }
  const uint8_t Nonce[12] = {'u', 's', 'u', 'b', 'a', '-', 'c',
                             'p', 'p', '!', '!', '!'};

  std::vector<uint8_t> Data;
  if (argc >= 3) {
    std::ifstream In(argv[1], std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
      return 1;
    }
    Data.assign(std::istreambuf_iterator<char>(In), {});
  } else {
    Data.resize(16u << 20);
    for (size_t I = 0; I < Data.size(); ++I)
      Data[I] = static_cast<uint8_t>(I * 2654435761u >> 24);
  }

  CipherConfig Config;
  Config.Id = CipherId::Chacha20;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archAVX2();
  CipherResult Result = UsubaCipher::compile(Config);
  if (!Result) {
    std::fprintf(stderr, "compilation failed:\n%s\n",
                 Result.errorText().c_str());
    return 1;
  }
  // Keep the optional shape: the rest of the example uses Cipher->.
  std::optional<UsubaCipher> Cipher = std::move(Result).take();
  Cipher->setKey(Key, 32);
  std::printf("chacha20/vslice on %s: %u blocks per call, %s execution\n",
              Config.Target->Name, Cipher->blocksPerCall(),
              Cipher->isNative() ? "native" : "simulated");

  // Verify against the independent reference on a prefix before trusting
  // the fast path with the user's data.
  {
    std::vector<uint8_t> Probe(Data.begin(),
                               Data.begin() +
                                   std::min<size_t>(Data.size(), 8192));
    std::vector<uint8_t> Expected = Probe;
    Cipher->ctrXor(Probe.data(), Probe.size(), Nonce, 0);
    chacha20Xor(Expected.data(), Expected.size(), Key, 0, Nonce);
    if (Probe != Expected) {
      std::fprintf(stderr, "self-check failed: kernel disagrees with the "
                           "reference\n");
      return 1;
    }
  }

  auto Start = std::chrono::steady_clock::now();
  Cipher->ctrXor(Data.data(), Data.size(), Nonce, 0);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  std::printf("processed %.2f MiB in %.3f s (%.2f MiB/s)\n",
              static_cast<double>(Data.size()) / (1 << 20), Seconds,
              static_cast<double>(Data.size()) / (1 << 20) / Seconds);

  if (argc >= 3) {
    std::ofstream Out(argv[2], std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", argv[2]);
      return 1;
    }
    Out.write(reinterpret_cast<const char *>(Data.data()),
              static_cast<std::streamsize>(Data.size()));
    std::printf("wrote %s (run the same command again to decrypt)\n",
                argv[2]);
  }
  return 0;
}
