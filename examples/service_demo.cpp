//===- service_demo.cpp - Serving many streams with CipherService ---------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant tour: four tenants share one bitsliced Rectangle
/// shard and the coalescer packs their small CTR requests into a single
/// full 64-block batch; a fifth tenant with its own key lands on its own
/// shard (keys never mix) and needs an explicit flush. Every byte is
/// checked against a direct single-stream UsubaCipher oracle, and the
/// tour ends on the observability story: the per-stage latency
/// histograms every request fills and the Prometheus metrics export.
///
/// The demo pins the interpreter engine (PreferNative=false), a fixed
/// GP64 target and CoalesceOnly, so its output is byte-identical on
/// every host — ctest diffs it against
/// tests/golden/service_demo.golden.txt.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build --target service_demo
///   ./build/examples/service_demo
///
//===----------------------------------------------------------------------===//

#include "service/CipherService.h"

#include "support/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace usuba;

namespace {

constexpr size_t BlockLen = 8;   // Rectangle's 64-bit block.
constexpr size_t KeyLen = 10;    // Rectangle-80.
constexpr size_t BlocksEach = 16; // Per-tenant request: 16 of 64 slots.

std::vector<uint8_t> payloadFor(unsigned Tenant) {
  std::vector<uint8_t> Data(BlocksEach * BlockLen);
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = uint8_t(Tenant * 0x20 + I);
  return Data;
}

void printHex(const char *Label, const uint8_t *Data, size_t Length) {
  std::printf("%s", Label);
  for (size_t I = 0; I < Length; ++I)
    std::printf("%02x", Data[I]);
  std::printf("\n");
}

} // namespace

int main() {
  // Telemetry on from the first submit: cheap enough to leave enabled
  // in production, and section 5 below reads the per-stage histograms
  // it fills. (USUBA_TELEMETRY=1 would do the same.)
  Telemetry::instance().setEnabled(true);

  // One compiled kernel shape for everyone: bitsliced Rectangle on
  // plain 64-bit registers — 64 independent blocks per transposed
  // batch, far more than any single tenant below ever submits.
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Bitslice;
  Config.Target = &archGP64();
  Config.PreferNative = false; // Deterministic output on every host.

  ServiceConfig Svc;
  Svc.CoalesceOnly = true; // Everything goes through the coalescer...
  Svc.FlushDeadline = std::chrono::minutes(10); // ...and never by timer.
  CipherService Service(Svc);

  const uint8_t KeyA[KeyLen] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const uint8_t KeyB[KeyLen] = {0xB0, 0xB1, 0xB2, 0xB3, 0xB4,
                                0xB5, 0xB6, 0xB7, 0xB8, 0xB9};
  const uint8_t Nonce[BlockLen] = {'s', 'e', 'r', 'v', 'i', 'c', 'e', '!'};

  // 1. Four tenants, one key -> one shard. Each submits 16 blocks: a
  //    lone tenant would fill a quarter of a batch, together they fill
  //    it exactly, and the full batch dispatches on the fourth submit.
  SessionResult Tenants[4] = {
      Service.openSession(Config, KeyA, KeyLen),
      Service.openSession(Config, KeyA, KeyLen),
      Service.openSession(Config, KeyA, KeyLen),
      Service.openSession(Config, KeyA, KeyLen),
  };
  for (const SessionResult &T : Tenants)
    if (!T.ok()) {
      std::fprintf(stderr, "openSession failed:\n%s\n",
                   T.errorText().c_str());
      return 1;
    }
  std::printf("opened 4 tenants on one rectangle/bitslice shard "
              "(64-block batches)\n");

  std::vector<std::vector<uint8_t>> Data;
  std::vector<std::future<void>> Done;
  for (unsigned T = 0; T < 4; ++T) {
    Data.push_back(payloadFor(T));
    // Distinct counter ranges keep the tenants' keystreams independent
    // even though they share a key in this demo.
    Done.push_back(Service.submitCtrXor(Tenants[T].id(), Data[T].data(),
                                        Data[T].size(), Nonce,
                                        /*Counter=*/T * 1024));
  }
  for (std::future<void> &F : Done)
    F.get(); // All four completed by the one full batch.
  printHex("tenant 0 ciphertext (first 16 bytes): ", Data[0].data(), 16);

  // 2. A fifth tenant with its own key: its own shard, so its 8 blocks
  //    cannot ride along with key A's traffic and wait until flushed.
  SessionResult TenantB = Service.openSession(Config, KeyB, KeyLen);
  if (!TenantB.ok())
    return 1;
  std::vector<uint8_t> DataB(8 * BlockLen, 0xEE);
  std::future<void> DoneB = Service.submitCtrXor(
      TenantB.id(), DataB.data(), DataB.size(), Nonce, /*Counter=*/0);
  Service.flush(); // Dispatches the partial (8 of 64 slots) batch.
  DoneB.get();
  printHex("tenant B ciphertext (first 16 bytes): ", DataB.data(), 16);

  // 3. The coalescer's own accounting: one full multi-session batch for
  //    key A, one flushed partial for key B.
  ServiceStats Stats = Service.stats();
  std::printf("stats: %llu requests, %llu coalesced batches "
              "(%llu multi-session), fill ratio %.3f, %llu shards\n",
              static_cast<unsigned long long>(Stats.Requests),
              static_cast<unsigned long long>(Stats.CoalescedBatches),
              static_cast<unsigned long long>(Stats.MultiSessionBatches),
              Stats.fillRatio(),
              static_cast<unsigned long long>(Stats.Shards));

  // 4. The guarantee that makes the service boring to adopt: every
  //    tenant's bytes are exactly what a private single-stream
  //    UsubaCipher would have produced.
  CipherResult Oracle = UsubaCipher::compile(Config);
  if (!Oracle)
    return 1;
  UsubaCipher Direct = std::move(Oracle).take();
  bool AllMatch = true;
  Direct.setKey(KeyA, KeyLen);
  for (unsigned T = 0; T < 4; ++T) {
    std::vector<uint8_t> Want = payloadFor(T);
    Direct.ctrXor(Want.data(), Want.size(), Nonce, /*Counter=*/T * 1024);
    AllMatch = AllMatch && Want == Data[T];
  }
  Direct.setKey(KeyB, KeyLen);
  std::vector<uint8_t> WantB(8 * BlockLen, 0xEE);
  Direct.ctrXor(WantB.data(), WantB.size(), Nonce, /*Counter=*/0);
  AllMatch = AllMatch && WantB == DataB;
  std::printf("differential vs direct UsubaCipher: %s\n",
              AllMatch ? "byte-identical" : "MISMATCH (bug!)");

  // 5. The observability story: every request's lifecycle landed in
  //    the four per-stage histograms, and the registry renders
  //    Prometheus text for scrapers. The *counts* are deterministic (5
  //    requests, one sample each; 2 coalesced batches); the timings
  //    are not, so the demo prints only structure.
  Telemetry &Tel = Telemetry::instance();
  std::printf("stage samples: queue_wait=%llu coalesce_wait=%llu "
              "kernel=%llu callback=%llu\n",
              static_cast<unsigned long long>(
                  Tel.histogramRef("service.queue_wait_ns").count()),
              static_cast<unsigned long long>(
                  Tel.histogramRef("service.coalesce_wait_ns").count()),
              static_cast<unsigned long long>(
                  Tel.histogramRef("service.kernel_ns").count()),
              static_cast<unsigned long long>(
                  Tel.histogramRef("service.callback_ns").count()));
  std::printf("open sessions gauge: %lld\n",
              static_cast<long long>(
                  Tel.gaugeRef("service.open_sessions").value()));
  const std::string Prom = Tel.exportMetrics();
  auto Has = [&Prom](const char *Needle) {
    return Prom.find(Needle) != std::string::npos ? "yes" : "no";
  };
  std::printf("prometheus export: requests_total=%s queue_wait_quantiles=%s "
              "open_sessions_gauge=%s\n",
              Has("# TYPE usuba_service_requests_total counter"),
              Has("usuba_service_queue_wait_ns{quantile=\"0.99\"}"),
              Has("# TYPE usuba_service_open_sessions gauge"));

  for (const SessionResult &T : Tenants)
    Service.closeSession(T.id());
  Service.closeSession(TenantB.id());
  return AllMatch ? 0 : 1;
}
