//===- trivium_keystream.cpp - The paper's future work, running -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6 of the paper: "Trivium is a stateful stream cipher in which
/// the bits of the state are only used 64 rounds after their definition.
/// It can therefore be efficiently bitsliced on 64-bit registers." This
/// example runs the bundled Trivium64 kernel — 64 rounds as one
/// combinational node — over hundreds of *independent* Trivium instances
/// in parallel (one per slice), validates two of them against the
/// bit-serial reference, and reports aggregate keystream throughput.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefTrivium.h"
#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "runtime/KernelRunner.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

using namespace usuba;

int main() {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 1;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(triviumSource(), Options, Diags);
  if (!Kernel) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  KernelRunner Runner(std::move(*Kernel));
  const unsigned Streams = Runner.blocksPerCall();
  std::printf("Trivium64: 64 rounds as one combinational kernel, "
              "%u independent keystreams per call (%s)\n",
              Streams, Options.Target->Name);

  // Independent key/IV per slice; states initialized by the reference
  // (the 4x288 warm-up could itself be run through the kernel: it is 18
  // applications of Trivium64 with the keystream discarded).
  std::mt19937_64 Rng(0x7121);
  std::vector<TriviumState> RefStates(Streams);
  std::vector<uint64_t> InAtoms(size_t{Streams} * 288);
  for (unsigned S = 0; S < Streams; ++S) {
    uint8_t Key[10], Iv[10];
    for (unsigned I = 0; I < 10; ++I) {
      Key[I] = static_cast<uint8_t>(Rng());
      Iv[I] = static_cast<uint8_t>(Rng());
    }
    triviumInit(RefStates[S], Key, Iv);
    for (unsigned I = 0; I < 288; ++I)
      InAtoms[size_t{S} * 288 + I] = RefStates[S].S[I];
  }

  // Generate keystream blocks, feeding the next state back in, and
  // validate slices 0 and Streams-1 against the bit-serial reference.
  const unsigned Blocks = 64;
  std::vector<uint64_t> OutAtoms(size_t{Streams} * (64 + 288));
  bool Valid = true;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned Block = 0; Block < Blocks; ++Block) {
    Runner.runBatch({{false, InAtoms.data()}}, OutAtoms.data());
    for (unsigned S : {0u, Streams - 1}) {
      uint64_t Expected = triviumBlock64(RefStates[S]);
      uint64_t Got = 0;
      for (unsigned I = 0; I < 64; ++I)
        Got = (Got << 1) | (OutAtoms[size_t{S} * (64 + 288) + I] & 1);
      Valid &= Got == Expected;
    }
    for (unsigned S = 0; S < Streams; ++S)
      for (unsigned I = 0; I < 288; ++I)
        InAtoms[size_t{S} * 288 + I] =
            OutAtoms[size_t{S} * (64 + 288) + 64 + I];
  }
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  double Bits = double(Blocks) * 64 * Streams;
  std::printf("validated against the bit-serial reference: %s\n",
              Valid ? "ok" : "MISMATCH");
  std::printf("generated %.1f Mbit of keystream across %u streams in "
              "%.3f s (%.1f Mbit/s, incl. transposition)\n",
              Bits / 1e6, Streams, Seconds, Bits / 1e6 / Seconds);
  std::printf("\n(The validation loop also shows the intended usage: the "
              "kernel is stateless; the caller owns the 288-bit states "
              "and feeds `n` back as the next `s`.)\n");
  return Valid ? 0 : 1;
}
