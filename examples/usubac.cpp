//===- usubac.cpp - The Usubac command-line driver ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line mirror of the paper's compiler:
///
///   usubac [options] <file.ua | bundled-name>
///
///   -V | -H        monomorphize to vertical / horizontal slicing
///   -B             flatten to bitslice
///   -w <m>         word size for the parameter 'm
///   -arch <name>   gp64 | sse | avx | avx2 | avx512
///   -no-inline -no-unroll -no-sched -interleave   back-end toggles
///   -dump-u0       print the optimized Usuba0 instead of C
///   -list          list the bundled programs and exit
///   -o <file>      write output to a file (default stdout)
///
/// `usubac -V -w 16 -arch avx2 rectangle` prints the C-with-intrinsics
/// translation unit Usubac would hand to the C compiler.
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"
#include "frontend/AstPrinter.h"
#include "frontend/Parser.h"
#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace usuba;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: usubac [-V|-H] [-B] [-w m] [-arch name] [-no-inline]\n"
      "              [-no-unroll] [-no-sched] [-interleave] [-dump-u0]\n"
      "              [-dump-ast] [-dump-source] [-o out]\n"
      "              <file.ua | bundled-name>\n"
      "       usubac -list\n");
}

std::string loadSource(const std::string &Name, bool &Ok) {
  Ok = true;
  for (const BundledProgram &P : bundledPrograms())
    if (Name == P.Name)
      return P.Source;
  std::ifstream File(Name);
  if (!File) {
    Ok = false;
    return "";
  }
  std::ostringstream Stream;
  Stream << File.rdbuf();
  return Stream.str();
}

} // namespace

int main(int argc, char **argv) {
  CompileOptions Options;
  Options.Target = &archGP64();
  std::string Input, Output;
  bool DumpU0 = false, DumpAst = false, DumpSource = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-V") {
      Options.Direction = Dir::Vert;
    } else if (Arg == "-H") {
      Options.Direction = Dir::Horiz;
    } else if (Arg == "-B") {
      Options.Bitslice = true;
    } else if (Arg == "-w" && I + 1 < argc) {
      Options.WordBits = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "-arch" && I + 1 < argc) {
      const Arch *Target = archByName(argv[++I]);
      if (!Target) {
        std::fprintf(stderr, "error: unknown architecture '%s'\n", argv[I]);
        return 1;
      }
      Options.Target = Target;
    } else if (Arg == "-no-inline") {
      Options.Inline = false;
    } else if (Arg == "-no-unroll") {
      Options.Unroll = false;
    } else if (Arg == "-no-sched") {
      Options.Schedule = false;
    } else if (Arg == "-interleave") {
      Options.Interleave = true;
    } else if (Arg == "-dump-u0") {
      DumpU0 = true;
    } else if (Arg == "-dump-ast") {
      DumpAst = true;
    } else if (Arg == "-dump-source") {
      DumpSource = true;
    } else if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "-list") {
      for (const BundledProgram &P : bundledPrograms())
        std::printf("%s\n", P.Name);
      return 0;
    } else if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    } else {
      Input = Arg;
    }
  }
  if (Input.empty()) {
    usage();
    return 1;
  }

  bool Loaded = false;
  std::string Source = loadSource(Input, Loaded);
  if (!Loaded) {
    std::fprintf(stderr, "error: cannot open '%s' (try -list)\n",
                 Input.c_str());
    return 1;
  }

  if (DumpSource) {
    std::fputs(Source.c_str(), stdout);
    return 0;
  }
  if (DumpAst) {
    DiagnosticEngine Diags;
    std::optional<ast::Program> Prog = parseProgram(Source, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::fputs(printProgram(*Prog).c_str(), stdout);
    return 0;
  }

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  if (!Kernel) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());

  if (Options.Target->Kind == ArchKind::Neon && !DumpU0) {
    std::fprintf(stderr, "error: the C backend targets the x86 family; "
                         "use -dump-u0 for neon (the library runs neon "
                         "kernels on the SIMD simulator)\n");
    return 1;
  }

  std::string Text;
  if (DumpU0) {
    Text = Kernel->Prog.str();
  } else {
    EmittedC Emitted = emitC(Kernel->Prog);
    Text = "/* compile with:";
    for (const std::string &Flag : Emitted.CompilerFlags)
      Text += " " + Flag;
    Text += " */\n" + Emitted.Code;
  }

  if (Output.empty()) {
    std::fputs(Text.c_str(), stdout);
  } else {
    std::ofstream File(Output);
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Output.c_str());
      return 1;
    }
    File << Text;
  }
  std::fprintf(stderr,
               "usubac: %s -> %zu instructions, %u live registers max, "
               "interleave x%u\n",
               Input.c_str(), Kernel->InstrCount, Kernel->MaxLive,
               Kernel->InterleaveFactor());
  return 0;
}
