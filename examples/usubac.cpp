//===- usubac.cpp - The Usubac command-line driver ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line mirror of the paper's compiler:
///
///   usubac [options] <file.ua | bundled-name>
///
///   -V | -H        monomorphize to vertical / horizontal slicing
///   -B             flatten to bitslice
///   -w <m>         word size for the parameter 'm
///   -arch <name>   gp64 | sse | avx | avx2 | avx512 | native
///                  (`native` probes the CPU once and picks the widest
///                  supported ISA; `--arch=<name>` is accepted too)
///   -no-inline -no-unroll -no-sched -interleave   back-end toggles
///   -O0 | -O1      disable / enable (default) the Usuba0 mid-end
///   -fno-copy-prop -fno-constant-fold -fno-cse -fno-dce
///                  disable one mid-end pass
///   -dump-u0       print the optimized Usuba0 instead of C
///   -list          list the bundled programs and exit
///   -o <file>      write output to a file (default stdout)
///
/// Observability (Section "Explaining a compile" in the README):
///
///   -Rpass[=<pass>]    print optimization remarks (optionally only for
///                      one back-end pass) to stderr
///   --remarks=<file>   write every remark of the compile as JSON
///   -dump-after=<p>    dump the IR after back-end pass <p> (or `all`),
///                      as a line diff against the previous snapshot
///   -telemetry         enable telemetry and print its operations
///                      table (counters, spans, histogram percentiles)
///                      to stderr on exit
///
/// `usubac -V -w 16 -arch avx2 rectangle` prints the C-with-intrinsics
/// translation unit Usubac would hand to the C compiler.
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"
#include "circuits/Superopt.h"
#include "frontend/AstPrinter.h"
#include "frontend/Parser.h"
#include "ciphers/FuzzHarness.h"
#include "ciphers/UsubaSources.h"
#include "core/AstPasses.h"
#include "core/Compiler.h"
#include "support/Remarks.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace usuba;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: usubac [-V|-H] [-B] [-w m] [-arch name] [-no-inline]\n"
      "              [-no-unroll] [-no-sched] [-interleave] [-O0|-O1]\n"
      "              [-fno-copy-prop] [-fno-constant-fold] [-fno-cse]\n"
      "              [-fno-dce] [-dump-u0]\n"
      "              [-dump-ast] [-dump-source] [-o out]\n"
      "              [-Rpass[=pass]] [--remarks=file] [-dump-after=pass]\n"
      "              [-fschedule=window|depth]\n"
      "              [-telemetry] [--validate] <file.ua | bundled-name>\n"
      "       usubac --fuzz N [--fuzz-seed S] [--validate]\n"
      "       usubac --superopt [--superopt-budget=N]\n"
      "              [--superopt-objective=gates|depth] [--superopt-seed=S]\n"
      "              <file.ua | bundled-name>\n"
      "       usubac -list\n");
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Text.size())
        Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

/// Prints a minimal -/+ line diff of two IR dumps to stderr. Plain LCS;
/// when the quadratic table would exceed ~4e6 cells both dumps are large
/// enough that a diff would be unreadable anyway, so the new dump is
/// printed whole instead.
void printLineDiff(const std::string &Old, const std::string &New) {
  std::vector<std::string> A = splitLines(Old), B = splitLines(New);
  if (A.size() * B.size() > 4000000) {
    std::fprintf(stderr, "  (dump too large to diff; full IR follows)\n%s",
                 New.c_str());
    return;
  }
  // Trim the common prefix/suffix first — pass output usually differs in
  // one region.
  size_t Pre = 0;
  while (Pre < A.size() && Pre < B.size() && A[Pre] == B[Pre])
    ++Pre;
  size_t Suf = 0;
  while (Suf + Pre < A.size() && Suf + Pre < B.size() &&
         A[A.size() - 1 - Suf] == B[B.size() - 1 - Suf])
    ++Suf;
  size_t N = A.size() - Pre - Suf, M = B.size() - Pre - Suf;
  std::vector<std::vector<unsigned>> L(N + 1, std::vector<unsigned>(M + 1, 0));
  for (size_t I = N; I-- > 0;)
    for (size_t J = M; J-- > 0;)
      L[I][J] = A[Pre + I] == B[Pre + J]
                    ? L[I + 1][J + 1] + 1
                    : std::max(L[I + 1][J], L[I][J + 1]);
  size_t I = 0, J = 0;
  unsigned Changed = 0;
  while (I < N || J < M) {
    if (I < N && J < M && A[Pre + I] == B[Pre + J]) {
      ++I, ++J;
    } else if (J < M && (I == N || L[I][J + 1] >= L[I + 1][J])) {
      std::fprintf(stderr, "  +%s\n", B[Pre + J++].c_str());
      ++Changed;
    } else {
      std::fprintf(stderr, "  -%s\n", A[Pre + I++].c_str());
      ++Changed;
    }
  }
  if (!Changed)
    std::fprintf(stderr, "  (no IR change)\n");
}

std::string loadSource(const std::string &Name, bool &Ok) {
  Ok = true;
  for (const BundledProgram &P : bundledPrograms())
    if (Name == P.Name)
      return P.Source;
  std::ifstream File(Name);
  if (!File) {
    Ok = false;
    return "";
  }
  std::ostringstream Stream;
  Stream << File.rdbuf();
  return Stream.str();
}

} // namespace

int main(int argc, char **argv) {
  CompileOptions Options;
  Options.Target = &archGP64();
  std::string Input, Output;
  bool DumpU0 = false, DumpAst = false, DumpSource = false;
  bool PrintRemarks = false, WantTelemetry = false, ArchNative = false;
  unsigned FuzzCount = 0; // --fuzz N: run a differential campaign instead
  uint64_t FuzzSeed = 1;
  bool Superopt = false; // --superopt: run the S-box superoptimizer
  uint64_t SuperoptBudget = 0, SuperoptSeed = 0;
  bool SuperoptDepth = false; // --superopt-objective=depth
  std::string RemarkPassFilter; // empty = all passes
  std::string RemarksOut;       // --remarks=<file>
  std::string DumpAfter;        // -dump-after=<pass|all>

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-V") {
      Options.Direction = Dir::Vert;
    } else if (Arg == "-H") {
      Options.Direction = Dir::Horiz;
    } else if (Arg == "-B") {
      Options.Bitslice = true;
    } else if (Arg == "-w" && I + 1 < argc) {
      Options.WordBits = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if ((Arg == "-arch" && I + 1 < argc) ||
               Arg.rfind("--arch=", 0) == 0) {
      std::string Name =
          Arg[1] == '-' ? Arg.substr(7) : std::string(argv[++I]);
      if (Name == "native") {
        // Runtime probe: pick the widest ISA this CPU can execute. The
        // choice and its why are reported on stderr and, when remarks
        // are on, as a "dispatch" remark on the compile.
        Options.Target = &archBest();
        ArchNative = true;
      } else {
        const Arch *Target = archByName(Name);
        if (!Target) {
          std::fprintf(stderr, "error: unknown architecture '%s'\n",
                       Name.c_str());
          return 1;
        }
        Options.Target = Target;
      }
    } else if (Arg == "-no-inline") {
      Options.Inline = false;
    } else if (Arg == "-no-unroll") {
      Options.Unroll = false;
    } else if (Arg == "-no-sched") {
      Options.Schedule = false;
    } else if (Arg == "-interleave") {
      Options.Interleave = true;
    } else if (Arg == "-O0") {
      Options.CopyProp = Options.ConstantFold = Options.Cse = Options.Dce =
          false;
    } else if (Arg == "-O1") {
      Options.CopyProp = Options.ConstantFold = Options.Cse = Options.Dce =
          true;
    } else if (Arg == "-fno-copy-prop") {
      Options.CopyProp = false;
    } else if (Arg == "-fno-constant-fold") {
      Options.ConstantFold = false;
    } else if (Arg == "-fno-cse") {
      Options.Cse = false;
    } else if (Arg == "-fno-dce") {
      Options.Dce = false;
    } else if (Arg == "-Rpass" || Arg.rfind("-Rpass=", 0) == 0) {
      PrintRemarks = true;
      if (Arg.size() > 7)
        RemarkPassFilter = Arg.substr(7);
    } else if (Arg.rfind("--remarks=", 0) == 0) {
      RemarksOut = Arg.substr(10);
      if (RemarksOut.empty()) {
        std::fprintf(stderr, "error: --remarks= needs a file name\n");
        return 1;
      }
    } else if (Arg.rfind("-dump-after=", 0) == 0) {
      DumpAfter = Arg.substr(12);
      if (DumpAfter.empty()) {
        std::fprintf(stderr,
                     "error: -dump-after= needs a pass name or 'all'\n");
        return 1;
      }
    } else if (Arg == "--validate") {
      Options.ValidatePasses = true;
    } else if (Arg == "--fuzz" && I + 1 < argc) {
      FuzzCount = static_cast<unsigned>(std::atoi(argv[++I]));
      if (!FuzzCount) {
        std::fprintf(stderr, "error: --fuzz needs a positive count\n");
        return 1;
      }
    } else if (Arg == "--fuzz-seed" && I + 1 < argc) {
      FuzzSeed = std::strtoull(argv[++I], nullptr, 0);
    } else if (Arg.rfind("-fschedule=", 0) == 0) {
      std::string Obj = Arg.substr(11);
      if (Obj == "window") {
        Options.ScheduleObjective = ScheduleObjective::Window;
      } else if (Obj == "depth") {
        Options.ScheduleObjective = ScheduleObjective::Depth;
      } else {
        std::fprintf(stderr,
                     "error: -fschedule= takes 'window' or 'depth'\n");
        return 1;
      }
    } else if (Arg == "--superopt") {
      Superopt = true;
    } else if (Arg.rfind("--superopt-budget=", 0) == 0) {
      SuperoptBudget = std::strtoull(Arg.c_str() + 18, nullptr, 0);
      if (!SuperoptBudget) {
        std::fprintf(stderr,
                     "error: --superopt-budget= needs a positive count\n");
        return 1;
      }
    } else if (Arg.rfind("--superopt-seed=", 0) == 0) {
      SuperoptSeed = std::strtoull(Arg.c_str() + 16, nullptr, 0);
    } else if (Arg.rfind("--superopt-objective=", 0) == 0) {
      std::string Obj = Arg.substr(21);
      if (Obj == "gates") {
        SuperoptDepth = false;
      } else if (Obj == "depth") {
        SuperoptDepth = true;
      } else {
        std::fprintf(
            stderr,
            "error: --superopt-objective= takes 'gates' or 'depth'\n");
        return 1;
      }
    } else if (Arg == "-telemetry") {
      WantTelemetry = true;
    } else if (Arg == "-dump-u0") {
      DumpU0 = true;
    } else if (Arg == "-dump-ast") {
      DumpAst = true;
    } else if (Arg == "-dump-source") {
      DumpSource = true;
    } else if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "-list") {
      for (const BundledProgram &P : bundledPrograms())
        std::printf("%s\n", P.Name);
      return 0;
    } else if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    } else {
      Input = Arg;
    }
  }
  if (FuzzCount) {
    FuzzOptions Fuzz;
    Fuzz.Seed = FuzzSeed;
    Fuzz.Count = FuzzCount;
    Fuzz.Validate = Options.ValidatePasses;
    Fuzz.CorpusDir = "fuzz-repro";
    Fuzz.Log = &std::cout;
    return runFuzzCampaign(Fuzz).clean() ? 0 : 1;
  }
  if (Input.empty()) {
    usage();
    return 1;
  }

  bool Loaded = false;
  std::string Source = loadSource(Input, Loaded);
  if (!Loaded) {
    std::fprintf(stderr, "error: cannot open '%s' (try -list)\n",
                 Input.c_str());
    return 1;
  }

  if (DumpSource) {
    std::fputs(Source.c_str(), stdout);
    return 0;
  }
  if (DumpAst) {
    DiagnosticEngine Diags;
    std::optional<ast::Program> Prog = parseProgram(Source, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::fputs(printProgram(*Prog).c_str(), stdout);
    return 0;
  }
  if (Superopt) {
    // Offline superoptimizer mode: enumerate better circuits for every
    // lookup table of the program and print a deterministic summary
    // (the full database emitter is bench/superopt_sboxes).
    DiagnosticEngine Diags;
    std::optional<ast::Program> Prog = parseProgram(Source, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::vector<ProgramTable> Tables = collectProgramTables(*Prog);
    if (Tables.empty()) {
      std::fprintf(stderr, "usubac: no lookup tables in '%s'\n",
                   Input.c_str());
      return 1;
    }
    SuperoptObjective Objective = SuperoptDepth
                                      ? SuperoptObjective::MinDepthThenGates
                                      : SuperoptObjective::MinGates;
    SuperoptLimits Limits;
    if (SuperoptBudget)
      Limits.MaxNodes = SuperoptBudget;
    bool AnyFailed = false;
    for (const ProgramTable &T : Tables) {
      std::optional<SuperoptResult> R =
          superoptimizeTable(T.Table, Objective, Limits, SuperoptSeed);
      if (!R) {
        std::printf("%-16s %u->%u  (skipped: %s)\n", T.Name.c_str(),
                    T.Table.InBits, T.Table.OutBits,
                    T.Table.InBits > 6 ? "more than 6 input bits"
                                       : "synthesis budget exceeded");
        continue;
      }
      std::printf("%-16s %u->%u  objective=%s  synth %u gates depth %u  "
                  "-> %u gates depth %u  (%s, %llu nodes examined)\n",
                  T.Name.c_str(), T.Table.InBits, T.Table.OutBits,
                  superoptObjectiveName(Objective), R->SynthGates,
                  R->SynthDepth, R->Gates, R->Depth,
                  R->Improved ? "improved" : "kept synthesis",
                  static_cast<unsigned long long>(R->NodesExamined));
      if (!R->Network.matchesTable(T.Table)) {
        std::fprintf(stderr, "error: superoptimized circuit for '%s' does "
                             "not match its table\n",
                     T.Name.c_str());
        AnyFailed = true;
      }
    }
    return AnyFailed ? 1 : 0;
  }

  if (PrintRemarks || !RemarksOut.empty())
    RemarkEngine::instance().setEnabled(true);
  if (WantTelemetry)
    Telemetry::instance().setEnabled(true);
  std::string PrevDump;
  bool DumpedOnce = false;
  if (!DumpAfter.empty()) {
    Options.PassObserver = [&](const PassStat &S, const U0Program &Prog) {
      if (DumpAfter != "all" && DumpAfter != S.Name)
        return;
      std::string Dump = Prog.str(/*WithLocs=*/true);
      std::fprintf(stderr, "*** IR after %s (%s, %+lld instrs) ***\n",
                   S.Name.c_str(), S.Kept ? "kept" : "rolled back",
                   static_cast<long long>(S.InstrDelta));
      if (!DumpedOnce)
        std::fputs(Dump.c_str(), stderr);
      else
        printLineDiff(PrevDump, Dump);
      PrevDump = std::move(Dump);
      DumpedOnce = true;
    };
  }

  if (ArchNative)
    std::fprintf(stderr, "usubac: -arch native resolved to %s (%s)\n",
                 Options.Target->Name, archBestWhy());

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  if (!Kernel) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());

  if (ArchNative && remarksEnabled()) {
    // Record which ISA the probe chose and why, alongside the compile's
    // own remarks (so --remarks reports carry the dispatch decision).
    Remark R = Remark::analysis("dispatch", "ArchNative");
    R.Message = std::string("-arch native resolved to ") +
                Options.Target->Name + ": " + archBestWhy();
    RemarkEngine::instance().record(R);
    Kernel->Remarks.push_back(R);
  }

  if (PrintRemarks) {
    for (const Remark &R : Kernel->Remarks) {
      if (!RemarkPassFilter.empty() && R.Pass != RemarkPassFilter)
        continue;
      std::fprintf(stderr, "%s: %s\n", Input.c_str(), R.render().c_str());
    }
  }
  if (!RemarksOut.empty()) {
    std::ofstream File(RemarksOut);
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", RemarksOut.c_str());
      return 1;
    }
    File << "{\n \"input\": \"" << Input << "\",\n \"passes\": [";
    for (size_t I = 0; I < Kernel->PassStats.size(); ++I)
      File << (I ? ", " : "") << '"' << Kernel->PassStats[I].Name << '"';
    File << "],\n \"remarks\": " << RemarkEngine::jsonArray(Kernel->Remarks)
         << "\n}\n";
  }

  if (Options.Target->Kind == ArchKind::Neon && !DumpU0) {
    std::fprintf(stderr, "error: the C backend targets the x86 family; "
                         "use -dump-u0 for neon (the library runs neon "
                         "kernels on the SIMD simulator)\n");
    return 1;
  }

  std::string Text;
  if (DumpU0) {
    Text = Kernel->Prog.str();
  } else {
    EmittedC Emitted = emitC(Kernel->Prog);
    Text = "/* compile with:";
    for (const std::string &Flag : Emitted.CompilerFlags)
      Text += " " + Flag;
    Text += " */\n" + Emitted.Code;
  }

  if (Output.empty()) {
    std::fputs(Text.c_str(), stdout);
  } else {
    std::ofstream File(Output);
    if (!File) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Output.c_str());
      return 1;
    }
    File << Text;
  }
  std::fprintf(stderr,
               "usubac: %s -> %zu instructions (%zu before the mid-end), "
               "%u live registers max, interleave x%u\n",
               Input.c_str(), Kernel->InstrCount, Kernel->InstrCountPreOpt,
               Kernel->MaxLive, Kernel->InterleaveFactor());
  if (WantTelemetry)
    std::fputs(Telemetry::instance().statsDump().c_str(), stderr);
  return 0;
}
