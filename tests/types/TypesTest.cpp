//===- TypesTest.cpp - Type, Arch and Table 1 instance tests --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the type grammar, the architecture model, and — most
/// importantly — the Table 1 operator-instance matrix.
///
//===----------------------------------------------------------------------===//

#include "types/Arch.h"
#include "types/Type.h"
#include "types/TypeClasses.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

TEST(Type, ConstructionAndQueries) {
  Type Atom = Type::base(Dir::Vert, WordSize::fixed(16));
  EXPECT_TRUE(Atom.isBase());
  EXPECT_EQ(Atom.flattenedLength(), 1u);
  EXPECT_EQ(Atom.bitWidth(), 16u);
  EXPECT_FALSE(Atom.isPolymorphic());

  Type Matrix = Type::vector(Type::vector(Atom, 4), 26);
  EXPECT_EQ(Matrix.flattenedLength(), 104u);
  EXPECT_EQ(Matrix.bitWidth(), 104u * 16u);
  EXPECT_EQ(Matrix.scalarType(), Atom);
  EXPECT_EQ(Matrix.str(), "uV16[4][26]");

  Type Poly = Type::base(Dir::Param, WordSize::param());
  EXPECT_TRUE(Poly.isPolymorphic());
  EXPECT_TRUE(Type::vector(Poly, 3).isPolymorphic());
}

TEST(Type, Substitution) {
  Type Poly = Type::vector(Type::base(Dir::Param, WordSize::param()), 4);
  Type Mono = substituteType(Poly, Dir::Horiz, 16);
  EXPECT_FALSE(Mono.isPolymorphic());
  EXPECT_EQ(Mono.str(), "uH16[4]");
  // Concrete pieces are untouched.
  Type Fixed = Type::base(Dir::Vert, WordSize::fixed(8));
  EXPECT_EQ(substituteType(Fixed, Dir::Horiz, 32), Fixed);
  // MBits == 0 leaves 'm in place.
  EXPECT_TRUE(substituteType(Poly, Dir::Vert, 0).isPolymorphic());
}

TEST(Type, Equality) {
  Type A = Type::vector(Type::base(Dir::Vert, WordSize::fixed(16)), 4);
  Type B = Type::vector(Type::base(Dir::Vert, WordSize::fixed(16)), 4);
  Type C = Type::vector(Type::base(Dir::Horiz, WordSize::fixed(16)), 4);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, Type::nat());
}

TEST(Arch, Lookup) {
  EXPECT_EQ(archByName("avx2"), &archAVX2());
  EXPECT_EQ(archByName("AVX512"), &archAVX512());
  EXPECT_EQ(archByName("neon"), &archNeon());
  EXPECT_EQ(archByName("bogus"), nullptr);
  unsigned Count = 0;
  allArchs(Count);
  EXPECT_EQ(Count, 5u) << "the x86 sweep excludes neon";
}

Type atom(Dir D, unsigned M);

TEST(Arch, NeonInstances) {
  // Neon: 128-bit, packed arithmetic at every element size (including
  // 64-bit, unlike SSE), byte shuffles via vtbl.
  EXPECT_TRUE(
      resolveInstance(OpClass::Arith, atom(Dir::Vert, 64), archNeon())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Shift, atom(Dir::Vert, 8), archNeon())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Shift, atom(Dir::Horiz, 16), archNeon())
          .Found);
  EXPECT_FALSE(
      resolveInstance(OpClass::Logic, atom(Dir::Vert, 256), archNeon())
          .Found);
}

TEST(Arch, SlicesPerRegister) {
  // Figure 2 / Section 4.3: bitslicing fills the register; vertical
  // slicing fills width/m except on GP64 (one block).
  EXPECT_EQ(archGP64().slicesFor(1, false), 64u);
  EXPECT_EQ(archAVX512().slicesFor(1, false), 512u);
  EXPECT_EQ(archGP64().slicesFor(16, false), 1u);
  EXPECT_EQ(archSSE().slicesFor(16, false), 8u);
  EXPECT_EQ(archAVX2().slicesFor(16, true), 16u);
}

//===----------------------------------------------------------------------===//
// Table 1: the operator-instance matrix
//===----------------------------------------------------------------------===//

Type atom(Dir D, unsigned M) { return Type::base(D, WordSize::fixed(M)); }

TEST(Table1, LogicExistsUpToRegisterWidth) {
  for (unsigned M : {1u, 8u, 13u, 64u})
    EXPECT_TRUE(resolveInstance(OpClass::Logic, atom(Dir::Vert, M),
                                archGP64())
                    .Found)
        << M;
  // Words wider than the registers have no instance.
  EXPECT_FALSE(
      resolveInstance(OpClass::Logic, atom(Dir::Vert, 128), archGP64())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Logic, atom(Dir::Vert, 128), archSSE())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Logic, atom(Dir::Vert, 512), archAVX512())
          .Found);
  EXPECT_FALSE(
      resolveInstance(OpClass::Logic, atom(Dir::Vert, 512), archAVX2())
          .Found);
}

TEST(Table1, ArithInstanceRows) {
  // Arith(uV8/16/32) from SSE on; uV64 needs AVX2.
  for (unsigned M : {8u, 16u, 32u})
    EXPECT_TRUE(
        resolveInstance(OpClass::Arith, atom(Dir::Vert, M), archSSE())
            .Found)
        << M;
  EXPECT_FALSE(
      resolveInstance(OpClass::Arith, atom(Dir::Vert, 64), archSSE())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Arith, atom(Dir::Vert, 64), archAVX2())
          .Found);
  // "arithmetic on 13-bit words is impossible, even in vertical mode".
  EXPECT_FALSE(
      resolveInstance(OpClass::Arith, atom(Dir::Vert, 13), archAVX512())
          .Found);
  // No bitsliced arithmetic (the flattening error of Section 3.1).
  InstanceResolution B1 =
      resolveInstance(OpClass::Arith, atom(Dir::Vert, 1), archAVX2());
  EXPECT_FALSE(B1.Found);
  EXPECT_NE(B1.Reason.find("-B"), std::string::npos);
  // No horizontal arithmetic.
  EXPECT_FALSE(
      resolveInstance(OpClass::Arith, atom(Dir::Horiz, 16), archAVX2())
          .Found);
}

TEST(Table1, ShiftInstanceRows) {
  // Vertical shifts: uV16/uV32 from SSE, uV64 from AVX2.
  EXPECT_TRUE(
      resolveInstance(OpClass::Shift, atom(Dir::Vert, 16), archSSE())
          .Found);
  EXPECT_FALSE(
      resolveInstance(OpClass::Shift, atom(Dir::Vert, 64), archSSE())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Shift, atom(Dir::Vert, 64), archAVX2())
          .Found);
  // Horizontal shifts: uH2..uH16 from SSE; uH32/uH64 only on AVX512.
  for (unsigned M : {2u, 4u, 8u, 16u})
    EXPECT_TRUE(
        resolveInstance(OpClass::Shift, atom(Dir::Horiz, M), archSSE())
            .Found)
        << M;
  EXPECT_FALSE(
      resolveInstance(OpClass::Shift, atom(Dir::Horiz, 32), archAVX2())
          .Found);
  EXPECT_TRUE(
      resolveInstance(OpClass::Shift, atom(Dir::Horiz, 32), archAVX512())
          .Found);
  // No shuffles at all on GP64.
  EXPECT_FALSE(
      resolveInstance(OpClass::Shift, atom(Dir::Horiz, 16), archGP64())
          .Found);
  // Single bits cannot be shifted (vector-level shifts are free instead).
  EXPECT_FALSE(
      resolveInstance(OpClass::Shift, atom(Dir::Vert, 1), archAVX2())
          .Found);
}

TEST(Table1, VectorInstances) {
  Type Vec = Type::vector(atom(Dir::Vert, 16), 4);
  // Logic/Arith lift homomorphically; Shift on vectors is a renaming.
  EXPECT_EQ(resolveInstance(OpClass::Logic, Vec, archSSE()).Impl,
            InstanceImpl::Homomorphic);
  EXPECT_EQ(resolveInstance(OpClass::Arith, Vec, archSSE()).Impl,
            InstanceImpl::Homomorphic);
  EXPECT_EQ(resolveInstance(OpClass::Shift, Vec, archGP64()).Impl,
            InstanceImpl::Renaming);
  // The homomorphic lift requires the element instance.
  Type BitVec = Type::vector(atom(Dir::Vert, 1), 8);
  EXPECT_FALSE(resolveInstance(OpClass::Arith, BitVec, archAVX2()).Found);
  EXPECT_TRUE(resolveInstance(OpClass::Shift, BitVec, archGP64()).Found);
}

TEST(Table1, FailureReasonsAreInformative) {
  InstanceResolution R =
      resolveInstance(OpClass::Arith, atom(Dir::Horiz, 16), archAVX2());
  EXPECT_NE(R.Reason.find("vertical"), std::string::npos) << R.Reason;
  R = resolveInstance(OpClass::Shift, atom(Dir::Vert, 64), archSSE());
  EXPECT_NE(R.Reason.find("sse"), std::string::npos) << R.Reason;
}

} // namespace
