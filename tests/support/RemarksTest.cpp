//===- RemarksTest.cpp - Structured optimization remark tests -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The remark subsystem's contract: disabled by default with a
/// one-relaxed-load gate; the fluent builder fills every field; render()
/// and json() are well-formed; the engine buffers thread-safely, caps at
/// MaxRemarks, and snapshotSince() isolates one compile's slice.
///
//===----------------------------------------------------------------------===//

#include "support/Remarks.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

using namespace usuba;

namespace {

/// Restores the global enabled flag (and wipes the buffer) so tests do
/// not leak remark state into each other — the engine is process-wide.
class RemarkGuard {
public:
  RemarkGuard() : WasEnabled(remarksEnabled()) {
    RemarkEngine::instance().reset();
  }
  ~RemarkGuard() {
    RemarkEngine::instance().setEnabled(WasEnabled);
    RemarkEngine::instance().reset();
  }

private:
  bool WasEnabled;
};

/// The same crude structural JSON check the telemetry tests use.
bool looksLikeJson(const std::string &S, char Open = '{') {
  std::string Stack;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack += C;
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty() && !S.empty() && S[0] == Open;
}

TEST(Remarks, DisabledGateRecordsNothing) {
  RemarkGuard Guard;
  RemarkEngine::instance().setEnabled(false);

  // The documented call-site pattern: gate before building the remark.
  if (remarksEnabled())
    RemarkEngine::instance().record(
        Remark::missed("inline", "Budget").note("should not be recorded"));

  EXPECT_FALSE(RemarkEngine::instance().enabled());
  EXPECT_EQ(RemarkEngine::instance().size(), 0u);
  EXPECT_EQ(RemarkEngine::instance().dropped(), 0u);
  EXPECT_EQ(RemarkEngine::instance().json(), "[]");
}

TEST(Remarks, DisabledProbeIsCheap) {
  RemarkGuard Guard;
  RemarkEngine::instance().setEnabled(false);

  // Same contract as telemetry: one relaxed atomic load per disabled
  // probe, bounded loosely so CI cannot flake it.
  constexpr int Iters = 2'000'000;
  int Hits = 0;
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Iters; ++I)
    if (remarksEnabled())
      ++Hits;
  auto End = std::chrono::steady_clock::now();
  double NsPerProbe =
      std::chrono::duration<double, std::nano>(End - Start).count() / Iters;
  EXPECT_EQ(Hits, 0);
  EXPECT_LT(NsPerProbe, 25.0) << "disabled remark probe too expensive";
}

TEST(Remarks, FluentBuilderFillsEveryField) {
  Remark R = Remark::missed("inline", "InstrBudget")
                 .in("Rectangle")
                 .at(SourceLoc{12, 3})
                 .note("projected size exceeds the budget")
                 .arg("max_instrs", 4096)
                 .arg("ratio", 1.5)
                 .arg("source", "heuristic");
  EXPECT_EQ(R.K, Remark::Kind::Missed);
  EXPECT_EQ(R.Pass, "inline");
  EXPECT_EQ(R.Name, "InstrBudget");
  EXPECT_EQ(R.Function, "Rectangle");
  EXPECT_EQ(R.Loc.Line, 12u);
  EXPECT_EQ(R.Loc.Column, 3u);
  ASSERT_EQ(R.Args.size(), 3u);
  EXPECT_TRUE(R.Args[0].IsNumber);
  EXPECT_EQ(R.Args[0].Value, "4096");
  EXPECT_TRUE(R.Args[1].IsNumber);
  EXPECT_EQ(R.Args[1].Value, "1.500");
  EXPECT_FALSE(R.Args[2].IsNumber);

  EXPECT_STREQ(remarkKindName(Remark::Kind::Passed), "passed");
  EXPECT_STREQ(remarkKindName(Remark::Kind::Missed), "missed");
  EXPECT_STREQ(remarkKindName(Remark::Kind::Analysis), "analysis");
}

TEST(Remarks, RenderFormat) {
  Remark R = Remark::missed("inline", "InstrBudget")
                 .in("Rectangle")
                 .at(SourceLoc{12, 3})
                 .note("budget exceeded")
                 .arg("calls", 7);
  EXPECT_EQ(R.render(), "12:3: remark [inline] missed InstrBudget "
                        "(Rectangle): budget exceeded {calls=7}");

  // No location, function, message or args: every optional part drops
  // out cleanly.
  Remark Bare = Remark::analysis("cse", "Subexpressions");
  EXPECT_EQ(Bare.render(), "<unknown>: remark [cse] analysis Subexpressions");
}

TEST(Remarks, JsonShape) {
  Remark R = Remark::passed("table-circuit", "Lowered")
                 .in("SubColumn")
                 .at(SourceLoc{4, 1})
                 .note("lookup table lowered")
                 .arg("gates", 12)
                 .arg("source", "database");
  std::string Json = R.json();
  EXPECT_TRUE(looksLikeJson(Json)) << Json;
  EXPECT_NE(Json.find("\"kind\": \"passed\""), std::string::npos);
  EXPECT_NE(Json.find("\"pass\": \"table-circuit\""), std::string::npos);
  EXPECT_NE(Json.find("\"function\": \"SubColumn\""), std::string::npos);
  EXPECT_NE(Json.find("\"line\": 4"), std::string::npos);
  EXPECT_NE(Json.find("\"gates\": 12"), std::string::npos);       // unquoted
  EXPECT_NE(Json.find("\"source\": \"database\""), std::string::npos);

  // Hostile strings must not break the JSON sink.
  Remark Weird = Remark::analysis("p\"ass\\", "na\nme")
                     .note("ctrl\x01char")
                     .arg("k\"ey", "v\\alue");
  EXPECT_TRUE(looksLikeJson(Weird.json())) << Weird.json();
}

TEST(Remarks, RecordSnapshotSinceAndReset) {
  RemarkGuard Guard;
  RemarkEngine &E = RemarkEngine::instance();
  E.setEnabled(true);

  E.record(Remark::passed("inline", "First"));
  const size_t Base = E.size();
  E.record(Remark::missed("interleave", "Second"));
  E.record(Remark::analysis("cse", "Third"));

  // snapshotSince isolates "my compile's" slice the way the compiler
  // captures CompiledKernel::Remarks.
  std::vector<Remark> Slice = E.snapshotSince(Base);
  ASSERT_EQ(Slice.size(), 2u);
  EXPECT_EQ(Slice[0].Name, "Second");
  EXPECT_EQ(Slice[1].Name, "Third");
  EXPECT_EQ(E.snapshotSince(E.size()).size(), 0u);
  EXPECT_EQ(E.snapshot().size(), 3u);

  std::string Json = E.json();
  EXPECT_TRUE(looksLikeJson(Json, '[')) << Json;
  EXPECT_EQ(RemarkEngine::jsonArray(Slice).find('['), 0u);

  E.reset();
  EXPECT_EQ(E.size(), 0u);
  EXPECT_EQ(E.json(), "[]");
}

TEST(Remarks, BufferCapsAtMaxRemarksAndCountsDrops) {
  RemarkGuard Guard;
  RemarkEngine &E = RemarkEngine::instance();
  E.setEnabled(true);

  for (size_t I = 0; I < RemarkEngine::MaxRemarks + 5; ++I)
    E.record(Remark::analysis("flood", "R"));
  EXPECT_EQ(E.size(), RemarkEngine::MaxRemarks);
  EXPECT_EQ(E.dropped(), 5u);

  E.reset();
  EXPECT_EQ(E.size(), 0u);
  EXPECT_EQ(E.dropped(), 0u);
}

} // namespace
