//===- TelemetryTest.cpp - Telemetry registry tests -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry subsystem's contract: disabled probes observe nothing
/// and cost (almost) nothing; enabled probes aggregate into counters and
/// span stats; the three sinks emit well-formed output, and the trace
/// sink round-trips through the chrome://tracing "trace events" schema.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

/// Restores the global enabled flag (and wipes recorded data) so tests
/// do not leak profiling state into each other.
class TelemetryGuard {
public:
  TelemetryGuard() : WasEnabled(telemetryEnabled()) {
    Telemetry::instance().reset();
  }
  ~TelemetryGuard() {
    Telemetry::instance().setEnabled(WasEnabled);
    Telemetry::instance().reset();
  }

private:
  bool WasEnabled;
};

/// A crude structural JSON check: quotes balance out of escapes, and
/// every brace/bracket closes in order. Enough to catch a malformed
/// sink without a JSON library.
bool looksLikeJson(const std::string &S) {
  std::string Stack;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I; // skip the escaped char
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack += C;
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty() && !S.empty() && S[0] == '{';
}

TEST(Telemetry, DisabledProbesObserveNothing) {
  TelemetryGuard Guard;
  Telemetry::instance().setEnabled(false);

  telemetryCount("test.counter", 5);
  { TelemetrySpan Span("test.span"); }

  Telemetry &T = Telemetry::instance();
  EXPECT_EQ(T.counter("test.counter"), 0u);
  EXPECT_EQ(T.spanStat("test.span").Calls, 0u);
  EXPECT_EQ(T.counterCount(), 0u);
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Telemetry, DisabledProbeIsCheap) {
  TelemetryGuard Guard;
  Telemetry::instance().setEnabled(false);

  // The documented contract is one relaxed atomic load per disabled
  // probe — roughly a nanosecond. The bound here is deliberately loose
  // (25 ns averaged over millions of probes) so a loaded CI machine
  // cannot flake it, while a regression to "always take the mutex"
  // (~20-80 ns + contention) still trips it. Relative to the ~microseconds
  // a kernel batch takes, this keeps instrumentation under 1% overhead.
  constexpr int Iters = 2'000'000;
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Iters; ++I)
    telemetryCount("hot.counter");
  auto End = std::chrono::steady_clock::now();
  double NsPerProbe =
      std::chrono::duration<double, std::nano>(End - Start).count() / Iters;
  EXPECT_LT(NsPerProbe, 25.0) << "disabled probe too expensive";
  EXPECT_EQ(Telemetry::instance().counterCount(), 0u);
}

TEST(Telemetry, EnabledCountersAndSpansAggregate) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  telemetryCount("agg.counter", 2);
  telemetryCount("agg.counter", 3);
  { TelemetrySpan Span("agg.span"); }
  { TelemetrySpan Span("agg.span"); }

  EXPECT_EQ(T.counter("agg.counter"), 5u);
  Telemetry::SpanStat Stat = T.spanStat("agg.span");
  EXPECT_EQ(Stat.Calls, 2u);
  EXPECT_EQ(T.eventCount(), 2u);

  T.reset();
  EXPECT_EQ(T.counter("agg.counter"), 0u);
  EXPECT_EQ(T.spanStat("agg.span").Calls, 0u);
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Telemetry, SpanStraddlingDisableIsAttributedToItsStart) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();

  // Constructed disabled, destroyed enabled: records nothing.
  T.setEnabled(false);
  {
    TelemetrySpan Span("straddle.off");
    T.setEnabled(true);
  }
  EXPECT_EQ(T.spanStat("straddle.off").Calls, 0u);

  // Constructed enabled, destroyed disabled: still records.
  {
    TelemetrySpan Span("straddle.on");
    T.setEnabled(false);
  }
  EXPECT_EQ(T.spanStat("straddle.on").Calls, 1u);
}

TEST(Telemetry, SnapshotJsonShape) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  telemetryCount("snap.counter", 7);
  { TelemetrySpan Span("snap.span"); }

  std::string Json = T.snapshotJson();
  EXPECT_TRUE(looksLikeJson(Json)) << Json;
  EXPECT_NE(Json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"snap.counter\": 7"), std::string::npos);
  EXPECT_NE(Json.find("\"snap.span\""), std::string::npos);
  EXPECT_NE(Json.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"trace_events\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"dropped_events\": 0"), std::string::npos);

  // Names that need escaping must not break the JSON.
  T.count("weird\"name\\with\ncontrol", 1);
  EXPECT_TRUE(looksLikeJson(T.snapshotJson())) << T.snapshotJson();
}

TEST(Telemetry, TraceExportRoundtrip) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  { TelemetrySpan Span("trace.alpha"); }
  { TelemetrySpan Span("trace.beta"); }

  std::string Path =
      testing::TempDir() + "/usuba_telemetry_trace_test.json";
  ASSERT_TRUE(T.writeTrace(Path));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  std::remove(Path.c_str());

  // The chrome://tracing "trace events" schema: a traceEvents array of
  // complete ("ph": "X") events, each with name/ts/dur/pid/tid.
  EXPECT_TRUE(looksLikeJson(Trace)) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"trace.alpha\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"trace.beta\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"cat\": \"usuba\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ts\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"dur\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(Trace.find("\"tid\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);

  EXPECT_FALSE(T.writeTrace("/nonexistent-dir/trace.json"));
}

TEST(Telemetry, SinksAreSafeAgainstConcurrentUpdates) {
  // Writer threads hammer counters and spans while the main thread
  // exercises every sink (snapshotJson, writeTrace, summary) plus
  // reset. Nothing here asserts on totals — the point is that the
  // sinks never observe a torn registry. Run under TSan via
  // -DUSUBA_SANITIZE=thread to make this test carry its full weight.
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([&, W] {
      std::string Counter = "race.counter." + std::to_string(W % 2);
      while (!Stop.load(std::memory_order_relaxed)) {
        telemetryCount(Counter.c_str());
        TelemetrySpan Span("race.span");
      }
    });

  std::string TracePath =
      testing::TempDir() + "/usuba_telemetry_race_trace.json";
  for (int Round = 0; Round < 50; ++Round) {
    std::string Json = T.snapshotJson();
    EXPECT_TRUE(looksLikeJson(Json)) << Json;
    EXPECT_TRUE(T.writeTrace(TracePath));
    EXPECT_FALSE(T.summary().empty());
    if (Round % 10 == 9)
      T.reset();
  }

  Stop.store(true);
  for (std::thread &W : Writers)
    W.join();
  std::remove(TracePath.c_str());

  // The registry is still coherent after the race.
  std::string Final = T.snapshotJson();
  EXPECT_TRUE(looksLikeJson(Final)) << Final;
}

TEST(Telemetry, SummaryMentionsRecordedNames) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  telemetryCount("sum.counter", 3);
  { TelemetrySpan Span("sum.span"); }

  std::string Text = T.summary();
  EXPECT_NE(Text.find("enabled"), std::string::npos);
  EXPECT_NE(Text.find("sum.counter"), std::string::npos);
  EXPECT_NE(Text.find("sum.span"), std::string::npos);
}

} // namespace
