//===- TelemetryTest.cpp - Telemetry registry tests -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry subsystem's contract: disabled probes observe nothing
/// and cost (almost) nothing; enabled probes aggregate into counters and
/// span stats; the three sinks emit well-formed output, and the trace
/// sink round-trips through the chrome://tracing "trace events" schema.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

/// Restores the global enabled flag (and wipes recorded data) so tests
/// do not leak profiling state into each other.
class TelemetryGuard {
public:
  TelemetryGuard() : WasEnabled(telemetryEnabled()) {
    Telemetry::instance().reset();
  }
  ~TelemetryGuard() {
    Telemetry::instance().setEnabled(WasEnabled);
    Telemetry::instance().reset();
  }

private:
  bool WasEnabled;
};

/// A crude structural JSON check: quotes balance out of escapes, and
/// every brace/bracket closes in order. Enough to catch a malformed
/// sink without a JSON library.
bool looksLikeJson(const std::string &S) {
  std::string Stack;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I; // skip the escaped char
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack += C;
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty() && !S.empty() && S[0] == '{';
}

TEST(Telemetry, DisabledProbesObserveNothing) {
  TelemetryGuard Guard;
  Telemetry::instance().setEnabled(false);

  telemetryCount("test.counter", 5);
  { TelemetrySpan Span("test.span"); }

  Telemetry &T = Telemetry::instance();
  EXPECT_EQ(T.counter("test.counter"), 0u);
  EXPECT_EQ(T.spanStat("test.span").Calls, 0u);
  EXPECT_EQ(T.counterCount(), 0u);
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Telemetry, DisabledProbeIsCheap) {
  TelemetryGuard Guard;
  Telemetry::instance().setEnabled(false);

  // The documented contract is one relaxed atomic load per disabled
  // probe — roughly a nanosecond. The bound here is deliberately loose
  // (25 ns averaged over millions of probes) so a loaded CI machine
  // cannot flake it, while a regression to "always take the mutex"
  // (~20-80 ns + contention) still trips it. Relative to the ~microseconds
  // a kernel batch takes, this keeps instrumentation under 1% overhead.
  constexpr int Iters = 2'000'000;
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Iters; ++I)
    telemetryCount("hot.counter");
  auto End = std::chrono::steady_clock::now();
  double NsPerProbe =
      std::chrono::duration<double, std::nano>(End - Start).count() / Iters;
  EXPECT_LT(NsPerProbe, 25.0) << "disabled probe too expensive";
  EXPECT_EQ(Telemetry::instance().counterCount(), 0u);
}

TEST(Telemetry, EnabledCountersAndSpansAggregate) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  telemetryCount("agg.counter", 2);
  telemetryCount("agg.counter", 3);
  { TelemetrySpan Span("agg.span"); }
  { TelemetrySpan Span("agg.span"); }

  EXPECT_EQ(T.counter("agg.counter"), 5u);
  Telemetry::SpanStat Stat = T.spanStat("agg.span");
  EXPECT_EQ(Stat.Calls, 2u);
  EXPECT_EQ(T.eventCount(), 2u);

  T.reset();
  EXPECT_EQ(T.counter("agg.counter"), 0u);
  EXPECT_EQ(T.spanStat("agg.span").Calls, 0u);
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Telemetry, SpanStraddlingDisableIsAttributedToItsStart) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();

  // Constructed disabled, destroyed enabled: records nothing.
  T.setEnabled(false);
  {
    TelemetrySpan Span("straddle.off");
    T.setEnabled(true);
  }
  EXPECT_EQ(T.spanStat("straddle.off").Calls, 0u);

  // Constructed enabled, destroyed disabled: still records.
  {
    TelemetrySpan Span("straddle.on");
    T.setEnabled(false);
  }
  EXPECT_EQ(T.spanStat("straddle.on").Calls, 1u);
}

TEST(Telemetry, SnapshotJsonShape) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  telemetryCount("snap.counter", 7);
  { TelemetrySpan Span("snap.span"); }

  std::string Json = T.snapshotJson();
  EXPECT_TRUE(looksLikeJson(Json)) << Json;
  EXPECT_NE(Json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"snap.counter\": 7"), std::string::npos);
  EXPECT_NE(Json.find("\"snap.span\""), std::string::npos);
  EXPECT_NE(Json.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"trace_events\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"dropped_events\": 0"), std::string::npos);

  // Names that need escaping must not break the JSON.
  T.count("weird\"name\\with\ncontrol", 1);
  EXPECT_TRUE(looksLikeJson(T.snapshotJson())) << T.snapshotJson();
}

TEST(Telemetry, TraceExportRoundtrip) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  { TelemetrySpan Span("trace.alpha"); }
  { TelemetrySpan Span("trace.beta"); }

  std::string Path =
      testing::TempDir() + "/usuba_telemetry_trace_test.json";
  ASSERT_TRUE(T.writeTrace(Path));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  std::remove(Path.c_str());

  // The chrome://tracing "trace events" schema: a traceEvents array of
  // complete ("ph": "X") events, each with name/ts/dur/pid/tid.
  EXPECT_TRUE(looksLikeJson(Trace)) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"trace.alpha\""), std::string::npos);
  EXPECT_NE(Trace.find("\"name\": \"trace.beta\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"cat\": \"usuba\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ts\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"dur\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(Trace.find("\"tid\": "), std::string::npos);
  EXPECT_NE(Trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);

  EXPECT_FALSE(T.writeTrace("/nonexistent-dir/trace.json"));
}

TEST(Telemetry, SinksAreSafeAgainstConcurrentUpdates) {
  // Writer threads hammer counters and spans while the main thread
  // exercises every sink (snapshotJson, writeTrace, summary) plus
  // reset. Nothing here asserts on totals — the point is that the
  // sinks never observe a torn registry. Run under TSan via
  // -DUSUBA_SANITIZE=thread to make this test carry its full weight.
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([&, W] {
      std::string Counter = "race.counter." + std::to_string(W % 2);
      while (!Stop.load(std::memory_order_relaxed)) {
        telemetryCount(Counter.c_str());
        TelemetrySpan Span("race.span");
      }
    });

  std::string TracePath =
      testing::TempDir() + "/usuba_telemetry_race_trace.json";
  for (int Round = 0; Round < 50; ++Round) {
    std::string Json = T.snapshotJson();
    EXPECT_TRUE(looksLikeJson(Json)) << Json;
    EXPECT_TRUE(T.writeTrace(TracePath));
    EXPECT_FALSE(T.summary().empty());
    if (Round % 10 == 9)
      T.reset();
  }

  Stop.store(true);
  for (std::thread &W : Writers)
    W.join();
  std::remove(TracePath.c_str());

  // The registry is still coherent after the race.
  std::string Final = T.snapshotJson();
  EXPECT_TRUE(looksLikeJson(Final)) << Final;
}

TEST(Telemetry, EnabledProbeIsCheapAndExact) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  // The enabled-path contract from the header: after the first meet, a
  // counter probe is a thread-local cache hit plus a relaxed fetch_add
  // on a sharded cell — no registry mutex. Four threads hammer the same
  // literal; the exact final total proves the sharded cells aggregate
  // losslessly, and the wall bound trips a regression to "lock the
  // registry on every probe" (mutex + futex traffic under contention)
  // while staying far above a healthy run even on a busy 1-core CI box.
  constexpr int NumThreads = 4;
  constexpr int PerThread = 500'000;
  std::vector<std::thread> Threads;
  auto Start = std::chrono::steady_clock::now();
  for (int W = 0; W < NumThreads; ++W)
    Threads.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        telemetryCount("hot.enabled");
    });
  for (std::thread &W : Threads)
    W.join();
  auto End = std::chrono::steady_clock::now();

  EXPECT_EQ(T.counter("hot.enabled"),
            uint64_t(NumThreads) * PerThread);
#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
  double NsPerProbe =
      std::chrono::duration<double, std::nano>(End - Start).count() /
      (double(NumThreads) * PerThread);
  EXPECT_LT(NsPerProbe, 150.0) << "enabled probe too expensive";
#else
  (void)End;
#endif
}

TEST(Telemetry, RingKeepsMostRecentEventsAndCountsDropped) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  // Overfill the circular ring: the first Extra spans ("ring.old") must
  // be overwritten, the most recent MaxTraceEvents retained, and the
  // overwrite count surfaced as dropped_events everywhere it matters.
  constexpr size_t Extra = 100;
  for (size_t I = 0; I < Extra; ++I)
    T.span("ring.old", I, 1, 0);
  for (size_t I = 0; I < Telemetry::MaxTraceEvents; ++I)
    T.span("ring.new", Extra + I, 1, 0);

  EXPECT_EQ(T.eventCount(), Telemetry::MaxTraceEvents);
  EXPECT_EQ(T.droppedEvents(), Extra);
  // Aggregates keep counting past the overwrite.
  EXPECT_EQ(T.spanStat("ring.old").Calls, Extra);

  std::string Json = T.snapshotJson();
  EXPECT_NE(Json.find("\"dropped_events\": 100"), std::string::npos) << Json;
  std::string Text = T.summary();
  EXPECT_NE(Text.find("dropped_events=100"), std::string::npos) << Text;

  std::string Path = testing::TempDir() + "/usuba_telemetry_ring_trace.json";
  ASSERT_TRUE(T.writeTrace(Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  std::remove(Path.c_str());
  EXPECT_EQ(Trace.find("\"name\": \"ring.old\""), std::string::npos)
      << "overwritten events leaked into the trace";
  EXPECT_NE(Trace.find("\"name\": \"ring.new\""), std::string::npos);

  T.reset();
  EXPECT_EQ(T.eventCount(), 0u);
  EXPECT_EQ(T.droppedEvents(), 0u);
}

TEST(Telemetry, ResetRacesInFlightSpans) {
  // reset() retires counter/span cells to a graveyard instead of
  // freeing them, so a probe mid-flight during reset can at worst be
  // lost, never fault. Writers keep spans and counters in flight while
  // the main thread resets repeatedly; run under TSan for full weight.
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        TelemetrySpan Span("reset.race.span");
        telemetryCount("reset.race.counter");
      }
    });

  for (int Round = 0; Round < 300; ++Round)
    T.reset();
  Stop.store(true);
  for (std::thread &W : Writers)
    W.join();

  // Still coherent: probes recorded after the last reset are visible
  // and the sinks render.
  telemetryCount("reset.race.counter", 3);
  EXPECT_GE(T.counter("reset.race.counter"), 3u);
  EXPECT_TRUE(looksLikeJson(T.snapshotJson()));
}

TEST(Telemetry, SnapshotRecordsCycleUnit) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  // telemetryCycles() mixes rdtsc on x86-64 and nanoseconds elsewhere;
  // the snapshot must name the active unit so consumers never compare
  // attribution counters across units.
  std::string Unit = telemetryCycleUnit();
  EXPECT_TRUE(Unit == "rdtsc" || Unit == "ns");
  std::string Json = T.snapshotJson();
  EXPECT_NE(Json.find("\"cycle_unit\": \"" + Unit + "\""), std::string::npos)
      << Json;
}

TEST(Telemetry, HistogramsAndGaugesFlowIntoEverySink) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  Histogram &H = T.histogramRef("sink.latency_ns");
  for (int I = 1; I <= 100; ++I)
    H.record(uint64_t(I) * 10);
  Gauge &G = T.gaugeRef("sink.queue_depth");
  G.set(17);
  telemetryCount("sink.requests", 42);

  std::string Json = T.snapshotJson();
  EXPECT_TRUE(looksLikeJson(Json)) << Json;
  EXPECT_NE(Json.find("\"sink.latency_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(Json.find("\"p50\""), std::string::npos);
  EXPECT_NE(Json.find("\"p999\""), std::string::npos);
  EXPECT_NE(Json.find("\"sink.queue_depth\": 17"), std::string::npos);

  // Prometheus text exposition: sanitized names under the usuba_
  // prefix, counters as _total, histograms as summaries with quantile
  // labels, gauges plain.
  std::string Prom = T.exportMetrics();
  EXPECT_NE(Prom.find("usuba_sink_requests_total 42"), std::string::npos)
      << Prom;
  EXPECT_NE(Prom.find("usuba_sink_queue_depth 17"), std::string::npos);
  EXPECT_NE(Prom.find("usuba_sink_latency_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Prom.find("usuba_sink_latency_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(Prom.find("usuba_sink_latency_ns_count 100"), std::string::npos);
  EXPECT_NE(Prom.find("# TYPE usuba_sink_requests_total counter"),
            std::string::npos);
  EXPECT_EQ(Prom.find("sink.requests"), std::string::npos)
      << "unsanitized name leaked into the exposition";

  std::string Dump = T.statsDump();
  EXPECT_NE(Dump.find("sink.latency_ns"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("sink.queue_depth"), std::string::npos);
  EXPECT_NE(Dump.find("sink.requests"), std::string::npos);

  // The references survive reset(): same cells, zeroed.
  T.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(&T.histogramRef("sink.latency_ns"), &H);
  EXPECT_EQ(&T.gaugeRef("sink.queue_depth"), &G);
  H.record(5);
  EXPECT_EQ(H.count(), 1u);
}

TEST(Telemetry, SummaryMentionsRecordedNames) {
  TelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);
  telemetryCount("sum.counter", 3);
  { TelemetrySpan Span("sum.span"); }

  std::string Text = T.summary();
  EXPECT_NE(Text.find("enabled"), std::string::npos);
  EXPECT_NE(Text.find("sum.counter"), std::string::npos);
  EXPECT_NE(Text.find("sum.span"), std::string::npos);
}

} // namespace
