//===- HistogramTest.cpp - Lock-free histogram tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The histogram's contract: the HDR-style bucket mapping is exact below
/// 2^SubBits and within 1/SubBuckets relative error above; percentiles
/// land in the right bucket; snapshots merge and subtract without
/// underflow; and concurrent record()/snapshot()/reset() is clean (run
/// under -DUSUBA_SANITIZE=thread to make the race tests carry weight).
///
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

TEST(Histogram, ExactBucketsBelowSubBucketRange) {
  // Values below 2^SubBits get one bucket each: no rounding at all for
  // the sub-32ns latencies where relative error would be most visible.
  for (uint64_t V = 0; V < Histogram::SubBuckets; ++V) {
    EXPECT_EQ(Histogram::bucketIndex(V), V);
    EXPECT_EQ(Histogram::bucketValue(static_cast<unsigned>(V)), V);
  }
}

TEST(Histogram, BucketMappingIsMonotonicBoundedAndTight) {
  unsigned Prev = 0;
  // Sweep powers of two with neighbors across the full range, plus the
  // extremes. bucketIndex must stay in range, never decrease, and the
  // representative value must stay within the documented ~1/SubBuckets
  // relative error.
  std::vector<uint64_t> Values = {0, 1, Histogram::SubBuckets - 1,
                                  Histogram::SubBuckets,
                                  std::numeric_limits<uint64_t>::max()};
  for (unsigned Shift = Histogram::SubBits; Shift < 64; ++Shift) {
    uint64_t P = uint64_t(1) << Shift;
    Values.push_back(P - 1);
    Values.push_back(P);
    Values.push_back(P + P / 3);
  }
  std::sort(Values.begin(), Values.end());
  for (uint64_t V : Values) {
    unsigned Index = Histogram::bucketIndex(V);
    ASSERT_LT(Index, Histogram::NumBuckets) << "value " << V;
    EXPECT_GE(Index, Prev) << "mapping not monotonic at " << V;
    Prev = Index;
    uint64_t Rep = Histogram::bucketValue(Index);
    if (V >= Histogram::SubBuckets &&
        V < std::numeric_limits<uint64_t>::max() / 2) {
      double Rel = std::abs(double(Rep) - double(V)) / double(V);
      EXPECT_LT(Rel, 1.0 / Histogram::SubBuckets + 1e-9)
          << "bucket for " << V << " reports " << Rep;
    }
  }
}

TEST(Histogram, PercentilesOnUniformData) {
  Histogram H;
  for (uint64_t V = 1; V <= 10000; ++V)
    H.record(V);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 10000u);
  EXPECT_EQ(S.Sum, 10000u * 10001u / 2);
  EXPECT_NEAR(S.mean(), 5000.5, 0.01);
  // Quantiles of uniform 1..10000; the bucket representative is within
  // ~3% of the true rank value, leave 5% headroom.
  EXPECT_NEAR(double(S.percentile(0.5)), 5000.0, 250.0);
  EXPECT_NEAR(double(S.percentile(0.9)), 9000.0, 450.0);
  EXPECT_NEAR(double(S.percentile(0.99)), 9900.0, 495.0);
  EXPECT_NEAR(double(S.percentile(0.999)), 9990.0, 500.0);
  // p0/p100 pin to the extreme populated buckets.
  EXPECT_NEAR(double(S.percentile(0.0)), 1.0, 1.0);
  EXPECT_NEAR(double(S.percentile(1.0)), 10000.0, 320.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram H;
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0u);
  EXPECT_EQ(S.percentile(0.5), 0u);
  EXPECT_EQ(S.mean(), 0.0);
}

TEST(Histogram, MergeAccumulatesAcrossHistograms) {
  Histogram A, B;
  for (int I = 0; I < 100; ++I)
    A.record(10);
  for (int I = 0; I < 100; ++I)
    B.record(1000);
  Histogram::Snapshot S = A.snapshot();
  S.merge(B.snapshot());
  EXPECT_EQ(S.Count, 200u);
  EXPECT_EQ(S.Sum, 100u * 10 + 100u * 1000);
  // Median of the bimodal merge sits in the low mode, p90 in the high.
  EXPECT_EQ(S.percentile(0.25), 10u);
  EXPECT_NEAR(double(S.percentile(0.9)), 1000.0, 35.0);
}

TEST(Histogram, SubtractLeavesTheInterval) {
  Histogram H;
  for (int I = 0; I < 50; ++I)
    H.record(100);
  Histogram::Snapshot Before = H.snapshot();
  for (int I = 0; I < 30; ++I)
    H.record(200);
  Histogram::Snapshot After = H.snapshot();
  After.subtract(Before);
  EXPECT_EQ(After.Count, 30u);
  EXPECT_EQ(After.Sum, 30u * 200);
  EXPECT_NEAR(double(After.percentile(0.5)), 200.0, 7.0);
}

TEST(Histogram, SubtractSaturatesInsteadOfUnderflowing) {
  // Subtracting a *later* snapshot from an earlier one (the racy
  // ordering the API tolerates) must clamp at zero, never wrap.
  Histogram H;
  H.record(42);
  Histogram::Snapshot Early = H.snapshot();
  H.record(42);
  Histogram::Snapshot Late = H.snapshot();
  Early.subtract(Late);
  EXPECT_EQ(Early.Count, 0u);
  EXPECT_EQ(Early.Sum, 0u);
  EXPECT_EQ(Early.percentile(0.5), 0u);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram H;
  for (int I = 0; I < 10; ++I)
    H.record(12345);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.snapshot().percentile(0.99), 0u);
}

TEST(Histogram, ConcurrentRecordSnapshotAndReset) {
  // Writers hammer record() while the main thread snapshots and
  // occasionally resets. No torn state, no crashes; after the writers
  // join, a final quiescent snapshot is internally consistent (the
  // bucket total equals Count).
  Histogram H;
  constexpr int NumWriters = 4;
  constexpr int PerWriter = 200000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Writers;
  for (int W = 0; W < NumWriters; ++W)
    Writers.emplace_back([&, W] {
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (int I = 0; I < PerWriter; ++I)
        H.record(uint64_t(W) * 1000 + I % 997);
    });
  Go.store(true, std::memory_order_release);
  for (int Round = 0; Round < 100; ++Round) {
    Histogram::Snapshot S = H.snapshot();
    (void)S.percentile(0.99);
    (void)S.mean();
    if (Round == 50)
      H.reset();
  }
  for (std::thread &W : Writers)
    W.join();

  Histogram::Snapshot Final = H.snapshot();
  uint64_t BucketTotal = 0;
  for (uint64_t Cell : Final.Buckets)
    BucketTotal += Cell;
  EXPECT_EQ(BucketTotal, Final.Count);
  EXPECT_LE(Final.Count, uint64_t(NumWriters) * PerWriter);
}

TEST(Histogram, QuiescentCountIsExact) {
  // Without a racing reset, no sample may be lost: relaxed atomics
  // still sum exactly.
  Histogram H;
  constexpr int NumWriters = 4;
  constexpr int PerWriter = 100000;
  std::vector<std::thread> Writers;
  for (int W = 0; W < NumWriters; ++W)
    Writers.emplace_back([&] {
      for (int I = 0; I < PerWriter; ++I)
        H.record(7);
    });
  for (std::thread &W : Writers)
    W.join();
  EXPECT_EQ(H.count(), uint64_t(NumWriters) * PerWriter);
  EXPECT_EQ(H.sum(), uint64_t(NumWriters) * PerWriter * 7);
}

TEST(Gauge, SetAddAndConcurrentAdds) {
  Gauge G;
  EXPECT_EQ(G.value(), 0);
  G.set(10);
  G.add(-3);
  EXPECT_EQ(G.value(), 7);

  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 10000; ++I)
        G.add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(G.value(), 7 + 4 * 10000);
}

} // namespace
