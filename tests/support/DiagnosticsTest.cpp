//===- DiagnosticsTest.cpp - Diagnostic engine tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "core/Compiler.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.note({1, 1}, "just so you know");
  Diags.warning({2, 2}, "careful");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  Diags.error({3, 3}, "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine Diags;
  Diags.error({4, 7}, "unexpected character '@'");
  EXPECT_EQ(Diags.diagnostics()[0].str(),
            "error: 4:7: unexpected character '@'");
  Diags.warning({}, "no location");
  EXPECT_EQ(Diags.diagnostics()[1].str(), "warning: no location");
  EXPECT_NE(Diags.str().find("error: 4:7"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Diagnostics, ErrorCapCollapsesFloods) {
  DiagnosticEngine Diags;
  for (unsigned I = 0; I < 100; ++I)
    Diags.error({I + 1, 1}, "error " + std::to_string(I));
  // Every error is counted, but storage stops at the cap plus one
  // collapse marker — hostile inputs cannot flood memory.
  EXPECT_EQ(Diags.errorCount(), 100u);
  ASSERT_EQ(Diags.diagnostics().size(),
            size_t{DiagnosticEngine::DefaultErrorLimit} + 1);
  EXPECT_NE(Diags.diagnostics().back().Message.find("too many errors"),
            std::string::npos);
  // clear() re-arms the cap.
  Diags.clear();
  Diags.error({1, 1}, "fresh");
  EXPECT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Message, "fresh");
}

TEST(Diagnostics, ErrorLimitIsConfigurable) {
  DiagnosticEngine Diags;
  Diags.setErrorLimit(2);
  for (unsigned I = 0; I < 10; ++I)
    Diags.error({1, 1}, "e");
  EXPECT_EQ(Diags.diagnostics().size(), 3u); // 2 stored + marker
  DiagnosticEngine Unlimited;
  Unlimited.setErrorLimit(0);
  for (unsigned I = 0; I < 100; ++I)
    Unlimited.error({1, 1}, "e");
  EXPECT_EQ(Unlimited.diagnostics().size(), 100u);
}

TEST(Diagnostics, FatalBypassesTheCapAndSetsHasFatal) {
  DiagnosticEngine Diags;
  Diags.setErrorLimit(1);
  Diags.error({1, 1}, "a");
  Diags.error({2, 1}, "b"); // saturates
  EXPECT_FALSE(Diags.hasFatal());
  Diags.fatal({}, "internal compiler error: invariant violated");
  EXPECT_TRUE(Diags.hasFatal());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().back().Severity, DiagSeverity::Fatal);
  EXPECT_EQ(Diags.diagnostics().back().str(),
            "fatal: internal compiler error: invariant violated");
}

TEST(Diagnostics, FrontEndErrorsCarryRealLocations) {
  // A corpus of bad programs covering the lexer, the parser, the
  // expander and the type checker: every user-facing diagnostic must
  // point at a real source position (Fatal, the ICE channel, is exempt
  // — it has no user location by nature).
  const char *Corpus[] = {
      "node F (x:u1) returns (y:u1) let y = x @ x tel", // lexer: bad char
      "node F (x:u16",                                  // parser: truncated
      "node F (x:u16) returns (y:u16) let y = tel",     // parser: no expr
      "",                                               // empty program
      "node F (x:u16) returns (y:u16) let y = z tel",   // unknown variable
      "node F (x:u16) returns (y:u16) let y = x + 1; y = x tel", // reassign
      "node F (x:u16) returns (y:u16) let forall i in [3,1] { y = x } tel",
      "table S (in:v4) returns (out:v4) { 1, 2, 3 }\n"
      "node F (x:v4) returns (y:v4) let y = S(x) tel", // bad entry count
  };
  for (const char *Source : Corpus) {
    CompileOptions Options;
    Options.Direction = Dir::Vert;
    Options.WordBits = 16;
    DiagnosticEngine Diags;
    std::optional<CompiledKernel> Kernel =
        compileUsuba(Source, Options, Diags);
    EXPECT_FALSE(Kernel.has_value()) << Source;
    EXPECT_TRUE(Diags.hasErrors()) << Source;
    for (const Diagnostic &D : Diags.diagnostics())
      if (D.Severity != DiagSeverity::Fatal)
        EXPECT_TRUE(D.Loc.isValid())
            << "missing location on \"" << D.Message << "\" for: " << Source;
  }
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 34).str(), "12:34");
}

} // namespace
