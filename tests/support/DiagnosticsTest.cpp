//===- DiagnosticsTest.cpp - Diagnostic engine tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.note({1, 1}, "just so you know");
  Diags.warning({2, 2}, "careful");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  Diags.error({3, 3}, "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine Diags;
  Diags.error({4, 7}, "unexpected character '@'");
  EXPECT_EQ(Diags.diagnostics()[0].str(),
            "error: 4:7: unexpected character '@'");
  Diags.warning({}, "no location");
  EXPECT_EQ(Diags.diagnostics()[1].str(), "warning: no location");
  EXPECT_NE(Diags.str().find("error: 4:7"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 34).str(), "12:34");
}

} // namespace
