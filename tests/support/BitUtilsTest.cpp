//===- BitUtilsTest.cpp - Bit-twiddling helper tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitUtils.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

TEST(BitUtils, LowBitMask) {
  EXPECT_EQ(lowBitMask(1), 0x1u);
  EXPECT_EQ(lowBitMask(8), 0xFFu);
  EXPECT_EQ(lowBitMask(16), 0xFFFFu);
  EXPECT_EQ(lowBitMask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(lowBitMask(64), ~uint64_t{0});
}

TEST(BitUtils, GetSetBit) {
  uint64_t Value = 0;
  Value = setBit(Value, 0, 1);
  Value = setBit(Value, 63, 1);
  EXPECT_EQ(Value, 0x8000000000000001ull);
  EXPECT_EQ(getBit(Value, 0), 1u);
  EXPECT_EQ(getBit(Value, 1), 0u);
  EXPECT_EQ(getBit(Value, 63), 1u);
  Value = setBit(Value, 63, 0);
  EXPECT_EQ(Value, 1u);
}

class RotateWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(RotateWidth, LeftInverseOfRight) {
  const unsigned Width = GetParam();
  std::mt19937_64 Rng(42);
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    uint64_t Value = Rng() & lowBitMask(Width);
    unsigned Amount = static_cast<unsigned>(Rng() % (2 * Width));
    EXPECT_EQ(rotateRight(rotateLeft(Value, Amount, Width), Amount, Width),
              Value);
  }
}

TEST_P(RotateWidth, FullRotationIsIdentity) {
  const unsigned Width = GetParam();
  std::mt19937_64 Rng(43);
  uint64_t Value = Rng() & lowBitMask(Width);
  EXPECT_EQ(rotateLeft(Value, Width, Width), Value);
  EXPECT_EQ(rotateLeft(Value, 0, Width), Value);
}

TEST_P(RotateWidth, MatchesNaiveBitMoves) {
  const unsigned Width = GetParam();
  std::mt19937_64 Rng(44);
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    uint64_t Value = Rng() & lowBitMask(Width);
    unsigned Amount = static_cast<unsigned>(Rng() % Width);
    uint64_t Naive = 0;
    for (unsigned Bit = 0; Bit < Width; ++Bit)
      Naive = setBit(Naive, (Bit + Amount) % Width, getBit(Value, Bit));
    EXPECT_EQ(rotateLeft(Value, Amount, Width), Naive)
        << "width " << Width << " amount " << Amount;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RotateWidth,
                         ::testing::Values(1u, 2u, 4u, 7u, 8u, 13u, 16u,
                                           32u, 63u, 64u));

TEST(BitUtils, Transpose64x64IsInvolution) {
  uint64_t M[64], Original[64];
  std::mt19937_64 Rng(7);
  for (unsigned I = 0; I < 64; ++I)
    Original[I] = M[I] = Rng();
  transpose64x64(M);
  transpose64x64(M);
  for (unsigned I = 0; I < 64; ++I)
    EXPECT_EQ(M[I], Original[I]) << "row " << I;
}

TEST(BitUtils, Transpose64x64MovesEveryBit) {
  uint64_t M[64] = {};
  std::mt19937_64 Rng(8);
  // Set a scattering of bits and check each lands transposed.
  struct Point {
    unsigned Row, Col;
  };
  std::vector<Point> Points;
  for (unsigned I = 0; I < 100; ++I) {
    Point P = {static_cast<unsigned>(Rng() % 64),
               static_cast<unsigned>(Rng() % 64)};
    Points.push_back(P);
    M[P.Row] |= uint64_t{1} << P.Col;
  }
  transpose64x64(M);
  for (const Point &P : Points)
    EXPECT_EQ((M[P.Col] >> P.Row) & 1, 1u)
        << "bit (" << P.Row << "," << P.Col << ")";
}

TEST(BitUtils, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ull << 63));
  EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

} // namespace
