//===- CEmitterTest.cpp - C emission tests --------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"

#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

CompiledKernel compile(std::string_view Source, Dir Direction,
                       unsigned WordBits, bool Bitslice, const Arch &Target,
                       bool Inline = true) {
  CompileOptions Options;
  Options.Direction = Direction;
  Options.WordBits = WordBits;
  Options.Bitslice = Bitslice;
  Options.Target = &Target;
  Options.Inline = Inline;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str();
  return std::move(*Kernel);
}

TEST(CEmitter, TargetSelectsTypesAndFlags) {
  CompiledKernel K =
      compile(rectangleSource(), Dir::Vert, 16, false, archAVX2());
  EmittedC C = emitC(K.Prog);
  EXPECT_NE(C.Code.find("typedef __m256i word_t;"), std::string::npos);
  EXPECT_NE(C.Code.find("usuba_kernel"), std::string::npos);
  EXPECT_NE(C.Code.find("_mm256_xor_si256"), std::string::npos);
  ASSERT_FALSE(C.CompilerFlags.empty());
  EXPECT_EQ(C.CompilerFlags[0], "-mavx2");
}

TEST(CEmitter, VerticalRotationsUseShiftOrPairs) {
  CompiledKernel K =
      compile(rectangleSource(), Dir::Vert, 16, false, archSSE());
  EmittedC C = emitC(K.Prog);
  EXPECT_NE(C.Code.find("_mm_slli_epi16"), std::string::npos);
  EXPECT_NE(C.Code.find("_mm_srli_epi16"), std::string::npos);
}

TEST(CEmitter, Avx512UsesNativeRotates) {
  CompiledKernel K =
      compile(chacha20Source(), Dir::Vert, 32, false, archAVX512());
  EmittedC C = emitC(K.Prog);
  EXPECT_NE(C.Code.find("_mm512_rol_epi32"), std::string::npos);
  EXPECT_NE(C.Code.find("_mm512_add_epi32"), std::string::npos);
}

TEST(CEmitter, HorizontalShufflesPerTarget) {
  CompiledKernel Sse =
      compile(aesSource(), Dir::Horiz, 16, false, archSSE());
  EXPECT_NE(emitC(Sse.Prog).Code.find("_mm_shuffle_epi8"),
            std::string::npos);
  CompiledKernel Avx2 =
      compile(aesSource(), Dir::Horiz, 16, false, archAVX2());
  std::string Code = emitC(Avx2.Prog).Code;
  EXPECT_NE(Code.find("_mm256_shuffle_epi8"), std::string::npos);
  EXPECT_NE(Code.find("_mm256_permute2x128_si256"), std::string::npos)
      << "cross-lane sources need the lane-swap fix-up";
  CompiledKernel Avx512 =
      compile(aesSource(), Dir::Horiz, 16, false, archAVX512());
  EXPECT_NE(emitC(Avx512.Prog).Code.find("_mm512_maskz_permutexvar_epi32"),
            std::string::npos);
}

TEST(CEmitter, ScalarUsesExactWidthIntegers) {
  CompiledKernel K =
      compile(chacha20Source(), Dir::Vert, 32, false, archGP64());
  std::string Code = emitC(K.Prog).Code;
  EXPECT_NE(Code.find("typedef uint32_t word_t;"), std::string::npos);
  // Rotations use the (x << k) | (x >> (m-k)) idiom.
  EXPECT_NE(Code.find("<< 16) | ("), std::string::npos);
  // GP64 must not silently auto-vectorize.
  bool NoVec = false;
  for (const std::string &Flag : emitC(K.Prog).CompilerFlags)
    NoVec |= Flag == "-fno-tree-vectorize";
  EXPECT_TRUE(NoVec);
}

TEST(CEmitter, BitsliceUsesFullWords) {
  CompiledKernel K =
      compile(desSource(), Dir::Vert, 1, false, archGP64());
  EXPECT_NE(emitC(K.Prog).Code.find("typedef uint64_t word_t;"),
            std::string::npos);
}

TEST(CEmitter, NonInlinedCallsBecomeFunctions) {
  CompiledKernel K = compile(rectangleSource(), Dir::Vert, 16, false,
                             archAVX2(), /*Inline=*/false);
  std::string Code = emitC(K.Prog).Code;
  EXPECT_NE(Code.find("static void f0"), std::string::npos);
  EXPECT_NE(Code.find("f0("), std::string::npos);
}

TEST(CEmitter, ConstantsAreDeduplicated) {
  // Rectangle uses ~ repeatedly: the all-ones constant appears once.
  CompiledKernel K =
      compile(rectangleSource(), Dir::Vert, 16, false, archAVX2());
  std::string Code = emitC(K.Prog).Code;
  size_t First = Code.find("0xffffffffffffffffull");
  ASSERT_NE(First, std::string::npos);
  // Count constant-array definitions holding all-ones.
  unsigned Defs = 0;
  size_t Pos = 0;
  while ((Pos = Code.find("static const uint64_t", Pos)) !=
         std::string::npos) {
    ++Defs;
    ++Pos;
  }
  EXPECT_EQ(Defs, 1u);
}

} // namespace
