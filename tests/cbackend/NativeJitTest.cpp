//===- NativeJitTest.cpp - Native backend vs simulator agreement ----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JIT-compiles emitted C for every cipher/slicing the host CPU supports
/// and checks bit-exact agreement with the SIMD simulator on random
/// register contents. This pins the intrinsics selection (including the
/// AVX2 cross-lane shuffle emulation and the SWAR scalar forms) to the
/// reference semantics.
///
//===----------------------------------------------------------------------===//

#include "cbackend/NativeJit.h"
#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "interp/Interpreter.h"
#include "runtime/Layout.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

struct JitCase {
  const char *Name;
  const std::string &(*Source)();
  Dir Direction;
  unsigned WordBits;
  bool Bitslice;
  ArchKind Target;
};

class JitAgreement : public ::testing::TestWithParam<JitCase> {};

TEST_P(JitAgreement, NativeMatchesSimulator) {
  const JitCase &Case = GetParam();
  const Arch &Target = archFor(Case.Target);
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  if (!hostSupports(Target))
    GTEST_SKIP() << "host CPU lacks " << Target.Name;

  CompileOptions Options;
  Options.Direction = Case.Direction;
  Options.WordBits = Case.WordBits;
  Options.Bitslice = Case.Bitslice;
  Options.Target = &Target;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Case.Source(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  JitError Error;
  std::optional<NativeKernel> Native =
      jitCompile(*Kernel, "-O2", &Error);
  ASSERT_TRUE(Native.has_value()) << Error.str();

  Interpreter Interp(Kernel->Prog);
  const unsigned W = Interp.widthWords();
  const unsigned NumIn = Interp.numInputs();
  const unsigned NumOut = Interp.numOutputs();

  std::mt19937_64 Rng(0xDEC0DEULL + static_cast<unsigned>(Case.Target) * 7);
  for (unsigned Trial = 0; Trial < 3; ++Trial) {
    std::vector<SimdReg> In(NumIn), SimOut(NumOut);
    std::vector<uint64_t> DenseIn(size_t{NumIn} * W),
        DenseOut(size_t{NumOut} * W);
    for (unsigned R = 0; R < NumIn; ++R)
      for (unsigned J = 0; J < W; ++J) {
        In[R].Words[J] = Rng();
        DenseIn[size_t{R} * W + J] = In[R].Words[J];
      }
    Interp.run(In.data(), SimOut.data());
    Native->fn()(DenseIn.data(), DenseOut.data());
    // Compare the *used slices* of every output register: on GP64 the
    // native backend carries a single slice per register (exact-width
    // scalar code, like the real Usubac), so unused lanes may differ
    // from the simulator's SWAR lanes.
    SliceLayout Layout(Kernel->Prog.Direction, Kernel->Prog.MBits, Target);
    std::vector<SimdReg> NativeOut(NumOut);
    for (unsigned R = 0; R < NumOut; ++R)
      for (unsigned J = 0; J < W; ++J)
        NativeOut[R].Words[J] = DenseOut[size_t{R} * W + J];
    const unsigned Slices = Layout.slices();
    std::vector<uint64_t> SimAtoms(size_t{Slices} * NumOut),
        NativeAtoms(size_t{Slices} * NumOut);
    Layout.unpack(SimOut.data(), NumOut, SimAtoms.data());
    Layout.unpack(NativeOut.data(), NumOut, NativeAtoms.data());
    for (size_t I = 0; I < SimAtoms.size(); ++I)
      EXPECT_EQ(NativeAtoms[I], SimAtoms[I])
          << Case.Name << " atom " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, JitAgreement,
    ::testing::Values(
        JitCase{"rect_v_gp64", rectangleSource, Dir::Vert, 16, false,
                ArchKind::GP64},
        JitCase{"rect_v_sse", rectangleSource, Dir::Vert, 16, false,
                ArchKind::SSE},
        JitCase{"rect_v_avx2", rectangleSource, Dir::Vert, 16, false,
                ArchKind::AVX2},
        JitCase{"rect_v_avx512", rectangleSource, Dir::Vert, 16, false,
                ArchKind::AVX512},
        JitCase{"rect_h_sse", rectangleSource, Dir::Horiz, 16, false,
                ArchKind::SSE},
        JitCase{"rect_h_avx2", rectangleSource, Dir::Horiz, 16, false,
                ArchKind::AVX2},
        JitCase{"rect_h_avx512", rectangleSource, Dir::Horiz, 16, false,
                ArchKind::AVX512},
        JitCase{"rect_b_gp64", rectangleSource, Dir::Vert, 16, true,
                ArchKind::GP64},
        JitCase{"rect_b_avx512", rectangleSource, Dir::Vert, 16, true,
                ArchKind::AVX512},
        JitCase{"chacha_v_gp64", chacha20Source, Dir::Vert, 32, false,
                ArchKind::GP64},
        JitCase{"chacha_v_avx2", chacha20Source, Dir::Vert, 32, false,
                ArchKind::AVX2},
        JitCase{"chacha_v_avx512", chacha20Source, Dir::Vert, 32, false,
                ArchKind::AVX512},
        JitCase{"serpent_v_sse", serpentSource, Dir::Vert, 32, false,
                ArchKind::SSE},
        JitCase{"serpent_v_avx2", serpentSource, Dir::Vert, 32, false,
                ArchKind::AVX2},
        JitCase{"aes_h_sse", aesSource, Dir::Horiz, 16, false,
                ArchKind::SSE},
        JitCase{"aes_h_avx2", aesSource, Dir::Horiz, 16, false,
                ArchKind::AVX2},
        JitCase{"aes_h_avx512", aesSource, Dir::Horiz, 16, false,
                ArchKind::AVX512},
        JitCase{"des_b_gp64", desSource, Dir::Vert, 1, false,
                ArchKind::GP64},
        JitCase{"des_b_avx2", desSource, Dir::Vert, 1, false,
                ArchKind::AVX2}),
    [](const ::testing::TestParamInfo<JitCase> &Info) {
      return Info.param.Name;
    });

TEST(NativeJit, ReportsMissingCompilerGracefully) {
  // Force a bogus compiler; the probe caches per-name, so use the env
  // override path through an explicit bad command.
  EmittedC Bad;
  Bad.Code = "this is not C";
  JitError Error;
  std::optional<NativeKernel> Result =
      NativeKernel::compile(Bad, "-O0", &Error);
  if (NativeKernel::hostCompilerAvailable()) {
    EXPECT_FALSE(Result.has_value());
    EXPECT_EQ(Error.Kind, JitError::Reason::CompileFailed) << Error.str();
    EXPECT_FALSE(Error.Detail.empty());
  }
}

} // namespace
