//===- LexerTest.cpp - Usuba lexer tests ----------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

std::vector<Token> lex(std::string_view Source, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Tokens = lex("node table perm returns vars let tel forall in "
                    "Shuffle rectangle _x x'");
  std::vector<TokenKind> Expected = {
      TokenKind::KwNode,    TokenKind::KwTable,   TokenKind::KwPerm,
      TokenKind::KwReturns, TokenKind::KwVars,    TokenKind::KwLet,
      TokenKind::KwTel,     TokenKind::KwForall,  TokenKind::KwIn,
      TokenKind::KwShuffle, TokenKind::Ident,     TokenKind::Ident,
      TokenKind::Ident,     TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
  EXPECT_EQ(Tokens[10].Text, "rectangle");
  EXPECT_EQ(Tokens[12].Text, "x'");
}

TEST(Lexer, Operators) {
  auto Tokens = lex("= := & | ^ ~ + - * / % << >> <<< >>> ..");
  std::vector<TokenKind> Expected = {
      TokenKind::Eq,      TokenKind::ColonEq, TokenKind::Amp,
      TokenKind::Pipe,    TokenKind::Caret,   TokenKind::Tilde,
      TokenKind::Plus,    TokenKind::Minus,   TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent, TokenKind::Shl,
      TokenKind::Shr,     TokenKind::Rotl,    TokenKind::Rotr,
      TokenKind::DotDot,  TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lex("0 42 0xFF 0x1b");
  EXPECT_EQ(Tokens[0].IntValue, 0u);
  EXPECT_EQ(Tokens[1].IntValue, 42u);
  EXPECT_EQ(Tokens[2].IntValue, 0xFFu);
  EXPECT_EQ(Tokens[3].IntValue, 0x1Bu);
}

TEST(Lexer, LineAndBlockComments) {
  auto Tokens = lex("a // comment with node table\nb (* block (* nested *) "
                    "still *) c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(Lexer, TracksPositions) {
  auto Tokens = lex("ab\n  cd");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, ReportsUnexpectedCharacter) {
  auto Tokens = lex("a @ b", /*ExpectErrors=*/true);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(Lexer, ReportsUnterminatedBlockComment) {
  lex("a (* never closed", /*ExpectErrors=*/true);
}

TEST(Lexer, ReportsBareHexPrefix) {
  lex("0x", /*ExpectErrors=*/true);
}

TEST(Lexer, RotationsNeedThreeChars) {
  auto Tokens = lex("a <<< 1 >> 2");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Rotl);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Shr);
}

} // namespace
