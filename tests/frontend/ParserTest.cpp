//===- ParserTest.cpp - Usuba parser tests --------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "ciphers/UsubaSources.h"
#include "frontend/AstPrinter.h"

#include <gtest/gtest.h>

using namespace usuba;
using namespace usuba::ast;

namespace {

Program parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  return Prog ? std::move(*Prog) : Program{};
}

void parseFails(std::string_view Source, const char *ErrorFragment) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_FALSE(Prog.has_value());
  EXPECT_NE(Diags.str().find(ErrorFragment), std::string::npos)
      << "wanted '" << ErrorFragment << "' in:\n"
      << Diags.str();
}

TEST(TypeNames, SurfaceAbbreviations) {
  EXPECT_EQ(parseTypeName("u16")->str(), "u'D16");
  EXPECT_EQ(parseTypeName("uV32")->str(), "uV32");
  EXPECT_EQ(parseTypeName("uH4")->str(), "uH4");
  EXPECT_EQ(parseTypeName("b1")->str(), "u'D1");
  EXPECT_EQ(parseTypeName("b64")->str(), "u'D1[64]");
  EXPECT_EQ(parseTypeName("v1")->str(), "u'D'm");
  EXPECT_EQ(parseTypeName("v4")->str(), "u'D'm[4]");
  EXPECT_EQ(parseTypeName("u16x4")->str(), "u'D16[4]");
  EXPECT_EQ(parseTypeName("uV16x4")->str(), "uV16[4]");
  EXPECT_EQ(parseTypeName("nat")->str(), "nat");
  EXPECT_FALSE(parseTypeName("u").has_value());
  EXPECT_FALSE(parseTypeName("w8").has_value());
  EXPECT_FALSE(parseTypeName("u16x").has_value());
  EXPECT_FALSE(parseTypeName("b0").has_value());
}

TEST(Parser, FigureOneRectangleParses) {
  Program Prog = parseOk(rectangleSource());
  ASSERT_EQ(Prog.Nodes.size(), 3u);
  EXPECT_EQ(Prog.Nodes[0].Name, "SubColumn");
  EXPECT_EQ(Prog.Nodes[0].K, Node::Kind::Table);
  EXPECT_EQ(Prog.Nodes[0].TableEntries.size(), 16u);
  EXPECT_EQ(Prog.Nodes[1].Name, "ShiftRows");
  EXPECT_EQ(Prog.entry().Name, "Rectangle");
  // key : u16x4[26] flattens to 104 atoms.
  EXPECT_EQ(Prog.entry().Params[1].Ty.flattenedLength(), 104u);
}

TEST(Parser, AllBundledProgramsParse) {
  for (const BundledProgram &P : bundledPrograms()) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(parseProgram(P.Source, Diags).has_value())
        << P.Name << ":\n"
        << Diags.str();
  }
}

TEST(Parser, MultiReturnAndTuples) {
  Program Prog = parseOk(R"(
node Swap (a:u8, b:u8) returns (x:u8, y:u8)
let (x, y) = (b, a) tel
)");
  const Node &N = Prog.entry();
  ASSERT_EQ(N.Eqns.size(), 1u);
  EXPECT_EQ(N.Eqns[0].Lhs.size(), 2u);
  EXPECT_EQ(N.Eqns[0].Rhs->K, Expr::Kind::Tuple);
}

TEST(Parser, ForallAndIndexArithmetic) {
  Program Prog = parseOk(R"(
node F (x:u8[4]) returns (y:u8[4])
let forall i in [0,2] { y[i+1] = x[3-i] } y[0] = x[0] tel
)");
  const Equation &Loop = Prog.entry().Eqns[0];
  ASSERT_EQ(Loop.K, Equation::Kind::ForAll);
  EXPECT_EQ(Loop.IndexName, "i");
  EXPECT_EQ(Loop.Body.size(), 1u);
  EXPECT_EQ(Loop.Body[0].Lhs[0].str(), "y[(i + 1)]");
}

TEST(Parser, ImperativeAssignment) {
  Program Prog = parseOk(R"(
node F (x:u8) returns (y:u8)
vars t:u8
let t = x; t := t ^ x; y = t tel
)");
  EXPECT_TRUE(Prog.entry().Eqns[1].Imperative);
}

TEST(Parser, RangesAndShuffle) {
  Program Prog = parseOk(R"(
node F (x:b8) returns (y:b8)
let
  y[0..3] = x[4..7];
  y[4..7] = Shuffle(x[0..3], [3, 2, 1, 0])
tel
)");
  const Node &N = Prog.entry();
  EXPECT_EQ(N.Eqns[0].Lhs[0].str(), "y[0..3]");
  EXPECT_EQ(N.Eqns[1].Rhs->K, Expr::Kind::Shuffle);
  EXPECT_EQ(N.Eqns[1].Rhs->Pattern.size(), 4u);
}

TEST(Parser, OperatorPrecedence) {
  // a ^ b & c parses as a ^ (b & c); shifts bind tighter than &.
  Program Prog = parseOk(R"(
node F (a:u8, b:u8, c:u8) returns (y:u8)
let y = a ^ b & c << 1 tel
)");
  const Expr &Root = *Prog.entry().Eqns[0].Rhs;
  ASSERT_EQ(Root.K, Expr::Kind::Binop);
  EXPECT_EQ(Root.Binop, BinopKind::Xor);
  const Expr &Rhs = *Root.Rhs;
  ASSERT_EQ(Rhs.K, Expr::Kind::Binop);
  EXPECT_EQ(Rhs.Binop, BinopKind::And);
  EXPECT_EQ(Rhs.Rhs->K, Expr::Kind::Shift);
}

TEST(Parser, InAsParameterName) {
  // The paper's own example uses `in` as a parameter name.
  parseOk("table S (in:v4) returns (out:v4) { 0,1,2,3,4,5,6,7,8,9,10,11,"
          "12,13,14,15 }");
}

TEST(Parser, Errors) {
  parseFails("node F x:u8) returns (y:u8) let y = x tel", "expected '('");
  parseFails("node F (x:u8) returns (y:u8) let y = tel",
             "expected an expression");
  parseFails("table T (in:v4) returns (out:v4) { 1, 2, }",
             "expected a table entry");
  parseFails("perm P (in:b4) returns (out:b4) { 0, 1, 2, 3 }", "1-based");
  parseFails("node F (x:u8) returns (y:u8) let y = x", "'tel'");
  parseFails("", "no definitions");
  parseFails("node F (x:u8) returns (y:u8, z:u8) let (y, z) := x tel",
             "single");
}

TEST(Parser, RecoversAtTopLevel) {
  // Two errors in two definitions should both be reported.
  DiagnosticEngine Diags;
  parseProgram("node A ( let tel node B ( let tel", Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(Ast, CloneIsDeep) {
  Program Prog = parseOk(rectangleSource());
  Program Copy = Prog.clone();
  Copy.Nodes[0].TableEntries[0] = 99;
  Copy.Nodes[2].Name = "Changed";
  EXPECT_EQ(Prog.Nodes[0].TableEntries[0], 6u);
  EXPECT_EQ(Prog.Nodes[2].Name, "Rectangle");
}

TEST(AstPrinter, TypeNamesRoundTrip) {
  for (const char *Name : {"u16", "uV32", "uH4", "b1", "b64", "v1", "v4",
                           "u16x4", "uV16x4", "nat", "u16x4[26]",
                           "b48[16]"}) {
    std::optional<Type> Ty = parseTypeName(Name);
    std::string Printed;
    if (Ty) {
      Printed = printType(*Ty);
    } else {
      // Types with [n] suffixes go through the full type parser.
      Program Prog = parseOk(std::string("node F (x:") + Name +
                             ") returns (y:" + Name + ") let y = x tel");
      Printed = printType(Prog.entry().Params[0].Ty);
    }
    EXPECT_EQ(Printed, Name);
  }
}

TEST(AstPrinter, BundledProgramsRoundTrip) {
  // parse . print must be idempotent, and the reparsed program must be
  // structurally identical (same printed form).
  for (const BundledProgram &P : bundledPrograms()) {
    DiagnosticEngine Diags;
    std::optional<Program> First = parseProgram(P.Source, Diags);
    ASSERT_TRUE(First.has_value()) << P.Name << "\n" << Diags.str();
    std::string Printed = printProgram(*First);
    std::optional<Program> Second = parseProgram(Printed, Diags);
    ASSERT_TRUE(Second.has_value()) << P.Name << "\n" << Diags.str()
                                    << "\n" << Printed;
    EXPECT_EQ(printProgram(*Second), Printed) << P.Name;
  }
}

TEST(Ast, ConstExprEvaluation) {
  std::map<std::string, int64_t> Env = {{"i", 5}};
  ConstExpr E = ConstExpr::makeBin(
      ConstExpr::Kind::Add, ConstExpr::makeVar("i"),
      ConstExpr::makeBin(ConstExpr::Kind::Mul, ConstExpr::makeInt(3),
                         ConstExpr::makeInt(4)));
  bool Ok = true;
  EXPECT_EQ(E.evaluate(Env, Ok), 17);
  EXPECT_TRUE(Ok);
  ConstExpr Div = ConstExpr::makeBin(
      ConstExpr::Kind::Div, ConstExpr::makeInt(1), ConstExpr::makeInt(0));
  Div.evaluate(Env, Ok);
  EXPECT_FALSE(Ok);
}

} // namespace
