//===- ParserFuzzTest.cpp - Parser robustness -----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness property: the front-end must reject arbitrary garbage with
/// diagnostics, never crash, hang or accept it. Inputs are random byte
/// soups, random token soups, and random mutations of valid programs.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

TEST(ParserFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 Rng(0xF022);
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    std::string Input;
    unsigned Length = static_cast<unsigned>(Rng() % 200);
    for (unsigned I = 0; I < Length; ++I)
      Input += static_cast<char>(0x20 + Rng() % 95);
    DiagnosticEngine Diags;
    std::optional<ast::Program> Prog = parseProgram(Input, Diags);
    if (!Prog) {
      EXPECT_TRUE(Diags.hasErrors()) << Input;
    }
  }
}

TEST(ParserFuzz, RandomTokenSoupsNeverCrash) {
  static const char *Tokens[] = {
      "node", "table",  "perm", "returns", "vars", "let",  "tel",
      "forall", "in",   "(",    ")",       "[",    "]",    "{",
      "}",    ",",      ";",    ":",       "=",    ":=",   "&",
      "|",    "^",      "~",    "+",       "-",    "*",    "<<",
      ">>",   "<<<",    ">>>",  "..",      "x",    "y",    "u16",
      "b4",   "v4",     "0",    "1",       "42",   "Shuffle"};
  std::mt19937_64 Rng(0xF033);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    std::string Input;
    unsigned Length = static_cast<unsigned>(Rng() % 60);
    for (unsigned I = 0; I < Length; ++I) {
      Input += Tokens[Rng() % (sizeof(Tokens) / sizeof(*Tokens))];
      Input += ' ';
    }
    DiagnosticEngine Diags;
    parseProgram(Input, Diags); // must terminate without crashing
  }
}

TEST(ParserFuzz, MutatedProgramsNeverCrashTheWholePipeline) {
  // Mutate a valid program and push whatever still parses through the
  // entire compiler; it must either compile or diagnose, never crash.
  std::mt19937_64 Rng(0xF044);
  const std::string &Base = rectangleSource();
  for (unsigned Trial = 0; Trial < 60; ++Trial) {
    std::string Mutated = Base;
    for (unsigned Edit = 0; Edit < 1 + Rng() % 4; ++Edit) {
      size_t Pos = Rng() % Mutated.size();
      switch (Rng() % 3) {
      case 0:
        Mutated[Pos] = static_cast<char>(0x20 + Rng() % 95);
        break;
      case 1:
        Mutated.erase(Pos, 1 + Rng() % 5);
        break;
      default:
        Mutated.insert(Pos, 1, static_cast<char>('0' + Rng() % 10));
        break;
      }
    }
    CompileOptions Options;
    Options.Direction = Dir::Vert;
    Options.WordBits = 16;
    Options.Target = &archAVX2();
    DiagnosticEngine Diags;
    std::optional<CompiledKernel> Kernel =
        compileUsuba(Mutated, Options, Diags);
    if (!Kernel) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
}

} // namespace
