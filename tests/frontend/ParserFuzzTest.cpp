//===- ParserFuzzTest.cpp - Parser robustness -----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness property: the front-end must reject arbitrary garbage with
/// diagnostics, never crash, hang or accept it. Inputs are random byte
/// soups, random token soups, and random mutations of valid programs.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "frontend/Parser.h"

#include "tests/TestSeed.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

TEST(ParserFuzz, RandomBytesNeverCrash) {
  const uint64_t Seed = testSeed(0xF022);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    std::string Input;
    unsigned Length = static_cast<unsigned>(Rng() % 200);
    for (unsigned I = 0; I < Length; ++I)
      Input += static_cast<char>(0x20 + Rng() % 95);
    DiagnosticEngine Diags;
    std::optional<ast::Program> Prog = parseProgram(Input, Diags);
    if (!Prog) {
      EXPECT_TRUE(Diags.hasErrors()) << Input;
    }
  }
}

TEST(ParserFuzz, RandomTokenSoupsNeverCrash) {
  static const char *Tokens[] = {
      "node", "table",  "perm", "returns", "vars", "let",  "tel",
      "forall", "in",   "(",    ")",       "[",    "]",    "{",
      "}",    ",",      ";",    ":",       "=",    ":=",   "&",
      "|",    "^",      "~",    "+",       "-",    "*",    "<<",
      ">>",   "<<<",    ">>>",  "..",      "x",    "y",    "u16",
      "b4",   "v4",     "0",    "1",       "42",   "Shuffle"};
  const uint64_t Seed = testSeed(0xF033);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    std::string Input;
    unsigned Length = static_cast<unsigned>(Rng() % 60);
    for (unsigned I = 0; I < Length; ++I) {
      Input += Tokens[Rng() % (sizeof(Tokens) / sizeof(*Tokens))];
      Input += ' ';
    }
    DiagnosticEngine Diags;
    parseProgram(Input, Diags); // must terminate without crashing
  }
}

TEST(ParserFuzz, MutatedProgramsNeverCrashTheWholePipeline) {
  // Mutate every bundled cipher source and push whatever still parses
  // through the entire compiler; each of the 560 inputs must either
  // compile to verified Usuba0 or diagnose, never crash, hang or abort.
  // Tight resource budgets both keep degenerate mutants fast and
  // exercise the budget diagnostics under fire.
  struct Corpus {
    const std::string &(*Source)();
    Dir Direction;
    unsigned WordBits;
    unsigned Trials;
  };
  const Corpus Sources[] = {
      {rectangleSource, Dir::Vert, 16, 140},
      {desSource, Dir::Vert, 1, 70},
      {aesSource, Dir::Horiz, 16, 70},
      {chacha20Source, Dir::Vert, 32, 70},
      {serpentSource, Dir::Vert, 32, 70},
      {presentSource, Dir::Vert, 16, 70},
      {triviumSource, Dir::Vert, 1, 70},
  };
  const uint64_t Seed = testSeed(0xF044);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);
  unsigned Total = 0, Compiled = 0;
  for (const Corpus &C : Sources) {
    const std::string &Base = C.Source();
    for (unsigned Trial = 0; Trial < C.Trials; ++Trial, ++Total) {
      std::string Mutated = Base;
      for (unsigned Edit = 0; Edit < 1 + Rng() % 4; ++Edit) {
        size_t Pos = Rng() % Mutated.size();
        switch (Rng() % 3) {
        case 0:
          Mutated[Pos] = static_cast<char>(0x20 + Rng() % 95);
          break;
        case 1:
          Mutated.erase(Pos, 1 + Rng() % 5);
          break;
        default:
          Mutated.insert(Pos, 1, static_cast<char>('0' + Rng() % 10));
          break;
        }
      }
      CompileOptions Options;
      Options.Direction = C.Direction;
      Options.WordBits = C.WordBits;
      Options.Target = &archAVX2();
      Options.Budgets.MaxUnrolledEquations = 1u << 14;
      Options.Budgets.MaxBddNodes = 1u << 16;
      Options.Budgets.MaxInstrs = 1u << 18;
      Options.Budgets.MaxOptimizeMillis = 10000;
      DiagnosticEngine Diags;
      std::optional<CompiledKernel> Kernel =
          compileUsuba(Mutated, Options, Diags);
      if (Kernel) {
        ++Compiled;
        EXPECT_TRUE(verifyU0(Kernel->Prog).empty());
        EXPECT_TRUE(verifyConstantTime(Kernel->Prog));
      } else {
        EXPECT_TRUE(Diags.hasErrors()) << Mutated;
      }
    }
  }
  EXPECT_GE(Total, 500u);
  // Sanity: the mutator is not so destructive that nothing survives.
  EXPECT_GT(Compiled, 0u);
}

} // namespace
