//===- LayoutPropertyTest.cpp - Randomized SWAR-vs-naive layout tests -----===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the SWAR transposition fast paths: for every
/// (direction, atom width, target, length) shape the bundled ciphers
/// exercise — plus the rest of the power-of-two grid — random blocks
/// must pack and unpack identically under the word-assembly paths and
/// the retained bit-at-a-time reference loops, through both the SimdReg
/// and the dense native-ABI representations.
///
//===----------------------------------------------------------------------===//

#include "runtime/Layout.h"

#include "tests/TestSeed.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace usuba;

namespace {

struct Shape {
  Dir Direction;
  unsigned MBits;
  ArchKind Target;
  unsigned Len;
};

std::string shapeName(const Shape &C) {
  return std::string(dirName(C.Direction)) + " m" + std::to_string(C.MBits) +
         " " + archFor(C.Target).Name + " len" + std::to_string(C.Len);
}

std::vector<Shape> allShapes() {
  std::vector<Shape> Shapes;
  // The shapes the bundled ciphers hit (see UsubaCipher's metaFor):
  // Rectangle uV16x4, DES b1x64 (+768-atom keys), AES uH16x8, ChaCha20
  // uV32x16, Serpent uV32x4, PRESENT b1x64 — each on every target.
  // Generalized to the full power-of-two grid: any power-of-two MBits
  // yields a group size that is a multiple of 64 or divides it, which is
  // the alignment the SWAR paths rely on.
  const ArchKind Targets[] = {ArchKind::GP64, ArchKind::SSE,  ArchKind::AVX,
                              ArchKind::AVX2, ArchKind::AVX512,
                              ArchKind::Neon};
  const unsigned Lens[] = {1, 3, 4, 8, 16, 64, 65, 100};
  for (ArchKind Target : Targets) {
    const Arch &A = archFor(Target);
    for (Dir Direction : {Dir::Vert, Dir::Horiz}) {
      for (unsigned MBits : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        if (MBits > A.SliceBits)
          continue;
        if (Direction == Dir::Horiz && MBits == 1)
          continue; // collapses to bitslice; covered by Vert
        for (unsigned Len : Lens)
          Shapes.push_back({Direction, MBits, Target, Len});
      }
    }
  }
  // The DES/PRESENT key shape: 768 single-bit atoms.
  for (ArchKind Target : Targets)
    Shapes.push_back({Dir::Vert, 1, Target, 768});
  return Shapes;
}

TEST(LayoutProperty, SwarPackMatchesNaiveAndRoundTrips) {
  for (const Shape &C : allShapes()) {
    SCOPED_TRACE(shapeName(C));
    SliceLayout Layout(C.Direction, C.MBits, archFor(C.Target));
    const unsigned S = Layout.slices();
    const unsigned W = Layout.widthWords();
    const uint64_t Seed = testSeed(0x5157A * (C.MBits + 1) + C.Len);
    SCOPED_TRACE(testSeedTrace(Seed));
    std::mt19937_64 Rng(Seed);

    for (unsigned Trial = 0; Trial < 3; ++Trial) {
      std::vector<uint64_t> Blocks(size_t{S} * C.Len);
      for (uint64_t &B : Blocks)
        B = Rng() & lowBitMask(C.MBits);

      // The naive loops are the oracle.
      std::vector<SimdReg> Want(C.Len);
      Layout.packNaive(Blocks.data(), C.Len, Want.data());

      // SWAR SimdReg path.
      std::vector<SimdReg> Got(C.Len);
      Layout.pack(Blocks.data(), C.Len, Got.data());
      ASSERT_EQ(Got, Want) << "pack mismatch, trial " << Trial;

      // SWAR dense path: the same words at stride widthWords().
      std::vector<uint64_t> Dense(size_t{C.Len} * W, 0xA5A5A5A5A5A5A5A5u);
      Layout.packDense(Blocks.data(), C.Len, Dense.data());
      for (unsigned R = 0; R < C.Len; ++R)
        for (unsigned I = 0; I < W; ++I)
          ASSERT_EQ(Dense[size_t{R} * W + I], Want[R].Words[I])
              << "dense word " << I << " of reg " << R;

      // All three unpack paths invert pack.
      std::vector<uint64_t> Back(Blocks.size(), ~uint64_t{0});
      Layout.unpack(Want.data(), C.Len, Back.data());
      ASSERT_EQ(Back, Blocks);
      std::fill(Back.begin(), Back.end(), ~uint64_t{0});
      Layout.unpackDense(Dense.data(), C.Len, Back.data());
      ASSERT_EQ(Back, Blocks);
      std::fill(Back.begin(), Back.end(), ~uint64_t{0});
      Layout.unpackNaive(Want.data(), C.Len, Back.data());
      ASSERT_EQ(Back, Blocks);
    }
  }
}

TEST(LayoutProperty, BroadcastDenseMatchesSimdBroadcast) {
  for (const Shape &C : allShapes()) {
    SCOPED_TRACE(shapeName(C));
    SliceLayout Layout(C.Direction, C.MBits, archFor(C.Target));
    const unsigned W = Layout.widthWords();
    const uint64_t Seed = testSeed(0xB0Au + C.MBits + C.Len);
    SCOPED_TRACE(testSeedTrace(Seed));
    std::mt19937_64 Rng(Seed);
    std::vector<uint64_t> Atoms(C.Len);
    for (uint64_t &A : Atoms)
      A = Rng() & lowBitMask(C.MBits);

    std::vector<SimdReg> Want(C.Len);
    Layout.packBroadcast(Atoms.data(), C.Len, Want.data());
    std::vector<uint64_t> Dense(size_t{C.Len} * W, 0xDEADBEEFu);
    Layout.packBroadcastDense(Atoms.data(), C.Len, Dense.data());
    for (unsigned R = 0; R < C.Len; ++R)
      for (unsigned I = 0; I < W; ++I)
        ASSERT_EQ(Dense[size_t{R} * W + I], Want[R].Words[I])
            << "broadcast word " << I << " of reg " << R;
  }
}

} // namespace
