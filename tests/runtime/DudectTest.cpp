//===- DudectTest.cpp - Constant-time harness tests -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Dudect.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

using namespace usuba;

namespace {

TEST(WelchTTest, DetectsMeanDifference) {
  WelchTTest Test;
  std::mt19937_64 Rng(1);
  std::normal_distribution<double> Class0(100.0, 5.0), Class1(110.0, 5.0);
  for (unsigned I = 0; I < 2000; ++I) {
    Test.push(0, Class0(Rng));
    Test.push(1, Class1(Rng));
  }
  EXPECT_LT(Test.statistic(), -20.0);
}

TEST(WelchTTest, NearZeroForIdenticalPopulations) {
  WelchTTest Test;
  std::mt19937_64 Rng(2);
  std::normal_distribution<double> Dist(100.0, 5.0);
  for (unsigned I = 0; I < 5000; ++I)
    Test.push(static_cast<unsigned>(Rng() & 1), Dist(Rng));
  EXPECT_LT(std::abs(Test.statistic()), 4.0);
}

TEST(WelchTTest, DegenerateCases) {
  WelchTTest Test;
  EXPECT_EQ(Test.statistic(), 0.0);
  Test.push(0, 1.0);
  Test.push(1, 2.0);
  EXPECT_EQ(Test.statistic(), 0.0) << "needs two samples per class";
  Test.push(0, 1.0);
  Test.push(1, 2.0);
  EXPECT_EQ(Test.statistic(), 0.0) << "zero variance";
}

TEST(Dudect, ConstantOperationIsGreen) {
  DudectConfig Config;
  Config.Measurements = 8000;
  volatile uint64_t Sink = 0;
  DudectResult Result = dudect(
      Config, 64,
      [](unsigned Class, uint8_t *Input, uint64_t Seed) {
        std::mt19937_64 Rng(Seed);
        for (unsigned I = 0; I < 64; ++I)
          Input[I] = Class == 0 ? 0 : static_cast<uint8_t>(Rng());
      },
      [&](const uint8_t *Input) {
        // Branch-free mixing: constant time by construction.
        uint64_t Acc = 0;
        for (unsigned I = 0; I < 64; ++I)
          Acc = (Acc ^ Input[I]) * 0x9E3779B97F4A7C15ull;
        Sink = Sink + Acc;
      });
  EXPECT_FALSE(Result.leakDetected())
      << "t = " << Result.TStatistic;
  EXPECT_GT(Result.Used, 6000u);
}

TEST(Dudect, InputDependentLoopIsFlagged) {
  DudectConfig Config;
  Config.Measurements = 8000;
  volatile uint64_t Sink = 0;
  DudectResult Result = dudect(
      Config, 4096,
      [](unsigned Class, uint8_t *Input, uint64_t Seed) {
        std::mt19937_64 Rng(Seed);
        std::memset(Input, 0, 4096);
        if (Class == 1)
          for (unsigned I = 0; I < 4096; ++I)
            Input[I] = static_cast<uint8_t>(Rng());
      },
      [&](const uint8_t *Input) {
        unsigned I = 0;
        while (I < 4096 && Input[I] == 0)
          ++I;
        Sink = Sink + I;
      });
  EXPECT_TRUE(Result.leakDetected()) << "t = " << Result.TStatistic;
}

} // namespace
