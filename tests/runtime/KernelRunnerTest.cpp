//===- KernelRunnerTest.cpp - Batched kernel execution tests --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

#include "cbackend/NativeJit.h"
#include "ciphers/UsubaCipher.h"
#include "core/Compiler.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdlib>
#include <fstream>
#include <random>

using namespace usuba;

namespace {

/// xor-with-key kernel: y = x ^ k (x per-block, k broadcast).
CompiledKernel xorKernel(const Arch &Target, bool Interleave = false) {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &Target;
  Options.Interleave = Interleave;
  Options.InterleaveFactorOverride = Interleave ? 2 : 0;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel = compileUsuba(
      "node F (x:u16x2, k:u16x2) returns (y:u16x2) let y = x ^ k tel",
      Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str();
  return std::move(*Kernel);
}

TEST(KernelRunner, PerBlockAndBroadcastParams) {
  KernelRunner Runner(xorKernel(archSSE()));
  const unsigned Blocks = Runner.blocksPerCall();
  EXPECT_EQ(Blocks, 8u);
  ASSERT_EQ(Runner.paramLens(), (std::vector<unsigned>{2, 2}));

  std::mt19937_64 Rng(404);
  std::vector<uint64_t> Plain(size_t{Blocks} * 2), Out(Plain.size());
  uint64_t Key[2] = {Rng() & 0xFFFF, Rng() & 0xFFFF};
  for (uint64_t &A : Plain)
    A = Rng() & 0xFFFF;
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  for (unsigned B = 0; B < Blocks; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A],
                Plain[size_t{B} * 2 + A] ^ Key[A])
          << "block " << B << " atom " << A;
}

TEST(KernelRunner, InterleaveRoutesBlockGroups) {
  KernelRunner Runner(xorKernel(archSSE(), /*Interleave=*/true));
  // Two interleaved instances: twice the blocks per call, blocks routed
  // to instance 0 then instance 1.
  EXPECT_EQ(Runner.blocksPerCall(), 16u);
  std::mt19937_64 Rng(505);
  std::vector<uint64_t> Plain(16 * 2), Out(Plain.size());
  uint64_t Key[2] = {0x1111, 0x2222};
  for (uint64_t &A : Plain)
    A = Rng() & 0xFFFF;
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  for (unsigned B = 0; B < 16; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A], Plain[size_t{B} * 2 + A] ^ Key[A]);
}

/// A deliberately wrong native kernel: leaves the outputs zeroed.
void bogusNativeKernel(const uint64_t *, uint64_t *) {}

TEST(KernelRunner, SelfCheckDemotesWrongNativeKernel) {
  KernelRunner Runner(xorKernel(archSSE()));
  Runner.setNativeFn(&bogusNativeKernel);
  EXPECT_TRUE(Runner.usingNative());
  EXPECT_EQ(Runner.engine(), KernelRunner::Engine::Native);

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> Plain(size_t{Blocks} * 2, 0x1234), Out(Plain.size());
  uint64_t Key[2] = {0x00FF, 0x0F0F};
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());

  // The first-batch differential self-check must have caught the bogus
  // kernel: the batch result comes from the interpreter (correct), the
  // engine is demoted, and the demotion reason is recorded.
  for (unsigned B = 0; B < Blocks; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A], 0x1234u ^ Key[A]);
  EXPECT_FALSE(Runner.usingNative());
  EXPECT_EQ(Runner.engine(), KernelRunner::Engine::Interpreter);
  EXPECT_EQ(Runner.fallbackKind(), EngineFallback::SelfCheckMismatch);
  EXPECT_NE(Runner.fallbackReason().find("self-check"), std::string::npos)
      << Runner.fallbackReason();
}

TEST(KernelRunner, CloneRearmsSelfCheckIndependently) {
  KernelRunner Runner(xorKernel(archSSE()));
  Runner.setNativeFn(&bogusNativeKernel);
  std::unique_ptr<KernelRunner> Clone = Runner.clone();
  EXPECT_TRUE(Clone->usingNative());

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> Plain(size_t{Blocks} * 2, 0x4321), Out(Plain.size());
  uint64_t Key[2] = {0x0F0F, 0x00FF};

  // The clone runs its own first-batch self-check and demotes itself
  // without touching the original.
  Clone->runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  for (unsigned B = 0; B < Blocks; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A], 0x4321u ^ Key[A]);
  EXPECT_FALSE(Clone->usingNative());
  EXPECT_TRUE(Runner.usingNative());

  // The original's own ladder still works, and a clone taken after a
  // demotion inherits the interpreter rung with its reason.
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  EXPECT_FALSE(Runner.usingNative());
  std::unique_ptr<KernelRunner> Demoted = Runner.clone();
  EXPECT_FALSE(Demoted->usingNative());
  EXPECT_EQ(Demoted->fallbackReason(), Runner.fallbackReason());
  EXPECT_EQ(Demoted->fallbackKind(), Runner.fallbackKind());
}

/// Scoped environment override, restored on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    setenv(Name, Value.c_str(), 1);
  }
  ~EnvGuard() {
    if (Saved)
      setenv(Name, Saved->c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

/// Writes an executable fake-compiler script that passes the
/// availability probe through to the real `cc` but sabotages kernel
/// compiles with \p KernelBehavior.
std::string writeFakeCompiler(const char *FileName,
                              const char *KernelBehavior) {
  std::string Path = ::testing::TempDir() + FileName;
  {
    std::ofstream Script(Path);
    Script << "#!/bin/sh\ncase \"$*\" in\n  *usuba-probe*) exec cc \"$@\" ;;\n"
           << "esac\n"
           << KernelBehavior << "\n";
  }
  chmod(Path.c_str(), 0755);
  return Path;
}

CipherConfig rectangleGP64(bool PreferNative) {
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archGP64();
  Config.PreferNative = PreferNative;
  return Config;
}

std::vector<uint8_t> rectangleEcb(const CipherConfig &Config) {
  CipherResult Result = UsubaCipher::compile(Config);
  EXPECT_TRUE(Result.ok()) << Result.errorText();
  UsubaCipher &Cipher = Result.cipher();
  uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Cipher.setKey(Key, sizeof(Key));
  const size_t Blocks = 64;
  std::vector<uint8_t> In(Blocks * Cipher.blockBytes()), Out(In.size());
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint8_t>(I * 37 + 11);
  Cipher.ecbEncrypt(In.data(), Out.data(), Blocks);
  return Out;
}

TEST(DegradationLadder, FailingCompilerFallsBackToInterpreter) {
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler to pass the probe through to";
  std::vector<uint8_t> Reference =
      rectangleEcb(rectangleGP64(/*PreferNative=*/false));

  EnvGuard Cc("USUBA_CC",
              writeFakeCompiler("usuba-fake-cc-fail.sh", "exit 1"));
  CipherConfig Config = rectangleGP64(/*PreferNative=*/true);
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  UsubaCipher &Cipher = Result.cipher();
  CipherStats Stats = Cipher.stats();
  EXPECT_FALSE(Stats.Native);
  // Structured kind instead of string-matching the old engineNote().
  EXPECT_EQ(Stats.Fallback, EngineFallback::CompileFailed)
      << Stats.FallbackDetail;

  uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Cipher.setKey(Key, sizeof(Key));
  const size_t Blocks = 64;
  std::vector<uint8_t> In(Blocks * Cipher.blockBytes()), Out(In.size());
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint8_t>(I * 37 + 11);
  Cipher.ecbEncrypt(In.data(), Out.data(), Blocks);
  EXPECT_EQ(Out, Reference); // byte-identical ciphertext on the fallback rung
}

TEST(DegradationLadder, HangingCompilerTimesOutAndFallsBack) {
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler to pass the probe through to";
  std::vector<uint8_t> Reference =
      rectangleEcb(rectangleGP64(/*PreferNative=*/false));

  EnvGuard Cc("USUBA_CC",
              writeFakeCompiler("usuba-fake-cc-hang.sh", "sleep 30"));
  // The typed knob overrides the (absent) USUBA_CC_TIMEOUT_MS.
  CipherConfig Config = rectangleGP64(/*PreferNative=*/true);
  Config.CcTimeoutMillis = 200;
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  UsubaCipher &Cipher = Result.cipher();
  CipherStats Stats = Cipher.stats();
  EXPECT_FALSE(Stats.Native);
  EXPECT_EQ(Stats.Fallback, EngineFallback::Timeout) << Stats.FallbackDetail;

  uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Cipher.setKey(Key, sizeof(Key));
  const size_t Blocks = 64;
  std::vector<uint8_t> In(Blocks * Cipher.blockBytes()), Out(In.size());
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint8_t>(I * 37 + 11);
  Cipher.ecbEncrypt(In.data(), Out.data(), Blocks);
  EXPECT_EQ(Out, Reference);
}

TEST(KernelRunner, KernelOnlyRunsWithoutPacking) {
  KernelRunner Runner(xorKernel(archAVX2()));
  // Just exercises the benchmark entry point; results land in internal
  // staging, so the contract is simply "does not crash or corrupt".
  for (unsigned I = 0; I < 10; ++I)
    Runner.kernelOnly();
  std::vector<uint64_t> Plain(size_t{Runner.blocksPerCall()} * 2, 7),
      Out(Plain.size());
  uint64_t Key[2] = {0, 0};
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  EXPECT_EQ(Out, Plain);
}

} // namespace
