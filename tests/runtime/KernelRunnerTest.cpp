//===- KernelRunnerTest.cpp - Batched kernel execution tests --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

#include "core/Compiler.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

/// xor-with-key kernel: y = x ^ k (x per-block, k broadcast).
CompiledKernel xorKernel(const Arch &Target, bool Interleave = false) {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &Target;
  Options.Interleave = Interleave;
  Options.InterleaveFactorOverride = Interleave ? 2 : 0;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel = compileUsuba(
      "node F (x:u16x2, k:u16x2) returns (y:u16x2) let y = x ^ k tel",
      Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str();
  return std::move(*Kernel);
}

TEST(KernelRunner, PerBlockAndBroadcastParams) {
  KernelRunner Runner(xorKernel(archSSE()));
  const unsigned Blocks = Runner.blocksPerCall();
  EXPECT_EQ(Blocks, 8u);
  ASSERT_EQ(Runner.paramLens(), (std::vector<unsigned>{2, 2}));

  std::mt19937_64 Rng(404);
  std::vector<uint64_t> Plain(size_t{Blocks} * 2), Out(Plain.size());
  uint64_t Key[2] = {Rng() & 0xFFFF, Rng() & 0xFFFF};
  for (uint64_t &A : Plain)
    A = Rng() & 0xFFFF;
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  for (unsigned B = 0; B < Blocks; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A],
                Plain[size_t{B} * 2 + A] ^ Key[A])
          << "block " << B << " atom " << A;
}

TEST(KernelRunner, InterleaveRoutesBlockGroups) {
  KernelRunner Runner(xorKernel(archSSE(), /*Interleave=*/true));
  // Two interleaved instances: twice the blocks per call, blocks routed
  // to instance 0 then instance 1.
  EXPECT_EQ(Runner.blocksPerCall(), 16u);
  std::mt19937_64 Rng(505);
  std::vector<uint64_t> Plain(16 * 2), Out(Plain.size());
  uint64_t Key[2] = {0x1111, 0x2222};
  for (uint64_t &A : Plain)
    A = Rng() & 0xFFFF;
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  for (unsigned B = 0; B < 16; ++B)
    for (unsigned A = 0; A < 2; ++A)
      EXPECT_EQ(Out[size_t{B} * 2 + A], Plain[size_t{B} * 2 + A] ^ Key[A]);
}

TEST(KernelRunner, KernelOnlyRunsWithoutPacking) {
  KernelRunner Runner(xorKernel(archAVX2()));
  // Just exercises the benchmark entry point; results land in internal
  // staging, so the contract is simply "does not crash or corrupt".
  for (unsigned I = 0; I < 10; ++I)
    Runner.kernelOnly();
  std::vector<uint64_t> Plain(size_t{Runner.blocksPerCall()} * 2, 7),
      Out(Plain.size());
  uint64_t Key[2] = {0, 0};
  Runner.runBatch({{false, Plain.data()}, {true, Key}}, Out.data());
  EXPECT_EQ(Out, Plain);
}

} // namespace
