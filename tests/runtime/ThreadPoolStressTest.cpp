//===- ThreadPoolStressTest.cpp - Work-stealing pool stress tests ---------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress tests for the persistent work-stealing ThreadPool: exactly-once
/// chunk accounting, slot exclusivity, concurrent jobs that would
/// deadlock under the historical one-job-at-a-time gate, stealing
/// rescuing a stalled slot, and exception containment. Run under TSan
/// (USUBA_SANITIZE=thread) by CI's sanitize job.
///
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

TEST(ThreadPoolStress, EveryChunkRunsExactlyOnceForEveryShape) {
  // Sweep shapes that exercise the range splitting: fewer chunks than
  // slots, aligned, unaligned, and chunk-heavy jobs.
  for (auto [Slots, Chunks] :
       {std::pair<unsigned, size_t>{1, 1}, {4, 3}, {4, 4}, {4, 17},
        {7, 100}, {3, 1000}}) {
    std::vector<std::atomic<unsigned>> Ran(Chunks);
    for (auto &R : Ran)
      R.store(0);
    std::atomic<unsigned> BadSlot{0};
    const unsigned SlotCap = Slots;
    ThreadPool::global().parallelFor(
        Slots, Chunks, [&](size_t Chunk, unsigned Slot) {
          if (Slot >= SlotCap)
            BadSlot.fetch_add(1);
          Ran[Chunk].fetch_add(1);
        });
    EXPECT_EQ(BadSlot.load(), 0u) << Slots << "x" << Chunks;
    for (size_t C = 0; C < Chunks; ++C)
      EXPECT_EQ(Ran[C].load(), 1u)
          << "chunk " << C << " of " << Slots << "x" << Chunks;
  }
}

TEST(ThreadPoolStress, ChunksSharingASlotNeverOverlap) {
  // The engine hands each slot exclusive scratch (a KernelRunner clone),
  // so two chunks with the same slot index must never run concurrently —
  // even when thieves move chunks between ranges.
  constexpr unsigned Slots = 6;
  std::atomic<int> InUse[Slots];
  for (auto &F : InUse)
    F.store(0);
  std::atomic<unsigned> Overlaps{0};
  ThreadPool::global().parallelFor(
      Slots, 240, [&](size_t, unsigned Slot) {
        if (InUse[Slot].exchange(1) != 0)
          Overlaps.fetch_add(1);
        // Dwell long enough for an overlap to be observable.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        InUse[Slot].store(0);
      });
  EXPECT_EQ(Overlaps.load(), 0u);
}

TEST(ThreadPoolStress, ConcurrentJobsMakeIndependentProgress) {
  // Two jobs, submitted from two client threads, cross-handshake: a
  // chunk of job A waits until job B has started a chunk and vice versa.
  // Under the historical serialized pool (one job at a time behind a
  // gate) this deadlocks; the shared pool must let both progress because
  // each caller participates in its own job.
  std::mutex M;
  std::condition_variable CV;
  bool Started[2] = {false, false};
  auto client = [&](int Me) {
    ThreadPool::global().parallelFor(2, 8, [&](size_t Chunk, unsigned) {
      if (Chunk == 0) {
        std::unique_lock<std::mutex> Lock(M);
        Started[Me] = true;
        CV.notify_all();
        CV.wait(Lock, [&] { return Started[0] && Started[1]; });
      }
    });
  };
  std::thread A(client, 0);
  std::thread B(client, 1);
  A.join();
  B.join();
  EXPECT_TRUE(Started[0] && Started[1]);
}

TEST(ThreadPoolStress, StealingRescuesAStalledSlot) {
  // Slot 0's first chunk blocks until a chunk from the *back half of
  // slot 0's own initial range* has run. Only stealing can run it (slot
  // 0 is busy blocking), so this hangs unless a second participant
  // steals across ranges — the exact starvation the fork-join engine
  // exhibited when one span ran long.
  constexpr size_t Chunks = 16; // slot 0 owns [0, 8), slot 1 owns [8, 16)
  std::mutex M;
  std::condition_variable CV;
  bool Rescued = false;
  ThreadPool::global().parallelFor(
      2, Chunks, [&](size_t Chunk, unsigned) {
        if (Chunk == 0) {
          std::unique_lock<std::mutex> Lock(M);
          CV.wait(Lock, [&] { return Rescued; });
        } else if (Chunk == 7) { // back of slot 0's initial range
          std::lock_guard<std::mutex> Lock(M);
          Rescued = true;
          CV.notify_all();
        }
      });
  EXPECT_TRUE(Rescued);
}

TEST(ThreadPoolStress, FirstExceptionPropagatesAndPoolStaysUsable) {
  std::atomic<unsigned> Ran{0};
  constexpr size_t Chunks = 64;
  EXPECT_THROW(
      ThreadPool::global().parallelFor(4, Chunks,
                                       [&](size_t Chunk, unsigned) {
                                         Ran.fetch_add(1);
                                         if (Chunk == 5)
                                           throw std::runtime_error("boom");
                                       }),
      std::runtime_error);
  // A throwing chunk does not cancel the rest of the job: every chunk
  // still ran (results stay deterministic for the non-throwing chunks).
  EXPECT_EQ(Ran.load(), Chunks);

  // The pool survives: the next job is unaffected.
  std::atomic<unsigned> Again{0};
  ThreadPool::global().parallelFor(
      4, 32, [&](size_t, unsigned) { Again.fetch_add(1); });
  EXPECT_EQ(Again.load(), 32u);
}

TEST(ThreadPoolStress, RunCompatShimCoversEveryIndex) {
  std::vector<std::atomic<unsigned>> Ran(9);
  for (auto &R : Ran)
    R.store(0);
  ThreadPool::global().run(9, [&](unsigned I) { Ran[I].fetch_add(1); });
  for (size_t I = 0; I < Ran.size(); ++I)
    EXPECT_EQ(Ran[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolStress, ManyClientsHammerThePoolConcurrently) {
  // N client threads each submit a stream of jobs; total chunk count
  // must come out exact. This is the TSan honeypot: stealing, worker
  // spawning, job publication and retirement all race here.
  constexpr unsigned Clients = 6;
  constexpr unsigned JobsPerClient = 20;
  constexpr size_t ChunksPerJob = 40;
  std::atomic<uint64_t> Total{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      for (unsigned J = 0; J < JobsPerClient; ++J)
        ThreadPool::global().parallelFor(
            3, ChunksPerJob,
            [&](size_t, unsigned) { Total.fetch_add(1); });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Total.load(),
            uint64_t{Clients} * JobsPerClient * ChunksPerJob);
}

TEST(ThreadPoolStress, DefaultThreadsIsAlwaysAtLeastOne) {
  // hardware_concurrency() may return 0 ("unknown"); the clamp keeps the
  // engine on the single-threaded path instead of a zero-slot job.
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
  EXPECT_LE(ThreadPool::defaultThreads(), ThreadPool::MaxThreads);
}

} // namespace
