//===- LayoutTest.cpp - Transposition layout tests ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Layout.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

struct LayoutCase {
  Dir Direction;
  unsigned MBits;
  ArchKind Target;
  unsigned Len; ///< atoms per block
};

class LayoutRoundTrip : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutRoundTrip, UnpackInvertsPack) {
  const LayoutCase &C = GetParam();
  SliceLayout Layout(C.Direction, C.MBits, archFor(C.Target));
  const unsigned S = Layout.slices();
  std::mt19937_64 Rng(0x107 + C.MBits);
  std::vector<uint64_t> Blocks(size_t{S} * C.Len), Back(Blocks.size());
  for (uint64_t &B : Blocks)
    B = Rng() & lowBitMask(C.MBits);
  std::vector<SimdReg> Regs(C.Len);
  Layout.pack(Blocks.data(), C.Len, Regs.data());
  Layout.unpack(Regs.data(), C.Len, Back.data());
  EXPECT_EQ(Back, Blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutRoundTrip,
    ::testing::Values(
        LayoutCase{Dir::Vert, 16, ArchKind::GP64, 4},
        LayoutCase{Dir::Vert, 16, ArchKind::SSE, 4},
        LayoutCase{Dir::Vert, 16, ArchKind::AVX512, 4},
        LayoutCase{Dir::Vert, 32, ArchKind::AVX2, 16},
        LayoutCase{Dir::Vert, 8, ArchKind::SSE, 7},
        LayoutCase{Dir::Vert, 64, ArchKind::AVX512, 3},
        LayoutCase{Dir::Horiz, 16, ArchKind::SSE, 8},
        LayoutCase{Dir::Horiz, 16, ArchKind::AVX512, 8},
        LayoutCase{Dir::Horiz, 4, ArchKind::AVX2, 5},
        LayoutCase{Dir::Vert, 1, ArchKind::GP64, 64},
        LayoutCase{Dir::Vert, 1, ArchKind::GP64, 61},
        LayoutCase{Dir::Vert, 1, ArchKind::AVX512, 64},
        LayoutCase{Dir::Vert, 1, ArchKind::SSE, 13}),
    [](const ::testing::TestParamInfo<LayoutCase> &Info) {
      return std::string(dirName(Info.param.Direction) + 1) + "m" +
             std::to_string(Info.param.MBits) + "_" +
             archFor(Info.param.Target).Name + "_len" +
             std::to_string(Info.param.Len);
    });

TEST(Layout, VerticalPlacesBlockInElement) {
  SliceLayout Layout(Dir::Vert, 16, archSSE());
  ASSERT_EQ(Layout.slices(), 8u);
  std::vector<uint64_t> Blocks(8, 0);
  Blocks[0 * 1 + 0] = 0x1234; // block 0, atom 0
  Blocks[3 * 1 + 0] = 0xBEEF; // block 3
  SimdReg Reg;
  Layout.pack(Blocks.data(), 1, &Reg);
  EXPECT_EQ(Reg.field(0, 16), 0x1234u);
  EXPECT_EQ(Reg.field(3 * 16, 16), 0xBEEFu);
}

TEST(Layout, HorizontalSpreadsAtomBitsAcrossPositions) {
  // uH16 on SSE: 16 positions of 8 bits; slice b is bit b of each group;
  // position 0 holds the atom's MSB.
  SliceLayout Layout(Dir::Horiz, 16, archSSE());
  ASSERT_EQ(Layout.slices(), 8u);
  std::vector<uint64_t> Blocks(8, 0);
  Blocks[0] = 0x8001; // block 0: MSB and LSB set
  SimdReg Reg;
  Layout.pack(Blocks.data(), 1, &Reg);
  EXPECT_EQ(Reg.bit(0 * 8 + 0), 1u);  // position 0 bit 0 <- MSB
  EXPECT_EQ(Reg.bit(15 * 8 + 0), 1u); // position 15 <- LSB
  EXPECT_EQ(Reg.bit(1 * 8 + 0), 0u);
}

TEST(Layout, BitsliceFastPathMatchesGeneric) {
  // 64 blocks x 64 bit-atoms on GP64 hits the transpose64x64 fast path;
  // compare against a SliceLayout shape that uses the generic loop.
  SliceLayout Fast(Dir::Vert, 1, archGP64());
  ASSERT_EQ(Fast.slices(), 64u);
  std::mt19937_64 Rng(77);
  std::vector<uint64_t> Blocks(64 * 64);
  for (uint64_t &B : Blocks)
    B = Rng() & 1;
  std::vector<SimdReg> Regs(64);
  Fast.pack(Blocks.data(), 64, Regs.data());
  for (unsigned R = 0; R < 64; ++R)
    for (unsigned B = 0; B < 64; ++B)
      EXPECT_EQ(Regs[R].bit(B), Blocks[B * 64 + R])
          << "reg " << R << " slice " << B;
}

TEST(Layout, BroadcastFillsEverySlice) {
  SliceLayout Layout(Dir::Vert, 16, archAVX2());
  uint64_t Atom = 0xCAFE;
  SimdReg Reg;
  Layout.packBroadcast(&Atom, 1, &Reg);
  for (unsigned E = 0; E < 16; ++E)
    EXPECT_EQ(Reg.field(E * 16, 16), 0xCAFEu);
}

TEST(Layout, BitExpansionRoundTrips) {
  std::mt19937_64 Rng(31337);
  std::vector<uint64_t> Atoms(20), Back(20);
  for (uint64_t &A : Atoms)
    A = Rng() & 0xFFFF;
  std::vector<uint64_t> Bits(20 * 16);
  expandAtomsToBits(Atoms.data(), 20, 16, Bits.data());
  collapseBitsToAtoms(Bits.data(), 20, 16, Back.data());
  EXPECT_EQ(Back, Atoms);
  // MSB-first: bit atom 0 of the first atom is its bit 15.
  EXPECT_EQ(Bits[0], (Atoms[0] >> 15) & 1);
  EXPECT_EQ(Bits[15], Atoms[0] & 1);
}

} // namespace
