//===- CircuitTest.cpp - Logic synthesis tests ----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/AesTowerSbox.h"
#include "circuits/Circuit.h"

#include "ciphers/DesTables.h"
#include "ciphers/RefAes.h"
#include "support/BitUtils.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

TEST(Circuit, EvaluateBasicGates) {
  // out0 = a & b, out1 = a ^ ~b.
  Circuit C(2);
  unsigned NotB = C.addGate(Circuit::GateKind::Not, 1);
  unsigned AndAB = C.addGate(Circuit::GateKind::And, 0, 1);
  unsigned XorA = C.addGate(Circuit::GateKind::Xor, 0, NotB);
  C.addOutput(AndAB);
  C.addOutput(XorA);
  for (unsigned A = 0; A < 2; ++A)
    for (unsigned B = 0; B < 2; ++B) {
      uint64_t Out = C.evaluate(A | (B << 1));
      EXPECT_EQ(Out & 1, A & B);
      EXPECT_EQ((Out >> 1) & 1, A ^ (B ^ 1));
    }
}

TEST(Synthesis, RandomTablesAreExact) {
  std::mt19937_64 Rng(123);
  for (unsigned Trial = 0; Trial < 20; ++Trial) {
    TruthTable Table;
    Table.InBits = 1 + static_cast<unsigned>(Rng() % 8);
    Table.OutBits = 1 + static_cast<unsigned>(Rng() % 8);
    Table.Entries.resize(size_t{1} << Table.InBits);
    for (uint64_t &E : Table.Entries)
      E = Rng() & lowBitMask(Table.OutBits);
    Circuit C = synthesizeTable(Table);
    EXPECT_TRUE(C.matchesTable(Table))
        << "in=" << Table.InBits << " out=" << Table.OutBits;
  }
}

TEST(Synthesis, ConstantAndIdentityTables) {
  // All-zero output.
  TruthTable Zero{2, 1, {0, 0, 0, 0}};
  EXPECT_TRUE(synthesizeTable(Zero).matchesTable(Zero));
  // All-ones output.
  TruthTable Ones{2, 1, {1, 1, 1, 1}};
  EXPECT_TRUE(synthesizeTable(Ones).matchesTable(Ones));
  // Identity: output bit j = input bit j; should cost zero gates beyond
  // wiring (the BDD collapses to the input variables).
  TruthTable Id{3, 3, {0, 1, 2, 3, 4, 5, 6, 7}};
  Circuit C = synthesizeTable(Id);
  EXPECT_TRUE(C.matchesTable(Id));
  EXPECT_EQ(C.numGates(), 0u);
}

TEST(Synthesis, XorParityIsCompact) {
  // Parity of 6 bits: the classic BDD-friendly function (linear chain).
  TruthTable Parity;
  Parity.InBits = 6;
  Parity.OutBits = 1;
  Parity.Entries.resize(64);
  for (unsigned I = 0; I < 64; ++I)
    Parity.Entries[I] = __builtin_popcount(I) & 1;
  Circuit C = synthesizeTable(Parity);
  EXPECT_TRUE(C.matchesTable(Parity));
  EXPECT_LE(C.numGates(), 24u)
      << "parity is a linear BDD chain: a handful of muxes";
}

TEST(KnownCircuits, RectangleSboxFromThePaper) {
  TruthTable Table;
  Table.InBits = 4;
  Table.OutBits = 4;
  Table.Entries = {6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2};
  const Circuit *Known = lookupKnownCircuit(Table);
  ASSERT_NE(Known, nullptr);
  EXPECT_TRUE(Known->matchesTable(Table));
  EXPECT_EQ(Known->numGates(), 12u) << "the paper's 12-operation circuit";
  // circuitForTable prefers the database hit over synthesis.
  EXPECT_EQ(circuitForTable(Table).numGates(), 12u);
  // A different table misses the database.
  Table.Entries[0] ^= 1;
  EXPECT_EQ(lookupKnownCircuit(Table), nullptr);
}

TEST(KnownCircuits, DesSboxesSynthesizeCorrectly) {
  for (unsigned Box = 0; Box < 8; ++Box) {
    TruthTable Table;
    Table.InBits = 6;
    Table.OutBits = 4;
    Table.Entries.resize(64);
    for (unsigned Index = 0; Index < 64; ++Index) {
      unsigned B1 = Index & 1, B6 = (Index >> 5) & 1;
      unsigned Row = (B1 << 1) | B6;
      unsigned Col = (Index >> 1) & 0xF;
      unsigned Value = des::Sboxes[Box][Row][Col], Entry = 0;
      for (unsigned J = 0; J < 4; ++J)
        Entry |= ((Value >> (3 - J)) & 1u) << J;
      Table.Entries[Index] = Entry;
    }
    Circuit C = circuitForTable(Table);
    EXPECT_TRUE(C.matchesTable(Table)) << "S" << Box + 1;
    EXPECT_LE(C.numGates(), 220u) << "S" << Box + 1;
  }
}

TEST(TowerSbox, MatchesAesTableExactly) {
  TruthTable Table;
  Table.InBits = 8;
  Table.OutBits = 8;
  Table.Entries.resize(256);
  for (unsigned I = 0; I < 256; ++I)
    Table.Entries[I] = aesSbox()[I];
  std::optional<Circuit> Tower = buildAesTowerSbox(Table);
  ASSERT_TRUE(Tower.has_value());
  EXPECT_TRUE(Tower->matchesTable(Table));
  // The composite-field construction is several times smaller than the
  // generic BDD circuit (and self-verified above).
  EXPECT_LE(Tower->numGates(), 300u);
  Circuit Bdd = synthesizeTable(Table);
  EXPECT_LT(Tower->numGates(), Bdd.numGates() / 2);
  // circuitForTable picks the structural construction.
  EXPECT_EQ(circuitForTable(Table).numGates(), Tower->numGates());
}

TEST(TowerSbox, RejectsNonAesTables) {
  TruthTable Table;
  Table.InBits = 8;
  Table.OutBits = 8;
  Table.Entries.assign(256, 0);
  EXPECT_FALSE(buildAesTowerSbox(Table).has_value());
  Table.InBits = 4;
  Table.OutBits = 4;
  Table.Entries.assign(16, 0);
  EXPECT_FALSE(buildAesTowerSbox(Table).has_value());
}

} // namespace
