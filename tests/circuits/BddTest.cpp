//===- BddTest.cpp - Hash-consed ROBDD engine tests -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/Bdd.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

TEST(Bdd, TerminalRules) {
  BddManager M(0);
  BddManager::Ref A = M.var(0);
  // ite terminal cases collapse without allocating.
  EXPECT_EQ(M.ite(BddManager::True, A, BddManager::False), A);
  EXPECT_EQ(M.ite(BddManager::False, BddManager::True, A), A);
  EXPECT_EQ(M.ite(A, BddManager::False, BddManager::True), M.mkNot(A));
  EXPECT_EQ(M.ite(A, BddManager::True, BddManager::False), A);
  EXPECT_EQ(M.mkAnd(A, BddManager::False), BddManager::False);
  EXPECT_EQ(M.mkAnd(A, BddManager::True), A);
  EXPECT_EQ(M.mkOr(A, BddManager::True), BddManager::True);
  EXPECT_EQ(M.mkXor(A, BddManager::False), A);
  EXPECT_EQ(M.mkXor(A, A), BddManager::False);
  EXPECT_EQ(M.mkAnd(A, A), A);
  EXPECT_EQ(M.mkNot(M.mkNot(A)), A);
}

TEST(Bdd, HashConsingCanonicalizes) {
  // Equivalent formulas built along different routes must intern to the
  // same reference — that equality IS the validator's proof step.
  BddManager M(0);
  BddManager::Ref A = M.var(0), B = M.var(1), C = M.var(2);
  // De Morgan: ~(a & b) == ~a | ~b.
  EXPECT_EQ(M.mkNot(M.mkAnd(A, B)), M.mkOr(M.mkNot(A), M.mkNot(B)));
  // Distribution: a & (b | c) == (a & b) | (a & c).
  EXPECT_EQ(M.mkAnd(A, M.mkOr(B, C)),
            M.mkOr(M.mkAnd(A, B), M.mkAnd(A, C)));
  // Xor associativity and via-and-or expansion.
  EXPECT_EQ(M.mkXor(M.mkXor(A, B), C), M.mkXor(A, M.mkXor(B, C)));
  EXPECT_EQ(M.mkXor(A, B),
            M.mkOr(M.mkAnd(A, M.mkNot(B)), M.mkAnd(M.mkNot(A), B)));
  // And a non-theorem stays distinct.
  EXPECT_NE(M.mkAnd(A, B), M.mkOr(A, B));
}

TEST(Bdd, EvaluateAgreesWithSemantics) {
  BddManager M(0);
  BddManager::Ref A = M.var(0), B = M.var(1), C = M.var(2);
  // Majority(a, b, c).
  BddManager::Ref Maj =
      M.mkOr(M.mkOr(M.mkAnd(A, B), M.mkAnd(A, C)), M.mkAnd(B, C));
  for (unsigned V = 0; V < 8; ++V) {
    std::vector<bool> Assign{(V & 1) != 0, (V & 2) != 0, (V & 4) != 0};
    unsigned Pop = (V & 1) + ((V >> 1) & 1) + ((V >> 2) & 1);
    EXPECT_EQ(M.evaluate(Maj, Assign), Pop >= 2) << "assignment " << V;
  }
  // Missing variables in the assignment read as false.
  EXPECT_FALSE(M.evaluate(C, {true}));
}

TEST(Bdd, RandomFormulasCanonicalizeAcrossBuildOrders) {
  // Build the same random 6-variable formula twice with operand order
  // shuffled (commuted operands); refs must match, and evaluation must
  // agree with a direct truth-table interpretation.
  std::mt19937_64 Rng(99);
  for (unsigned Trial = 0; Trial < 20; ++Trial) {
    BddManager M(0);
    std::vector<BddManager::Ref> Fwd, Com;
    std::vector<uint64_t> Truth; // 64-entry table per node, bit v = value
    for (unsigned V = 0; V < 6; ++V) {
      Fwd.push_back(M.var(V));
      Com.push_back(M.var(V));
      uint64_t T = 0;
      for (unsigned Row = 0; Row < 64; ++Row)
        T |= uint64_t{(Row >> V) & 1} << Row;
      Truth.push_back(T);
    }
    for (unsigned Step = 0; Step < 24; ++Step) {
      unsigned Op = Rng() % 3;
      size_t I = Rng() % Fwd.size(), J = Rng() % Fwd.size();
      switch (Op) {
      case 0:
        Fwd.push_back(M.mkAnd(Fwd[I], Fwd[J]));
        Com.push_back(M.mkAnd(Com[J], Com[I]));
        Truth.push_back(Truth[I] & Truth[J]);
        break;
      case 1:
        Fwd.push_back(M.mkOr(Fwd[I], Fwd[J]));
        Com.push_back(M.mkOr(Com[J], Com[I]));
        Truth.push_back(Truth[I] | Truth[J]);
        break;
      default:
        Fwd.push_back(M.mkXor(Fwd[I], Fwd[J]));
        Com.push_back(M.mkXor(Com[J], Com[I]));
        Truth.push_back(Truth[I] ^ Truth[J]);
        break;
      }
      EXPECT_EQ(Fwd.back(), Com.back()) << "trial " << Trial;
    }
    BddManager::Ref Root = Fwd.back();
    uint64_t Want = Truth.back();
    for (unsigned Row = 0; Row < 64; ++Row) {
      std::vector<bool> Assign;
      for (unsigned V = 0; V < 6; ++V)
        Assign.push_back((Row >> V) & 1);
      EXPECT_EQ(M.evaluate(Root, Assign), ((Want >> Row) & 1) != 0)
          << "trial " << Trial << " row " << Row;
    }
  }
}

TEST(Bdd, BudgetThrows) {
  // An n-variable odd-parity chain needs ~2n internal nodes; a budget of
  // 8 total nodes cannot hold parity over 16 variables.
  BddManager M(8);
  BddManager::Ref Acc = BddManager::False;
  EXPECT_THROW(
      {
        for (unsigned V = 0; V < 16; ++V)
          Acc = M.mkXor(Acc, M.var(V));
      },
      BddBudgetExceeded);
  // The manager survives the throw and stays usable within budget.
  EXPECT_LE(M.numNodes(), size_t{8});
  EXPECT_EQ(M.mkAnd(BddManager::True, BddManager::False), BddManager::False);
}

} // namespace
