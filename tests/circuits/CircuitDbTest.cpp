//===- CircuitDbTest.cpp - Known-circuit database tests -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Proves every shipped database entry (hand-optimized seeds plus the
// generated CircuitDbEntries.cpp) equivalent to its truth table with
// ROBDDs, checks that the recorded provenance matches the actual
// circuit, and exercises the canonical-hash lookup including
// manufactured hash collisions.
//
//===----------------------------------------------------------------------===//

#include "circuits/CircuitDb.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace usuba;

namespace {

TEST(CircuitDb, IsNonTrivial) {
  // The hand seed plus the generated entries: every bundled S-box table
  // (Rectangle, DES S1-S8, Serpent S0-S7 + inverses, PRESENT + inverse)
  // must be covered.
  EXPECT_GE(circuitDb().size(), 25u);
}

TEST(CircuitDb, EveryEntryIsBddProvenAgainstItsTable) {
  for (const CircuitDbEntry &E : circuitDb()) {
    std::string Why;
    EXPECT_TRUE(proveCircuitMatchesTable(E.Network, E.Table, size_t{1} << 22,
                                         &Why))
        << E.Name << ": " << Why;
    // Belt and braces: the proof and exhaustive evaluation must agree.
    EXPECT_TRUE(E.Network.matchesTable(E.Table)) << E.Name;
  }
}

TEST(CircuitDb, RecordedProvenanceMatchesActualCircuit) {
  for (const CircuitDbEntry &E : circuitDb()) {
    EXPECT_FALSE(E.Name.empty());
    EXPECT_TRUE(E.Table.isValid()) << E.Name;
    EXPECT_EQ(E.Prov.Gates, E.Network.numGates()) << E.Name;
    EXPECT_EQ(E.Prov.Depth, E.Network.depth()) << E.Name;
    if (E.Prov.From == CircuitProvenance::Origin::Superopt) {
      EXPECT_GT(E.Prov.SearchBudget, 0u) << E.Name;
      EXPECT_TRUE(std::string(E.Prov.Objective) == "min-gates" ||
                  std::string(E.Prov.Objective) == "min-depth-then-gates")
          << E.Name << ": " << E.Prov.Objective;
      // Generated entries exist to beat plain synthesis; the recorded
      // baseline must witness an improvement (or at worst a tie).
      EXPECT_GT(E.Prov.SynthGates, 0u) << E.Name;
      EXPECT_LE(E.Prov.Gates, E.Prov.SynthGates) << E.Name;
    } else {
      EXPECT_STREQ(E.Prov.Objective, "hand") << E.Name;
      EXPECT_EQ(E.Prov.SearchBudget, 0u) << E.Name;
    }
  }
}

TEST(CircuitDb, EveryBundledSboxFamilyIsCovered) {
  std::set<std::string> Names;
  for (const CircuitDbEntry &E : circuitDb())
    Names.insert(E.Name);
  for (const char *Required :
       {"des/S1", "des/S8", "serpent/S0", "serpent/S7", "serpent_dec/InvS0",
        "present/Sbox", "present_dec/InvSbox", "rectangle/SubColumn",
        "rectangle_dec/InvSubColumn"})
    EXPECT_TRUE(Names.count(Required)) << "missing entry " << Required;
}

TEST(CircuitDb, LookupFindsEveryEntryAndPrefersFewestGates) {
  for (const CircuitDbEntry &E : circuitDb()) {
    const CircuitDbEntry *Hit = circuitDbLookup(E.Table);
    ASSERT_NE(Hit, nullptr) << E.Name;
    // Identical tables may be covered by several entries (hand +
    // superopt); the lookup returns the cheapest one.
    EXPECT_LE(Hit->Network.numGates(), E.Network.numGates()) << E.Name;
    EXPECT_EQ(Hit->Table.Entries, E.Table.Entries) << E.Name;
  }
}

TEST(CircuitDb, RectangleKeepsTheBetterHandCircuit) {
  // The paper's hand-optimized SubColumn circuit (12 gates) still beats
  // the checked-in superoptimizer result, so the lookup must prefer it.
  TruthTable T;
  T.InBits = 4;
  T.OutBits = 4;
  T.Entries = {6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2};
  const CircuitDbEntry *Hit = circuitDbLookup(T);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Prov.From, CircuitProvenance::Origin::Hand);
  EXPECT_EQ(Hit->Network.numGates(), 12u);
}

TEST(CircuitDb, LookupMissesUnknownTables) {
  TruthTable T;
  T.InBits = 4;
  T.OutBits = 4;
  T.Entries = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  EXPECT_EQ(circuitDbLookup(T), nullptr);
}

TEST(CircuitDb, HashIgnoresBitsAboveOutBits) {
  // Entries are masked to OutBits before hashing and comparison: a table
  // whose rows carry garbage in ignored high bits is the same table.
  TruthTable A, B;
  A.InBits = B.InBits = 2;
  A.OutBits = B.OutBits = 2;
  A.Entries = {3, 0, 1, 2};
  B.Entries = {3 | 0xF0, 0 | 0x40, 1, 2 | 0x10};
  EXPECT_EQ(canonicalTableHash(A), canonicalTableHash(B));
  TruthTable C = A;
  C.Entries[3] = 3;
  EXPECT_NE(canonicalTableHash(A), canonicalTableHash(C));
}

TEST(CircuitDb, CollisionNeverReturnsTheWrongCircuit) {
  // Manufacture a hash collision: index a circuit for a *different*
  // table under the rectangle table's canonical hash. The lookup must
  // confirm candidates by full table comparison and still return the
  // rectangle circuit for the rectangle table.
  TruthTable Rect;
  Rect.InBits = 4;
  Rect.OutBits = 4;
  Rect.Entries = {6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2};

  CircuitDbEntry Impostor;
  Impostor.Name = "test/impostor";
  Impostor.Table.InBits = 4;
  Impostor.Table.OutBits = 4;
  Impostor.Table.Entries = {0, 1, 2, 3, 4, 5, 6, 7,
                            8, 9, 10, 11, 12, 13, 14, 15};
  {
    // Identity: out bit i = in bit i, 0 gates. Fewer gates than any
    // real entry, so a lookup fooled by the hash alone would pick it.
    Circuit C(4);
    for (unsigned I = 0; I < 4; ++I)
      C.addOutput(I);
    Impostor.Network = std::move(C);
  }
  circuitDbTestOnlyInsert(std::move(Impostor), canonicalTableHash(Rect));

  const CircuitDbEntry *Hit = circuitDbLookup(Rect);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Table.Entries, Rect.Entries);
  EXPECT_TRUE(Hit->Network.matchesTable(Rect));
  EXPECT_NE(Hit->Name, "test/impostor");

  circuitDbTestOnlyReset();
  EXPECT_NE(circuitDbLookup(Rect), nullptr);
}

TEST(CircuitDb, ProofRefutesWrongCircuits) {
  TruthTable Xor2;
  Xor2.InBits = 2;
  Xor2.OutBits = 1;
  Xor2.Entries = {0, 1, 1, 0};
  Circuit And2(2);
  And2.addOutput(And2.addGate(Circuit::GateKind::And, 0, 1));
  std::string Why;
  EXPECT_FALSE(proveCircuitMatchesTable(And2, Xor2, size_t{1} << 20, &Why));
  EXPECT_FALSE(Why.empty());
  Circuit Good(2);
  Good.addOutput(Good.addGate(Circuit::GateKind::Xor, 0, 1));
  EXPECT_TRUE(proveCircuitMatchesTable(Good, Xor2, size_t{1} << 20, &Why))
      << Why;
}

} // namespace
