//===- SuperoptTest.cpp - S-box superoptimizer tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the enumerative superoptimizer: correctness of the
// extracted circuits, determinism under a fixed budget and seed, real
// improvement over BDD synthesis on the bundled S-boxes, and the
// budget/arity guard rails.
//
//===----------------------------------------------------------------------===//

#include "circuits/Superopt.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

TruthTable rectangleTable() {
  TruthTable T;
  T.InBits = 4;
  T.OutBits = 4;
  T.Entries = {6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2};
  return T;
}

TEST(Superopt, FindsTrivialCircuits) {
  TruthTable Xor2;
  Xor2.InBits = 2;
  Xor2.OutBits = 1;
  Xor2.Entries = {0, 1, 1, 0};
  std::optional<SuperoptResult> R =
      superoptimizeTable(Xor2, SuperoptObjective::MinGates);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Network.matchesTable(Xor2));
  EXPECT_EQ(R->Gates, 1u);
  EXPECT_EQ(R->Depth, 1u);
}

TEST(Superopt, ImprovesRectangleUnderBothObjectives) {
  TruthTable T = rectangleTable();
  SuperoptLimits Limits;
  Limits.MaxNodes = 500000;
  for (SuperoptObjective Obj :
       {SuperoptObjective::MinGates, SuperoptObjective::MinDepthThenGates}) {
    std::optional<SuperoptResult> R = superoptimizeTable(T, Obj, Limits);
    ASSERT_TRUE(R.has_value()) << superoptObjectiveName(Obj);
    EXPECT_TRUE(R->Network.matchesTable(T)) << superoptObjectiveName(Obj);
    EXPECT_TRUE(R->Improved) << superoptObjectiveName(Obj);
    EXPECT_LT(R->Gates, R->SynthGates) << superoptObjectiveName(Obj);
    EXPECT_LT(R->Depth, R->SynthDepth) << superoptObjectiveName(Obj);
    // The recorded metrics describe the returned network.
    EXPECT_EQ(R->Gates, R->Network.numGates()) << superoptObjectiveName(Obj);
    EXPECT_EQ(R->Depth, R->Network.depth()) << superoptObjectiveName(Obj);
  }
}

TEST(Superopt, IsDeterministicUnderFixedBudgetAndSeed) {
  TruthTable T = rectangleTable();
  SuperoptLimits Limits;
  Limits.MaxNodes = 200000;
  std::optional<SuperoptResult> A =
      superoptimizeTable(T, SuperoptObjective::MinGates, Limits, 7);
  std::optional<SuperoptResult> B =
      superoptimizeTable(T, SuperoptObjective::MinGates, Limits, 7);
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(A->NodesExamined, B->NodesExamined);
  ASSERT_EQ(A->Network.numGates(), B->Network.numGates());
  for (unsigned I = 0; I < A->Network.numGates(); ++I) {
    EXPECT_EQ(A->Network.gates()[I].Kind, B->Network.gates()[I].Kind);
    EXPECT_EQ(A->Network.gates()[I].A, B->Network.gates()[I].A);
    EXPECT_EQ(A->Network.gates()[I].B, B->Network.gates()[I].B);
  }
  EXPECT_EQ(A->Network.outputs(), B->Network.outputs());
}

TEST(Superopt, NeverReturnsWorseThanSynthesis) {
  // A starved search must still return a valid circuit: the synthesis
  // baseline it was seeded with.
  TruthTable T = rectangleTable();
  SuperoptLimits Limits;
  Limits.MaxNodes = 1;
  std::optional<SuperoptResult> R =
      superoptimizeTable(T, SuperoptObjective::MinGates, Limits);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Network.matchesTable(T));
  EXPECT_LE(R->Gates, R->SynthGates);
}

TEST(Superopt, RespectsTheNodeBudget) {
  TruthTable T = rectangleTable();
  SuperoptLimits Limits;
  Limits.MaxNodes = 50000;
  std::optional<SuperoptResult> R =
      superoptimizeTable(T, SuperoptObjective::MinGates, Limits);
  ASSERT_TRUE(R.has_value());
  // The counter stops within one candidate of the budget.
  EXPECT_LE(R->NodesExamined, Limits.MaxNodes + 1);
}

TEST(Superopt, RejectsWideTables) {
  TruthTable T;
  T.InBits = 7;
  T.OutBits = 4;
  T.Entries.assign(size_t{1} << 7, 0);
  EXPECT_FALSE(
      superoptimizeTable(T, SuperoptObjective::MinGates).has_value());
}

TEST(Superopt, HandlesMultiOutputWideRows) {
  // 3 -> 5 bits: output bits above InBits and constant output bits both
  // extract correctly.
  TruthTable T;
  T.InBits = 3;
  T.OutBits = 5;
  T.Entries = {17, 4, 9, 30, 2, 21, 8, 11};
  SuperoptLimits Limits;
  Limits.MaxNodes = 100000;
  std::optional<SuperoptResult> R =
      superoptimizeTable(T, SuperoptObjective::MinGates, Limits);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Network.matchesTable(T));
}

} // namespace
