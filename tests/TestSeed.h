//===- TestSeed.h - Deterministic seed override for randomized tests ------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helper for every randomized (property/fuzz) test: the seed a
/// test would use by default can be overridden with USUBA_TEST_SEED for
/// deterministic replay of a failure. Tests pair this with a
/// SCOPED_TRACE that prints the seed, so a red CI run always shows the
/// exact value to export:
///
///   const uint64_t Seed = testSeed(0x1234);
///   SCOPED_TRACE(testSeedTrace(Seed));
///   std::mt19937_64 Rng(Seed);
///
/// USUBA_TEST_SEED accepts decimal, 0x hex or 0 octal (strtoull base 0).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_TESTS_TESTSEED_H
#define USUBA_TESTS_TESTSEED_H

#include <cstdint>
#include <cstdlib>
#include <string>

namespace usuba {

/// \p Default unless USUBA_TEST_SEED is set (and non-empty), in which
/// case every call returns the override — replaying one failing seed
/// across a whole parameterized suite is the point.
inline uint64_t testSeed(uint64_t Default) {
  const char *Env = std::getenv("USUBA_TEST_SEED");
  if (!Env || !Env[0])
    return Default;
  return std::strtoull(Env, nullptr, 0);
}

/// The failure-trace line: how to reproduce this exact run.
inline std::string testSeedTrace(uint64_t Seed) {
  return "seed " + std::to_string(Seed) +
         " (replay with USUBA_TEST_SEED=" + std::to_string(Seed) + ")";
}

} // namespace usuba

#endif // USUBA_TESTS_TESTSEED_H
