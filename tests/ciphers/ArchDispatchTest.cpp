//===- ArchDispatchTest.cpp - Runtime multi-arch dispatch tests -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The archAuto() sentinel must resolve — once, at compile time — to the
/// widest host-supported ISA, pin that arch into the resulting cipher's
/// config, share kernel-cache entries with explicitly pinned compiles,
/// and produce byte-identical output to them.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "ciphers/KernelCache.h"
#include "support/Telemetry.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace usuba;

namespace {

CipherConfig autoConfig(CipherId Id, SlicingMode Mode) {
  CipherConfig Config;
  Config.Id = Id;
  Config.Slicing = Mode;
  Config.Target = &archAuto();
  Config.PreferNative = false; // dispatch logic is engine-independent
  return Config;
}

TEST(ArchDispatch, ProbeIsCoherent) {
  // gp64 is the portable baseline: always executable.
  EXPECT_TRUE(archSupported(archGP64()));
  // The winner of the probe must itself be supported, and the
  // justification names what decided it.
  EXPECT_TRUE(archSupported(archBest()));
  EXPECT_NE(archBestWhy(), nullptr);
  EXPECT_NE(std::strlen(archBestWhy()), 0u);
  // The sentinel is its own identity, never a real target.
  EXPECT_NE(&archAuto(), &archBest());
  EXPECT_STREQ(archAuto().Name, "auto");
  // Every arch the probe reports supported must be at most as wide as
  // the winner (the ladder picks widest-first).
  unsigned Count = 0;
  const Arch *const *All = allArchs(Count);
  for (unsigned I = 0; I < Count; ++I)
    if (archSupported(*All[I]))
      EXPECT_LE(All[I]->SliceBits, archBest().SliceBits)
          << All[I]->Name << " supported but wider than archBest()";
}

TEST(ArchDispatch, AutoResolvesAndPinsTheTarget) {
  CipherResult Result =
      UsubaCipher::compile(autoConfig(CipherId::Chacha20,
                                      SlicingMode::Vslice));
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  const UsubaCipher &Cipher = Result.cipher();
  // The sentinel never survives compilation: the config names the real
  // resolved arch so cache keys, stats and remarks all tell the truth.
  EXPECT_NE(Cipher.config().Target, &archAuto());
  EXPECT_EQ(Cipher.config().Target, &archBest())
      << "auto resolved to " << Cipher.config().Target->Name
      << " but the host probe says " << archBest().Name;
}

TEST(ArchDispatch, AutoSharesCacheAndBytesWithPinnedCompile) {
  kernelCacheClear();
  CipherConfig Pinned = autoConfig(CipherId::Rectangle, SlicingMode::Vslice);
  Pinned.Target = &archBest();
  CipherResult PinnedResult = UsubaCipher::compile(Pinned);
  ASSERT_TRUE(PinnedResult.ok()) << PinnedResult.errorText();
  EXPECT_FALSE(PinnedResult.cipher().stats().FromKernelCache);

  CipherResult AutoResult = UsubaCipher::compile(
      autoConfig(CipherId::Rectangle, SlicingMode::Vslice));
  ASSERT_TRUE(AutoResult.ok()) << AutoResult.errorText();
  // Same resolved arch => same cache key => the auto compile is a hit.
  EXPECT_TRUE(AutoResult.cipher().stats().FromKernelCache)
      << "auto compile missed the cache entry the pinned compile stored";

  // And the dispatched cipher is byte-identical to the pinned one.
  UsubaCipher A = std::move(PinnedResult).take();
  UsubaCipher B = std::move(AutoResult).take();
  std::vector<uint8_t> Key(A.keyBytes(), 0x42);
  A.setKey(Key.data(), Key.size());
  B.setKey(Key.data(), Key.size());
  const uint8_t Nonce[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<uint8_t> DataA(size_t{3} * A.blocksPerCall() * A.blockBytes()
                                 + 13,
                             0x5C);
  std::vector<uint8_t> DataB = DataA;
  A.ctrXor(DataA.data(), DataA.size(), Nonce, 7);
  B.ctrXor(DataB.data(), DataB.size(), Nonce, 7);
  EXPECT_EQ(DataA, DataB);
}

TEST(ArchDispatch, DispatchIsCountedInTelemetry) {
  Telemetry &Tel = Telemetry::instance();
  const bool Was = Tel.enabled();
  Tel.setEnabled(true);
  const std::string Counter =
      std::string("cipher.dispatch.") + archBest().Name;
  const uint64_t Before = Tel.counter(Counter);
  CipherResult Result = UsubaCipher::compile(
      autoConfig(CipherId::Present, SlicingMode::Bitslice));
  Tel.setEnabled(Was);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  EXPECT_EQ(Tel.counter(Counter), Before + 1)
      << "no " << Counter << " tick for an auto-dispatched compile";
}

} // namespace
