//===- ThreadedEngineTest.cpp - Threaded CTR/ECB engine tests -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded batched engine must be bit-identical to the
/// single-threaded one for every thread count, including deliberate
/// over-subscription (more workers than cores — how these tests exercise
/// real concurrency on small CI machines).
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "cbackend/NativeJit.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

/// Scoped environment override, restored on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~EnvGuard() {
    if (Saved)
      setenv(Name, Saved->c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

UsubaCipher make(CipherId Id, SlicingMode Mode, bool Native = false) {
  CipherConfig Config;
  Config.Id = Id;
  Config.Slicing = Mode;
  Config.Target = &archAVX2();
  Config.PreferNative = Native;
  CipherResult Result = UsubaCipher::compile(Config);
  EXPECT_TRUE(Result.ok()) << Result.errorText();
  return std::move(Result).take();
}

std::vector<uint8_t> randomBytes(size_t Size, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<uint8_t> Bytes(Size);
  for (uint8_t &B : Bytes)
    B = static_cast<uint8_t>(Rng());
  return Bytes;
}

TEST(ThreadedEngine, CtrMatchesSingleThreadForEveryThreadCount) {
  for (auto [Id, Mode] :
       {std::pair{CipherId::Aes128, SlicingMode::Hslice},
        std::pair{CipherId::Chacha20, SlicingMode::Vslice},
        std::pair{CipherId::Des, SlicingMode::Bitslice}}) {
    UsubaCipher Cipher = make(Id, Mode);
    std::vector<uint8_t> Key = randomBytes(Cipher.keyBytes(), 0xCE7);
    Cipher.setKey(Key.data(), Key.size());
    uint8_t Nonce[12] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2};

    // Enough data for ~9 kernel batches, with a ragged tail.
    const size_t Size = size_t{9} * Cipher.blocksPerCall() *
                            Cipher.blockBytes() + 37;
    std::vector<uint8_t> Reference = randomBytes(Size, 0xC0FFEE);
    std::vector<uint8_t> Plain = Reference;

    Cipher.setThreadCount(1);
    Cipher.ctrXor(Reference.data(), Reference.size(), Nonce, 3);

    for (unsigned Threads : {2u, 4u, 7u}) {
      std::vector<uint8_t> Data = Plain;
      Cipher.setThreadCount(Threads);
      EXPECT_EQ(Cipher.threadCount(), Threads);
      Cipher.ctrXor(Data.data(), Data.size(), Nonce, 3);
      EXPECT_EQ(Data, Reference)
          << cipherName(Id) << " with " << Threads << " threads";
    }
  }
}

TEST(ThreadedEngine, EcbMatchesSingleThreadAndSupportsAliasing) {
  UsubaCipher Cipher = make(CipherId::Rectangle, SlicingMode::Vslice);
  std::vector<uint8_t> Key = randomBytes(Cipher.keyBytes(), 42);
  Cipher.setKey(Key.data(), Key.size());

  const size_t Blocks = size_t{9} * Cipher.blocksPerCall() + 5;
  std::vector<uint8_t> Plain =
      randomBytes(Blocks * Cipher.blockBytes(), 0xEC8);

  Cipher.setThreadCount(1);
  std::vector<uint8_t> Reference(Plain.size());
  Cipher.ecbEncrypt(Plain.data(), Reference.data(), Blocks);

  Cipher.setThreadCount(5);
  std::vector<uint8_t> Out(Plain.size());
  Cipher.ecbEncrypt(Plain.data(), Out.data(), Blocks);
  EXPECT_EQ(Out, Reference);

  // In == Out aliasing: each worker reads only its own span.
  std::vector<uint8_t> InPlace = Plain;
  Cipher.ecbEncrypt(InPlace.data(), InPlace.data(), Blocks);
  EXPECT_EQ(InPlace, Reference);

  // Threaded decryption inverts.
  Cipher.ecbDecrypt(InPlace.data(), InPlace.data(), Blocks);
  EXPECT_EQ(InPlace, Plain);
}

TEST(ThreadedEngine, DesDecryptUsesReversedSubkeysUnderThreads) {
  UsubaCipher Cipher = make(CipherId::Des, SlicingMode::Bitslice);
  std::vector<uint8_t> Key = randomBytes(Cipher.keyBytes(), 7);
  Cipher.setKey(Key.data(), Key.size());
  Cipher.setThreadCount(4);
  const size_t Blocks = size_t{4} * Cipher.blocksPerCall();
  std::vector<uint8_t> Plain = randomBytes(Blocks * Cipher.blockBytes(), 11);
  std::vector<uint8_t> Crypt(Plain.size()), Back(Plain.size());
  Cipher.ecbEncrypt(Plain.data(), Crypt.data(), Blocks);
  Cipher.ecbDecrypt(Crypt.data(), Back.data(), Blocks);
  EXPECT_EQ(Back, Plain);
  EXPECT_NE(Crypt, Plain);
}

TEST(ThreadedEngine, ThreadCountResolution) {
  UsubaCipher Cipher = make(CipherId::Serpent, SlicingMode::Vslice);
  {
    EnvGuard Env("USUBA_THREADS", "3");
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    EXPECT_EQ(Cipher.threadCount(), 3u); // auto follows the environment
  }
  Cipher.setThreadCount(6);
  EXPECT_EQ(Cipher.threadCount(), 6u); // explicit beats the environment
  Cipher.setThreadCount(0);
  EnvGuard Env("USUBA_THREADS", "1");
  EXPECT_EQ(Cipher.threadCount(), 1u);
}

TEST(ThreadedEngine, ConfigThreadsFieldSeedsTheRequest) {
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  Config.Threads = 5;
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok());
  EXPECT_EQ(Result.cipher().threadCount(), 5u);
}

TEST(ThreadedEngine, ConcurrentClientsMatchSingleThreadOracle) {
  // Several client threads drive *independent* cipher instances through
  // the shared work-stealing pool at once (the historical pool
  // serialized them behind a gate). Every client's ciphertext must match
  // the single-threaded oracle byte for byte.
  UsubaCipher Oracle = make(CipherId::Chacha20, SlicingMode::Vslice);
  std::vector<uint8_t> Key = randomBytes(Oracle.keyBytes(), 0xAB);
  Oracle.setKey(Key.data(), Key.size());
  uint8_t Nonce[12] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
  const size_t Size =
      size_t{12} * Oracle.blocksPerCall() * Oracle.blockBytes() + 29;
  std::vector<uint8_t> Plain = randomBytes(Size, 0x90);
  std::vector<uint8_t> Reference = Plain;
  Oracle.setThreadCount(1);
  Oracle.ctrXor(Reference.data(), Reference.size(), Nonce, 11);

  constexpr unsigned Clients = 4;
  std::vector<std::vector<uint8_t>> Outputs(Clients, Plain);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      UsubaCipher Cipher = make(CipherId::Chacha20, SlicingMode::Vslice);
      Cipher.setKey(Key.data(), Key.size());
      Cipher.setThreadCount(3);
      Cipher.ctrXor(Outputs[C].data(), Outputs[C].size(), Nonce, 11);
    });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned C = 0; C < Clients; ++C)
    EXPECT_EQ(Outputs[C], Reference) << "client " << C;
}

TEST(ThreadedEngine, NativeThreadedCtrMatchesSingleThread) {
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler for the JIT";
  UsubaCipher Cipher =
      make(CipherId::Chacha20, SlicingMode::Vslice, /*Native=*/true);
  std::vector<uint8_t> Key = randomBytes(32, 0x517);
  Cipher.setKey(Key.data(), Key.size());
  uint8_t Nonce[12] = {};

  const size_t Size =
      size_t{8} * Cipher.blocksPerCall() * Cipher.blockBytes() + 17;
  std::vector<uint8_t> Reference = randomBytes(Size, 0xFEED);
  std::vector<uint8_t> Plain = Reference;
  Cipher.setThreadCount(1);
  Cipher.ctrXor(Reference.data(), Reference.size(), Nonce, 0);
  Cipher.setThreadCount(4);
  Cipher.ctrXor(Plain.data(), Plain.size(), Nonce, 0);
  // Same plaintext, same nonce/counter: equal ciphertext means the
  // native threaded clones produced an identical keystream.
  EXPECT_EQ(Plain, Reference);
}

} // namespace
