//===- KernelCacheTest.cpp - Compiled-kernel cache tests ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/KernelCache.h"

#include "cbackend/NativeJit.h"
#include "ciphers/UsubaCipher.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <vector>

using namespace usuba;

namespace {

/// Scoped environment override, restored on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~EnvGuard() {
    if (Saved)
      setenv(Name, Saved->c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

CipherConfig rectangleConfig() {
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  return Config;
}

std::optional<UsubaCipher> makeCipher(const CipherConfig &Config) {
  CipherResult Result = UsubaCipher::compile(Config);
  if (!Result)
    return std::nullopt;
  return std::move(Result).take();
}

std::vector<uint8_t> encryptSample(UsubaCipher &Cipher) {
  uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Cipher.setKey(Key, sizeof(Key));
  const size_t Blocks = 32;
  std::vector<uint8_t> In(Blocks * Cipher.blockBytes()), Out(In.size());
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint8_t>(I * 31 + 5);
  Cipher.ecbEncrypt(In.data(), Out.data(), Blocks);
  return Out;
}

TEST(KernelCache, SecondCreateHitsAndMatches) {
  kernelCacheClear();
  CipherConfig Config = rectangleConfig();

  std::optional<UsubaCipher> First = makeCipher(Config);
  ASSERT_TRUE(First.has_value());
  EXPECT_FALSE(First->stats().FromKernelCache);
  KernelCacheStats AfterFirst = kernelCacheStats();
  EXPECT_GE(AfterFirst.Misses, 1u);
  EXPECT_GE(AfterFirst.Entries, 1u);
  EXPECT_EQ(AfterFirst.Hits, 0u);

  std::optional<UsubaCipher> Second = makeCipher(Config);
  ASSERT_TRUE(Second.has_value());
  EXPECT_TRUE(Second->stats().FromKernelCache);
  KernelCacheStats AfterSecond = kernelCacheStats();
  EXPECT_GE(AfterSecond.Hits, 1u);
  EXPECT_EQ(AfterSecond.Entries, AfterFirst.Entries); // no recompile

  EXPECT_EQ(encryptSample(*First), encryptSample(*Second));
  kernelCacheClear();
}

TEST(KernelCache, DisabledByEnvironment) {
  kernelCacheClear();
  EnvGuard Off("USUBA_KERNEL_CACHE", "0");
  CipherConfig Config = rectangleConfig();
  ASSERT_TRUE(makeCipher(Config).has_value());
  ASSERT_TRUE(makeCipher(Config).has_value());
  KernelCacheStats Stats = kernelCacheStats();
  EXPECT_EQ(Stats.Entries, 0u);
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Stats.Misses, 0u);
}

TEST(KernelCache, TypedKnobOverridesEnvironment) {
  kernelCacheClear();
  CipherConfig Config = rectangleConfig();

  // Explicit opt-out wins over an enabling (unset) environment.
  Config.UseKernelCache = false;
  ASSERT_TRUE(makeCipher(Config).has_value());
  EXPECT_EQ(kernelCacheStats().Entries, 0u);

  // Explicit opt-in wins over USUBA_KERNEL_CACHE=0.
  EnvGuard Off("USUBA_KERNEL_CACHE", "0");
  Config.UseKernelCache = true;
  ASSERT_TRUE(makeCipher(Config).has_value());
  EXPECT_GE(kernelCacheStats().Entries, 1u);
  std::optional<UsubaCipher> Again = makeCipher(Config);
  ASSERT_TRUE(Again.has_value());
  EXPECT_TRUE(Again->stats().FromKernelCache);
  kernelCacheClear();
}

TEST(KernelCache, KeyCoversConfigVariantAndJitEnvironment) {
  CipherConfig Config = rectangleConfig();
  std::string Enc = kernelCacheKey(Config, "enc");
  EXPECT_NE(Enc, kernelCacheKey(Config, "dec"));

  CipherConfig Bitslice = Config;
  Bitslice.Slicing = SlicingMode::Bitslice;
  EXPECT_NE(Enc, kernelCacheKey(Bitslice, "enc"));

  CipherConfig Native = Config;
  Native.PreferNative = true;
  EXPECT_NE(Enc, kernelCacheKey(Native, "enc"));

  CipherConfig Avx = Config;
  Avx.Target = &archAVX2();
  EXPECT_NE(Enc, kernelCacheKey(Avx, "enc"));

  // Changing the JIT's environment must change the key: the degradation
  // ladder tests flip USUBA_CC between creates of the same config and
  // expect a fresh JIT attempt.
  std::string Before = kernelCacheKey(Config, "enc");
  EnvGuard Cc("USUBA_CC", "/nonexistent/compiler");
  EXPECT_NE(Before, kernelCacheKey(Config, "enc"));

  // Threads is an execution knob, not a compilation input: same key.
  CipherConfig Threaded = Config;
  Threaded.Threads = 8;
  EXPECT_EQ(kernelCacheKey(Config, "enc"), kernelCacheKey(Threaded, "enc"));

  // The typed JIT knobs are compilation inputs: each changes the key.
  CipherConfig Opt = Config;
  Opt.JitOptLevel = "-O1";
  EXPECT_NE(kernelCacheKey(Config, "enc"), kernelCacheKey(Opt, "enc"));
  CipherConfig Budget = Config;
  Budget.CcTimeoutMillis = 1234;
  EXPECT_NE(kernelCacheKey(Config, "enc"), kernelCacheKey(Budget, "enc"));
}

TEST(KernelCache, NativeKernelIsSharedAcrossInstances) {
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler for the JIT";
  kernelCacheClear();
  CipherConfig Config = rectangleConfig();
  Config.PreferNative = true;

  std::optional<UsubaCipher> First = makeCipher(Config);
  ASSERT_TRUE(First.has_value());
  std::optional<UsubaCipher> Second = makeCipher(Config);
  ASSERT_TRUE(Second.has_value());
  EXPECT_GE(kernelCacheStats().Hits, 1u);
  CipherStats FirstStats = First->stats(), SecondStats = Second->stats();
  EXPECT_EQ(FirstStats.Native, SecondStats.Native);
  // A cached failure replays both the kind and the detail.
  EXPECT_EQ(FirstStats.Fallback, SecondStats.Fallback);
  EXPECT_EQ(FirstStats.FallbackDetail, SecondStats.FallbackDetail);
  EXPECT_EQ(encryptSample(*First), encryptSample(*Second));
  kernelCacheClear();
}

} // namespace
