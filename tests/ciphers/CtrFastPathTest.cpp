//===- CtrFastPathTest.cpp - CTR fast path vs generic engine --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The CTR fast path (KernelRunner::runCtrBatch) replaces the generic
// counter materialization + bit transposition with analytically written
// counter slices and a fused untranspose/XOR. These tests pin it against
// the generic engine bit for bit, across the cases where the analytic
// slice construction has edge behavior: unaligned counter bases (Base mod
// 64 != 0), carries rippling into high counter bits, ragged tails, and
// multi-batch spans. The counter-specialized kernel (SpecializeCtr) is
// held to the same standard, including its fallback when a call crosses
// a counter epoch.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "support/Telemetry.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

using namespace usuba;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Rng(0xC7FA57);
  return Rng;
}

UsubaCipher make(CipherId Id, SlicingMode Mode, bool FastPath,
                 bool Native = false, bool Specialize = false) {
  CipherConfig Config;
  Config.Id = Id;
  Config.Slicing = Mode;
  Config.Target = &archAVX2();
  Config.PreferNative = Native;
  Config.CtrFastPath = FastPath;
  Config.SpecializeCtr = Specialize;
  // Keep fast/slow instances from sharing compiled kernels in ways that
  // would mask a knob bug; the key covers CtrFastPath only through
  // behavior, not compilation, so caching is fine — but native self-check
  // state is per-runner anyway.
  CipherResult Result = UsubaCipher::compile(Config);
  EXPECT_TRUE(Result.ok()) << Result.errorText();
  return std::move(Result).take();
}

std::vector<uint8_t> randomBytes(size_t N) {
  std::vector<uint8_t> Out(N);
  for (uint8_t &B : Out)
    B = static_cast<uint8_t>(rng()());
  return Out;
}

/// Encrypts \p Data twice — fast path on and off — and expects identical
/// ciphertext for every (nonce, counter, length) case.
void expectFastMatchesGeneric(CipherId Id, SlicingMode Mode, bool Native) {
  UsubaCipher Fast = make(Id, Mode, /*FastPath=*/true, Native);
  UsubaCipher Slow = make(Id, Mode, /*FastPath=*/false, Native);
  std::vector<uint8_t> Key = randomBytes(Fast.keyBytes());
  Fast.setKey(Key.data(), Key.size());
  Slow.setKey(Key.data(), Key.size());

  struct Case {
    uint64_t NonceValue;
    uint64_t Counter;
    size_t Length;
  };
  const unsigned BatchBytes = Fast.blocksPerCall() * 8;
  const Case Cases[] = {
      // Aligned base, several batches plus a ragged tail.
      {0, 0, size_t{3} * BatchBytes + 13},
      // Base mod 64 != 0: the low canonical slices rotate.
      {0x123456789ABCDEF5ull, 7, size_t{2} * BatchBytes + 8},
      // Carries ripple far into the high counter bits mid-span.
      {0x00000000FFFFFFC0ull, 0, size_t{2} * BatchBytes},
      {0x0000FFFFFFFFFFF0ull, 3, BatchBytes + 24},
      // Sub-block tail only.
      {42, 9, 5},
      // Exactly one block; exactly one batch.
      {1ull << 63, 1, 8},
      {7, 0, BatchBytes},
  };
  for (const Case &C : Cases) {
    uint8_t Nonce[8];
    for (unsigned I = 0; I < 8; ++I)
      Nonce[I] = static_cast<uint8_t>(C.NonceValue >> (8 * (7 - I)));
    std::vector<uint8_t> Plain = randomBytes(C.Length);
    std::vector<uint8_t> A = Plain, B = Plain;
    Fast.ctrXor(A.data(), A.size(), Nonce, C.Counter);
    Slow.ctrXor(B.data(), B.size(), Nonce, C.Counter);
    EXPECT_EQ(A, B) << cipherName(Id) << "/" << slicingName(Mode)
                    << " nonce=" << C.NonceValue << " ctr=" << C.Counter
                    << " len=" << C.Length << (Native ? " native" : "");
    // Keystream XOR is an involution on either path.
    Fast.ctrXor(A.data(), A.size(), Nonce, C.Counter);
    EXPECT_EQ(A, Plain);
  }
}

TEST(CtrFastPath, MatchesGenericInterpreter) {
  expectFastMatchesGeneric(CipherId::Des, SlicingMode::Bitslice, false);
  expectFastMatchesGeneric(CipherId::Present, SlicingMode::Bitslice, false);
  expectFastMatchesGeneric(CipherId::Rectangle, SlicingMode::Bitslice, false);
  // DES with m = 1 is effectively bitsliced even under -V; the fast path
  // must recognize the shape there too.
  expectFastMatchesGeneric(CipherId::Des, SlicingMode::Vslice, false);
}

TEST(CtrFastPath, MatchesGenericNative) {
  // On the native rung, the first batch still runs the generic
  // differential self-check; later batches take the fast path.
  expectFastMatchesGeneric(CipherId::Des, SlicingMode::Bitslice, true);
  expectFastMatchesGeneric(CipherId::Present, SlicingMode::Bitslice, true);
}

TEST(CtrFastPath, EngagesForEligibleShapes) {
  Telemetry &T = Telemetry::instance();
  const bool Was = T.enabled();
  T.setEnabled(true);
  T.reset();
  UsubaCipher Cipher =
      make(CipherId::Des, SlicingMode::Bitslice, /*FastPath=*/true);
  std::vector<uint8_t> Key = randomBytes(Cipher.keyBytes());
  Cipher.setKey(Key.data(), Key.size());
  uint8_t Nonce[8] = {};
  std::vector<uint8_t> Data = randomBytes(Cipher.blocksPerCall() * 8 * 2);
  Cipher.ctrXor(Data.data(), Data.size(), Nonce, 0);
  EXPECT_GE(T.counter("runner.ctr_fast_batches"), 2u);
  T.reset();
  T.setEnabled(Was);
}

TEST(CtrFastPath, KnobAndUnsupportedShapesStayGeneric) {
  Telemetry &T = Telemetry::instance();
  const bool Was = T.enabled();
  T.setEnabled(true);

  // Knob off: no fast batches.
  T.reset();
  UsubaCipher Off =
      make(CipherId::Des, SlicingMode::Bitslice, /*FastPath=*/false);
  std::vector<uint8_t> Key = randomBytes(Off.keyBytes());
  Off.setKey(Key.data(), Key.size());
  uint8_t Nonce[8] = {};
  std::vector<uint8_t> Data = randomBytes(Off.blocksPerCall() * 8);
  Off.ctrXor(Data.data(), Data.size(), Nonce, 0);
  EXPECT_EQ(T.counter("runner.ctr_fast_batches"), 0u);

  // 128-bit blocks (Serpent) and ChaCha20 never match the shape.
  T.reset();
  UsubaCipher Serpent =
      make(CipherId::Serpent, SlicingMode::Vslice, /*FastPath=*/true);
  Key = randomBytes(Serpent.keyBytes());
  Serpent.setKey(Key.data(), Key.size());
  uint8_t Nonce12[12] = {};
  Data = randomBytes(256);
  Serpent.ctrXor(Data.data(), Data.size(), Nonce12, 0);
  EXPECT_EQ(T.counter("runner.ctr_fast_batches"), 0u);

  T.reset();
  T.setEnabled(Was);
}

TEST(CtrFastPath, SpecializedKernelMatchesGeneric) {
  UsubaCipher Spec = make(CipherId::Present, SlicingMode::Bitslice,
                          /*FastPath=*/true, /*Native=*/false,
                          /*Specialize=*/true);
  UsubaCipher Plain = make(CipherId::Present, SlicingMode::Bitslice,
                           /*FastPath=*/false);
  std::vector<uint8_t> Key = randomBytes(Spec.keyBytes());
  Spec.setKey(Key.data(), Key.size());
  Plain.setKey(Key.data(), Key.size());

  // The specialized kernel must shrink: the key cone and high counter
  // cone folded away.
  uint8_t Nonce[8] = {0, 0, 0, 1, 0, 0, 0, 0}; // epoch 1, in-epoch span
  std::vector<uint8_t> P = randomBytes(Spec.blocksPerCall() * 8 * 2 + 11);
  std::vector<uint8_t> A = P, B = P;
  Spec.ctrXor(A.data(), A.size(), Nonce, 77);
  Plain.ctrXor(B.data(), B.size(), Nonce, 77);
  EXPECT_EQ(A, B);

  // A span crossing the epoch boundary must fall back (and stay right).
  uint8_t EdgeNonce[8] = {0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xF0};
  A = B = P;
  Spec.ctrXor(A.data(), A.size(), EdgeNonce, 0);
  Plain.ctrXor(B.data(), B.size(), EdgeNonce, 0);
  EXPECT_EQ(A, B);

  // Re-keying invalidates the specialization.
  Key = randomBytes(Spec.keyBytes());
  Spec.setKey(Key.data(), Key.size());
  Plain.setKey(Key.data(), Key.size());
  A = B = P;
  Spec.ctrXor(A.data(), A.size(), Nonce, 77);
  Plain.ctrXor(B.data(), B.size(), Nonce, 77);
  EXPECT_EQ(A, B);
}

TEST(CtrFastPath, SpecializedKernelIsSmaller) {
  // White-box: the specialization must actually delete the key/counter
  // cone, otherwise it is pure overhead. Observed via the kernel cache:
  // the spec entry appears under a "ctrspec" key once used.
  UsubaCipher Spec = make(CipherId::Des, SlicingMode::Bitslice,
                          /*FastPath=*/true, /*Native=*/false,
                          /*Specialize=*/true);
  const size_t Before = Spec.kernel().InstrCount;
  std::vector<uint8_t> Key = randomBytes(Spec.keyBytes());
  Spec.setKey(Key.data(), Key.size());
  uint8_t Nonce[8] = {};
  std::vector<uint8_t> Data = randomBytes(Spec.blocksPerCall() * 8);
  Spec.ctrXor(Data.data(), Data.size(), Nonce, 0);
  // The facade still reports the generic kernel; the specialized clone
  // only shows through behavior. Sanity: the generic kernel is unchanged.
  EXPECT_EQ(Spec.kernel().InstrCount, Before);
}

} // namespace
