//===- CipherApiTest.cpp - Redesigned facade tests ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The redesigned creation API: UsubaCipher::compile() returning a
/// CipherResult (cipher or structured diagnostics), the typed
/// CipherConfig knobs with explicit > environment > default precedence,
/// and the stable CipherStats replacing free-text engine notes.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "ciphers/KernelCache.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace usuba;

namespace {

/// Scoped environment override, restored on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~EnvGuard() {
    if (Saved)
      setenv(Name, Saved->c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

TEST(CipherApi, CompileFailureCarriesStructuredDiagnostics) {
  // Bitsliced ChaCha20 is the paper's canonical type rejection: the
  // additions cannot be expressed on single bits.
  CipherConfig Config;
  Config.Id = CipherId::Chacha20;
  Config.Slicing = SlicingMode::Bitslice;
  Config.Target = &archAVX2();
  Config.PreferNative = false;
  CipherResult Result = UsubaCipher::compile(Config);

  ASSERT_FALSE(Result.ok());
  ASSERT_FALSE(static_cast<bool>(Result));
  ASSERT_FALSE(Result.diagnostics().empty());
  bool SawError = false;
  for (const Diagnostic &D : Result.diagnostics())
    if (D.Severity == DiagSeverity::Error || D.Severity == DiagSeverity::Fatal)
      SawError = true;
  EXPECT_TRUE(SawError);
  // The rendered text is the same diagnostics, one per line.
  EXPECT_NE(Result.errorText().find("Arith"), std::string::npos)
      << Result.errorText();
  EXPECT_NE(Result.errorText().find(Result.diagnostics()[0].str()),
            std::string::npos);
}

TEST(CipherApi, CompileSuccessHasNoDiagnostics) {
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  EXPECT_TRUE(Result.diagnostics().empty());
  EXPECT_TRUE(Result.errorText().empty());
  EXPECT_EQ(Result.cipher().blockBytes(), 8u);
}

TEST(CipherApi, JitOptLevelPrecedence) {
  CipherConfig Config;

  // Default: the per-kernel size heuristic.
  {
    EnvGuard Unset("USUBA_JIT_OPT", nullptr);
    EXPECT_EQ(Config.effectiveJitOptLevel(100), "-O3");
    EXPECT_EQ(Config.effectiveJitOptLevel(100'000), "-O0");
  }
  // Environment beats the heuristic.
  {
    EnvGuard Env("USUBA_JIT_OPT", "-O1");
    EXPECT_EQ(Config.effectiveJitOptLevel(100), "-O1");
    EXPECT_EQ(Config.effectiveJitOptLevel(100'000), "-O1");
    // Explicit config beats the environment.
    Config.JitOptLevel = "-O2";
    EXPECT_EQ(Config.effectiveJitOptLevel(100), "-O2");
  }
}

TEST(CipherApi, CcTimeoutPrecedence) {
  CipherConfig Config;
  {
    EnvGuard Unset("USUBA_CC_TIMEOUT_MS", nullptr);
    EXPECT_EQ(Config.effectiveCcTimeoutMillis(), 120000u);
  }
  {
    EnvGuard Env("USUBA_CC_TIMEOUT_MS", "5000");
    EXPECT_EQ(Config.effectiveCcTimeoutMillis(), 5000u);
    // "0" keeps its historical meaning: no timeout.
    EnvGuard Zero("USUBA_CC_TIMEOUT_MS", "0");
    EXPECT_EQ(Config.effectiveCcTimeoutMillis(), 0u);
  }
  {
    EnvGuard Env("USUBA_CC_TIMEOUT_MS", "5000");
    Config.CcTimeoutMillis = 777;
    EXPECT_EQ(Config.effectiveCcTimeoutMillis(), 777u);
  }
  // Garbage in the environment falls back to the default.
  {
    CipherConfig Fresh;
    EnvGuard Env("USUBA_CC_TIMEOUT_MS", "not-a-number");
    EXPECT_EQ(Fresh.effectiveCcTimeoutMillis(), 120000u);
  }
}

TEST(CipherApi, KernelCachePrecedence) {
  CipherConfig Config;
  {
    EnvGuard Unset("USUBA_KERNEL_CACHE", nullptr);
    EXPECT_TRUE(Config.effectiveKernelCache());
  }
  {
    EnvGuard Off("USUBA_KERNEL_CACHE", "0");
    EXPECT_FALSE(Config.effectiveKernelCache());
    Config.UseKernelCache = true; // explicit beats the environment
    EXPECT_TRUE(Config.effectiveKernelCache());
  }
  {
    EnvGuard Unset("USUBA_KERNEL_CACHE", nullptr);
    Config.UseKernelCache = false;
    EXPECT_FALSE(Config.effectiveKernelCache());
  }
}

TEST(CipherApi, StatsReportEngineRungAndPipeline) {
  kernelCacheClear();
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  CipherStats Stats = Result.cipher().stats();

  // Native execution was declined by configuration: a structured kind,
  // not a string to grep.
  EXPECT_FALSE(Stats.Native);
  EXPECT_EQ(Stats.Fallback, EngineFallback::NativeDisabled);
  EXPECT_FALSE(Stats.FallbackDetail.empty());
  EXPECT_STREQ(engineFallbackName(Stats.Fallback), "native-disabled");
  EXPECT_FALSE(Stats.FromKernelCache);
  EXPECT_GT(Stats.InstrCount, 0u);
  // The checkpointed pipeline reports per-pass timings unconditionally.
  EXPECT_FALSE(Stats.PassStats.empty());
  for (const PassStat &P : Stats.PassStats)
    EXPECT_FALSE(P.Name.empty());

  // Second compile of the same config is served by the kernel cache.
  CipherResult Cached = UsubaCipher::compile(Config);
  ASSERT_TRUE(Cached.ok());
  EXPECT_TRUE(Cached.cipher().stats().FromKernelCache);
  kernelCacheClear();
}

TEST(CipherApi, StatsTelemetryHandleIsAlwaysValidJson) {
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();
  std::string Json = Result.cipher().stats().telemetryJson();
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"enabled\""), std::string::npos);
}

TEST(CipherApi, CompileUnderTelemetryRecordsPipelineSpans) {
  // Enable telemetry for the scope of this test only.
  bool Was = telemetryEnabled();
  Telemetry::instance().reset();
  Telemetry::instance().setEnabled(true);

  kernelCacheClear();
  CipherConfig Config;
  Config.Id = CipherId::Rectangle;
  Config.Slicing = SlicingMode::Vslice;
  Config.Target = &archSSE();
  Config.PreferNative = false;
  Config.UseKernelCache = false; // force a full pipeline run
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_TRUE(Result.ok()) << Result.errorText();

  Telemetry &T = Telemetry::instance();
  EXPECT_GE(T.spanStat("cipher.compile").Calls, 1u);
  EXPECT_GE(T.spanStat("usubac.compile").Calls, 1u);
  EXPECT_GE(T.counter("kernelcache.misses") + T.counter("kernelcache.hits"),
            0u); // cache disabled: no cache counters required
  EXPECT_GT(T.eventCount(), 0u);

  Telemetry::instance().setEnabled(Was);
  Telemetry::instance().reset();
  kernelCacheClear();
}

TEST(CipherApi, ValidatorDemotionKeepsFacadeBytesCorrect) {
  // Fault-inject a semantics-changing corruption into the cse pass.
  // Under ValidatePasses the compile must demote to -O0 — and the
  // facade must keep serving bytes identical to a clean -O0 cipher,
  // through both ECB and CTR entry points.
  kernelCacheClear();
  CipherConfig Bad;
  Bad.Id = CipherId::Rectangle;
  Bad.Slicing = SlicingMode::Vslice;
  Bad.Target = &archSSE();
  Bad.PreferNative = false;
  Bad.UseKernelCache = false;
  Bad.ValidatePasses = true;
  Bad.DebugMiscompilePass = "cse";
  CipherResult BadResult = UsubaCipher::compile(Bad);
  ASSERT_TRUE(BadResult.ok()) << BadResult.errorText();
  UsubaCipher &Demoted = BadResult.cipher();

  CipherStats Stats = Demoted.stats();
  const std::vector<std::string> &Skipped = Stats.SkippedPasses;
  EXPECT_NE(std::find(Skipped.begin(), Skipped.end(), "cse"), Skipped.end());
  EXPECT_NE(std::find(Skipped.begin(), Skipped.end(), "demote-to-O0"),
            Skipped.end());

  CipherConfig Clean = Bad;
  Clean.ValidatePasses = false;
  Clean.DebugMiscompilePass = nullptr;
  Clean.Optimize = false; // an honest -O0 compile
  CipherResult CleanResult = UsubaCipher::compile(Clean);
  ASSERT_TRUE(CleanResult.ok()) << CleanResult.errorText();
  UsubaCipher &Reference = CleanResult.cipher();

  const uint8_t Key[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Demoted.setKey(Key, sizeof(Key));
  Reference.setKey(Key, sizeof(Key));

  std::vector<uint8_t> Plain(64 * Demoted.blockBytes());
  for (size_t I = 0; I < Plain.size(); ++I)
    Plain[I] = static_cast<uint8_t>(I * 37 + 11);
  std::vector<uint8_t> OutDemoted(Plain.size()), OutClean(Plain.size());
  Demoted.ecbEncrypt(Plain.data(), OutDemoted.data(), 64);
  Reference.ecbEncrypt(Plain.data(), OutClean.data(), 64);
  EXPECT_EQ(OutDemoted, OutClean);
  EXPECT_NE(OutDemoted, Plain); // it did encrypt

  const uint8_t Nonce[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  std::vector<uint8_t> CtrDemoted = Plain, CtrClean = Plain;
  Demoted.ctrXor(CtrDemoted.data(), CtrDemoted.size(), Nonce, 1);
  Reference.ctrXor(CtrClean.data(), CtrClean.size(), Nonce, 1);
  EXPECT_EQ(CtrDemoted, CtrClean);
  kernelCacheClear();
}

} // namespace
