//===- UsubaCipherTest.cpp - High-level API tests -------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "ciphers/RefAes.h"
#include "ciphers/RefChacha20.h"
#include "ciphers/RefDes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

using namespace usuba;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Rng(0xFACADE);
  return Rng;
}

UsubaCipher make(CipherId Id, SlicingMode Mode, bool Native = false) {
  CipherConfig Config;
  Config.Id = Id;
  Config.Slicing = Mode;
  Config.Target = &archAVX2();
  Config.PreferNative = Native;
  CipherResult Result = UsubaCipher::compile(Config);
  EXPECT_TRUE(Result.ok()) << Result.errorText();
  return std::move(Result).take();
}

TEST(UsubaCipher, CtrIsInvolutive) {
  for (CipherId Id : {CipherId::Rectangle, CipherId::Des, CipherId::Aes128,
                      CipherId::Chacha20, CipherId::Serpent,
                      CipherId::Present}) {
    SlicingMode Mode = Id == CipherId::Des || Id == CipherId::Present
                           ? SlicingMode::Bitslice
                       : Id == CipherId::Aes128 ? SlicingMode::Hslice
                                                : SlicingMode::Vslice;
    UsubaCipher Cipher = make(Id, Mode);
    std::vector<uint8_t> Key(Cipher.keyBytes());
    for (uint8_t &B : Key)
      B = static_cast<uint8_t>(rng()());
    Cipher.setKey(Key.data(), Key.size());
    uint8_t Nonce[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    std::vector<uint8_t> Data(1000), Original;
    for (uint8_t &B : Data)
      B = static_cast<uint8_t>(rng()());
    Original = Data;
    Cipher.ctrXor(Data.data(), Data.size(), Nonce, 5);
    EXPECT_NE(Data, Original) << cipherName(Id);
    Cipher.ctrXor(Data.data(), Data.size(), Nonce, 5);
    EXPECT_EQ(Data, Original) << cipherName(Id);
  }
}

TEST(UsubaCipher, CtrIsPositionIndependent) {
  // Encrypting a long buffer equals encrypting it in two halves with the
  // right starting counters.
  UsubaCipher Cipher = make(CipherId::Aes128, SlicingMode::Hslice);
  std::vector<uint8_t> Key(16, 0x11);
  Cipher.setKey(Key.data(), Key.size());
  uint8_t Nonce[12] = {};
  std::vector<uint8_t> Whole(4096, 0), Halves(4096, 0);
  Cipher.ctrXor(Whole.data(), Whole.size(), Nonce, 0);
  Cipher.ctrXor(Halves.data(), 2048, Nonce, 0);
  Cipher.ctrXor(Halves.data() + 2048, 2048, Nonce, 2048 / 16);
  EXPECT_EQ(Whole, Halves);
}

TEST(UsubaCipher, EcbMatchesDesReference) {
  UsubaCipher Cipher = make(CipherId::Des, SlicingMode::Bitslice);
  uint8_t Key[8] = {0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1};
  Cipher.setKey(Key, 8);
  uint64_t Subkeys[16];
  desKeySchedule(0x133457799BBCDFF1ull, Subkeys);

  const size_t Blocks = 300; // several partial batches
  std::vector<uint8_t> In(Blocks * 8), Out(Blocks * 8);
  for (uint8_t &B : In)
    B = static_cast<uint8_t>(rng()());
  Cipher.ecbEncrypt(In.data(), Out.data(), Blocks);
  for (size_t B = 0; B < Blocks; ++B) {
    uint64_t Block = 0;
    for (unsigned I = 0; I < 8; ++I)
      Block = (Block << 8) | In[B * 8 + I];
    uint64_t Expected = desEncryptBlock(Block, Subkeys);
    for (unsigned I = 0; I < 8; ++I)
      EXPECT_EQ(Out[B * 8 + I],
                static_cast<uint8_t>(Expected >> (8 * (7 - I))))
          << "block " << B << " byte " << I;
  }
}

TEST(UsubaCipher, ChachaMatchesReferenceStream) {
  UsubaCipher Cipher = make(CipherId::Chacha20, SlicingMode::Vslice);
  uint8_t Key[32], Nonce[12];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  for (uint8_t &B : Nonce)
    B = static_cast<uint8_t>(rng()());
  Cipher.setKey(Key, 32);
  std::vector<uint8_t> Ours(777, 0), Theirs(777, 0);
  Cipher.ctrXor(Ours.data(), Ours.size(), Nonce, 3);
  chacha20Xor(Theirs.data(), Theirs.size(), Key, 3, Nonce);
  EXPECT_EQ(Ours, Theirs);
}

TEST(UsubaCipher, AllSlicingsOfOneCipherAgree) {
  std::vector<uint8_t> Key(16, 0x77);
  uint8_t Nonce[12] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2};
  std::vector<std::vector<uint8_t>> Results;
  for (SlicingMode Mode : UsubaCipher::supportedSlicings(
           CipherId::Aes128, archAVX2())) {
    UsubaCipher Cipher = make(CipherId::Aes128, Mode);
    Cipher.setKey(Key.data(), Key.size());
    std::vector<uint8_t> Data(512, 0xAB);
    Cipher.ctrXor(Data.data(), Data.size(), Nonce, 0);
    Results.push_back(std::move(Data));
  }
  ASSERT_GE(Results.size(), 2u);
  for (size_t I = 1; I < Results.size(); ++I)
    EXPECT_EQ(Results[I], Results[0]);
}

TEST(UsubaCipher, NativeAgreesWithSimulator) {
  UsubaCipher Sim = make(CipherId::Serpent, SlicingMode::Vslice, false);
  UsubaCipher Native = make(CipherId::Serpent, SlicingMode::Vslice, true);
  std::vector<uint8_t> Key(16, 0x3C);
  Sim.setKey(Key.data(), Key.size());
  Native.setKey(Key.data(), Key.size());
  uint8_t Nonce[12] = {};
  std::vector<uint8_t> A(999, 0x55), B(999, 0x55);
  Sim.ctrXor(A.data(), A.size(), Nonce, 0);
  Native.ctrXor(B.data(), B.size(), Nonce, 0);
  EXPECT_EQ(A, B);
  EXPECT_FALSE(Sim.isNative());
}

TEST(UsubaCipher, EcbDecryptInvertsEncrypt) {
  for (CipherId Id : {CipherId::Rectangle, CipherId::Des, CipherId::Aes128,
                      CipherId::Serpent, CipherId::Present}) {
    SlicingMode Mode = Id == CipherId::Des || Id == CipherId::Present
                           ? SlicingMode::Bitslice
                       : Id == CipherId::Aes128 ? SlicingMode::Hslice
                                                : SlicingMode::Vslice;
    UsubaCipher Cipher = make(Id, Mode);
    std::vector<uint8_t> Key(Cipher.keyBytes());
    for (uint8_t &B : Key)
      B = static_cast<uint8_t>(rng()());
    Cipher.setKey(Key.data(), Key.size());

    const size_t Blocks = 70; // several partial batches
    std::vector<uint8_t> Plain(Blocks * Cipher.blockBytes()),
        Enc(Plain.size()), Dec(Plain.size());
    for (uint8_t &B : Plain)
      B = static_cast<uint8_t>(rng()());
    Cipher.ecbEncrypt(Plain.data(), Enc.data(), Blocks);
    EXPECT_NE(Enc, Plain) << cipherName(Id);
    Cipher.ecbDecrypt(Enc.data(), Dec.data(), Blocks);
    EXPECT_EQ(Dec, Plain) << cipherName(Id);
  }
}

TEST(UsubaCipher, EcbDecryptMatchesAesReference) {
  UsubaCipher Cipher = make(CipherId::Aes128, SlicingMode::Hslice);
  uint8_t Key[16];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  Cipher.setKey(Key, 16);
  uint8_t RoundKeys[11][16];
  aes128KeySchedule(Key, RoundKeys);

  const size_t Blocks = 40;
  std::vector<uint8_t> In(Blocks * 16), Out(Blocks * 16);
  for (uint8_t &B : In)
    B = static_cast<uint8_t>(rng()());
  Cipher.ecbDecrypt(In.data(), Out.data(), Blocks);
  for (size_t B = 0; B < Blocks; ++B) {
    uint8_t Block[16];
    std::memcpy(Block, &In[B * 16], 16);
    aesDecryptBlock(Block, RoundKeys);
    EXPECT_EQ(std::memcmp(Block, &Out[B * 16], 16), 0) << "block " << B;
  }
}

TEST(UsubaCipher, PresentEcbMatchesReference) {
  UsubaCipher Cipher = make(CipherId::Present, SlicingMode::Bitslice);
  uint8_t Key[10] = {};
  Cipher.setKey(Key, 10);
  uint8_t In[8] = {}, Out[8];
  Cipher.ecbEncrypt(In, Out, 1);
  // CHES 2007 vector: all-zero key and plaintext.
  const uint8_t Expected[8] = {0x55, 0x79, 0xC1, 0x38,
                               0x7B, 0x22, 0x84, 0x45};
  for (unsigned I = 0; I < 8; ++I)
    EXPECT_EQ(Out[I], Expected[I]) << "byte " << I;
}

TEST(UsubaCipher, RejectsInvalidSlicings) {
  CipherConfig Config;
  Config.Id = CipherId::Chacha20;
  Config.Slicing = SlicingMode::Bitslice;
  Config.Target = &archAVX2();
  CipherResult Result = UsubaCipher::compile(Config);
  ASSERT_FALSE(Result.ok());
  // The failure carries real compiler diagnostics: an Error-severity
  // entry whose message names the missing typeclass instance.
  ASSERT_FALSE(Result.diagnostics().empty());
  bool SawError = false;
  for (const Diagnostic &D : Result.diagnostics())
    SawError = SawError || D.Severity == DiagSeverity::Error ||
               D.Severity == DiagSeverity::Fatal;
  EXPECT_TRUE(SawError);
  EXPECT_NE(Result.errorText().find("Arith"), std::string::npos)
      << Result.errorText();
}

TEST(UsubaCipher, CompileResultCoversTheOldCreateShapes) {
  // The structured compile()/CipherResult facade expresses both halves
  // of the removed create() shim: failure carries diagnostics, success
  // yields a cipher via take().
  CipherConfig Config;
  Config.Id = CipherId::Chacha20;
  Config.Slicing = SlicingMode::Bitslice;
  Config.Target = &archAVX2();
  CipherResult Failed = UsubaCipher::compile(Config);
  EXPECT_FALSE(Failed.ok());
  EXPECT_NE(Failed.errorText().find("Arith"), std::string::npos)
      << Failed.errorText();
  Config.Slicing = SlicingMode::Vslice;
  Config.PreferNative = false;
  CipherResult Ok = UsubaCipher::compile(Config);
  ASSERT_TRUE(Ok.ok()) << Ok.errorText();
  UsubaCipher Cipher = std::move(Ok).take();
  EXPECT_EQ(Cipher.stats().Fallback, EngineFallback::NativeDisabled);
}

TEST(UsubaCipher, SupportedSlicingsMatchThePaper) {
  const Arch &T = archAVX2();
  auto Has = [](const std::vector<SlicingMode> &Modes, SlicingMode M) {
    for (SlicingMode Mode : Modes)
      if (Mode == M)
        return true;
    return false;
  };
  auto Rect = UsubaCipher::supportedSlicings(CipherId::Rectangle, T);
  EXPECT_TRUE(Has(Rect, SlicingMode::Bitslice));
  EXPECT_TRUE(Has(Rect, SlicingMode::Vslice));
  EXPECT_TRUE(Has(Rect, SlicingMode::Hslice));
  auto Chacha = UsubaCipher::supportedSlicings(CipherId::Chacha20, T);
  EXPECT_FALSE(Has(Chacha, SlicingMode::Bitslice));
  EXPECT_TRUE(Has(Chacha, SlicingMode::Vslice));
  EXPECT_FALSE(Has(Chacha, SlicingMode::Hslice));
  auto Aes = UsubaCipher::supportedSlicings(CipherId::Aes128, T);
  EXPECT_FALSE(Has(Aes, SlicingMode::Vslice));
  EXPECT_TRUE(Has(Aes, SlicingMode::Hslice));
  EXPECT_TRUE(Has(Aes, SlicingMode::Bitslice));
  auto Des = UsubaCipher::supportedSlicings(CipherId::Des, T);
  EXPECT_TRUE(Has(Des, SlicingMode::Bitslice));
}

} // namespace
