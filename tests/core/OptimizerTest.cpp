//===- OptimizerTest.cpp - Usuba0 mid-end unit tests ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "core/Compiler.h"
#include "ciphers/UsubaSources.h"
#include "support/Diagnostics.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

/// A one-function program around \p F so the verifier can run.
U0Program wrap(U0Function F, Dir Direction = Dir::Vert, unsigned MBits = 16) {
  U0Program P;
  P.Direction = Direction;
  P.MBits = MBits;
  P.Target = &archAVX2();
  P.Funcs.push_back(std::move(F));
  return P;
}

U0Function func(unsigned NumInputs, unsigned NumRegs,
                std::vector<unsigned> Outputs) {
  U0Function F;
  F.Name = "t";
  F.NumInputs = NumInputs;
  F.NumRegs = NumRegs;
  F.Outputs = std::move(Outputs);
  return F;
}

TEST(Optimizer, CopyPropCollapsesMovChains) {
  U0Function F = func(1, 5, {4});
  F.Instrs.push_back(U0Instr::unary(U0Op::Mov, 1, 0));
  F.Instrs.push_back(U0Instr::unary(U0Op::Mov, 2, 1));
  F.Instrs.push_back(U0Instr::unary(U0Op::Mov, 3, 2));
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 4, 3));
  EXPECT_EQ(propagateCopies(F), 3u);
  ASSERT_EQ(F.Instrs.size(), 1u);
  EXPECT_EQ(F.Instrs[0].Op, U0Op::Not);
  EXPECT_EQ(F.Instrs[0].Srcs[0], 0u); // rerouted through the whole chain
  EXPECT_TRUE(verifyU0(wrap(std::move(F))).empty());
}

TEST(Optimizer, CopyPropReroutesOutputs) {
  U0Function F = func(1, 3, {2});
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 1, 0));
  F.Instrs.push_back(U0Instr::unary(U0Op::Mov, 2, 1));
  EXPECT_EQ(propagateCopies(F), 1u);
  EXPECT_EQ(F.Outputs[0], 1u);
  EXPECT_TRUE(verifyU0(wrap(std::move(F))).empty());
}

TEST(Optimizer, FoldsLogicIdentities) {
  // x ^ x -> 0; y & 0 -> 0; z | ~0 -> ~0 (via constants).
  U0Function F = func(2, 6, {2, 4, 5});
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 0));
  F.Instrs.push_back(U0Instr::constant(3, 0));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 4, 1, 3));
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 5, 1, 3)); // x ^ 0 -> x
  ConstFoldStats Stats;
  EXPECT_GT(foldConstants(F, Dir::Vert, 16, &Stats), 0u);
  // The x^x and &0 results became constants, the ^0 became a Mov.
  EXPECT_EQ(F.Instrs[0].Op, U0Op::Const);
  EXPECT_EQ(F.Instrs[0].Imm, 0u);
  EXPECT_EQ(F.Instrs[2].Op, U0Op::Const);
  EXPECT_EQ(F.Instrs[2].Imm, 0u);
  EXPECT_EQ(F.Instrs[3].Op, U0Op::Mov);
  EXPECT_GE(Stats.Folded + Stats.Simplified, 3u);
  EXPECT_TRUE(verifyU0(wrap(std::move(F))).empty());
}

TEST(Optimizer, FoldsConstantArithmeticWhenVertical) {
  U0Function F = func(0, 3, {2});
  F.Instrs.push_back(U0Instr::constant(0, 7));
  F.Instrs.push_back(U0Instr::constant(1, 9));
  F.Instrs.push_back(U0Instr::binary(U0Op::Add, 2, 0, 1));
  EXPECT_GT(foldConstants(F, Dir::Vert, 16, nullptr), 0u);
  EXPECT_EQ(F.Instrs[2].Op, U0Op::Const);
  EXPECT_EQ(F.Instrs[2].Imm, 16u);
}

TEST(Optimizer, ArithFoldGatedOffHorizontal) {
  // Horizontal m-sliced constants are positional masks; element rules
  // must not fire there (m > 1).
  U0Function F = func(0, 3, {2});
  F.Instrs.push_back(U0Instr::constant(0, 7));
  F.Instrs.push_back(U0Instr::constant(1, 9));
  F.Instrs.push_back(U0Instr::binary(U0Op::Add, 2, 0, 1));
  foldConstants(F, Dir::Horiz, 16, nullptr);
  EXPECT_EQ(F.Instrs[2].Op, U0Op::Add);
  // Bitwise folding still applies under both encodings.
  U0Function G = func(0, 3, {2});
  G.Instrs.push_back(U0Instr::constant(0, 7));
  G.Instrs.push_back(U0Instr::constant(1, 9));
  G.Instrs.push_back(U0Instr::binary(U0Op::And, 2, 0, 1));
  EXPECT_GT(foldConstants(G, Dir::Horiz, 16, nullptr), 0u);
  EXPECT_EQ(G.Instrs[2].Op, U0Op::Const);
  EXPECT_EQ(G.Instrs[2].Imm, 7u & 9u);
}

TEST(Optimizer, ShiftByZeroIsIdentityEverywhere) {
  U0Function F = func(1, 2, {1});
  F.Instrs.push_back(U0Instr::shift(U0Op::Lshift, 1, 0, 0));
  EXPECT_GT(foldConstants(F, Dir::Horiz, 16, nullptr), 0u);
  EXPECT_EQ(F.Instrs[0].Op, U0Op::Mov);
}

TEST(Optimizer, ValueNumberingRemovesCommutedDuplicates) {
  U0Function F = func(2, 6, {4, 5});
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 3, 1, 0)); // commuted dup
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 4, 2));
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 5, 3)); // dup after VN
  EXPECT_EQ(valueNumber(F), 2u);
  EXPECT_EQ(F.Instrs.size(), 2u);
  EXPECT_EQ(F.Outputs[0], F.Outputs[1]);
  EXPECT_TRUE(verifyU0(wrap(std::move(F))).empty());
}

TEST(Optimizer, ValueNumberingKeepsNonCommutativeOrder) {
  // Andn (dest = ~a & b) is not commutative: operands must not be sorted.
  U0Function F = func(2, 4, {2, 3});
  F.Instrs.push_back(U0Instr::binary(U0Op::Andn, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Andn, 3, 1, 0));
  EXPECT_EQ(valueNumber(F), 0u);
  EXPECT_EQ(F.Instrs.size(), 2u);
}

TEST(Optimizer, DeadCodeSweepKeepsBarriersAndLiveCone) {
  U0Function F = func(1, 4, {3});
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 1, 0)); // dead
  F.Instrs.push_back(U0Instr::barrier());
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0)); // live
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 3, 2));
  EXPECT_EQ(sweepDeadCode(F), 1u);
  ASSERT_EQ(F.Instrs.size(), 3u);
  EXPECT_EQ(F.Instrs[0].Op, U0Op::Barrier);
  EXPECT_TRUE(verifyU0(wrap(std::move(F))).empty());
}

TEST(Optimizer, SpecializeEntryInputsFoldsTheBoundCone) {
  // out = in0 ^ in1; binding in1 to 0 must reduce to out = Mov in0 after
  // folding, with the ABI (NumInputs) unchanged.
  U0Function F = func(2, 3, {2});
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  U0Program P = wrap(std::move(F), Dir::Vert, 1);
  EXPECT_EQ(specializeEntryInputs(P, {{1, 0}}), 1u);
  EXPECT_EQ(P.entry().NumInputs, 2u);
  EXPECT_TRUE(verifyU0(P).empty());
  foldConstants(P.entry(), P.Direction, P.MBits, nullptr);
  valueNumber(P.entry());
  sweepDeadCode(P.entry());
  EXPECT_TRUE(verifyU0(P).empty());
  // The Xor with a known-zero operand is gone; only the Const feeding
  // nothing (swept) and the output routing remain.
  for (const U0Instr &I : P.entry().Instrs)
    EXPECT_NE(I.Op, U0Op::Xor);
}

TEST(Optimizer, NeverGrowsBundledPrograms) {
  // Satellite guarantee: InstrCount <= InstrCountPreOpt for every bundled
  // program, and each mid-end pass reports a non-positive delta.
  struct Spec {
    const std::string &(*Source)();
    Dir Direction;
    unsigned WordBits;
    bool Bitslice;
  };
  const Spec Specs[] = {
      {rectangleSource, Dir::Vert, 16, false},
      {rectangleSource, Dir::Vert, 16, true},
      {desSource, Dir::Vert, 1, true},
      {presentSource, Dir::Vert, 1, true},
      {chacha20Source, Dir::Vert, 32, false},
      {serpentSource, Dir::Vert, 32, false},
      {triviumSource, Dir::Vert, 64, false},
  };
  for (const Spec &S : Specs) {
    CompileOptions Options;
    Options.Direction = S.Direction;
    Options.WordBits = S.WordBits;
    Options.Bitslice = S.Bitslice;
    Options.Target = &archAVX2();
    DiagnosticEngine Diags;
    std::optional<CompiledKernel> Kernel =
        compileUsuba(S.Source(), Options, Diags);
    ASSERT_TRUE(Kernel) << Diags.diagnostics().size();
    EXPECT_LE(Kernel->InstrCount, Kernel->InstrCountPreOpt);
    EXPECT_GT(Kernel->InstrCountPreOpt, 0u);
    for (const PassStat &P : Kernel->PassStats)
      if (P.Name == "copy-prop" || P.Name == "constant-fold" ||
          P.Name == "cse" || P.Name == "dce")
        EXPECT_LE(P.InstrDelta, 0) << P.Name;
  }
}

} // namespace
