//===- PipelinePropertyTest.cpp - Random-program pipeline properties ------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing of the whole compiler: random straight-line
/// Usuba programs are generated, compiled under every combination of
/// back-end toggles and under every slicing the program admits, and all
/// variants must compute the same function (the unoptimized
/// interpretation is the reference). This is the broadest invariant the
/// paper's approach rests on: optimizations and slicings never change
/// semantics.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "runtime/KernelRunner.h"
#include "runtime/Layout.h"

#include "tests/TestSeed.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

/// Generates a random straight-line node over u16 atoms: K inputs, a
/// chain of random logic/arith/rotate equations, 4 outputs.
std::string randomProgram(std::mt19937_64 &Rng, bool WithArith,
                          bool WithTable) {
  const unsigned Inputs = 3, Temps = 10;
  std::string Source;
  if (WithTable)
    Source += "table T (in:v4) returns (out:v4) {\n"
              "  7, 12, 1, 9, 0, 5, 14, 3, 11, 4, 13, 2, 15, 8, 6, 10\n"
              "}\n";
  Source += "node F (x:u16x" + std::to_string(Inputs) +
            ") returns (y:u16x4)\nvars ";
  for (unsigned T = 0; T < Temps; ++T)
    Source += "t" + std::to_string(T) + (T + 1 < Temps ? ":u16, " : ":u16");
  Source += "\nlet\n";

  auto Operand = [&](unsigned Defined) {
    // A previously defined temp or an input element.
    if (Defined > 0 && Rng() % 2)
      return "t" + std::to_string(Rng() % Defined);
    return "x[" + std::to_string(Rng() % Inputs) + "]";
  };
  for (unsigned T = 0; T < Temps; ++T) {
    std::string Lhs = "t" + std::to_string(T);
    unsigned Kind = static_cast<unsigned>(Rng() % (WithArith ? 7 : 5));
    std::string Rhs;
    switch (Kind) {
    case 0:
      Rhs = "(" + Operand(T) + " ^ " + Operand(T) + ")";
      break;
    case 1:
      Rhs = "(" + Operand(T) + " & " + Operand(T) + ")";
      break;
    case 2:
      Rhs = "(" + Operand(T) + " | ~" + Operand(T) + ")";
      break;
    case 3:
      Rhs = "(" + Operand(T) + " <<< " + std::to_string(1 + Rng() % 15) +
            ")";
      break;
    case 4:
      Rhs = "(" + Operand(T) + " >> " + std::to_string(Rng() % 17) + ")";
      break;
    case 5:
      Rhs = "(" + Operand(T) + " + " + Operand(T) + ")";
      break;
    default:
      Rhs = "(" + Operand(T) + " - " + Operand(T) + ")";
      break;
    }
    Source += "  " + Lhs + " = " + Rhs + ";\n";
  }
  if (WithTable) {
    Source += "  y = T((t6, t7, t8, t9))\n";
  } else {
    Source += "  y = (t6, t7, t8, t9)\n";
  }
  Source += "tel\n";
  return Source;
}

/// Encrypt-style evaluation through the full runtime: returns the output
/// atoms for a fixed set of input blocks.
std::vector<uint64_t> runVariant(const std::string &Source,
                                 const CompileOptions &Options,
                                 unsigned NumBlocksWanted) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str() << "\n" << Source;
  if (!Kernel)
    return {};
  bool Flat = Options.Bitslice;
  KernelRunner Runner(std::move(*Kernel));

  const unsigned Blocks = Runner.blocksPerCall();
  std::mt19937_64 Rng(0xB10C5);
  std::vector<uint64_t> AllAtoms(size_t{NumBlocksWanted} * 3);
  for (uint64_t &A : AllAtoms)
    A = Rng() & 0xFFFF;

  std::vector<uint64_t> Result;
  std::vector<uint64_t> OutAtoms;
  for (unsigned Base = 0; Base < NumBlocksWanted; Base += Blocks) {
    std::vector<uint64_t> Batch(size_t{Blocks} * 3, 0);
    for (unsigned B = 0; B < Blocks && Base + B < NumBlocksWanted; ++B)
      for (unsigned A = 0; A < 3; ++A)
        Batch[size_t{B} * 3 + A] = AllAtoms[size_t{Base + B} * 3 + A];

    std::vector<uint64_t> In = Batch;
    if (Flat) {
      In.resize(Batch.size() * 16);
      expandAtomsToBits(Batch.data(), static_cast<unsigned>(Batch.size()),
                        16, In.data());
    }
    OutAtoms.assign(size_t{Blocks} * 4 * (Flat ? 16 : 1), 0);
    Runner.runBatch({{false, In.data()}}, OutAtoms.data());
    std::vector<uint64_t> OutWords(size_t{Blocks} * 4);
    if (Flat)
      collapseBitsToAtoms(OutAtoms.data(),
                          static_cast<unsigned>(OutWords.size()), 16,
                          OutWords.data());
    else
      OutWords = OutAtoms;
    for (unsigned B = 0; B < Blocks && Base + B < NumBlocksWanted; ++B)
      for (unsigned A = 0; A < 4; ++A)
        Result.push_back(OutWords[size_t{B} * 4 + A]);
  }
  return Result;
}

class PipelineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineProperty, AllConfigurationsAgree) {
  const uint64_t Seed = testSeed(0x9E3779B9u + GetParam());
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);
  bool WithArith = GetParam() % 2;      // arith programs cannot bitslice
  bool WithTable = (GetParam() / 2) % 2;
  std::string Source = randomProgram(Rng, WithArith, WithTable);

  // Reference: everything off, GP64, simulator.
  CompileOptions Ref;
  Ref.Direction = Dir::Vert;
  Ref.WordBits = 16;
  Ref.Target = &archGP64();
  Ref.Inline = false;
  Ref.Unroll = false;
  Ref.Schedule = false;
  Ref.FuseAndn = false;
  const unsigned Blocks = 40;
  std::vector<uint64_t> Expected = runVariant(Source, Ref, Blocks);
  ASSERT_FALSE(Expected.empty());

  // Sweep back-end toggles and targets.
  for (unsigned Mask = 0; Mask < 16; ++Mask) {
    CompileOptions Options;
    Options.Direction = Dir::Vert;
    Options.WordBits = 16;
    Options.Target = Mask % 2 ? &archAVX512() : &archSSE();
    Options.Inline = Mask & 1;
    Options.Schedule = Mask & 2;
    Options.Interleave = Mask & 4;
    Options.FuseAndn = Mask & 8;
    EXPECT_EQ(runVariant(Source, Options, Blocks), Expected)
        << "mask " << Mask << "\n"
        << Source;
  }

  // Horizontal slicing (if the program has no arithmetic) and bitslicing
  // must agree too: the cross-slicing property of Section 2.
  if (!WithArith) {
    CompileOptions H;
    H.Direction = Dir::Horiz;
    H.WordBits = 16;
    H.Target = &archAVX2();
    EXPECT_EQ(runVariant(Source, H, Blocks), Expected) << Source;

    CompileOptions B;
    B.Direction = Dir::Vert;
    B.WordBits = 16;
    B.Bitslice = true;
    B.Target = &archAVX2();
    EXPECT_EQ(runVariant(Source, B, Blocks), Expected) << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PipelineProperty,
                         ::testing::Range(0u, 12u));

} // namespace
