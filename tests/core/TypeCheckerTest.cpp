//===- TypeCheckerTest.cpp - Type checking tests --------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TypeChecker.h"

#include "ciphers/UsubaSources.h"
#include "core/AstPasses.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace usuba;
using namespace usuba::ast;

namespace {

/// Runs the front-end up to and including checkProgram.
bool check(std::string_view Source, Dir Direction, unsigned MBits,
           bool Flatten, const Arch &Target, std::string *Errors = nullptr) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return false;
  bool Ok = expandProgram(*Prog, Diags) && elaborateTables(*Prog, Diags);
  if (Ok) {
    monomorphizeProgram(*Prog, Direction, MBits);
    if (Flatten)
      flattenProgram(*Prog);
    Ok = checkProgram(*Prog, Target, Diags);
  }
  if (Errors)
    *Errors = Diags.str();
  return Ok;
}

bool checkV(std::string_view Source, std::string *Errors = nullptr) {
  return check(Source, Dir::Vert, 16, false, archAVX2(), Errors);
}

TEST(TypeChecker, AcceptsWellTypedNode) {
  EXPECT_TRUE(checkV(R"(
node F (x:u16x4, k:u16x4) returns (y:u16x4)
vars t:u16x4
let t = x ^ k; y = t tel
)"));
}

TEST(TypeChecker, RejectsUnknownVariable) {
  std::string Errors;
  EXPECT_FALSE(checkV("node F (x:u16) returns (y:u16) let y = z tel",
                      &Errors));
  EXPECT_NE(Errors.find("unknown variable 'z'"), std::string::npos);
}

TEST(TypeChecker, RejectsOutOfBoundsIndex) {
  std::string Errors;
  EXPECT_FALSE(checkV(
      "node F (x:u16[4]) returns (y:u16) let y = x[4] tel", &Errors));
  EXPECT_NE(Errors.find("out of bounds"), std::string::npos);
}

TEST(TypeChecker, RejectsLengthMismatch) {
  std::string Errors;
  EXPECT_FALSE(checkV(
      "node F (x:u16[4]) returns (y:u16[3]) let y = x tel", &Errors));
  EXPECT_NE(Errors.find("mismatch"), std::string::npos);
}

TEST(TypeChecker, RejectsDoubleDefinition) {
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node F (x:u16) returns (y:u16)
let y = x; y = x tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("more than once"), std::string::npos);
}

TEST(TypeChecker, RejectsPartiallyDefinedReturn) {
  std::string Errors;
  EXPECT_FALSE(checkV(
      "node F (x:u16) returns (y:u16[2]) let y[0] = x tel", &Errors));
  EXPECT_NE(Errors.find("not fully defined"), std::string::npos);
}

TEST(TypeChecker, RejectsUseOfUndefined) {
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node F (x:u16) returns (y:u16)
vars t:u16[2]
let t[0] = x; y = t[1] tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("never defined"), std::string::npos);
}

TEST(TypeChecker, RejectsFeedbackLoop) {
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node F (x:u16) returns (y:u16)
vars a:u16, b:u16
let a = b ^ x; b = a ^ x; y = a tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("cycle"), std::string::npos);
}

TEST(TypeChecker, RejectsSelfDependence) {
  std::string Errors;
  EXPECT_FALSE(checkV(
      "node F (x:u16) returns (y:u16) let y = y ^ x tel", &Errors));
  EXPECT_NE(Errors.find("own result"), std::string::npos);
}

TEST(TypeChecker, ReordersOutOfOrderEquations) {
  // Dataflow semantics: the system is unordered; the checker schedules.
  EXPECT_TRUE(checkV(R"(
node F (x:u16) returns (y:u16)
vars a:u16, b:u16
let y = b; b = a ^ x; a = x tel
)"));
}

TEST(TypeChecker, RejectsArithOnHorizontalAtoms) {
  std::string Errors;
  EXPECT_FALSE(check("node F (x:u16) returns (y:u16) let y = x + x tel",
                     Dir::Horiz, 16, false, archAVX2(), &Errors));
  EXPECT_NE(Errors.find("Arith"), std::string::npos);
}

TEST(TypeChecker, RejectsBitslicedArithmetic) {
  // The paper's flattening story: addition has no b1 instance and the
  // error names the operator.
  std::string Errors;
  EXPECT_FALSE(check(chacha20Source(), Dir::Vert, 32, true, archAVX2(),
                     &Errors));
  EXPECT_NE(Errors.find("Arith"), std::string::npos);
}

TEST(TypeChecker, RejectsCallArityMismatch) {
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node G (a:u16, b:u16) returns (c:u16) let c = a ^ b tel
node F (x:u16) returns (y:u16) let y = G(x) tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("expects 2"), std::string::npos);
}

TEST(TypeChecker, RejectsCallToLaterNode) {
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node F (x:u16) returns (y:u16) let y = G(x) tel
node G (a:u16) returns (c:u16) let c = a tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("later-defined"), std::string::npos);
}

TEST(TypeChecker, LiteralsTakeContextType) {
  EXPECT_TRUE(checkV(
      "node F (x:u16) returns (y:u16) let y = x ^ 0xFFFF tel"));
  std::string Errors;
  EXPECT_FALSE(checkV(
      "node F (x:u16) returns (y:u16) let y = x ^ 0x10000 tel", &Errors));
  EXPECT_NE(Errors.find("does not fit"), std::string::npos);
  // Two literals still work when the assignment provides the context.
  EXPECT_TRUE(checkV("node F (x:u16) returns (y:u16) let y = 1 ^ 2 tel"));
  // Call arguments reject bare literals (bind them to a variable).
  EXPECT_FALSE(checkV(R"(
node G (a:u16) returns (c:u16) let c = a tel
node F (x:u16) returns (y:u16) let y = G(1) tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("literal arguments"), std::string::npos);
}

TEST(TypeChecker, ShuffleRules) {
  // Vector shuffle: any direction (it is a renaming).
  EXPECT_TRUE(checkV(R"(
node F (x:u16[4]) returns (y:u16[4])
let y = Shuffle(x, [3, 0, 1, 2]) tel
)"));
  // Atom shuffle needs horizontal slicing.
  std::string Errors;
  EXPECT_FALSE(checkV(R"(
node F (x:u16) returns (y:u16)
let y = Shuffle(x, [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]) tel
)",
                      &Errors));
  EXPECT_NE(Errors.find("horizontal"), std::string::npos);
  EXPECT_TRUE(check(R"(
node F (x:u16) returns (y:u16)
let y = Shuffle(x, [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]) tel
)",
                    Dir::Horiz, 16, false, archAVX2()));
  // Pattern arity must match.
  EXPECT_FALSE(checkV(R"(
node F (x:u16[4]) returns (y:u16[4])
let y = Shuffle(x, [3, 0, 1]) tel
)",
                      &Errors));
}

TEST(TypeChecker, SlicingSupportedQueries) {
  DiagnosticEngine Diags;
  std::optional<Program> Aes = parseProgram(aesSource(), Diags);
  ASSERT_TRUE(Aes.has_value()) << Diags.str();
  std::string Why;
  EXPECT_TRUE(slicingSupported(*Aes, Dir::Horiz, 16, false, archAVX2()));
  EXPECT_FALSE(
      slicingSupported(*Aes, Dir::Vert, 16, false, archAVX2(), &Why));
  EXPECT_TRUE(slicingSupported(*Aes, Dir::Horiz, 16, true, archGP64()))
      << "AES flattens to bitslice (shuffles become renamings)";
  std::optional<Program> Chacha = parseProgram(chacha20Source(), Diags);
  ASSERT_TRUE(Chacha.has_value());
  EXPECT_TRUE(
      slicingSupported(*Chacha, Dir::Vert, 32, false, archGP64()));
  EXPECT_FALSE(
      slicingSupported(*Chacha, Dir::Vert, 32, true, archAVX512(), &Why));
  EXPECT_NE(Why.find("Arith"), std::string::npos);
}

TEST(TypeChecker, PolymorphicLeftoversAreRejected) {
  std::string Errors;
  EXPECT_FALSE(check("node F (x:v4) returns (y:v4) let y = x tel",
                     Dir::Vert, /*MBits=*/0, false, archAVX2(), &Errors));
  EXPECT_NE(Errors.find("-w"), std::string::npos);
}

} // namespace
