//===- AstPassesTest.cpp - Front-end transformation tests -----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/AstPasses.h"

#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <functional>

using namespace usuba;
using namespace usuba::ast;

namespace {

Program parse(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  return std::move(*Prog);
}

TEST(ExpandProgram, ForallMacroExpansion) {
  Program Prog = parse(R"(
node F (x:u8[4]) returns (y:u8[4])
let forall i in [0,3] { y[i] = x[3-i] } tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(expandProgram(Prog, Diags)) << Diags.str();
  const Node &N = Prog.entry();
  ASSERT_EQ(N.Eqns.size(), 4u);
  EXPECT_EQ(N.Eqns[0].Lhs[0].str(), "y[0]");
  EXPECT_EQ(N.Eqns[0].Rhs->str(), "x[(3 - 0)]");
  EXPECT_EQ(N.Eqns[3].Lhs[0].str(), "y[3]");
  // Iteration groups stamp round boundaries for the no-unroll model.
  EXPECT_EQ(N.Eqns[0].IterGroup, 1u);
  EXPECT_EQ(N.Eqns[3].IterGroup, 4u);
}

TEST(ExpandProgram, NestedForallsAndShadowing) {
  Program Prog = parse(R"(
node F (x:u8[4]) returns (y:u8[4])
let forall i in [0,1] { forall j in [0,1] { y[2*i+j] = x[2*j+i] } } tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(expandProgram(Prog, Diags)) << Diags.str();
  ASSERT_EQ(Prog.entry().Eqns.size(), 4u);
  EXPECT_EQ(Prog.entry().Eqns[1].Lhs[0].str(), "y[((2 * 0) + 1)]");
  EXPECT_EQ(Prog.entry().Eqns[1].Rhs->str(), "x[((2 * 1) + 0)]");
  // Inner iterations inherit the outer (top-level) group.
  EXPECT_EQ(Prog.entry().Eqns[0].IterGroup, 1u);
  EXPECT_EQ(Prog.entry().Eqns[2].IterGroup, 2u);
}

TEST(ExpandProgram, RejectsEmptyRange) {
  Program Prog = parse(R"(
node F (x:u8) returns (y:u8)
let forall i in [3,1] { y = x } tel
)");
  DiagnosticEngine Diags;
  EXPECT_FALSE(expandProgram(Prog, Diags));
  EXPECT_NE(Diags.str().find("empty"), std::string::npos);
}

TEST(ExpandProgram, ImperativeDesugaring) {
  Program Prog = parse(R"(
node F (x:u8) returns (y:u8)
vars t:u8
let
  t = x;
  t := t ^ x;
  t := t ^ t;
  y = t
tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(expandProgram(Prog, Diags)) << Diags.str();
  const Node &N = Prog.entry();
  // Versions were introduced and reads redirected.
  ASSERT_EQ(N.Eqns.size(), 4u);
  EXPECT_EQ(N.Eqns[1].Lhs[0].Name, "t__v1");
  EXPECT_EQ(N.Eqns[2].Lhs[0].Name, "t__v2");
  EXPECT_EQ(N.Eqns[2].Rhs->str(), "(t__v1 ^ t__v1)");
  EXPECT_EQ(N.Eqns[3].Rhs->str(), "t__v2");
  // Fresh variables were declared.
  bool FoundV2 = false;
  for (const VarDecl &D : N.Vars)
    FoundV2 |= D.Name == "t__v2";
  EXPECT_TRUE(FoundV2);
}

TEST(ExpandProgram, ImperativeIndexedUpdate) {
  Program Prog = parse(R"(
node F (x:u8[3]) returns (y:u8[3])
vars s:u8[3]
let
  s = x;
  s[1] := s[0] ^ s[2];
  y = s
tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(expandProgram(Prog, Diags)) << Diags.str();
  // The partial update copies the untouched elements of the new version.
  const Node &N = Prog.entry();
  ASSERT_EQ(N.Eqns.size(), 5u); // s=x; v1[0]; v1[1]; v1[2]; y=v1
  EXPECT_EQ(N.Eqns[1].Lhs[0].str(), "s__v1[0]");
  EXPECT_EQ(N.Eqns[1].Rhs->str(), "s[0]");
  EXPECT_EQ(N.Eqns[2].Rhs->str(), "(s[0] ^ s[2])");
}

TEST(ExpandProgram, RejectsMixedAssignment) {
  Program Prog = parse(R"(
node F (x:u8) returns (y:u8)
vars t:u8
let t := x; t = x; y = t tel
)");
  DiagnosticEngine Diags;
  EXPECT_FALSE(expandProgram(Prog, Diags));
}

TEST(ElaborateTables, TableBecomesCircuitNode) {
  Program Prog = parse(R"(
table S (in:v4) returns (out:v4) {
  6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2
}
node F (x:v4) returns (y:v4) let y = S(x) tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(elaborateTables(Prog, Diags)) << Diags.str();
  const Node &S = Prog.Nodes[0];
  EXPECT_EQ(S.K, Node::Kind::Fun);
  EXPECT_TRUE(S.TableEntries.empty());
  // The Rectangle S-box comes from the known-circuit database: 12 gates,
  // hence 12 gate equations plus 4 output equations.
  EXPECT_EQ(S.Eqns.size(), 16u);
  EXPECT_FALSE(S.Vars.empty());
  // Gate temporaries use the atom scalar type ('m-parametric here).
  EXPECT_EQ(S.Vars[0].Ty.str(), "u'D'm");
}

TEST(ElaborateTables, SubColumnMatchesThePapersListing) {
  // Section 2.2 shows the node Rectangle's S-box elaborates to: 12
  // operations with the exact gate structure t1 = ~a1; t2 = a0 & t1;
  // t3 = a2 ^ a3; b0 = t2 ^ t3; t5 = a3 | t1; ... Our database stores
  // that circuit, so elaboration reproduces it: 4 ANDs/ORs, 7 XORs
  // (one per b output plus t3, t8, t9... precisely 1 NOT, 2 AND, 2 OR,
  // 7 XOR as in the listing).
  Program Prog = parse(R"(
table SubColumn (in:v4) returns (out:v4) {
  6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2
}
node F (x:v4) returns (y:v4) let y = SubColumn(x) tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(elaborateTables(Prog, Diags)) << Diags.str();
  const Node &S = Prog.Nodes[0];
  unsigned Nots = 0, Ands = 0, Ors = 0, Xors = 0;
  std::function<void(const Expr &)> Count = [&](const Expr &E) {
    if (E.K == Expr::Kind::Not)
      ++Nots;
    if (E.K == Expr::Kind::Binop) {
      Ands += E.Binop == BinopKind::And;
      Ors += E.Binop == BinopKind::Or;
      Xors += E.Binop == BinopKind::Xor;
    }
    if (E.Base)
      Count(*E.Base);
    if (E.Rhs)
      Count(*E.Rhs);
    for (const auto &Elem : E.Elems)
      Count(*Elem);
  };
  for (const Equation &E : S.Eqns)
    Count(*E.Rhs);
  EXPECT_EQ(Nots, 1u);
  EXPECT_EQ(Ands, 2u);
  EXPECT_EQ(Ors, 2u);
  EXPECT_EQ(Xors, 7u);
  // First gate of the listing: t = ~a[1].
  EXPECT_EQ(S.Eqns[0].Rhs->str(), "~in[1]");
}

TEST(ElaborateTables, PermBecomesWiring) {
  Program Prog = parse(R"(
perm P (in:b4) returns (out:b4) { 4, 3, 2, 1 }
node F (x:b4) returns (y:b4) let y = P(x) tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(elaborateTables(Prog, Diags)) << Diags.str();
  const Node &P = Prog.Nodes[0];
  EXPECT_EQ(P.K, Node::Kind::Fun);
  ASSERT_EQ(P.Eqns.size(), 4u);
  EXPECT_EQ(P.Eqns[0].Lhs[0].str(), "out[0]");
  EXPECT_EQ(P.Eqns[0].Rhs->str(), "in[3]");
}

TEST(ElaborateTables, PermWithRepeatsExpands) {
  // The DES expansion E duplicates bits: 6 outputs from 4 inputs.
  Program Prog = parse(R"(
perm E (in:b4) returns (out:b6) { 4, 1, 2, 3, 4, 1 }
node F (x:b4) returns (y:b6) let y = E(x) tel
)");
  DiagnosticEngine Diags;
  ASSERT_TRUE(elaborateTables(Prog, Diags)) << Diags.str();
  EXPECT_EQ(Prog.Nodes[0].Eqns.size(), 6u);
}

TEST(ElaborateTables, RejectsWrongEntryCount) {
  Program Prog = parse(R"(
table S (in:v4) returns (out:v4) { 1, 2, 3 }
node F (x:v4) returns (y:v4) let y = S(x) tel
)");
  DiagnosticEngine Diags;
  EXPECT_FALSE(elaborateTables(Prog, Diags));
  EXPECT_NE(Diags.str().find("16 entries"), std::string::npos);
}

TEST(ElaborateTables, RejectsOutOfRangePermIndex) {
  Program Prog = parse(R"(
perm P (in:b4) returns (out:b4) { 1, 2, 3, 5 }
node F (x:b4) returns (y:b4) let y = P(x) tel
)");
  DiagnosticEngine Diags;
  EXPECT_FALSE(elaborateTables(Prog, Diags));
}

TEST(Monomorphize, SubstitutesEveryDeclaration) {
  Program Prog = parse(R"(
node F (x:v4) returns (y:v4) vars t:v1 let t = x[0]; y = (t, x[1..3]) tel
)");
  monomorphizeProgram(Prog, Dir::Horiz, 16);
  EXPECT_EQ(Prog.entry().Params[0].Ty.str(), "uH16[4]");
  EXPECT_EQ(Prog.entry().Vars[0].Ty.str(), "uH16");
}

TEST(Flatten, RewritesAtomsToBitVectors) {
  Program Prog = parse(R"(
node F (x:u16x4) returns (y:u16x4) let y = x tel
)");
  monomorphizeProgram(Prog, Dir::Vert, 16);
  flattenProgram(Prog);
  // u16x4 -> b16[4], i.e. uV1[16][4].
  EXPECT_EQ(Prog.entry().Params[0].Ty.str(), "uV1[16][4]");
  EXPECT_EQ(Prog.entry().Params[0].Ty.flattenedLength(), 64u);
}

} // namespace
