//===- DifferentialO0Test.cpp - Optimized vs -O0 equivalence --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property test for the mid-end optimizer: for every bundled program and
// every SIMD target, the optimized kernel and the -O0 kernel (all four
// mid-end passes disabled) must produce byte-identical outputs on
// randomized inputs. Both rungs are covered — the interpreter for the
// full program x arch matrix, and the JIT for a representative kernel
// when a host compiler is available.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "cbackend/NativeJit.h"
#include "ciphers/UsubaSources.h"
#include "runtime/KernelRunner.h"
#include "support/Diagnostics.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

using namespace usuba;

namespace {

struct ProgramSpec {
  const char *Label;
  const std::string &(*Source)();
  Dir Direction;
  unsigned WordBits;
  bool Bitslice;
};

const ProgramSpec Programs[] = {
    {"rectangle -V", rectangleSource, Dir::Vert, 16, false},
    {"rectangle_dec -V", rectangleDecSource, Dir::Vert, 16, false},
    {"des -B", desSource, Dir::Vert, 1, true},
    {"aes -H", aesSource, Dir::Horiz, 16, false},
    {"aes_dec -H", aesDecSource, Dir::Horiz, 16, false},
    {"chacha20 -V", chacha20Source, Dir::Vert, 32, false},
    {"serpent -V", serpentSource, Dir::Vert, 32, false},
    {"serpent_dec -V", serpentDecSource, Dir::Vert, 32, false},
    {"present -B", presentSource, Dir::Vert, 1, true},
    {"present_dec -B", presentDecSource, Dir::Vert, 1, true},
    {"trivium -V", triviumSource, Dir::Vert, 64, false},
};

CompileOptions optionsFor(const ProgramSpec &Spec, const Arch &Target,
                          bool MidEnd) {
  CompileOptions Options;
  Options.Direction = Spec.Direction;
  Options.WordBits = Spec.WordBits;
  Options.Bitslice = Spec.Bitslice;
  Options.Target = &Target;
  Options.CopyProp = MidEnd;
  Options.ConstantFold = MidEnd;
  Options.Cse = MidEnd;
  Options.Dce = MidEnd;
  return Options;
}

std::optional<CompiledKernel> compileSpec(const ProgramSpec &Spec,
                                          const Arch &Target, bool MidEnd) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Spec.Source(), optionsFor(Spec, Target, MidEnd), Diags);
  EXPECT_TRUE(Kernel) << Spec.Label << " on " << Target.Name
                      << (MidEnd ? "" : " -O0");
  return Kernel;
}

/// Random atoms for every parameter of \p R, masked to the program's atom
/// width, all passed per-block so the full pack path is exercised.
std::vector<std::vector<uint64_t>> randomInputs(const KernelRunner &R,
                                                std::mt19937_64 &Rng) {
  const unsigned MBits = R.kernel().Prog.MBits;
  const uint64_t Mask = MBits >= 64 ? ~uint64_t{0}
                                    : ((uint64_t{1} << MBits) - 1);
  std::vector<std::vector<uint64_t>> Atoms;
  for (unsigned Len : R.paramLens()) {
    std::vector<uint64_t> Param(size_t{Len} * R.blocksPerCall());
    for (uint64_t &A : Param)
      A = Rng() & Mask;
    Atoms.push_back(std::move(Param));
  }
  return Atoms;
}

std::vector<uint64_t> runOnce(KernelRunner &R,
                              const std::vector<std::vector<uint64_t>> &Atoms) {
  std::vector<KernelRunner::ParamData> Params;
  for (const std::vector<uint64_t> &Param : Atoms)
    Params.push_back({/*Broadcast=*/false, Param.data(), 0});
  std::vector<uint64_t> Out(size_t{R.outputAtomsPerBlock()} *
                            R.blocksPerCall());
  R.runBatch(Params, Out.data());
  return Out;
}

TEST(DifferentialO0, InterpreterMatchesOnAllProgramsAndArchs) {
  const Arch *Targets[] = {&archSSE(), &archAVX2(), &archAVX512()};
  std::mt19937_64 Rng(0xD1FF0);
  for (const ProgramSpec &Spec : Programs) {
    for (const Arch *Target : Targets) {
      std::optional<CompiledKernel> Opt = compileSpec(Spec, *Target, true);
      std::optional<CompiledKernel> Base = compileSpec(Spec, *Target, false);
      ASSERT_TRUE(Opt && Base);
      EXPECT_LE(Opt->InstrCount, Base->InstrCount)
          << Spec.Label << " on " << Target->Name;
      KernelRunner OptRunner(std::move(*Opt));
      KernelRunner BaseRunner(std::move(*Base));
      ASSERT_EQ(OptRunner.blocksPerCall(), BaseRunner.blocksPerCall());
      ASSERT_EQ(OptRunner.paramLens(), BaseRunner.paramLens());
      // Two batches: distinct random inputs, and the second catches any
      // stale state left by the first.
      for (int Batch = 0; Batch < 2; ++Batch) {
        std::vector<std::vector<uint64_t>> Atoms =
            randomInputs(OptRunner, Rng);
        EXPECT_EQ(runOnce(OptRunner, Atoms), runOnce(BaseRunner, Atoms))
            << Spec.Label << " on " << Target->Name << " batch " << Batch;
      }
    }
  }
}

TEST(DifferentialO0, JitMatchesOnRepresentativeKernels) {
  if (!NativeKernel::hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  const Arch &Target = archSSE();
  if (!hostSupports(Target))
    GTEST_SKIP() << "host cannot execute " << Target.Name;
  std::mt19937_64 Rng(0xD1FF1);
  for (const ProgramSpec &Spec : {Programs[0] /* rectangle -V */,
                                  Programs[8] /* present -B */}) {
    std::optional<CompiledKernel> Opt = compileSpec(Spec, Target, true);
    std::optional<CompiledKernel> Base = compileSpec(Spec, Target, false);
    ASSERT_TRUE(Opt && Base);
    JitError Error;
    std::optional<NativeKernel> OptNative = jitCompile(*Opt, "-O2", &Error);
    ASSERT_TRUE(OptNative) << Error.str();
    std::optional<NativeKernel> BaseNative = jitCompile(*Base, "-O1", &Error);
    ASSERT_TRUE(BaseNative) << Error.str();
    KernelRunner OptRunner(std::move(*Opt));
    KernelRunner BaseRunner(std::move(*Base));
    OptRunner.setNativeFn(OptNative->fn());
    BaseRunner.setNativeFn(BaseNative->fn());
    for (int Batch = 0; Batch < 2; ++Batch) {
      std::vector<std::vector<uint64_t>> Atoms = randomInputs(OptRunner, Rng);
      EXPECT_EQ(runOnce(OptRunner, Atoms), runOnce(BaseRunner, Atoms))
          << Spec.Label << " batch " << Batch;
    }
    // The first batch ran the differential self-check against the
    // interpreter on both runners; neither may have been demoted.
    EXPECT_EQ(OptRunner.fallbackKind(), EngineFallback::None) << Spec.Label;
    EXPECT_EQ(BaseRunner.fallbackKind(), EngineFallback::None) << Spec.Label;
  }
}

} // namespace
