//===- ProvenanceTest.cpp - Source provenance and compile remarks ---------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end observability properties of the pipeline: every Usuba0
/// instruction that survives compilation carries a `.ua` source
/// location; the C emitter surfaces those locations as comments; a
/// compile captures exactly its own remark slice; refused optimizations
/// name the pass, the reason and the responsible source node; and the
/// per-pass observer fires once per attempted pass.
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"
#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "support/Remarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace usuba;

namespace {

/// Restores the global remark state around each test (the engine is
/// process-wide and other tests must not see our remarks).
class RemarkGuard {
public:
  RemarkGuard() : WasEnabled(remarksEnabled()) {
    RemarkEngine::instance().reset();
  }
  ~RemarkGuard() {
    RemarkEngine::instance().setEnabled(WasEnabled);
    RemarkEngine::instance().reset();
  }

private:
  bool WasEnabled;
};

CompileOptions bitsliceOptions() {
  CompileOptions Options;
  Options.Bitslice = true;
  Options.WordBits = 16;
  Options.Target = &archGP64();
  return Options;
}

CompileOptions vsliceOptions() {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archGP64();
  return Options;
}

TEST(Provenance, EveryInstructionCarriesASourceLocation) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), bitsliceOptions(), Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  // The whole optimized program — through normalization, flattening,
  // inlining, scheduling and peepholes — still maps back to `.ua` lines.
  for (const U0Function &F : Kernel->Prog.Funcs)
    for (size_t I = 0; I < F.Instrs.size(); ++I)
      EXPECT_TRUE(F.Instrs[I].Loc.isValid())
          << F.Name << " instr " << I << " lost its source location";
}

TEST(Provenance, ProgramDumpShowsLocationsOnlyOnRequest) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), vsliceOptions(), Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  // Default dump is unchanged (golden tests and log-diffing rely on
  // it); the WithLocs form annotates every instruction.
  EXPECT_EQ(Kernel->Prog.str().find("ua:"), std::string::npos);
  EXPECT_NE(Kernel->Prog.str(/*WithLocs=*/true).find("; ua:"),
            std::string::npos);
}

TEST(Provenance, EmittedCCarriesLocationComments) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), vsliceOptions(), Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  std::string Code = emitC(Kernel->Prog).Code;
  EXPECT_NE(Code.find("/* ua:"), std::string::npos)
      << "JIT-compiled C lost the .ua provenance comments";
}

TEST(Remarks, CompileCapturesExactlyItsOwnSlice) {
  RemarkGuard Guard;
  RemarkEngine::instance().setEnabled(true);

  // A remark recorded before the compile must not leak into its slice.
  RemarkEngine::instance().record(
      Remark::analysis("foreign-pass", "NotMine"));

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), bitsliceOptions(), Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  ASSERT_FALSE(Kernel->Remarks.empty());
  for (const Remark &R : Kernel->Remarks)
    EXPECT_NE(R.Pass, "foreign-pass");

  // The bitsliced compile must explain its scheduling decision with a
  // reason and a source location (the `usubac -Rpass` acceptance path).
  auto Sched = std::find_if(Kernel->Remarks.begin(), Kernel->Remarks.end(),
                            [](const Remark &R) {
                              return R.Pass == "schedule-bitslice" &&
                                     R.K == Remark::Kind::Passed;
                            });
  ASSERT_NE(Sched, Kernel->Remarks.end());
  EXPECT_FALSE(Sched->Message.empty());
  EXPECT_TRUE(Sched->Loc.isValid());
  EXPECT_FALSE(Sched->Function.empty());

  // Every attempted back-end pass is covered by at least one remark
  // (the CI remark-report validator relies on this invariant).
  for (const PassStat &S : Kernel->PassStats) {
    bool Covered = std::any_of(
        Kernel->Remarks.begin(), Kernel->Remarks.end(),
        [&](const Remark &R) { return R.Pass == S.Name; });
    EXPECT_TRUE(Covered) << "pass " << S.Name << " left no remark";
  }
}

TEST(Remarks, DisabledCompileRecordsNothing) {
  RemarkGuard Guard;
  RemarkEngine::instance().setEnabled(false);

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), vsliceOptions(), Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_TRUE(Kernel->Remarks.empty());
  EXPECT_EQ(RemarkEngine::instance().size(), 0u);
}

TEST(Remarks, BudgetTripNamesPassAndSourceNode) {
  RemarkGuard Guard;
  RemarkEngine::instance().setEnabled(true);

  // An instruction budget far below Rectangle's inlined size: the
  // inliner must refuse, and the remark must say which pass, why, and
  // which source node was responsible.
  CompileOptions Options = bitsliceOptions();
  Options.Budgets.MaxInstrs = 100;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  auto Missed = std::find_if(Kernel->Remarks.begin(), Kernel->Remarks.end(),
                             [](const Remark &R) {
                               return R.Pass == "inline" &&
                                      R.K == Remark::Kind::Missed;
                             });
  ASSERT_NE(Missed, Kernel->Remarks.end())
      << RemarkEngine::jsonArray(Kernel->Remarks);
  EXPECT_FALSE(Missed->Message.empty());
  EXPECT_FALSE(Missed->Function.empty()) << "no responsible source node";
  EXPECT_TRUE(Missed->Loc.isValid());
  bool HasBudgetArg =
      std::any_of(Missed->Args.begin(), Missed->Args.end(),
                  [](const Remark::Arg &A) { return A.Key == "max_instrs"; });
  EXPECT_TRUE(HasBudgetArg);
}

TEST(Remarks, PassObserverFiresOncePerAttemptedPass) {
  RemarkGuard Guard;

  std::vector<std::string> Observed;
  CompileOptions Options = vsliceOptions();
  Options.PassObserver = [&](const PassStat &S, const U0Program &Prog) {
    Observed.push_back(S.Name);
    EXPECT_FALSE(Prog.Funcs.empty());
  };
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();

  ASSERT_EQ(Observed.size(), Kernel->PassStats.size());
  for (size_t I = 0; I < Observed.size(); ++I)
    EXPECT_EQ(Observed[I], Kernel->PassStats[I].Name);
}

} // namespace
