//===- PassesTest.cpp - Back-end pass tests -------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Passes.h"

#include "core/Compiler.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

/// Compiles a small program and returns the U0 for pass-level testing.
CompiledKernel compileRect(bool Inline, bool Schedule, bool Interleave,
                           bool Bitslice = false,
                           ScheduleObjective Objective =
                               ScheduleObjective::Window) {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Bitslice = Bitslice;
  Options.Target = &archAVX2();
  Options.Inline = Inline;
  Options.Schedule = Schedule;
  Options.Interleave = Interleave;
  Options.ScheduleObjective = Objective;
  DiagnosticEngine Diags;
  const char *Source = R"(
table S (in:v4) returns (out:v4) {
  6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2
}
node F (x:u16x4, k:u16x4[3]) returns (y:u16x4)
vars r:u16x4[3]
let
  r[0] = x;
  forall i in [0,1] { r[i+1] = S(r[i] ^ k[i]) <<< 1 }
  y = r[2] ^ k[2]
tel
)";
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str();
  return std::move(*Kernel);
}

/// Runs a program on fixed pseudo-random inputs and returns the outputs.
std::vector<SimdReg> execute(const U0Program &Prog, uint64_t Seed) {
  Interpreter Interp(Prog);
  std::mt19937_64 Rng(Seed);
  std::vector<SimdReg> In(Interp.numInputs()), Out(Interp.numOutputs());
  for (SimdReg &R : In)
    for (unsigned W = 0; W < Interp.widthWords(); ++W)
      R.Words[W] = Rng();
  Interp.run(In.data(), Out.data());
  return Out;
}

TEST(CopyProp, ErasesAllMovs) {
  CompiledKernel K = compileRect(true, false, false);
  for (const U0Instr &I : K.Prog.entry().Instrs)
    EXPECT_NE(I.Op, U0Op::Mov);
}

TEST(Inline, RemovesAllCalls) {
  CompiledKernel Inlined = compileRect(true, false, false);
  for (const U0Instr &I : Inlined.Prog.entry().Instrs)
    EXPECT_NE(I.Op, U0Op::Call);
  CompiledKernel Outlined = compileRect(false, false, false);
  unsigned Calls = 0;
  for (const U0Instr &I : Outlined.Prog.entry().Instrs)
    Calls += I.Op == U0Op::Call;
  EXPECT_EQ(Calls, 2u) << "two S-box applications stay as calls";
}

TEST(Inline, PreservesSemantics) {
  CompiledKernel A = compileRect(true, false, false);
  CompiledKernel B = compileRect(false, false, false);
  EXPECT_EQ(execute(A.Prog, 7), execute(B.Prog, 7));
}

TEST(Schedule, PreservesSemanticsAndShape) {
  CompiledKernel Plain = compileRect(true, false, false);
  CompiledKernel Scheduled = compileRect(true, true, false);
  EXPECT_EQ(Plain.Prog.entry().Instrs.size(),
            Scheduled.Prog.entry().Instrs.size())
      << "scheduling permutes, never adds or removes";
  EXPECT_EQ(execute(Plain.Prog, 13), execute(Scheduled.Prog, 13));
}

TEST(Schedule, DepthObjectiveIsSemanticallyIdentical) {
  // -fschedule=depth only permutes; the computed function is the same.
  // Differential check on both scheduler families: the m-slice list
  // scheduler (vsliced compile) and the bitslice hoisting scheduler
  // (-B compile).
  for (bool Bitslice : {false, true}) {
    CompiledKernel Window =
        compileRect(true, true, false, Bitslice, ScheduleObjective::Window);
    CompiledKernel Depth =
        compileRect(true, true, false, Bitslice, ScheduleObjective::Depth);
    EXPECT_EQ(Window.Prog.entry().Instrs.size(),
              Depth.Prog.entry().Instrs.size())
        << "objective changes order only, bitslice=" << Bitslice;
    EXPECT_EQ(execute(Window.Prog, 29), execute(Depth.Prog, 29))
        << "bitslice=" << Bitslice;
  }
}

TEST(Schedule, KernelMetricsArePopulated) {
  CompiledKernel K = compileRect(true, true, false);
  EXPECT_GT(K.KernelGates, 0u);
  EXPECT_GT(K.KernelDepth, 0u);
  EXPECT_LE(K.KernelDepth, K.KernelGates)
      << "the critical path is a chain through the gates";
  // The recorded metrics describe the final program.
  EXPECT_EQ(K.KernelGates, countKernelGates(K.Prog.entry()));
  EXPECT_EQ(K.KernelDepth, criticalPathLength(K.Prog.entry()));
  // Scheduling permutes instructions, so the metrics are order-invariant.
  CompiledKernel Depth =
      compileRect(true, true, false, false, ScheduleObjective::Depth);
  EXPECT_EQ(K.KernelGates, Depth.KernelGates);
  EXPECT_EQ(K.KernelDepth, Depth.KernelDepth);
}

TEST(Schedule, CriticalPathLengthOnHandBuiltChain) {
  // x0 -> a = x0^x1 -> b = a&x0 -> c = ~b: a pure chain of height 3,
  // plus an independent d = x1|x1 that must not lengthen it.
  U0Function F;
  F.Name = "t";
  F.NumInputs = 2;
  F.NumRegs = 6;
  F.Outputs = {4, 5};
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 3, 2, 0));
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 4, 3));
  F.Instrs.push_back(U0Instr::binary(U0Op::Or, 5, 1, 1));
  EXPECT_EQ(criticalPathLength(F), 3u);
  EXPECT_EQ(countKernelGates(F), 4u);
  // Movs are free: a copy appended to the chain adds no height.
  F.Instrs.push_back(U0Instr::unary(U0Op::Mov, 5, 4));
  EXPECT_EQ(criticalPathLength(F), 3u);
  EXPECT_EQ(countKernelGates(F), 4u);
}

TEST(Interleave, DoublesAbiAndPreservesEachInstance) {
  CompiledKernel Single = compileRect(true, true, false);
  CompiledKernel Doubled = compileRect(true, true, true);
  ASSERT_EQ(Doubled.Prog.InterleaveFactor, 2u);
  const U0Function &S = Single.Prog.entry();
  const U0Function &D = Doubled.Prog.entry();
  EXPECT_EQ(D.NumInputs, 2 * S.NumInputs);
  EXPECT_EQ(D.Outputs.size(), 2 * S.Outputs.size());
  EXPECT_EQ(D.Instrs.size(), 2 * S.Instrs.size());

  // Feed two different blocks; each instance must equal the single-run.
  Interpreter SingleInterp(Single.Prog);
  Interpreter DoubleInterp(Doubled.Prog);
  std::mt19937_64 Rng(99);
  std::vector<SimdReg> InA(S.NumInputs), InB(S.NumInputs);
  for (unsigned R = 0; R < S.NumInputs; ++R)
    for (unsigned W = 0; W < 4; ++W) {
      InA[R].Words[W] = Rng();
      InB[R].Words[W] = Rng();
    }
  std::vector<SimdReg> OutA(S.Outputs.size()), OutB(S.Outputs.size());
  SingleInterp.run(InA.data(), OutA.data());
  SingleInterp.run(InB.data(), OutB.data());

  std::vector<SimdReg> InD(D.NumInputs), OutD(D.Outputs.size());
  for (unsigned R = 0; R < S.NumInputs; ++R) {
    InD[R] = InA[R];
    InD[S.NumInputs + R] = InB[R];
  }
  DoubleInterp.run(InD.data(), OutD.data());
  for (unsigned R = 0; R < S.Outputs.size(); ++R) {
    EXPECT_EQ(OutD[R], OutA[R]) << "instance 0 reg " << R;
    EXPECT_EQ(OutD[S.Outputs.size() + R], OutB[R]) << "instance 1 reg "
                                                   << R;
  }
}

TEST(Interleave, AlternatesBlocksOfTen) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.Name = "chain";
  F.NumRegs = 26;
  F.NumInputs = 1;
  for (unsigned I = 0; I < 25; ++I)
    F.Instrs.push_back(U0Instr::unary(U0Op::Not, I + 1, I));
  F.Outputs = {25};
  Prog.Funcs.push_back(std::move(F));

  interleaveEntry(Prog, 2, /*BlockSize=*/10);
  const U0Function &Entry = Prog.entry();
  ASSERT_EQ(Entry.Instrs.size(), 50u);
  // Pattern: 10 from instance 0, 10 from instance 1, 10 from 0, ...
  // Instance is identifiable from the destination register range.
  auto InstanceOf = [&](const U0Instr &I) {
    return I.Dests[0] < 2 + 25 ? 0 : 1; // inputs 0..1, locals0 2..26
  };
  // 25 instructions per instance in blocks of 10: 10xA 10xB 10xA 10xB
  // then the 5-instruction tails 5xA 5xB.
  std::vector<int> Expected;
  for (int Round = 0; Round < 2; ++Round)
    for (int T = 0; T < 2; ++T)
      for (int I = 0; I < 10; ++I)
        Expected.push_back(T);
  for (int T = 0; T < 2; ++T)
    for (int I = 0; I < 5; ++I)
      Expected.push_back(T);
  for (unsigned I = 0; I < 50; ++I)
    EXPECT_EQ(InstanceOf(Entry.Instrs[I]), Expected[I]) << "instr " << I;
}

TEST(DeadCode, RemovesUnusedComputation) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.NumRegs = 4;
  F.NumInputs = 1;
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 1, 0)); // used
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 1)); // dead
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 3, 0, 1));
  F.Outputs = {3};
  Prog.Funcs.push_back(std::move(F));
  eliminateDeadCode(Prog.entry());
  compactRegisters(Prog.entry());
  EXPECT_EQ(Prog.entry().Instrs.size(), 2u);
  EXPECT_EQ(verifyU0(Prog), "");
}

TEST(FuseAndNot, RewritesSingleUseNot) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.NumRegs = 4;
  F.NumInputs = 2;
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 3, 2, 1));
  F.Outputs = {3};
  Prog.Funcs.push_back(std::move(F));
  U0Program Before = Prog;
  fuseAndNot(Prog.entry());
  compactRegisters(Prog.entry());
  ASSERT_EQ(Prog.entry().Instrs.size(), 1u);
  EXPECT_EQ(Prog.entry().Instrs[0].Op, U0Op::Andn);
  EXPECT_EQ(execute(Prog, 3), execute(Before, 3));
}

TEST(FuseAndNot, KeepsMultiUseNot) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.NumRegs = 5;
  F.NumInputs = 2;
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 3, 2, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 4, 2, 3));
  F.Outputs = {4};
  Prog.Funcs.push_back(std::move(F));
  fuseAndNot(Prog.entry());
  EXPECT_EQ(Prog.entry().Instrs.size(), 3u);
}

TEST(Cse, FoldsStructuralDuplicates) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.NumRegs = 6;
  F.NumInputs = 2;
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 3, 1, 0)); // commutative dup
  F.Instrs.push_back(U0Instr::binary(U0Op::Sub, 4, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Sub, 5, 1, 0)); // NOT a dup
  F.Outputs = {2, 3, 4, 5};
  Prog.Funcs.push_back(std::move(F));
  U0Program Before = Prog;
  EXPECT_EQ(eliminateCommonSubexpressions(Prog.entry()), 1u);
  EXPECT_EQ(Prog.entry().Instrs.size(), 3u);
  EXPECT_EQ(Prog.entry().Outputs[0], Prog.entry().Outputs[1]);
  EXPECT_EQ(verifyU0(Prog), "");
  EXPECT_EQ(execute(Prog, 21), execute(Before, 21));
}

TEST(Cse, DistinguishesAmountsAndImmediates) {
  U0Program Prog;
  Prog.Target = &archAVX2();
  Prog.MBits = 16;
  U0Function F;
  F.NumRegs = 5;
  F.NumInputs = 1;
  F.Instrs.push_back(U0Instr::shift(U0Op::Lrotate, 1, 0, 3));
  F.Instrs.push_back(U0Instr::shift(U0Op::Lrotate, 2, 0, 5));
  F.Instrs.push_back(U0Instr::constant(3, 7));
  F.Instrs.push_back(U0Instr::constant(4, 8));
  F.Outputs = {1, 2, 3, 4};
  Prog.Funcs.push_back(std::move(F));
  EXPECT_EQ(eliminateCommonSubexpressions(Prog.entry()), 0u);
}

TEST(Liveness, CountsOverlappingRanges) {
  U0Function F;
  F.NumRegs = 5;
  F.NumInputs = 2;
  // t2 = a^b; t3 = ~t2; t4 = t2 & t3 — at the And, t2 and t3 are live.
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 3, 2));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 4, 2, 3));
  F.Outputs = {4};
  // At the final And, its two sources and its destination all coexist.
  EXPECT_EQ(maxLiveRegisters(F, /*CountInputs=*/false), 3u);
  EXPECT_EQ(maxLiveRegisters(F, /*CountInputs=*/true), 3u);
}

TEST(Heuristics, InterleaveFactor) {
  EXPECT_EQ(interleaveFactorFor(7, archAVX2()), 2u);  // the paper's case
  EXPECT_EQ(interleaveFactorFor(16, archAVX2()), 1u);
  EXPECT_EQ(interleaveFactorFor(3, archAVX2()), 4u);  // clamped
  EXPECT_EQ(interleaveFactorFor(8, archAVX512()), 4u);
  EXPECT_EQ(interleaveFactorFor(0, archAVX2()), 1u);
}

} // namespace
