//===- NormalizeTest.cpp - AST -> Usuba0 lowering tests -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Normalize.h"

#include "core/AstPasses.h"
#include "core/Compiler.h"
#include "core/Passes.h"
#include "core/TypeChecker.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

U0Program lower(std::string_view Source, Dir Direction, unsigned MBits,
                const Arch &Target, bool Barriers = false) {
  DiagnosticEngine Diags;
  std::optional<ast::Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  EXPECT_TRUE(expandProgram(*Prog, Diags) && elaborateTables(*Prog, Diags))
      << Diags.str();
  monomorphizeProgram(*Prog, Direction, MBits);
  EXPECT_TRUE(checkProgram(*Prog, Target, Diags)) << Diags.str();
  U0Program U0 = normalizeProgram(*Prog, Direction, MBits, Target, Barriers);
  EXPECT_EQ(verifyU0(U0), "");
  return U0;
}

unsigned countOp(const U0Function &F, U0Op Op) {
  unsigned Count = 0;
  for (const U0Instr &I : F.Instrs)
    Count += I.Op == Op;
  return Count;
}

TEST(Normalize, ScalarOpsBecomeInstructions) {
  U0Program U0 = lower(R"(
node F (a:u16, b:u16) returns (y:u16)
let y = (a ^ b) & ~a tel
)",
                       Dir::Vert, 16, archAVX2());
  const U0Function &F = U0.entry();
  EXPECT_EQ(F.NumInputs, 2u);
  EXPECT_EQ(F.Outputs.size(), 1u);
  EXPECT_EQ(countOp(F, U0Op::Xor), 1u);
  EXPECT_EQ(countOp(F, U0Op::And), 1u);
  EXPECT_EQ(countOp(F, U0Op::Not), 1u);
}

TEST(Normalize, VectorOpsApplyHomomorphically) {
  U0Program U0 = lower(R"(
node F (a:u16x4, b:u16x4) returns (y:u16x4)
let y = a + b tel
)",
                       Dir::Vert, 16, archAVX2());
  EXPECT_EQ(countOp(U0.entry(), U0Op::Add), 4u);
}

TEST(Normalize, VectorRotationIsFree) {
  // `x <<< 1` on a vector is register renaming: zero instructions after
  // copy propagation (Table 1's "0 instr." row).
  U0Program U0 = lower(R"(
node F (x:u16[4]) returns (y:u16[4])
let y = x <<< 1 tel
)",
                       Dir::Vert, 16, archAVX2());
  cleanupProgram(U0);
  EXPECT_TRUE(U0.entry().Instrs.empty());
  // y[i] = x[(i+1) mod 4]: outputs are renamed inputs.
  std::vector<unsigned> Expected = {1, 2, 3, 0};
  EXPECT_EQ(U0.entry().Outputs, Expected);
}

TEST(Normalize, VectorShiftZeroFills) {
  U0Program U0 = lower(R"(
node F (x:u16[4]) returns (y:u16[4])
let y = x << 2 tel
)",
                       Dir::Vert, 16, archAVX2());
  cleanupProgram(U0);
  // y[0] = x[2], y[1] = x[3], y[2] = y[3] = zero constant.
  ASSERT_EQ(countOp(U0.entry(), U0Op::Const), 1u);
  EXPECT_EQ(U0.entry().Outputs[0], 2u);
  EXPECT_EQ(U0.entry().Outputs[1], 3u);
  EXPECT_EQ(U0.entry().Outputs[2], U0.entry().Outputs[3]);
}

TEST(Normalize, AtomShiftsByDirection) {
  // Vertical: a shift instruction; horizontal: a Shuffle.
  U0Program V = lower("node F (x:u16) returns (y:u16) let y = x <<< 3 tel",
                      Dir::Vert, 16, archAVX2());
  EXPECT_EQ(countOp(V.entry(), U0Op::Lrotate), 1u);
  U0Program H = lower("node F (x:u16) returns (y:u16) let y = x <<< 3 tel",
                      Dir::Horiz, 16, archAVX2());
  EXPECT_EQ(countOp(H.entry(), U0Op::Shuffle), 1u);
  // The H pattern is the rotation of positions: out[j] = in[(j+3)%16].
  for (const U0Instr &I : H.entry().Instrs)
    if (I.Op == U0Op::Shuffle) {
      ASSERT_EQ(I.Pattern.size(), 16u);
      EXPECT_EQ(I.Pattern[0], 3u);
      EXPECT_EQ(I.Pattern[15], 2u);
    }
}

TEST(Normalize, AtomHorizontalShiftZeroesViaSentinel) {
  U0Program H = lower("node F (x:u16) returns (y:u16) let y = x << 2 tel",
                      Dir::Horiz, 16, archAVX2());
  bool Found = false;
  for (const U0Instr &I : H.entry().Instrs)
    if (I.Op == U0Op::Shuffle) {
      Found = true;
      EXPECT_EQ(I.Pattern[0], 2u);
      EXPECT_EQ(I.Pattern[14], 0xFFu); // zero-fill sentinel
      EXPECT_EQ(I.Pattern[15], 0xFFu);
    }
  EXPECT_TRUE(Found);
}

TEST(Normalize, LiteralSplitsAcrossAtoms) {
  U0Program U0 = lower(R"(
node F (x:u8[2]) returns (y:u8[2])
let y = x ^ 0x1234 tel
)",
                       Dir::Vert, 8, archAVX2());
  // Atom 0 is the most significant chunk: 0x12 then 0x34.
  std::vector<uint64_t> Imms;
  for (const U0Instr &I : U0.entry().Instrs)
    if (I.Op == U0Op::Const)
      Imms.push_back(I.Imm);
  ASSERT_EQ(Imms.size(), 2u);
  EXPECT_EQ(Imms[0], 0x12u);
  EXPECT_EQ(Imms[1], 0x34u);
}

TEST(Normalize, CallsCarryFlattenedArguments) {
  U0Program U0 = lower(R"(
node G (a:u16x4) returns (b:u16x4) let b = a <<< 1 tel
node F (x:u16x4) returns (y:u16x4) let y = G(x) tel
)",
                       Dir::Vert, 16, archAVX2());
  const U0Function &F = U0.entry();
  unsigned Calls = 0;
  for (const U0Instr &I : F.Instrs)
    if (I.Op == U0Op::Call) {
      ++Calls;
      EXPECT_EQ(I.Srcs.size(), 4u);
      EXPECT_EQ(I.Dests.size(), 4u);
      EXPECT_EQ(U0.Funcs[I.Callee].Name, "G");
    }
  EXPECT_EQ(Calls, 1u);
}

TEST(Normalize, BarriersBetweenIterations) {
  const char *Source = R"(
node F (x:u16) returns (y:u16)
vars r:u16[4]
let
  r[0] = x;
  forall i in [0,2] { r[i+1] = r[i] <<< 1 }
  y = r[3]
tel
)";
  U0Program WithBarriers =
      lower(Source, Dir::Vert, 16, archAVX2(), /*Barriers=*/true);
  // Fences at every iteration-group change: before round 1, between the
  // three rounds (2 fences), and before the trailing equation.
  EXPECT_EQ(countOp(WithBarriers.entry(), U0Op::Barrier), 4u);
  U0Program Without = lower(Source, Dir::Vert, 16, archAVX2());
  EXPECT_EQ(countOp(Without.entry(), U0Op::Barrier), 0u);
}

TEST(Verifier, CatchesIllFormedPrograms) {
  U0Program Prog;
  Prog.MBits = 16;
  Prog.Target = &archAVX2();
  U0Function F;
  F.Name = "bad";
  F.NumRegs = 2;
  F.NumInputs = 1;
  F.Outputs = {1};
  // Use before definition.
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 1, 0, 1));
  Prog.Funcs.push_back(F);
  EXPECT_NE(verifyU0(Prog).find("before definition"), std::string::npos);
  // Double definition.
  Prog.Funcs[0].Instrs = {U0Instr::unary(U0Op::Mov, 1, 0),
                          U0Instr::unary(U0Op::Mov, 1, 0)};
  EXPECT_NE(verifyU0(Prog).find("second definition"), std::string::npos);
  // Undefined output.
  Prog.Funcs[0].Instrs.clear();
  EXPECT_NE(verifyU0(Prog).find("undefined output"), std::string::npos);
  // Well-formed after fixing.
  Prog.Funcs[0].Instrs = {U0Instr::unary(U0Op::Not, 1, 0)};
  EXPECT_EQ(verifyU0(Prog), "");
  EXPECT_TRUE(verifyConstantTime(Prog));
}

} // namespace
