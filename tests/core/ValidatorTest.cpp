//===- ValidatorTest.cpp - Translation validation tests -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for validateTransformation (the BDD proof tier, the random
// differential tier and the reduced-model skip paths), plus the
// end-to-end fault-injection story: a semantics-changing corruption
// smuggled past the structural verifier by DebugMiscompilePass must be
// caught by the validator, demote the compile to -O0 with a structured
// remark and telemetry counters, and still serve bytes identical to a
// clean -O0 compile.
//
//===----------------------------------------------------------------------===//

#include "core/Validator.h"

#include "core/Compiler.h"
#include "runtime/KernelRunner.h"
#include "support/Diagnostics.h"
#include "support/Remarks.h"
#include "support/Telemetry.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace usuba;

namespace {

U0Function func(unsigned NumInputs, unsigned NumRegs,
                std::vector<unsigned> Outputs) {
  U0Function F;
  F.Name = "t";
  F.NumInputs = NumInputs;
  F.NumRegs = NumRegs;
  F.Outputs = std::move(Outputs);
  return F;
}

U0Program wrap(U0Function F, Dir Direction = Dir::Vert, unsigned MBits = 16) {
  U0Program P;
  P.Direction = Direction;
  P.MBits = MBits;
  P.Target = &archAVX2();
  P.Funcs.push_back(std::move(F));
  return P;
}

TEST(Validator, ProvesIdenticalPrograms) {
  U0Function F = func(2, 4, {2, 3});
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::And, 3, 2, 0));
  U0Program Before = wrap(F);
  U0Program After = wrap(std::move(F));
  ValidationOutcome R = validateTransformation(Before, After, 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Proven) << R.Detail;
  EXPECT_GT(R.BddNodes, 0u);
}

TEST(Validator, ProvesEquivalentRewrites) {
  // Before: y = ~a & b (via Not + And). After: the fused Andn — plus a
  // dead extra instruction, the way fuse-andn leaves the code before dce.
  U0Function B = func(2, 4, {3});
  B.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0));
  B.Instrs.push_back(U0Instr::binary(U0Op::And, 3, 2, 1));
  U0Function A = func(2, 4, {3});
  A.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0));
  A.Instrs.push_back(U0Instr::binary(U0Op::Andn, 3, 0, 1));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Proven) << R.Detail;
}

TEST(Validator, ProvesRotateShiftDecomposition) {
  // x <<< r == (x << r) | (x >> (m - r)) for 0 < r < m.
  const unsigned M = 16, R = 5;
  U0Function B = func(1, 2, {1});
  B.Instrs.push_back(U0Instr::shift(U0Op::Lrotate, 1, 0, R));
  U0Function A = func(1, 4, {3});
  A.Instrs.push_back(U0Instr::shift(U0Op::Lshift, 1, 0, R));
  A.Instrs.push_back(U0Instr::shift(U0Op::Rshift, 2, 0, M - R));
  A.Instrs.push_back(U0Instr::binary(U0Op::Or, 3, 1, 2));
  ValidationOutcome Out = validateTransformation(
      wrap(std::move(B), Dir::Vert, M), wrap(std::move(A), Dir::Vert, M),
      1 << 20);
  EXPECT_EQ(Out.K, ValidationOutcome::Kind::Proven) << Out.Detail;
}

TEST(Validator, RefutesOpcodeFlip) {
  // The exact corruption DebugMiscompilePass injects: one Xor became Or.
  U0Function B = func(2, 3, {2});
  B.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  U0Function A = func(2, 3, {2});
  A.Instrs.push_back(U0Instr::binary(U0Op::Or, 2, 0, 1));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Mismatch);
  EXPECT_NE(R.Detail.find("output 0"), std::string::npos) << R.Detail;
}

TEST(Validator, AdditionConesReachTheProofTier) {
  // 2 inputs x 16 bits = 32 input bits: ripple carries are linear under
  // the interleaved variable order, so Add cones use the general cap
  // (512) and get a real proof. a + a == a << 1 must be *Proven*, not
  // merely checked on random vectors.
  U0Function B = func(1, 2, {1});
  B.Instrs.push_back(U0Instr::binary(U0Op::Add, 1, 0, 0));
  U0Function A = func(1, 2, {1});
  A.Instrs.push_back(U0Instr::shift(U0Op::Lshift, 1, 0, 1));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Proven) << R.Detail;
  EXPECT_GT(R.BddNodes, 0u);
}

TEST(Validator, WideAdditionConesStayLinearUnderInterleavedOrder) {
  // The regression the interleaved order exists for: a full 32-bit
  // adder cone (2 inputs x 32 bits = 64 input bits) must be Proven
  // within a modest node budget. Under an input-major order the last
  // carry would need ~2^32 nodes and fall back to CheckedRandom.
  U0Function B = func(2, 3, {2});
  B.Instrs.push_back(U0Instr::binary(U0Op::Add, 2, 0, 1));
  U0Function A = func(2, 3, {2});
  A.Instrs.push_back(U0Instr::binary(U0Op::Add, 2, 1, 0));
  ValidationOutcome R = validateTransformation(
      wrap(std::move(B), Dir::Vert, 32), wrap(std::move(A), Dir::Vert, 32),
      1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Proven) << R.Detail;
  EXPECT_GT(R.BddNodes, 0u);
}

TEST(Validator, MulConesSkipStraightToRandomTier) {
  // Multiplication's middle bits are exponential under *every* variable
  // order (Bryant 1986): 32 input bits is over the Mul cap (24), so the
  // proof tier must not even start. a * a is equivalent to itself.
  U0Function B = func(2, 3, {2});
  B.Instrs.push_back(U0Instr::binary(U0Op::Mul, 2, 0, 1));
  U0Function A = func(2, 3, {2});
  A.Instrs.push_back(U0Instr::binary(U0Op::Mul, 2, 1, 0));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::CheckedRandom) << R.Detail;
  EXPECT_EQ(R.BddNodes, 0u); // the proof tier never started
  EXPECT_NE(R.Detail.find("multiplication"), std::string::npos) << R.Detail;
  EXPECT_GE(R.RandomVectors, 64u);
}

TEST(Validator, RandomTierCatchesArithMiscompile) {
  // a * b vs a + b: the Mul cap routes this to the differential tier
  // alone, which must still catch the mismatch.
  U0Function B = func(2, 3, {2});
  B.Instrs.push_back(U0Instr::binary(U0Op::Mul, 2, 0, 1));
  U0Function A = func(2, 3, {2});
  A.Instrs.push_back(U0Instr::binary(U0Op::Add, 2, 0, 1));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Mismatch);
  EXPECT_NE(R.Detail.find("differential tier"), std::string::npos)
      << R.Detail;
}

TEST(Validator, HorizontalShuffleModel) {
  // Shuffling twice by a 4-cycle equals shuffling once by its square.
  U0Function B = func(1, 3, {2});
  B.Instrs.push_back(U0Instr::shuffle(1, 0, {1, 2, 3, 0}));
  B.Instrs.push_back(U0Instr::shuffle(2, 1, {1, 2, 3, 0}));
  U0Function A = func(1, 2, {1});
  A.Instrs.push_back(U0Instr::shuffle(1, 0, {2, 3, 0, 1}));
  ValidationOutcome R = validateTransformation(
      wrap(std::move(B), Dir::Horiz, 4), wrap(std::move(A), Dir::Horiz, 4),
      1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Proven) << R.Detail;

  // And a wrong pattern is refuted.
  U0Function B2 = func(1, 2, {1});
  B2.Instrs.push_back(U0Instr::shuffle(1, 0, {1, 2, 3, 0}));
  U0Function A2 = func(1, 2, {1});
  A2.Instrs.push_back(U0Instr::shuffle(1, 0, {3, 2, 1, 0}));
  ValidationOutcome R2 = validateTransformation(
      wrap(std::move(B2), Dir::Horiz, 4), wrap(std::move(A2), Dir::Horiz, 4),
      1 << 20);
  EXPECT_EQ(R2.K, ValidationOutcome::Kind::Mismatch);
}

TEST(Validator, SkipsWhenEntryInterfaceChanges) {
  // Interleaving doubles the entry registers; output-cone comparison has
  // nothing to say and must report Skipped, not a false mismatch.
  U0Function B = func(1, 2, {1});
  B.Instrs.push_back(U0Instr::unary(U0Op::Not, 1, 0));
  U0Function A = func(2, 4, {2, 3});
  A.Instrs.push_back(U0Instr::unary(U0Op::Not, 2, 0));
  A.Instrs.push_back(U0Instr::unary(U0Op::Not, 3, 1));
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 1 << 20);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::Skipped);
  EXPECT_NE(R.Detail.find("interface"), std::string::npos) << R.Detail;
}

TEST(Validator, BudgetExhaustionFallsBackToRandom) {
  // A 3-node budget cannot even hold the input variables; the proof tier
  // trips and the differential tier takes over.
  U0Function B = func(2, 3, {2});
  B.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  U0Function A = B;
  ValidationOutcome R =
      validateTransformation(wrap(std::move(B)), wrap(std::move(A)), 3);
  EXPECT_EQ(R.K, ValidationOutcome::Kind::CheckedRandom) << R.Detail;
  EXPECT_NE(R.Detail.find("budget"), std::string::npos) << R.Detail;
}

//===----------------------------------------------------------------------===//
// End-to-end fault injection through the compiler
//===----------------------------------------------------------------------===//

/// Small enough (32 input bits, no arithmetic) that the deterministic
/// proof tier — not just the random one — sees every injected flip.
const char *FaultSource = R"(node F (x:u16x2) returns (y:u16x2)
vars t0:u16, t1:u16
let
  t0 = (x[0] ^ x[1]);
  t1 = (t0 & x[0]);
  y = (t0, t1)
tel
)";

CompileOptions faultOptions(bool Validate, const char *Miscompile,
                            bool MidEnd) {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archAVX2();
  Options.ValidatePasses = Validate;
  Options.DebugMiscompilePass = Miscompile;
  Options.CopyProp = Options.ConstantFold = Options.Cse = Options.Dce =
      MidEnd;
  return Options;
}

std::vector<uint64_t> runKernel(CompiledKernel Kernel, uint64_t Seed) {
  KernelRunner Runner(std::move(Kernel));
  std::mt19937_64 Rng(Seed);
  std::vector<std::vector<uint64_t>> Atoms;
  for (unsigned Len : Runner.paramLens()) {
    std::vector<uint64_t> Param(size_t{Len} * Runner.blocksPerCall());
    for (uint64_t &A : Param)
      A = Rng() & 0xFFFF;
    Atoms.push_back(std::move(Param));
  }
  std::vector<KernelRunner::ParamData> Params;
  for (const std::vector<uint64_t> &Param : Atoms)
    Params.push_back({/*Broadcast=*/false, Param.data(), 0});
  std::vector<uint64_t> Out(size_t{Runner.outputAtomsPerBlock()} *
                            Runner.blocksPerCall());
  Runner.runBatch(Params, Out.data());
  return Out;
}

TEST(ValidatorEndToEnd, InjectedMiscompileDemotesToO0) {
  RemarkEngine &Remarks = RemarkEngine::instance();
  Telemetry &Tel = Telemetry::instance();
  const bool RemarksWere = Remarks.enabled();
  const bool TelWas = Tel.enabled();
  Remarks.setEnabled(true);
  Tel.setEnabled(true);
  Tel.reset();

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(FaultSource, faultOptions(true, "cse", true), Diags);
  Remarks.setEnabled(RemarksWere);
  ASSERT_TRUE(Kernel) << Diags.str();

  // The corrupted pass and the demotion marker are both on record.
  const std::vector<std::string> &Skipped = Kernel->SkippedPasses;
  EXPECT_NE(std::find(Skipped.begin(), Skipped.end(), "cse"), Skipped.end());
  EXPECT_NE(std::find(Skipped.begin(), Skipped.end(), "demote-to-O0"),
            Skipped.end());

  // The cse PassStat was not kept.
  auto Stat = std::find_if(
      Kernel->PassStats.begin(), Kernel->PassStats.end(),
      [](const PassStat &S) { return S.Name == "cse"; });
  ASSERT_NE(Stat, Kernel->PassStats.end());
  EXPECT_FALSE(Stat->Kept);

  // Structured remarks: the failed validation and the demotion verdict.
  auto HasRemark = [&](const char *Pass, const char *Name) {
    return std::any_of(Kernel->Remarks.begin(), Kernel->Remarks.end(),
                       [&](const Remark &R) {
                         return R.Pass == Pass && R.Name == Name;
                       });
  };
  EXPECT_TRUE(HasRemark("cse", "ValidationFailed"));
  EXPECT_TRUE(HasRemark("validator", "DemotedToO0"));

  // Telemetry counters fired.
  EXPECT_GE(Tel.counter("usubac.validate.mismatch"), 1u);
  EXPECT_GE(Tel.counter("usubac.validate.demoted"), 1u);
  Tel.setEnabled(TelWas);

  // The demoted kernel still serves bytes identical to a clean -O0
  // compile — graceful demotion, not graceful corruption.
  DiagnosticEngine RefDiags;
  std::optional<CompiledKernel> Ref =
      compileUsuba(FaultSource, faultOptions(false, nullptr, false), RefDiags);
  ASSERT_TRUE(Ref) << RefDiags.str();
  EXPECT_TRUE(Ref->SkippedPasses.empty());
  EXPECT_EQ(runKernel(std::move(*Kernel), 0xFA57),
            runKernel(std::move(*Ref), 0xFA57));
}

TEST(ValidatorEndToEnd, CleanValidatedCompileKeepsEveryPass) {
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(FaultSource, faultOptions(true, nullptr, true), Diags);
  ASSERT_TRUE(Kernel) << Diags.str();
  EXPECT_TRUE(Kernel->SkippedPasses.empty());
  // And its bytes match -O0 too (the validator changes nothing).
  DiagnosticEngine RefDiags;
  std::optional<CompiledKernel> Ref =
      compileUsuba(FaultSource, faultOptions(false, nullptr, false), RefDiags);
  ASSERT_TRUE(Ref) << RefDiags.str();
  EXPECT_EQ(runKernel(std::move(*Kernel), 0xC1EA),
            runKernel(std::move(*Ref), 0xC1EA));
}

TEST(ValidatorEndToEnd, MiscompileWithoutValidationGoesUnnoticed) {
  // The control: the same corruption with validation off sails through
  // the structural verifier — which is exactly why the validator (and
  // the differential fuzzer) exist.
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(FaultSource, faultOptions(false, "cse", true), Diags);
  ASSERT_TRUE(Kernel) << Diags.str();
  const std::vector<std::string> &Skipped = Kernel->SkippedPasses;
  EXPECT_EQ(std::find(Skipped.begin(), Skipped.end(), "demote-to-O0"),
            Skipped.end());
  DiagnosticEngine RefDiags;
  std::optional<CompiledKernel> Ref =
      compileUsuba(FaultSource, faultOptions(false, nullptr, false), RefDiags);
  ASSERT_TRUE(Ref) << RefDiags.str();
  EXPECT_NE(runKernel(std::move(*Kernel), 0xFA57),
            runKernel(std::move(*Ref), 0xFA57));
}

} // namespace
