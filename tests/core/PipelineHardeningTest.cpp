//===- PipelineHardeningTest.cpp - Checkpoints, budgets and ICEs ----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness properties of the hardened pipeline: a back-end pass that
/// corrupts the IR or raises an ICE is rolled back (the kernel still
/// compiles, with identical semantics and a warning); resource budgets
/// turn hostile inputs into diagnostics; the ICE channel itself stays
/// armed in every build type.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace usuba;

namespace {

CompileOptions rectangleOptions() {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archGP64();
  return Options;
}

/// Runs \p Kernel on deterministic pseudo-random inputs and returns the
/// output register words — two kernels compiled from the same source must
/// agree, whatever optimizations were kept or rolled back.
std::vector<uint64_t> runOnFixedInputs(const CompiledKernel &Kernel,
                                       uint64_t Seed) {
  Interpreter Interp(Kernel.Prog);
  const unsigned W = Interp.widthWords();
  std::mt19937_64 Rng(Seed);
  std::vector<SimdReg> In(Interp.numInputs()), Out(Interp.numOutputs());
  for (SimdReg &R : In)
    for (unsigned J = 0; J < W; ++J)
      R.Words[J] = Rng();
  Interp.run(In.data(), Out.data());
  std::vector<uint64_t> Words;
  for (const SimdReg &R : Out)
    for (unsigned J = 0; J < W; ++J)
      Words.push_back(R.Words[J]);
  return Words;
}

bool skippedPass(const CompiledKernel &Kernel, const std::string &Name) {
  return std::find(Kernel.SkippedPasses.begin(), Kernel.SkippedPasses.end(),
                   Name) != Kernel.SkippedPasses.end();
}

bool hasWarningMentioning(const DiagnosticEngine &Diags,
                          const std::string &Needle) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Severity == DiagSeverity::Warning &&
        D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(InternalErrors, IceThrowsStructuredException) {
  try {
    USUBA_ICE("invariant X violated");
    FAIL() << "USUBA_ICE returned";
  } catch (const InternalCompilerError &E) {
    EXPECT_NE(E.str().find("internal compiler error"), std::string::npos);
    EXPECT_NE(E.str().find("invariant X violated"), std::string::npos);
    EXPECT_NE(E.str().find("PipelineHardeningTest"), std::string::npos);
    EXPECT_GT(E.Line, 0u);
  }
}

TEST(InternalErrors, IceCheckPassesAndFails) {
  EXPECT_NO_THROW(USUBA_ICE_CHECK(1 + 1 == 2, "arithmetic works"));
  EXPECT_THROW(USUBA_ICE_CHECK(false, "deliberately false"),
               InternalCompilerError);
}

TEST(PassCheckpoints, BrokenPassIsRolledBack) {
  // The test hook corrupts the IR right after schedule-mslice runs; the
  // checkpoint must detect the ill-formed result, restore the snapshot
  // and keep compiling. This works in Release builds too — the whole
  // point of the ICE/verify channel over assert().
  DiagnosticEngine CleanDiags;
  std::optional<CompiledKernel> Clean =
      compileUsuba(rectangleSource(), rectangleOptions(), CleanDiags);
  ASSERT_TRUE(Clean.has_value()) << CleanDiags.str();
  EXPECT_TRUE(Clean->SkippedPasses.empty());

  CompileOptions Options = rectangleOptions();
  Options.DebugBreakPass = "schedule-mslice";
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(skippedPass(*Kernel, "schedule-mslice"));
  EXPECT_TRUE(hasWarningMentioning(Diags, "schedule-mslice"));
  EXPECT_TRUE(verifyU0(Kernel->Prog).empty());

  EXPECT_EQ(runOnFixedInputs(*Kernel, 0xC0FFEE),
            runOnFixedInputs(*Clean, 0xC0FFEE));
}

TEST(PassCheckpoints, IceInPassIsRolledBack) {
  DiagnosticEngine CleanDiags;
  std::optional<CompiledKernel> Clean =
      compileUsuba(rectangleSource(), rectangleOptions(), CleanDiags);
  ASSERT_TRUE(Clean.has_value()) << CleanDiags.str();

  CompileOptions Options = rectangleOptions();
  Options.DebugIcePass = "cse";
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(skippedPass(*Kernel, "cse"));
  EXPECT_TRUE(hasWarningMentioning(Diags, "internal compiler error"));

  EXPECT_EQ(runOnFixedInputs(*Kernel, 0xBEEF), runOnFixedInputs(*Clean, 0xBEEF));
}

TEST(ResourceBudgets, UnrollBudgetDiagnosesInsteadOfExploding) {
  CompileOptions Options = rectangleOptions();
  Options.Budgets.MaxUnrolledEquations = 4; // Rectangle's forall needs 25
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  EXPECT_FALSE(Kernel.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unrolling budget"), std::string::npos)
      << Diags.str();
}

TEST(ResourceBudgets, InlineBudgetSkipsPassButStaysCorrect) {
  DiagnosticEngine CleanDiags;
  std::optional<CompiledKernel> Clean =
      compileUsuba(rectangleSource(), rectangleOptions(), CleanDiags);
  ASSERT_TRUE(Clean.has_value()) << CleanDiags.str();

  CompileOptions Options = rectangleOptions();
  Options.Budgets.MaxInstrs = 10; // far below Rectangle's inlined size
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(skippedPass(*Kernel, "inline"));
  EXPECT_TRUE(hasWarningMentioning(Diags, "instruction budget"));
  // The program keeps its calls; the interpreter executes them directly.
  EXPECT_GT(Kernel->Prog.Funcs.size(), 1u);
  EXPECT_EQ(runOnFixedInputs(*Kernel, 0xABBA), runOnFixedInputs(*Clean, 0xABBA));
}

TEST(ResourceBudgets, BddBudgetDiagnosesHostileTable) {
  // A table absent from the known-circuit database, so elaboration must
  // synthesize — and give up against a 1-node budget.
  static const char *Source = R"(
table S (in:v4) returns (out:v4) {
  1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14
}
node F (x:v4) returns (y:v4) let y = S(x) tel
)";
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archGP64();
  Options.Budgets.MaxBddNodes = 1;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel = compileUsuba(Source, Options, Diags);
  EXPECT_FALSE(Kernel.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("BDD node budget"), std::string::npos)
      << Diags.str();

  // The same table compiles fine under the default budget.
  CompileOptions Relaxed;
  Relaxed.Direction = Dir::Vert;
  Relaxed.WordBits = 16;
  Relaxed.Target = &archGP64();
  DiagnosticEngine RelaxedDiags;
  EXPECT_TRUE(compileUsuba(Source, Relaxed, RelaxedDiags).has_value())
      << RelaxedDiags.str();
}

TEST(ResourceBudgets, DefaultBudgetsDoNotPerturbRealCiphers) {
  // The bundled ciphers must compile untouched under the default
  // budgets: no skipped passes, no warnings.
  struct Case {
    const char *Name;
    const std::string &(*Source)();
    Dir Direction;
    unsigned WordBits;
    const Arch *Target;
  };
  const Case Cases[] = {
      {"rectangle", rectangleSource, Dir::Vert, 16, &archGP64()},
      {"chacha20", chacha20Source, Dir::Vert, 32, &archGP64()},
      {"serpent", serpentSource, Dir::Vert, 32, &archGP64()},
      {"des", desSource, Dir::Vert, 1, &archGP64()},
      {"aes", aesSource, Dir::Horiz, 16, &archSSE()},
  };
  for (const Case &C : Cases) {
    CompileOptions Options;
    Options.Direction = C.Direction;
    Options.WordBits = C.WordBits;
    Options.Target = C.Target;
    DiagnosticEngine Diags;
    std::optional<CompiledKernel> Kernel =
        compileUsuba(C.Source(), Options, Diags);
    ASSERT_TRUE(Kernel.has_value()) << C.Name << ": " << Diags.str();
    EXPECT_TRUE(Kernel->SkippedPasses.empty()) << C.Name;
  }
}

} // namespace
