//===- SimdRegTest.cpp - SIMD simulator primitive tests -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive-by-element validation of the SWAR formulas against scalar
/// models: every packed operation applied to random registers must equal
/// the per-element scalar computation.
///
//===----------------------------------------------------------------------===//

#include "interp/SimdReg.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

struct ElemCase {
  unsigned Words; ///< register width in 64-bit words
  unsigned MBits;
};

class PackedOps : public ::testing::TestWithParam<ElemCase> {
protected:
  void SetUp() override {
    std::mt19937_64 Rng(0xE1e000 + GetParam().MBits * GetParam().Words);
    for (unsigned I = 0; I < 8; ++I) {
      A.Words[I] = Rng();
      B.Words[I] = Rng();
    }
  }

  uint64_t elem(const SimdReg &R, unsigned E) const {
    return R.field(E * GetParam().MBits, GetParam().MBits);
  }
  unsigned numElems() const {
    return GetParam().Words * 64 / GetParam().MBits;
  }

  SimdReg A, B, D;
};

TEST_P(PackedOps, AddMatchesScalar) {
  auto [W, M] = GetParam();
  simd::addElems(D, A, B, W, M);
  for (unsigned E = 0; E < numElems(); ++E)
    EXPECT_EQ(elem(D, E), (elem(A, E) + elem(B, E)) & lowBitMask(M))
        << "element " << E;
}

TEST_P(PackedOps, SubMatchesScalar) {
  auto [W, M] = GetParam();
  simd::subElems(D, A, B, W, M);
  for (unsigned E = 0; E < numElems(); ++E)
    EXPECT_EQ(elem(D, E), (elem(A, E) - elem(B, E)) & lowBitMask(M))
        << "element " << E;
}

TEST_P(PackedOps, MulMatchesScalar) {
  auto [W, M] = GetParam();
  simd::mulElems(D, A, B, W, M);
  for (unsigned E = 0; E < numElems(); ++E)
    EXPECT_EQ(elem(D, E), (elem(A, E) * elem(B, E)) & lowBitMask(M))
        << "element " << E;
}

TEST_P(PackedOps, ShiftsMatchScalar) {
  auto [W, M] = GetParam();
  for (unsigned Amount = 0; Amount <= M; ++Amount) {
    simd::shlElems(D, A, Amount, W, M);
    for (unsigned E = 0; E < numElems(); ++E)
      EXPECT_EQ(elem(D, E),
                Amount >= M ? 0
                            : (elem(A, E) << Amount) & lowBitMask(M))
          << "shl " << Amount << " elem " << E;
    simd::shrElems(D, A, Amount, W, M);
    for (unsigned E = 0; E < numElems(); ++E)
      EXPECT_EQ(elem(D, E), Amount >= M ? 0 : elem(A, E) >> Amount)
          << "shr " << Amount << " elem " << E;
  }
}

TEST_P(PackedOps, RotationsMatchScalar) {
  auto [W, M] = GetParam();
  for (unsigned Amount = 0; Amount < 2 * M; Amount += 3) {
    simd::rotlElems(D, A, Amount, W, M);
    for (unsigned E = 0; E < numElems(); ++E)
      EXPECT_EQ(elem(D, E), rotateLeft(elem(A, E), Amount, M))
          << "rotl " << Amount << " elem " << E;
    simd::rotrElems(D, A, Amount, W, M);
    for (unsigned E = 0; E < numElems(); ++E)
      EXPECT_EQ(elem(D, E), rotateRight(elem(A, E), Amount, M))
          << "rotr " << Amount << " elem " << E;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedOps,
    ::testing::Values(ElemCase{1, 8}, ElemCase{1, 16}, ElemCase{1, 32},
                      ElemCase{1, 64}, ElemCase{2, 16}, ElemCase{4, 32},
                      ElemCase{8, 8}, ElemCase{8, 64}),
    [](const ::testing::TestParamInfo<ElemCase> &Info) {
      return "w" + std::to_string(Info.param.Words) + "m" +
             std::to_string(Info.param.MBits);
    });

TEST(Shuffle, PermutesGroups) {
  // 4 positions of 32 bits each on a 128-bit register (m = 4, horizontal).
  SimdReg A{}, D{};
  A.Words[0] = 0x1111111122222222ull;
  A.Words[1] = 0x3333333344444444ull;
  const uint8_t Pattern[4] = {3, 2, 0xFF, 0};
  simd::shuffle(D, A, Pattern, /*MBits=*/4, /*W=*/2);
  EXPECT_EQ(D.field(0, 32), 0x33333333u);  // position 0 <- position 3
  EXPECT_EQ(D.field(32, 32), 0x44444444u); // position 1 <- position 2
  EXPECT_EQ(D.field(64, 32), 0u);          // zero fill
  EXPECT_EQ(D.field(96, 32), 0x22222222u); // position 3 <- position 0
}

TEST(Shuffle, IdentityAndWordGroups) {
  SimdReg A{}, D{};
  std::mt19937_64 Rng(5);
  for (unsigned I = 0; I < 8; ++I)
    A.Words[I] = Rng();
  // m = 8 on 512 bits: 64-bit groups, whole-word moves.
  uint8_t Identity[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  simd::shuffle(D, A, Identity, 8, 8);
  EXPECT_EQ(D, A);
  uint8_t Reverse[8] = {7, 6, 5, 4, 3, 2, 1, 0};
  simd::shuffle(D, A, Reverse, 8, 8);
  for (unsigned I = 0; I < 8; ++I)
    EXPECT_EQ(D.Words[I], A.Words[7 - I]);
}

TEST(Broadcast, VerticalFillsEveryElement) {
  SimdReg D;
  simd::broadcastVertical(D, 0xAB, 4, 8);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(D.Words[I], 0xABABABABABABABABull);
  simd::broadcastVertical(D, 1, 2, 1);
  EXPECT_EQ(D.Words[0], ~uint64_t{0});
  EXPECT_EQ(D.Words[1], ~uint64_t{0});
}

TEST(Broadcast, HorizontalSpreadsAtomBits) {
  // m = 4 on 128 bits: positions of 32 bits; position j carries bit
  // (3 - j) of the immediate.
  SimdReg D;
  simd::broadcastHorizontal(D, 0b1010, 2, 4);
  EXPECT_EQ(D.field(0, 32), 0xFFFFFFFFu);  // position 0 = MSB = 1
  EXPECT_EQ(D.field(32, 32), 0u);          // bit 2 = 0
  EXPECT_EQ(D.field(64, 32), 0xFFFFFFFFu); // bit 1 = 1
  EXPECT_EQ(D.field(96, 32), 0u);          // bit 0 = 0
}

TEST(SimdReg, BranchlessSetBit) {
  SimdReg R{};
  R.setBit(7, 1);
  R.setBit(64, 1);
  EXPECT_EQ(R.Words[0], 0x80u);
  EXPECT_EQ(R.Words[1], 0x1u);
  R.setBit(7, 0);
  EXPECT_EQ(R.Words[0], 0u);
  EXPECT_EQ(R.bit(64), 1u);
}

} // namespace
