//===- InterpreterTest.cpp - Usuba0 interpreter tests ---------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace usuba;

namespace {

/// Builds a one-function program over the given target/atom size.
U0Program makeProgram(const Arch &Target, unsigned MBits, Dir Direction,
                      U0Function F) {
  U0Program Prog;
  Prog.Target = &Target;
  Prog.MBits = MBits;
  Prog.Direction = Direction;
  Prog.Funcs.push_back(std::move(F));
  EXPECT_EQ(verifyU0(Prog), "");
  return Prog;
}

TEST(Interpreter, LogicAndArith) {
  U0Function F;
  F.Name = "f";
  F.NumRegs = 5;
  F.NumInputs = 2;
  F.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Add, 3, 0, 1));
  F.Instrs.push_back(U0Instr::binary(U0Op::Andn, 4, 0, 1));
  F.Outputs = {2, 3, 4};
  U0Program Prog = makeProgram(archSSE(), 16, Dir::Vert, std::move(F));

  Interpreter Interp(Prog);
  SimdReg In[2], Out[3];
  In[0].Words = {0x1234ABCD00010002ull, 0xFFFF000012345678ull, 0, 0, 0,
                 0, 0, 0};
  In[1].Words = {0x00010002FFFF0001ull, 0x0001FFFF00010001ull, 0, 0, 0,
                 0, 0, 0};
  Interp.run(In, Out);
  EXPECT_EQ(Out[0].Words[0], In[0].Words[0] ^ In[1].Words[0]);
  // Element 0 of the Add: 0x0002 + 0x0001 (mod 2^16).
  EXPECT_EQ(Out[1].field(0, 16), 0x0003u);
  // Element 3: 0x1234 + 0x0001.
  EXPECT_EQ(Out[1].field(48, 16), 0x1235u);
  EXPECT_EQ(Out[2].Words[1], ~In[0].Words[1] & In[1].Words[1]);
}

TEST(Interpreter, ConstBroadcastPerDirection) {
  U0Function F;
  F.Name = "f";
  F.NumRegs = 2;
  F.NumInputs = 1;
  F.Instrs.push_back(U0Instr::constant(1, 0x8001));
  F.Outputs = {1};

  // Vertical: every 16-bit element holds the immediate.
  {
    U0Program Prog =
        makeProgram(archSSE(), 16, Dir::Vert, F);
    Interpreter Interp(Prog);
    SimdReg In, Out;
    Interp.run(&In, &Out);
    for (unsigned E = 0; E < 8; ++E)
      EXPECT_EQ(Out.field(E * 16, 16), 0x8001u);
  }
  // Horizontal: position j is all-ones when bit (15-j) of the immediate
  // is set — positions 0 (MSB) and 15 (LSB) here.
  {
    U0Program Prog =
        makeProgram(archSSE(), 16, Dir::Horiz, std::move(F));
    Interpreter Interp(Prog);
    SimdReg In, Out;
    Interp.run(&In, &Out);
    EXPECT_EQ(Out.field(0, 8), 0xFFu);
    EXPECT_EQ(Out.field(8, 8), 0x00u);
    EXPECT_EQ(Out.field(15 * 8, 8), 0xFFu);
  }
}

TEST(Interpreter, CallsExecuteCalleeFrames) {
  // g(a, b) = (a ^ b); f(x, y) = g(g(x, y), y).
  U0Program Prog;
  Prog.Target = &archGP64();
  Prog.MBits = 16;
  Prog.Direction = Dir::Vert;
  U0Function G;
  G.Name = "g";
  G.NumRegs = 3;
  G.NumInputs = 2;
  G.Instrs.push_back(U0Instr::binary(U0Op::Xor, 2, 0, 1));
  G.Outputs = {2};
  Prog.Funcs.push_back(std::move(G));
  U0Function F;
  F.Name = "f";
  F.NumRegs = 4;
  F.NumInputs = 2;
  F.Instrs.push_back(U0Instr::call(0, {2}, {0, 1}));
  F.Instrs.push_back(U0Instr::call(0, {3}, {2, 1}));
  F.Outputs = {3};
  Prog.Funcs.push_back(std::move(F));
  ASSERT_EQ(verifyU0(Prog), "");

  Interpreter Interp(Prog);
  SimdReg In[2], Out;
  In[0].Words[0] = 0xAAAA;
  In[1].Words[0] = 0x0F0F;
  Interp.run(In, &Out);
  EXPECT_EQ(Out.Words[0], (0xAAAAull ^ 0x0F0F) ^ 0x0F0F);
}

TEST(Interpreter, ShuffleWithZeroSentinel) {
  U0Function F;
  F.Name = "f";
  F.NumRegs = 2;
  F.NumInputs = 1;
  // 4 positions of 32 bits on SSE (m = 4, horizontal).
  F.Instrs.push_back(U0Instr::shuffle(1, 0, {1, 0xFF, 3, 2}));
  F.Outputs = {1};
  U0Program Prog = makeProgram(archSSE(), 4, Dir::Horiz, std::move(F));
  Interpreter Interp(Prog);
  SimdReg In, Out;
  In.Words = {0x2222222211111111ull, 0x4444444433333333ull, 0, 0,
              0, 0, 0, 0};
  Interp.run(&In, &Out);
  EXPECT_EQ(Out.field(0, 32), 0x22222222u);
  EXPECT_EQ(Out.field(32, 32), 0u);
  EXPECT_EQ(Out.field(64, 32), 0x44444444u);
  EXPECT_EQ(Out.field(96, 32), 0x33333333u);
}

TEST(Interpreter, WidthFollowsTarget) {
  U0Function F;
  F.Name = "f";
  F.NumRegs = 2;
  F.NumInputs = 1;
  F.Instrs.push_back(U0Instr::unary(U0Op::Not, 1, 0));
  F.Outputs = {1};
  {
    U0Program Prog = makeProgram(archGP64(), 1, Dir::Vert, F);
    Interpreter Interp(Prog);
    EXPECT_EQ(Interp.widthWords(), 1u);
    SimdReg In{}, Out;
    Interp.run(&In, &Out);
    EXPECT_EQ(Out.Words[0], ~uint64_t{0});
    EXPECT_EQ(Out.Words[1], 0u) << "bits beyond the register stay clear";
  }
  {
    U0Program Prog = makeProgram(archAVX512(), 1, Dir::Vert, std::move(F));
    Interpreter Interp(Prog);
    EXPECT_EQ(Interp.widthWords(), 8u);
  }
}

} // namespace
