//===- CipherServiceTest.cpp - multi-tenant coalescing service ------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The service's load-bearing promise is byte-identity: whatever the
// coalescer does — packing blocks from many sessions into one batch,
// splitting a span across batches, flushing partials on a deadline —
// every session's output must equal a direct single-stream UsubaCipher
// run with the same key/nonce/counter. These tests enforce that
// differentially, and pin the lifecycle semantics around it: rekey is
// an epoch bump onto a (possibly warm) shard, close waits for in-flight
// work, concurrent open/submit/close from many threads is safe, and
// multi-session traffic demonstrably fills batches better than
// flush-per-request single-session traffic.
//
//===----------------------------------------------------------------------===//

#include "service/CipherService.h"

#include "support/Telemetry.h"

#include "tests/TestSeed.h"
#include "types/Arch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <random>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

CipherConfig cfg(CipherId Id, SlicingMode Mode,
                 const Arch *Target = &archAVX2()) {
  CipherConfig Config;
  Config.Id = Id;
  Config.Slicing = Mode;
  Config.Target = Target;
  // The interpreter rung keeps these tests JIT-free and deterministic;
  // the engine underneath is the one the differential oracle trusts.
  Config.PreferNative = false;
  return Config;
}

std::vector<uint8_t> randomBytes(std::mt19937_64 &Rng, size_t N) {
  std::vector<uint8_t> Out(N);
  for (uint8_t &B : Out)
    B = static_cast<uint8_t>(Rng());
  return Out;
}

UsubaCipher compileOk(const CipherConfig &Config) {
  CipherResult Result = UsubaCipher::compile(Config);
  EXPECT_TRUE(Result.ok()) << Result.errorText();
  return std::move(Result).take();
}

UsubaCipher direct(const CipherConfig &Config, const std::vector<uint8_t> &Key) {
  UsubaCipher Cipher = compileOk(Config);
  Cipher.setKey(Key.data(), Key.size());
  return Cipher;
}

/// One simulated tenant stream: its own nonce and payload, checked
/// against a direct single-stream encryption of the same bytes.
struct Stream {
  std::vector<uint8_t> Nonce;
  uint64_t Counter = 0;
  std::vector<uint8_t> Data;     // What the service encrypts (in place).
  std::vector<uint8_t> Expected; // Direct-cipher ciphertext.
};

} // namespace

TEST(CipherService, CoalescedCtrMatchesDirectAcrossSessions) {
  const uint64_t Seed = testSeed(0x5e41ce01);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  struct Shape {
    CipherId Id;
    SlicingMode Mode;
    unsigned NonceLen;
  };
  const Shape Shapes[] = {
      {CipherId::Rectangle, SlicingMode::Vslice, 8},
      {CipherId::Des, SlicingMode::Bitslice, 8},
      {CipherId::Chacha20, SlicingMode::Vslice, 12},
  };
  for (const Shape &S : Shapes) {
    const CipherConfig Config = cfg(S.Id, S.Mode);

    ServiceConfig Svc;
    Svc.CoalesceOnly = true; // Everything must ride the coalescer.
    Svc.FlushDeadline = std::chrono::milliseconds(200);
    CipherService Service(Svc);

    // All sessions share one key, hence one shard, hence one batch.
    UsubaCipher Oracle = compileOk(Config);
    std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
    Oracle.setKey(Key.data(), Key.size());
    const unsigned BlockLen = Oracle.blockBytes();

    constexpr unsigned NumSessions = 6;
    std::vector<SessionId> Sids;
    std::vector<Stream> Streams(NumSessions);
    for (unsigned I = 0; I < NumSessions; ++I) {
      SessionResult R = Service.openSession(Config, Key.data(), Key.size());
      ASSERT_TRUE(R.ok()) << R.errorText();
      Sids.push_back(R.id());
      Stream &St = Streams[I];
      St.Nonce = randomBytes(Rng, S.NonceLen);
      St.Counter = Rng() % 1000;
      // Ragged lengths straddling block and batch boundaries.
      St.Data = randomBytes(Rng, 1 + (Rng() % (5 * BlockLen)));
      St.Expected = St.Data;
      Oracle.ctrXor(St.Expected.data(), St.Expected.size(), St.Nonce.data(),
                    St.Counter);
    }

    std::vector<std::future<void>> Futs;
    for (unsigned I = 0; I < NumSessions; ++I)
      Futs.push_back(Service.submitCtrXor(Sids[I], Streams[I].Data.data(),
                                          Streams[I].Data.size(),
                                          Streams[I].Nonce.data(),
                                          Streams[I].Counter));
    Service.flush();
    for (auto &F : Futs)
      F.get();

    for (unsigned I = 0; I < NumSessions; ++I)
      EXPECT_EQ(Streams[I].Data, Streams[I].Expected)
          << "session " << I << " cipher " << static_cast<int>(S.Id);

    const ServiceStats Stats = Service.stats();
    EXPECT_EQ(Stats.Requests, NumSessions);
    EXPECT_GE(Stats.CoalescedBatches, 1u);
    EXPECT_EQ(Stats.DirectBatches, 0u);
    for (SessionId Sid : Sids)
      Service.closeSession(Sid);
  }
}

TEST(CipherService, DirectPathMatchesDirectCipher) {
  const uint64_t Seed = testSeed(0x5e41ce02);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  CipherService Service; // Default config: direct path enabled.

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());
  const size_t BatchBytes =
      size_t{Oracle.blocksPerCall()} * Oracle.blockBytes();

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  // Three whole batches plus a ragged coalesced tail.
  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Data = randomBytes(Rng, 3 * BatchBytes + 13);
  std::vector<uint8_t> Expected = Data;
  Oracle.ctrXor(Expected.data(), Expected.size(), Nonce.data(), 7);

  std::future<void> Fut =
      Service.submitCtrXor(R.id(), Data.data(), Data.size(), Nonce.data(), 7);
  Service.flush();
  Fut.get();
  EXPECT_EQ(Data, Expected);

  const ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.DirectBatches, 3u);
  EXPECT_GE(Stats.CoalescedBatches, 1u);
  Service.closeSession(R.id());
}

TEST(CipherService, EcbEncryptDecryptMatchesDirect) {
  const uint64_t Seed = testSeed(0x5e41ce03);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  CipherService Service(Svc);

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());
  const unsigned BlockLen = Oracle.blockBytes();

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  const size_t NumBlocks = 7;
  std::vector<uint8_t> Plain = randomBytes(Rng, NumBlocks * BlockLen);
  std::vector<uint8_t> Expected(Plain.size());
  Oracle.ecbEncrypt(Plain.data(), Expected.data(), NumBlocks);

  std::vector<uint8_t> Enc(Plain.size());
  std::future<void> F1 =
      Service.submitEcbEncrypt(R.id(), Plain.data(), Enc.data(), NumBlocks);
  Service.flush();
  F1.get();
  EXPECT_EQ(Enc, Expected);

  // Decrypt through the inverse queue, in place (In == Out aliasing).
  std::vector<uint8_t> RoundTrip = Enc;
  std::future<void> F2 = Service.submitEcbDecrypt(R.id(), RoundTrip.data(),
                                                  RoundTrip.data(), NumBlocks);
  Service.flush();
  F2.get();
  EXPECT_EQ(RoundTrip, Plain);
  Service.closeSession(R.id());
}

TEST(CipherService, MixedCtrAndEcbShareOneForwardBatch) {
  const uint64_t Seed = testSeed(0x5e41ce04);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  CipherService Service(Svc);

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());
  const unsigned BlockLen = Oracle.blockBytes();

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Ctr = randomBytes(Rng, BlockLen);
  std::vector<uint8_t> CtrExpected = Ctr;
  Oracle.ctrXor(CtrExpected.data(), CtrExpected.size(), Nonce.data(), 3);

  std::vector<uint8_t> Plain = randomBytes(Rng, BlockLen);
  std::vector<uint8_t> EcbExpected(BlockLen);
  Oracle.ecbEncrypt(Plain.data(), EcbExpected.data(), 1);

  std::vector<uint8_t> EcbOut(BlockLen);
  std::future<void> F1 =
      Service.submitCtrXor(R.id(), Ctr.data(), Ctr.size(), Nonce.data(), 3);
  std::future<void> F2 =
      Service.submitEcbEncrypt(R.id(), Plain.data(), EcbOut.data(), 1);
  Service.flush();
  F1.get();
  F2.get();
  EXPECT_EQ(Ctr, CtrExpected);
  EXPECT_EQ(EcbOut, EcbExpected);
  // Both kinds ride the forward kernel, so one batch carried them both.
  EXPECT_EQ(Service.stats().CoalescedBatches, 1u);
  Service.closeSession(R.id());
}

TEST(CipherService, RekeyIsAnEpochBumpOntoAWarmShard) {
  const uint64_t Seed = testSeed(0x5e41ce05);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  Svc.FlushDeadline = std::chrono::milliseconds(200);
  CipherService Service(Svc);

  UsubaCipher OracleProbe = compileOk(Config);
  std::vector<uint8_t> Key1 = randomBytes(Rng, OracleProbe.keyBytes());
  std::vector<uint8_t> Key2 = randomBytes(Rng, OracleProbe.keyBytes());
  UsubaCipher Oracle1 = direct(Config, Key1);
  UsubaCipher Oracle2 = direct(Config, Key2);
  const unsigned BlockLen = Oracle1.blockBytes();

  SessionResult R = Service.openSession(Config, Key1.data(), Key1.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  // In-flight under the old key while the rekey lands: the queued span
  // keeps its key epoch.
  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Before = randomBytes(Rng, 2 * BlockLen + 3);
  std::vector<uint8_t> BeforeExpected = Before;
  Oracle1.ctrXor(BeforeExpected.data(), BeforeExpected.size(), Nonce.data(), 9);
  std::future<void> F1 = Service.submitCtrXor(R.id(), Before.data(),
                                              Before.size(), Nonce.data(), 9);

  Service.rekeySession(R.id(), Key2.data(), Key2.size());

  std::vector<uint8_t> After = randomBytes(Rng, 2 * BlockLen + 5);
  std::vector<uint8_t> AfterExpected = After;
  Oracle2.ctrXor(AfterExpected.data(), AfterExpected.size(), Nonce.data(), 9);
  std::future<void> F2 = Service.submitCtrXor(R.id(), After.data(),
                                              After.size(), Nonce.data(), 9);

  Service.flush();
  F1.get();
  F2.get();
  EXPECT_EQ(Before, BeforeExpected);
  EXPECT_EQ(After, AfterExpected);
  EXPECT_EQ(Service.stats().Shards, 2u);

  // Rekeying back to a previously seen key reuses its warm shard — no
  // third shard, no recompile.
  Service.rekeySession(R.id(), Key1.data(), Key1.size());
  std::vector<uint8_t> Again = randomBytes(Rng, BlockLen);
  std::vector<uint8_t> AgainExpected = Again;
  Oracle1.ctrXor(AgainExpected.data(), AgainExpected.size(), Nonce.data(), 42);
  std::future<void> F3 = Service.submitCtrXor(R.id(), Again.data(),
                                              Again.size(), Nonce.data(), 42);
  Service.flush();
  F3.get();
  EXPECT_EQ(Again, AgainExpected);
  EXPECT_EQ(Service.stats().Shards, 2u);
  Service.closeSession(R.id());
}

TEST(CipherService, DeadlineFlushCompletesPartialBatches) {
  const uint64_t Seed = testSeed(0x5e41ce06);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  Svc.FlushDeadline = std::chrono::milliseconds(2);
  CipherService Service(Svc);

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Data = randomBytes(Rng, 5); // Less than one block.
  std::vector<uint8_t> Expected = Data;
  Oracle.ctrXor(Expected.data(), Expected.size(), Nonce.data(), 0);

  // No flush() call: the age deadline alone must complete the request.
  Service.submitCtrXor(R.id(), Data.data(), Data.size(), Nonce.data(), 0)
      .get();
  EXPECT_EQ(Data, Expected);
  const ServiceStats Stats = Service.stats();
  EXPECT_GE(Stats.DeadlineFlushes, 1u);
  EXPECT_EQ(Stats.CoalescedBatches, Stats.DeadlineFlushes);
  Service.closeSession(R.id());
}

TEST(CipherService, MultiSessionTrafficFillsBatchesBetter) {
  const uint64_t Seed = testSeed(0x5e41ce07);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  // GP64 keeps blocksPerCall() host-independent (bitslice: 64 slots —
  // wide enough that per-request flushing visibly starves the batch).
  const CipherConfig Config =
      cfg(CipherId::Rectangle, SlicingMode::Bitslice, nullptr);
  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  const unsigned BlockLen = Oracle.blockBytes();
  const unsigned Batch = Oracle.blocksPerCall();

  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  Svc.FlushDeadline = std::chrono::milliseconds(200);

  // Baseline: one session whose single-block requests are flushed one
  // by one (an idle deadline between every arrival).
  double SingleFill = 0;
  {
    CipherService Service(Svc);
    SessionResult R = Service.openSession(Config, Key.data(), Key.size());
    ASSERT_TRUE(R.ok()) << R.errorText();
    for (unsigned I = 0; I < Batch; ++I) {
      std::vector<uint8_t> Data = randomBytes(Rng, BlockLen);
      std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
      std::future<void> F = Service.submitCtrXor(R.id(), Data.data(),
                                                 Data.size(), Nonce.data(), 0);
      Service.flush();
      F.get();
    }
    SingleFill = Service.stats().fillRatio();
    EXPECT_EQ(Service.stats().CoalescedBatches, Batch);
    Service.closeSession(R.id());
  }

  // Multi-session: the same traffic interleaved across sessions packs
  // into one full batch.
  double MultiFill = 0;
  {
    CipherService Service(Svc);
    std::vector<SessionId> Sids;
    std::vector<std::vector<uint8_t>> Buffers, Nonces;
    std::vector<std::future<void>> Futs;
    for (unsigned I = 0; I < Batch; ++I) {
      SessionResult R = Service.openSession(Config, Key.data(), Key.size());
      ASSERT_TRUE(R.ok()) << R.errorText();
      Sids.push_back(R.id());
      Buffers.push_back(randomBytes(Rng, BlockLen));
      Nonces.push_back(randomBytes(Rng, 8));
    }
    for (unsigned I = 0; I < Batch; ++I)
      Futs.push_back(Service.submitCtrXor(Sids[I], Buffers[I].data(),
                                          Buffers[I].size(),
                                          Nonces[I].data(), 0));
    Service.flush();
    for (auto &F : Futs)
      F.get();
    const ServiceStats Stats = Service.stats();
    MultiFill = Stats.fillRatio();
    EXPECT_EQ(Stats.CoalescedBatches, 1u);
    EXPECT_EQ(Stats.MultiSessionBatches, 1u);
    for (SessionId Sid : Sids)
      Service.closeSession(Sid);
  }

  EXPECT_DOUBLE_EQ(MultiFill, 1.0);
  EXPECT_GT(MultiFill, SingleFill);
}

TEST(CipherService, ConcurrentOpenSubmitCloseManyThreads) {
  const uint64_t Seed = testSeed(0x5e41ce08);
  SCOPED_TRACE(testSeedTrace(Seed));

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  // Shared key: all threads coalesce into one shard, maximizing
  // cross-thread batch mixing (the TSan-interesting case).
  std::mt19937_64 SetupRng(Seed);
  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(SetupRng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());
  const unsigned BlockLen = Oracle.blockBytes();

  ServiceConfig Svc;
  Svc.FlushDeadline = std::chrono::microseconds(300);
  CipherService Service(Svc);

  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 12;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      std::mt19937_64 Rng(Seed + 1 + T);
      for (unsigned Round = 0; Round < Rounds; ++Round) {
        SessionResult R = Service.openSession(Config, Key.data(), Key.size());
        if (!R.ok()) {
          ++Mismatches;
          return;
        }
        std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
        const uint64_t Counter = Rng() % 4096;
        std::vector<uint8_t> Data =
            randomBytes(Rng, 1 + (Rng() % (6 * BlockLen)));
        std::vector<uint8_t> Expected = Data;
        {
          static std::mutex OracleM; // The oracle cipher is not thread-safe.
          std::lock_guard<std::mutex> Lock(OracleM);
          Oracle.ctrXor(Expected.data(), Expected.size(), Nonce.data(),
                        Counter);
        }
        std::future<void> F = Service.submitCtrXor(
            R.id(), Data.data(), Data.size(), Nonce.data(), Counter);
        F.get(); // Deadline flushes push partials out.
        if (Data != Expected)
          ++Mismatches;
        Service.closeSession(R.id());
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(Service.stats().OpenSessions, 0u);
}

TEST(CipherService, SpecializedCtrDirectPathCrossesEpochs) {
  const uint64_t Seed = testSeed(0x5e41ce09);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  Config.SpecializeCtr = true;
  CipherService Service;

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  Oracle.setKey(Key.data(), Key.size());
  const size_t BatchBytes =
      size_t{Oracle.blocksPerCall()} * Oracle.blockBytes();

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  // A nonce whose counter base sits just below an epoch boundary (bits
  // 32..63 about to flip): the direct path must fall back off the
  // specialized clone exactly like a single-stream cipher does.
  std::vector<uint8_t> Nonce(8, 0);
  Nonce[3] = 0x01; // Base = 0x00000001'00000000 ...
  for (unsigned I = 4; I < 8; ++I)
    Nonce[I] = 0xff; // ... minus a handful of blocks.
  Nonce[7] = 0xfd;

  std::vector<uint8_t> Data = randomBytes(Rng, 2 * BatchBytes + 9);
  std::vector<uint8_t> Expected = Data;
  Oracle.ctrXor(Expected.data(), Expected.size(), Nonce.data(), 0);

  std::future<void> Fut =
      Service.submitCtrXor(R.id(), Data.data(), Data.size(), Nonce.data(), 0);
  Service.flush();
  Fut.get();
  EXPECT_EQ(Data, Expected);
  Service.closeSession(R.id());
}

TEST(CipherService, CallbackRunsBeforeFutureAndOncePerRequest) {
  const uint64_t Seed = testSeed(0x5e41ce0a);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  CipherService Service(Svc);

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  (void)Oracle;

  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  std::atomic<int> Calls{0};
  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Data = randomBytes(Rng, 5);
  std::future<void> Fut =
      Service.submitCtrXor(R.id(), Data.data(), Data.size(), Nonce.data(), 0,
                           [&] { ++Calls; });
  Service.flush();
  Fut.get();
  EXPECT_EQ(Calls.load(), 1);

  // Zero-length requests complete immediately, callback included.
  Calls = 0;
  Service.submitCtrXor(R.id(), nullptr, 0, Nonce.data(), 0, [&] { ++Calls; })
      .get();
  EXPECT_EQ(Calls.load(), 1);
  Service.closeSession(R.id());
}

TEST(CipherService, OpenSessionSurfacesStructuredDiagnostics) {
  // Bitsliced ChaCha20 is the canonical type error (arithmetic on
  // bit-polymorphic words): openSession must surface the compiler's
  // diagnostics, mirroring UsubaCipher::compile.
  CipherService Service;
  const CipherConfig Bad = cfg(CipherId::Chacha20, SlicingMode::Bitslice);
  uint8_t Key[32] = {};
  SessionResult R = Service.openSession(Bad, Key, sizeof(Key));
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.diagnostics().empty());
  EXPECT_NE(R.errorText().find("Arith"), std::string::npos) << R.errorText();

  // A wrong key length is rejected up front, not asserted downstream.
  const CipherConfig Good = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  SessionResult Short = Service.openSession(Good, Key, 3);
  EXPECT_FALSE(Short.ok());
  EXPECT_NE(Short.errorText().find("key length"), std::string::npos)
      << Short.errorText();
  EXPECT_EQ(Service.stats().OpenSessions, 0u);
}

namespace {

/// Restores the telemetry enabled flag and wipes recorded state so the
/// observability tests do not leak into (or inherit from) the rest of
/// the suite.
class ServiceTelemetryGuard {
public:
  ServiceTelemetryGuard() : WasEnabled(telemetryEnabled()) {
    Telemetry::instance().reset();
  }
  ~ServiceTelemetryGuard() {
    Telemetry::instance().setEnabled(WasEnabled);
    Telemetry::instance().reset();
  }

private:
  bool WasEnabled;
};

} // namespace

TEST(CipherService, StageHistogramsTrackRequestLifecycle) {
  const uint64_t Seed = testSeed(0x5e41ce0c);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  ServiceTelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  // Interval deltas against before-snapshots: the histograms are
  // process-lifetime, so other telemetry-enabled tests in this binary
  // must not bleed into the counts.
  Histogram &QueueH = T.histogramRef("service.queue_wait_ns");
  Histogram &CoalesceH = T.histogramRef("service.coalesce_wait_ns");
  Histogram &KernelH = T.histogramRef("service.kernel_ns");
  Histogram &CallbackH = T.histogramRef("service.callback_ns");
  const Histogram::Snapshot QueueBefore = QueueH.snapshot();
  const Histogram::Snapshot CoalesceBefore = CoalesceH.snapshot();
  const Histogram::Snapshot KernelBefore = KernelH.snapshot();
  const Histogram::Snapshot CallbackBefore = CallbackH.snapshot();

  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true; // Every request rides the coalescer.
  Svc.FlushDeadline = std::chrono::milliseconds(200);
  constexpr unsigned NumRequests = 5;
  {
    CipherService Service(Svc);
    UsubaCipher Oracle = compileOk(Config);
    std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
    const unsigned BlockLen = Oracle.blockBytes();

    SessionResult R = Service.openSession(Config, Key.data(), Key.size());
    ASSERT_TRUE(R.ok()) << R.errorText();
    EXPECT_EQ(T.gaugeRef("service.open_sessions").value(), 1);

    std::vector<std::vector<uint8_t>> Payloads;
    std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
    std::vector<std::future<void>> Futs;
    for (unsigned I = 0; I < NumRequests; ++I) {
      Payloads.push_back(randomBytes(Rng, BlockLen));
      Futs.push_back(Service.submitCtrXor(R.id(), Payloads.back().data(),
                                          Payloads.back().size(), Nonce.data(),
                                          I * 64));
    }
    Service.flush();
    for (auto &F : Futs)
      F.get();
    EXPECT_EQ(Service.stats().Requests, NumRequests);
    Service.closeSession(R.id());
    EXPECT_EQ(T.gaugeRef("service.open_sessions").value(), 0);
  }

  // Exactly one sample per request for queue wait (stamped when the
  // shard lock is acquired), coalesce wait (each request placed once —
  // single-span payloads) and callback; at least one kernel batch ran.
  Histogram::Snapshot QueueD = QueueH.snapshot();
  QueueD.subtract(QueueBefore);
  Histogram::Snapshot CoalesceD = CoalesceH.snapshot();
  CoalesceD.subtract(CoalesceBefore);
  Histogram::Snapshot KernelD = KernelH.snapshot();
  KernelD.subtract(KernelBefore);
  Histogram::Snapshot CallbackD = CallbackH.snapshot();
  CallbackD.subtract(CallbackBefore);
  EXPECT_EQ(QueueD.Count, NumRequests);
  EXPECT_EQ(CoalesceD.Count, NumRequests);
  EXPECT_EQ(CallbackD.Count, NumRequests);
  EXPECT_GE(KernelD.Count, 1u);
  // Durations are real: the coalesce wait of a deadline-free flush is
  // still nonzero (the blocks sat in the batch until flush()).
  EXPECT_GT(CoalesceD.Sum, 0u);
}

TEST(CipherService, SlowRequestThresholdEmitsStageBreakdown) {
  const uint64_t Seed = testSeed(0x5e41ce0d);
  SCOPED_TRACE(testSeedTrace(Seed));
  std::mt19937_64 Rng(Seed);

  ServiceTelemetryGuard Guard;
  Telemetry &T = Telemetry::instance();
  T.setEnabled(true);

  // A partial batch only dispatches when the flush timer fires, so with
  // a 10ms deadline and a 1ms threshold the request is guaranteed slow.
  const CipherConfig Config = cfg(CipherId::Rectangle, SlicingMode::Vslice);
  ServiceConfig Svc;
  Svc.CoalesceOnly = true;
  Svc.FlushDeadline = std::chrono::milliseconds(10);
  Svc.SlowRequestThreshold = std::chrono::milliseconds(1);
  CipherService Service(Svc);

  UsubaCipher Oracle = compileOk(Config);
  std::vector<uint8_t> Key = randomBytes(Rng, Oracle.keyBytes());
  (void)Oracle;
  SessionResult R = Service.openSession(Config, Key.data(), Key.size());
  ASSERT_TRUE(R.ok()) << R.errorText();

  std::vector<uint8_t> Nonce = randomBytes(Rng, 8);
  std::vector<uint8_t> Data = randomBytes(Rng, 16);
  // No flush(): completion rides the deadline timer.
  Service.submitCtrXor(R.id(), Data.data(), Data.size(), Nonce.data(), 0)
      .get();

  EXPECT_EQ(Service.stats().SlowRequests, 1u);
  EXPECT_EQ(T.counter("service.slow_requests"), 1u);

  // The annotated trace event carries the full stage breakdown.
  std::string Path = testing::TempDir() + "/usuba_service_slow_trace.json";
  ASSERT_TRUE(T.writeTrace(Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  std::remove(Path.c_str());
  EXPECT_NE(Trace.find("\"service.slow_request\""), std::string::npos);
  EXPECT_NE(Trace.find("\"total_us\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"queue_wait_us\""), std::string::npos);
  EXPECT_NE(Trace.find("\"coalesce_wait_us\""), std::string::npos);
  EXPECT_NE(Trace.find("\"kernel_us\""), std::string::npos);
  EXPECT_NE(Trace.find("\"callback_us\""), std::string::npos);

  Service.closeSession(R.id());
}
