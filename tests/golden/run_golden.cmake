# Runs usubac and compares its stdout byte-for-byte against a checked-in
# golden file. Invoked by ctest as:
#
#   cmake -DUSUBAC=<usubac> "-DARGS=<;-separated args>" -DGOLDEN=<file>
#         -P run_golden.cmake
#
# After an intentional output change (new emitter comment style, IR
# printer tweak, ...), regenerate the golden with:
#
#   build/examples/usubac <args> -o tests/golden/<file>
#
# and review the diff like any other source change.
if(NOT USUBAC OR NOT GOLDEN)
  message(FATAL_ERROR "run_golden.cmake needs -DUSUBAC= -DARGS= -DGOLDEN=")
endif()

execute_process(
  COMMAND "${USUBAC}" ${ARGS}
  OUTPUT_VARIABLE ACTUAL
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "usubac ${ARGS} exited ${RC}:\n${STDERR}")
endif()

file(READ "${GOLDEN}" WANT)
if(ACTUAL STREQUAL WANT)
  message(STATUS "golden OK: ${GOLDEN}")
  return()
endif()

get_filename_component(GOLDEN_NAME "${GOLDEN}" NAME)
set(ACTUAL_FILE "${CMAKE_CURRENT_BINARY_DIR}/${GOLDEN_NAME}.actual")
file(WRITE "${ACTUAL_FILE}" "${ACTUAL}")
find_program(DIFF_TOOL diff)
set(DIFF_TEXT "")
if(DIFF_TOOL)
  execute_process(
    COMMAND "${DIFF_TOOL}" -u "${GOLDEN}" "${ACTUAL_FILE}"
    OUTPUT_VARIABLE DIFF_TEXT)
  # Keep the failure message readable: first ~60 diff lines.
  string(REPLACE "\n" ";" DIFF_LINES "${DIFF_TEXT}")
  list(LENGTH DIFF_LINES DIFF_LEN)
  if(DIFF_LEN GREATER 60)
    list(SUBLIST DIFF_LINES 0 60 DIFF_LINES)
    list(APPEND DIFF_LINES "... (${DIFF_LEN} diff lines total)")
  endif()
  string(REPLACE ";" "\n" DIFF_TEXT "${DIFF_LINES}")
endif()
message(FATAL_ERROR
  "usubac output diverged from ${GOLDEN}\n"
  "actual output saved to ${ACTUAL_FILE}\n"
  "if the change is intentional, regenerate the golden (see header)\n"
  "${DIFF_TEXT}")
