//===- CorpusReplayTest.cpp - Checked-in fuzz corpus replay ---------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Replays every `.ua` reproducer under tests/fuzz/corpus/ through the
// full differential harness (optimized legs on every vector ISA vs the
// -O0 reference, deterministic inputs from the recorded seed). Corpus
// files are either hand-written regression shapes or minimized
// reproducers written by a failing campaign — once a differential is
// fixed, its reproducer is checked in here so it stays fixed.
//
//===----------------------------------------------------------------------===//

#include "ciphers/FuzzHarness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace usuba;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(
           USUBA_FUZZ_CORPUS_DIR, Ec))
    if (Entry.path().extension() == ".ua")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(CorpusReplay, CorpusIsPresent) {
  // The checked-in regression shapes must exist; an empty corpus means
  // the directory moved and the replay below silently tested nothing.
  EXPECT_GE(corpusFiles().size(), 3u) << "no corpus under "
                                      << USUBA_FUZZ_CORPUS_DIR;
}

TEST(CorpusReplay, EveryReproducerStaysFixed) {
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    EXPECT_EQ(replayFuzzFile(Path), "");
  }
}

} // namespace
