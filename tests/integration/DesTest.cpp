//===- DesTest.cpp - End-to-end DES validation ----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Known-answer tests for the reference DES (classic FIPS-46 vectors),
/// agreement between the bitsliced Usuba kernel and the reference, and
/// encrypt/decrypt round trips.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefDes.h"
#include "ciphers/UsubaSources.h"
#include "tests/integration/TestHelpers.h"

#include <gtest/gtest.h>

using namespace usuba;
using test::compileOrFail;
using test::rng;

namespace {

TEST(DesReference, ClassicKnownAnswer) {
  // The textbook vector used in countless DES walkthroughs.
  uint64_t Subkeys[16];
  desKeySchedule(0x133457799BBCDFF1ull, Subkeys);
  EXPECT_EQ(desEncryptBlock(0x0123456789ABCDEFull, Subkeys),
            0x85E813540F0AB405ull);
}

TEST(DesReference, NbsKnownAnswers) {
  uint64_t Subkeys[16];
  desKeySchedule(0x0101010101010101ull, Subkeys);
  EXPECT_EQ(desEncryptBlock(0x8000000000000000ull, Subkeys),
            0x95F8A5E5DD31D900ull);
  EXPECT_EQ(desEncryptBlock(0x0000000000000000ull, Subkeys),
            0x8CA64DE9C1B123A7ull);
}

TEST(DesReference, DecryptInvertsEncrypt) {
  uint64_t Subkeys[16];
  desKeySchedule(rng()(), Subkeys);
  for (unsigned Trial = 0; Trial < 100; ++Trial) {
    uint64_t Block = rng()();
    EXPECT_EQ(desDecryptBlock(desEncryptBlock(Block, Subkeys), Subkeys),
              Block);
  }
}

class DesKernel : public ::testing::TestWithParam<ArchKind> {};

TEST_P(DesKernel, MatchesReference) {
  std::optional<CompiledKernel> Kernel =
      compileOrFail(desSource(), Dir::Vert, /*WordBits=*/1,
                    /*Bitslice=*/false, archFor(GetParam()));
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 64u);

  uint64_t Key = rng()();
  uint64_t Subkeys[16];
  desKeySchedule(Key, Subkeys);
  uint64_t KeyAtoms[768];
  desSubkeysToAtoms(Subkeys, KeyAtoms);

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> PlainAtoms(size_t{Blocks} * 64);
  std::vector<uint64_t> Expected(Blocks);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint64_t Block = rng()();
    desBlockToAtoms(Block, &PlainAtoms[size_t{B} * 64]);
    Expected[B] = desEncryptBlock(Block, Subkeys);
  }
  std::vector<uint64_t> OutAtoms(PlainAtoms.size());
  Runner.runBatch({{false, PlainAtoms.data()}, {true, KeyAtoms}},
                  OutAtoms.data());
  for (unsigned B = 0; B < Blocks; ++B)
    EXPECT_EQ(desAtomsToBlock(&OutAtoms[size_t{B} * 64]), Expected[B])
        << "block " << B;
}

INSTANTIATE_TEST_SUITE_P(Archs, DesKernel,
                         ::testing::Values(ArchKind::GP64, ArchKind::SSE,
                                           ArchKind::AVX512),
                         [](const ::testing::TestParamInfo<ArchKind> &Info) {
                           return archFor(Info.param).Name;
                         });

TEST(DesKernel, WordSizeFlagDoesNotChangeBooleanAtoms) {
  // DES is a Boolean circuit over single bits: -w only resolves 'm, and
  // the source has none, so the kernel's atom size stays 1 (bitslicing).
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(desSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_EQ(Kernel->Prog.MBits, 1u);
}

} // namespace
