//===- Chacha20Test.cpp - End-to-end ChaCha20 validation ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RFC 8439 known-answer test for the reference ChaCha20, agreement
/// between the vsliced Usuba kernel and the reference, and the expected
/// type errors for the unsupported slicings.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefChacha20.h"
#include "ciphers/UsubaSources.h"
#include "tests/integration/TestHelpers.h"

#include <gtest/gtest.h>

using namespace usuba;
using test::compileOrFail;
using test::rng;

namespace {

TEST(Chacha20Reference, Rfc8439BlockFunction) {
  uint8_t Key[32], Nonce[12] = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  for (unsigned I = 0; I < 32; ++I)
    Key[I] = static_cast<uint8_t>(I);
  uint32_t State[16], Block[16];
  chacha20InitState(State, Key, /*Counter=*/1, Nonce);
  chacha20Block(State, Block);
  const uint8_t Expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  for (unsigned I = 0; I < 64; ++I)
    EXPECT_EQ(static_cast<uint8_t>(Block[I / 4] >> (8 * (I % 4))),
              Expected[I])
        << "byte " << I;
}

TEST(Chacha20Reference, XorIsInvolutive) {
  uint8_t Key[32], Nonce[12];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  for (uint8_t &B : Nonce)
    B = static_cast<uint8_t>(rng()());
  std::vector<uint8_t> Data(1000), Original;
  for (uint8_t &B : Data)
    B = static_cast<uint8_t>(rng()());
  Original = Data;
  chacha20Xor(Data.data(), Data.size(), Key, 7, Nonce);
  EXPECT_NE(Data, Original);
  chacha20Xor(Data.data(), Data.size(), Key, 7, Nonce);
  EXPECT_EQ(Data, Original);
}

class Chacha20Kernel : public ::testing::TestWithParam<ArchKind> {};

TEST_P(Chacha20Kernel, MatchesReference) {
  std::optional<CompiledKernel> Kernel =
      compileOrFail(chacha20Source(), Dir::Vert, /*WordBits=*/32,
                    /*Bitslice=*/false, archFor(GetParam()));
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 16u);

  // Each block is an independent state (in CTR use, states differ only in
  // the counter word; random states test more).
  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> InAtoms(size_t{Blocks} * 16);
  std::vector<uint32_t> Expected(size_t{Blocks} * 16);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint32_t State[16], Out[16];
    for (unsigned W = 0; W < 16; ++W) {
      State[W] = static_cast<uint32_t>(rng()());
      InAtoms[size_t{B} * 16 + W] = State[W];
    }
    chacha20Block(State, Out);
    for (unsigned W = 0; W < 16; ++W)
      Expected[size_t{B} * 16 + W] = Out[W];
  }
  std::vector<uint64_t> OutAtoms(InAtoms.size());
  Runner.runBatch({{false, InAtoms.data()}}, OutAtoms.data());
  for (size_t I = 0; I < OutAtoms.size(); ++I)
    EXPECT_EQ(OutAtoms[I], Expected[I]) << "atom " << I;
}

INSTANTIATE_TEST_SUITE_P(Archs, Chacha20Kernel,
                         ::testing::Values(ArchKind::GP64, ArchKind::SSE,
                                           ArchKind::AVX2,
                                           ArchKind::AVX512),
                         [](const ::testing::TestParamInfo<ArchKind> &Info) {
                           return archFor(Info.param).Name;
                         });

TEST(Chacha20Kernel, RejectsBitslicing) {
  // 32-bit addition has no b1 instance: the paper's flattening error.
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 32;
  Options.Bitslice = true;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  EXPECT_FALSE(compileUsuba(chacha20Source(), Options, Diags).has_value());
  EXPECT_NE(Diags.str().find("Arith"), std::string::npos) << Diags.str();
}

TEST(Chacha20Kernel, RejectsHorizontalSlicing) {
  CompileOptions Options;
  Options.Direction = Dir::Horiz;
  Options.WordBits = 32;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  EXPECT_FALSE(compileUsuba(chacha20Source(), Options, Diags).has_value());
}

} // namespace
