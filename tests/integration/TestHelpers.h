//===- TestHelpers.h - Shared integration-test utilities --------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef USUBA_TESTS_INTEGRATION_TESTHELPERS_H
#define USUBA_TESTS_INTEGRATION_TESTHELPERS_H

#include "core/Compiler.h"
#include "runtime/KernelRunner.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string_view>

namespace usuba {
namespace test {

inline std::mt19937_64 &rng() {
  static std::mt19937_64 Rng(0xC0FFEE123ULL);
  return Rng;
}

/// Compiles \p Source with the given slicing or fails the current test.
inline std::optional<CompiledKernel>
compileOrFail(std::string_view Source, Dir Direction, unsigned WordBits,
              bool Bitslice, const Arch &Target,
              CompileOptions Extra = CompileOptions()) {
  CompileOptions Options = Extra;
  Options.Direction = Direction;
  Options.WordBits = WordBits;
  Options.Bitslice = Bitslice;
  Options.Target = &Target;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Source, Options, Diags);
  EXPECT_TRUE(Kernel.has_value()) << Diags.str();
  return Kernel;
}

} // namespace test
} // namespace usuba

#endif // USUBA_TESTS_INTEGRATION_TESTHELPERS_H
