//===- SerpentTest.cpp - End-to-end Serpent validation --------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serpent validation: encrypt/decrypt round trips of the reference, and
/// bit-exact agreement between the vsliced/bitsliced Usuba kernels and
/// the reference (see DESIGN.md on test-vector provenance).
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefSerpent.h"
#include "ciphers/UsubaSources.h"
#include "runtime/Layout.h"
#include "tests/integration/TestHelpers.h"

#include <gtest/gtest.h>

using namespace usuba;
using test::compileOrFail;
using test::rng;

namespace {

TEST(SerpentReference, DecryptInvertsEncrypt) {
  uint8_t Key[16];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  uint32_t Keys[SerpentRoundKeys][4];
  serpentKeySchedule(Key, Keys);
  for (unsigned Trial = 0; Trial < 100; ++Trial) {
    uint32_t State[4], Original[4];
    for (unsigned W = 0; W < 4; ++W)
      Original[W] = State[W] = static_cast<uint32_t>(rng()());
    serpentEncrypt(State, Keys);
    serpentDecrypt(State, Keys);
    for (unsigned W = 0; W < 4; ++W)
      EXPECT_EQ(State[W], Original[W]);
  }
}

struct SerpentCase {
  const char *Name;
  bool Bitslice;
  ArchKind Target;
};

class SerpentKernel : public ::testing::TestWithParam<SerpentCase> {};

TEST_P(SerpentKernel, MatchesReference) {
  const SerpentCase &Case = GetParam();
  std::optional<CompiledKernel> Kernel =
      compileOrFail(serpentSource(), Dir::Vert, /*WordBits=*/32,
                    Case.Bitslice, archFor(Case.Target));
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));
  const unsigned AtomScale = Case.Bitslice ? 32 : 1;
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 4u * AtomScale);

  uint8_t Key[16];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  uint32_t Keys[SerpentRoundKeys][4];
  serpentKeySchedule(Key, Keys);
  std::vector<uint64_t> KeyWords(SerpentRoundKeys * 4);
  for (unsigned R = 0; R < SerpentRoundKeys; ++R)
    for (unsigned W = 0; W < 4; ++W)
      KeyWords[size_t{R} * 4 + W] = Keys[R][W];
  std::vector<uint64_t> KeyAtoms(KeyWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(KeyWords.data(),
                      static_cast<unsigned>(KeyWords.size()), 32,
                      KeyAtoms.data());
  else
    KeyAtoms = KeyWords;

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> PlainWords(size_t{Blocks} * 4);
  std::vector<uint32_t> Expected(size_t{Blocks} * 4);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint32_t State[4];
    for (unsigned W = 0; W < 4; ++W) {
      State[W] = static_cast<uint32_t>(rng()());
      PlainWords[size_t{B} * 4 + W] = State[W];
    }
    serpentEncrypt(State, Keys);
    for (unsigned W = 0; W < 4; ++W)
      Expected[size_t{B} * 4 + W] = State[W];
  }
  std::vector<uint64_t> PlainAtoms(PlainWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(PlainWords.data(),
                      static_cast<unsigned>(PlainWords.size()), 32,
                      PlainAtoms.data());
  else
    PlainAtoms = PlainWords;

  std::vector<uint64_t> OutAtoms(PlainAtoms.size());
  Runner.runBatch({{false, PlainAtoms.data()}, {true, KeyAtoms.data()}},
                  OutAtoms.data());

  std::vector<uint64_t> OutWords(PlainWords.size());
  if (Case.Bitslice)
    collapseBitsToAtoms(OutAtoms.data(),
                        static_cast<unsigned>(OutWords.size()), 32,
                        OutWords.data());
  else
    OutWords = OutAtoms;
  for (size_t I = 0; I < OutWords.size(); ++I)
    EXPECT_EQ(OutWords[I], Expected[I]) << "atom " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Slicings, SerpentKernel,
    ::testing::Values(SerpentCase{"vslice_gp64", false, ArchKind::GP64},
                      SerpentCase{"vslice_sse", false, ArchKind::SSE},
                      SerpentCase{"vslice_avx2", false, ArchKind::AVX2},
                      SerpentCase{"vslice_avx512", false, ArchKind::AVX512},
                      SerpentCase{"bitslice_gp64", true, ArchKind::GP64},
                      SerpentCase{"bitslice_avx2", true, ArchKind::AVX2}),
    [](const ::testing::TestParamInfo<SerpentCase> &Info) {
      return Info.param.Name;
    });

} // namespace
