//===- AesTest.cpp - End-to-end AES-128 validation ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FIPS-197 known-answer tests for the reference AES, agreement between
/// the hsliced/bitsliced Usuba kernels and the reference, and round
/// trips.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefAes.h"
#include "ciphers/UsubaSources.h"
#include "runtime/Layout.h"
#include "tests/integration/TestHelpers.h"

#include <gtest/gtest.h>

using namespace usuba;
using test::compileOrFail;
using test::rng;

namespace {

TEST(AesReference, Fips197AppendixC) {
  const uint8_t Key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                           0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  uint8_t Block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                       0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const uint8_t Expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                0x70, 0xb4, 0xc5, 0x5a};
  uint8_t RoundKeys[11][16];
  aes128KeySchedule(Key, RoundKeys);
  aesEncryptBlock(Block, RoundKeys);
  for (unsigned I = 0; I < 16; ++I)
    EXPECT_EQ(Block[I], Expected[I]) << "byte " << I;
}

TEST(AesReference, Fips197AppendixB) {
  const uint8_t Key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  uint8_t Block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const uint8_t Expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                0x19, 0x6a, 0x0b, 0x32};
  uint8_t RoundKeys[11][16];
  aes128KeySchedule(Key, RoundKeys);
  aesEncryptBlock(Block, RoundKeys);
  for (unsigned I = 0; I < 16; ++I)
    EXPECT_EQ(Block[I], Expected[I]) << "byte " << I;
}

TEST(AesReference, SboxKnownValues) {
  EXPECT_EQ(aesSbox()[0x00], 0x63);
  EXPECT_EQ(aesSbox()[0x01], 0x7c);
  EXPECT_EQ(aesSbox()[0x53], 0xed);
  EXPECT_EQ(aesSbox()[0xff], 0x16);
  for (unsigned A = 0; A < 256; ++A)
    EXPECT_EQ(aesInvSbox()[aesSbox()[A]], A);
}

TEST(AesReference, DecryptInvertsEncrypt) {
  uint8_t Key[16], RoundKeys[11][16];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  aes128KeySchedule(Key, RoundKeys);
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    uint8_t Block[16], Original[16];
    for (unsigned I = 0; I < 16; ++I)
      Original[I] = Block[I] = static_cast<uint8_t>(rng()());
    aesEncryptBlock(Block, RoundKeys);
    aesDecryptBlock(Block, RoundKeys);
    for (unsigned I = 0; I < 16; ++I)
      EXPECT_EQ(Block[I], Original[I]);
  }
}

TEST(AesReference, AtomConversionRoundTrips) {
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    uint8_t Block[16], Back[16];
    for (uint8_t &B : Block)
      B = static_cast<uint8_t>(rng()());
    uint64_t Atoms[8];
    aesBlockToAtoms(Block, Atoms);
    aesAtomsToBlock(Atoms, Back);
    for (unsigned I = 0; I < 16; ++I)
      EXPECT_EQ(Back[I], Block[I]);
  }
}

struct AesCase {
  const char *Name;
  bool Bitslice;
  ArchKind Target;
};

class AesKernel : public ::testing::TestWithParam<AesCase> {};

TEST_P(AesKernel, MatchesReference) {
  const AesCase &Case = GetParam();
  std::optional<CompiledKernel> Kernel =
      compileOrFail(aesSource(), Dir::Horiz, /*WordBits=*/16,
                    Case.Bitslice, archFor(Case.Target));
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));

  const unsigned AtomScale = Case.Bitslice ? 16 : 1;
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 8u * AtomScale);

  uint8_t Key[16], RoundKeys[11][16];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  aes128KeySchedule(Key, RoundKeys);
  std::vector<uint64_t> KeyWords(11 * 8);
  for (unsigned R = 0; R < 11; ++R)
    aesBlockToAtoms(RoundKeys[R], &KeyWords[size_t{R} * 8]);
  std::vector<uint64_t> KeyAtoms(KeyWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(KeyWords.data(), 11 * 8, 16, KeyAtoms.data());
  else
    KeyAtoms = KeyWords;

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> PlainWords(size_t{Blocks} * 8);
  std::vector<std::array<uint8_t, 16>> Expected(Blocks);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint8_t Block[16];
    for (uint8_t &Byte : Block)
      Byte = static_cast<uint8_t>(rng()());
    aesBlockToAtoms(Block, &PlainWords[size_t{B} * 8]);
    aesEncryptBlock(Block, RoundKeys);
    for (unsigned I = 0; I < 16; ++I)
      Expected[B][I] = Block[I];
  }
  std::vector<uint64_t> PlainAtoms(PlainWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(PlainWords.data(),
                      static_cast<unsigned>(PlainWords.size()), 16,
                      PlainAtoms.data());
  else
    PlainAtoms = PlainWords;

  std::vector<uint64_t> OutAtoms(PlainAtoms.size());
  Runner.runBatch({{false, PlainAtoms.data()}, {true, KeyAtoms.data()}},
                  OutAtoms.data());

  std::vector<uint64_t> OutWords(PlainWords.size());
  if (Case.Bitslice)
    collapseBitsToAtoms(OutAtoms.data(),
                        static_cast<unsigned>(OutWords.size()), 16,
                        OutWords.data());
  else
    OutWords = OutAtoms;

  for (unsigned B = 0; B < Blocks; ++B) {
    uint8_t Block[16];
    aesAtomsToBlock(&OutWords[size_t{B} * 8], Block);
    for (unsigned I = 0; I < 16; ++I)
      EXPECT_EQ(Block[I], Expected[B][I])
          << "block " << B << " byte " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Slicings, AesKernel,
    ::testing::Values(AesCase{"hslice_sse", false, ArchKind::SSE},
                      AesCase{"hslice_avx", false, ArchKind::AVX},
                      AesCase{"hslice_avx2", false, ArchKind::AVX2},
                      AesCase{"hslice_avx512", false, ArchKind::AVX512},
                      AesCase{"bitslice_gp64", true, ArchKind::GP64},
                      AesCase{"bitslice_avx2", true, ArchKind::AVX2}),
    [](const ::testing::TestParamInfo<AesCase> &Info) {
      return Info.param.Name;
    });

TEST(AesKernel, RejectsVerticalSlicing) {
  // ShiftRows needs atom-level shuffles, which vertical elements cannot
  // express (paper Section 2.3 / Table 1).
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archAVX2();
  DiagnosticEngine Diags;
  EXPECT_FALSE(compileUsuba(aesSource(), Options, Diags).has_value());
}

} // namespace
