//===- RectangleTest.cpp - End-to-end Rectangle validation ----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the paper's Figure 1 Rectangle program in every slicing mode
/// on every architecture and checks bit-exact agreement with the
/// independent C++ reference, plus decrypt round trips.
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefRectangle.h"
#include "ciphers/UsubaSources.h"
#include "core/Compiler.h"
#include "runtime/KernelRunner.h"
#include "runtime/Layout.h"

#include <gtest/gtest.h>

#include <random>

using namespace usuba;

namespace {

struct SlicingCase {
  const char *Name;
  Dir Direction;
  bool Bitslice;
  ArchKind Target;
};

class RectangleSlicing : public ::testing::TestWithParam<SlicingCase> {};

std::mt19937_64 &rng() {
  static std::mt19937_64 Rng(0x5eed5eedULL);
  return Rng;
}

TEST_P(RectangleSlicing, MatchesReference) {
  const SlicingCase &Case = GetParam();
  CompileOptions Options;
  Options.Direction = Case.Direction;
  Options.WordBits = 16;
  Options.Bitslice = Case.Bitslice;
  Options.Target = &archFor(Case.Target);

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  KernelRunner Runner(std::move(*Kernel));

  const unsigned Blocks = Runner.blocksPerCall();
  // Under -B every 16-bit atom flattens to 16 bit-atoms.
  const unsigned AtomScale = Case.Bitslice ? 16 : 1;
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 4u * AtomScale);

  // Random round keys (shared by all blocks) and random plaintexts.
  uint16_t Keys[RectangleRoundKeys][4];
  std::vector<uint64_t> KeyWords(RectangleRoundKeys * 4);
  for (unsigned R = 0; R < RectangleRoundKeys; ++R)
    for (unsigned W = 0; W < 4; ++W) {
      Keys[R][W] = static_cast<uint16_t>(rng()());
      KeyWords[R * 4 + W] = Keys[R][W];
    }
  std::vector<uint64_t> KeyAtoms(KeyWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(KeyWords.data(), RectangleRoundKeys * 4, 16,
                      KeyAtoms.data());
  else
    KeyAtoms = KeyWords;

  std::vector<uint64_t> PlainWords(size_t{Blocks} * 4);
  std::vector<uint16_t> Expected(size_t{Blocks} * 4);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint16_t State[4];
    for (unsigned W = 0; W < 4; ++W) {
      State[W] = static_cast<uint16_t>(rng()());
      PlainWords[size_t{B} * 4 + W] = State[W];
    }
    rectangleEncrypt(State, Keys);
    for (unsigned W = 0; W < 4; ++W)
      Expected[size_t{B} * 4 + W] = State[W];
  }
  std::vector<uint64_t> PlainAtoms(PlainWords.size() * AtomScale);
  if (Case.Bitslice)
    expandAtomsToBits(PlainWords.data(),
                      static_cast<unsigned>(PlainWords.size()), 16,
                      PlainAtoms.data());
  else
    PlainAtoms = PlainWords;

  std::vector<uint64_t> OutAtoms(PlainAtoms.size());
  Runner.runBatch({{/*Broadcast=*/false, PlainAtoms.data()},
                   {/*Broadcast=*/true, KeyAtoms.data()}},
                  OutAtoms.data());

  std::vector<uint64_t> OutWords(PlainWords.size());
  if (Case.Bitslice)
    collapseBitsToAtoms(OutAtoms.data(),
                        static_cast<unsigned>(OutWords.size()), 16,
                        OutWords.data());
  else
    OutWords = OutAtoms;

  for (unsigned B = 0; B < Blocks; ++B)
    for (unsigned W = 0; W < 4; ++W)
      EXPECT_EQ(OutWords[size_t{B} * 4 + W], Expected[size_t{B} * 4 + W])
          << "block " << B << " word " << W << " (" << Case.Name << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllSlicings, RectangleSlicing,
    ::testing::Values(
        SlicingCase{"vslice_gp64", Dir::Vert, false, ArchKind::GP64},
        SlicingCase{"vslice_sse", Dir::Vert, false, ArchKind::SSE},
        SlicingCase{"vslice_avx2", Dir::Vert, false, ArchKind::AVX2},
        SlicingCase{"vslice_avx512", Dir::Vert, false, ArchKind::AVX512},
        SlicingCase{"hslice_sse", Dir::Horiz, false, ArchKind::SSE},
        SlicingCase{"hslice_avx2", Dir::Horiz, false, ArchKind::AVX2},
        SlicingCase{"bitslice_gp64", Dir::Vert, true, ArchKind::GP64},
        SlicingCase{"bitslice_avx512", Dir::Vert, true, ArchKind::AVX512}),
    [](const ::testing::TestParamInfo<SlicingCase> &Info) {
      return Info.param.Name;
    });

TEST(Rectangle, DecryptInvertsEncrypt) {
  uint16_t Key[5], Keys[RectangleRoundKeys][4];
  for (uint16_t &W : Key)
    W = static_cast<uint16_t>(rng()());
  rectangleKeySchedule80(Key, Keys);
  for (unsigned Trial = 0; Trial < 100; ++Trial) {
    uint16_t State[4], Original[4];
    for (unsigned W = 0; W < 4; ++W)
      Original[W] = State[W] = static_cast<uint16_t>(rng()());
    rectangleEncrypt(State, Keys);
    rectangleDecrypt(State, Keys);
    for (unsigned W = 0; W < 4; ++W)
      EXPECT_EQ(State[W], Original[W]);
  }
}

TEST(Rectangle, InterleavingPreservesSemantics) {
  CompileOptions Options;
  Options.Direction = Dir::Vert;
  Options.WordBits = 16;
  Options.Target = &archAVX2();
  Options.Interleave = true;

  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(rectangleSource(), Options, Diags);
  ASSERT_TRUE(Kernel.has_value()) << Diags.str();
  EXPECT_GE(Kernel->Prog.InterleaveFactor, 2u)
      << "Rectangle uses few registers; the paper interleaves it 2-way";
  KernelRunner Runner(std::move(*Kernel));

  const unsigned Blocks = Runner.blocksPerCall();
  uint16_t Keys[RectangleRoundKeys][4];
  uint64_t KeyAtoms[RectangleRoundKeys * 4];
  for (unsigned R = 0; R < RectangleRoundKeys; ++R)
    for (unsigned W = 0; W < 4; ++W) {
      Keys[R][W] = static_cast<uint16_t>(rng()());
      KeyAtoms[R * 4 + W] = Keys[R][W];
    }
  std::vector<uint64_t> PlainAtoms(size_t{Blocks} * 4), Out(PlainAtoms);
  std::vector<uint16_t> Expected(size_t{Blocks} * 4);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint16_t State[4];
    for (unsigned W = 0; W < 4; ++W) {
      State[W] = static_cast<uint16_t>(rng()());
      PlainAtoms[size_t{B} * 4 + W] = State[W];
    }
    rectangleEncrypt(State, Keys);
    for (unsigned W = 0; W < 4; ++W)
      Expected[size_t{B} * 4 + W] = State[W];
  }
  Runner.runBatch({{false, PlainAtoms.data()}, {true, KeyAtoms}},
                  Out.data());
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], Expected[I]) << "atom " << I;
}

} // namespace
