//===- ExtensionsTest.cpp - PRESENT and Trivium extensions ----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validation of the two extensions beyond the paper's evaluation set:
/// PRESENT-80 (known-answer vectors from the CHES 2007 paper) and the
/// future-work Trivium kernel (64 combinational rounds against the
/// bit-serial reference).
///
//===----------------------------------------------------------------------===//

#include "ciphers/RefPresent.h"
#include "ciphers/RefTrivium.h"
#include "ciphers/UsubaSources.h"
#include "tests/integration/TestHelpers.h"

#include <gtest/gtest.h>

using namespace usuba;
using test::compileOrFail;
using test::rng;

namespace {

TEST(PresentReference, Ches2007KnownAnswers) {
  struct Vector {
    uint8_t Key[10];
    uint64_t Plain;
    uint64_t Cipher;
  };
  const Vector Vectors[] = {
      {{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0, 0x5579C1387B228445ull},
      {{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, ~0ull, 0xA112FFC72F68417Bull},
      {{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0,
       0xE72C46C0F5945049ull},
      {{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, ~0ull,
       0x3333DCD3213210D2ull},
  };
  for (const Vector &V : Vectors) {
    uint64_t RoundKeys[32];
    presentKeySchedule80(V.Key, RoundKeys);
    EXPECT_EQ(presentEncryptBlock(V.Plain, RoundKeys), V.Cipher);
    EXPECT_EQ(presentDecryptBlock(V.Cipher, RoundKeys), V.Plain);
  }
}

TEST(PresentKernel, MatchesReference) {
  std::optional<CompiledKernel> Kernel =
      compileOrFail(presentSource(), Dir::Vert, 1, false, archAVX2());
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 64u);

  uint8_t Key[10];
  for (uint8_t &B : Key)
    B = static_cast<uint8_t>(rng()());
  uint64_t RoundKeys[32];
  presentKeySchedule80(Key, RoundKeys);
  // Key atoms: round key bit j (1-based leftmost) per round.
  std::vector<uint64_t> KeyAtoms(32 * 64);
  for (unsigned R = 0; R < 32; ++R)
    for (unsigned J = 0; J < 64; ++J)
      KeyAtoms[R * 64 + J] = (RoundKeys[R] >> (63 - J)) & 1;

  const unsigned Blocks = Runner.blocksPerCall();
  std::vector<uint64_t> PlainAtoms(size_t{Blocks} * 64);
  std::vector<uint64_t> Expected(Blocks);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint64_t Block = rng()();
    for (unsigned J = 0; J < 64; ++J)
      PlainAtoms[size_t{B} * 64 + J] = (Block >> (63 - J)) & 1;
    Expected[B] = presentEncryptBlock(Block, RoundKeys);
  }
  std::vector<uint64_t> OutAtoms(PlainAtoms.size());
  Runner.runBatch({{false, PlainAtoms.data()}, {true, KeyAtoms.data()}},
                  OutAtoms.data());
  for (unsigned B = 0; B < Blocks; ++B) {
    uint64_t Block = 0;
    for (unsigned J = 0; J < 64; ++J)
      Block = (Block << 1) | (OutAtoms[size_t{B} * 64 + J] & 1);
    EXPECT_EQ(Block, Expected[B]) << "block " << B;
  }
}

TEST(TriviumReference, KeystreamIsDeterministicAndBalanced) {
  uint8_t Key[10], Iv[10];
  for (unsigned I = 0; I < 10; ++I) {
    Key[I] = static_cast<uint8_t>(rng()());
    Iv[I] = static_cast<uint8_t>(rng()());
  }
  TriviumState A, B;
  triviumInit(A, Key, Iv);
  triviumInit(B, Key, Iv);
  unsigned Ones = 0;
  for (unsigned I = 0; I < 4096; ++I) {
    unsigned Bit = triviumStep(A);
    EXPECT_EQ(Bit, triviumStep(B));
    Ones += Bit;
  }
  // A keystream must look balanced (loose 3-sigma bound).
  EXPECT_GT(Ones, 1900u);
  EXPECT_LT(Ones, 2200u);
}

class TriviumKernel : public ::testing::TestWithParam<ArchKind> {};

TEST_P(TriviumKernel, SixtyFourRoundsMatchBitSerialReference) {
  std::optional<CompiledKernel> Kernel =
      compileOrFail(triviumSource(), Dir::Vert, 1, false,
                    archFor(GetParam()));
  ASSERT_TRUE(Kernel.has_value());
  KernelRunner Runner(std::move(*Kernel));
  ASSERT_EQ(Runner.outputAtomsPerBlock(), 64u + 288u);

  const unsigned Blocks = Runner.blocksPerCall();
  // Each slice is an independent Trivium instance with its own key/IV.
  std::vector<TriviumState> States(Blocks);
  std::vector<uint64_t> InAtoms(size_t{Blocks} * 288);
  for (unsigned B = 0; B < Blocks; ++B) {
    uint8_t Key[10], Iv[10];
    for (unsigned I = 0; I < 10; ++I) {
      Key[I] = static_cast<uint8_t>(rng()());
      Iv[I] = static_cast<uint8_t>(rng()());
    }
    triviumInit(States[B], Key, Iv);
    for (unsigned I = 0; I < 288; ++I)
      InAtoms[size_t{B} * 288 + I] = States[B].S[I];
  }

  // Drive the kernel for several 64-round blocks, feeding the next state
  // back in — the caller-held state loop the paper envisions.
  std::vector<uint64_t> OutAtoms(size_t{Blocks} * (64 + 288));
  for (unsigned Step = 0; Step < 4; ++Step) {
    Runner.runBatch({{false, InAtoms.data()}}, OutAtoms.data());
    for (unsigned B = 0; B < Blocks; ++B) {
      uint64_t Expected = triviumBlock64(States[B]);
      uint64_t Got = 0;
      for (unsigned I = 0; I < 64; ++I)
        Got = (Got << 1) | (OutAtoms[size_t{B} * (64 + 288) + I] & 1);
      EXPECT_EQ(Got, Expected) << "slice " << B << " step " << Step;
      // Next state comes back around.
      for (unsigned I = 0; I < 288; ++I)
        InAtoms[size_t{B} * 288 + I] =
            OutAtoms[size_t{B} * (64 + 288) + 64 + I];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, TriviumKernel,
                         ::testing::Values(ArchKind::GP64, ArchKind::AVX2),
                         [](const ::testing::TestParamInfo<ArchKind> &Info) {
                           return archFor(Info.param).Name;
                         });

} // namespace
