//===- Type.cpp - Usuba surface and distilled types -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

using namespace usuba;

const char *usuba::dirName(Dir D) {
  switch (D) {
  case Dir::Param:
    return "'D";
  case Dir::Vert:
    return "V";
  case Dir::Horiz:
    return "H";
  }
  return "?";
}

bool Type::isPolymorphic() const {
  switch (K) {
  case Kind::Nat:
    return false;
  case Kind::Base:
    return Direction == Dir::Param || Word.IsParam;
  case Kind::Vector:
    return Elem->isPolymorphic();
  }
  return false;
}

unsigned Type::flattenedLength() const {
  switch (K) {
  case Kind::Nat:
    assert(false && "flattenedLength of nat");
    return 0;
  case Kind::Base:
    return 1;
  case Kind::Vector:
    return Len * Elem->flattenedLength();
  }
  return 0;
}

const Type &Type::scalarType() const {
  const Type *T = this;
  while (T->isVector())
    T = T->Elem.get();
  assert(T->isBase() && "scalarType of nat");
  return *T;
}

unsigned Type::bitWidth() const {
  const Type &Scalar = scalarType();
  assert(!Scalar.wordSize().IsParam && "bitWidth of polymorphic type");
  return Scalar.wordSize().Bits * flattenedLength();
}

bool usuba::operator==(const Type &A, const Type &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Type::Kind::Nat:
    return true;
  case Type::Kind::Base:
    return A.Direction == B.Direction && A.Word == B.Word;
  case Type::Kind::Vector:
    return A.Len == B.Len && *A.Elem == *B.Elem;
  }
  return false;
}

std::string Type::str() const {
  switch (K) {
  case Kind::Nat:
    return "nat";
  case Kind::Base: {
    std::string Out = "u";
    Out += dirName(Direction);
    if (Word.IsParam)
      Out += "'m";
    else
      Out += std::to_string(Word.Bits);
    return Out;
  }
  case Kind::Vector:
    return Elem->str() + "[" + std::to_string(Len) + "]";
  }
  return "?";
}

Type usuba::substituteType(const Type &T, Dir D, unsigned MBits) {
  switch (T.kind()) {
  case Type::Kind::Nat:
    return T;
  case Type::Kind::Base: {
    Dir NewDir = T.direction() == Dir::Param ? D : T.direction();
    WordSize NewWord = T.wordSize();
    if (NewWord.IsParam && MBits != 0)
      NewWord = WordSize::fixed(MBits);
    return Type::base(NewDir, NewWord);
  }
  case Type::Kind::Vector:
    return Type::vector(substituteType(T.elementType(), D, MBits),
                        T.length());
  }
  return T;
}
