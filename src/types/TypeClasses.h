//===- TypeClasses.h - Table 1 operator-instance resolution -----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's bounded polymorphism (Section 2.3, Table 1): the Logic,
/// Arith and Shift type classes, with instances determined by the operand
/// type and the target architecture. Resolution is coherent by
/// construction — the instance set is non-overlapping — and failure
/// produces the user-facing explanation the paper advertises ("which
/// operator is incompatible with (efficient) bitslicing").
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_TYPES_TYPECLASSES_H
#define USUBA_TYPES_TYPECLASSES_H

#include "types/Arch.h"
#include "types/Type.h"

#include <string>

namespace usuba {

/// The three operator classes of the paper.
enum class OpClass : uint8_t { Logic, Arith, Shift };

const char *opClassName(OpClass C);

/// How a resolved operator instance is implemented (Table 1, rightmost
/// column).
enum class InstanceImpl : uint8_t {
  /// One (or a handful of) machine instruction(s) on a full register:
  /// and/or/xor, vpadd, vpsll, vpshufb...
  Native,
  /// Homomorphic application over the elements of a vector type
  /// (n instructions).
  Homomorphic,
  /// Shifting a vector amounts to statically renaming registers
  /// (0 instructions).
  Renaming,
};

/// Result of instance resolution: either an implementation strategy or a
/// diagnostic explaining why no instance exists.
struct InstanceResolution {
  bool Found = false;
  InstanceImpl Impl = InstanceImpl::Native;
  std::string Reason; ///< set when !Found

  static InstanceResolution ok(InstanceImpl Impl) {
    InstanceResolution R;
    R.Found = true;
    R.Impl = Impl;
    return R;
  }
  static InstanceResolution fail(std::string Reason) {
    InstanceResolution R;
    R.Reason = std::move(Reason);
    return R;
  }
};

/// Resolves the instance of class \p C at operand type \p T on \p Target.
///
/// \p T must be monomorphic (concrete direction and word size) except that
/// a parametric *direction* is accepted for Logic, whose instances are
/// direction-blind. The checker calls this after monomorphization and for
/// "would this slicing type-check?" queries (used when reporting which
/// slicings a cipher supports).
InstanceResolution resolveInstance(OpClass C, const Type &T,
                                   const Arch &Target);

} // namespace usuba

#endif // USUBA_TYPES_TYPECLASSES_H
