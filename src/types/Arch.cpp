//===- Arch.cpp - SIMD architecture model ---------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/Arch.h"

#include <algorithm>
#include <cctype>

using namespace usuba;

// Register counts follow the paper (Section 4.2): 16 GPRs on x86-64, 8 XMM
// registers architecturally addressable in 32-bit-era SSE code... we use the
// 64-bit counts: 16 XMM/YMM registers up to AVX2 and 32 ZMM registers on
// AVX512.
static const Arch GP64Arch = {ArchKind::GP64, "gp64", 64, 16,
                              /*ThreeOperand=*/false,
                              /*HasVectorArith=*/false,
                              /*HasShuffle=*/false,
                              /*HasTernaryLogic=*/false};
static const Arch SSEArch = {ArchKind::SSE, "sse", 128, 16,
                             /*ThreeOperand=*/false,
                             /*HasVectorArith=*/true,
                             /*HasShuffle=*/true,
                             /*HasTernaryLogic=*/false};
static const Arch AVXArch = {ArchKind::AVX, "avx", 128, 16,
                             /*ThreeOperand=*/true,
                             /*HasVectorArith=*/true,
                             /*HasShuffle=*/true,
                             /*HasTernaryLogic=*/false};
static const Arch AVX2Arch = {ArchKind::AVX2, "avx2", 256, 16,
                              /*ThreeOperand=*/true,
                              /*HasVectorArith=*/true,
                              /*HasShuffle=*/true,
                              /*HasTernaryLogic=*/false};
static const Arch AVX512Arch = {ArchKind::AVX512, "avx512", 512, 32,
                                /*ThreeOperand=*/true,
                                /*HasVectorArith=*/true,
                                /*HasShuffle=*/true,
                                /*HasTernaryLogic=*/true};
static const Arch NeonArch = {ArchKind::Neon, "neon", 128, 32,
                              /*ThreeOperand=*/true,
                              /*HasVectorArith=*/true,
                              /*HasShuffle=*/true, // vtbl
                              /*HasTernaryLogic=*/false};

const Arch &usuba::archGP64() { return GP64Arch; }
const Arch &usuba::archSSE() { return SSEArch; }
const Arch &usuba::archAVX() { return AVXArch; }
const Arch &usuba::archAVX2() { return AVX2Arch; }
const Arch &usuba::archAVX512() { return AVX512Arch; }
const Arch &usuba::archNeon() { return NeonArch; }

const Arch &usuba::archFor(ArchKind Kind) {
  switch (Kind) {
  case ArchKind::GP64:
    return GP64Arch;
  case ArchKind::SSE:
    return SSEArch;
  case ArchKind::AVX:
    return AVXArch;
  case ArchKind::AVX2:
    return AVX2Arch;
  case ArchKind::AVX512:
    return AVX512Arch;
  case ArchKind::Neon:
    return NeonArch;
  }
  return GP64Arch;
}

static const Arch *const AllArchs[] = {&GP64Arch, &SSEArch, &AVXArch,
                                       &AVX2Arch, &AVX512Arch};

const Arch *const *usuba::allArchs(unsigned &Count) {
  Count = 5;
  return AllArchs;
}

const Arch *usuba::archByName(const std::string &Name) {
  std::string Lower = Name;
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  for (const Arch *A : AllArchs)
    if (Lower == A->Name)
      return A;
  if (Lower == NeonArch.Name)
    return &NeonArch;
  return nullptr;
}
