//===- Arch.cpp - SIMD architecture model ---------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/Arch.h"

#include <algorithm>
#include <cctype>

using namespace usuba;

// Register counts follow the paper (Section 4.2): 16 GPRs on x86-64, 8 XMM
// registers architecturally addressable in 32-bit-era SSE code... we use the
// 64-bit counts: 16 XMM/YMM registers up to AVX2 and 32 ZMM registers on
// AVX512.
static const Arch GP64Arch = {ArchKind::GP64, "gp64", 64, 16,
                              /*ThreeOperand=*/false,
                              /*HasVectorArith=*/false,
                              /*HasShuffle=*/false,
                              /*HasTernaryLogic=*/false};
static const Arch SSEArch = {ArchKind::SSE, "sse", 128, 16,
                             /*ThreeOperand=*/false,
                             /*HasVectorArith=*/true,
                             /*HasShuffle=*/true,
                             /*HasTernaryLogic=*/false};
static const Arch AVXArch = {ArchKind::AVX, "avx", 128, 16,
                             /*ThreeOperand=*/true,
                             /*HasVectorArith=*/true,
                             /*HasShuffle=*/true,
                             /*HasTernaryLogic=*/false};
static const Arch AVX2Arch = {ArchKind::AVX2, "avx2", 256, 16,
                              /*ThreeOperand=*/true,
                              /*HasVectorArith=*/true,
                              /*HasShuffle=*/true,
                              /*HasTernaryLogic=*/false};
static const Arch AVX512Arch = {ArchKind::AVX512, "avx512", 512, 32,
                                /*ThreeOperand=*/true,
                                /*HasVectorArith=*/true,
                                /*HasShuffle=*/true,
                                /*HasTernaryLogic=*/true};
static const Arch NeonArch = {ArchKind::Neon, "neon", 128, 32,
                              /*ThreeOperand=*/true,
                              /*HasVectorArith=*/true,
                              /*HasShuffle=*/true, // vtbl
                              /*HasTernaryLogic=*/false};

const Arch &usuba::archGP64() { return GP64Arch; }
const Arch &usuba::archSSE() { return SSEArch; }
const Arch &usuba::archAVX() { return AVXArch; }
const Arch &usuba::archAVX2() { return AVX2Arch; }
const Arch &usuba::archAVX512() { return AVX512Arch; }
const Arch &usuba::archNeon() { return NeonArch; }

const Arch &usuba::archFor(ArchKind Kind) {
  switch (Kind) {
  case ArchKind::GP64:
    return GP64Arch;
  case ArchKind::SSE:
    return SSEArch;
  case ArchKind::AVX:
    return AVXArch;
  case ArchKind::AVX2:
    return AVX2Arch;
  case ArchKind::AVX512:
    return AVX512Arch;
  case ArchKind::Neon:
    return NeonArch;
  }
  return GP64Arch;
}

static const Arch *const AllArchs[] = {&GP64Arch, &SSEArch, &AVXArch,
                                       &AVX2Arch, &AVX512Arch};

const Arch *const *usuba::allArchs(unsigned &Count) {
  Count = 5;
  return AllArchs;
}

const Arch *usuba::archByName(const std::string &Name) {
  std::string Lower = Name;
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  for (const Arch *A : AllArchs)
    if (Lower == A->Name)
      return A;
  if (Lower == NeonArch.Name)
    return &NeonArch;
  return nullptr;
}

// The dispatch sentinel mirrors gp64's codegen fields so that if it ever
// leaks past the facade the result is safe scalar code, not an ICE deep in
// instruction selection. Identity (address) is what matters: the facade
// compares Target == &archAuto().
static const Arch AutoArch = {ArchKind::GP64, "auto", 64, 16,
                              /*ThreeOperand=*/false,
                              /*HasVectorArith=*/false,
                              /*HasShuffle=*/false,
                              /*HasTernaryLogic=*/false};

const Arch &usuba::archAuto() { return AutoArch; }

bool usuba::archSupported(const Arch &A) {
  if (&A == &AutoArch)
    return true; // the sentinel resolves to something runnable by definition
#if defined(__x86_64__) || defined(__i386__)
  switch (A.Kind) {
  case ArchKind::GP64:
    return true;
  case ArchKind::SSE:
    return __builtin_cpu_supports("sse4.2") || __builtin_cpu_supports("ssse3");
  case ArchKind::AVX:
    return __builtin_cpu_supports("avx");
  case ArchKind::AVX2:
    return __builtin_cpu_supports("avx2");
  case ArchKind::AVX512:
    // The C backend leans on byte-granular mask ops and vpermb, so the
    // whole f/bw/vbmi trio is required, not just avx512f.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vbmi");
  case ArchKind::Neon:
    return false; // no C backend for Neon: always the simulator
  }
  return false;
#else
  return A.Kind == ArchKind::GP64;
#endif
}

namespace {
/// One-time CPUID probe: walks the evaluation ladder widest-first and
/// remembers both the winner and a human-readable why.
struct BestArchProbe {
  const Arch *Best;
  std::string Why;
  BestArchProbe() {
    static const Arch *const Ladder[] = {&AVX512Arch, &AVX2Arch, &AVXArch,
                                         &SSEArch, &GP64Arch};
    Best = &GP64Arch;
    Why = "cpuid probe:";
    for (const Arch *A : Ladder)
      Why += std::string(" ") + A->Name + "=" +
             (archSupported(*A) ? "yes" : "no");
    for (const Arch *A : Ladder)
      if (archSupported(*A)) {
        Best = A;
        break;
      }
    Why += std::string("; widest supported ISA is ") + Best->Name;
  }
};

const BestArchProbe &bestArchProbe() {
  static const BestArchProbe Probe;
  return Probe;
}
} // namespace

const Arch &usuba::archBest() { return *bestArchProbe().Best; }

const char *usuba::archBestWhy() { return bestArchProbe().Why.c_str(); }
