//===- TypeClasses.cpp - Table 1 operator-instance resolution -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/TypeClasses.h"

using namespace usuba;

const char *usuba::opClassName(OpClass C) {
  switch (C) {
  case OpClass::Logic:
    return "Logic";
  case OpClass::Arith:
    return "Arith";
  case OpClass::Shift:
    return "Shift";
  }
  return "?";
}

static InstanceResolution resolveLogicBase(const Type &T,
                                           const Arch &Target) {
  WordSize W = T.wordSize();
  assert(!W.IsParam && "logic resolution requires a concrete word size");
  // Table 1: Logic(u'Dm) exists for every m up to the register width of
  // the architecture; the direction is irrelevant for bitwise operations.
  if (W.Bits <= Target.maxLogicWordBits())
    return InstanceResolution::ok(InstanceImpl::Native);
  return InstanceResolution::fail(
      "no Logic instance at " + T.str() + " on " + Target.Name +
      ": words of " + std::to_string(W.Bits) + " bits exceed the " +
      std::to_string(Target.SliceBits) + "-bit registers");
}

static InstanceResolution resolveArithBase(const Type &T,
                                           const Arch &Target) {
  WordSize W = T.wordSize();
  assert(!W.IsParam && "arith resolution requires a concrete word size");
  if (W.Bits == 1)
    return InstanceResolution::fail(
        "no Arith instance at " + T.str() +
        ": arithmetic cannot be bitsliced (a software adder circuit would "
        "be required); this program cannot be compiled with -B");
  if (T.direction() == Dir::Horiz)
    return InstanceResolution::fail(
        "no Arith instance at " + T.str() +
        ": packed arithmetic operates vertically; use vertical slicing");
  // A parametric direction would need an instance at every direction, and
  // Arith only has vertical ones.
  if (T.direction() == Dir::Param)
    return InstanceResolution::fail(
        "no Arith instance at direction-polymorphic type " + T.str() +
        ": arithmetic instances exist only at direction V");
  if (!Target.supportsVerticalArith(W.Bits))
    return InstanceResolution::fail(
        "no Arith instance at " + T.str() + " on " + Target.Name +
        ": packed " + std::to_string(W.Bits) +
        "-bit arithmetic is not available on this instruction set");
  return InstanceResolution::ok(InstanceImpl::Native);
}

static InstanceResolution resolveShiftBase(const Type &T,
                                           const Arch &Target) {
  WordSize W = T.wordSize();
  assert(!W.IsParam && "shift resolution requires a concrete word size");
  if (W.Bits == 1)
    return InstanceResolution::fail(
        "no Shift instance at " + T.str() +
        ": a single bit cannot be shifted; shift the enclosing vector "
        "instead (which is free)");
  switch (T.direction()) {
  case Dir::Vert:
    if (Target.supportsVerticalShift(W.Bits))
      return InstanceResolution::ok(InstanceImpl::Native);
    return InstanceResolution::fail(
        "no Shift instance at " + T.str() + " on " + Target.Name +
        ": packed " + std::to_string(W.Bits) +
        "-bit shifts are not available on this instruction set");
  case Dir::Horiz:
    if (Target.supportsHorizontalShift(W.Bits))
      return InstanceResolution::ok(InstanceImpl::Native);
    return InstanceResolution::fail(
        "no Shift instance at " + T.str() + " on " + Target.Name +
        ": element shuffles at " + std::to_string(W.Bits) +
        " elements are not available on this instruction set");
  case Dir::Param:
    // Table 1: Shift(uV'm), Shift(uH'm) => Shift(u'D'm); remaining
    // parametric after monomorphization means both must exist.
    if (Target.supportsVerticalShift(W.Bits) &&
        Target.supportsHorizontalShift(W.Bits))
      return InstanceResolution::ok(InstanceImpl::Native);
    return InstanceResolution::fail(
        "no Shift instance at direction-polymorphic type " + T.str() +
        " on " + std::string(Target.Name));
  }
  return InstanceResolution::fail("unreachable");
}

InstanceResolution usuba::resolveInstance(OpClass C, const Type &T,
                                          const Arch &Target) {
  assert(!T.isNat() && "operators do not apply to nat");
  if (T.isVector()) {
    // Shifting a vector renames its elements: 0 instructions, always
    // available (Table 1, first Shift row).
    if (C == OpClass::Shift)
      return InstanceResolution::ok(InstanceImpl::Renaming);
    // Logic(τ) => Logic(τ[n]) and Arith(τ) => Arith(τ[n]): homomorphic
    // application, provided the element instance exists.
    InstanceResolution Elem = resolveInstance(C, T.elementType(), Target);
    if (!Elem.Found)
      return Elem;
    return InstanceResolution::ok(InstanceImpl::Homomorphic);
  }
  switch (C) {
  case OpClass::Logic:
    return resolveLogicBase(T, Target);
  case OpClass::Arith:
    return resolveArithBase(T, Target);
  case OpClass::Shift:
    return resolveShiftBase(T, Target);
  }
  return InstanceResolution::fail("unreachable");
}
