//===- Type.h - Usuba surface and distilled types ---------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Usuba type grammar of the paper (Section 2.3):
///
/// \code
///   τ ::= u<D><m>        base type: word of m bits, direction D
///       | τ[n]           vector of n elements
///       | nat            compile-time integer (shift amounts, indices)
///   m ::= 'm | n         parametric or fixed word size
///   D ::= 'D | V | H     parametric, vertical or horizontal direction
/// \endcode
///
/// Surface abbreviations (resolved by the parser): `um` = u'D m,
/// `bn` = u'D1[n], `vn` = u'D'm[n]. The matricial type uDm×n of the paper
/// is represented as the vector type uDm[n]: the paper itself notes that
/// after type checking both collapse to the same distilled type.
///
/// After monomorphization every type is *distilled*: direction and word
/// size are concrete and nested vectors are flattened, so each variable has
/// shape uDm[L] for concrete D, m, L.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_TYPES_TYPE_H
#define USUBA_TYPES_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

namespace usuba {

/// Slicing direction of a base type (paper Figure 2).
enum class Dir : uint8_t {
  Param, ///< 'D — direction-polymorphic (Boolean circuits)
  Vert,  ///< V — vertical slicing (packed-element SIMD ops)
  Horiz, ///< H — horizontal slicing (intra-register shuffles)
};

/// Renders "'D", "V" or "H".
const char *dirName(Dir D);

/// Word size of a base type: either the parameter 'm or a fixed positive
/// number of bits.
struct WordSize {
  bool IsParam = true; ///< true for 'm
  unsigned Bits = 0;   ///< meaningful only when !IsParam

  static WordSize param() { return {true, 0}; }
  static WordSize fixed(unsigned Bits) {
    assert(Bits >= 1 && "word size must be positive");
    return {false, Bits};
  }

  friend bool operator==(const WordSize &A, const WordSize &B) {
    return A.IsParam == B.IsParam && (A.IsParam || A.Bits == B.Bits);
  }
};

/// An Usuba type. Value-semantic; vectors share their element type through
/// a const shared_ptr, so copies are cheap.
class Type {
public:
  enum class Kind : uint8_t { Base, Vector, Nat };

  /// Builds the base type u<D><m>.
  static Type base(Dir D, WordSize M) {
    Type T(Kind::Base);
    T.Direction = D;
    T.Word = M;
    return T;
  }
  /// Builds the vector type Elem[Len].
  static Type vector(Type Elem, unsigned Len) {
    assert(Len >= 1 && "vector length must be positive");
    Type T(Kind::Vector);
    T.Elem = std::make_shared<const Type>(std::move(Elem));
    T.Len = Len;
    return T;
  }
  /// Builds the compile-time integer type.
  static Type nat() { return Type(Kind::Nat); }

  Kind kind() const { return K; }
  bool isBase() const { return K == Kind::Base; }
  bool isVector() const { return K == Kind::Vector; }
  bool isNat() const { return K == Kind::Nat; }

  Dir direction() const {
    assert(isBase() && "direction of non-base type");
    return Direction;
  }
  WordSize wordSize() const {
    assert(isBase() && "word size of non-base type");
    return Word;
  }
  const Type &elementType() const {
    assert(isVector() && "element type of non-vector");
    return *Elem;
  }
  unsigned length() const {
    assert(isVector() && "length of non-vector");
    return Len;
  }

  /// True if the type mentions the word-size parameter 'm or the direction
  /// parameter 'D anywhere.
  bool isPolymorphic() const;

  /// Total number of base-type elements after full flattening: 1 for a
  /// base type, product of vector lengths otherwise.
  unsigned flattenedLength() const;

  /// The innermost base type (asserts the type is not nat).
  const Type &scalarType() const;

  /// Total number of *bits* in one block of this type: word size times
  /// flattened length. Only valid for monomorphic types.
  unsigned bitWidth() const;

  /// Structural equality (parameters only equal parameters).
  friend bool operator==(const Type &A, const Type &B);
  friend bool operator!=(const Type &A, const Type &B) { return !(A == B); }

  /// Renders the type in surface syntax, e.g. "uV16[4]" or "u'D'm[3]".
  std::string str() const;

private:
  explicit Type(Kind K) : K(K) {}

  Kind K;
  // Base payload.
  Dir Direction = Dir::Param;
  WordSize Word = WordSize::param();
  // Vector payload.
  std::shared_ptr<const Type> Elem;
  unsigned Len = 0;
};

/// Structural type equality (see the friend declaration in Type).
bool operator==(const Type &A, const Type &B);

/// Substitutes concrete values for the type parameters: 'D -> D and
/// 'm -> MBits (when MBits != 0). Used by monomorphization.
Type substituteType(const Type &T, Dir D, unsigned MBits);

} // namespace usuba

#endif // USUBA_TYPES_TYPE_H
