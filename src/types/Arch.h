//===- Arch.h - SIMD architecture model -------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of the target instruction sets of the paper's evaluation (x86-64
/// general-purpose registers, SSE, AVX, AVX2, AVX512). The model drives
/// type-class instance resolution (Table 1), the interleaving heuristic
/// (number of architectural registers), the m-slice scheduler (execution
/// port classes) and C code generation.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_TYPES_ARCH_H
#define USUBA_TYPES_ARCH_H

#include <cassert>
#include <cstdint>
#include <string>

namespace usuba {

enum class ArchKind : uint8_t {
  GP64,
  SSE,
  AVX,
  AVX2,
  AVX512,
  /// Arm Neon (128-bit): the paper's introduction names it among the
  /// SIMD families bitslicing scales to. Type checking and the SIMD
  /// simulator support it fully; the C backend covers the x86 family
  /// only, so Neon kernels always run on the simulator here.
  Neon,
};

/// Description of one target instruction set.
struct Arch {
  ArchKind Kind;
  const char *Name;
  /// Register width in bits (the paper distinguishes AVX, which still
  /// slices on 128 bits, from AVX2 which slices on 256).
  unsigned SliceBits;
  /// Number of architectural SIMD (or general-purpose) registers, used by
  /// the interleaving heuristic of Section 3.2.
  unsigned NumRegisters;
  /// Three-operand non-destructive instructions (VEX encoding).
  bool ThreeOperand;
  /// Packed (vertical) integer arithmetic and shifts on sub-register
  /// elements. x86-64 GPRs have none, which is why vsliced code on GP64
  /// processes a single block at a time (Section 4.3).
  bool HasVectorArith;
  /// Byte-shuffle within 128-bit lanes (pshufb/vpshufb), required by
  /// horizontal slicing.
  bool HasShuffle;
  /// vpternlogq-style 3-input Boolean instruction (AVX512), which fuses
  /// nested logic gates (Section 4.2).
  bool HasTernaryLogic;

  /// True when vertical (packed) arithmetic exists at element size MBits.
  /// Per Table 1: 8/16/32-bit arithmetic from SSE on, 64-bit from AVX2 on.
  /// On GP64 scalar arithmetic covers 8/16/32/64 bits (one slice).
  bool supportsVerticalArith(unsigned MBits) const {
    if (MBits != 8 && MBits != 16 && MBits != 32 && MBits != 64)
      return false;
    if (Kind == ArchKind::GP64)
      return true; // scalar, single-slice
    if (MBits == 64)
      return Kind == ArchKind::AVX2 || Kind == ArchKind::AVX512 ||
             Kind == ArchKind::Neon;
    return true;
  }

  /// True when vertical (packed) shifts exist at element size MBits.
  /// Table 1: uV16/uV32 from SSE, uV64 from AVX2. GP64 shifts a single
  /// scalar slice.
  bool supportsVerticalShift(unsigned MBits) const {
    if (Kind == ArchKind::GP64)
      return MBits == 8 || MBits == 16 || MBits == 32 || MBits == 64;
    if (Kind == ArchKind::Neon)
      return MBits == 8 || MBits == 16 || MBits == 32 || MBits == 64;
    if (MBits == 16 || MBits == 32)
      return true;
    if (MBits == 64)
      return Kind == ArchKind::AVX2 || Kind == ArchKind::AVX512;
    return false;
  }

  /// True when horizontal shifts/rotates (element shuffles) exist at atom
  /// size MBits. Table 1: uH2..uH16 from SSE (pshufb within a 16-byte
  /// lane), uH32/uH64 from AVX512. Bitslicing (m = 1) never reaches here:
  /// shifting a b1 is meaningless, and vector-level shifts are free.
  bool supportsHorizontalShift(unsigned MBits) const {
    if (!HasShuffle)
      return false;
    if (MBits == 2 || MBits == 4 || MBits == 8 || MBits == 16)
      return true;
    if (MBits == 32 || MBits == 64)
      return Kind == ArchKind::AVX512;
    return false;
  }

  /// Maximum word size of Table 1's Logic instances for this architecture
  /// (the register width: logic is width-agnostic).
  unsigned maxLogicWordBits() const { return SliceBits; }

  /// Number of independent cipher instances ("slices") a register holds
  /// for a given slicing. Bitslice: one per bit. Vertical: one per m-bit
  /// element, except on GP64 where the lack of packed ops forces a single
  /// slice. Horizontal: the m bits of an atom occupy m packed elements;
  /// the remaining bits of each element hold further slices.
  unsigned slicesFor(unsigned MBits, bool Horizontal) const {
    assert(MBits >= 1 && MBits <= SliceBits && "atom wider than register");
    if (MBits == 1)
      return SliceBits; // bitslicing
    if (Kind == ArchKind::GP64)
      return 1;
    (void)Horizontal;
    return SliceBits / MBits;
  }
};

/// The five targets of the paper's evaluation, plus Arm Neon.
const Arch &archGP64();
const Arch &archSSE();
const Arch &archAVX();
const Arch &archAVX2();
const Arch &archAVX512();
const Arch &archNeon();

/// Lookup by kind.
const Arch &archFor(ArchKind Kind);

/// Lookup by name ("gp64", "sse", "avx", "avx2", "avx512"), nullptr when
/// unknown. Case-insensitive.
const Arch *archByName(const std::string &Name);

/// The five x86-family architectures of the paper's evaluation, in
/// increasing capability order (Neon is looked up by name/kind and kept
/// out of the x86 scaling sweeps).
const Arch *const *allArchs(unsigned &Count);

/// Sentinel requesting runtime architecture dispatch ("auto"). It is not
/// a real target: UsubaCipher::compile resolves it against the host CPU
/// (widest supported first) before any code generation, and the compiler
/// pipeline must never see it. Its codegen fields mirror gp64 so an
/// accidental leak degrades to the safe baseline rather than emitting
/// intrinsics the host might lack.
const Arch &archAuto();

/// True when the running CPU can execute code generated for \p A
/// (CPUID feature probe; gp64 is always true, Neon is never claimed on
/// x86 hosts and the C backend does not target it anyway). The probe
/// result is computed once per feature and is cheap to re-query.
bool archSupported(const Arch &A);

/// The widest x86 architecture of the paper's evaluation the host
/// supports (falls back to gp64 when nothing wider is available, e.g. on
/// non-x86 builds). Probed once, then cached.
const Arch &archBest();

/// Human-readable one-line justification of archBest()'s choice — which
/// CPUID rungs were probed and which features decided it. Stable for the
/// process lifetime; used by dispatch remarks and `usubac -arch native`.
const char *archBestWhy();

} // namespace usuba

#endif // USUBA_TYPES_ARCH_H
