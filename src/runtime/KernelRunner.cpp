//===- KernelRunner.cpp - Batched execution of compiled kernels -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

#include <algorithm>

using namespace usuba;

KernelRunner::KernelRunner(CompiledKernel KernelIn)
    : Kernel(std::move(KernelIn)),
      Layout(Kernel.Prog.Direction, Kernel.Prog.MBits, *Kernel.Prog.Target),
      Interp(Kernel.Prog) {
  Slices = Layout.slices();
  BlocksPerCall = Slices * Kernel.Prog.InterleaveFactor;
  for (const Type &T : Kernel.ParamTypes)
    ParamLens.push_back(T.flattenedLength());
  OutLen = 0;
  for (const Type &T : Kernel.ReturnTypes) {
    ReturnLens.push_back(T.flattenedLength());
    OutLen += T.flattenedLength();
  }
  InRegs.resize(Kernel.Prog.entry().NumInputs);
  OutRegs.resize(Kernel.Prog.entry().Outputs.size());

  [[maybe_unused]] unsigned TotalIn = 0;
  for (unsigned L : ParamLens)
    TotalIn += L;
  assert(TotalIn * Kernel.Prog.InterleaveFactor ==
             Kernel.Prog.entry().NumInputs &&
         "parameter shapes disagree with the kernel ABI");
}

void KernelRunner::kernelOnly() {
  if (Native) {
    const unsigned W = Layout.widthWords();
    if (DenseIn.empty()) {
      DenseIn.resize(size_t{W} * InRegs.size());
      DenseOut.resize(size_t{W} * OutRegs.size());
    }
    Native(DenseIn.data(), DenseOut.data());
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
}

void KernelRunner::runNativeStaged() {
  // The native ABI is dense: widthWords() words per register.
  const unsigned W = Layout.widthWords();
  if (DenseIn.empty()) {
    DenseIn.resize(size_t{W} * InRegs.size());
    DenseOut.resize(size_t{W} * OutRegs.size());
  }
  for (size_t I = 0; I < InRegs.size(); ++I)
    for (unsigned J = 0; J < W; ++J)
      DenseIn[I * W + J] = InRegs[I].Words[J];
  Native(DenseIn.data(), DenseOut.data());
  for (size_t I = 0; I < OutRegs.size(); ++I) {
    OutRegs[I] = SimdReg{};
    for (unsigned J = 0; J < W; ++J)
      OutRegs[I].Words[J] = DenseOut[I * W + J];
  }
}

void KernelRunner::runBatch(const std::vector<ParamData> &Params,
                            uint64_t *OutAtoms) {
  assert(Params.size() == ParamLens.size() && "wrong parameter count");
  const unsigned K = Kernel.Prog.InterleaveFactor;

  // Pack: interleave instance t consumes blocks [t*Slices, (t+1)*Slices).
  unsigned Reg = 0;
  for (unsigned T = 0; T < K; ++T) {
    for (size_t P = 0; P < Params.size(); ++P) {
      unsigned Len = ParamLens[P];
      if (Params[P].Broadcast)
        Layout.packBroadcast(Params[P].Atoms, Len, &InRegs[Reg]);
      else
        Layout.pack(Params[P].Atoms + size_t{T} * Slices * Len, Len,
                    &InRegs[Reg]);
      Reg += Len;
    }
  }

  // Unpack: outputs of instance t are the t-th group of return registers.
  auto UnpackInto = [&](const SimdReg *Regs, uint64_t *Atoms) {
    for (unsigned T = 0; T < K; ++T)
      Layout.unpack(Regs + size_t{T} * OutLen, OutLen,
                    Atoms + size_t{T} * Slices * OutLen);
  };

  if (Native && !SelfChecked) {
    // First-batch differential self-check (the last rung guard of the
    // degradation ladder): run the batch on both engines and compare
    // the unpacked atoms — a miscompiled or ABI-confused native kernel
    // is demoted before any wrong ciphertext escapes. One extra
    // interpreter run on the first batch only.
    SelfChecked = true;
    runNativeStaged();
    std::vector<SimdReg> RefRegs(OutRegs.size());
    Interp.run(InRegs.data(), RefRegs.data());
    std::vector<uint64_t> NativeAtoms(size_t{BlocksPerCall} * OutLen);
    UnpackInto(OutRegs.data(), NativeAtoms.data());
    UnpackInto(RefRegs.data(), OutAtoms);
    if (std::equal(NativeAtoms.begin(), NativeAtoms.end(), OutAtoms))
      return;
    Native = nullptr;
    OutRegs = std::move(RefRegs);
    noteFallback("self-check: native kernel output disagrees with the "
                 "interpreter on the first batch");
    return; // OutAtoms already holds the interpreter's (trusted) result
  }

  if (Native)
    runNativeStaged();
  else
    Interp.run(InRegs.data(), OutRegs.data());
  UnpackInto(OutRegs.data(), OutAtoms);
}
