//===- KernelRunner.cpp - Batched execution of compiled kernels -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

#include "support/BitUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstring>

using namespace usuba;

const char *usuba::engineFallbackName(EngineFallback Kind) {
  switch (Kind) {
  case EngineFallback::None:
    return "none";
  case EngineFallback::NativeDisabled:
    return "native-disabled";
  case EngineFallback::HostUnsupported:
    return "host-unsupported";
  case EngineFallback::NoCompiler:
    return "no-compiler";
  case EngineFallback::WriteFailed:
    return "write-failed";
  case EngineFallback::CompileFailed:
    return "compile-failed";
  case EngineFallback::Timeout:
    return "timeout";
  case EngineFallback::LoadFailed:
    return "load-failed";
  case EngineFallback::SymbolMissing:
    return "symbol-missing";
  case EngineFallback::SelfCheckMismatch:
    return "self-check-mismatch";
  }
  return "?";
}

KernelRunner::KernelRunner(CompiledKernel KernelIn)
    : Kernel(std::move(KernelIn)),
      Layout(Kernel.Prog.Direction, Kernel.Prog.MBits, *Kernel.Prog.Target),
      Interp(Kernel.Prog) {
  Slices = Layout.slices();
  BlocksPerCall = Slices * Kernel.Prog.InterleaveFactor;
  for (const Type &T : Kernel.ParamTypes)
    ParamLens.push_back(T.flattenedLength());
  OutLen = 0;
  for (const Type &T : Kernel.ReturnTypes) {
    ReturnLens.push_back(T.flattenedLength());
    OutLen += T.flattenedLength();
  }
  InRegs.resize(Kernel.Prog.entry().NumInputs);
  OutRegs.resize(Kernel.Prog.entry().Outputs.size());
  // The dense native-ABI buffers are allocated (zeroed) up front so
  // kernelOnly() is deterministic even before the first batch.
  const unsigned W = Layout.widthWords();
  DenseIn.resize(size_t{W} * InRegs.size());
  DenseOut.resize(size_t{W} * OutRegs.size());
  Broadcasts.resize(ParamLens.size());

  invalidateCtrState();

  [[maybe_unused]] unsigned TotalIn = 0;
  for (unsigned L : ParamLens)
    TotalIn += L;
  assert(TotalIn * Kernel.Prog.InterleaveFactor ==
             Kernel.Prog.entry().NumInputs &&
         "parameter shapes disagree with the kernel ABI");
}

std::unique_ptr<KernelRunner> KernelRunner::clone() const {
  auto Copy = std::make_unique<KernelRunner>(Kernel);
  if (Native) {
    Copy->setNativeFn(Native); // re-arms the clone's own self-check
  } else {
    Copy->FallbackReason = FallbackReason;
    Copy->FallbackKind = FallbackKind;
  }
  return Copy;
}

void KernelRunner::kernelOnly() {
  if (Native) {
    Native(DenseIn.data(), DenseOut.data());
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
}

namespace {
/// One enabled-ness decision per batch: cycle reads and counter flushes
/// only happen in profiling mode; the disabled path costs one relaxed
/// load at construction.
struct BatchProfile {
  BatchProfile() : On(telemetryEnabled()), Last(On ? telemetryCycles() : 0) {}
  /// Attributes the cycles since the previous mark to \p Counter.
  void mark(const char *Counter) {
    if (!On)
      return;
    uint64_t Now = telemetryCycles();
    Telemetry::instance().count(Counter, Now - Last);
    Last = Now;
  }
  const bool On;
  uint64_t Last;
};
} // namespace

void KernelRunner::packInputs(const std::vector<ParamData> &Params,
                              bool IntoDense, bool IntoRegs) {
  const unsigned K = Kernel.Prog.InterleaveFactor;
  const unsigned W = Layout.widthWords();

  // Decide per-parameter whether the broadcast cache already covers the
  // requested buffers (a broadcast's registers are identical across
  // interleave instances and batches).
  for (size_t P = 0; P < Params.size(); ++P) {
    BroadcastSlot &Slot = Broadcasts[P];
    if (!Params[P].Broadcast) {
      Slot = BroadcastSlot{};
      continue;
    }
    if (Slot.Atoms != Params[P].Atoms || Slot.Epoch != Params[P].Epoch) {
      Slot.Atoms = Params[P].Atoms;
      Slot.Epoch = Params[P].Epoch;
      Slot.InDense = Slot.InRegs = false;
    }
  }

  // Pack: interleave instance t consumes blocks [t*Slices, (t+1)*Slices).
  unsigned Reg = 0;
  for (unsigned T = 0; T < K; ++T) {
    for (size_t P = 0; P < Params.size(); ++P) {
      const unsigned Len = ParamLens[P];
      const ParamData &Param = Params[P];
      if (Param.Broadcast) {
        BroadcastSlot &Slot = Broadcasts[P];
        if (IntoDense && !Slot.InDense)
          Layout.packBroadcastDense(Param.Atoms, Len,
                                    &DenseIn[size_t{Reg} * W]);
        if (IntoRegs && !Slot.InRegs)
          Layout.packBroadcast(Param.Atoms, Len, &InRegs[Reg]);
      } else {
        const uint64_t *Blocks = Param.Atoms + size_t{T} * Slices * Len;
        if (IntoDense)
          Layout.packDense(Blocks, Len, &DenseIn[size_t{Reg} * W]);
        if (IntoRegs)
          Layout.pack(Blocks, Len, &InRegs[Reg]);
      }
      Reg += Len;
    }
  }
  for (size_t P = 0; P < Params.size(); ++P)
    if (Params[P].Broadcast) {
      Broadcasts[P].InDense = Broadcasts[P].InDense || IntoDense;
      Broadcasts[P].InRegs = Broadcasts[P].InRegs || IntoRegs;
    }
}

void KernelRunner::runBatch(const std::vector<ParamData> &Params,
                            uint64_t *OutAtoms) {
  assert(Params.size() == ParamLens.size() && "wrong parameter count");
  // The generic pack overwrites parameter 0's registers, so the CTR fast
  // path's incremental counter slices are no longer what it wrote.
  invalidateCtrState();
  const unsigned K = Kernel.Prog.InterleaveFactor;
  const unsigned W = Layout.widthWords();
  const bool WantNative = Native != nullptr;
  const bool Check = WantNative && !SelfChecked;

  BatchProfile Profile;
  if (Profile.On)
    Telemetry::instance().count("runner.batches", 1);

  // Zero-copy data path: the native rung packs straight into the dense
  // ABI buffer (no SimdReg staging); the interpreter rung packs into
  // SimdRegs. The first native batch packs both for the differential
  // self-check.
  packInputs(Params, /*IntoDense=*/WantNative, /*IntoRegs=*/!WantNative ||
                                                   Check);
  Profile.mark("runner.pack_cycles");

  auto UnpackRegs = [&](const SimdReg *Regs, uint64_t *Atoms) {
    for (unsigned T = 0; T < K; ++T)
      Layout.unpack(Regs + size_t{T} * OutLen, OutLen,
                    Atoms + size_t{T} * Slices * OutLen);
  };
  auto UnpackDense = [&](const uint64_t *Dense, uint64_t *Atoms) {
    for (unsigned T = 0; T < K; ++T)
      Layout.unpackDense(Dense + size_t{T} * OutLen * W, OutLen,
                         Atoms + size_t{T} * Slices * OutLen);
  };

  if (Check) {
    // First-batch differential self-check (the last rung guard of the
    // degradation ladder): run the batch on both engines and compare
    // the unpacked atoms — a miscompiled or ABI-confused native kernel
    // is demoted before any wrong ciphertext escapes. One extra
    // interpreter run on the first batch only.
    SelfChecked = true;
    Native(DenseIn.data(), DenseOut.data());
    Interp.run(InRegs.data(), OutRegs.data());
    std::vector<uint64_t> NativeAtoms(size_t{BlocksPerCall} * OutLen);
    UnpackDense(DenseOut.data(), NativeAtoms.data());
    UnpackRegs(OutRegs.data(), OutAtoms);
    if (std::equal(NativeAtoms.begin(), NativeAtoms.end(), OutAtoms))
      return;
    Native = nullptr;
    if (Profile.On)
      Telemetry::instance().count("runner.selfcheck_demotions", 1);
    noteFallback(EngineFallback::SelfCheckMismatch,
                 "self-check: native kernel output disagrees with the "
                 "interpreter on the first batch");
    return; // OutAtoms already holds the interpreter's (trusted) result
  }

  if (WantNative) {
    Native(DenseIn.data(), DenseOut.data());
    Profile.mark("runner.kernel_cycles");
    UnpackDense(DenseOut.data(), OutAtoms);
    Profile.mark("runner.unpack_cycles");
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
  Profile.mark("runner.kernel_cycles");
  UnpackRegs(OutRegs.data(), OutAtoms);
  Profile.mark("runner.unpack_cycles");
}

namespace {

/// Canonical[j] bit t == bit j of t, for t in [0, 64). The low six bits
/// of Base + t cycle with period 64, so every low counter slice is one of
/// these words rotated by Base mod 64 — identical across word columns.
constexpr uint64_t CtrCanonical[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

} // namespace

void KernelRunner::runCtrBatch(const CtrPerm &Perm, uint64_t Base,
                               const ParamData &Key, uint8_t *Data,
                               size_t Bytes) {
  assert(ctrFastReady() && "caller must check ctrFastReady()");
  assert(Bytes >= 1 && Bytes <= size_t{BlocksPerCall} * 8 &&
         "byte count out of range");
  const unsigned W = Layout.widthWords(); // 64-block word columns
  const bool IntoDense = Native != nullptr;

  BatchProfile Profile;
  if (Profile.On) {
    Telemetry::instance().count("runner.batches", 1);
    Telemetry::instance().count("runner.ctr_fast_batches", 1);
  }

  // Both engines expose their registers as raw words: the dense ABI
  // buffer at stride widthWords(), the SimdReg array at stride MaxWords.
  uint64_t *InWords = IntoDense ? DenseIn.data()
                                : reinterpret_cast<uint64_t *>(InRegs.data());
  const unsigned InStride = IntoDense ? W : SimdReg::MaxWords;
  if (CtrIntoDense != IntoDense) {
    invalidateCtrState();
    CtrIntoDense = IntoDense;
  }

  // Broadcast key, cached across batches exactly like runBatch's path.
  const unsigned KeyReg = ParamLens[0];
  BroadcastSlot &Slot = Broadcasts[1];
  if (Slot.Atoms != Key.Atoms || Slot.Epoch != Key.Epoch) {
    Slot.Atoms = Key.Atoms;
    Slot.Epoch = Key.Epoch;
    Slot.InDense = Slot.InRegs = false;
  }
  if (IntoDense && !Slot.InDense) {
    Layout.packBroadcastDense(Key.Atoms, ParamLens[1],
                              &DenseIn[size_t{KeyReg} * W]);
    Slot.InDense = true;
  } else if (!IntoDense && !Slot.InRegs) {
    Layout.packBroadcast(Key.Atoms, ParamLens[1], &InRegs[KeyReg]);
    Slot.InRegs = true;
  }

  // Counter bits 0..5: one rotated canonical word per slice, shared by
  // every column. Invariant while Base mod 64 is unchanged — sequential
  // CTR advances Base by a whole batch (a multiple of 64), so after the
  // first batch these slices are never rewritten.
  const int LowShift = static_cast<int>(Base & 63);
  if (CtrLowShift != LowShift) {
    for (unsigned J = 0; J < 6; ++J) {
      const uint64_t Word =
          rotateRight(CtrCanonical[J], static_cast<unsigned>(LowShift), 64);
      uint64_t *Dst = InWords + size_t{Perm.InSlice[J]} * InStride;
      for (unsigned Col = 0; Col < W; ++Col)
        Dst[Col] = Word;
    }
    CtrLowShift = LowShift;
  }

  // Counter bits 6..63: adding t < 64 carries into bit j at most once, so
  // each column word is a broadcast of bit j of the column base or an at
  // most two-segment word splitting where the low j bits wrap. A slice
  // that is a batch-wide broadcast of the same bit it held last batch is
  // skipped — with a 2^k-block batch, slice j changes only every
  // 2^(j-k) batches.
  for (unsigned J = 6; J < 64; ++J) {
    const uint64_t Bit = (Base >> J) & 1;
    const uint64_t Last = Base + (uint64_t{W} * 64 - 1);
    const bool BatchConstant = Base <= Last && (Base >> J) == (Last >> J);
    const int8_t NewState = BatchConstant ? static_cast<int8_t>(Bit) : -1;
    if (NewState >= 0 && CtrHigh[J] == NewState)
      continue;
    uint64_t *Dst = InWords + size_t{Perm.InSlice[J]} * InStride;
    if (NewState >= 0) {
      const uint64_t Word = Bit ? ~uint64_t{0} : 0;
      for (unsigned Col = 0; Col < W; ++Col)
        Dst[Col] = Word;
    } else {
      const uint64_t LowMask = lowBitMask(J);
      for (unsigned Col = 0; Col < W; ++Col) {
        const uint64_t B0 = Base + uint64_t{Col} * 64;
        const uint64_t V = (B0 >> J) & 1;
        // First t with a carry into bit j; >= 64 means no flip here.
        const uint64_t Flip = (uint64_t{1} << J) - (B0 & LowMask);
        uint64_t Word;
        if (Flip >= 64)
          Word = V ? ~uint64_t{0} : 0;
        else
          Word = V ? lowBitMask(static_cast<unsigned>(Flip))
                   : ~lowBitMask(static_cast<unsigned>(Flip));
        Dst[Col] = Word;
      }
    }
    CtrHigh[J] = NewState;
  }
  Profile.mark("runner.pack_cycles");

  if (IntoDense)
    Native(DenseIn.data(), DenseOut.data());
  else
    Interp.run(InRegs.data(), OutRegs.data());
  Profile.mark("runner.kernel_cycles");

  // Fused untransposition + keystream XOR: gather each column's 64
  // output words in block-integer bit order, transpose once, and XOR the
  // per-block big-endian integers straight into the data.
  const uint64_t *OutWords =
      IntoDense ? DenseOut.data()
                : reinterpret_cast<const uint64_t *>(OutRegs.data());
  const unsigned OutStride = IntoDense ? W : SimdReg::MaxWords;
  const size_t NumBlocks = (Bytes + 7) / 8;
  for (unsigned Col = 0; Col < W && size_t{Col} * 64 < NumBlocks; ++Col) {
    uint64_t M[64];
    for (unsigned J = 0; J < 64; ++J)
      M[J] = OutWords[size_t{Perm.OutSlice[J]} * OutStride + Col];
    // Row j bit b = keystream bit j of block Col*64+b; transposing makes
    // row b that block's big-endian keystream integer.
    transpose64x64(M);
    const size_t Block0 = size_t{Col} * 64;
    const size_t BlockN = std::min<size_t>(64, NumBlocks - Block0);
    uint8_t *Dst = Data + Block0 * 8;
    for (size_t B = 0; B < BlockN; ++B) {
      const uint64_t Ks = byteSwap64(M[B]); // BE integer -> LE host words
      uint8_t *P = Dst + B * 8;
      const size_t Avail = Bytes - (Block0 + B) * 8;
      if (Avail >= 8) {
        uint64_t D;
        std::memcpy(&D, P, 8);
        D ^= Ks;
        std::memcpy(P, &D, 8);
      } else {
        uint8_t KsBytes[8];
        std::memcpy(KsBytes, &Ks, 8);
        for (size_t I = 0; I < Avail; ++I)
          P[I] ^= KsBytes[I];
      }
    }
  }
  Profile.mark("runner.unpack_cycles");
}
