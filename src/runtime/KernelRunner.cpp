//===- KernelRunner.cpp - Batched execution of compiled kernels -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace usuba;

const char *usuba::engineFallbackName(EngineFallback Kind) {
  switch (Kind) {
  case EngineFallback::None:
    return "none";
  case EngineFallback::NativeDisabled:
    return "native-disabled";
  case EngineFallback::HostUnsupported:
    return "host-unsupported";
  case EngineFallback::NoCompiler:
    return "no-compiler";
  case EngineFallback::WriteFailed:
    return "write-failed";
  case EngineFallback::CompileFailed:
    return "compile-failed";
  case EngineFallback::Timeout:
    return "timeout";
  case EngineFallback::LoadFailed:
    return "load-failed";
  case EngineFallback::SymbolMissing:
    return "symbol-missing";
  case EngineFallback::SelfCheckMismatch:
    return "self-check-mismatch";
  }
  return "?";
}

KernelRunner::KernelRunner(CompiledKernel KernelIn)
    : Kernel(std::move(KernelIn)),
      Layout(Kernel.Prog.Direction, Kernel.Prog.MBits, *Kernel.Prog.Target),
      Interp(Kernel.Prog) {
  Slices = Layout.slices();
  BlocksPerCall = Slices * Kernel.Prog.InterleaveFactor;
  for (const Type &T : Kernel.ParamTypes)
    ParamLens.push_back(T.flattenedLength());
  OutLen = 0;
  for (const Type &T : Kernel.ReturnTypes) {
    ReturnLens.push_back(T.flattenedLength());
    OutLen += T.flattenedLength();
  }
  InRegs.resize(Kernel.Prog.entry().NumInputs);
  OutRegs.resize(Kernel.Prog.entry().Outputs.size());
  // The dense native-ABI buffers are allocated (zeroed) up front so
  // kernelOnly() is deterministic even before the first batch.
  const unsigned W = Layout.widthWords();
  DenseIn.resize(size_t{W} * InRegs.size());
  DenseOut.resize(size_t{W} * OutRegs.size());
  Broadcasts.resize(ParamLens.size());

  [[maybe_unused]] unsigned TotalIn = 0;
  for (unsigned L : ParamLens)
    TotalIn += L;
  assert(TotalIn * Kernel.Prog.InterleaveFactor ==
             Kernel.Prog.entry().NumInputs &&
         "parameter shapes disagree with the kernel ABI");
}

std::unique_ptr<KernelRunner> KernelRunner::clone() const {
  auto Copy = std::make_unique<KernelRunner>(Kernel);
  if (Native) {
    Copy->setNativeFn(Native); // re-arms the clone's own self-check
  } else {
    Copy->FallbackReason = FallbackReason;
    Copy->FallbackKind = FallbackKind;
  }
  return Copy;
}

void KernelRunner::kernelOnly() {
  if (Native) {
    Native(DenseIn.data(), DenseOut.data());
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
}

namespace {
/// One enabled-ness decision per batch: cycle reads and counter flushes
/// only happen in profiling mode; the disabled path costs one relaxed
/// load at construction.
struct BatchProfile {
  BatchProfile() : On(telemetryEnabled()), Last(On ? telemetryCycles() : 0) {}
  /// Attributes the cycles since the previous mark to \p Counter.
  void mark(const char *Counter) {
    if (!On)
      return;
    uint64_t Now = telemetryCycles();
    Telemetry::instance().count(Counter, Now - Last);
    Last = Now;
  }
  const bool On;
  uint64_t Last;
};
} // namespace

void KernelRunner::packInputs(const std::vector<ParamData> &Params,
                              bool IntoDense, bool IntoRegs) {
  const unsigned K = Kernel.Prog.InterleaveFactor;
  const unsigned W = Layout.widthWords();

  // Decide per-parameter whether the broadcast cache already covers the
  // requested buffers (a broadcast's registers are identical across
  // interleave instances and batches).
  for (size_t P = 0; P < Params.size(); ++P) {
    BroadcastSlot &Slot = Broadcasts[P];
    if (!Params[P].Broadcast) {
      Slot = BroadcastSlot{};
      continue;
    }
    if (Slot.Atoms != Params[P].Atoms || Slot.Epoch != Params[P].Epoch) {
      Slot.Atoms = Params[P].Atoms;
      Slot.Epoch = Params[P].Epoch;
      Slot.InDense = Slot.InRegs = false;
    }
  }

  // Pack: interleave instance t consumes blocks [t*Slices, (t+1)*Slices).
  unsigned Reg = 0;
  for (unsigned T = 0; T < K; ++T) {
    for (size_t P = 0; P < Params.size(); ++P) {
      const unsigned Len = ParamLens[P];
      const ParamData &Param = Params[P];
      if (Param.Broadcast) {
        BroadcastSlot &Slot = Broadcasts[P];
        if (IntoDense && !Slot.InDense)
          Layout.packBroadcastDense(Param.Atoms, Len,
                                    &DenseIn[size_t{Reg} * W]);
        if (IntoRegs && !Slot.InRegs)
          Layout.packBroadcast(Param.Atoms, Len, &InRegs[Reg]);
      } else {
        const uint64_t *Blocks = Param.Atoms + size_t{T} * Slices * Len;
        if (IntoDense)
          Layout.packDense(Blocks, Len, &DenseIn[size_t{Reg} * W]);
        if (IntoRegs)
          Layout.pack(Blocks, Len, &InRegs[Reg]);
      }
      Reg += Len;
    }
  }
  for (size_t P = 0; P < Params.size(); ++P)
    if (Params[P].Broadcast) {
      Broadcasts[P].InDense = Broadcasts[P].InDense || IntoDense;
      Broadcasts[P].InRegs = Broadcasts[P].InRegs || IntoRegs;
    }
}

void KernelRunner::runBatch(const std::vector<ParamData> &Params,
                            uint64_t *OutAtoms) {
  assert(Params.size() == ParamLens.size() && "wrong parameter count");
  const unsigned K = Kernel.Prog.InterleaveFactor;
  const unsigned W = Layout.widthWords();
  const bool WantNative = Native != nullptr;
  const bool Check = WantNative && !SelfChecked;

  BatchProfile Profile;
  if (Profile.On)
    Telemetry::instance().count("runner.batches", 1);

  // Zero-copy data path: the native rung packs straight into the dense
  // ABI buffer (no SimdReg staging); the interpreter rung packs into
  // SimdRegs. The first native batch packs both for the differential
  // self-check.
  packInputs(Params, /*IntoDense=*/WantNative, /*IntoRegs=*/!WantNative ||
                                                   Check);
  Profile.mark("runner.pack_cycles");

  auto UnpackRegs = [&](const SimdReg *Regs, uint64_t *Atoms) {
    for (unsigned T = 0; T < K; ++T)
      Layout.unpack(Regs + size_t{T} * OutLen, OutLen,
                    Atoms + size_t{T} * Slices * OutLen);
  };
  auto UnpackDense = [&](const uint64_t *Dense, uint64_t *Atoms) {
    for (unsigned T = 0; T < K; ++T)
      Layout.unpackDense(Dense + size_t{T} * OutLen * W, OutLen,
                         Atoms + size_t{T} * Slices * OutLen);
  };

  if (Check) {
    // First-batch differential self-check (the last rung guard of the
    // degradation ladder): run the batch on both engines and compare
    // the unpacked atoms — a miscompiled or ABI-confused native kernel
    // is demoted before any wrong ciphertext escapes. One extra
    // interpreter run on the first batch only.
    SelfChecked = true;
    Native(DenseIn.data(), DenseOut.data());
    Interp.run(InRegs.data(), OutRegs.data());
    std::vector<uint64_t> NativeAtoms(size_t{BlocksPerCall} * OutLen);
    UnpackDense(DenseOut.data(), NativeAtoms.data());
    UnpackRegs(OutRegs.data(), OutAtoms);
    if (std::equal(NativeAtoms.begin(), NativeAtoms.end(), OutAtoms))
      return;
    Native = nullptr;
    if (Profile.On)
      Telemetry::instance().count("runner.selfcheck_demotions", 1);
    noteFallback(EngineFallback::SelfCheckMismatch,
                 "self-check: native kernel output disagrees with the "
                 "interpreter on the first batch");
    return; // OutAtoms already holds the interpreter's (trusted) result
  }

  if (WantNative) {
    Native(DenseIn.data(), DenseOut.data());
    Profile.mark("runner.kernel_cycles");
    UnpackDense(DenseOut.data(), OutAtoms);
    Profile.mark("runner.unpack_cycles");
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
  Profile.mark("runner.kernel_cycles");
  UnpackRegs(OutRegs.data(), OutAtoms);
  Profile.mark("runner.unpack_cycles");
}
