//===- KernelRunner.cpp - Batched execution of compiled kernels -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelRunner.h"

using namespace usuba;

KernelRunner::KernelRunner(CompiledKernel KernelIn)
    : Kernel(std::move(KernelIn)),
      Layout(Kernel.Prog.Direction, Kernel.Prog.MBits, *Kernel.Prog.Target),
      Interp(Kernel.Prog) {
  Slices = Layout.slices();
  BlocksPerCall = Slices * Kernel.Prog.InterleaveFactor;
  for (const Type &T : Kernel.ParamTypes)
    ParamLens.push_back(T.flattenedLength());
  OutLen = 0;
  for (const Type &T : Kernel.ReturnTypes) {
    ReturnLens.push_back(T.flattenedLength());
    OutLen += T.flattenedLength();
  }
  InRegs.resize(Kernel.Prog.entry().NumInputs);
  OutRegs.resize(Kernel.Prog.entry().Outputs.size());

  [[maybe_unused]] unsigned TotalIn = 0;
  for (unsigned L : ParamLens)
    TotalIn += L;
  assert(TotalIn * Kernel.Prog.InterleaveFactor ==
             Kernel.Prog.entry().NumInputs &&
         "parameter shapes disagree with the kernel ABI");
}

void KernelRunner::kernelOnly() {
  if (Native) {
    const unsigned W = Layout.widthWords();
    if (DenseIn.empty()) {
      DenseIn.resize(size_t{W} * InRegs.size());
      DenseOut.resize(size_t{W} * OutRegs.size());
    }
    Native(DenseIn.data(), DenseOut.data());
    return;
  }
  Interp.run(InRegs.data(), OutRegs.data());
}

void KernelRunner::runBatch(const std::vector<ParamData> &Params,
                            uint64_t *OutAtoms) {
  assert(Params.size() == ParamLens.size() && "wrong parameter count");
  const unsigned K = Kernel.Prog.InterleaveFactor;

  // Pack: interleave instance t consumes blocks [t*Slices, (t+1)*Slices).
  unsigned Reg = 0;
  for (unsigned T = 0; T < K; ++T) {
    for (size_t P = 0; P < Params.size(); ++P) {
      unsigned Len = ParamLens[P];
      if (Params[P].Broadcast)
        Layout.packBroadcast(Params[P].Atoms, Len, &InRegs[Reg]);
      else
        Layout.pack(Params[P].Atoms + size_t{T} * Slices * Len, Len,
                    &InRegs[Reg]);
      Reg += Len;
    }
  }

  if (Native) {
    // The native ABI is dense: widthWords() words per register.
    const unsigned W = Layout.widthWords();
    if (DenseIn.empty()) {
      DenseIn.resize(size_t{W} * InRegs.size());
      DenseOut.resize(size_t{W} * OutRegs.size());
    }
    for (size_t I = 0; I < InRegs.size(); ++I)
      for (unsigned J = 0; J < W; ++J)
        DenseIn[I * W + J] = InRegs[I].Words[J];
    Native(DenseIn.data(), DenseOut.data());
    for (size_t I = 0; I < OutRegs.size(); ++I) {
      OutRegs[I] = SimdReg{};
      for (unsigned J = 0; J < W; ++J)
        OutRegs[I].Words[J] = DenseOut[I * W + J];
    }
  } else {
    Interp.run(InRegs.data(), OutRegs.data());
  }

  // Unpack: outputs of instance t are the t-th group of return registers.
  for (unsigned T = 0; T < K; ++T)
    Layout.unpack(&OutRegs[size_t{T} * OutLen], OutLen,
                  OutAtoms + size_t{T} * Slices * OutLen);
}
