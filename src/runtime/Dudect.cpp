//===- Dudect.cpp - Statistical constant-time validation ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Dudect.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

using namespace usuba;

void WelchTTest::push(unsigned Class, double Value) {
  // Welford's online mean/variance.
  ++N[Class];
  double Delta = Value - Mean[Class];
  Mean[Class] += Delta / static_cast<double>(N[Class]);
  M2[Class] += Delta * (Value - Mean[Class]);
}

double WelchTTest::statistic() const {
  if (N[0] < 2 || N[1] < 2)
    return 0;
  double Var0 = M2[0] / static_cast<double>(N[0] - 1);
  double Var1 = M2[1] / static_cast<double>(N[1] - 1);
  double Denominator = std::sqrt(Var0 / static_cast<double>(N[0]) +
                                 Var1 / static_cast<double>(N[1]));
  if (Denominator == 0)
    return 0;
  return (Mean[0] - Mean[1]) / Denominator;
}

uint64_t usuba::readTimestampCounter() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned Aux;
  return __rdtscp(&Aux); // serializes prior loads/stores
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

DudectResult usuba::dudect(
    const DudectConfig &Config, size_t InputBytes,
    const std::function<void(unsigned Class, uint8_t *Input,
                             uint64_t Seed)> &FillInput,
    const std::function<void(const uint8_t *Input)> &Target) {
  std::mt19937_64 Rng(Config.Seed);

  // Pre-generate the input pool and a random class label per entry, so
  // nothing class-dependent executes between timed regions.
  const size_t Pool = std::max<size_t>(Config.PoolEntries, 2);
  std::vector<uint8_t> Inputs(Pool * InputBytes);
  std::vector<uint8_t> Classes(Pool);
  for (size_t I = 0; I < Pool; ++I) {
    Classes[I] = static_cast<uint8_t>(Rng() & 1);
    FillInput(Classes[I], &Inputs[I * InputBytes], Rng());
  }

  // Warm-up.
  for (size_t I = 0; I < std::min<size_t>(Pool, 64); ++I)
    Target(&Inputs[I * InputBytes]);

  struct Sample {
    uint8_t Class;
    uint64_t Cycles;
  };
  std::vector<Sample> Samples;
  Samples.reserve(Config.Measurements);
  for (size_t I = 0; I < Config.Measurements; ++I) {
    size_t Entry = I % Pool;
    uint64_t Start = readTimestampCounter();
    Target(&Inputs[Entry * InputBytes]);
    uint64_t End = readTimestampCounter();
    Samples.push_back({Classes[Entry], End - Start});
  }

  // Crop the slow tail (interrupts, frequency transitions), as dudect
  // does, then run the t-test on the surviving population.
  std::vector<uint64_t> Sorted;
  Sorted.reserve(Samples.size());
  for (const Sample &S : Samples)
    Sorted.push_back(S.Cycles);
  std::sort(Sorted.begin(), Sorted.end());
  uint64_t Threshold =
      Sorted[std::min(Sorted.size() - 1,
                      static_cast<size_t>(static_cast<double>(Sorted.size()) *
                                          Config.CropPercentile))];

  WelchTTest Test;
  size_t Used = 0;
  for (const Sample &S : Samples) {
    if (S.Cycles > Threshold)
      continue;
    Test.push(S.Class, static_cast<double>(S.Cycles));
    ++Used;
  }

  DudectResult Result;
  Result.TStatistic = Test.statistic();
  Result.Used = Used;
  return Result;
}
