//===- ThreadPool.h - Persistent work-stealing pool -------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide pool of persistent workers the threaded CTR/ECB engine
/// splits cipher calls over. Design goals, in order: deterministic results
/// (chunk -> output mapping is a pure function of the chunk index, so the
/// bytes produced never depend on which thread ran a chunk), concurrency
/// (independent cipher calls share the pool instead of serializing behind
/// a gate), load balance (a slow worker or an unaligned tail no longer
/// gates the whole call: idle participants steal chunks from the back of
/// other slots' ranges), and zero cost when unused (workers spawn lazily
/// and park between jobs).
///
/// A job submitted via parallelFor(Slots, NumChunks, Fn) is decomposed as
/// follows: the chunk indices [0, NumChunks) are split into Slots
/// contiguous ranges, one per participant slot. Slot 0 is always the
/// calling thread; parked workers claim the remaining slots. Each
/// participant pops chunks from the *front* of its own range and, once
/// empty, steals from the *back* of other slots' ranges, so every chunk
/// runs exactly once and mostly in front-to-back order. The slot index
/// passed to Fn identifies which per-slot scratch state (e.g. a
/// KernelRunner clone) the chunk may use: two chunks with the same slot
/// never run concurrently.
///
/// The pool intentionally over-subscribes when asked: USUBA_THREADS (or an
/// explicit thread count on the cipher) may exceed the hardware
/// concurrency. That is how the correctness tests exercise the threaded
/// path — stealing included — on small machines: the OS time-slices the
/// extra participants and the chunk accounting stays exact, it is merely
/// slower than the hardware could be.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_THREADPOOL_H
#define USUBA_RUNTIME_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace usuba {

class ThreadPool {
public:
  /// Participant slots a single job may use (a safety cap, far above any
  /// sensible USUBA_THREADS value).
  static constexpr unsigned MaxThreads = 64;

  /// The process-wide pool (created on first use, never destroyed — the
  /// workers park between jobs and die with the process).
  static ThreadPool &global();

  /// The default parallelism for cipher calls: USUBA_THREADS when set
  /// (clamped to [1, MaxThreads]), else std::thread::hardware_concurrency.
  /// hardware_concurrency() may legitimately return 0 ("unknown"); that
  /// clamps to 1 so the engine falls back to the single-threaded path
  /// instead of requesting a zero-slot job.
  static unsigned defaultThreads();

  /// A chunk body: Chunk is the work-item index in [0, NumChunks), Slot
  /// the participant slot in [0, Slots) whose per-slot state the body may
  /// use. Chunks sharing a slot never run concurrently; nothing else is
  /// guaranteed about which thread runs which chunk.
  using ChunkFn = std::function<void(size_t Chunk, unsigned Slot)>;

  /// Runs Fn exactly once for every chunk in [0, NumChunks), using up to
  /// Slots participants (the caller always participates as slot 0; parked
  /// workers fill slots 1..Slots-1 as they become available). Returns when
  /// every chunk has finished. Exceptions from chunk bodies are captured,
  /// the remaining chunks still run, and the first exception is rethrown
  /// on the caller. Concurrent parallelFor calls from different threads
  /// share the pool and make progress independently.
  ///
  /// When telemetry is enabled at submission, each chunk records a
  /// "threadpool.worker" span (tid = slot) and the job contributes to the
  /// threadpool.jobs / job_wall_ns / worker_busy_ns / slot_ns / steals /
  /// chunks counters; disabled, the instrumentation costs one relaxed
  /// load per job.
  void parallelFor(unsigned Slots, size_t NumChunks, const ChunkFn &Fn);

  /// Compatibility fork-join: invokes Fn(i) exactly once for each i in
  /// [0, N). Implemented over parallelFor with one chunk per slot, so
  /// unlike the historical pool the N invocations may be distributed over
  /// fewer than N threads (work-stealing) — do not rendezvous between
  /// indices inside Fn.
  void run(unsigned N, const std::function<void(unsigned)> &Fn);

private:
  ThreadPool() = default;

  /// One in-flight parallelFor call. Published in ActiveJobs while chunks
  /// remain; workers join by claiming a slot.
  struct Job {
    const ChunkFn *Fn = nullptr;
    size_t NumChunks = 0;
    unsigned Slots = 0;
    /// Next slot a *worker* may claim (slot 0 is reserved for the
    /// caller). Mutated only under the pool mutex.
    unsigned NextWorkerSlot = 1;
    /// Per-slot chunk range, packed (lo << 32) | hi over [lo, hi).
    /// Owners CAS lo forward (pop front), thieves CAS hi backward
    /// (steal back).
    std::unique_ptr<std::atomic<uint64_t>[]> Ranges;
    std::atomic<size_t> ChunksDone{0};
    std::atomic<bool> Finished{false};
    std::mutex M; ///< guards FirstError; pairs with DoneCV
    std::condition_variable DoneCV;
    std::exception_ptr FirstError;
    /// Telemetry, sampled once at submission.
    bool Profiled = false;
    std::atomic<uint64_t> BusyNs{0};
    std::atomic<uint64_t> Steals{0};
  };

  /// Claims chunks for Slot (own range first, then steal) until the job
  /// has none left.
  void participate(Job &J, unsigned Slot);
  void runChunk(Job &J, size_t Chunk, unsigned Slot);
  void spawnWorkersLocked();
  void workerMain();

  std::mutex M;
  std::condition_variable WorkCV;
  std::vector<std::thread> Workers;
  std::vector<std::shared_ptr<Job>> ActiveJobs;
  /// Sum of Slots over ActiveJobs; sizes the worker set.
  unsigned SlotDemand = 0;
};

} // namespace usuba

#endif // USUBA_RUNTIME_THREADPOOL_H
