//===- ThreadPool.h - Worker pool for batched cipher calls ------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small process-wide worker pool the threaded CTR/ECB engine splits
/// cipher calls over. Design goals, in order: deterministic results
/// (each worker writes only its own output span), zero cost when unused
/// (threads spawn lazily, only up to what a call requests), and
/// simplicity (one fork-join job at a time; concurrent run() calls
/// serialize).
///
/// The pool intentionally over-subscribes when asked: USUBA_THREADS (or
/// an explicit thread count on the cipher) may exceed the hardware
/// concurrency, which is how the correctness tests exercise the threaded
/// path on small machines.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_THREADPOOL_H
#define USUBA_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usuba {

class ThreadPool {
public:
  /// Workers a single job may use (a safety cap, far above any sensible
  /// USUBA_THREADS value).
  static constexpr unsigned MaxThreads = 64;

  /// The process-wide pool (created on first use, never destroyed — the
  /// workers park between jobs and die with the process).
  static ThreadPool &global();

  /// The default parallelism for cipher calls: USUBA_THREADS when set
  /// (clamped to [1, MaxThreads]), else std::thread::hardware_concurrency.
  static unsigned defaultThreads();

  /// Fork-join: invokes Fn(0) on the calling thread and Fn(1..N-1) on
  /// pool workers, returning when all have finished. Spawns workers on
  /// demand up to N-1 (capped at MaxThreads-1). Exceptions from any
  /// invocation are captured and the first one rethrown on the caller.
  /// Concurrent run() calls from different threads serialize.
  ///
  /// When telemetry is enabled, every participant's busy time is
  /// recorded as a "threadpool.worker" span and the job contributes to
  /// the threadpool.job_wall_ns / worker_busy_ns / slot_ns utilization
  /// counters; disabled, the instrumentation costs one relaxed load.
  void run(unsigned N, const std::function<void(unsigned)> &Fn);

private:
  ThreadPool() = default;

  /// The uninstrumented fork-join (run() wraps it with telemetry).
  void runJob(unsigned N, const std::function<void(unsigned)> &Fn);
  void ensureWorkers(unsigned Count);
  void workerMain(unsigned Index, uint64_t Seen);

  std::mutex JobGate; ///< serializes whole jobs

  std::mutex M;
  std::condition_variable WorkCV, DoneCV;
  std::vector<std::thread> Workers;
  const std::function<void(unsigned)> *Job = nullptr;
  unsigned JobN = 0;       ///< total participants (incl. the caller)
  uint64_t JobSeq = 0;     ///< bumped per job; workers wait for a new seq
  unsigned Outstanding = 0;
  std::exception_ptr FirstError;
};

} // namespace usuba

#endif // USUBA_RUNTIME_THREADPOOL_H
