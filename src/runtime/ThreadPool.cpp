//===- ThreadPool.cpp - Worker pool for batched cipher calls --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cstdlib>

using namespace usuba;

ThreadPool &ThreadPool::global() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (they may hold the mutex), and the process is exiting
  // anyway.
  static ThreadPool *Pool = new ThreadPool;
  return *Pool;
}

unsigned ThreadPool::defaultThreads() {
  if (const char *Env = std::getenv("USUBA_THREADS")) {
    unsigned long Value = std::strtoul(Env, nullptr, 10);
    if (Value >= 1)
      return static_cast<unsigned>(std::min<unsigned long>(Value, MaxThreads));
    return 1;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? std::min(HW, MaxThreads) : 1;
}

void ThreadPool::ensureWorkers(unsigned Count) {
  Count = std::min(Count, MaxThreads - 1);
  while (Workers.size() < Count) {
    unsigned Index = static_cast<unsigned>(Workers.size());
    // A new worker must ignore every job that was posted before it
    // existed, so it starts from the current sequence number.
    uint64_t Seen;
    {
      std::lock_guard<std::mutex> Lock(M);
      Seen = JobSeq;
    }
    Workers.emplace_back([this, Index, Seen] { workerMain(Index, Seen); });
    Workers.back().detach(); // parked workers die with the process
  }
}

void ThreadPool::workerMain(unsigned Index, uint64_t Seen) {
  for (;;) {
    const std::function<void(unsigned)> *Fn = nullptr;
    unsigned N = 0;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCV.wait(Lock, [&] { return JobSeq != Seen; });
      Seen = JobSeq;
      Fn = Job;
      N = JobN;
    }
    if (Index + 1 < N) {
      try {
        (*Fn)(Index + 1);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(M);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Outstanding == 0)
        DoneCV.notify_all();
    }
  }
}

void ThreadPool::run(unsigned N, const std::function<void(unsigned)> &Fn) {
  N = std::min(N, MaxThreads);
  if (N <= 1) {
    Fn(0);
    return;
  }
  // Profiling mode: wrap the job so every participant records its busy
  // span ("threadpool.worker", tid = participant index) and the job its
  // wall time. Span utilization = worker_busy_ns / slot_ns — how much of
  // the fork-join window the workers actually computed for.
  if (telemetryEnabled()) {
    const uint64_t JobStart = telemetry_detail::nowNanos();
    std::atomic<uint64_t> BusyNs{0};
    std::function<void(unsigned)> Wrapped = [&](unsigned T) {
      const uint64_t Start = telemetry_detail::nowNanos();
      try {
        Fn(T);
      } catch (...) {
        BusyNs.fetch_add(telemetry_detail::nowNanos() - Start,
                         std::memory_order_relaxed);
        throw;
      }
      const uint64_t Dur = telemetry_detail::nowNanos() - Start;
      BusyNs.fetch_add(Dur, std::memory_order_relaxed);
      Telemetry::instance().span("threadpool.worker", Start, Dur, T);
    };
    runJob(N, Wrapped);
    const uint64_t Wall = telemetry_detail::nowNanos() - JobStart;
    Telemetry &T = Telemetry::instance();
    T.count("threadpool.jobs", 1);
    T.count("threadpool.job_wall_ns", Wall);
    T.count("threadpool.worker_busy_ns",
            BusyNs.load(std::memory_order_relaxed));
    T.count("threadpool.slot_ns", Wall * N);
    return;
  }
  runJob(N, Fn);
}

void ThreadPool::runJob(unsigned N, const std::function<void(unsigned)> &Fn) {
  std::lock_guard<std::mutex> Gate(JobGate);
  ensureWorkers(N - 1);
  {
    std::lock_guard<std::mutex> Lock(M);
    Job = &Fn;
    JobN = N;
    Outstanding = static_cast<unsigned>(Workers.size());
    FirstError = nullptr;
    ++JobSeq;
  }
  WorkCV.notify_all();
  std::exception_ptr CallerError;
  try {
    Fn(0);
  } catch (...) {
    CallerError = std::current_exception();
  }
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [&] { return Outstanding == 0; });
  Job = nullptr;
  std::exception_ptr Error = CallerError ? CallerError : FirstError;
  Lock.unlock();
  if (Error)
    std::rethrow_exception(Error);
}
