//===- ThreadPool.cpp - Persistent work-stealing pool ---------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace usuba;

ThreadPool &ThreadPool::global() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (they may hold the mutex), and the process is exiting
  // anyway.
  static ThreadPool *Pool = new ThreadPool;
  return *Pool;
}

unsigned ThreadPool::defaultThreads() {
  if (const char *Env = std::getenv("USUBA_THREADS")) {
    unsigned long Value = std::strtoul(Env, nullptr, 10);
    if (Value >= 1)
      return static_cast<unsigned>(std::min<unsigned long>(Value, MaxThreads));
    return 1;
  }
  // hardware_concurrency() returns 0 when the runtime cannot determine the
  // core count; clamp to 1 rather than asking for a zero-slot job.
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? std::min(HW, MaxThreads) : 1;
}

namespace {

inline uint64_t packRange(uint32_t Lo, uint32_t Hi) {
  return (static_cast<uint64_t>(Lo) << 32) | Hi;
}

/// Pops the front chunk of a range: the owner's fast path.
bool claimFront(std::atomic<uint64_t> &Range, size_t &Chunk) {
  uint64_t V = Range.load(std::memory_order_relaxed);
  for (;;) {
    uint32_t Lo = static_cast<uint32_t>(V >> 32);
    uint32_t Hi = static_cast<uint32_t>(V);
    if (Lo >= Hi)
      return false;
    if (Range.compare_exchange_weak(V, packRange(Lo + 1, Hi),
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      Chunk = Lo;
      return true;
    }
  }
}

/// Steals the back chunk of a (victim's) range.
bool claimBack(std::atomic<uint64_t> &Range, size_t &Chunk) {
  uint64_t V = Range.load(std::memory_order_relaxed);
  for (;;) {
    uint32_t Lo = static_cast<uint32_t>(V >> 32);
    uint32_t Hi = static_cast<uint32_t>(V);
    if (Lo >= Hi)
      return false;
    if (Range.compare_exchange_weak(V, packRange(Lo, Hi - 1),
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      Chunk = Hi - 1;
      return true;
    }
  }
}

bool rangeHasWork(const std::atomic<uint64_t> &Range) {
  uint64_t V = Range.load(std::memory_order_relaxed);
  return static_cast<uint32_t>(V >> 32) < static_cast<uint32_t>(V);
}

} // namespace

void ThreadPool::runChunk(Job &J, size_t Chunk, unsigned Slot) {
  const uint64_t Start = J.Profiled ? telemetry_detail::nowNanos() : 0;
  try {
    (*J.Fn)(Chunk, Slot);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(J.M);
    if (!J.FirstError)
      J.FirstError = std::current_exception();
  }
  if (J.Profiled) {
    const uint64_t Dur = telemetry_detail::nowNanos() - Start;
    J.BusyNs.fetch_add(Dur, std::memory_order_relaxed);
    Telemetry::instance().span("threadpool.worker", Start, Dur, Slot);
  }
  if (J.ChunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      J.NumChunks) {
    // Last chunk: wake the caller. Finished flips under J.M so the
    // caller's predicate check cannot race past the notify.
    std::lock_guard<std::mutex> Lock(J.M);
    J.Finished.store(true, std::memory_order_release);
    J.DoneCV.notify_all();
  }
}

void ThreadPool::participate(Job &J, unsigned Slot) {
  for (;;) {
    size_t Chunk;
    if (claimFront(J.Ranges[Slot], Chunk)) {
      runChunk(J, Chunk, Slot);
      continue;
    }
    // Own range drained: steal from the back of the other slots' ranges
    // (round-robin from the next slot so thieves spread out).
    bool Stole = false;
    for (unsigned I = 1; I < J.Slots && !Stole; ++I) {
      unsigned Victim = (Slot + I) % J.Slots;
      if (claimBack(J.Ranges[Victim], Chunk)) {
        Stole = true;
        if (J.Profiled)
          J.Steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!Stole)
      return; // no claimable chunk anywhere: this slot is done
    runChunk(J, Chunk, Slot);
  }
}

void ThreadPool::spawnWorkersLocked() {
  // Each active job brings its own caller, so the worker set only needs
  // to cover the non-caller slots of the jobs currently in flight.
  unsigned Jobs = static_cast<unsigned>(ActiveJobs.size());
  unsigned Target =
      std::min(MaxThreads - 1, SlotDemand - std::min(SlotDemand, Jobs));
  while (Workers.size() < Target) {
    Workers.emplace_back([this] { workerMain(); });
    Workers.back().detach(); // parked workers die with the process
  }
}

void ThreadPool::workerMain() {
  const unsigned SelfTid = MaxThreads; // park spans: not a job slot
  for (;;) {
    std::shared_ptr<Job> J;
    unsigned Slot = 0;
    uint64_t ParkStart = 0;
    {
      std::unique_lock<std::mutex> Lock(M);
      for (;;) {
        for (const std::shared_ptr<Job> &Candidate : ActiveJobs) {
          if (Candidate->Finished.load(std::memory_order_acquire))
            continue;
          if (Candidate->NextWorkerSlot >= Candidate->Slots)
            continue;
          bool HasWork = false;
          for (unsigned S = 0; S < Candidate->Slots && !HasWork; ++S)
            HasWork = rangeHasWork(Candidate->Ranges[S]);
          if (!HasWork)
            continue;
          Slot = Candidate->NextWorkerSlot++;
          J = Candidate;
          break;
        }
        if (J)
          break;
        if (ParkStart == 0 && telemetryEnabled())
          ParkStart = telemetry_detail::nowNanos();
        WorkCV.wait(Lock);
      }
    }
    if (ParkStart != 0 && telemetryEnabled()) {
      const uint64_t Dur = telemetry_detail::nowNanos() - ParkStart;
      Telemetry &T = Telemetry::instance();
      T.span("threadpool.park", ParkStart, Dur, SelfTid);
      T.count("threadpool.park_ns", Dur);
      // Process-lifetime handle: histogramRef locks only on the first
      // park, record() is lock-free after that.
      static Histogram &ParkH = T.histogramRef("threadpool.park_ns");
      ParkH.record(Dur);
    }
    participate(*J, Slot);
  }
}

void ThreadPool::parallelFor(unsigned Slots, size_t NumChunks,
                             const ChunkFn &Fn) {
  Slots = std::min(Slots, MaxThreads);
  if (NumChunks == 0)
    return;
  assert(NumChunks <= UINT32_MAX && "chunk index must fit 32 bits");
  if (Slots > NumChunks)
    Slots = static_cast<unsigned>(NumChunks);
  if (Slots <= 1 || NumChunks == 1) {
    for (size_t Chunk = 0; Chunk < NumChunks; ++Chunk)
      Fn(Chunk, 0);
    return;
  }

  auto J = std::make_shared<Job>();
  J->Fn = &Fn;
  J->NumChunks = NumChunks;
  J->Slots = Slots;
  J->Ranges.reset(new std::atomic<uint64_t>[Slots]);
  for (unsigned S = 0; S < Slots; ++S) {
    uint32_t Lo = static_cast<uint32_t>(NumChunks * S / Slots);
    uint32_t Hi = static_cast<uint32_t>(NumChunks * (S + 1) / Slots);
    J->Ranges[S].store(packRange(Lo, Hi), std::memory_order_relaxed);
  }
  J->Profiled = telemetryEnabled();
  const uint64_t JobStart = J->Profiled ? telemetry_detail::nowNanos() : 0;

  {
    std::lock_guard<std::mutex> Lock(M);
    ActiveJobs.push_back(J);
    SlotDemand += Slots;
    spawnWorkersLocked();
  }
  WorkCV.notify_all();

  // The caller is always participant 0: it owns the front range and the
  // main KernelRunner's scratch.
  participate(*J, 0);

  {
    std::unique_lock<std::mutex> Lock(J->M);
    J->DoneCV.wait(Lock,
                   [&] { return J->Finished.load(std::memory_order_acquire); });
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    for (size_t I = 0; I < ActiveJobs.size(); ++I)
      if (ActiveJobs[I] == J) {
        ActiveJobs.erase(ActiveJobs.begin() + I);
        break;
      }
    SlotDemand -= Slots;
  }

  if (J->Profiled) {
    const uint64_t Wall = telemetry_detail::nowNanos() - JobStart;
    Telemetry &T = Telemetry::instance();
    T.count("threadpool.jobs", 1);
    T.count("threadpool.job_wall_ns", Wall);
    T.count("threadpool.worker_busy_ns",
            J->BusyNs.load(std::memory_order_relaxed));
    T.count("threadpool.slot_ns", Wall * Slots);
    T.count("threadpool.steals", J->Steals.load(std::memory_order_relaxed));
    T.count("threadpool.chunks", NumChunks);
    static Histogram &JobWallH = T.histogramRef("threadpool.job_wall_ns");
    static Histogram &JobStealsH = T.histogramRef("threadpool.job_steals");
    JobWallH.record(Wall);
    JobStealsH.record(J->Steals.load(std::memory_order_relaxed));
  }

  std::exception_ptr Error;
  {
    std::lock_guard<std::mutex> Lock(J->M);
    Error = J->FirstError;
  }
  if (Error)
    std::rethrow_exception(Error);
}

void ThreadPool::run(unsigned N, const std::function<void(unsigned)> &Fn) {
  N = std::min(N, MaxThreads);
  if (N == 0)
    return;
  if (N == 1) {
    Fn(0);
    return;
  }
  parallelFor(N, N, [&Fn](size_t Chunk, unsigned) {
    Fn(static_cast<unsigned>(Chunk));
  });
}
