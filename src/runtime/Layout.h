//===- Layout.h - Slicing data layouts and transposition --------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data layouts of paper Figure 2 and the transposition routines that
/// move blocks in and out of them (Section 4.3 measures their cost).
///
/// Blocks are represented structurally as vectors of *atom values*: a
/// parameter of distilled type uDm[L] takes L atoms of m bits per block.
/// Packing S blocks (S = slices per register) produces L registers:
///
///  * vertical:   register r, element b  <- atom r of block b;
///  * horizontal: register r, position j, bit b <- bit (m-1-j) of atom r
///    of block b (position 0 carries the atom's MSB, matching the
///    vector-index convention of the compiler);
///  * bitslice:   register r, bit b <- atom r (one bit) of block b.
///
/// Broadcast packing fills every slice with the same atom (used for keys,
/// which are shared by all blocks in flight).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_LAYOUT_H
#define USUBA_RUNTIME_LAYOUT_H

#include "interp/SimdReg.h"
#include "types/Arch.h"
#include "types/Type.h"

#include <cstdint>
#include <vector>

namespace usuba {

/// Packing/unpacking for one slicing configuration.
class SliceLayout {
public:
  SliceLayout(Dir Direction, unsigned MBits, const Arch &Target)
      : Direction(Direction), MBits(MBits), Target(&Target) {}

  /// Independent blocks per register (Figure 2 / Section 4.3: 1 for
  /// vertical slicing on GP64, width/m otherwise, width for bitslicing).
  unsigned slices() const {
    return Target->slicesFor(MBits, Direction == Dir::Horiz);
  }

  unsigned widthWords() const { return Target->SliceBits / 64; }

  /// Packs \p Blocks (slices() blocks, each \p Len atoms, atom r of block
  /// b at Blocks[b*Len + r]) into \p Regs (Len registers).
  void pack(const uint64_t *Blocks, unsigned Len, SimdReg *Regs) const;

  /// Inverse of pack.
  void unpack(const SimdReg *Regs, unsigned Len, uint64_t *Blocks) const;

  /// Packs one block into every slice (keys and other uniform inputs).
  void packBroadcast(const uint64_t *Atoms, unsigned Len,
                     SimdReg *Regs) const;

private:
  Dir Direction;
  unsigned MBits;
  const Arch *Target;
};

/// Conversions between m-bit atom values and their -B (bitslice) form:
/// flattening maps an m-bit atom to m single-bit atoms, most significant
/// bit first (the compiler's vector-index convention).
void expandAtomsToBits(const uint64_t *Atoms, unsigned Count,
                       unsigned MBits, uint64_t *Bits);
void collapseBitsToAtoms(const uint64_t *Bits, unsigned Count,
                         unsigned MBits, uint64_t *Atoms);

} // namespace usuba

#endif // USUBA_RUNTIME_LAYOUT_H
