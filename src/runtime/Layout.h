//===- Layout.h - Slicing data layouts and transposition --------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data layouts of paper Figure 2 and the transposition routines that
/// move blocks in and out of them (Section 4.3 measures their cost).
///
/// Blocks are represented structurally as vectors of *atom values*: a
/// parameter of distilled type uDm[L] takes L atoms of m bits per block.
/// Packing S blocks (S = slices per register) produces L registers:
///
///  * vertical:   register r, element b  <- atom r of block b;
///  * horizontal: register r, position j, bit b <- bit (m-1-j) of atom r
///    of block b (position 0 carries the atom's MSB, matching the
///    vector-index convention of the compiler);
///  * bitslice:   register r, bit b <- atom r (one bit) of block b.
///
/// Broadcast packing fills every slice with the same atom (used for keys,
/// which are shared by all blocks in flight).
///
/// Two register representations are supported, sharing one word-level
/// transposition core:
///
///  * SimdReg arrays — the interpreter's registers (8 words each,
///    whatever the target width);
///  * dense word buffers — the native JIT ABI: widthWords() consecutive
///    uint64_t per register, no padding. packDense/unpackDense move
///    blocks directly between user atoms and the buffers a JIT-compiled
///    kernel consumes, with no intermediate SimdReg staging.
///
/// Every layout runs through SWAR fast paths that assemble whole 64-bit
/// words per step (Hacker's-Delight 64x64 bit-matrix transposes for
/// bitslice and horizontal shapes, element-packing loops for vertical
/// shapes). The original bit-at-a-time loops are retained as
/// packNaive/unpackNaive — the oracle the layout property tests check
/// every fast path against.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_LAYOUT_H
#define USUBA_RUNTIME_LAYOUT_H

#include "interp/SimdReg.h"
#include "types/Arch.h"
#include "types/Type.h"

#include <cstdint>
#include <vector>

namespace usuba {

/// Packing/unpacking for one slicing configuration.
class SliceLayout {
public:
  SliceLayout(Dir Direction, unsigned MBits, const Arch &Target)
      : Direction(Direction), MBits(MBits), Target(&Target) {}

  /// Independent blocks per register (Figure 2 / Section 4.3: 1 for
  /// vertical slicing on GP64, width/m otherwise, width for bitslicing).
  unsigned slices() const {
    return Target->slicesFor(MBits, Direction == Dir::Horiz);
  }

  unsigned widthWords() const { return Target->SliceBits / 64; }

  /// Packs \p Blocks (slices() blocks, each \p Len atoms, atom r of block
  /// b at Blocks[b*Len + r]) into \p Regs (Len registers).
  void pack(const uint64_t *Blocks, unsigned Len, SimdReg *Regs) const;

  /// Inverse of pack.
  void unpack(const SimdReg *Regs, unsigned Len, uint64_t *Blocks) const;

  /// Packs one block into every slice (keys and other uniform inputs).
  void packBroadcast(const uint64_t *Atoms, unsigned Len,
                     SimdReg *Regs) const;

  /// Dense native-ABI variants: \p Dense holds Len registers of
  /// widthWords() words each, back to back (the layout NativeJit's
  /// usuba_kernel consumes). All widthWords() words of every register are
  /// written; none beyond are touched.
  void packDense(const uint64_t *Blocks, unsigned Len,
                 uint64_t *Dense) const;
  void unpackDense(const uint64_t *Dense, unsigned Len,
                   uint64_t *Blocks) const;
  void packBroadcastDense(const uint64_t *Atoms, unsigned Len,
                          uint64_t *Dense) const;

  /// The original bit-at-a-time reference loops, kept as the oracle for
  /// the randomized layout property tests (and for differential debugging
  /// of the SWAR paths). Semantically identical to pack/unpack, just
  /// slow.
  void packNaive(const uint64_t *Blocks, unsigned Len, SimdReg *Regs) const;
  void unpackNaive(const SimdReg *Regs, unsigned Len,
                   uint64_t *Blocks) const;

private:
  /// The shared word-level core: registers are \p Stride words apart,
  /// the first widthWords() of each carrying data.
  void packWords(const uint64_t *Blocks, unsigned Len, uint64_t *Regs,
                 unsigned Stride) const;
  void unpackWords(const uint64_t *Regs, unsigned Stride, unsigned Len,
                   uint64_t *Blocks) const;

  Dir Direction;
  unsigned MBits;
  const Arch *Target;
};

/// Conversions between m-bit atom values and their -B (bitslice) form:
/// flattening maps an m-bit atom to m single-bit atoms, most significant
/// bit first (the compiler's vector-index convention).
void expandAtomsToBits(const uint64_t *Atoms, unsigned Count,
                       unsigned MBits, uint64_t *Bits);
void collapseBitsToAtoms(const uint64_t *Bits, unsigned Count,
                         unsigned MBits, uint64_t *Atoms);

} // namespace usuba

#endif // USUBA_RUNTIME_LAYOUT_H
