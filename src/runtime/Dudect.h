//===- Dudect.h - Statistical constant-time validation ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the dudect methodology (Reparaz, Balasch,
/// Verbauwhede, DATE 2017) the paper uses to validate its constant-time
/// claim (Section 4): measure execution time over two input classes —
/// fixed versus random — and run Welch's t-test on the two timing
/// populations. |t| below ~4.5 means no evidence of input-dependent
/// timing ("a green flag").
///
/// All inputs are pre-generated into a pool before any timing happens and
/// the two classes are interleaved in random order, so the code path
/// leading into each timed region is identical for both classes — the
/// preparation itself must not perturb the microarchitectural state
/// differently per class (the classic false-positive trap). Measurements
/// are cropped at a high percentile to tame interrupt noise, as in
/// dudect.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_DUDECT_H
#define USUBA_RUNTIME_DUDECT_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace usuba {

/// Welch's t-statistic accumulator over two populations.
class WelchTTest {
public:
  void push(unsigned Class, double Value);
  /// The t statistic (0 when either class is under-populated).
  double statistic() const;
  size_t count(unsigned Class) const { return N[Class]; }

private:
  double Mean[2] = {0, 0};
  double M2[2] = {0, 0}; ///< sum of squared deviations (Welford)
  size_t N[2] = {0, 0};
};

/// Configuration of one dudect run.
struct DudectConfig {
  size_t Measurements = 20000;  ///< total timed executions
  size_t PoolEntries = 512;     ///< pre-generated inputs per run
  double CropPercentile = 0.95; ///< discard the slowest tail
  uint64_t Seed = 0xD0DEC7;
};

/// Result: the t statistic and the dudect-style verdict.
struct DudectResult {
  double TStatistic = 0;
  size_t Used = 0; ///< measurements surviving the crop
  /// dudect's conventional threshold: |t| > 4.5 flags a leak.
  bool leakDetected() const {
    return TStatistic > 4.5 || TStatistic < -4.5;
  }
};

/// Runs the fixed-vs-random experiment on \p Target.
///
/// \p FillInput populates one pool entry of \p InputBytes bytes for the
/// given class (0 = the fixed input, 1 = fresh random bytes); it runs
/// during setup, never between timings. \p Target executes the operation
/// under test on one pool entry; only it is timed.
DudectResult
dudect(const DudectConfig &Config, size_t InputBytes,
       const std::function<void(unsigned Class, uint8_t *Input,
                                uint64_t Seed)> &FillInput,
       const std::function<void(const uint8_t *Input)> &Target);

/// Reads the CPU timestamp counter (serialized), or a monotonic clock on
/// non-x86 hosts.
uint64_t readTimestampCounter();

} // namespace usuba

#endif // USUBA_RUNTIME_DUDECT_H
