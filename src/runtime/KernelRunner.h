//===- KernelRunner.h - Batched execution of compiled kernels ---*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the cryptographic runtime and a compiled kernel: owns the
/// transposition layout and an execution engine, feeds
/// slices-times-interleave blocks per kernel invocation, and broadcasts
/// uniform inputs (round keys) to every slice.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_KERNELRUNNER_H
#define USUBA_RUNTIME_KERNELRUNNER_H

#include "core/Compiler.h"
#include "interp/Interpreter.h"
#include "runtime/Layout.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace usuba {

/// Executes a compiled kernel over batches of blocks.
///
/// Parameters are classified by the caller: PerBlock inputs differ per
/// block (plaintext, counters); Broadcast inputs are shared by every
/// block in flight (expanded keys).
class KernelRunner {
public:
  /// An optional native entry point (from NativeJit): consumes and
  /// produces the same register layout as the interpreter, as raw
  /// uint64_t words (widthWords() words per register).
  using NativeFn = void (*)(const uint64_t *Inputs, uint64_t *Outputs);

  explicit KernelRunner(CompiledKernel Kernel);

  /// Blocks consumed per kernel invocation: slices x interleave factor.
  unsigned blocksPerCall() const { return BlocksPerCall; }

  /// Atom counts of each parameter / return value.
  const std::vector<unsigned> &paramLens() const { return ParamLens; }
  const std::vector<unsigned> &returnLens() const { return ReturnLens; }
  unsigned outputAtomsPerBlock() const { return OutLen; }

  const CompiledKernel &kernel() const { return Kernel; }

  /// The degradation ladder: execution prefers the JIT-compiled native
  /// kernel and drops to the interpreter when the JIT is unavailable,
  /// fails, times out, or the first-batch differential self-check
  /// disagrees with the interpreter. Every demotion leaves a reason in
  /// fallbackReason(); results are correct on every rung.
  enum class Engine { Native, Interpreter };

  /// Routes execution through \p Fn (a JIT-compiled native kernel)
  /// instead of the interpreter. Pass nullptr to restore interpretation.
  /// Installing a (non-null) kernel re-arms the first-batch self-check
  /// and clears any previous fallback reason.
  void setNativeFn(NativeFn Fn) {
    Native = Fn;
    SelfChecked = false;
    if (Fn)
      FallbackReason.clear();
  }
  bool usingNative() const { return Native != nullptr; }
  Engine engine() const {
    return Native ? Engine::Native : Engine::Interpreter;
  }

  /// Records why the native rung was abandoned (or never reached) — the
  /// owner calls this with the JitError, and the self-check demotion
  /// calls it internally.
  void noteFallback(std::string Reason) { FallbackReason = std::move(Reason); }
  /// Empty while on the native rung (or when native was never requested).
  const std::string &fallbackReason() const { return FallbackReason; }

  /// One input parameter for a batch.
  struct ParamData {
    /// When true, \c Atoms holds one block's worth of atoms shared by all
    /// blocks; otherwise blocksPerCall() blocks' worth, block-major.
    bool Broadcast;
    const uint64_t *Atoms;
  };

  /// Runs one batch: packs inputs, executes, unpacks blocksPerCall()
  /// output blocks (block-major atoms) into \p OutAtoms.
  void runBatch(const std::vector<ParamData> &Params, uint64_t *OutAtoms);

  /// Executes only the kernel (no packing/unpacking) on whatever register
  /// contents are currently staged — the benchmark harness uses this to
  /// measure the primitive alone, as the paper's Figures 3/4 do.
  void kernelOnly();

  /// Packing-only entry points for the transposition benchmarks.
  const SliceLayout &layout() const { return Layout; }

private:
  /// Executes the native kernel on the staged InRegs, refreshing the
  /// dense ABI buffers and writing the results back into OutRegs.
  void runNativeStaged();

  CompiledKernel Kernel;
  SliceLayout Layout;
  Interpreter Interp;
  NativeFn Native = nullptr;
  bool SelfChecked = false;
  std::string FallbackReason;
  unsigned BlocksPerCall;
  unsigned Slices;
  unsigned OutLen;
  std::vector<unsigned> ParamLens;
  std::vector<unsigned> ReturnLens;
  std::vector<SimdReg> InRegs, OutRegs;
  std::vector<uint64_t> DenseIn, DenseOut; ///< native-ABI staging
};

} // namespace usuba

#endif // USUBA_RUNTIME_KERNELRUNNER_H
