//===- KernelRunner.h - Batched execution of compiled kernels ---*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the cryptographic runtime and a compiled kernel: owns the
/// transposition layout and an execution engine, feeds
/// slices-times-interleave blocks per kernel invocation, and broadcasts
/// uniform inputs (round keys) to every slice.
///
/// Data path: on the native rung, blocks are packed straight into the
/// dense uint64_t buffer the JIT ABI consumes and unpacked straight out
/// of the kernel's output buffer — there is no intermediate SimdReg
/// staging. The interpreter rung packs into SimdReg arrays as before.
/// Broadcast parameters (round keys) are packed once and reused across
/// batches until the caller bumps their epoch.
///
/// Thread-safety contract: a KernelRunner is single-threaded — it owns
/// mutable staging buffers. Concurrent batch execution uses one clone()
/// per participant *slot* of the work-stealing pool (the pool never runs
/// two chunks of the same slot concurrently, so slot = exclusive owner);
/// clones share the (immutable, re-entrant) native kernel function and
/// copy the compiled program, so each clone runs its own degradation
/// ladder (including the first-batch self-check) independently. Demotion
/// of one clone never affects another, and output ordering is preserved
/// because every batch writes only the caller-provided output range.
/// Work-stealing means one clone may process non-adjacent chunks in any
/// order; the incremental CTR fast-path state (CtrLowShift/CtrHigh)
/// tolerates that because it tracks what the counter slices *contain*
/// (not a position), so runCtrBatch rewrites exactly the slices whose
/// contents differ for an arbitrary new base counter.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_RUNTIME_KERNELRUNNER_H
#define USUBA_RUNTIME_KERNELRUNNER_H

#include "core/Compiler.h"
#include "interp/Interpreter.h"
#include "runtime/Layout.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace usuba {

/// Why execution is not on the native rung — the structured counterpart
/// of the free-text fallback reason, stable for callers (CipherStats)
/// and tests to switch on instead of string-matching. The first seven
/// values mirror JitError::Reason; the last two are runtime demotions.
enum class EngineFallback : uint8_t {
  None,              ///< on the native rung (or never requested)
  NativeDisabled,    ///< PreferNative was false
  HostUnsupported,   ///< host CPU cannot execute the target ISA
  NoCompiler,        ///< no usable host C compiler
  WriteFailed,       ///< JIT scratch files could not be created
  CompileFailed,     ///< host compiler exited nonzero
  Timeout,           ///< host compiler exceeded the wall-clock budget
  LoadFailed,        ///< dlopen rejected the produced object
  SymbolMissing,     ///< the object does not export usuba_kernel
  SelfCheckMismatch, ///< first-batch output disagreed with the interpreter
};

/// Stable name of a fallback kind ("none", "compile-failed", ...).
const char *engineFallbackName(EngineFallback Kind);

/// Executes a compiled kernel over batches of blocks.
///
/// Parameters are classified by the caller: PerBlock inputs differ per
/// block (plaintext, counters); Broadcast inputs are shared by every
/// block in flight (expanded keys).
class KernelRunner {
public:
  /// An optional native entry point (from NativeJit): consumes and
  /// produces the same register layout as the interpreter, as raw
  /// uint64_t words (widthWords() words per register).
  using NativeFn = void (*)(const uint64_t *Inputs, uint64_t *Outputs);

  explicit KernelRunner(CompiledKernel Kernel);

  /// Clones this runner for use on another thread: copies the compiled
  /// program, shares the native function pointer (the emitted code is
  /// re-entrant — it writes only through its output argument), and
  /// re-arms the clone's own first-batch self-check. The caller must
  /// keep whatever owns the native code (NativeKernel) alive for the
  /// clone's lifetime.
  std::unique_ptr<KernelRunner> clone() const;

  /// Blocks consumed per kernel invocation: slices x interleave factor.
  unsigned blocksPerCall() const { return BlocksPerCall; }

  /// Atom counts of each parameter / return value.
  const std::vector<unsigned> &paramLens() const { return ParamLens; }
  const std::vector<unsigned> &returnLens() const { return ReturnLens; }
  unsigned outputAtomsPerBlock() const { return OutLen; }

  const CompiledKernel &kernel() const { return Kernel; }

  /// The degradation ladder: execution prefers the JIT-compiled native
  /// kernel and drops to the interpreter when the JIT is unavailable,
  /// fails, times out, or the first-batch differential self-check
  /// disagrees with the interpreter. Every demotion leaves a reason in
  /// fallbackReason(); results are correct on every rung.
  enum class Engine { Native, Interpreter };

  /// Routes execution through \p Fn (a JIT-compiled native kernel)
  /// instead of the interpreter. Pass nullptr to restore interpretation.
  /// Installing a (non-null) kernel re-arms the first-batch self-check
  /// and clears any previous fallback reason.
  void setNativeFn(NativeFn Fn) {
    Native = Fn;
    SelfChecked = false;
    if (Fn) {
      FallbackReason.clear();
      FallbackKind = EngineFallback::None;
    }
  }
  bool usingNative() const { return Native != nullptr; }
  Engine engine() const {
    return Native ? Engine::Native : Engine::Interpreter;
  }

  /// Records why the native rung was abandoned (or never reached) — the
  /// owner calls this with the JitError's kind and rendering, and the
  /// self-check demotion calls it internally.
  void noteFallback(EngineFallback Kind, std::string Reason) {
    FallbackKind = Kind;
    FallbackReason = std::move(Reason);
  }
  /// Empty while on the native rung (or when native was never requested).
  const std::string &fallbackReason() const { return FallbackReason; }
  /// EngineFallback::None while on the native rung.
  EngineFallback fallbackKind() const { return FallbackKind; }

  /// One input parameter for a batch.
  struct ParamData {
    /// When true, \c Atoms holds one block's worth of atoms shared by all
    /// blocks; otherwise blocksPerCall() blocks' worth, block-major.
    bool Broadcast;
    const uint64_t *Atoms;
    /// Broadcast reuse: a broadcast parameter whose (Atoms, Epoch) pair
    /// matches the previous batch is NOT re-packed — its packed
    /// registers are reused. Callers bump the epoch whenever the pointed
    /// to atoms change (e.g. on setKey); 0 works fine for callers that
    /// never mutate in place.
    uint64_t Epoch = 0;
  };

  /// Runs one batch: packs inputs, executes, unpacks blocksPerCall()
  /// output blocks (block-major atoms) into \p OutAtoms.
  void runBatch(const std::vector<ParamData> &Params, uint64_t *OutAtoms);

  /// Probe-derived bit-to-register maps for the 64-bit-block CTR fast
  /// path (see UsubaCipher::ensureCtrProbe): InSlice[j] is the entry
  /// register (within parameter 0) carrying bit j (LSB = 0) of the
  /// big-endian counter-block integer; OutSlice[j] is the output register
  /// carrying bit j of the big-endian keystream-block integer.
  struct CtrPerm {
    uint8_t InSlice[64];
    uint8_t OutSlice[64];
  };

  /// Static shape requirements of the CTR fast path: a bitsliced kernel
  /// (m == 1, no interleaving) taking one 64-atom per-block parameter
  /// plus one broadcast parameter and producing 64 atoms per block.
  bool ctrFastShape() const {
    return Kernel.Prog.MBits == 1 && Kernel.Prog.InterleaveFactor == 1 &&
           ParamLens.size() == 2 && ParamLens[0] == 64 && OutLen == 64;
  }
  /// ctrFastShape() plus the dynamic gate: the first batch of a native
  /// kernel must go through runBatch so the differential self-check still
  /// runs before any fast-path output escapes.
  bool ctrFastReady() const {
    return ctrFastShape() && (!Native || SelfChecked);
  }

  /// CTR fast path for 64-bit-block bitsliced kernels: instead of
  /// materializing counter blocks and bit-transposing them, writes each
  /// counter-bit slice analytically — bit j of (Base + t) over a 64-block
  /// word column is a rotated canonical pattern (j < 6) or an at most
  /// two-segment word (j >= 6) — and only rewrites the slices whose
  /// content changed since the previous batch (the low slices are
  /// invariant when Base advances by a multiple of 64, the high slices
  /// are batch-constant broadcasts that change rarely). On the way out,
  /// the keystream XOR is fused into the untransposition: each 64-block
  /// column is gathered through \p Perm, transposed once, and XORed
  /// straight into \p Data as big-endian block integers, so the
  /// ciphertext is produced in one pass with no intermediate atom or
  /// keystream buffers.
  ///
  /// \p Base is the counter value of the batch's first block, \p Key the
  /// broadcast key parameter (parameter 1, cached across batches like
  /// runBatch's), \p Bytes the number of data bytes (at most
  /// blocksPerCall() * 8; a ragged tail is XORed bytewise). The caller
  /// must check ctrFastReady().
  void runCtrBatch(const CtrPerm &Perm, uint64_t Base, const ParamData &Key,
                   uint8_t *Data, size_t Bytes);

  /// Executes only the kernel (no packing/unpacking) on the engine's
  /// staged input buffer — the benchmark harness uses this to measure
  /// the primitive alone, as the paper's Figures 3/4 do. Buffer
  /// contract: the staging buffers (DenseIn for the native engine,
  /// InRegs for the interpreter) are allocated zeroed at construction
  /// and hold the last runBatch's packed inputs afterwards, so
  /// kernel-only timing is deterministic: all-zero inputs before any
  /// batch ran, the last batch's inputs after.
  void kernelOnly();

  /// Packing-only entry points for the transposition benchmarks.
  const SliceLayout &layout() const { return Layout; }

private:
  /// Packs \p Params into the dense native buffer and/or the
  /// interpreter's SimdReg array, honoring the broadcast reuse cache.
  void packInputs(const std::vector<ParamData> &Params, bool IntoDense,
                  bool IntoRegs);

  CompiledKernel Kernel;
  SliceLayout Layout;
  Interpreter Interp;
  NativeFn Native = nullptr;
  bool SelfChecked = false;
  std::string FallbackReason;
  EngineFallback FallbackKind = EngineFallback::None;
  unsigned BlocksPerCall;
  unsigned Slices;
  unsigned OutLen;
  std::vector<unsigned> ParamLens;
  std::vector<unsigned> ReturnLens;
  std::vector<SimdReg> InRegs, OutRegs;       ///< interpreter registers
  std::vector<uint64_t> DenseIn, DenseOut;    ///< native-ABI buffers
  /// Broadcast reuse cache, one slot per parameter: which (Atoms, Epoch)
  /// is currently packed, and into which buffer(s).
  struct BroadcastSlot {
    const uint64_t *Atoms = nullptr;
    uint64_t Epoch = 0;
    bool InDense = false;
    bool InRegs = false;
  };
  std::vector<BroadcastSlot> Broadcasts;

  /// Incremental CTR state (runCtrBatch): what the analytically written
  /// counter slices currently hold, so unchanged slices are skipped.
  /// Invalidated whenever anything else writes the input buffers
  /// (runBatch repacks parameter 0) or the engine's buffer changes.
  void invalidateCtrState() {
    CtrLowShift = -1;
    for (int8_t &S : CtrHigh)
      S = -1;
  }
  int CtrLowShift = -1;  ///< Base mod 64 the low-bit slices were built
                         ///< with; -1 = not valid
  int8_t CtrHigh[64] = {}; ///< per high slice: 0/1 = broadcast of that
                           ///< bit, -1 = mixed or not valid (fixed in
                           ///< the constructor)
  bool CtrIntoDense = false; ///< which buffer the CTR state describes
};

} // namespace usuba

#endif // USUBA_RUNTIME_KERNELRUNNER_H
