//===- Layout.cpp - Slicing data layouts and transposition ----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Layout.h"

using namespace usuba;

void SliceLayout::pack(const uint64_t *Blocks, unsigned Len,
                       SimdReg *Regs) const {
  const unsigned S = slices();
  const unsigned W = widthWords();
  if (MBits == 1) {
    // Bitslicing: register r bit b = atom r of block b. Fast path for the
    // classic 64x64 transpose shape.
    if (S == 64 && Len == 64) {
      uint64_t M[64];
      for (unsigned B = 0; B < 64; ++B) {
        uint64_t Row = 0;
        for (unsigned R = 0; R < 64; ++R)
          Row |= (Blocks[B * 64 + R] & 1) << R;
        M[B] = Row;
      }
      // M[b] bit r = atom r of block b; transposing gives M[r] bit b.
      transpose64x64(M);
      for (unsigned R = 0; R < 64; ++R) {
        Regs[R] = SimdReg{};
        Regs[R].Words[0] = M[R];
      }
      return;
    }
    for (unsigned R = 0; R < Len; ++R) {
      Regs[R] = SimdReg{};
      for (unsigned B = 0; B < S; ++B)
        Regs[R].setBit(B, Blocks[B * Len + R] & 1);
    }
    return;
  }

  if (Direction == Dir::Horiz) {
    const unsigned GroupBits = (W * 64) / MBits;
    for (unsigned R = 0; R < Len; ++R) {
      Regs[R] = SimdReg{};
      for (unsigned B = 0; B < S; ++B) {
        uint64_t Atom = Blocks[B * Len + R];
        for (unsigned J = 0; J < MBits; ++J)
          Regs[R].setBit(J * GroupBits + B, getBit(Atom, MBits - 1 - J));
      }
    }
    return;
  }

  // Vertical: assemble whole 64-bit words (MBits is a power of two, so
  // elements never straddle words).
  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    Regs[R] = SimdReg{};
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      uint64_t Value = 0;
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Value |= (Blocks[size_t{B} * Len + R] & Mask) << (E * MBits);
      Regs[R].Words[Word] = Value;
    }
  }
}

void SliceLayout::unpack(const SimdReg *Regs, unsigned Len,
                         uint64_t *Blocks) const {
  const unsigned S = slices();
  const unsigned W = widthWords();
  if (MBits == 1) {
    if (S == 64 && Len == 64) {
      uint64_t M[64];
      for (unsigned R = 0; R < 64; ++R)
        M[R] = Regs[R].Words[0];
      transpose64x64(M);
      for (unsigned B = 0; B < 64; ++B)
        for (unsigned R = 0; R < 64; ++R)
          Blocks[B * 64 + R] = getBit(M[B], R);
      return;
    }
    for (unsigned R = 0; R < Len; ++R)
      for (unsigned B = 0; B < S; ++B)
        Blocks[B * Len + R] = Regs[R].bit(B);
    return;
  }

  if (Direction == Dir::Horiz) {
    const unsigned GroupBits = (W * 64) / MBits;
    for (unsigned R = 0; R < Len; ++R)
      for (unsigned B = 0; B < S; ++B) {
        uint64_t Atom = 0;
        for (unsigned J = 0; J < MBits; ++J)
          Atom = setBit(Atom, MBits - 1 - J,
                        Regs[R].bit(J * GroupBits + B));
        Blocks[B * Len + R] = Atom;
      }
    return;
  }

  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      uint64_t Value = Regs[R].Words[Word];
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Blocks[size_t{B} * Len + R] = (Value >> (E * MBits)) & Mask;
    }
  }
}

void usuba::expandAtomsToBits(const uint64_t *Atoms, unsigned Count,
                              unsigned MBits, uint64_t *Bits) {
  for (unsigned A = 0; A < Count; ++A)
    for (unsigned J = 0; J < MBits; ++J)
      Bits[A * MBits + J] = getBit(Atoms[A], MBits - 1 - J);
}

void usuba::collapseBitsToAtoms(const uint64_t *Bits, unsigned Count,
                                unsigned MBits, uint64_t *Atoms) {
  for (unsigned A = 0; A < Count; ++A) {
    uint64_t Atom = 0;
    for (unsigned J = 0; J < MBits; ++J)
      Atom = setBit(Atom, MBits - 1 - J, Bits[A * MBits + J] & 1);
    Atoms[A] = Atom;
  }
}

void SliceLayout::packBroadcast(const uint64_t *Atoms, unsigned Len,
                                SimdReg *Regs) const {
  const unsigned W = widthWords();
  for (unsigned R = 0; R < Len; ++R) {
    if (Direction == Dir::Horiz && MBits > 1)
      simd::broadcastHorizontal(Regs[R], Atoms[R], W, MBits);
    else
      simd::broadcastVertical(Regs[R], Atoms[R], W, MBits);
  }
}
