//===- Layout.cpp - Slicing data layouts and transposition ----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Layout.h"

#include <algorithm>

using namespace usuba;

// All transposition works on whole 64-bit words. Three facts make the
// word-level shapes line up exactly (so packWords always writes all
// widthWords() words of a register and no more):
//
//  * bitslice: slices() == SliceBits == 64 * widthWords() — the slice
//    dimension tiles into whole words;
//  * vertical: slices() * MBits == SliceBits on SIMD targets (ceil fill),
//    and a single MBits-wide element in word 0 on GP64 (widthWords()==1);
//  * horizontal: MBits groups of GroupBits == SliceBits/MBits bits each;
//    either GroupBits is a multiple of 64 (whole-word groups) or 64 is a
//    multiple of GroupBits (whole groups per word).

void SliceLayout::packWords(const uint64_t *Blocks, unsigned Len,
                            uint64_t *Regs, unsigned Stride) const {
  const unsigned S = slices();
  const unsigned W = widthWords();

  if (MBits == 1) {
    // Bitslicing: register r bit b = atom r of block b. S is always a
    // multiple of 64, so tile the (S x Len) bit matrix into 64x64 blocks
    // and run the Hacker's-Delight word transpose on each; ragged Len
    // edges are zero-padded in the tile.
    for (unsigned BT = 0; BT < S; BT += 64) {
      const unsigned Word = BT / 64;
      for (unsigned RT = 0; RT < Len; RT += 64) {
        const unsigned RN = std::min(64u, Len - RT);
        uint64_t M[64];
        for (unsigned BB = 0; BB < 64; ++BB) {
          const uint64_t *Src = Blocks + size_t{BT + BB} * Len + RT;
          uint64_t Row = 0;
          for (unsigned RR = 0; RR < RN; ++RR)
            Row |= (Src[RR] & 1) << RR;
          M[BB] = Row;
        }
        // M[b] bit r = atom RT+r of block BT+b; transposing gives
        // M[r] bit b.
        transpose64x64(M);
        for (unsigned RR = 0; RR < RN; ++RR)
          Regs[size_t{RT + RR} * Stride + Word] = M[RR];
      }
    }
    return;
  }

  if (Direction == Dir::Horiz) {
    // Horizontal: for a fixed register r, the register content is the
    // S x MBits atom bit-matrix transposed, with position j carrying
    // atom bit MBits-1-j across GroupBits-bit groups. One 64x64
    // transpose serves a *tile* of 64/MBits registers at once (their
    // atoms side by side in the matrix columns), so the transpose cost
    // amortizes even for narrow atoms.
    const unsigned G = (W * 64) / MBits; // == S on SIMD, >= S on GP64
    const unsigned RegsPerTile = 64 / MBits;
    const uint64_t AtomMask = lowBitMask(MBits);
    for (unsigned R0 = 0; R0 < Len; R0 += RegsPerTile) {
      const unsigned RN = std::min(RegsPerTile, Len - R0);
      for (unsigned BT = 0; BT < S; BT += 64) {
        const unsigned BN = std::min(64u, S - BT);
        uint64_t M[64] = {}; // rows >= BN stay zero: the transpose must
                             // not leak garbage into used group bits
        for (unsigned BB = 0; BB < BN; ++BB) {
          const uint64_t *Src = Blocks + size_t{BT + BB} * Len + R0;
          uint64_t Row = 0;
          for (unsigned RR = 0; RR < RN; ++RR)
            Row |= (Src[RR] & AtomMask) << (RR * MBits);
          M[BB] = Row;
        }
        // M[b] bit (r*MBits + k) = atom bit k of register R0+r, block
        // BT+b; transposing gives M[r*MBits + k] bit b.
        transpose64x64(M);
        if (G >= 64) {
          // Wide groups (G a multiple of 64, S == G): each matrix row
          // lands as one whole register word.
          const unsigned WordsPerGroup = G / 64;
          const unsigned T = BT / 64;
          for (unsigned RR = 0; RR < RN; ++RR) {
            uint64_t *Dst = Regs + size_t{R0 + RR} * Stride;
            for (unsigned J = 0; J < MBits; ++J)
              Dst[J * WordsPerGroup + T] = M[RR * MBits + MBits - 1 - J];
          }
        } else {
          // Narrow groups (G divides 64, S <= G <= 64, so one block
          // tile): assemble 64/G groups per output word.
          const unsigned PerWord = 64 / G;
          for (unsigned RR = 0; RR < RN; ++RR) {
            uint64_t *Dst = Regs + size_t{R0 + RR} * Stride;
            for (unsigned Word = 0; Word < W; ++Word) {
              uint64_t Value = 0;
              for (unsigned E = 0; E < PerWord; ++E) {
                const unsigned J = Word * PerWord + E;
                Value |= M[RR * MBits + MBits - 1 - J] << (E * G);
              }
              Dst[Word] = Value;
            }
          }
        }
      }
    }
    return;
  }

  // Vertical: assemble whole 64-bit words (MBits is a power of two, so
  // elements never straddle words).
  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    uint64_t *Dst = Regs + size_t{R} * Stride;
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      uint64_t Value = 0;
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Value |= (Blocks[size_t{B} * Len + R] & Mask) << (E * MBits);
      Dst[Word] = Value;
    }
  }
}

void SliceLayout::unpackWords(const uint64_t *Regs, unsigned Stride,
                              unsigned Len, uint64_t *Blocks) const {
  const unsigned S = slices();
  const unsigned W = widthWords();
  (void)W;

  if (MBits == 1) {
    for (unsigned BT = 0; BT < S; BT += 64) {
      const unsigned Word = BT / 64;
      for (unsigned RT = 0; RT < Len; RT += 64) {
        const unsigned RN = std::min(64u, Len - RT);
        uint64_t M[64];
        for (unsigned RR = 0; RR < RN; ++RR)
          M[RR] = Regs[size_t{RT + RR} * Stride + Word];
        for (unsigned RR = RN; RR < 64; ++RR)
          M[RR] = 0;
        transpose64x64(M);
        for (unsigned BB = 0; BB < 64; ++BB) {
          uint64_t *Dst = Blocks + size_t{BT + BB} * Len + RT;
          for (unsigned RR = 0; RR < RN; ++RR)
            Dst[RR] = (M[BB] >> RR) & 1;
        }
      }
    }
    return;
  }

  if (Direction == Dir::Horiz) {
    // Inverse of the tiled pack: gather 64/MBits registers' position
    // rows into one matrix, transpose once, and peel each block's atoms
    // out of the row's MBits-wide fields.
    const unsigned G = (W * 64) / MBits;
    const unsigned RegsPerTile = 64 / MBits;
    const uint64_t AtomMask = lowBitMask(MBits);
    for (unsigned R0 = 0; R0 < Len; R0 += RegsPerTile) {
      const unsigned RN = std::min(RegsPerTile, Len - R0);
      for (unsigned BT = 0; BT < S; BT += 64) {
        const unsigned BN = std::min(64u, S - BT);
        uint64_t M[64] = {};
        if (G >= 64) {
          const unsigned WordsPerGroup = G / 64;
          const unsigned T = BT / 64;
          for (unsigned RR = 0; RR < RN; ++RR) {
            const uint64_t *Src = Regs + size_t{R0 + RR} * Stride;
            for (unsigned J = 0; J < MBits; ++J)
              M[RR * MBits + MBits - 1 - J] = Src[J * WordsPerGroup + T];
          }
        } else {
          const unsigned PerWord = 64 / G;
          const uint64_t GroupMask = lowBitMask(G);
          for (unsigned RR = 0; RR < RN; ++RR) {
            const uint64_t *Src = Regs + size_t{R0 + RR} * Stride;
            for (unsigned Word = 0; Word < W; ++Word)
              for (unsigned E = 0; E < PerWord; ++E) {
                const unsigned J = Word * PerWord + E;
                M[RR * MBits + MBits - 1 - J] =
                    (Src[Word] >> (E * G)) & GroupMask;
              }
          }
        }
        transpose64x64(M);
        for (unsigned BB = 0; BB < BN; ++BB) {
          uint64_t *Dst = Blocks + size_t{BT + BB} * Len + R0;
          for (unsigned RR = 0; RR < RN; ++RR)
            Dst[RR] = (M[BB] >> (RR * MBits)) & AtomMask;
        }
      }
    }
    return;
  }

  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    const uint64_t *Src = Regs + size_t{R} * Stride;
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      const uint64_t Value = Src[Word];
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Blocks[size_t{B} * Len + R] = (Value >> (E * MBits)) & Mask;
    }
  }
}

void SliceLayout::pack(const uint64_t *Blocks, unsigned Len,
                       SimdReg *Regs) const {
  for (unsigned R = 0; R < Len; ++R)
    Regs[R] = SimdReg{};
  packWords(Blocks, Len, reinterpret_cast<uint64_t *>(Regs),
            SimdReg::MaxWords);
}

void SliceLayout::unpack(const SimdReg *Regs, unsigned Len,
                         uint64_t *Blocks) const {
  unpackWords(reinterpret_cast<const uint64_t *>(Regs), SimdReg::MaxWords,
              Len, Blocks);
}

void SliceLayout::packDense(const uint64_t *Blocks, unsigned Len,
                            uint64_t *Dense) const {
  packWords(Blocks, Len, Dense, widthWords());
}

void SliceLayout::unpackDense(const uint64_t *Dense, unsigned Len,
                              uint64_t *Blocks) const {
  unpackWords(Dense, widthWords(), Len, Blocks);
}

void SliceLayout::packNaive(const uint64_t *Blocks, unsigned Len,
                            SimdReg *Regs) const {
  const unsigned S = slices();
  const unsigned W = widthWords();
  if (MBits == 1) {
    for (unsigned R = 0; R < Len; ++R) {
      Regs[R] = SimdReg{};
      for (unsigned B = 0; B < S; ++B)
        Regs[R].setBit(B, Blocks[size_t{B} * Len + R] & 1);
    }
    return;
  }

  if (Direction == Dir::Horiz) {
    const unsigned GroupBits = (W * 64) / MBits;
    for (unsigned R = 0; R < Len; ++R) {
      Regs[R] = SimdReg{};
      for (unsigned B = 0; B < S; ++B) {
        uint64_t Atom = Blocks[size_t{B} * Len + R];
        for (unsigned J = 0; J < MBits; ++J)
          Regs[R].setBit(J * GroupBits + B, getBit(Atom, MBits - 1 - J));
      }
    }
    return;
  }

  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    Regs[R] = SimdReg{};
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      uint64_t Value = 0;
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Value |= (Blocks[size_t{B} * Len + R] & Mask) << (E * MBits);
      Regs[R].Words[Word] = Value;
    }
  }
}

void SliceLayout::unpackNaive(const SimdReg *Regs, unsigned Len,
                              uint64_t *Blocks) const {
  const unsigned S = slices();
  const unsigned W = widthWords();
  if (MBits == 1) {
    for (unsigned R = 0; R < Len; ++R)
      for (unsigned B = 0; B < S; ++B)
        Blocks[size_t{B} * Len + R] = Regs[R].bit(B);
    return;
  }

  if (Direction == Dir::Horiz) {
    const unsigned GroupBits = (W * 64) / MBits;
    for (unsigned R = 0; R < Len; ++R)
      for (unsigned B = 0; B < S; ++B) {
        uint64_t Atom = 0;
        for (unsigned J = 0; J < MBits; ++J)
          Atom = setBit(Atom, MBits - 1 - J,
                        Regs[R].bit(J * GroupBits + B));
        Blocks[size_t{B} * Len + R] = Atom;
      }
    return;
  }

  const unsigned PerWord = 64 / MBits;
  const uint64_t Mask = lowBitMask(MBits);
  for (unsigned R = 0; R < Len; ++R) {
    unsigned B = 0;
    for (unsigned Word = 0; B < S; ++Word) {
      uint64_t Value = Regs[R].Words[Word];
      for (unsigned E = 0; E < PerWord && B < S; ++E, ++B)
        Blocks[size_t{B} * Len + R] = (Value >> (E * MBits)) & Mask;
    }
  }
}

void usuba::expandAtomsToBits(const uint64_t *Atoms, unsigned Count,
                              unsigned MBits, uint64_t *Bits) {
  for (unsigned A = 0; A < Count; ++A)
    for (unsigned J = 0; J < MBits; ++J)
      Bits[size_t{A} * MBits + J] = getBit(Atoms[A], MBits - 1 - J);
}

void usuba::collapseBitsToAtoms(const uint64_t *Bits, unsigned Count,
                                unsigned MBits, uint64_t *Atoms) {
  for (unsigned A = 0; A < Count; ++A) {
    uint64_t Atom = 0;
    for (unsigned J = 0; J < MBits; ++J)
      Atom = setBit(Atom, MBits - 1 - J, Bits[size_t{A} * MBits + J] & 1);
    Atoms[A] = Atom;
  }
}

void SliceLayout::packBroadcast(const uint64_t *Atoms, unsigned Len,
                                SimdReg *Regs) const {
  const unsigned W = widthWords();
  for (unsigned R = 0; R < Len; ++R) {
    if (Direction == Dir::Horiz && MBits > 1)
      simd::broadcastHorizontal(Regs[R], Atoms[R], W, MBits);
    else
      simd::broadcastVertical(Regs[R], Atoms[R], W, MBits);
  }
}

void SliceLayout::packBroadcastDense(const uint64_t *Atoms, unsigned Len,
                                     uint64_t *Dense) const {
  const unsigned W = widthWords();
  SimdReg Reg;
  for (unsigned R = 0; R < Len; ++R) {
    if (Direction == Dir::Horiz && MBits > 1)
      simd::broadcastHorizontal(Reg, Atoms[R], W, MBits);
    else
      simd::broadcastVertical(Reg, Atoms[R], W, MBits);
    for (unsigned J = 0; J < W; ++J)
      Dense[size_t{R} * W + J] = Reg.Words[J];
  }
}
