//===- Ast.h - Usuba abstract syntax ----------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of the Usuba surface language (paper Section 2.2):
/// programs are ordered sets of nodes; a node is an unordered system of
/// equations over vectors of words; tables and permutations are syntactic
/// sugar elaborated to Boolean circuits. AST nodes use a tagged-kind
/// representation with asserting accessors rather than a class hierarchy:
/// the grammar is small and closed, and passes dispatch on every kind
/// anyway.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_AST_H
#define USUBA_FRONTEND_AST_H

#include "support/SourceLoc.h"
#include "types/Type.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace usuba {
namespace ast {

//===----------------------------------------------------------------------===//
// Compile-time integer expressions
//===----------------------------------------------------------------------===//

/// Arithmetic over compile-time integers: vector indices, `forall` bounds
/// and shift amounts. Variables refer to enclosing `forall` indices.
struct ConstExpr {
  enum class Kind : uint8_t { Int, Var, Add, Sub, Mul, Div, Mod };

  Kind K = Kind::Int;
  SourceLoc Loc;
  int64_t Value = 0;                       ///< Int
  std::string Name;                        ///< Var
  std::unique_ptr<ConstExpr> Lhs, Rhs;     ///< binary kinds

  static ConstExpr makeInt(int64_t Value, SourceLoc Loc = {});
  static ConstExpr makeVar(std::string Name, SourceLoc Loc = {});
  static ConstExpr makeBin(Kind K, ConstExpr Lhs, ConstExpr Rhs,
                           SourceLoc Loc = {});

  ConstExpr() = default;
  ConstExpr(ConstExpr &&) = default;
  ConstExpr &operator=(ConstExpr &&) = default;

  ConstExpr clone() const;

  /// Evaluates under \p Env (forall indices). Reports division by zero via
  /// \p Ok. Unknown variables assert: scoping is checked beforehand.
  int64_t evaluate(const std::map<std::string, int64_t> &Env,
                   bool &Ok) const;

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary word-level operators (the Logic and Arith classes).
enum class BinopKind : uint8_t { And, Or, Xor, Andn, Add, Sub, Mul };

/// Shift/rotate operators (the Shift class).
enum class ShiftKind : uint8_t { Lshift, Rshift, Lrotate, Rrotate };

const char *binopName(BinopKind K);
const char *shiftName(ShiftKind K);

/// A word-level expression.
struct Expr {
  enum class Kind : uint8_t {
    Var,     ///< x
    IntLit,  ///< a word constant, broadcast to every slice
    Index,   ///< e[i] (single compile-time index)
    Range,   ///< e[lo..hi] (inclusive bounds)
    Tuple,   ///< (e1, ..., en) — flattened vector concatenation
    Not,     ///< ~e
    Binop,   ///< e1 op e2
    Shift,   ///< e << k, e >>> k, ... (k compile-time)
    Call,    ///< f(e1, ..., en)
    Shuffle, ///< Shuffle(e, [p0, ..., pm-1]) — atom bit permutation
  };

  Kind K;
  SourceLoc Loc;

  std::string Name;                        ///< Var, Call
  uint64_t IntValue = 0;                   ///< IntLit
  std::unique_ptr<Expr> Base;              ///< Index, Range, Not, Shift,
                                           ///< Shuffle, Binop lhs
  std::unique_ptr<Expr> Rhs;               ///< Binop rhs
  std::unique_ptr<ConstExpr> Index0;       ///< Index, Range lo
  std::unique_ptr<ConstExpr> Index1;       ///< Range hi
  std::vector<std::unique_ptr<Expr>> Elems; ///< Tuple, Call args
  BinopKind Binop = BinopKind::And;        ///< Binop
  ShiftKind Shift = ShiftKind::Lshift;     ///< Shift
  std::unique_ptr<ConstExpr> Amount;       ///< Shift amount
  std::vector<unsigned> Pattern;           ///< Shuffle permutation

  explicit Expr(Kind K, SourceLoc Loc = {}) : K(K), Loc(Loc) {}

  static std::unique_ptr<Expr> makeVar(std::string Name, SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeInt(uint64_t Value, SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeIndex(std::unique_ptr<Expr> Base,
                                         ConstExpr Index,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeRange(std::unique_ptr<Expr> Base,
                                         ConstExpr Lo, ConstExpr Hi,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Expr>
  makeTuple(std::vector<std::unique_ptr<Expr>> Elems, SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeNot(std::unique_ptr<Expr> Operand,
                                       SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeBinop(BinopKind K,
                                         std::unique_ptr<Expr> Lhs,
                                         std::unique_ptr<Expr> Rhs,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeShift(ShiftKind K,
                                         std::unique_ptr<Expr> Operand,
                                         ConstExpr Amount,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Expr>
  makeCall(std::string Callee, std::vector<std::unique_ptr<Expr>> Args,
           SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeShuffle(std::unique_ptr<Expr> Operand,
                                           std::vector<unsigned> Pattern,
                                           SourceLoc Loc = {});

  std::unique_ptr<Expr> clone() const;
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Equations
//===----------------------------------------------------------------------===//

/// Left-hand side of an equation: a variable with a (possibly empty) chain
/// of index/range accesses, e.g. `out`, `round[i+1]`, `state[0..3]`.
struct LValue {
  struct Access {
    bool IsRange = false;
    ConstExpr Index; ///< index, or range lower bound
    ConstExpr Hi;    ///< range upper bound (inclusive)
  };

  std::string Name;
  SourceLoc Loc;
  std::vector<Access> Accesses;

  LValue clone() const;
  std::string str() const;
};

/// An equation: either a (multi-)assignment or a `forall` group.
struct Equation {
  enum class Kind : uint8_t { Assign, ForAll };

  Kind K = Kind::Assign;
  SourceLoc Loc;

  // Assign.
  std::vector<LValue> Lhs;
  std::unique_ptr<Expr> Rhs;
  /// `x := e` imperative-assignment sugar: desugared by normalization into
  /// SSA by introducing a fresh name.
  bool Imperative = false;
  /// Which top-level `forall` iteration produced this equation (0 when the
  /// equation is outside any loop). Set by forall expansion; used to model
  /// "no unrolling" as scheduling barriers between rounds.
  unsigned IterGroup = 0;

  // ForAll.
  std::string IndexName;
  ConstExpr Lo, Hi; ///< inclusive bounds
  std::vector<Equation> Body;

  Equation() = default;
  Equation(Equation &&) = default;
  Equation &operator=(Equation &&) = default;

  Equation clone() const;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A typed variable declaration (parameter, return or local).
struct VarDecl {
  std::string Name;
  Type Ty = Type::nat();
  SourceLoc Loc;
};

/// A top-level definition: a computational node, a lookup table or a
/// permutation. Tables/permutations carry their raw data and are elaborated
/// into circuit nodes by the front-end.
struct Node {
  enum class Kind : uint8_t { Fun, Table, Perm };

  Kind K = Kind::Fun;
  std::string Name;
  SourceLoc Loc;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Returns;
  std::vector<VarDecl> Vars;          ///< Fun only
  std::vector<Equation> Eqns;         ///< Fun only
  std::vector<uint64_t> TableEntries; ///< Table only: 2^inBits outputs
  std::vector<unsigned> PermIndices;  ///< Perm only: 1-based source bits

  Node clone() const;
};

/// A whole program: a totally ordered set of nodes, the last of which is
/// the main entry point (paper Section 2.2).
struct Program {
  std::vector<Node> Nodes;

  const Node *findNode(const std::string &Name) const {
    for (const Node &N : Nodes)
      if (N.Name == Name)
        return &N;
    return nullptr;
  }
  const Node &entry() const {
    assert(!Nodes.empty() && "empty program has no entry node");
    return Nodes.back();
  }

  Program clone() const;
};

} // namespace ast
} // namespace usuba

#endif // USUBA_FRONTEND_AST_H
