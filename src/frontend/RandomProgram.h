//===- RandomProgram.h - Typed random Usuba program generator ---*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-aware random `.ua` program generation for differential fuzzing
/// (bench/fuzz_differential.cpp, usubac --fuzz). A RandomProgramSpec is a
/// structured description — slicing, word size, a chain of typed
/// equations, optional table / helper node / forall loop — that renders
/// to source text which type-checks by construction:
///
///  * arithmetic (+ - *) only in plain vertical slicing (it neither
///    bitslices nor H-slices, Section 2 of the paper);
///  * shifts, rotates, logic, immediates and table lookups everywhere.
///
/// Keeping the structure (rather than just text) is what makes the
/// delta-debugging minimizer cheap: every equation can be disabled into
/// a passthrough copy, so shrinking is a sequence of single-bit edits
/// re-rendered and re-tested, no source parsing involved.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_RANDOMPROGRAM_H
#define USUBA_FRONTEND_RANDOMPROGRAM_H

#include "types/Type.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace usuba {

/// One generated equation `t<i> = <rhs>`. Operand selectors A and B pick
/// a previously defined value: values below NumInputs are input elements
/// `x[A]`, values at or above it are temporaries `t<A - NumInputs>`
/// (only earlier temps are ever selected, keeping the chain SSA).
struct RandomEquation {
  enum class Kind : uint8_t {
    Xor,    ///< (a ^ b)
    And,    ///< (a & b)
    OrNot,  ///< (a | ~b)
    XorImm, ///< (a ^ 0x<imm>)
    Shl,    ///< (a << amount)
    Shr,    ///< (a >> amount)
    Rotl,   ///< (a <<< amount)
    Rotr,   ///< (a >>> amount)
    Add,    ///< (a + b)     vertical slicing only
    Sub,    ///< (a - b)     vertical slicing only
    Mul,    ///< (a * b)     vertical slicing only
    CallHelper, ///< G(a) — exercises Call + the inliner
  };
  Kind K = Kind::Xor;
  unsigned A = 0, B = 0;
  unsigned Amount = 0; ///< shifts/rotates
  uint64_t Imm = 0;    ///< XorImm
  /// Minimizer switch: a disabled equation renders as the passthrough
  /// `t<i> = <a>`, preserving every later operand selector.
  bool Enabled = true;
};

/// A complete random program: renders to one `.ua` translation unit with
/// entry node F.
struct RandomProgramSpec {
  Dir Direction = Dir::Vert;
  unsigned WordBits = 16;
  bool Bitslice = false;
  unsigned NumInputs = 3;
  /// Output arity is fixed at 4 (matches the v4 lookup table's shape).
  static constexpr unsigned NumOutputs = 4;
  bool WithTable = false;  ///< route the outputs through table T
  bool WithHelper = false; ///< emit helper node G (CallHelper equations)
  bool WithForall = false; ///< append a forall accumulation loop
  std::vector<RandomEquation> Equations;
  /// 16-entry v4 lookup table contents (a permutation of 0..15).
  std::vector<unsigned> Table;
  /// The generator seed (recorded in the header for provenance; a
  /// minimized spec no longer regenerates from it).
  uint64_t Seed = 0;

  /// True when atom shifts/rotates have a Table 1 instance on every leg
  /// the campaign compiles for this slicing (see RandomProgram.cpp).
  bool shiftsPortable() const;
  /// True when any enabled equation is Add/Sub/Mul.
  bool usesArith() const;
  /// True when any enabled equation calls the helper node.
  bool usesHelper() const;
  /// The `.ua` source text, led by the replayable provenance header
  /// `// usuba-fuzz: dir=<V|H> m=<bits> bitslice=<0|1> seed=<n>`.
  std::string render() const;
};

/// Derives a full spec from \p Seed (deterministic; different seeds give
/// different slicings, shapes and equation mixes).
RandomProgramSpec generateRandomProgram(uint64_t Seed);

/// Greedy delta-debugging: repeatedly disables equations (and the
/// table / helper / forall features) while \p StillFails keeps returning
/// true on the shrunk spec, to a fixpoint. \p StillFails must return
/// true for \p Spec itself; the result is the smallest failing spec the
/// greedy walk found.
RandomProgramSpec minimizeRandomProgram(
    const RandomProgramSpec &Spec,
    const std::function<bool(const RandomProgramSpec &)> &StillFails);

/// The compile configuration a corpus file replays under (parsed back
/// from the render() header line).
struct FuzzHeader {
  Dir Direction = Dir::Vert;
  unsigned WordBits = 16;
  bool Bitslice = false;
  uint64_t Seed = 0;
};

/// Parses the `// usuba-fuzz:` header of \p Source (first line), or
/// nullopt when absent/malformed.
std::optional<FuzzHeader> parseFuzzHeader(std::string_view Source);

} // namespace usuba

#endif // USUBA_FRONTEND_RANDOMPROGRAM_H
