//===- Token.h - Usuba lexical tokens ---------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Usuba lexer.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_TOKEN_H
#define USUBA_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace usuba {

enum class TokenKind : uint8_t {
  // Meta.
  Eof,
  Error,
  // Literals and identifiers.
  Ident,
  IntLit,
  // Keywords.
  KwNode,
  KwTable,
  KwPerm,
  KwReturns,
  KwVars,
  KwLet,
  KwTel,
  KwForall,
  KwIn,
  KwShuffle,
  // Punctuation.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Colon,
  DotDot,
  // Operators.
  Eq,       // =
  ColonEq,  // :=
  Amp,      // &
  Pipe,     // |
  Caret,    // ^
  Tilde,    // ~
  Plus,     // +
  Minus,    // -
  Star,     // *
  Slash,    // /
  Percent,  // %
  Shl,      // <<
  Shr,      // >>
  Rotl,     // <<<
  Rotr,     // >>>
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexical token. \c Text holds the identifier spelling or the raw
/// literal; \c IntValue is the decoded value of an IntLit.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  uint64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace usuba

#endif // USUBA_FRONTEND_TOKEN_H
