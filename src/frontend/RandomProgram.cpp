//===- RandomProgram.cpp - Typed random Usuba program generator -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/RandomProgram.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace usuba;

namespace {

/// splitmix64: the seed expander (same recurrence the validator's random
/// tier uses — tiny, full-period, no state beyond the counter).
uint64_t splitmix64(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// The operand as source text.
std::string operandText(const RandomProgramSpec &Spec, unsigned Sel) {
  if (Sel < Spec.NumInputs)
    return "x[" + std::to_string(Sel) + "]";
  return "t" + std::to_string(Sel - Spec.NumInputs);
}

std::string hexImm(uint64_t Imm) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(Imm));
  return Buf;
}

} // namespace

bool RandomProgramSpec::shiftsPortable() const {
  // Bitslicing flattens atom shifts into wiring (no Shift instance
  // needed). Horizontal programs run on SSE and up, where shuffles exist
  // at m <= 16 (the generator never picks m = 32 for H). Vertical
  // programs compile down to GP64 *and* SSE, whose packed shifts only
  // overlap at 16 and 32 bits (Table 1).
  if (Bitslice)
    return true;
  if (Direction == Dir::Horiz)
    return WordBits <= 16;
  return WordBits == 16 || WordBits == 32;
}

bool RandomProgramSpec::usesArith() const {
  for (const RandomEquation &E : Equations)
    if (E.Enabled &&
        (E.K == RandomEquation::Kind::Add || E.K == RandomEquation::Kind::Sub ||
         E.K == RandomEquation::Kind::Mul))
      return true;
  return false;
}

bool RandomProgramSpec::usesHelper() const {
  if (!WithHelper)
    return false;
  for (const RandomEquation &E : Equations)
    if (E.Enabled && E.K == RandomEquation::Kind::CallHelper)
      return true;
  return false;
}

std::string RandomProgramSpec::render() const {
  const std::string U = "u" + std::to_string(WordBits);
  std::string Source;
  Source += "// usuba-fuzz: dir=";
  Source += Direction == Dir::Horiz ? 'H' : 'V';
  Source += " m=" + std::to_string(WordBits);
  Source += " bitslice=";
  Source += Bitslice ? '1' : '0';
  Source += " seed=" + std::to_string(Seed);
  Source += "\n";

  if (WithTable) {
    Source += "table T (in:v4) returns (out:v4) {\n  ";
    for (unsigned I = 0; I < 16; ++I) {
      Source += std::to_string(I < Table.size() ? Table[I] : I);
      Source += I + 1 < 16 ? ", " : "\n";
    }
    Source += "}\n";
  }
  if (usesHelper()) {
    // A fixed two-op body; the interesting part is the call boundary
    // itself (inlining, scheduling around calls), not the body. The mix
    // op degrades from a rotate to an immediate-or where Table 1 has no
    // portable Shift instance.
    Source += "node G (w:" + U + ") returns (r:" + U + ")\n";
    Source += "vars g0:" + U + "\n";
    Source += "let\n";
    if (shiftsPortable())
      Source += "  g0 = (w <<< " +
                std::to_string(1 + Seed % (WordBits - 1)) + ");\n";
    else
      Source += "  g0 = (w | " +
                hexImm(0x55555555555555ull &
                       ((uint64_t{1} << WordBits) - 1)) +
                ");\n";
    Source += "  r = (w ^ g0)\ntel\n";
  }

  const unsigned Temps = static_cast<unsigned>(Equations.size());
  Source += "node F (x:" + U + "x" + std::to_string(NumInputs) +
            ") returns (y:" + U + "x" + std::to_string(NumOutputs) + ")\n";
  Source += "vars ";
  for (unsigned T = 0; T < Temps; ++T)
    Source += "t" + std::to_string(T) + ":" + U + (T + 1 < Temps ? ", " : "");
  if (WithForall)
    Source += ", a:" + U + "[4]";
  Source += "\nlet\n";

  for (unsigned T = 0; T < Temps; ++T) {
    const RandomEquation &E = Equations[T];
    const std::string A = operandText(*this, E.A);
    const std::string B = operandText(*this, E.B);
    std::string Rhs;
    if (!E.Enabled) {
      Rhs = A; // passthrough: the minimizer turned this equation off
    } else {
      switch (E.K) {
      case RandomEquation::Kind::Xor:
        Rhs = "(" + A + " ^ " + B + ")";
        break;
      case RandomEquation::Kind::And:
        Rhs = "(" + A + " & " + B + ")";
        break;
      case RandomEquation::Kind::OrNot:
        Rhs = "(" + A + " | ~" + B + ")";
        break;
      case RandomEquation::Kind::XorImm:
        Rhs = "(" + A + " ^ " + hexImm(E.Imm) + ")";
        break;
      case RandomEquation::Kind::Shl:
        Rhs = "(" + A + " << " + std::to_string(E.Amount) + ")";
        break;
      case RandomEquation::Kind::Shr:
        Rhs = "(" + A + " >> " + std::to_string(E.Amount) + ")";
        break;
      case RandomEquation::Kind::Rotl:
        Rhs = "(" + A + " <<< " + std::to_string(E.Amount) + ")";
        break;
      case RandomEquation::Kind::Rotr:
        Rhs = "(" + A + " >>> " + std::to_string(E.Amount) + ")";
        break;
      case RandomEquation::Kind::Add:
        Rhs = "(" + A + " + " + B + ")";
        break;
      case RandomEquation::Kind::Sub:
        Rhs = "(" + A + " - " + B + ")";
        break;
      case RandomEquation::Kind::Mul:
        Rhs = "(" + A + " * " + B + ")";
        break;
      case RandomEquation::Kind::CallHelper:
        Rhs = usesHelper() ? "G(" + A + ")" : A;
        break;
      }
    }
    Source += "  t" + std::to_string(T) + " = " + Rhs + ";\n";
  }

  // The forall accumulation: a tiny unrollable loop over the last temp,
  // folding one input element back in each step.
  if (WithForall) {
    Source += "  a[0] = t" + std::to_string(Temps - 1) + ";\n";
    Source += "  forall i in [0,2] {\n";
    Source += "    a[i+1] = (a[i] ^ x[" + std::to_string(Seed % NumInputs) +
              "])\n";
    Source += "  }\n";
  }

  // Outputs: the last four defined values (a[3] replaces the first when
  // the forall ran), optionally routed through the lookup table.
  std::array<std::string, NumOutputs> Out;
  for (unsigned I = 0; I < NumOutputs; ++I)
    Out[I] = "t" + std::to_string(Temps - NumOutputs + I);
  if (WithForall)
    Out[0] = "a[3]";
  std::string Tuple =
      "(" + Out[0] + ", " + Out[1] + ", " + Out[2] + ", " + Out[3] + ")";
  Source += "  y = ";
  Source += WithTable ? "T(" + Tuple + ")" : Tuple;
  Source += "\ntel\n";
  return Source;
}

RandomProgramSpec usuba::generateRandomProgram(uint64_t Seed) {
  uint64_t State = Seed;
  RandomProgramSpec Spec;
  Spec.Seed = Seed;

  // Shape: slicing mode first, because it constrains the equation mix.
  // Roughly half the programs are plain vertical (the only mode that
  // admits arithmetic), the rest split between horizontal and bitslice.
  const unsigned Mode = splitmix64(State) % 4;
  Spec.Direction = Mode == 2 ? Dir::Horiz : Dir::Vert;
  Spec.Bitslice = Mode == 3;
  const bool ArithOk = Mode < 2;

  // Word sizes are constrained by Table 1 instance availability across
  // every leg the campaign compiles (see shiftsPortable's rationale):
  // horizontal shuffles only exist at m <= 16 below AVX512.
  static const unsigned Widths[3] = {8, 16, 32};
  Spec.WordBits = Spec.Direction == Dir::Horiz
                      ? Widths[splitmix64(State) % 2]
                      : Widths[splitmix64(State) % 3];
  Spec.NumInputs = 2 + splitmix64(State) % 3;    // 2..4
  const unsigned Temps = 8 + splitmix64(State) % 7; // 8..14
  Spec.WithTable = splitmix64(State) % 5 < 2;
  Spec.WithHelper = splitmix64(State) % 5 < 2;
  Spec.WithForall = splitmix64(State) % 4 == 0;

  if (Spec.WithTable) {
    Spec.Table.resize(16);
    for (unsigned I = 0; I < 16; ++I)
      Spec.Table[I] = I;
    for (unsigned I = 15; I > 0; --I)
      std::swap(Spec.Table[I], Spec.Table[splitmix64(State) % (I + 1)]);
  }

  using K = RandomEquation::Kind;
  std::vector<K> Pool = {K::Xor, K::And, K::OrNot, K::XorImm};
  if (Spec.shiftsPortable()) {
    Pool.push_back(K::Shl);
    Pool.push_back(K::Shr);
    Pool.push_back(K::Rotl);
    Pool.push_back(K::Rotr);
  }
  if (ArithOk) {
    Pool.push_back(K::Add);
    Pool.push_back(K::Sub);
    Pool.push_back(K::Mul);
  }
  if (Spec.WithHelper)
    Pool.push_back(K::CallHelper);

  const unsigned M = Spec.WordBits;
  for (unsigned T = 0; T < Temps; ++T) {
    RandomEquation E;
    E.K = Pool[splitmix64(State) % Pool.size()];
    const unsigned Defined = Spec.NumInputs + T;
    E.A = static_cast<unsigned>(splitmix64(State) % Defined);
    E.B = static_cast<unsigned>(splitmix64(State) % Defined);
    switch (E.K) {
    case K::Shl:
    case K::Shr:
      E.Amount = static_cast<unsigned>(splitmix64(State) % (M + 1)); // 0..m
      break;
    case K::Rotl:
    case K::Rotr:
      E.Amount = 1 + static_cast<unsigned>(splitmix64(State) % (M - 1));
      break;
    case K::XorImm:
      E.Imm = splitmix64(State) & ((M == 64 ? ~uint64_t{0}
                                            : (uint64_t{1} << M) - 1));
      break;
    default:
      break;
    }
    Spec.Equations.push_back(E);
  }
  return Spec;
}

RandomProgramSpec usuba::minimizeRandomProgram(
    const RandomProgramSpec &Spec,
    const std::function<bool(const RandomProgramSpec &)> &StillFails) {
  RandomProgramSpec Best = Spec;

  // Feature knobs first (each removes a whole construct), then a greedy
  // equation sweep to a fixpoint. Every candidate still renders a
  // well-typed program, so StillFails only ever sees valid inputs.
  auto Try = [&](RandomProgramSpec Candidate) {
    if (StillFails(Candidate))
      Best = std::move(Candidate);
  };
  if (Best.WithTable) {
    RandomProgramSpec C = Best;
    C.WithTable = false;
    Try(std::move(C));
  }
  if (Best.WithForall) {
    RandomProgramSpec C = Best;
    C.WithForall = false;
    Try(std::move(C));
  }
  if (Best.WithHelper) {
    RandomProgramSpec C = Best;
    C.WithHelper = false; // CallHelper equations degrade to passthrough
    Try(std::move(C));
  }

  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    for (size_t I = 0; I < Best.Equations.size(); ++I) {
      if (!Best.Equations[I].Enabled)
        continue;
      RandomProgramSpec C = Best;
      C.Equations[I].Enabled = false;
      if (StillFails(C)) {
        Best = std::move(C);
        Shrunk = true;
      }
    }
  }
  return Best;
}

std::optional<FuzzHeader> usuba::parseFuzzHeader(std::string_view Source) {
  const std::string_view Prefix = "// usuba-fuzz:";
  if (Source.substr(0, Prefix.size()) != Prefix)
    return std::nullopt;
  std::string_view Line = Source.substr(Prefix.size());
  if (size_t Eol = Line.find('\n'); Eol != std::string_view::npos)
    Line = Line.substr(0, Eol);

  FuzzHeader H;
  bool SawDir = false, SawM = false;
  size_t Pos = 0;
  while (Pos < Line.size()) {
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
    size_t End = Line.find(' ', Pos);
    if (End == std::string_view::npos)
      End = Line.size();
    std::string_view Field = Line.substr(Pos, End - Pos);
    Pos = End;
    size_t Eq = Field.find('=');
    if (Eq == std::string_view::npos)
      continue;
    std::string_view Key = Field.substr(0, Eq);
    std::string Value(Field.substr(Eq + 1));
    if (Key == "dir") {
      if (Value != "V" && Value != "H")
        return std::nullopt;
      H.Direction = Value == "H" ? Dir::Horiz : Dir::Vert;
      SawDir = true;
    } else if (Key == "m") {
      H.WordBits = static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
      SawM = true;
    } else if (Key == "bitslice") {
      H.Bitslice = Value == "1";
    } else if (Key == "seed") {
      H.Seed = std::strtoull(Value.c_str(), nullptr, 10);
    }
  }
  if (!SawDir || !SawM || H.WordBits == 0)
    return std::nullopt;
  return H;
}
