//===- Parser.cpp - Usuba parser ------------------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cctype>

using namespace usuba;
using namespace usuba::ast;
using detail::Parser;

//===----------------------------------------------------------------------===//
// Type names
//===----------------------------------------------------------------------===//

/// Parses `u[V|H]<m>[x<n>]`, `b<n>`, `v<n>` or `nat` (see Ast.h for the
/// abbreviation conventions).
std::optional<Type> usuba::parseTypeName(const std::string &Text) {
  if (Text == "nat")
    return Type::nat();
  if (Text.empty())
    return std::nullopt;

  size_t Pos = 1;
  auto ParseNumber = [&](unsigned &Out) -> bool {
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return false;
    unsigned Value = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      Value = Value * 10 + static_cast<unsigned>(Text[Pos] - '0');
      ++Pos;
    }
    Out = Value;
    return Value >= 1;
  };

  char First = Text[0];
  if (First == 'b' || First == 'v') {
    // b<n> = u'D1[n];  v<n> = u'D'm[n]  (n = 1 yields the bare atom).
    unsigned Len = 0;
    if (!ParseNumber(Len) || Pos != Text.size())
      return std::nullopt;
    Type Atom = First == 'b'
                    ? Type::base(Dir::Param, WordSize::fixed(1))
                    : Type::base(Dir::Param, WordSize::param());
    return Len == 1 ? Atom : Type::vector(Atom, Len);
  }

  if (First != 'u')
    return std::nullopt;
  Dir D = Dir::Param;
  if (Pos < Text.size() && (Text[Pos] == 'V' || Text[Pos] == 'H')) {
    D = Text[Pos] == 'V' ? Dir::Vert : Dir::Horiz;
    ++Pos;
  }
  unsigned MBits = 0;
  if (!ParseNumber(MBits))
    return std::nullopt;
  Type Base = Type::base(D, WordSize::fixed(MBits));
  if (Pos == Text.size())
    return Base;
  // Optional `x<n>` matrix suffix.
  if (Text[Pos] != 'x')
    return std::nullopt;
  ++Pos;
  unsigned Len = 0;
  if (!ParseNumber(Len) || Pos != Text.size())
    return std::nullopt;
  return Type::vector(Base, Len);
}

//===----------------------------------------------------------------------===//
// Token-stream helpers
//===----------------------------------------------------------------------===//

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof
  return Tokens[Index];
}

Token Parser::advance() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") +
                                 tokenKindName(Kind) + " " + Context +
                                 ", found " + tokenKindName(current().Kind));
  return false;
}

/// `in` is a keyword only inside `forall ... in [..]`; elsewhere it is a
/// popular parameter name (the paper's own examples use it), so name
/// positions accept it as an identifier.
static bool isNameToken(const Token &T) {
  return T.is(TokenKind::Ident) || T.is(TokenKind::KwIn);
}

void Parser::skipToTopLevel() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwNode) &&
         !check(TokenKind::KwTable) && !check(TokenKind::KwPerm))
    advance();
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::optional<Program> Parser::parseProgram() {
  Program Prog;
  while (!check(TokenKind::Eof)) {
    if (!parseDefinition(Prog))
      skipToTopLevel();
  }
  if (Diags.hasErrors())
    return std::nullopt;
  if (Prog.Nodes.empty()) {
    Diags.error({1, 1}, "program contains no definitions");
    return std::nullopt;
  }
  return Prog;
}

bool Parser::parseDefinition(Program &Prog) {
  if (check(TokenKind::KwNode))
    return parseNodeDef(Prog);
  if (check(TokenKind::KwTable))
    return parseTableDef(Prog);
  if (check(TokenKind::KwPerm))
    return parsePermDef(Prog);
  Diags.error(current().Loc,
              "expected 'node', 'table' or 'perm' at top level, found " +
                  std::string(tokenKindName(current().Kind)));
  return false;
}

bool Parser::parseParamList(std::vector<VarDecl> &Out) {
  if (!expect(TokenKind::LParen, "to open a parameter list"))
    return false;
  if (match(TokenKind::RParen))
    return true;
  for (;;) {
    // One group: name (, name)* ':' type.
    std::vector<Token> Names;
    for (;;) {
      if (!isNameToken(current())) {
        Diags.error(current().Loc, "expected parameter name");
        return false;
      }
      Names.push_back(advance());
      if (!match(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::Colon, "after parameter name(s)"))
      return false;
    std::optional<Type> Ty = parseType();
    if (!Ty)
      return false;
    for (Token &Name : Names)
      Out.push_back({Name.Text, *Ty, Name.Loc});
    if (match(TokenKind::Comma))
      continue;
    return expect(TokenKind::RParen, "to close the parameter list");
  }
}

bool Parser::parseVarDecls(std::vector<VarDecl> &Out) {
  // Same shape as a parameter list but terminated by 'let'.
  for (;;) {
    std::vector<Token> Names;
    for (;;) {
      if (!isNameToken(current())) {
        Diags.error(current().Loc, "expected variable name in 'vars'");
        return false;
      }
      Names.push_back(advance());
      if (!match(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::Colon, "after variable name(s)"))
      return false;
    std::optional<Type> Ty = parseType();
    if (!Ty)
      return false;
    for (Token &Name : Names)
      Out.push_back({Name.Text, *Ty, Name.Loc});
    if (match(TokenKind::Comma))
      continue;
    return true;
  }
}

std::optional<Type> Parser::parseType() {
  if (!check(TokenKind::Ident)) {
    Diags.error(current().Loc, "expected a type name");
    return std::nullopt;
  }
  Token Name = advance();
  std::optional<Type> Ty = parseTypeName(Name.Text);
  if (!Ty) {
    Diags.error(Name.Loc, "malformed type name '" + Name.Text + "'");
    return std::nullopt;
  }
  // `[n]` suffixes: leftmost suffix is the outermost dimension, so collect
  // then fold from the right.
  std::vector<unsigned> Dims;
  while (match(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLit)) {
      Diags.error(current().Loc, "expected a vector length");
      return std::nullopt;
    }
    Token Len = advance();
    if (Len.IntValue == 0) {
      Diags.error(Len.Loc, "vector length must be positive");
      return std::nullopt;
    }
    Dims.push_back(static_cast<unsigned>(Len.IntValue));
    if (!expect(TokenKind::RBracket, "to close the vector length"))
      return std::nullopt;
  }
  Type Result = *Ty;
  for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
    Result = Type::vector(Result, *It);
  return Result;
}

bool Parser::parseNodeDef(Program &Prog) {
  Token Kw = advance(); // 'node'
  Node N;
  N.K = Node::Kind::Fun;
  N.Loc = Kw.Loc;
  if (!check(TokenKind::Ident)) {
    Diags.error(current().Loc, "expected node name");
    return false;
  }
  N.Name = advance().Text;
  if (!parseParamList(N.Params))
    return false;
  if (!expect(TokenKind::KwReturns, "after the parameter list"))
    return false;
  if (!parseParamList(N.Returns))
    return false;
  if (match(TokenKind::KwVars))
    if (!parseVarDecls(N.Vars))
      return false;
  if (!expect(TokenKind::KwLet, "to open the node body"))
    return false;
  if (!parseEquations(N.Eqns, TokenKind::KwTel))
    return false;
  if (!expect(TokenKind::KwTel, "to close the node body"))
    return false;
  Prog.Nodes.push_back(std::move(N));
  return true;
}

bool Parser::parseTableDef(Program &Prog) {
  Token Kw = advance(); // 'table'
  Node N;
  N.K = Node::Kind::Table;
  N.Loc = Kw.Loc;
  if (!check(TokenKind::Ident)) {
    Diags.error(current().Loc, "expected table name");
    return false;
  }
  N.Name = advance().Text;
  if (!parseParamList(N.Params) ||
      !expect(TokenKind::KwReturns, "after the parameter list") ||
      !parseParamList(N.Returns))
    return false;
  if (!expect(TokenKind::LBrace, "to open the table entries"))
    return false;
  for (;;) {
    if (!check(TokenKind::IntLit)) {
      Diags.error(current().Loc, "expected a table entry");
      return false;
    }
    N.TableEntries.push_back(advance().IntValue);
    if (match(TokenKind::Comma))
      continue;
    break;
  }
  if (!expect(TokenKind::RBrace, "to close the table entries"))
    return false;
  Prog.Nodes.push_back(std::move(N));
  return true;
}

bool Parser::parsePermDef(Program &Prog) {
  Token Kw = advance(); // 'perm'
  Node N;
  N.K = Node::Kind::Perm;
  N.Loc = Kw.Loc;
  if (!check(TokenKind::Ident)) {
    Diags.error(current().Loc, "expected permutation name");
    return false;
  }
  N.Name = advance().Text;
  if (!parseParamList(N.Params) ||
      !expect(TokenKind::KwReturns, "after the parameter list") ||
      !parseParamList(N.Returns))
    return false;
  if (!expect(TokenKind::LBrace, "to open the permutation indices"))
    return false;
  for (;;) {
    if (!check(TokenKind::IntLit)) {
      Diags.error(current().Loc, "expected a permutation index");
      return false;
    }
    Token Index = advance();
    if (Index.IntValue == 0) {
      Diags.error(Index.Loc, "permutation indices are 1-based");
      return false;
    }
    N.PermIndices.push_back(static_cast<unsigned>(Index.IntValue));
    if (match(TokenKind::Comma))
      continue;
    break;
  }
  if (!expect(TokenKind::RBrace, "to close the permutation indices"))
    return false;
  Prog.Nodes.push_back(std::move(N));
  return true;
}

//===----------------------------------------------------------------------===//
// Equations
//===----------------------------------------------------------------------===//

bool Parser::parseEquations(std::vector<Equation> &Out, TokenKind EndKind) {
  while (!check(EndKind) && !check(TokenKind::Eof)) {
    if (match(TokenKind::Semi))
      continue; // tolerate stray separators
    std::optional<Equation> Eqn = parseEquation();
    if (!Eqn)
      return false;
    Out.push_back(std::move(*Eqn));
    match(TokenKind::Semi);
  }
  return true;
}

std::optional<Equation> Parser::parseEquation() {
  if (check(TokenKind::KwForall)) {
    Token Kw = advance();
    Equation Eqn;
    Eqn.K = Equation::Kind::ForAll;
    Eqn.Loc = Kw.Loc;
    if (!check(TokenKind::Ident)) {
      Diags.error(current().Loc, "expected 'forall' index name");
      return std::nullopt;
    }
    Eqn.IndexName = advance().Text;
    if (!expect(TokenKind::KwIn, "after the 'forall' index") ||
        !expect(TokenKind::LBracket, "to open the 'forall' bounds"))
      return std::nullopt;
    std::optional<ConstExpr> Lo = parseConstExpr();
    if (!Lo || !expect(TokenKind::Comma, "between the 'forall' bounds"))
      return std::nullopt;
    std::optional<ConstExpr> Hi = parseConstExpr();
    if (!Hi || !expect(TokenKind::RBracket, "to close the 'forall' bounds"))
      return std::nullopt;
    Eqn.Lo = std::move(*Lo);
    Eqn.Hi = std::move(*Hi);
    if (!expect(TokenKind::LBrace, "to open the 'forall' body"))
      return std::nullopt;
    if (!parseEquations(Eqn.Body, TokenKind::RBrace))
      return std::nullopt;
    if (!expect(TokenKind::RBrace, "to close the 'forall' body"))
      return std::nullopt;
    return Eqn;
  }

  // Assignment: lvalues '=' expr | lvalue ':=' expr.
  Equation Eqn;
  Eqn.K = Equation::Kind::Assign;
  Eqn.Loc = current().Loc;
  if (match(TokenKind::LParen)) {
    for (;;) {
      std::optional<LValue> L = parseLValue();
      if (!L)
        return std::nullopt;
      Eqn.Lhs.push_back(std::move(*L));
      if (match(TokenKind::Comma))
        continue;
      break;
    }
    if (!expect(TokenKind::RParen, "to close the left-hand side tuple"))
      return std::nullopt;
  } else {
    std::optional<LValue> L = parseLValue();
    if (!L)
      return std::nullopt;
    Eqn.Lhs.push_back(std::move(*L));
  }
  if (match(TokenKind::ColonEq)) {
    Eqn.Imperative = true;
    if (Eqn.Lhs.size() != 1) {
      Diags.error(Eqn.Loc, "':=' takes a single left-hand side");
      return std::nullopt;
    }
  } else if (!expect(TokenKind::Eq, "in equation")) {
    return std::nullopt;
  }
  Eqn.Rhs = parseExpr();
  if (!Eqn.Rhs)
    return std::nullopt;
  return Eqn;
}

std::optional<LValue> Parser::parseLValue() {
  if (!isNameToken(current())) {
    Diags.error(current().Loc, "expected a variable on the left-hand side");
    return std::nullopt;
  }
  Token Name = advance();
  LValue L;
  L.Name = Name.Text;
  L.Loc = Name.Loc;
  while (match(TokenKind::LBracket)) {
    LValue::Access A;
    std::optional<ConstExpr> Index = parseConstExpr();
    if (!Index)
      return std::nullopt;
    A.Index = std::move(*Index);
    if (match(TokenKind::DotDot)) {
      A.IsRange = true;
      std::optional<ConstExpr> Hi = parseConstExpr();
      if (!Hi)
        return std::nullopt;
      A.Hi = std::move(*Hi);
    }
    if (!expect(TokenKind::RBracket, "to close the index"))
      return std::nullopt;
    L.Accesses.push_back(std::move(A));
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Compile-time integer expressions
//===----------------------------------------------------------------------===//

std::optional<ConstExpr> Parser::parseConstExpr() {
  std::optional<ConstExpr> Lhs = parseConstTerm();
  if (!Lhs)
    return std::nullopt;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    Token Op = advance();
    std::optional<ConstExpr> Rhs = parseConstTerm();
    if (!Rhs)
      return std::nullopt;
    Lhs = ConstExpr::makeBin(Op.is(TokenKind::Plus) ? ConstExpr::Kind::Add
                                                    : ConstExpr::Kind::Sub,
                             std::move(*Lhs), std::move(*Rhs), Op.Loc);
  }
  return Lhs;
}

std::optional<ConstExpr> Parser::parseConstTerm() {
  std::optional<ConstExpr> Lhs = parseConstAtom();
  if (!Lhs)
    return std::nullopt;
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    Token Op = advance();
    std::optional<ConstExpr> Rhs = parseConstAtom();
    if (!Rhs)
      return std::nullopt;
    ConstExpr::Kind K = Op.is(TokenKind::Star)    ? ConstExpr::Kind::Mul
                        : Op.is(TokenKind::Slash) ? ConstExpr::Kind::Div
                                                  : ConstExpr::Kind::Mod;
    Lhs = ConstExpr::makeBin(K, std::move(*Lhs), std::move(*Rhs), Op.Loc);
  }
  return Lhs;
}

std::optional<ConstExpr> Parser::parseConstAtom() {
  if (check(TokenKind::IntLit)) {
    Token T = advance();
    return ConstExpr::makeInt(static_cast<int64_t>(T.IntValue), T.Loc);
  }
  if (isNameToken(current())) {
    Token T = advance();
    return ConstExpr::makeVar(T.Text, T.Loc);
  }
  if (match(TokenKind::LParen)) {
    std::optional<ConstExpr> Inner = parseConstExpr();
    if (!Inner || !expect(TokenKind::RParen, "in index expression"))
      return std::nullopt;
    return Inner;
  }
  Diags.error(current().Loc, "expected a compile-time integer expression");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Word-level expressions
//===----------------------------------------------------------------------===//

std::unique_ptr<Expr> Parser::parseExpr() { return parseOrExpr(); }

std::unique_ptr<Expr> Parser::parseOrExpr() {
  std::unique_ptr<Expr> Lhs = parseXorExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Pipe)) {
    Token Op = advance();
    std::unique_ptr<Expr> Rhs = parseXorExpr();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeBinop(BinopKind::Or, std::move(Lhs), std::move(Rhs),
                          Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseXorExpr() {
  std::unique_ptr<Expr> Lhs = parseAndExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Caret)) {
    Token Op = advance();
    std::unique_ptr<Expr> Rhs = parseAndExpr();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeBinop(BinopKind::Xor, std::move(Lhs), std::move(Rhs),
                          Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseAndExpr() {
  std::unique_ptr<Expr> Lhs = parseAddExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Amp)) {
    Token Op = advance();
    std::unique_ptr<Expr> Rhs = parseAddExpr();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeBinop(BinopKind::And, std::move(Lhs), std::move(Rhs),
                          Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseAddExpr() {
  std::unique_ptr<Expr> Lhs = parseMulExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    Token Op = advance();
    std::unique_ptr<Expr> Rhs = parseMulExpr();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeBinop(Op.is(TokenKind::Plus) ? BinopKind::Add
                                                 : BinopKind::Sub,
                          std::move(Lhs), std::move(Rhs), Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseMulExpr() {
  std::unique_ptr<Expr> Lhs = parseShiftExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Star)) {
    Token Op = advance();
    std::unique_ptr<Expr> Rhs = parseShiftExpr();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeBinop(BinopKind::Mul, std::move(Lhs), std::move(Rhs),
                          Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseShiftExpr() {
  std::unique_ptr<Expr> Lhs = parseUnaryExpr();
  if (!Lhs)
    return nullptr;
  while (check(TokenKind::Shl) || check(TokenKind::Shr) ||
         check(TokenKind::Rotl) || check(TokenKind::Rotr)) {
    Token Op = advance();
    std::optional<ConstExpr> Amount = parseConstExpr();
    if (!Amount)
      return nullptr;
    ShiftKind K = Op.is(TokenKind::Shl)    ? ShiftKind::Lshift
                  : Op.is(TokenKind::Shr)  ? ShiftKind::Rshift
                  : Op.is(TokenKind::Rotl) ? ShiftKind::Lrotate
                                           : ShiftKind::Rrotate;
    Lhs = Expr::makeShift(K, std::move(Lhs), std::move(*Amount), Op.Loc);
  }
  return Lhs;
}

std::unique_ptr<Expr> Parser::parseUnaryExpr() {
  if (check(TokenKind::Tilde)) {
    Token Op = advance();
    std::unique_ptr<Expr> Operand = parseUnaryExpr();
    if (!Operand)
      return nullptr;
    return Expr::makeNot(std::move(Operand), Op.Loc);
  }
  return parsePostfixExpr();
}

std::unique_ptr<Expr> Parser::parsePostfixExpr() {
  std::unique_ptr<Expr> Base = parseAtomExpr();
  if (!Base)
    return nullptr;
  while (match(TokenKind::LBracket)) {
    SourceLoc Loc = Base->Loc;
    std::optional<ConstExpr> Index = parseConstExpr();
    if (!Index)
      return nullptr;
    if (match(TokenKind::DotDot)) {
      std::optional<ConstExpr> Hi = parseConstExpr();
      if (!Hi || !expect(TokenKind::RBracket, "to close the range"))
        return nullptr;
      Base = Expr::makeRange(std::move(Base), std::move(*Index),
                             std::move(*Hi), Loc);
    } else {
      if (!expect(TokenKind::RBracket, "to close the index"))
        return nullptr;
      Base = Expr::makeIndex(std::move(Base), std::move(*Index), Loc);
    }
  }
  return Base;
}

std::unique_ptr<Expr> Parser::parseAtomExpr() {
  if (check(TokenKind::IntLit)) {
    Token T = advance();
    return Expr::makeInt(T.IntValue, T.Loc);
  }
  if (check(TokenKind::KwShuffle)) {
    Token Kw = advance();
    if (!expect(TokenKind::LParen, "after 'Shuffle'"))
      return nullptr;
    std::unique_ptr<Expr> Operand = parseExpr();
    if (!Operand || !expect(TokenKind::Comma, "after the Shuffle operand") ||
        !expect(TokenKind::LBracket, "to open the Shuffle pattern"))
      return nullptr;
    std::vector<unsigned> Pattern;
    for (;;) {
      if (!check(TokenKind::IntLit)) {
        Diags.error(current().Loc, "expected a Shuffle pattern index");
        return nullptr;
      }
      Pattern.push_back(static_cast<unsigned>(advance().IntValue));
      if (match(TokenKind::Comma))
        continue;
      break;
    }
    if (!expect(TokenKind::RBracket, "to close the Shuffle pattern") ||
        !expect(TokenKind::RParen, "to close the Shuffle call"))
      return nullptr;
    return Expr::makeShuffle(std::move(Operand), std::move(Pattern), Kw.Loc);
  }
  if (isNameToken(current())) {
    Token Name = advance();
    if (match(TokenKind::LParen)) {
      std::vector<std::unique_ptr<Expr>> Args;
      if (!check(TokenKind::RParen)) {
        for (;;) {
          std::unique_ptr<Expr> Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
          if (match(TokenKind::Comma))
            continue;
          break;
        }
      }
      if (!expect(TokenKind::RParen, "to close the call"))
        return nullptr;
      return Expr::makeCall(Name.Text, std::move(Args), Name.Loc);
    }
    return Expr::makeVar(Name.Text, Name.Loc);
  }
  if (match(TokenKind::LParen)) {
    std::vector<std::unique_ptr<Expr>> Elems;
    for (;;) {
      std::unique_ptr<Expr> Elem = parseExpr();
      if (!Elem)
        return nullptr;
      Elems.push_back(std::move(Elem));
      if (match(TokenKind::Comma))
        continue;
      break;
    }
    if (!expect(TokenKind::RParen, "to close the expression"))
      return nullptr;
    if (Elems.size() == 1)
      return std::move(Elems[0]);
    return Expr::makeTuple(std::move(Elems));
  }
  Diags.error(current().Loc, "expected an expression, found " +
                                 std::string(tokenKindName(current().Kind)));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

std::optional<Program> usuba::parseProgram(std::string_view Source,
                                           DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;
  Parser P(std::move(Tokens), Diags);
  return P.parseProgram();
}
