//===- Lexer.h - Usuba lexer ------------------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Usuba surface syntax. Comments use `//` to
/// end of line or `(* ... *)` blocks (the concrete syntax of the public
/// Usuba implementation).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_LEXER_H
#define USUBA_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace usuba {

/// Scans an Usuba source buffer into a token vector (terminated by Eof).
/// Lexical errors are reported to \p Diags and produce Error tokens.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the whole buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = "");
  void skipWhitespaceAndComments();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Column); }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace usuba

#endif // USUBA_FRONTEND_LEXER_H
