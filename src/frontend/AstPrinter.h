//===- AstPrinter.h - Printing programs back to Usuba syntax ----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back into parseable Usuba surface syntax. Used by the
/// usubac CLI (-dump-ast, e.g. to inspect forall expansion or table
/// elaboration) and by the parser round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_ASTPRINTER_H
#define USUBA_FRONTEND_ASTPRINTER_H

#include "frontend/Ast.h"

#include <string>

namespace usuba {

/// Renders \p T in surface syntax ("u16x4[26]", "v4", "b64", "uV32"...).
std::string printType(const Type &T);

/// Renders one definition / a whole program as parseable source.
std::string printNode(const ast::Node &N);
std::string printProgram(const ast::Program &Prog);

} // namespace usuba

#endif // USUBA_FRONTEND_ASTPRINTER_H
