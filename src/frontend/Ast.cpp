//===- Ast.cpp - Usuba abstract syntax ------------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

using namespace usuba;
using namespace usuba::ast;

//===----------------------------------------------------------------------===//
// ConstExpr
//===----------------------------------------------------------------------===//

ConstExpr ConstExpr::makeInt(int64_t Value, SourceLoc Loc) {
  ConstExpr E;
  E.K = Kind::Int;
  E.Value = Value;
  E.Loc = Loc;
  return E;
}

ConstExpr ConstExpr::makeVar(std::string Name, SourceLoc Loc) {
  ConstExpr E;
  E.K = Kind::Var;
  E.Name = std::move(Name);
  E.Loc = Loc;
  return E;
}

ConstExpr ConstExpr::makeBin(Kind K, ConstExpr Lhs, ConstExpr Rhs,
                             SourceLoc Loc) {
  assert(K != Kind::Int && K != Kind::Var && "not a binary kind");
  ConstExpr E;
  E.K = K;
  E.Lhs = std::make_unique<ConstExpr>(std::move(Lhs));
  E.Rhs = std::make_unique<ConstExpr>(std::move(Rhs));
  E.Loc = Loc;
  return E;
}

ConstExpr ConstExpr::clone() const {
  switch (K) {
  case Kind::Int:
    return makeInt(Value, Loc);
  case Kind::Var:
    return makeVar(Name, Loc);
  default:
    return makeBin(K, Lhs->clone(), Rhs->clone(), Loc);
  }
}

int64_t ConstExpr::evaluate(const std::map<std::string, int64_t> &Env,
                            bool &Ok) const {
  switch (K) {
  case Kind::Int:
    return Value;
  case Kind::Var: {
    auto It = Env.find(Name);
    if (It == Env.end()) {
      // Reachable from hostile sources (an index naming a variable that is
      // not a forall counter); report instead of asserting.
      Ok = false;
      return 0;
    }
    return It->second;
  }
  case Kind::Add:
    return Lhs->evaluate(Env, Ok) + Rhs->evaluate(Env, Ok);
  case Kind::Sub:
    return Lhs->evaluate(Env, Ok) - Rhs->evaluate(Env, Ok);
  case Kind::Mul:
    return Lhs->evaluate(Env, Ok) * Rhs->evaluate(Env, Ok);
  case Kind::Div: {
    int64_t L = Lhs->evaluate(Env, Ok);
    int64_t R = Rhs->evaluate(Env, Ok);
    if (R == 0) {
      Ok = false;
      return 0;
    }
    return L / R;
  }
  case Kind::Mod: {
    int64_t L = Lhs->evaluate(Env, Ok);
    int64_t R = Rhs->evaluate(Env, Ok);
    if (R == 0) {
      Ok = false;
      return 0;
    }
    return L % R;
  }
  }
  return 0;
}

std::string ConstExpr::str() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(Value);
  case Kind::Var:
    return Name;
  case Kind::Add:
    return "(" + Lhs->str() + " + " + Rhs->str() + ")";
  case Kind::Sub:
    return "(" + Lhs->str() + " - " + Rhs->str() + ")";
  case Kind::Mul:
    return "(" + Lhs->str() + " * " + Rhs->str() + ")";
  case Kind::Div:
    return "(" + Lhs->str() + " / " + Rhs->str() + ")";
  case Kind::Mod:
    return "(" + Lhs->str() + " % " + Rhs->str() + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

const char *usuba::ast::binopName(BinopKind K) {
  switch (K) {
  case BinopKind::And:
    return "&";
  case BinopKind::Or:
    return "|";
  case BinopKind::Xor:
    return "^";
  case BinopKind::Andn:
    return "&~";
  case BinopKind::Add:
    return "+";
  case BinopKind::Sub:
    return "-";
  case BinopKind::Mul:
    return "*";
  }
  return "?";
}

const char *usuba::ast::shiftName(ShiftKind K) {
  switch (K) {
  case ShiftKind::Lshift:
    return "<<";
  case ShiftKind::Rshift:
    return ">>";
  case ShiftKind::Lrotate:
    return "<<<";
  case ShiftKind::Rrotate:
    return ">>>";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::makeVar(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Var, Loc);
  E->Name = std::move(Name);
  return E;
}

std::unique_ptr<Expr> Expr::makeInt(uint64_t Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::IntLit, Loc);
  E->IntValue = Value;
  return E;
}

std::unique_ptr<Expr> Expr::makeIndex(std::unique_ptr<Expr> Base,
                                      ConstExpr Index, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Index, Loc);
  E->Base = std::move(Base);
  E->Index0 = std::make_unique<ConstExpr>(std::move(Index));
  return E;
}

std::unique_ptr<Expr> Expr::makeRange(std::unique_ptr<Expr> Base,
                                      ConstExpr Lo, ConstExpr Hi,
                                      SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Range, Loc);
  E->Base = std::move(Base);
  E->Index0 = std::make_unique<ConstExpr>(std::move(Lo));
  E->Index1 = std::make_unique<ConstExpr>(std::move(Hi));
  return E;
}

std::unique_ptr<Expr>
Expr::makeTuple(std::vector<std::unique_ptr<Expr>> Elems, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Tuple, Loc);
  E->Elems = std::move(Elems);
  return E;
}

std::unique_ptr<Expr> Expr::makeNot(std::unique_ptr<Expr> Operand,
                                    SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Not, Loc);
  E->Base = std::move(Operand);
  return E;
}

std::unique_ptr<Expr> Expr::makeBinop(BinopKind K,
                                      std::unique_ptr<Expr> Lhs,
                                      std::unique_ptr<Expr> Rhs,
                                      SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Binop, Loc);
  E->Binop = K;
  E->Base = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

std::unique_ptr<Expr> Expr::makeShift(ShiftKind K,
                                      std::unique_ptr<Expr> Operand,
                                      ConstExpr Amount, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Shift, Loc);
  E->Shift = K;
  E->Base = std::move(Operand);
  E->Amount = std::make_unique<ConstExpr>(std::move(Amount));
  return E;
}

std::unique_ptr<Expr> Expr::makeCall(std::string Callee,
                                     std::vector<std::unique_ptr<Expr>> Args,
                                     SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Call, Loc);
  E->Name = std::move(Callee);
  E->Elems = std::move(Args);
  return E;
}

std::unique_ptr<Expr> Expr::makeShuffle(std::unique_ptr<Expr> Operand,
                                        std::vector<unsigned> Pattern,
                                        SourceLoc Loc) {
  auto E = std::make_unique<Expr>(Kind::Shuffle, Loc);
  E->Base = std::move(Operand);
  E->Pattern = std::move(Pattern);
  return E;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto E = std::make_unique<Expr>(K, Loc);
  E->Name = Name;
  E->IntValue = IntValue;
  if (Base)
    E->Base = Base->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  if (Index0)
    E->Index0 = std::make_unique<ConstExpr>(Index0->clone());
  if (Index1)
    E->Index1 = std::make_unique<ConstExpr>(Index1->clone());
  for (const auto &Elem : Elems)
    E->Elems.push_back(Elem->clone());
  E->Binop = Binop;
  E->Shift = Shift;
  if (Amount)
    E->Amount = std::make_unique<ConstExpr>(Amount->clone());
  E->Pattern = Pattern;
  return E;
}

std::string Expr::str() const {
  switch (K) {
  case Kind::Var:
    return Name;
  case Kind::IntLit:
    return std::to_string(IntValue);
  case Kind::Index:
    return Base->str() + "[" + Index0->str() + "]";
  case Kind::Range:
    return Base->str() + "[" + Index0->str() + ".." + Index1->str() + "]";
  case Kind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Elems[I]->str();
    }
    return Out + ")";
  }
  case Kind::Not:
    return "~" + Base->str();
  case Kind::Binop:
    return "(" + Base->str() + " " + binopName(Binop) + " " + Rhs->str() +
           ")";
  case Kind::Shift:
    return "(" + Base->str() + " " + shiftName(Shift) + " " +
           Amount->str() + ")";
  case Kind::Call: {
    std::string Out = Name + "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Elems[I]->str();
    }
    return Out + ")";
  }
  case Kind::Shuffle: {
    std::string Out = "Shuffle(" + Base->str() + ", [";
    for (size_t I = 0; I < Pattern.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += std::to_string(Pattern[I]);
    }
    return Out + "])";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// LValue / Equation
//===----------------------------------------------------------------------===//

LValue LValue::clone() const {
  LValue L;
  L.Name = Name;
  L.Loc = Loc;
  for (const Access &A : Accesses) {
    Access Copy;
    Copy.IsRange = A.IsRange;
    Copy.Index = A.Index.clone();
    if (A.IsRange)
      Copy.Hi = A.Hi.clone();
    L.Accesses.push_back(std::move(Copy));
  }
  return L;
}

std::string LValue::str() const {
  std::string Out = Name;
  for (const Access &A : Accesses) {
    Out += "[" + A.Index.str();
    if (A.IsRange)
      Out += ".." + A.Hi.str();
    Out += "]";
  }
  return Out;
}

Node Node::clone() const {
  Node N;
  N.K = K;
  N.Name = Name;
  N.Loc = Loc;
  N.Params = Params;
  N.Returns = Returns;
  N.Vars = Vars;
  for (const Equation &E : Eqns)
    N.Eqns.push_back(E.clone());
  N.TableEntries = TableEntries;
  N.PermIndices = PermIndices;
  return N;
}

Program Program::clone() const {
  Program P;
  for (const Node &N : Nodes)
    P.Nodes.push_back(N.clone());
  return P;
}

Equation Equation::clone() const {
  Equation E;
  E.K = K;
  E.Loc = Loc;
  for (const LValue &L : Lhs)
    E.Lhs.push_back(L.clone());
  if (Rhs)
    E.Rhs = Rhs->clone();
  E.Imperative = Imperative;
  E.IterGroup = IterGroup;
  E.IndexName = IndexName;
  E.Lo = Lo.clone();
  E.Hi = Hi.clone();
  for (const Equation &B : Body)
    E.Body.push_back(B.clone());
  return E;
}
