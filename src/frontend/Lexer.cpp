//===- Lexer.cpp - Usuba lexer --------------------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>

using namespace usuba;

const char *usuba::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::KwNode:
    return "'node'";
  case TokenKind::KwTable:
    return "'table'";
  case TokenKind::KwPerm:
    return "'perm'";
  case TokenKind::KwReturns:
    return "'returns'";
  case TokenKind::KwVars:
    return "'vars'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwTel:
    return "'tel'";
  case TokenKind::KwForall:
    return "'forall'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwShuffle:
    return "'Shuffle'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::ColonEq:
    return "':='";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::Rotl:
    return "'<<<'";
  case TokenKind::Rotr:
    return "'>>>'";
  }
  return "token";
}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      unsigned Depth = 1;
      while (!atEnd() && Depth != 0) {
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      if (Depth != 0)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

static TokenKind keywordKind(const std::string &Text) {
  if (Text == "node")
    return TokenKind::KwNode;
  if (Text == "table")
    return TokenKind::KwTable;
  if (Text == "perm")
    return TokenKind::KwPerm;
  if (Text == "returns")
    return TokenKind::KwReturns;
  if (Text == "vars")
    return TokenKind::KwVars;
  if (Text == "let")
    return TokenKind::KwLet;
  if (Text == "tel")
    return TokenKind::KwTel;
  if (Text == "forall")
    return TokenKind::KwForall;
  if (Text == "in")
    return TokenKind::KwIn;
  if (Text == "Shuffle")
    return TokenKind::KwShuffle;
  return TokenKind::Ident;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Start = loc();
  if (atEnd())
    return makeToken(TokenKind::Eof, Start);

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_' || peek() == '\''))
      Text += advance();
    TokenKind Kind = keywordKind(Text);
    return makeToken(Kind, Start, std::move(Text));
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text(1, C);
    bool Hex = false;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      Hex = true;
      Text += advance();
      while (!atEnd() &&
             std::isxdigit(static_cast<unsigned char>(peek())))
        Text += advance();
      if (Text.size() == 2) {
        Diags.error(Start, "expected hexadecimal digits after '0x'");
        return makeToken(TokenKind::Error, Start, std::move(Text));
      }
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
    Token T = makeToken(TokenKind::IntLit, Start, Text);
    T.IntValue = std::strtoull(Text.c_str(), nullptr, Hex ? 16 : 10);
    return T;
  }

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '[':
    return makeToken(TokenKind::LBracket, Start);
  case ']':
    return makeToken(TokenKind::RBracket, Start);
  case '{':
    return makeToken(TokenKind::LBrace, Start);
  case '}':
    return makeToken(TokenKind::RBrace, Start);
  case ',':
    return makeToken(TokenKind::Comma, Start);
  case ';':
    return makeToken(TokenKind::Semi, Start);
  case ':':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::ColonEq, Start);
    }
    return makeToken(TokenKind::Colon, Start);
  case '.':
    if (peek() == '.') {
      advance();
      return makeToken(TokenKind::DotDot, Start);
    }
    break;
  case '=':
    return makeToken(TokenKind::Eq, Start);
  case '&':
    return makeToken(TokenKind::Amp, Start);
  case '|':
    return makeToken(TokenKind::Pipe, Start);
  case '^':
    return makeToken(TokenKind::Caret, Start);
  case '~':
    return makeToken(TokenKind::Tilde, Start);
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    return makeToken(TokenKind::Minus, Start);
  case '*':
    return makeToken(TokenKind::Star, Start);
  case '/':
    return makeToken(TokenKind::Slash, Start);
  case '%':
    return makeToken(TokenKind::Percent, Start);
  case '<':
    if (peek() == '<' && peek(1) == '<') {
      advance();
      advance();
      return makeToken(TokenKind::Rotl, Start);
    }
    if (peek() == '<') {
      advance();
      return makeToken(TokenKind::Shl, Start);
    }
    break;
  case '>':
    if (peek() == '>' && peek(1) == '>') {
      advance();
      advance();
      return makeToken(TokenKind::Rotr, Start);
    }
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Shr, Start);
    }
    break;
  default:
    break;
  }
  Diags.error(Start, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Start, std::string(1, C));
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
