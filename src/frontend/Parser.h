//===- Parser.h - Usuba parser ----------------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Usuba surface syntax of Section 2.2:
/// nodes, tables, permutations, `forall` groups, imperative assignments,
/// tuples, vector indexing/slicing and the word-level operator set.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_FRONTEND_PARSER_H
#define USUBA_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>
#include <vector>

namespace usuba {

/// Parses a complete Usuba program from source text. Errors are reported
/// to \p Diags; parsing attempts to recover at top-level definition
/// boundaries so several errors can be reported in one run.
std::optional<ast::Program> parseProgram(std::string_view Source,
                                         DiagnosticEngine &Diags);

/// Parses a type written in surface syntax ("u16", "uV32", "b64", "v4",
/// "u16x4[26]", "nat"). Exposed for tests and the CLI. Returns
/// std::nullopt on malformed input.
std::optional<Type> parseTypeName(const std::string &Text);

namespace detail {

/// The parser proper; exposed in a detail namespace for unit tests that
/// want to drive individual productions.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::optional<ast::Program> parseProgram();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToTopLevel();

  // Productions.
  bool parseDefinition(ast::Program &Prog);
  bool parseNodeDef(ast::Program &Prog);
  bool parseTableDef(ast::Program &Prog);
  bool parsePermDef(ast::Program &Prog);
  bool parseParamList(std::vector<ast::VarDecl> &Out);
  bool parseVarDecls(std::vector<ast::VarDecl> &Out);
  std::optional<Type> parseType();
  bool parseEquations(std::vector<ast::Equation> &Out, TokenKind EndKind);
  std::optional<ast::Equation> parseEquation();
  std::optional<ast::LValue> parseLValue();
  std::optional<ast::ConstExpr> parseConstExpr();
  std::optional<ast::ConstExpr> parseConstTerm();
  std::optional<ast::ConstExpr> parseConstAtom();

  // Expression precedence levels (loosest to tightest):
  //   | , ^ , & , + -, *, shifts, unary, postfix, atom
  std::unique_ptr<ast::Expr> parseExpr();
  std::unique_ptr<ast::Expr> parseOrExpr();
  std::unique_ptr<ast::Expr> parseXorExpr();
  std::unique_ptr<ast::Expr> parseAndExpr();
  std::unique_ptr<ast::Expr> parseAddExpr();
  std::unique_ptr<ast::Expr> parseMulExpr();
  std::unique_ptr<ast::Expr> parseShiftExpr();
  std::unique_ptr<ast::Expr> parseUnaryExpr();
  std::unique_ptr<ast::Expr> parsePostfixExpr();
  std::unique_ptr<ast::Expr> parseAtomExpr();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace detail
} // namespace usuba

#endif // USUBA_FRONTEND_PARSER_H
