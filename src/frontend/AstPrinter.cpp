//===- AstPrinter.cpp - Printing programs back to Usuba syntax ------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/AstPrinter.h"

using namespace usuba;
using namespace usuba::ast;

std::string usuba::printType(const Type &T) {
  if (T.isNat())
    return "nat";
  // Collect vector dimensions from the outside in.
  std::vector<unsigned> Dims;
  const Type *Cur = &T;
  while (Cur->isVector()) {
    Dims.push_back(Cur->length());
    Cur = &Cur->elementType();
  }
  // Innermost base name, possibly absorbing the innermost dimension into
  /// the `b<n>` / `v<n>` / `u<m>x<n>` abbreviations.
  std::string Base;
  WordSize W = Cur->wordSize();
  Dir D = Cur->direction();
  unsigned Absorbed = 0;
  if (W.IsParam && D == Dir::Param) {
    if (!Dims.empty()) {
      Base = "v" + std::to_string(Dims.back());
      Absorbed = 1;
    } else {
      Base = "v1";
    }
  } else if (!W.IsParam && W.Bits == 1 && D == Dir::Param) {
    if (!Dims.empty()) {
      Base = "b" + std::to_string(Dims.back());
      Absorbed = 1;
    } else {
      Base = "b1";
    }
  } else {
    Base = "u";
    if (D == Dir::Vert)
      Base += "V";
    else if (D == Dir::Horiz)
      Base += "H";
    Base += std::to_string(W.Bits);
    if (!Dims.empty()) {
      Base += "x" + std::to_string(Dims.back());
      Absorbed = 1;
    }
  }
  std::string Out = Base;
  for (size_t I = 0; I + Absorbed < Dims.size(); ++I)
    Out += "[" + std::to_string(Dims[I]) + "]";
  return Out;
}

namespace {

std::string printDecls(const std::vector<VarDecl> &Decls) {
  std::string Out;
  for (size_t I = 0; I < Decls.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Decls[I].Name + ":" + printType(Decls[I].Ty);
  }
  return Out;
}

void printEquations(const std::vector<Equation> &Eqns, unsigned Indent,
                    std::string &Out) {
  std::string Pad(Indent, ' ');
  for (size_t I = 0; I < Eqns.size(); ++I) {
    const Equation &E = Eqns[I];
    if (E.K == Equation::Kind::ForAll) {
      Out += Pad + "forall " + E.IndexName + " in [" + E.Lo.str() + ", " +
             E.Hi.str() + "] {\n";
      printEquations(E.Body, Indent + 2, Out);
      Out += Pad + "}";
    } else {
      Out += Pad;
      if (E.Lhs.size() > 1)
        Out += "(";
      for (size_t L = 0; L < E.Lhs.size(); ++L) {
        if (L != 0)
          Out += ", ";
        Out += E.Lhs[L].str();
      }
      if (E.Lhs.size() > 1)
        Out += ")";
      Out += E.Imperative ? " := " : " = ";
      Out += E.Rhs->str();
    }
    Out += I + 1 < Eqns.size() ? ";\n" : "\n";
  }
}

std::string printNumbers(const std::vector<uint64_t> &Values) {
  std::string Out = "{\n  ";
  for (size_t I = 0; I < Values.size(); ++I) {
    Out += std::to_string(Values[I]);
    if (I + 1 != Values.size())
      Out += I % 16 == 15 ? ",\n  " : ", ";
  }
  return Out + "\n}";
}

} // namespace

std::string usuba::printNode(const Node &N) {
  switch (N.K) {
  case Node::Kind::Table:
    return "table " + N.Name + " (" + printDecls(N.Params) +
           ") returns (" + printDecls(N.Returns) + ") " +
           printNumbers(N.TableEntries) + "\n";
  case Node::Kind::Perm: {
    std::vector<uint64_t> Values(N.PermIndices.begin(),
                                 N.PermIndices.end());
    return "perm " + N.Name + " (" + printDecls(N.Params) + ") returns (" +
           printDecls(N.Returns) + ") " + printNumbers(Values) + "\n";
  }
  case Node::Kind::Fun: {
    std::string Out = "node " + N.Name + " (" + printDecls(N.Params) +
                      ") returns (" + printDecls(N.Returns) + ")\n";
    if (!N.Vars.empty())
      Out += "vars " + printDecls(N.Vars) + "\n";
    Out += "let\n";
    printEquations(N.Eqns, 2, Out);
    Out += "tel\n";
    return Out;
  }
  }
  return "";
}

std::string usuba::printProgram(const Program &Prog) {
  std::string Out;
  for (const Node &N : Prog.Nodes) {
    Out += printNode(N);
    Out += "\n";
  }
  return Out;
}
