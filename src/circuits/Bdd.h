//===- Bdd.h - Hash-consed reduced ordered BDDs -----------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small apply-based ROBDD engine. Unlike the truth-table synthesizer in
/// Circuit.cpp (which cofactors an explicit 2^n-entry function and is
/// therefore limited to lookup-table widths), this manager builds BDDs
/// bottom-up from variables through ite(), so it can canonicalize the
/// output cones of whole Usuba0 programs — the basis of the translation
/// validator (core/Validator.h).
///
/// Canonicity is the point: nodes are hash-consed, so two functions are
/// equivalent iff their root references are equal. Cost is bounded by a
/// hard node budget; exceeding it throws BddBudgetExceeded, which callers
/// treat as "this cone is too big to prove" rather than an error.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIRCUITS_BDD_H
#define USUBA_CIRCUITS_BDD_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace usuba {

/// Thrown when a BDD operation would allocate past the manager's node
/// budget. The partially built manager stays valid (callers usually just
/// discard it).
struct BddBudgetExceeded {};

/// One BDD manager: a node store with hash-consing and an ite() compute
/// cache. References are indices into the store; 0 and 1 are the
/// constant-false and constant-true terminals.
class BddManager {
public:
  using Ref = uint32_t;
  static constexpr Ref False = 0;
  static constexpr Ref True = 1;

  /// \p MaxNodes caps the node store (terminals included); 0 means
  /// "no budget".
  explicit BddManager(size_t MaxNodes);

  /// The BDD of variable \p Var. Variable order is the numeric order.
  Ref var(unsigned Var);

  Ref mkNot(Ref F) { return ite(F, False, True); }
  Ref mkAnd(Ref F, Ref G) { return ite(F, G, False); }
  Ref mkOr(Ref F, Ref G) { return ite(F, True, G); }
  Ref mkXor(Ref F, Ref G) { return ite(F, mkNot(G), G); }

  /// if-then-else: F ? G : H, the one core operation every connective
  /// reduces to.
  Ref ite(Ref F, Ref G, Ref H);

  /// Nodes allocated so far (>= 2: the terminals).
  size_t numNodes() const { return Nodes.size(); }

  /// Evaluates \p F under \p Assignment (indexed by variable; missing
  /// variables read as false). For tests.
  bool evaluate(Ref F, const std::vector<bool> &Assignment) const;

private:
  struct Node {
    unsigned Var;
    Ref Low, High;
  };

  unsigned topVar(Ref F) const { return Nodes[F].Var; }
  Ref cofactor(Ref F, unsigned Var, bool High) const;
  Ref intern(unsigned Var, Ref Low, Ref High);

  /// Exact (F, G, H) triple for the ite() compute cache; references are
  /// below 2^24, so F and G pack into one word and H keeps its own.
  struct IteKey {
    uint64_t FG;
    Ref H;
    bool operator==(const IteKey &O) const { return FG == O.FG && H == O.H; }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey &K) const {
      return static_cast<size_t>((K.FG ^ (uint64_t{K.H} << 24)) *
                                 0x9E3779B97F4A7C15ull);
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, Ref> Unique;
  std::unordered_map<IteKey, Ref, IteKeyHash> IteCache;
  size_t MaxNodes;
};

} // namespace usuba

#endif // USUBA_CIRCUITS_BDD_H
