//===- AesTowerSbox.h - Composite-field AES S-box circuit -------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact Boolean circuit for the AES S-box derived from its algebraic
/// structure (Canright-style composite fields, which the paper cites as
/// the hard-won circuits its database stores): GF(2^8) inversion is
/// computed through the tower GF(2^8) ~ GF(2^4)[z]/(z^2 + z + lambda),
/// where a 4-bit inversion, three 4-bit multiplications and linear basis
/// changes replace the 8-bit lookup. Everything — the field embedding,
/// the basis-change matrices, the multiplier formulas — is *derived at
/// run time from first principles* and the resulting circuit is verified
/// exhaustively against the table before use, so no transcribed netlist
/// can be wrong.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIRCUITS_AESTOWERSBOX_H
#define USUBA_CIRCUITS_AESTOWERSBOX_H

#include "circuits/Circuit.h"

#include <optional>

namespace usuba {

/// Builds the composite-field circuit when \p Table is the AES S-box (or
/// its inverse); returns std::nullopt for any other table, or if the
/// construction fails self-verification (callers then fall back to BDD
/// synthesis).
std::optional<Circuit> buildAesTowerSbox(const TruthTable &Table);

} // namespace usuba

#endif // USUBA_CIRCUITS_AESTOWERSBOX_H
