//===- Circuit.cpp - Boolean circuits and BDD synthesis -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Lookup-table expansion. The synthesizer builds a reduced ordered BDD
/// for every output bit (hash-consed across outputs, so shared subtrees
/// are shared gates) and converts each BDD node into a multiplexer over
/// hash-consed gates, with the usual constant-folding special cases.
///
//===----------------------------------------------------------------------===//

#include "circuits/Circuit.h"

#include "circuits/AesTowerSbox.h"
#include "circuits/CircuitDb.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace usuba;

//===----------------------------------------------------------------------===//
// Circuit evaluation
//===----------------------------------------------------------------------===//

uint64_t Circuit::evaluate(uint64_t Input) const {
  std::vector<uint64_t> Wire(numWires());
  for (unsigned I = 0; I < NumInputs; ++I)
    Wire[I] = getBit(Input, I) ? ~uint64_t{0} : 0;
  unsigned Next = NumInputs;
  for (const Gate &G : Gates) {
    uint64_t Value = 0;
    switch (G.Kind) {
    case GateKind::And:
      Value = Wire[G.A] & Wire[G.B];
      break;
    case GateKind::Or:
      Value = Wire[G.A] | Wire[G.B];
      break;
    case GateKind::Xor:
      Value = Wire[G.A] ^ Wire[G.B];
      break;
    case GateKind::Not:
      Value = ~Wire[G.A];
      break;
    case GateKind::Andn:
      Value = ~Wire[G.A] & Wire[G.B];
      break;
    case GateKind::Const0:
      Value = 0;
      break;
    case GateKind::Const1:
      Value = ~uint64_t{0};
      break;
    }
    Wire[Next++] = Value;
  }
  uint64_t Out = 0;
  for (unsigned J = 0; J < Outputs.size(); ++J)
    Out = setBit(Out, J, Wire[Outputs[J]] & 1);
  return Out;
}

unsigned Circuit::depth() const {
  std::vector<unsigned> WireDepth(numWires(), 0);
  unsigned Next = NumInputs;
  for (const Gate &G : Gates) {
    unsigned D = 0;
    switch (G.Kind) {
    case GateKind::Const0:
    case GateKind::Const1:
      break;
    case GateKind::Not:
      D = WireDepth[G.A] + 1;
      break;
    case GateKind::And:
    case GateKind::Or:
    case GateKind::Xor:
    case GateKind::Andn:
      D = std::max(WireDepth[G.A], WireDepth[G.B]) + 1;
      break;
    }
    WireDepth[Next++] = D;
  }
  unsigned Max = 0;
  for (unsigned W : Outputs)
    Max = std::max(Max, WireDepth[W]);
  return Max;
}

bool Circuit::matchesTable(const TruthTable &Table) const {
  assert(Table.isValid() && "malformed truth table");
  if (NumInputs != Table.InBits || Outputs.size() != Table.OutBits)
    return false;
  for (uint64_t Input = 0; Input < Table.Entries.size(); ++Input)
    if (evaluate(Input) != (Table.Entries[Input] & lowBitMask(Table.OutBits)))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// BDD-based synthesis
//===----------------------------------------------------------------------===//

namespace {

/// A Boolean function of up to 20 variables represented as its truth-table
/// bitset (bit i = f on input i, input wire v = bit v of i).
struct FuncBits {
  unsigned NumVars;
  std::vector<uint64_t> Bits; // ceil(2^NumVars / 64) words

  bool isConst(bool &Value) const {
    bool AllZero = true, AllOne = true;
    uint64_t Count = uint64_t{1} << NumVars;
    for (uint64_t I = 0; I < Bits.size(); ++I) {
      uint64_t Word = Bits[I];
      uint64_t Valid =
          Count - I * 64 >= 64 ? ~uint64_t{0} : lowBitMask(Count - I * 64);
      AllZero &= (Word & Valid) == 0;
      AllOne &= (Word & Valid) == Valid;
    }
    if (AllZero) {
      Value = false;
      return true;
    }
    if (AllOne) {
      Value = true;
      return true;
    }
    return false;
  }

  bool get(uint64_t Index) const { return (Bits[Index / 64] >> (Index % 64)) & 1; }

  friend bool operator<(const FuncBits &A, const FuncBits &B) {
    return std::tie(A.NumVars, A.Bits) < std::tie(B.NumVars, B.Bits);
  }
};

/// Reduced BDD node: branch variable, low child (Var = 0) and high child.
/// Ids 0 and 1 are the terminals.
struct BddNode {
  unsigned Var;
  unsigned Low;
  unsigned High;
};

/// Thrown (and caught inside this file) when a node budget is exhausted;
/// never escapes the circuits library.
struct BddBudgetExceeded {};

/// Builds hash-consed BDDs bottom-up from truth-table bitsets, then emits
/// each node once as a mux of hash-consed gates.
class Synthesizer {
public:
  explicit Synthesizer(const TruthTable &Table, size_t MaxBddNodes = 0)
      : Table(Table), MaxBddNodes(MaxBddNodes), Result(Table.InBits) {}

  Circuit run() {
    for (unsigned OutBit = 0; OutBit < Table.OutBits; ++OutBit) {
      FuncBits F = outputFunction(OutBit);
      unsigned Root = buildBdd(F, 0);
      Result.addOutput(emitNode(Root));
    }
    return std::move(Result);
  }

  /// BDD nodes interned so far (decision material for remarks).
  size_t numBddNodes() const { return Nodes.size(); }

private:
  FuncBits outputFunction(unsigned OutBit) const {
    uint64_t Count = uint64_t{1} << Table.InBits;
    FuncBits F;
    F.NumVars = Table.InBits;
    F.Bits.assign((Count + 63) / 64, 0);
    for (uint64_t I = 0; I < Count; ++I)
      if (getBit(Table.Entries[I], OutBit))
        F.Bits[I / 64] |= uint64_t{1} << (I % 64);
    return F;
  }

  /// Cofactor of \p F with variable \p Var fixed to \p Value. Variables
  /// keep their indices (the BDD orders variables 0..n-1 from the root).
  static FuncBits cofactor(const FuncBits &F, unsigned Var, bool Value) {
    FuncBits Out = F;
    uint64_t Count = uint64_t{1} << F.NumVars;
    uint64_t Stride = uint64_t{1} << Var;
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t Source = (I & ~Stride) | (Value ? Stride : 0);
      bool Bit = F.get(Source);
      if (Bit)
        Out.Bits[I / 64] |= uint64_t{1} << (I % 64);
      else
        Out.Bits[I / 64] &= ~(uint64_t{1} << (I % 64));
    }
    return Out;
  }

  /// Returns the BDD id for \p F, branching on variables >= \p Var.
  unsigned buildBdd(const FuncBits &F, unsigned Var) {
    bool ConstValue;
    if (F.isConst(ConstValue))
      return ConstValue ? 1 : 0;
    auto Cached = FuncCache.find(F);
    if (Cached != FuncCache.end())
      return Cached->second;
    assert(Var < F.NumVars && "non-constant function ran out of variables");
    // Skip variables the function does not depend on.
    FuncBits Low = cofactor(F, Var, false);
    FuncBits High = cofactor(F, Var, true);
    unsigned Id;
    if (Low.Bits == High.Bits) {
      Id = buildBdd(Low, Var + 1);
    } else {
      unsigned LowId = buildBdd(Low, Var + 1);
      unsigned HighId = buildBdd(High, Var + 1);
      Id = internNode(Var, LowId, HighId);
    }
    FuncCache.emplace(F, Id);
    return Id;
  }

  unsigned internNode(unsigned Var, unsigned Low, unsigned High) {
    assert(Low != High && "redundant node must be elided by caller");
    auto Key = std::make_tuple(Var, Low, High);
    auto It = NodeCache.find(Key);
    if (It != NodeCache.end())
      return It->second;
    if (MaxBddNodes && Nodes.size() >= MaxBddNodes)
      throw BddBudgetExceeded{};
    Nodes.push_back({Var, Low, High});
    unsigned Id = static_cast<unsigned>(Nodes.size()) - 1 + 2;
    NodeCache.emplace(Key, Id);
    return Id;
  }

  // --- Gate emission with hash-consing -----------------------------------

  unsigned gate(Circuit::GateKind Kind, unsigned A, unsigned B = 0) {
    // Normalize commutative operand order for better sharing.
    if ((Kind == Circuit::GateKind::And || Kind == Circuit::GateKind::Or ||
         Kind == Circuit::GateKind::Xor) &&
        B < A)
      std::swap(A, B);
    auto Key = std::make_tuple(static_cast<int>(Kind), A, B);
    auto It = GateCache.find(Key);
    if (It != GateCache.end())
      return It->second;
    unsigned Wire = Result.addGate(Kind, A, B);
    GateCache.emplace(Key, Wire);
    return Wire;
  }

  unsigned inputWire(unsigned Var) const { return Var; }

  unsigned notOf(unsigned Wire) {
    return gate(Circuit::GateKind::Not, Wire);
  }

  /// Emits the wire computing BDD node \p Id (terminals become constant
  /// gates, which downstream constant folding removes in practice since
  /// muxes fold them away here).
  unsigned emitNode(unsigned Id) {
    if (Id == 0)
      return gate(Circuit::GateKind::Const0, 0, 0);
    if (Id == 1)
      return gate(Circuit::GateKind::Const1, 0, 0);
    auto Cached = WireOfNode.find(Id);
    if (Cached != WireOfNode.end())
      return Cached->second;
    const BddNode &N = Nodes[Id - 2];
    unsigned X = inputWire(N.Var);
    unsigned Wire;
    if (N.Low == 0 && N.High == 1) {
      Wire = X;
    } else if (N.Low == 1 && N.High == 0) {
      Wire = notOf(X);
    } else if (N.Low == 0) {
      Wire = gate(Circuit::GateKind::And, X, emitNode(N.High));
    } else if (N.Low == 1) {
      // x ? h : 1  ==  ~x | h  ==  ~(x & ~h)
      Wire = gate(Circuit::GateKind::Or, notOf(X), emitNode(N.High));
    } else if (N.High == 0) {
      Wire = gate(Circuit::GateKind::And, notOf(X), emitNode(N.Low));
    } else if (N.High == 1) {
      Wire = gate(Circuit::GateKind::Or, X, emitNode(N.Low));
    } else {
      unsigned LowWire = emitNode(N.Low);
      unsigned HighWire = emitNode(N.High);
      // mux(x, high, low) = low ^ (x & (low ^ high)): 3 gates and XOR-
      // friendly sharing.
      unsigned Diff = gate(Circuit::GateKind::Xor, LowWire, HighWire);
      unsigned Masked = gate(Circuit::GateKind::And, X, Diff);
      Wire = gate(Circuit::GateKind::Xor, LowWire, Masked);
    }
    WireOfNode.emplace(Id, Wire);
    return Wire;
  }

  const TruthTable &Table;
  size_t MaxBddNodes; ///< 0 = unlimited
  Circuit Result;
  std::vector<BddNode> Nodes;
  std::map<FuncBits, unsigned> FuncCache;
  std::map<std::tuple<unsigned, unsigned, unsigned>, unsigned> NodeCache;
  std::map<std::tuple<int, unsigned, unsigned>, unsigned> GateCache;
  std::map<unsigned, unsigned> WireOfNode;
};

} // namespace

/// Permutes the input variables of \p Table: wire w of the result is
/// wire Perm[w] of the original.
static TruthTable permuteInputs(const TruthTable &Table,
                                const std::vector<unsigned> &Perm) {
  TruthTable Out;
  Out.InBits = Table.InBits;
  Out.OutBits = Table.OutBits;
  Out.Entries.resize(Table.Entries.size());
  for (uint64_t Index = 0; Index < Out.Entries.size(); ++Index) {
    uint64_t Original = 0;
    for (unsigned W = 0; W < Table.InBits; ++W)
      Original = setBit(Original, Perm[W], getBit(Index, W));
    Out.Entries[Index] = Table.Entries[Original];
  }
  return Out;
}

/// Rewrites the circuit's references to input wires through \p Perm
/// (wire w becomes wire Perm[w]); gate wires are untouched.
static Circuit remapInputs(const Circuit &C,
                           const std::vector<unsigned> &Perm) {
  Circuit Out(C.numInputs());
  auto Map = [&](unsigned Wire) {
    return Wire < C.numInputs() ? Perm[Wire] : Wire;
  };
  for (const Circuit::Gate &G : C.gates())
    Out.addGate(G.Kind, Map(G.A), Map(G.B));
  for (unsigned W : C.outputs())
    Out.addOutput(Map(W));
  return Out;
}

Circuit usuba::synthesizeTable(const TruthTable &Table) {
  std::optional<Circuit> C = synthesizeTableBudgeted(Table, 0);
  assert(C && "unbudgeted synthesis cannot fail");
  return std::move(*C);
}

const char *usuba::tableSynthesisSourceName(TableSynthesisInfo::Source S) {
  switch (S) {
  case TableSynthesisInfo::Source::DatabaseHand:
    return "database(hand)";
  case TableSynthesisInfo::Source::DatabaseSuperopt:
    return "database(superopt)";
  case TableSynthesisInfo::Source::Structural:
    return "structural";
  case TableSynthesisInfo::Source::Synthesized:
    return "synthesized";
  }
  return "synthesized";
}

std::optional<Circuit>
usuba::synthesizeTableBudgeted(const TruthTable &Table, size_t MaxBddNodes,
                               TableSynthesisInfo *Info) {
  assert(Table.isValid() && "malformed truth table");
  // BDD sizes are highly sensitive to the variable order; try a small
  // portfolio of orders (identity, reverse, rotations, a few deterministic
  // shuffles) and keep the smallest circuit.
  const unsigned N = Table.InBits;
  std::vector<std::vector<unsigned>> Orders;
  std::vector<unsigned> Identity(N);
  for (unsigned I = 0; I < N; ++I)
    Identity[I] = I;
  Orders.push_back(Identity);
  {
    std::vector<unsigned> Reverse(Identity.rbegin(), Identity.rend());
    Orders.push_back(Reverse);
  }
  for (unsigned R = 1; R < N; ++R) {
    std::vector<unsigned> Rot(N);
    for (unsigned I = 0; I < N; ++I)
      Rot[I] = (I + R) % N;
    Orders.push_back(Rot);
  }
  // Deterministic pseudo-random shuffles (xorshift; no global RNG state).
  uint64_t State = 0x853c49e6748fea9bull ^ (uint64_t{N} << 32) ^
                   Table.Entries[Table.Entries.size() / 2];
  for (unsigned Trial = 0; Trial < 8; ++Trial) {
    std::vector<unsigned> Shuffled = Identity;
    for (unsigned I = N; I > 1; --I) {
      State ^= State << 13;
      State ^= State >> 7;
      State ^= State << 17;
      std::swap(Shuffled[I - 1], Shuffled[State % I]);
    }
    Orders.push_back(std::move(Shuffled));
  }

  Circuit Best(0);
  bool HaveBest = false;
  size_t BestBddNodes = 0;
  for (const std::vector<unsigned> &Perm : Orders) {
    TruthTable Permuted = permuteInputs(Table, Perm);
    try {
      Synthesizer Synth(Permuted, MaxBddNodes);
      Circuit Candidate = remapInputs(Synth.run(), Perm);
      if (!HaveBest || Candidate.numGates() < Best.numGates()) {
        Best = std::move(Candidate);
        BestBddNodes = Synth.numBddNodes();
        HaveBest = true;
      }
    } catch (const BddBudgetExceeded &) {
      // This variable order blew the budget; another may still fit.
    }
  }
  if (Info) {
    Info->From = TableSynthesisInfo::Source::Synthesized;
    Info->OrdersTried = static_cast<unsigned>(Orders.size());
    Info->Gates = HaveBest ? Best.numGates() : 0;
    Info->BddNodes = BestBddNodes;
  }
  if (!HaveBest)
    return std::nullopt;
  assert(Best.matchesTable(Table) && "synthesized circuit is wrong");
  return Best;
}

//===----------------------------------------------------------------------===//
// Known-circuit database (storage lives in CircuitDb.cpp)
//===----------------------------------------------------------------------===//

const Circuit *usuba::lookupKnownCircuit(const TruthTable &Table) {
  const CircuitDbEntry *E = circuitDbLookup(Table);
  return E ? &E->Network : nullptr;
}

Circuit usuba::circuitForTable(const TruthTable &Table) {
  std::optional<Circuit> C = circuitForTableBudgeted(Table, 0);
  assert(C && "unbudgeted elaboration cannot fail");
  return std::move(*C);
}

std::optional<Circuit>
usuba::circuitForTableBudgeted(const TruthTable &Table, size_t MaxBddNodes,
                               TableSynthesisInfo *Info) {
  if (const CircuitDbEntry *Known = circuitDbLookup(Table)) {
    if (Info) {
      *Info = {};
      Info->From = Known->Prov.From == CircuitProvenance::Origin::Superopt
                       ? TableSynthesisInfo::Source::DatabaseSuperopt
                       : TableSynthesisInfo::Source::DatabaseHand;
      Info->Gates = Known->Network.numGates();
      Info->Depth = Known->Network.depth();
      Info->SynthGates = Known->Prov.SynthGates;
      Info->SynthDepth = Known->Prov.SynthDepth;
    }
    return Known->Network;
  }
  // Structural constructions beat generic synthesis where they apply.
  if (std::optional<Circuit> Tower = buildAesTowerSbox(Table)) {
    if (Info) {
      *Info = {};
      Info->From = TableSynthesisInfo::Source::Structural;
      Info->Gates = Tower->numGates();
      Info->Depth = Tower->depth();
    }
    return Tower;
  }
  std::optional<Circuit> Synth =
      synthesizeTableBudgeted(Table, MaxBddNodes, Info);
  if (Synth && Info)
    Info->Depth = Synth->depth();
  return Synth;
}
