//===- Superopt.h - Enumerative S-box superoptimizer ------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An offline, budgeted superoptimizer for lookup-table circuits over the
/// AND/OR/XOR/NOT/ANDN basis, in the enumerative-synthesis style of
/// SyGuS-Comp: enumerate expressions bottom-up by increasing gate count,
/// using the bitwise truth-table signature (a function of <= 6 inputs
/// packs into one uint64_t) as the equivalence filter, keeping one best
/// representative per signature under the chosen objective. The pool is
/// seeded with the BDD-synthesized circuit for the same table, so every
/// output signature is always reachable and the result is never worse
/// than plain synthesis — the search can only improve on it.
///
/// This is a build-time tool (driven by `usubac --superopt` and
/// `bench/superopt_sboxes`), not a compile-time pass: its product is the
/// checked-in circuit database (src/circuits/CircuitDbEntries.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIRCUITS_SUPEROPT_H
#define USUBA_CIRCUITS_SUPEROPT_H

#include "circuits/Circuit.h"

#include <cstdint>
#include <optional>

namespace usuba {

enum class SuperoptObjective : uint8_t {
  MinGates,          ///< fewest gates; depth breaks ties
  MinDepthThenGates, ///< lowest depth; gates break ties
};

/// "min-gates" / "min-depth-then-gates" — the strings recorded in
/// database provenance.
const char *superoptObjectiveName(SuperoptObjective O);

/// Resource budget. The search is deterministic: it counts candidate
/// combinations examined, not wall-clock time, so the same (table,
/// objective, limits, seed) always yields the same circuit.
struct SuperoptLimits {
  /// Candidate gate combinations examined before the search stops.
  uint64_t MaxNodes = 2000000;
  /// Distinct pool nodes retained (signature representatives plus
  /// superseded operands).
  uint64_t MaxPoolSize = 1u << 20;
  /// BDD node budget for the seeding synthesis run.
  size_t MaxBddNodes = size_t{1} << 22;
};

struct SuperoptResult {
  Circuit Network; ///< best circuit found (verified against the table)
  unsigned Gates = 0;
  unsigned Depth = 0;
  /// The BDD-synthesis baseline for the same table (the seed circuit).
  unsigned SynthGates = 0;
  unsigned SynthDepth = 0;
  uint64_t NodesExamined = 0; ///< combinations actually examined
  bool Improved = false; ///< strictly better than the baseline (objective)

  SuperoptResult() : Network(0) {}
};

/// Superoptimizes \p Table. Requires InBits <= 6 (the signature must fit
/// a uint64_t); returns std::nullopt for wider tables or when the
/// seeding synthesis itself blows its budget. \p Seed only rotates
/// deterministic tie-breaking (the order gate kinds are tried), so
/// distinct seeds can surface distinct same-cost circuits.
std::optional<SuperoptResult>
superoptimizeTable(const TruthTable &Table, SuperoptObjective Objective,
                   const SuperoptLimits &Limits = {}, uint64_t Seed = 0);

} // namespace usuba

#endif // USUBA_CIRCUITS_SUPEROPT_H
