//===- Superopt.cpp - Enumerative S-box superoptimizer --------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/Superopt.h"

#include "support/BitUtils.h"

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

using namespace usuba;

const char *usuba::superoptObjectiveName(SuperoptObjective O) {
  switch (O) {
  case SuperoptObjective::MinGates:
    return "min-gates";
  case SuperoptObjective::MinDepthThenGates:
    return "min-depth-then-gates";
  }
  return "min-gates";
}

namespace {

using GateKind = Circuit::GateKind;

/// One pool node: a Boolean function (its signature) plus the cheapest
/// known way to build it. Cost is the expression-tree approximation
/// (CostA + CostB + 1) — sharing is recovered at extraction time.
struct PoolNode {
  uint64_t Sig;
  GateKind Kind; ///< Const0/Const1 double as "input wire A" via IsInput
  bool IsInput;
  uint32_t A = 0; ///< operand node id (or input index when IsInput)
  uint32_t B = 0;
  uint32_t Cost = 0;
  uint32_t Depth = 0;
};

class Search {
public:
  Search(const TruthTable &Table, SuperoptObjective Objective,
         const SuperoptLimits &Limits, uint64_t Seed)
      : Table(Table), Objective(Objective), Limits(Limits), Seed(Seed),
        NumIn(Table.InBits), SigBits(uint64_t{1} << NumIn),
        SigMask(SigBits >= 64 ? ~uint64_t{0} : lowBitMask(SigBits)) {}

  /// (primary, secondary) ordering key under the objective.
  std::pair<uint32_t, uint32_t> keyOf(uint32_t Cost, uint32_t Depth) const {
    return Objective == SuperoptObjective::MinGates
               ? std::make_pair(Cost, Depth)
               : std::make_pair(Depth, Cost);
  }

  /// Inserts a candidate if it beats the current representative of its
  /// signature. Returns true when the pool changed.
  bool tryInsert(PoolNode N) {
    N.Sig &= SigMask;
    auto It = BestOf.find(N.Sig);
    if (It != BestOf.end()) {
      const PoolNode &Old = Nodes[It->second];
      if (keyOf(Old.Cost, Old.Depth) <= keyOf(N.Cost, N.Depth))
        return false;
    }
    if (Nodes.size() >= Limits.MaxPoolSize)
      return false;
    uint32_t Id = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back(N);
    if (It != BestOf.end())
      It->second = Id;
    else
      BestOf.emplace(N.Sig, Id);
    if (ByCost.size() <= N.Cost)
      ByCost.resize(N.Cost + 1);
    ByCost[N.Cost].push_back(Id);
    return true;
  }

  void insertBases() {
    for (unsigned I = 0; I < NumIn; ++I) {
      uint64_t Sig = 0;
      for (uint64_t Idx = 0; Idx < SigBits; ++Idx)
        if (getBit(Idx, I))
          Sig |= uint64_t{1} << Idx;
      PoolNode N;
      N.Sig = Sig;
      N.Kind = GateKind::And; // ignored for inputs
      N.IsInput = true;
      N.A = I;
      tryInsert(N);
    }
    PoolNode C0;
    C0.Sig = 0;
    C0.Kind = GateKind::Const0;
    C0.IsInput = false;
    tryInsert(C0);
    PoolNode C1;
    C1.Sig = SigMask;
    C1.Kind = GateKind::Const1;
    C1.IsInput = false;
    tryInsert(C1);
  }

  /// Replays the gates of \p Seed (the BDD-synthesized circuit) through
  /// tryInsert, so every signature the baseline can build — in
  /// particular all the output signatures — is in the pool before
  /// enumeration starts.
  void seedWithCircuit(const Circuit &SeedCircuit) {
    std::vector<uint32_t> NodeOfWire(SeedCircuit.numWires());
    for (unsigned I = 0; I < NumIn; ++I)
      NodeOfWire[I] = BestOf.at(inputSig(I));
    unsigned Next = NumIn;
    for (const Circuit::Gate &G : SeedCircuit.gates()) {
      uint32_t A = G.Kind == GateKind::Const0 || G.Kind == GateKind::Const1
                       ? 0
                       : NodeOfWire[G.A];
      uint32_t B = G.Kind == GateKind::And || G.Kind == GateKind::Or ||
                           G.Kind == GateKind::Xor || G.Kind == GateKind::Andn
                       ? NodeOfWire[G.B]
                       : 0;
      PoolNode N = combine(G.Kind, A, B);
      tryInsert(N);
      // The wire's pool node is the best representative of its signature
      // (tryInsert may have kept an older, cheaper node).
      NodeOfWire[Next++] = BestOf.at(N.Sig & SigMask);
    }
  }

  uint64_t inputSig(unsigned I) const {
    uint64_t Sig = 0;
    for (uint64_t Idx = 0; Idx < SigBits; ++Idx)
      if (getBit(Idx, I))
        Sig |= uint64_t{1} << Idx;
    return Sig;
  }

  PoolNode combine(GateKind Kind, uint32_t A, uint32_t B) const {
    PoolNode N;
    N.Kind = Kind;
    N.IsInput = false;
    N.A = A;
    N.B = B;
    switch (Kind) {
    case GateKind::And:
      N.Sig = Nodes[A].Sig & Nodes[B].Sig;
      break;
    case GateKind::Or:
      N.Sig = Nodes[A].Sig | Nodes[B].Sig;
      break;
    case GateKind::Xor:
      N.Sig = Nodes[A].Sig ^ Nodes[B].Sig;
      break;
    case GateKind::Andn:
      N.Sig = ~Nodes[A].Sig & Nodes[B].Sig;
      break;
    case GateKind::Not:
      N.Sig = ~Nodes[A].Sig;
      break;
    case GateKind::Const0:
      N.Sig = 0;
      break;
    case GateKind::Const1:
      N.Sig = ~uint64_t{0};
      break;
    }
    N.Sig &= SigMask;
    switch (Kind) {
    case GateKind::Const0:
    case GateKind::Const1:
      N.Cost = 0;
      N.Depth = 0;
      break;
    case GateKind::Not:
      N.Cost = Nodes[A].Cost + 1;
      N.Depth = Nodes[A].Depth + 1;
      break;
    default:
      N.Cost = Nodes[A].Cost + Nodes[B].Cost + 1;
      N.Depth = std::max(Nodes[A].Depth, Nodes[B].Depth) + 1;
      break;
    }
    return N;
  }

  /// Bottom-up enumeration by increasing tree cost. Deterministic: the
  /// budget counts candidate combinations, and the seed only rotates the
  /// order binary gate kinds are tried (first-in wins ties).
  void enumerate() {
    const GateKind BinKinds[4] = {GateKind::And, GateKind::Or, GateKind::Xor,
                                  GateKind::Andn};
    const unsigned KindOffset = static_cast<unsigned>(Seed % 4);
    unsigned EmptyLevels = 0;
    for (uint32_t C = 1; C < 64 && EmptyLevels < 3; ++C) {
      bool Inserted = false;
      // Unary: Not over every cost C-1 node.
      if (C - 1 < ByCost.size()) {
        // Index-based loop: tryInsert appends to ByCost[C], never C-1,
        // but stay defensive about reallocation.
        for (size_t AI = 0; AI < ByCost[C - 1].size(); ++AI) {
          if (++Examined > Limits.MaxNodes)
            return;
          uint32_t A = ByCost[C - 1][AI];
          Inserted |= tryInsert(combine(GateKind::Not, A, 0));
        }
      }
      // Binary: operand costs sum to C-1.
      for (uint32_t CA = 0; CA + CA <= C - 1; ++CA) {
        uint32_t CB = C - 1 - CA;
        if (CA >= ByCost.size() || CB >= ByCost.size())
          continue;
        for (size_t AI = 0; AI < ByCost[CA].size(); ++AI) {
          size_t BStart = CA == CB ? AI : 0;
          for (size_t BI = BStart; BI < ByCost[CB].size(); ++BI) {
            uint32_t A = ByCost[CA][AI];
            uint32_t B = ByCost[CB][BI];
            for (unsigned K = 0; K < 4; ++K) {
              GateKind Kind = BinKinds[(K + KindOffset) % 4];
              if (++Examined > Limits.MaxNodes)
                return;
              Inserted |= tryInsert(combine(Kind, A, B));
              if (Kind == GateKind::Andn && A != B) {
                // Andn is the one non-commutative kind: try both orders.
                if (++Examined > Limits.MaxNodes)
                  return;
                Inserted |= tryInsert(combine(Kind, B, A));
              }
            }
          }
        }
      }
      EmptyLevels = Inserted ? 0 : EmptyLevels + 1;
      if (Nodes.size() >= Limits.MaxPoolSize)
        return;
    }
  }

  /// Extracts the best circuit for the table's outputs, with gate-level
  /// sharing (hash-consed emission, like the BDD synthesizer's).
  std::optional<Circuit> extract() {
    Circuit C(NumIn);
    std::map<std::tuple<int, unsigned, unsigned>, unsigned> GateCache;
    std::unordered_map<uint32_t, unsigned> WireOf;
    auto Gate = [&](GateKind Kind, unsigned A, unsigned B) {
      if ((Kind == GateKind::And || Kind == GateKind::Or ||
           Kind == GateKind::Xor) &&
          B < A)
        std::swap(A, B);
      auto Key = std::make_tuple(static_cast<int>(Kind), A, B);
      auto It = GateCache.find(Key);
      if (It != GateCache.end())
        return It->second;
      unsigned Wire = C.addGate(Kind, A, B);
      GateCache.emplace(Key, Wire);
      return Wire;
    };
    // Iterative post-order emission of a pool node's DAG.
    std::function<unsigned(uint32_t)> Emit = [&](uint32_t Id) -> unsigned {
      auto Cached = WireOf.find(Id);
      if (Cached != WireOf.end())
        return Cached->second;
      const PoolNode &N = Nodes[Id];
      unsigned Wire;
      if (N.IsInput) {
        Wire = N.A;
      } else
        switch (N.Kind) {
        case GateKind::Const0:
        case GateKind::Const1:
          Wire = Gate(N.Kind, 0, 0);
          break;
        case GateKind::Not:
          Wire = Gate(GateKind::Not, Emit(N.A), 0);
          break;
        default: {
          unsigned A = Emit(N.A);
          unsigned B = Emit(N.B);
          Wire = Gate(N.Kind, A, B);
          break;
        }
        }
      WireOf.emplace(Id, Wire);
      return Wire;
    };
    for (unsigned J = 0; J < Table.OutBits; ++J) {
      uint64_t Sig = 0;
      for (uint64_t Idx = 0; Idx < SigBits; ++Idx)
        if (getBit(Table.Entries[Idx], J))
          Sig |= uint64_t{1} << Idx;
      auto It = BestOf.find(Sig & SigMask);
      if (It == BestOf.end())
        return std::nullopt; // unreachable after seeding, but be safe
      C.addOutput(Emit(It->second));
    }
    return C;
  }

  const TruthTable &Table;
  SuperoptObjective Objective;
  const SuperoptLimits &Limits;
  uint64_t Seed;
  unsigned NumIn;
  uint64_t SigBits;
  uint64_t SigMask;
  uint64_t Examined = 0;

  std::vector<PoolNode> Nodes;
  std::unordered_map<uint64_t, uint32_t> BestOf;
  std::vector<std::vector<uint32_t>> ByCost;
};

} // namespace

std::optional<SuperoptResult>
usuba::superoptimizeTable(const TruthTable &Table, SuperoptObjective Objective,
                          const SuperoptLimits &Limits, uint64_t Seed) {
  if (!Table.isValid() || Table.InBits > 6)
    return std::nullopt;

  // The baseline and the pool seed: plain BDD synthesis.
  std::optional<Circuit> Synth =
      synthesizeTableBudgeted(Table, Limits.MaxBddNodes);
  if (!Synth)
    return std::nullopt;

  Search S(Table, Objective, Limits, Seed);
  S.insertBases();
  S.seedWithCircuit(*Synth);
  S.enumerate();

  std::optional<Circuit> Extracted = S.extract();

  SuperoptResult R;
  R.SynthGates = Synth->numGates();
  R.SynthDepth = Synth->depth();
  R.NodesExamined = S.Examined;

  // Keep whichever of {baseline, extracted} is better under the
  // objective, measured on the ACTUAL shared-gate circuits (the search's
  // tree-cost is only an approximation).
  auto ActualKey = [&](const Circuit &C) {
    return Objective == SuperoptObjective::MinGates
               ? std::make_pair(C.numGates(), C.depth())
               : std::make_pair(C.depth(), C.numGates());
  };
  if (Extracted && Extracted->matchesTable(Table) &&
      ActualKey(*Extracted) < ActualKey(*Synth)) {
    R.Network = std::move(*Extracted);
    R.Improved = true;
  } else {
    R.Network = std::move(*Synth);
    R.Improved = false;
  }
  R.Gates = R.Network.numGates();
  R.Depth = R.Network.depth();
  return R;
}
