//===- Circuit.h - Boolean circuits for S-box expansion ---------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boolean circuits produced by lookup-table elaboration (paper
/// Section 2.2): to avoid cache-timing attacks, Usuba compiles S-boxes to
/// straight-line gate networks instead of memory lookups. A Circuit is a
/// topologically ordered netlist over And/Or/Xor/Not gates; the elaborator
/// splices it into the dataflow graph of the calling node.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIRCUITS_CIRCUIT_H
#define USUBA_CIRCUITS_CIRCUIT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace usuba {

/// A lookup table: \c InBits address bits select one of 2^InBits entries
/// of \c OutBits bits each. Convention: input wire i is bit i (LSB = 0)
/// of the table index, and output wire j is bit j of the entry. This is
/// the convention under which the paper's hand-optimized Rectangle S-box
/// circuit reproduces its table (verified in tests); tables specified
/// with other bit orders are re-indexed when the .ua source is built
/// (see UsubaSources.cpp for DES).
struct TruthTable {
  unsigned InBits = 0;
  unsigned OutBits = 0;
  std::vector<uint64_t> Entries;

  bool isValid() const {
    return InBits >= 1 && InBits <= 20 && OutBits >= 1 && OutBits <= 64 &&
           Entries.size() == (std::size_t{1} << InBits);
  }
};

/// A straight-line Boolean circuit. Wires are identified by index: wires
/// [0, NumInputs) are the inputs; every gate appends one wire. Gate
/// operands always refer to earlier wires, so evaluation is a single
/// forward pass.
class Circuit {
public:
  /// Andn computes ~A & B in one gate (pandn/vpandn on every x86 SIMD
  /// level; the back-end's fuse-andn peephole reconstitutes it after
  /// table elaboration splits it into Not+And for the AST).
  enum class GateKind : uint8_t { And, Or, Xor, Not, Andn, Const0, Const1 };

  struct Gate {
    GateKind Kind;
    unsigned A = 0; ///< first operand wire (unused for consts)
    unsigned B = 0; ///< second operand wire (unused for Not/consts)
  };

  explicit Circuit(unsigned NumInputs) : NumInputs(NumInputs) {}

  unsigned numInputs() const { return NumInputs; }
  unsigned numWires() const {
    return NumInputs + static_cast<unsigned>(Gates.size());
  }
  unsigned numGates() const { return static_cast<unsigned>(Gates.size()); }
  const std::vector<Gate> &gates() const { return Gates; }
  const std::vector<unsigned> &outputs() const { return Outputs; }

  /// Appends a gate and returns its wire index. Operands must be earlier
  /// wires.
  unsigned addGate(GateKind Kind, unsigned A = 0, unsigned B = 0) {
    assert((Kind == GateKind::Const0 || Kind == GateKind::Const1 ||
            A < numWires()) &&
           "gate operand A out of range");
    assert((Kind != GateKind::And && Kind != GateKind::Or &&
            Kind != GateKind::Xor && Kind != GateKind::Andn ||
            B < numWires()) &&
           "gate operand B out of range");
    Gates.push_back({Kind, A, B});
    return numWires() - 1;
  }

  /// Marks \p Wire as the next output bit (outputs are ordered).
  void addOutput(unsigned Wire) {
    assert(Wire < numWires() && "output wire out of range");
    Outputs.push_back(Wire);
  }

  /// Evaluates the circuit on a packed input (input wire i = bit i of
  /// \p Input) and returns the packed outputs (output j = bit j). Gates
  /// operate on full 64-bit words, so this is itself a 64-way bitsliced
  /// evaluator — handy for fast exhaustive checking.
  uint64_t evaluate(uint64_t Input) const;

  /// Checks that the circuit computes exactly \p Table, under the wire
  /// convention documented on TruthTable (input wire i = bit i of the
  /// table index, output wire j = bit j of the entry).
  bool matchesTable(const TruthTable &Table) const;

  /// Logic depth of the circuit: the longest chain of logic gates from
  /// any input (or constant, depth 0) to any output. Every gate kind
  /// counts 1 except Const0/Const1 (leaves). 0 for pass-through /
  /// constant-only circuits.
  unsigned depth() const;

private:
  unsigned NumInputs;
  std::vector<Gate> Gates;
  std::vector<unsigned> Outputs;
};

/// How a table became a circuit — the raw material of the elaborator's
/// "table-circuit" optimization remarks.
struct TableSynthesisInfo {
  enum class Source : uint8_t {
    DatabaseHand,     ///< hand-optimized known-circuit database hit
    DatabaseSuperopt, ///< superoptimizer-generated database hit
    Structural,       ///< structural construction (AES tower field S-box)
    Synthesized       ///< generic BDD synthesis
  };
  Source From = Source::Synthesized;
  unsigned Gates = 0;       ///< gate count of the chosen circuit
  unsigned Depth = 0;       ///< logic depth of the chosen circuit
  size_t BddNodes = 0;      ///< BDD nodes interned for the winning order
  unsigned OrdersTried = 0; ///< variable orders attempted (synthesis only)
  /// For database hits: what plain BDD synthesis produced for the same
  /// table when the entry was generated (recorded in the entry's
  /// provenance), so remarks can report the gate/depth delta. 0 when
  /// unknown or not a database hit.
  unsigned SynthGates = 0;
  unsigned SynthDepth = 0;
};

/// "database(hand)" / "database(superopt)" / "structural" / "synthesized".
const char *tableSynthesisSourceName(TableSynthesisInfo::Source S);

/// Synthesizes a circuit for \p Table with the hash-consed BDD/Shannon
/// method (paper Section 2.2: "an elementary logic synthesis algorithm
/// based on binary decision diagrams"). The result is correct for every
/// input; gate count is decent but not optimal.
Circuit synthesizeTable(const TruthTable &Table);

/// Same, but gives up (returns std::nullopt) once more than
/// \p MaxBddNodes BDD nodes have been interned — a resource guard so a
/// hostile table produces a diagnostic instead of an OOM. 0 = unlimited.
std::optional<Circuit> synthesizeTableBudgeted(const TruthTable &Table,
                                               size_t MaxBddNodes,
                                               TableSynthesisInfo *Info =
                                                   nullptr);

/// Looks \p Table up in the database of known hand-optimized circuits
/// (paper: "Usuba integrates these hard-won results into a database of
/// known circuits"). Returns nullptr when the table is not known.
const Circuit *lookupKnownCircuit(const TruthTable &Table);

/// Database lookup, falling back to BDD synthesis.
Circuit circuitForTable(const TruthTable &Table);

/// Database lookup, falling back to budgeted BDD synthesis; std::nullopt
/// when the node budget is exhausted.
std::optional<Circuit> circuitForTableBudgeted(const TruthTable &Table,
                                               size_t MaxBddNodes,
                                               TableSynthesisInfo *Info =
                                                   nullptr);

} // namespace usuba

#endif // USUBA_CIRCUITS_CIRCUIT_H
