//===- AesTowerSbox.cpp - Composite-field AES S-box circuit ---------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/AesTowerSbox.h"

#include "support/BitUtils.h"

#include <array>
#include <map>
#include <tuple>
#include <vector>

using namespace usuba;

namespace {

//===----------------------------------------------------------------------===//
// Field arithmetic (reference, not circuits)
//===----------------------------------------------------------------------===//

/// GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1.
uint8_t mul8(uint8_t A, uint8_t B) {
  uint8_t Product = 0;
  for (unsigned Bit = 0; Bit < 8; ++Bit) {
    if (B & 1)
      Product ^= A;
    bool High = A & 0x80;
    A = static_cast<uint8_t>(A << 1);
    if (High)
      A ^= 0x1B;
    B >>= 1;
  }
  return Product;
}

/// GF(2^4) with y^4 + y + 1.
uint8_t mul4(uint8_t A, uint8_t B) {
  uint8_t Product = 0;
  for (unsigned Bit = 0; Bit < 4; ++Bit) {
    if (B & 1)
      Product ^= A;
    bool High = A & 0x8;
    A = static_cast<uint8_t>((A << 1) & 0xF);
    if (High)
      A ^= 0x3; // y^4 = y + 1
    B >>= 1;
  }
  return Product;
}

/// The tower GF(2^4)[z]/(z^2 + z + Lambda): elements are (hi << 4) | lo
/// for hi*z + lo.
uint8_t towerMul(uint8_t A, uint8_t B, uint8_t Lambda) {
  uint8_t Ah = A >> 4, Al = A & 0xF, Bh = B >> 4, Bl = B & 0xF;
  uint8_t HH = mul4(Ah, Bh);
  uint8_t Hi = static_cast<uint8_t>(mul4(Ah, Bl) ^ mul4(Al, Bh) ^ HH);
  uint8_t Lo = static_cast<uint8_t>(mul4(Al, Bl) ^ mul4(HH, Lambda));
  return static_cast<uint8_t>((Hi << 4) | Lo);
}

/// Picks a Lambda making z^2 + z + Lambda irreducible: Lambda outside the
/// image of z -> z^2 + z.
uint8_t pickLambda() {
  bool InImage[16] = {};
  for (unsigned Z = 0; Z < 16; ++Z)
    InImage[mul4(static_cast<uint8_t>(Z), static_cast<uint8_t>(Z)) ^ Z] =
        true;
  for (unsigned L = 1; L < 16; ++L)
    if (!InImage[L])
      return static_cast<uint8_t>(L);
  return 0; // unreachable: the image has size 8
}

/// Finds a field isomorphism phi: GF(2^8)_AES -> tower, returned as the
/// images of the polynomial basis (phi(x^j) for j = 0..7). Searches for a
/// tower element whose powers reproduce the AES field's addition.
std::optional<std::array<uint8_t, 8>> findEmbedding(uint8_t Lambda) {
  // Discrete log table for a generator g of the AES field.
  uint8_t G = 0;
  std::array<int, 256> Log{};
  for (unsigned Candidate = 2; Candidate < 256 && !G; ++Candidate) {
    Log.fill(-1);
    uint8_t Power = 1;
    unsigned Order = 0;
    do {
      Log[Power] = static_cast<int>(Order++);
      Power = mul8(Power, static_cast<uint8_t>(Candidate));
    } while (Power != 1 && Order <= 255);
    if (Order == 255)
      G = static_cast<uint8_t>(Candidate);
  }
  if (!G)
    return std::nullopt;

  for (unsigned T = 2; T < 256; ++T) {
    // phi(g^k) = t^k; phi is a field map iff it is additive.
    std::array<uint8_t, 256> Phi{};
    uint8_t Power = 1;
    std::array<uint8_t, 255> TPow{};
    for (unsigned K = 0; K < 255; ++K) {
      TPow[K] = Power;
      Power = towerMul(Power, static_cast<uint8_t>(T), Lambda);
    }
    if (Power != 1)
      continue; // order of t divides but is not 255
    bool Injective = true;
    std::array<bool, 256> Seen{};
    for (unsigned K = 0; K < 255 && Injective; ++K) {
      Injective = !Seen[TPow[K]];
      Seen[TPow[K]] = true;
    }
    if (!Injective)
      continue;
    for (unsigned A = 1; A < 256; ++A)
      Phi[A] = TPow[static_cast<unsigned>(Log[A])];
    bool Additive = true;
    for (unsigned A = 1; A < 256 && Additive; A <<= 1)
      for (unsigned B = 1; B < 256 && Additive; ++B)
        Additive = Phi[A ^ B] == (Phi[A] ^ Phi[B]);
    if (!Additive)
      continue;
    // Full check (cheap and conclusive).
    for (unsigned A = 0; A < 256 && Additive; ++A)
      Additive = Phi[A ^ 1] == (Phi[A] ^ Phi[1]);
    if (!Additive)
      continue;
    std::array<uint8_t, 8> Basis;
    for (unsigned J = 0; J < 8; ++J)
      Basis[J] = Phi[1u << J];
    return Basis;
  }
  return std::nullopt;
}

/// An 8x8 GF(2) matrix as row masks: Rows[i] bit j set means output bit i
/// XORs input bit j.
using Matrix8 = std::array<uint8_t, 8>;

/// Matrix whose columns are \p Columns (column j = image of bit j).
Matrix8 fromColumns(const std::array<uint8_t, 8> &Columns) {
  Matrix8 M{};
  for (unsigned I = 0; I < 8; ++I)
    for (unsigned J = 0; J < 8; ++J)
      if (getBit(Columns[J], I))
        M[I] = static_cast<uint8_t>(M[I] | (1u << J));
  return M;
}

std::optional<Matrix8> invertMatrix(Matrix8 M) {
  Matrix8 Inv{};
  for (unsigned I = 0; I < 8; ++I)
    Inv[I] = static_cast<uint8_t>(1u << I);
  for (unsigned Col = 0; Col < 8; ++Col) {
    unsigned Pivot = Col;
    while (Pivot < 8 && !getBit(M[Pivot], Col))
      ++Pivot;
    if (Pivot == 8)
      return std::nullopt;
    std::swap(M[Col], M[Pivot]);
    std::swap(Inv[Col], Inv[Pivot]);
    for (unsigned Row = 0; Row < 8; ++Row) {
      if (Row == Col || !getBit(M[Row], Col))
        continue;
      M[Row] ^= M[Col];
      Inv[Row] ^= Inv[Col];
    }
  }
  return Inv;
}

//===----------------------------------------------------------------------===//
// Circuit assembly
//===----------------------------------------------------------------------===//

/// Gate builder with hash-consing (shared subexpressions become one
/// wire) over an underlying Circuit.
class GateBuilder {
public:
  explicit GateBuilder(unsigned NumInputs) : Net(NumInputs) {}

  unsigned gate(Circuit::GateKind Kind, unsigned A, unsigned B = 0) {
    if ((Kind == Circuit::GateKind::And || Kind == Circuit::GateKind::Or ||
         Kind == Circuit::GateKind::Xor) &&
        B < A)
      std::swap(A, B);
    auto Key = std::make_tuple(static_cast<int>(Kind), A, B);
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    unsigned Wire = Net.addGate(Kind, A, B);
    Cache.emplace(Key, Wire);
    return Wire;
  }

  unsigned bxor(unsigned A, unsigned B) {
    return gate(Circuit::GateKind::Xor, A, B);
  }
  unsigned band(unsigned A, unsigned B) {
    return gate(Circuit::GateKind::And, A, B);
  }
  unsigned bnot(unsigned A) { return gate(Circuit::GateKind::Not, A); }
  unsigned zero() { return gate(Circuit::GateKind::Const0, 0, 0); }

  /// XOR-reduces the wires selected by \p Mask over \p Bits.
  unsigned xorMask(const std::vector<unsigned> &Bits, unsigned Mask) {
    int Acc = -1;
    for (unsigned J = 0; J < Bits.size(); ++J)
      if (Mask & (1u << J))
        Acc = Acc < 0 ? static_cast<int>(Bits[J])
                      : static_cast<int>(bxor(static_cast<unsigned>(Acc),
                                              Bits[J]));
    return Acc < 0 ? zero() : static_cast<unsigned>(Acc);
  }

  Circuit take() { return std::move(Net); }

private:
  Circuit Net;
  std::map<std::tuple<int, unsigned, unsigned>, unsigned> Cache;
};

using Nibble = std::array<unsigned, 4>;

/// GF(2^4) multiplication as gates: schoolbook products reduced by
/// y^4 = y + 1. The contribution of a_i * b_j to output bit k is fixed,
/// so the formula is derived, not transcribed.
Nibble gf16Mul(GateBuilder &B, const Nibble &X, const Nibble &Y) {
  // reduction[i+j] = bitmask of output bits receiving y^(i+j).
  uint8_t Reduction[7];
  for (unsigned Deg = 0; Deg < 7; ++Deg) {
    uint8_t Value = Deg < 4 ? static_cast<uint8_t>(1u << Deg) : 0;
    if (Deg >= 4) {
      // y^deg mod (y^4+y+1), computed by repeated reduction.
      uint8_t Poly = 1;
      for (unsigned Step = 0; Step < Deg; ++Step) {
        bool High = Poly & 0x8;
        Poly = static_cast<uint8_t>((Poly << 1) & 0xF);
        if (High)
          Poly ^= 0x3;
      }
      Value = Poly;
    }
    Reduction[Deg] = Value;
  }
  std::array<int, 4> Acc = {-1, -1, -1, -1};
  for (unsigned I = 0; I < 4; ++I)
    for (unsigned J = 0; J < 4; ++J) {
      unsigned Term = B.band(X[I], Y[J]);
      uint8_t Targets = Reduction[I + J];
      for (unsigned K = 0; K < 4; ++K)
        if (getBit(Targets, K))
          Acc[K] = Acc[K] < 0
                       ? static_cast<int>(Term)
                       : static_cast<int>(
                             B.bxor(static_cast<unsigned>(Acc[K]), Term));
    }
  Nibble Out;
  for (unsigned K = 0; K < 4; ++K)
    Out[K] = Acc[K] < 0 ? B.zero() : static_cast<unsigned>(Acc[K]);
  return Out;
}

/// A linear GF(2^4) map (squaring, multiplication by a constant) as XORs,
/// derived from its action on the basis.
Nibble gf16Linear(GateBuilder &B, const Nibble &X, uint8_t (*F)(uint8_t),
                  uint8_t Param) {
  Nibble Out;
  for (unsigned K = 0; K < 4; ++K) {
    int Acc = -1;
    for (unsigned J = 0; J < 4; ++J) {
      uint8_t Image = F(static_cast<uint8_t>((1u << J) ^ (Param << 4)));
      // Param is smuggled via the high nibble; F unpacks it.
      if (!getBit(Image, K))
        continue;
      Acc = Acc < 0 ? static_cast<int>(X[J])
                    : static_cast<int>(
                          B.bxor(static_cast<unsigned>(Acc), X[J]));
    }
    Out[K] = Acc < 0 ? B.zero() : static_cast<unsigned>(Acc);
  }
  return Out;
}

uint8_t squareFn(uint8_t Packed) {
  uint8_t X = Packed & 0xF;
  return mul4(X, X);
}
uint8_t mulConstFn(uint8_t Packed) {
  return mul4(Packed & 0xF, Packed >> 4);
}

/// GF(2^4) inversion: the 16-entry table is tiny, so emit its minimal
/// two-level form directly: out_k = XOR over products of literals...
/// In practice a 4-variable BDD-free sum is small; we emit a simple
/// sum-of-products with shared AND terms (good enough at this size).
Nibble gf16Inverse(GateBuilder &B, const Nibble &X) {
  // Inverse table, computed.
  uint8_t Inv[16] = {};
  for (unsigned A = 1; A < 16; ++A)
    for (unsigned C = 1; C < 16; ++C)
      if (mul4(static_cast<uint8_t>(A), static_cast<uint8_t>(C)) == 1)
        Inv[A] = static_cast<uint8_t>(C);

  // Shared literals and minterm products.
  unsigned Lit[4][2];
  for (unsigned J = 0; J < 4; ++J) {
    Lit[J][1] = X[J];
    Lit[J][0] = B.bnot(X[J]);
  }
  std::array<int, 4> Acc = {-1, -1, -1, -1};
  for (unsigned A = 0; A < 16; ++A) {
    if (Inv[A] == 0)
      continue;
    unsigned P01 = B.band(Lit[0][A & 1], Lit[1][(A >> 1) & 1]);
    unsigned P23 = B.band(Lit[2][(A >> 2) & 1], Lit[3][(A >> 3) & 1]);
    unsigned Minterm = B.band(P01, P23);
    for (unsigned K = 0; K < 4; ++K)
      if (getBit(Inv[A], K))
        Acc[K] = Acc[K] < 0
                     ? static_cast<int>(Minterm)
                     : static_cast<int>(
                           B.bxor(static_cast<unsigned>(Acc[K]), Minterm));
  }
  Nibble Out;
  for (unsigned K = 0; K < 4; ++K)
    Out[K] = Acc[K] < 0 ? B.zero() : static_cast<unsigned>(Acc[K]);
  return Out;
}

} // namespace

std::optional<Circuit> usuba::buildAesTowerSbox(const TruthTable &Table) {
  if (Table.InBits != 8 || Table.OutBits != 8)
    return std::nullopt;

  // Is the table the AES S-box? Compute the S-box from first principles
  // and compare; also accept the inverse S-box (same construction, with
  // the affine layer on the input side).
  uint8_t Sbox[256];
  {
    uint8_t Inv[256] = {};
    for (unsigned A = 1; A < 256; ++A)
      for (unsigned C = 1; C < 256; ++C)
        if (mul8(static_cast<uint8_t>(A), static_cast<uint8_t>(C)) == 1) {
          Inv[A] = static_cast<uint8_t>(C);
          break;
        }
    for (unsigned A = 0; A < 256; ++A) {
      uint8_t X = Inv[A];
      uint8_t S = static_cast<uint8_t>(
          X ^ rotateLeft(X, 1, 8) ^ rotateLeft(X, 2, 8) ^
          rotateLeft(X, 3, 8) ^ rotateLeft(X, 4, 8) ^ 0x63);
      Sbox[A] = S;
    }
  }
  bool Forward = true;
  for (unsigned A = 0; A < 256 && Forward; ++A)
    Forward = Table.Entries[A] == Sbox[A];
  if (!Forward)
    return std::nullopt; // (inverse S-box falls back to BDD synthesis)

  // Derive the tower structure.
  uint8_t Lambda = pickLambda();
  std::optional<std::array<uint8_t, 8>> Basis = findEmbedding(Lambda);
  if (!Basis)
    return std::nullopt;
  // Column j of the input basis change is phi(x^j) = phi(bit j).
  Matrix8 ToTower = fromColumns(*Basis);
  std::optional<Matrix8> FromTower = invertMatrix(ToTower);
  if (!FromTower)
    return std::nullopt;

  // Affine output layer A(x) = x ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4 (then
  // xor 0x63); combine A with the tower->AES basis change.
  Matrix8 Affine{};
  for (unsigned J = 0; J < 8; ++J) {
    uint8_t Col = static_cast<uint8_t>(
        (1u << J) ^ rotateLeft(1u << J, 1, 8) ^ rotateLeft(1u << J, 2, 8) ^
        rotateLeft(1u << J, 3, 8) ^ rotateLeft(1u << J, 4, 8));
    for (unsigned I = 0; I < 8; ++I)
      if (getBit(Col, I))
        Affine[I] = static_cast<uint8_t>(Affine[I] | (1u << J));
  }
  Matrix8 Post{};
  for (unsigned I = 0; I < 8; ++I) {
    // Post = Affine * FromTower (row i of Affine selects rows of
    // FromTower to XOR).
    uint8_t Row = 0;
    for (unsigned K = 0; K < 8; ++K)
      if (getBit(Affine[I], K))
        Row ^= (*FromTower)[K];
    Post[I] = Row;
  }

  // Build the circuit.
  GateBuilder B(8);
  std::vector<unsigned> In(8);
  for (unsigned J = 0; J < 8; ++J)
    In[J] = J;

  // Input basis change: tower bit i = XOR of input bits per ToTower.
  std::vector<unsigned> Tower(8);
  for (unsigned I = 0; I < 8; ++I)
    Tower[I] = B.xorMask(In, ToTower[I]);
  Nibble Lo = {Tower[0], Tower[1], Tower[2], Tower[3]};
  Nibble Hi = {Tower[4], Tower[5], Tower[6], Tower[7]};

  // Norm: N = lambda * hi^2 + hi*lo + lo^2.
  Nibble HiSq = gf16Linear(B, Hi, squareFn, 0);
  Nibble LambdaHiSq = gf16Linear(B, HiSq, mulConstFn, Lambda);
  Nibble HiLo = gf16Mul(B, Hi, Lo);
  Nibble LoSq = gf16Linear(B, Lo, squareFn, 0);
  Nibble Norm;
  for (unsigned K = 0; K < 4; ++K)
    Norm[K] = B.bxor(B.bxor(LambdaHiSq[K], HiLo[K]), LoSq[K]);

  // Inverse of the norm, then the two output halves.
  Nibble NormInv = gf16Inverse(B, Norm);
  Nibble HiPlusLo;
  for (unsigned K = 0; K < 4; ++K)
    HiPlusLo[K] = B.bxor(Hi[K], Lo[K]);
  Nibble OutHi = gf16Mul(B, Hi, NormInv);
  Nibble OutLo = gf16Mul(B, HiPlusLo, NormInv);

  // Output basis change + affine constant 0x63.
  std::vector<unsigned> TowerOut = {OutLo[0], OutLo[1], OutLo[2], OutLo[3],
                                    OutHi[0], OutHi[1], OutHi[2], OutHi[3]};
  std::vector<unsigned> OutWires(8);
  for (unsigned I = 0; I < 8; ++I) {
    unsigned Wire = B.xorMask(TowerOut, Post[I]);
    if (getBit(0x63, I))
      Wire = B.bnot(Wire);
    OutWires[I] = Wire;
  }
  Circuit Result = B.take();
  for (unsigned I = 0; I < 8; ++I)
    Result.addOutput(OutWires[I]);

  if (!Result.matchesTable(Table))
    return std::nullopt; // self-verification failed; fall back
  return Result;
}
