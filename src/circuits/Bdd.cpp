//===- Bdd.cpp - Hash-consed reduced ordered BDDs -------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/Bdd.h"

using namespace usuba;

namespace {
/// Terminals carry a variable index greater than any real variable so the
/// top-variable comparison in ite() never cofactors them.
constexpr unsigned TerminalVar = ~0u;
/// Field widths for the packed hash keys below. The node budget (1<<22 by
/// default) keeps references far below 2^24; variables are capped at 2^16,
/// orders of magnitude above what the validator's input-bit cap admits.
constexpr unsigned MaxVars = 1u << 16;
constexpr uint32_t MaxRefs = 1u << 24;

uint64_t uniqueKey(unsigned Var, uint32_t Low, uint32_t High) {
  return (uint64_t{Var} << 48) | (uint64_t{Low} << 24) | High;
}
} // namespace

BddManager::BddManager(size_t MaxNodes) : MaxNodes(MaxNodes) {
  Nodes.push_back({TerminalVar, False, False}); // 0 = false
  Nodes.push_back({TerminalVar, True, True});   // 1 = true
}

BddManager::Ref BddManager::intern(unsigned Var, Ref Low, Ref High) {
  if (Low == High)
    return Low;
  auto It = Unique.find(uniqueKey(Var, Low, High));
  if (It != Unique.end())
    return It->second;
  if ((MaxNodes && Nodes.size() >= MaxNodes) || Nodes.size() >= MaxRefs)
    throw BddBudgetExceeded{};
  Ref R = static_cast<Ref>(Nodes.size());
  Nodes.push_back({Var, Low, High});
  Unique.emplace(uniqueKey(Var, Low, High), R);
  return R;
}

BddManager::Ref BddManager::var(unsigned Var) {
  if (Var >= MaxVars)
    throw BddBudgetExceeded{};
  return intern(Var, False, True);
}

BddManager::Ref BddManager::cofactor(Ref F, unsigned Var, bool High) const {
  const Node &N = Nodes[F];
  if (N.Var != Var)
    return F;
  return High ? N.High : N.Low;
}

BddManager::Ref BddManager::ite(Ref F, Ref G, Ref H) {
  // Terminal rules.
  if (F == True)
    return G;
  if (F == False)
    return H;
  if (G == H)
    return G;
  if (G == True && H == False)
    return F;

  const IteKey Key{(uint64_t{F} << 24) | G, H};
  auto It = IteCache.find(Key);
  if (It != IteCache.end())
    return It->second;

  unsigned Top = topVar(F);
  if (topVar(G) < Top)
    Top = topVar(G);
  if (topVar(H) < Top)
    Top = topVar(H);

  Ref Low = ite(cofactor(F, Top, false), cofactor(G, Top, false),
                cofactor(H, Top, false));
  Ref High = ite(cofactor(F, Top, true), cofactor(G, Top, true),
                 cofactor(H, Top, true));
  Ref R = intern(Top, Low, High);
  IteCache.emplace(Key, R);
  return R;
}

bool BddManager::evaluate(Ref F, const std::vector<bool> &Assignment) const {
  while (F != False && F != True) {
    const Node &N = Nodes[F];
    bool Bit = N.Var < Assignment.size() && Assignment[N.Var];
    F = Bit ? N.High : N.Low;
  }
  return F == True;
}
