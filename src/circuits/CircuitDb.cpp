//===- CircuitDb.cpp - Known-circuit database with provenance -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuits/CircuitDb.h"

#include "circuits/Bdd.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <unordered_map>

using namespace usuba;

uint64_t usuba::canonicalTableHash(const TruthTable &Table) {
  // FNV-1a over the table's shape and masked entries. Entries are masked
  // to OutBits so tables that differ only in ignored high bits hash (and
  // compare) the same.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned Byte = 0; Byte < 8; ++Byte) {
      H ^= (V >> (Byte * 8)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  Mix(Table.InBits);
  Mix(Table.OutBits);
  uint64_t Mask = lowBitMask(Table.OutBits);
  for (uint64_t E : Table.Entries)
    Mix(E & Mask);
  return H;
}

//===----------------------------------------------------------------------===//
// Hand-optimized seed entries
//===----------------------------------------------------------------------===//

namespace {

/// Rectangle's S-box circuit, verbatim from the paper (Section 2.2): 12
/// gates for the 4x4 S-box {6,5,12,10,1,14,7,9,11,0,3,13,8,15,4,2}.
CircuitDbEntry makeRectangleSbox() {
  CircuitDbEntry E;
  E.Name = "rectangle/SubColumn(paper)";
  E.Table.InBits = 4;
  E.Table.OutBits = 4;
  E.Table.Entries = {6, 5, 12, 10, 1, 14, 7, 9, 11, 0, 3, 13, 8, 15, 4, 2};

  Circuit C(4);
  // Inputs: wires 0..3 = a[0]..a[3].
  unsigned T1 = C.addGate(Circuit::GateKind::Not, 1);      // ~a1
  unsigned T2 = C.addGate(Circuit::GateKind::And, 0, T1);  // a0 & t1
  unsigned T3 = C.addGate(Circuit::GateKind::Xor, 2, 3);   // a2 ^ a3
  unsigned B0 = C.addGate(Circuit::GateKind::Xor, T2, T3); // b0
  unsigned T5 = C.addGate(Circuit::GateKind::Or, 3, T1);   // a3 | t1
  unsigned T6 = C.addGate(Circuit::GateKind::Xor, 0, T5);  // a0 ^ t5
  unsigned B1 = C.addGate(Circuit::GateKind::Xor, 2, T6);  // b1
  unsigned T8 = C.addGate(Circuit::GateKind::Xor, 1, 2);   // a1 ^ a2
  unsigned T9 = C.addGate(Circuit::GateKind::And, T3, T6); // t3 & t6
  unsigned B3 = C.addGate(Circuit::GateKind::Xor, T8, T9); // b3
  unsigned T11 = C.addGate(Circuit::GateKind::Or, B0, T8); // b0 | t8
  unsigned B2 = C.addGate(Circuit::GateKind::Xor, T6, T11); // b2
  C.addOutput(B0);
  C.addOutput(B1);
  C.addOutput(B2);
  C.addOutput(B3);

  E.Prov.From = CircuitProvenance::Origin::Hand;
  E.Prov.Objective = "hand";
  E.Prov.Gates = C.numGates();
  E.Prov.Depth = C.depth();
  E.Network = std::move(C);
  return E;
}

/// The database plus its hash index. Entries are constructed on first
/// use (no static constructors of nontrivial type at namespace scope).
struct Db {
  std::vector<CircuitDbEntry> Entries;
  /// canonical hash -> entry indices (a vector, because the test hooks
  /// can force collisions and several objectives may cover one table).
  std::unordered_map<uint64_t, std::vector<unsigned>> Index;

  void add(CircuitDbEntry E, uint64_t Hash) {
    Index[Hash].push_back(static_cast<unsigned>(Entries.size()));
    Entries.push_back(std::move(E));
  }

  void build() {
    Entries.clear();
    Index.clear();
    std::vector<CircuitDbEntry> All;
    All.push_back(makeRectangleSbox());
    appendGeneratedCircuitDbEntries(All);
    for (CircuitDbEntry &E : All) {
      uint64_t Hash = canonicalTableHash(E.Table);
      add(std::move(E), Hash);
    }
  }
};

Db &db() {
  static Db *TheDb = [] {
    auto *D = new Db();
    D->build();
    return D;
  }();
  return *TheDb;
}

} // namespace

const std::vector<CircuitDbEntry> &usuba::circuitDb() { return db().Entries; }

const CircuitDbEntry *usuba::circuitDbLookup(const TruthTable &Table) {
  const Db &D = db();
  auto It = D.Index.find(canonicalTableHash(Table));
  if (It == D.Index.end())
    return nullptr;
  uint64_t Mask = lowBitMask(Table.OutBits);
  const CircuitDbEntry *Best = nullptr;
  for (unsigned I : It->second) {
    const CircuitDbEntry &E = D.Entries[I];
    // Hash hit is only a candidate: confirm the full table (collision
    // safety) under the OutBits mask.
    if (E.Table.InBits != Table.InBits || E.Table.OutBits != Table.OutBits ||
        E.Table.Entries.size() != Table.Entries.size())
      continue;
    bool Same = true;
    for (size_t K = 0; K < Table.Entries.size() && Same; ++K)
      Same = (E.Table.Entries[K] & Mask) == (Table.Entries[K] & Mask);
    if (!Same)
      continue;
    if (!Best ||
        std::make_pair(E.Network.numGates(), E.Network.depth()) <
            std::make_pair(Best->Network.numGates(), Best->Network.depth()))
      Best = &E;
  }
  return Best;
}

unsigned usuba::circuitDbTestOnlyInsert(CircuitDbEntry Entry,
                                        uint64_t ForcedHash) {
  Db &D = db();
  unsigned Idx = static_cast<unsigned>(D.Entries.size());
  D.add(std::move(Entry), ForcedHash);
  return Idx;
}

void usuba::circuitDbTestOnlyReset() { db().build(); }

//===----------------------------------------------------------------------===//
// BDD equivalence proof
//===----------------------------------------------------------------------===//

bool usuba::proveCircuitMatchesTable(const Circuit &C, const TruthTable &Table,
                                     size_t MaxBddNodes, std::string *Why) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (!Table.isValid())
    return Fail("malformed truth table");
  if (C.numInputs() != Table.InBits)
    return Fail("input arity mismatch");
  if (C.outputs().size() != Table.OutBits)
    return Fail("output arity mismatch");

  try {
    BddManager B(MaxBddNodes);

    // Circuit cones: one forward pass over the netlist.
    std::vector<BddManager::Ref> Wire(C.numWires());
    for (unsigned I = 0; I < C.numInputs(); ++I)
      Wire[I] = B.var(I);
    unsigned Next = C.numInputs();
    for (const Circuit::Gate &G : C.gates()) {
      BddManager::Ref V = BddManager::False;
      switch (G.Kind) {
      case Circuit::GateKind::And:
        V = B.mkAnd(Wire[G.A], Wire[G.B]);
        break;
      case Circuit::GateKind::Or:
        V = B.mkOr(Wire[G.A], Wire[G.B]);
        break;
      case Circuit::GateKind::Xor:
        V = B.mkXor(Wire[G.A], Wire[G.B]);
        break;
      case Circuit::GateKind::Not:
        V = B.mkNot(Wire[G.A]);
        break;
      case Circuit::GateKind::Andn:
        V = B.mkAnd(B.mkNot(Wire[G.A]), Wire[G.B]);
        break;
      case Circuit::GateKind::Const0:
        V = BddManager::False;
        break;
      case Circuit::GateKind::Const1:
        V = BddManager::True;
        break;
      }
      Wire[Next++] = V;
    }

    // Table cones: output bit j is the OR of the minterms whose entry has
    // bit j set. At table widths (InBits <= 20, but database entries are
    // <= 6) this is cheap and exact.
    for (unsigned J = 0; J < Table.OutBits; ++J) {
      BddManager::Ref Spec = BddManager::False;
      for (uint64_t Input = 0; Input < Table.Entries.size(); ++Input) {
        if (!getBit(Table.Entries[Input], J))
          continue;
        BddManager::Ref Minterm = BddManager::True;
        for (unsigned I = 0; I < Table.InBits; ++I) {
          BddManager::Ref X = B.var(I);
          Minterm = B.mkAnd(Minterm, getBit(Input, I) ? X : B.mkNot(X));
        }
        Spec = B.mkOr(Spec, Minterm);
      }
      // Hash-consing makes equivalence a pointer comparison.
      if (Wire[C.outputs()[J]] != Spec)
        return Fail("output bit " + std::to_string(J) +
                    " differs from the table");
    }
    return true;
  } catch (const BddBudgetExceeded &) {
    return Fail("BDD node budget exhausted");
  }
}
