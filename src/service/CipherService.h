//===----------------------------------------------------------------===//
// CipherService: the multi-tenant front door of the library.
//
// The bitsliced engine underneath (ciphers/UsubaCipher.h) only pays off
// when a call fills all blocksPerCall() slots of one transposed batch —
// 4 blocks for a vsliced GP64 kernel, 512 for a bitsliced AVX-512 one.
// A real deployment, though, serves millions of *small, independent*
// streams, each of which would fill a handful of slots at best. This
// service closes the gap: clients open per-session handles, submit
// CTR/ECB requests asynchronously, and a coalescer packs blocks from
// *different sessions* into full batches before dispatching onto the
// persistent work-stealing ThreadPool.
//
// Sharding. Sessions can share one transposed batch exactly when they
// share a compiled kernel and a key schedule, so the coalescer shards
// by (config-canonical-key, key): the canonical half is the process
// kernel-cache key (ciphers/KernelCache.h) extended with the runtime
// knobs, the key half is the raw key bytes. Each shard owns one warm
// UsubaCipher whose broadcast round-key cache and per-(key,epoch)
// SpecializeCtr clones are reused across every session mapped to it.
// Shards are cached for the life of the service, so a rekey — which
// just remaps the session to the shard of its new key — is an epoch
// bump, never a recompile, and rekeying *back* to a previously seen
// key lands on the original warm shard.
//
// Latency. Full batches dispatch inline on the submitting thread the
// moment they fill. Partial batches are flushed when the oldest queued
// block reaches ServiceConfig::FlushDeadline, so p99 latency stays
// bounded under low load (bench/service_latency.cpp measures the
// p50/p99-vs-offered-load curve with open-loop Poisson arrivals).
//
// Guarantees. Every session's output is byte-identical to a direct
// single-stream UsubaCipher run with the same key/nonce/counter
// (tests/service enforces this differentially). Within a session,
// request buffers must not overlap while in flight; the service never
// copies client data except through its batch scratch. Completion
// order across sessions is unspecified.
//
// Observability. With telemetry enabled (cheap enough to leave on in
// production — see support/Telemetry.h), every request is stamped at
// submit and its lifecycle lands in four per-stage histograms:
// service.queue_wait_ns (submit -> shard lock acquired),
// service.coalesce_wait_ns (span arrival -> batch dispatch, one sample
// per placement), service.kernel_ns (batch/direct kernel time) and
// service.callback_ns (completion callback + promise fulfilment).
// Per-shard gauges (service.shard<N>.{queue_depth,fill_percent,
// sessions}) and service-wide gauges (open_sessions, shards) track
// live state; requests slower than ServiceConfig::SlowRequestThreshold
// emit an annotated trace event with their stage breakdown.
//===----------------------------------------------------------------===//

#ifndef USUBA_SERVICE_CIPHERSERVICE_H
#define USUBA_SERVICE_CIPHERSERVICE_H

#include "ciphers/UsubaCipher.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace usuba {

/// Service-level tuning. All knobs have serving-ready defaults.
struct ServiceConfig {
  /// How long a partially filled batch may age before the timer thread
  /// flushes it. The latency floor under low load; irrelevant under
  /// load heavy enough to fill batches between arrivals.
  std::chrono::microseconds FlushDeadline{200};
  /// Test/diagnostic knob: route *every* request through the coalescer,
  /// even ones large enough for the direct full-batch path. Makes
  /// fill-ratio accounting deterministic in tests.
  bool CoalesceOnly = false;
  /// Requests whose submit-to-completion latency reaches this threshold
  /// emit a structured "service.slow_request" trace event carrying the
  /// full stage breakdown (queue wait, coalesce wait, kernel, callback)
  /// and count into ServiceStats::SlowRequests. Zero disables. Active
  /// only while telemetry is enabled (the stamps are taken at submit).
  std::chrono::milliseconds SlowRequestThreshold{50};
};

/// Opaque per-session handle value (never reused within one service).
using SessionId = uint64_t;

/// Result of CipherService::openSession — either a live session id or
/// the compiler's structured diagnostics, mirroring CipherResult.
class SessionResult {
public:
  explicit SessionResult(SessionId Id) : Id(Id) {}
  explicit SessionResult(std::vector<Diagnostic> Diags)
      : Diags(std::move(Diags)) {}

  bool ok() const { return Diags.empty(); }
  explicit operator bool() const { return ok(); }
  /// Valid only when ok().
  SessionId id() const { return Id; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  /// All diagnostics rendered one per line (empty when ok()).
  std::string errorText() const;

private:
  SessionId Id = 0;
  std::vector<Diagnostic> Diags;
};

/// Monotonic service counters (a stats() snapshot; see also the
/// "service.*" telemetry counters, which mirror the coalescer half).
struct ServiceStats {
  /// Client submissions accepted (all kinds).
  uint64_t Requests = 0;
  /// Full blocksPerCall() batches run inline on the submitter because a
  /// single request covered them (the coalescer never saw the blocks).
  uint64_t DirectBatches = 0;
  /// Batches assembled by the coalescer (full or deadline-flushed).
  uint64_t CoalescedBatches = 0;
  /// Coalesced batches that mixed blocks from more than one session.
  uint64_t MultiSessionBatches = 0;
  /// Blocks carried by coalesced batches / slots those batches offered
  /// (CoalescedBatches x blocksPerCall). Their ratio is the fill ratio.
  uint64_t CoalescedBlocks = 0;
  uint64_t CoalescedSlots = 0;
  /// Coalesced batches dispatched by the age deadline rather than by
  /// filling up.
  uint64_t DeadlineFlushes = 0;
  /// Requests that crossed ServiceConfig::SlowRequestThreshold (counted
  /// only while telemetry is enabled; each also leaves an annotated
  /// "service.slow_request" trace event).
  uint64_t SlowRequests = 0;
  /// Live (config,key) shards and open sessions right now.
  uint64_t Shards = 0;
  uint64_t OpenSessions = 0;

  /// Mean slot occupancy of coalesced batches in [0,1]; 0 when none ran.
  double fillRatio() const {
    return CoalescedSlots ? double(CoalescedBlocks) / double(CoalescedSlots)
                          : 0.0;
  }
};

/// Long-lived multi-tenant encryption service. Thread-safe: any thread
/// may open/rekey/close sessions and submit concurrently. The
/// destructor flushes and completes all pending work.
class CipherService {
public:
  /// Completion callback, invoked exactly once per request after its
  /// output bytes are fully written, before the future is satisfied.
  /// Runs on an unspecified service or submitter thread; must not
  /// block for long (it stalls a shard's dispatch).
  using Completion = std::function<void()>;

  explicit CipherService(ServiceConfig Config = ServiceConfig());
  ~CipherService();

  CipherService(const CipherService &) = delete;
  CipherService &operator=(const CipherService &) = delete;

  /// Opens a session for \p Config with the given key. Compiles the
  /// shard kernel on first use of the (config,key-less) combination —
  /// subsequent opens reuse warm shards and the process kernel cache.
  /// Target archAuto() resolves to the host's best ISA.
  SessionResult openSession(const CipherConfig &Config, const uint8_t *Key,
                            size_t KeyLen);

  /// Replaces the session's key. In-flight requests complete under the
  /// old key; requests submitted after rekeySession returns use the new
  /// one. An epoch bump, not a recompile: the session moves to the
  /// (possibly pre-existing, warm) shard of the new key.
  void rekeySession(SessionId Sid, const uint8_t *Key, size_t KeyLen);

  /// Flushes the session's pending blocks, waits for its in-flight
  /// requests to complete, then releases the handle. The shard (and its
  /// compiled kernel) stays warm for future sessions.
  void closeSession(SessionId Sid);

  /// CTR keystream XOR over \p Data in place (encrypt == decrypt).
  /// Nonce: 8 bytes for 64-bit blocks, 12 for ChaCha20 / 128-bit
  /// blocks — exactly UsubaCipher::ctrXor's contract. \p Data must stay
  /// valid and unaliased until completion.
  std::future<void> submitCtrXor(SessionId Sid, uint8_t *Data, size_t Length,
                                 const uint8_t *Nonce, uint64_t Counter,
                                 Completion OnDone = nullptr);

  /// ECB over whole blocks (block ciphers only). In may equal Out;
  /// both must stay valid until completion.
  std::future<void> submitEcbEncrypt(SessionId Sid, const uint8_t *In,
                                     uint8_t *Out, size_t NumBlocks,
                                     Completion OnDone = nullptr);
  std::future<void> submitEcbDecrypt(SessionId Sid, const uint8_t *In,
                                     uint8_t *Out, size_t NumBlocks,
                                     Completion OnDone = nullptr);

  /// Dispatches every partially filled batch now, without waiting for
  /// the age deadline. Returns after the flushed requests completed.
  void flush();

  /// Snapshot of the monotonic counters.
  ServiceStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace usuba

#endif // USUBA_SERVICE_CIPHERSERVICE_H
