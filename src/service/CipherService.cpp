//===----------------------------------------------------------------===//
// CipherService implementation: sharded coalescing queues in front of
// warm per-(config,key) UsubaCipher instances.
//
// Concurrency design, in one paragraph. Three lock levels, always
// acquired top-down: the service mutex (session/shard registries), one
// mutex per shard (its queues, scratch and cipher — a UsubaCipher is
// not internally thread-safe), and the timer mutex (the deadline
// registry). Completions (user callback + promise) are collected while
// a shard is locked and fulfilled only after it is released, so a
// callback may re-enter the service freely. Full batches dispatch
// inline on the thread that filled them; partial batches are dispatched
// by the timer thread when their oldest block ages past FlushDeadline.
//===----------------------------------------------------------------===//

#include "service/CipherService.h"

#include "ciphers/KernelCache.h"
#include "ciphers/RefChacha20.h"
#include "support/Telemetry.h"
#include "types/Arch.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace usuba;

namespace {

uint64_t load64be(const uint8_t *Bytes) {
  uint64_t Value = 0;
  for (unsigned I = 0; I < 8; ++I)
    Value = (Value << 8) | Bytes[I];
  return Value;
}

void store64be(uint64_t Value, uint8_t *Bytes) {
  for (unsigned I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(Value >> (8 * (7 - I)));
}

std::string hexBytes(const uint8_t *Data, size_t Length) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(2 * Length);
  for (size_t I = 0; I < Length; ++I) {
    Out += Digits[Data[I] >> 4];
    Out += Digits[Data[I] & 0xf];
  }
  return Out;
}

uint64_t toNs(std::chrono::steady_clock::time_point T) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          T.time_since_epoch())
          .count());
}

} // namespace

std::string SessionResult::errorText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

namespace {

struct SessionState;

/// One client submission. BlocksLeft is guarded by the mutex of the
/// shard the request's spans live in (after a rekey, old spans keep
/// draining under the old shard — a request never spans two shards).
struct RequestState {
  std::promise<void> Done;
  CipherService::Completion Cb;
  size_t BlocksLeft = 0;
  std::shared_ptr<SessionState> Sess;
  /// Lifecycle stamps, taken only while telemetry is enabled (SubmitNs
  /// == 0 means untraced). SubmitNs is written by the submitter before
  /// the request is published; the stage fields are written under the
  /// shard mutex (a request never spans two shards) and read by the
  /// completing thread, which held that mutex last — so no extra
  /// synchronization is needed.
  uint64_t SubmitNs = 0;
  uint64_t QueueWaitNs = 0;
  uint64_t CoalesceWaitMaxNs = 0;
  uint64_t KernelNs = 0;
};

/// A session is a (current shard, in-flight count) pair. Sh is guarded
/// by the service mutex (rekey swaps it); Outstanding by M.
struct SessionState {
  std::shared_ptr<struct Shard> Sh;
  std::mutex M;
  std::condition_variable CV;
  uint64_t Outstanding = 0;
};

enum class SpanKind : uint8_t { Ctr, EcbEnc, EcbDec };

/// A contiguous run of blocks from one request, queued in a shard.
/// Spans are split in place when only part of one fits a batch.
struct Span {
  std::shared_ptr<RequestState> Req;
  SpanKind Kind = SpanKind::Ctr;
  uint8_t *Out = nullptr;      ///< CTR: in-place payload; ECB: output.
  const uint8_t *In = nullptr; ///< ECB input (may equal Out).
  uint64_t Counter = 0;        ///< CTR: absolute counter of block 0.
  uint8_t Nonce[12] = {};
  size_t Blocks = 0; ///< Whole blocks (CTR: last may be ragged).
  size_t Bytes = 0;  ///< CTR payload bytes covered (<= Blocks * BlockLen).
  std::chrono::steady_clock::time_point Arrival;
  const void *SessionTag = nullptr; ///< Distinct-session accounting only.
};

/// Where a (piece of a) span landed inside one packed batch.
struct Placement {
  std::shared_ptr<RequestState> Req;
  SpanKind Kind;
  uint8_t *Out;
  size_t Blocks;
  size_t Bytes; ///< CTR only.
  size_t Slot;  ///< First batch slot used.
  const void *SessionTag;
};

struct Shard {
  explicit Shard(UsubaCipher CipherIn) : Cipher(std::move(CipherIn)) {}

  std::mutex M;
  UsubaCipher Cipher; ///< Key installed once at shard creation.
  std::vector<uint8_t> Key;
  unsigned BlockLen = 0;
  unsigned Batch = 0;
  unsigned NonceLen = 0;
  bool IsChacha = false;
  /// Forward-kernel queue (CTR keystream + ECB encrypt share the
  /// forward kernel, so they pack into the same batch) and the inverse
  /// queue (ECB decrypt).
  std::deque<Span> Fwd, Inv;
  size_t FwdBlocks = 0, InvBlocks = 0;
  std::vector<uint8_t> BatchIn, BatchOut;

  /// Per-shard observability (set once when the shard is registered).
  unsigned Id = 0;
  Gauge *QueueDepthG = nullptr; ///< Queued blocks, both queues.
  Gauge *FillG = nullptr;       ///< Fill percent of the last batch.
  Gauge *SessionsG = nullptr;   ///< Sessions currently mapped here.
};

using DoneList = std::vector<std::shared_ptr<RequestState>>;

} // namespace

struct CipherService::Impl {
  explicit Impl(ServiceConfig CfgIn) : Cfg(CfgIn) {
    Timer = std::thread([this] { timerLoop(); });
  }

  ServiceConfig Cfg;

  mutable std::mutex M; ///< Guards Shards, Sessions, NextId.
  std::unordered_map<std::string, std::shared_ptr<Shard>> Shards;
  std::unordered_map<SessionId, std::shared_ptr<SessionState>> Sessions;
  SessionId NextId = 1;

  std::atomic<uint64_t> Requests{0}, DirectBatches{0}, CoalescedBatches{0},
      MultiSessionBatches{0}, CoalescedBlocks{0}, CoalescedSlots{0},
      DeadlineFlushes{0}, SlowRequests{0};

  /// Per-stage latency histograms (process-lifetime references; lock-free
  /// record). Shared across services in one process by design: they
  /// describe the serving process, like the telemetry counters do.
  Histogram &QueueWaitH =
      Telemetry::instance().histogramRef("service.queue_wait_ns");
  Histogram &CoalesceWaitH =
      Telemetry::instance().histogramRef("service.coalesce_wait_ns");
  Histogram &KernelH = Telemetry::instance().histogramRef("service.kernel_ns");
  Histogram &CallbackH =
      Telemetry::instance().histogramRef("service.callback_ns");
  Gauge &OpenSessionsG = Telemetry::instance().gaugeRef("service.open_sessions");
  Gauge &ShardsG = Telemetry::instance().gaugeRef("service.shards_live");

  unsigned ShardSeq = 0; ///< Next shard Id; guarded by M.

  std::mutex TimerM; ///< Guards Due and Stop.
  std::condition_variable TimerCV;
  bool Stop = false;
  std::map<std::shared_ptr<Shard>, std::chrono::steady_clock::time_point> Due;
  std::thread Timer;

  /// The sharding key: which sessions may share one transposed batch.
  /// The compiled-artifact half is the process kernel-cache key; the
  /// runtime knobs that change scheduling or kernel cloning are
  /// appended, then the raw key bytes (hex, not a hash — a collision
  /// here would mix keys across tenants).
  static std::string shardKeyFor(const CipherConfig &Config,
                                 const uint8_t *Key, size_t KeyLen) {
    std::string K = kernelCacheKey(Config, "enc");
    K += "|svc|th=";
    K += std::to_string(Config.effectiveThreadCount());
    if (Config.effectiveSpecializeCtr())
      K += "|spec";
    if (!Config.effectiveCtrFastPath())
      K += "|nofast";
    K += "|key=";
    K += hexBytes(Key, KeyLen);
    return K;
  }

  /// Returns the warm shard for (Config, Key), compiling a cipher for a
  /// first-seen combination. Null with \p Diags filled on failure.
  std::shared_ptr<Shard> shardFor(const CipherConfig &ConfigIn,
                                  const uint8_t *Key, size_t KeyLen,
                                  std::vector<Diagnostic> &Diags) {
    CipherConfig Config = ConfigIn;
    if (Config.Target == &archAuto())
      Config.Target = &archBest();
    const std::string ShardKey = shardKeyFor(Config, Key, KeyLen);
    {
      std::lock_guard<std::mutex> Lock(M);
      auto It = Shards.find(ShardKey);
      if (It != Shards.end()) {
        telemetryCount("service.shard_hits");
        return It->second;
      }
    }
    // Compile outside the service lock; a lost insert race below just
    // drops the duplicate (the kernel cache made it cheap anyway).
    CipherResult Result = UsubaCipher::compile(Config);
    if (!Result) {
      Diags = Result.diagnostics();
      return nullptr;
    }
    UsubaCipher Cipher = std::move(Result).take();
    if (KeyLen != Cipher.keyBytes()) {
      Diags.push_back({DiagSeverity::Error, SourceLoc(),
                       "key length " + std::to_string(KeyLen) +
                           " does not match cipher key size " +
                           std::to_string(Cipher.keyBytes())});
      return nullptr;
    }
    Cipher.setKey(Key, KeyLen);
    auto Fresh = std::make_shared<Shard>(std::move(Cipher));
    Fresh->Key.assign(Key, Key + KeyLen);
    Fresh->BlockLen = Fresh->Cipher.blockBytes();
    Fresh->Batch = Fresh->Cipher.blocksPerCall();
    Fresh->IsChacha = Fresh->Cipher.config().Id == CipherId::Chacha20;
    Fresh->NonceLen = Fresh->BlockLen == 8 ? 8 : 12;
    Fresh->BatchIn.resize(size_t{Fresh->Batch} * Fresh->BlockLen);
    Fresh->BatchOut.resize(size_t{Fresh->Batch} * Fresh->BlockLen);
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Shards.emplace(ShardKey, std::move(Fresh));
    if (Inserted) {
      telemetryCount("service.shards");
      Shard &Sh = *It->second;
      Sh.Id = ShardSeq++;
      const std::string Prefix = "service.shard" + std::to_string(Sh.Id);
      Telemetry &T = Telemetry::instance();
      Sh.QueueDepthG = &T.gaugeRef(Prefix + ".queue_depth");
      Sh.FillG = &T.gaugeRef(Prefix + ".fill_percent");
      Sh.SessionsG = &T.gaugeRef(Prefix + ".sessions");
      ShardsG.set(static_cast<int64_t>(Shards.size()));
    }
    return It->second;
  }

  /// Builds the counter blocks for \p Take leading blocks of a CTR span
  /// — exactly the generic path of UsubaCipher::ctrChunk, which is what
  /// keeps service output byte-identical to a direct ctrXor.
  static void buildCounterBlocks(const Shard &Sh, const Span &S, size_t Take,
                                 uint8_t *Dst) {
    if (Sh.IsChacha) {
      // A ChaCha20 "counter block" is the whole 16-word input state;
      // the kernel output is the keystream directly.
      for (size_t B = 0; B < Take; ++B) {
        uint32_t State[16];
        chacha20InitState(State, Sh.Key.data(),
                          static_cast<uint32_t>(S.Counter + B), S.Nonce);
        for (unsigned W = 0; W < 16; ++W)
          for (unsigned Byte = 0; Byte < 4; ++Byte)
            Dst[B * 64 + 4 * W + Byte] =
                static_cast<uint8_t>(State[W] >> (8 * Byte));
      }
      return;
    }
    if (Sh.BlockLen == 8) {
      const uint64_t Base = load64be(S.Nonce);
      for (size_t B = 0; B < Take; ++B)
        store64be(Base + S.Counter + B, Dst + B * 8);
      return;
    }
    // 128-bit blocks: 12-byte nonce followed by a 32-bit big-endian
    // counter.
    for (size_t B = 0; B < Take; ++B) {
      uint8_t *Block = Dst + B * Sh.BlockLen;
      std::memcpy(Block, S.Nonce, 12);
      const uint32_t Ctr = static_cast<uint32_t>(S.Counter + B);
      for (unsigned I = 0; I < 4; ++I)
        Block[12 + I] = static_cast<uint8_t>(Ctr >> (8 * (3 - I)));
    }
  }

  /// Packs up to one blocksPerCall() batch from \p Q, runs the kernel,
  /// scatters results and retires finished requests into \p Done.
  /// Caller holds Sh.M.
  void dispatchOneBatchLocked(Shard &Sh, std::deque<Span> &Q,
                              size_t &QueuedBlocks, DoneList &Done,
                              bool ByDeadline) {
    const unsigned BlockLen = Sh.BlockLen;
    const unsigned Batch = Sh.Batch;
    const bool Forward = &Q == &Sh.Fwd;
    // One enabled-ness decision per batch; 0 means stage tracing off.
    const uint64_t DispatchNs =
        telemetryEnabled() ? telemetry_detail::nowNanos() : 0;

    size_t Used = 0;
    std::vector<Placement> Placed;
    while (Used < Batch && !Q.empty()) {
      Span &S = Q.front();
      const size_t Take = std::min<size_t>(S.Blocks, Batch - Used);
      uint8_t *Dst = &Sh.BatchIn[Used * BlockLen];
      if (S.Kind == SpanKind::Ctr)
        buildCounterBlocks(Sh, S, Take, Dst);
      else
        std::memcpy(Dst, S.In, Take * BlockLen);
      const size_t CtrBytes =
          Take == S.Blocks ? S.Bytes : Take * size_t{BlockLen};
      Placed.push_back(
          {S.Req, S.Kind, S.Out, Take, CtrBytes, Used, S.SessionTag});
      if (DispatchNs && S.Req->SubmitNs) {
        const uint64_t ArrivalNs = toNs(S.Arrival);
        const uint64_t Wait = DispatchNs > ArrivalNs ? DispatchNs - ArrivalNs
                                                     : 0;
        CoalesceWaitH.record(Wait);
        S.Req->CoalesceWaitMaxNs = std::max(S.Req->CoalesceWaitMaxNs, Wait);
      }
      Used += Take;
      if (Take == S.Blocks) {
        Q.pop_front();
      } else {
        // Partial fit: advance the span in place. Only the last block
        // of a CTR span can be ragged, and it was not taken.
        S.Blocks -= Take;
        S.Out += Take * BlockLen;
        if (S.Kind == SpanKind::Ctr) {
          S.Counter += Take;
          S.Bytes -= Take * BlockLen;
        } else {
          S.In += Take * BlockLen;
        }
      }
    }
    QueuedBlocks -= Used;
    if (Used == 0)
      return;

    uint64_t KernelDur = 0;
    {
      TelemetrySpan BatchSpan("service.batch");
      const uint64_t K0 = DispatchNs ? telemetry_detail::nowNanos() : 0;
      if (Forward)
        Sh.Cipher.encryptBlocks(Sh.BatchIn.data(), Sh.BatchOut.data(), Used);
      else
        Sh.Cipher.ecbDecrypt(Sh.BatchIn.data(), Sh.BatchOut.data(), Used);
      if (K0)
        KernelDur = telemetry_detail::nowNanos() - K0;
    }
    if (DispatchNs)
      KernelH.record(KernelDur);

    const void *FirstTag = Placed.front().SessionTag;
    bool MultiSession = false;
    for (const Placement &P : Placed) {
      const uint8_t *Src = &Sh.BatchOut[P.Slot * BlockLen];
      if (P.Kind == SpanKind::Ctr) {
        for (size_t I = 0; I < P.Bytes; ++I)
          P.Out[I] ^= Src[I];
      } else {
        std::memcpy(P.Out, Src, P.Blocks * BlockLen);
      }
      MultiSession = MultiSession || P.SessionTag != FirstTag;
      if (DispatchNs && P.Req->SubmitNs)
        P.Req->KernelNs += KernelDur;
      assert(P.Req->BlocksLeft >= P.Blocks);
      P.Req->BlocksLeft -= P.Blocks;
      if (P.Req->BlocksLeft == 0)
        Done.push_back(P.Req);
    }

    if (DispatchNs && Sh.QueueDepthG) {
      Sh.QueueDepthG->set(static_cast<int64_t>(Sh.FwdBlocks + Sh.InvBlocks));
      Sh.FillG->set(static_cast<int64_t>(Used * 100 / Batch));
    }

    CoalescedBatches.fetch_add(1, std::memory_order_relaxed);
    CoalescedBlocks.fetch_add(Used, std::memory_order_relaxed);
    CoalescedSlots.fetch_add(Batch, std::memory_order_relaxed);
    telemetryCount("service.coalesced_batches");
    // A monotonic percent sum: divide by service.coalesced_batches for
    // the mean slot occupancy.
    telemetryCount("service.fill_ratio", Used * 100 / Batch);
    if (MultiSession) {
      MultiSessionBatches.fetch_add(1, std::memory_order_relaxed);
      telemetryCount("service.multi_session_batches");
    }
    if (ByDeadline) {
      DeadlineFlushes.fetch_add(1, std::memory_order_relaxed);
      telemetryCount("service.flush_deadline");
    }
  }

  /// Dispatches every currently full batch. Caller holds Sh.M.
  void dispatchFullLocked(Shard &Sh, DoneList &Done) {
    while (Sh.FwdBlocks >= Sh.Batch)
      dispatchOneBatchLocked(Sh, Sh.Fwd, Sh.FwdBlocks, Done, false);
    while (Sh.InvBlocks >= Sh.Batch)
      dispatchOneBatchLocked(Sh, Sh.Inv, Sh.InvBlocks, Done, false);
  }

  /// Drains both queues completely (deadline flush / explicit flush /
  /// shutdown). Caller holds Sh.M.
  void drainLocked(Shard &Sh, DoneList &Done, bool ByDeadline) {
    while (!Sh.Fwd.empty())
      dispatchOneBatchLocked(Sh, Sh.Fwd, Sh.FwdBlocks, Done, ByDeadline);
    while (!Sh.Inv.empty())
      dispatchOneBatchLocked(Sh, Sh.Inv, Sh.InvBlocks, Done, ByDeadline);
  }

  /// Fulfils retired requests: user callback, then the future, then the
  /// session's in-flight count (closeSession waits on it). Must be
  /// called with no shard lock held — callbacks may re-enter. Records
  /// the callback stage and emits the slow-request trace for stamped
  /// requests.
  void finishRequests(DoneList &Done) {
    for (const std::shared_ptr<RequestState> &Req : Done) {
      const uint64_t CbStart =
          Req->SubmitNs ? telemetry_detail::nowNanos() : 0;
      if (Req->Cb)
        Req->Cb();
      Req->Done.set_value();
      if (CbStart) {
        const uint64_t EndNs = telemetry_detail::nowNanos();
        CallbackH.record(EndNs - CbStart);
        maybeTraceSlow(*Req, EndNs, EndNs - CbStart);
      }
      SessionState &Sess = *Req->Sess;
      std::lock_guard<std::mutex> Lock(Sess.M);
      assert(Sess.Outstanding > 0);
      if (--Sess.Outstanding == 0)
        Sess.CV.notify_all();
    }
    Done.clear();
  }

  /// Emits the structured stage breakdown for a request that crossed
  /// the slow threshold. Rare path: may take the telemetry mutex.
  void maybeTraceSlow(const RequestState &Req, uint64_t EndNs,
                      uint64_t CallbackNs) {
    const uint64_t ThresholdNs =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
                                  Cfg.SlowRequestThreshold)
                                  .count());
    if (ThresholdNs == 0)
      return;
    const uint64_t TotalNs = EndNs > Req.SubmitNs ? EndNs - Req.SubmitNs : 0;
    if (TotalNs < ThresholdNs)
      return;
    SlowRequests.fetch_add(1, std::memory_order_relaxed);
    telemetryCount("service.slow_requests");
    char Args[256];
    std::snprintf(Args, sizeof(Args),
                  "{\"total_us\": %.1f, \"queue_wait_us\": %.1f, "
                  "\"coalesce_wait_us\": %.1f, \"kernel_us\": %.1f, "
                  "\"callback_us\": %.1f}",
                  static_cast<double>(TotalNs) / 1e3,
                  static_cast<double>(Req.QueueWaitNs) / 1e3,
                  static_cast<double>(Req.CoalesceWaitMaxNs) / 1e3,
                  static_cast<double>(Req.KernelNs) / 1e3,
                  static_cast<double>(CallbackNs) / 1e3);
    Telemetry::instance().event("service.slow_request", Req.SubmitNs, TotalNs,
                                telemetry_detail::threadTag(), Args);
  }

  /// Registers (or tightens) the deadline for a shard with queued
  /// partial batches. Never called with TimerM already held.
  void scheduleFlush(const std::shared_ptr<Shard> &Sh,
                     std::chrono::steady_clock::time_point Deadline) {
    std::lock_guard<std::mutex> Lock(TimerM);
    auto It = Due.find(Sh);
    if (It == Due.end())
      Due.emplace(Sh, Deadline);
    else if (Deadline < It->second)
      It->second = Deadline;
    else
      return; // An earlier deadline already covers this shard.
    TimerCV.notify_all();
  }

  /// The deadline timer: waits for the earliest registered deadline,
  /// then drains every expired shard. Holds TimerM only while reading
  /// the registry — never across a shard lock.
  void timerLoop() {
    std::unique_lock<std::mutex> Lock(TimerM);
    while (!Stop) {
      if (Due.empty()) {
        TimerCV.wait(Lock);
        continue;
      }
      auto Earliest = std::min_element(
          Due.begin(), Due.end(),
          [](const auto &A, const auto &B) { return A.second < B.second; });
      const auto Now = std::chrono::steady_clock::now();
      if (Earliest->second > Now) {
        TimerCV.wait_until(Lock, Earliest->second);
        continue; // Deadlines may have changed; re-evaluate.
      }
      std::vector<std::shared_ptr<Shard>> Expired;
      for (auto It = Due.begin(); It != Due.end();) {
        if (It->second <= Now) {
          Expired.push_back(It->first);
          It = Due.erase(It);
        } else {
          ++It;
        }
      }
      Lock.unlock();
      DoneList Done;
      for (const std::shared_ptr<Shard> &Sh : Expired) {
        std::lock_guard<std::mutex> ShardLock(Sh->M);
        drainLocked(*Sh, Done, /*ByDeadline=*/true);
      }
      finishRequests(Done);
      Lock.lock();
    }
  }

  /// Resolves a session id (asserting it is open) and its current
  /// shard, and counts the request against the session.
  std::shared_ptr<RequestState> beginRequest(SessionId Sid,
                                             std::shared_ptr<Shard> &Sh,
                                             Completion Cb) {
    std::shared_ptr<SessionState> Sess;
    {
      std::lock_guard<std::mutex> Lock(M);
      auto It = Sessions.find(Sid);
      assert(It != Sessions.end() && "submit on closed/unknown session");
      Sess = It->second;
      Sh = Sess->Sh;
    }
    Requests.fetch_add(1, std::memory_order_relaxed);
    telemetryCount("service.requests");
    auto Req = std::make_shared<RequestState>();
    Req->Cb = std::move(Cb);
    Req->Sess = Sess;
    Req->SubmitNs = telemetryEnabled() ? telemetry_detail::nowNanos() : 0;
    {
      std::lock_guard<std::mutex> Lock(Sess->M);
      ++Sess->Outstanding;
    }
    return Req;
  }

  /// Shared body of submitEcbEncrypt/submitEcbDecrypt: direct head,
  /// coalesced tail, exactly like the CTR path but in whole blocks.
  std::future<void> submitEcb(SessionId Sid, const uint8_t *In, uint8_t *Out,
                              size_t NumBlocks, Completion Cb, bool Encrypt) {
    std::shared_ptr<Shard> Sh;
    std::shared_ptr<RequestState> Req = beginRequest(Sid, Sh, std::move(Cb));
    std::future<void> Fut = Req->Done.get_future();
    assert(!Sh->IsChacha && "ChaCha20 is a stream cipher — use submitCtrXor");

    DoneList Done;
    if (NumBlocks == 0) {
      Done.push_back(Req);
      finishRequests(Done);
      return Fut;
    }

    const unsigned BlockLen = Sh->BlockLen;
    const unsigned Batch = Sh->Batch;
    std::unique_lock<std::mutex> ShardLock(Sh->M);
    if (Req->SubmitNs) {
      Req->QueueWaitNs = telemetry_detail::nowNanos() - Req->SubmitNs;
      QueueWaitH.record(Req->QueueWaitNs);
    }
    Req->BlocksLeft = NumBlocks;

    size_t Offset = 0;
    if (!Cfg.CoalesceOnly && NumBlocks >= Batch) {
      const size_t HeadBlocks = (NumBlocks / Batch) * size_t{Batch};
      TelemetrySpan DirectSpan("service.direct");
      const uint64_t K0 = Req->SubmitNs ? telemetry_detail::nowNanos() : 0;
      if (Encrypt)
        Sh->Cipher.ecbEncrypt(In, Out, HeadBlocks);
      else
        Sh->Cipher.ecbDecrypt(In, Out, HeadBlocks);
      if (K0) {
        const uint64_t Dur = telemetry_detail::nowNanos() - K0;
        KernelH.record(Dur);
        Req->KernelNs += Dur;
      }
      DirectBatches.fetch_add(HeadBlocks / Batch, std::memory_order_relaxed);
      Req->BlocksLeft -= HeadBlocks;
      Offset = HeadBlocks;
    }

    if (Offset < NumBlocks) {
      Span S;
      S.Req = Req;
      S.Kind = Encrypt ? SpanKind::EcbEnc : SpanKind::EcbDec;
      S.In = In + Offset * BlockLen;
      S.Out = Out + Offset * BlockLen;
      S.Blocks = NumBlocks - Offset;
      S.Arrival = std::chrono::steady_clock::now();
      S.SessionTag = Req->Sess.get();
      if (Encrypt) {
        Sh->FwdBlocks += S.Blocks;
        Sh->Fwd.push_back(std::move(S));
      } else {
        Sh->InvBlocks += S.Blocks;
        Sh->Inv.push_back(std::move(S));
      }
    } else if (Req->BlocksLeft == 0) {
      Done.push_back(Req);
    }
    settleAfterEnqueue(Sh, Done, ShardLock);
    return Fut;
  }

  /// Post-enqueue bookkeeping shared by the submit paths: dispatch any
  /// batch the new span filled, then (outside the shard lock) arm the
  /// deadline for whatever partial remainder is queued.
  void settleAfterEnqueue(const std::shared_ptr<Shard> &Sh, DoneList &Done,
                          std::unique_lock<std::mutex> &ShardLock) {
    dispatchFullLocked(*Sh, Done);
    if (telemetryEnabled() && Sh->QueueDepthG)
      Sh->QueueDepthG->set(
          static_cast<int64_t>(Sh->FwdBlocks + Sh->InvBlocks));
    bool NeedTimer = false;
    std::chrono::steady_clock::time_point Oldest;
    if (!Sh->Fwd.empty()) {
      NeedTimer = true;
      Oldest = Sh->Fwd.front().Arrival;
    }
    if (!Sh->Inv.empty()) {
      const auto InvOldest = Sh->Inv.front().Arrival;
      Oldest = NeedTimer ? std::min(Oldest, InvOldest) : InvOldest;
      NeedTimer = true;
    }
    ShardLock.unlock();
    if (NeedTimer)
      scheduleFlush(Sh, Oldest + Cfg.FlushDeadline);
    finishRequests(Done);
  }
};

CipherService::CipherService(ServiceConfig Config)
    : I(std::make_unique<Impl>(Config)) {}

CipherService::~CipherService() {
  flush();
  {
    std::lock_guard<std::mutex> Lock(I->TimerM);
    I->Stop = true;
    I->TimerCV.notify_all();
  }
  I->Timer.join();
}

SessionResult CipherService::openSession(const CipherConfig &Config,
                                         const uint8_t *Key, size_t KeyLen) {
  std::vector<Diagnostic> Diags;
  std::shared_ptr<Shard> Sh = I->shardFor(Config, Key, KeyLen, Diags);
  if (!Sh)
    return SessionResult(std::move(Diags));
  auto Sess = std::make_shared<SessionState>();
  Sess->Sh = std::move(Sh);
  std::lock_guard<std::mutex> Lock(I->M);
  const SessionId Sid = I->NextId++;
  if (Sess->Sh->SessionsG)
    Sess->Sh->SessionsG->add(1);
  I->Sessions.emplace(Sid, std::move(Sess));
  I->OpenSessionsG.set(static_cast<int64_t>(I->Sessions.size()));
  telemetryCount("service.sessions_opened");
  return SessionResult(Sid);
}

void CipherService::rekeySession(SessionId Sid, const uint8_t *Key,
                                 size_t KeyLen) {
  std::shared_ptr<SessionState> Sess;
  CipherConfig Config;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    auto It = I->Sessions.find(Sid);
    assert(It != I->Sessions.end() && "rekey on closed/unknown session");
    Sess = It->second;
    Config = Sess->Sh->Cipher.config(); // Already arch-pinned.
  }
  std::vector<Diagnostic> Diags;
  std::shared_ptr<Shard> Fresh = I->shardFor(Config, Key, KeyLen, Diags);
  // The config compiled when the session opened; only a bad key length
  // can fail here, which is caller error.
  assert(Fresh && "rekey with invalid key length");
  if (!Fresh)
    return;
  telemetryCount("service.rekeys");
  std::lock_guard<std::mutex> Lock(I->M);
  if (Sess->Sh->SessionsG)
    Sess->Sh->SessionsG->add(-1);
  if (Fresh->SessionsG)
    Fresh->SessionsG->add(1);
  Sess->Sh = std::move(Fresh);
}

void CipherService::closeSession(SessionId Sid) {
  std::shared_ptr<SessionState> Sess;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    auto It = I->Sessions.find(Sid);
    assert(It != I->Sessions.end() && "double close / unknown session");
    Sess = It->second;
    I->Sessions.erase(It);
    if (Sess->Sh->SessionsG)
      Sess->Sh->SessionsG->add(-1);
    I->OpenSessionsG.set(static_cast<int64_t>(I->Sessions.size()));
  }
  // Pending spans (including pre-rekey ones in older shards) must
  // retire before the handle dies: push everything out now rather than
  // waiting for deadlines.
  flush();
  std::unique_lock<std::mutex> Lock(Sess->M);
  Sess->CV.wait(Lock, [&] { return Sess->Outstanding == 0; });
}

std::future<void> CipherService::submitCtrXor(SessionId Sid, uint8_t *Data,
                                              size_t Length,
                                              const uint8_t *Nonce,
                                              uint64_t Counter,
                                              Completion OnDone) {
  std::shared_ptr<Shard> Sh;
  std::shared_ptr<RequestState> Req =
      I->beginRequest(Sid, Sh, std::move(OnDone));
  std::future<void> Fut = Req->Done.get_future();

  DoneList Done;
  if (Length == 0) {
    Done.push_back(Req);
    I->finishRequests(Done);
    return Fut;
  }

  const unsigned BlockLen = Sh->BlockLen;
  const size_t BatchBytes = size_t{Sh->Batch} * BlockLen;
  std::unique_lock<std::mutex> ShardLock(Sh->M);
  if (Req->SubmitNs) {
    Req->QueueWaitNs = telemetry_detail::nowNanos() - Req->SubmitNs;
    I->QueueWaitH.record(Req->QueueWaitNs);
  }
  Req->BlocksLeft = (Length + BlockLen - 1) / BlockLen;

  size_t Offset = 0;
  uint64_t Ctr = Counter;
  if (!I->Cfg.CoalesceOnly && Length >= BatchBytes) {
    // Whole batches of a single request skip the coalescer: dispatch
    // inline through the full-featured single-stream path (CTR fast
    // path, SpecializeCtr, pool threading).
    const size_t HeadBytes = (Length / BatchBytes) * BatchBytes;
    TelemetrySpan DirectSpan("service.direct");
    const uint64_t K0 = Req->SubmitNs ? telemetry_detail::nowNanos() : 0;
    Sh->Cipher.ctrXor(Data, HeadBytes, Nonce, Ctr);
    if (K0) {
      const uint64_t Dur = telemetry_detail::nowNanos() - K0;
      I->KernelH.record(Dur);
      Req->KernelNs += Dur;
    }
    const size_t HeadBlocks = HeadBytes / BlockLen;
    I->DirectBatches.fetch_add(HeadBytes / BatchBytes,
                               std::memory_order_relaxed);
    Req->BlocksLeft -= HeadBlocks;
    Ctr += HeadBlocks;
    Offset = HeadBytes;
  }

  if (Offset < Length) {
    Span S;
    S.Req = Req;
    S.Kind = SpanKind::Ctr;
    S.Out = Data + Offset;
    S.Counter = Ctr;
    std::memcpy(S.Nonce, Nonce, Sh->NonceLen);
    S.Bytes = Length - Offset;
    S.Blocks = (S.Bytes + BlockLen - 1) / BlockLen;
    S.Arrival = std::chrono::steady_clock::now();
    S.SessionTag = Req->Sess.get();
    Sh->FwdBlocks += S.Blocks;
    Sh->Fwd.push_back(std::move(S));
  } else if (Req->BlocksLeft == 0) {
    Done.push_back(Req);
  }
  I->settleAfterEnqueue(Sh, Done, ShardLock);
  return Fut;
}

std::future<void> CipherService::submitEcbEncrypt(SessionId Sid,
                                                  const uint8_t *In,
                                                  uint8_t *Out,
                                                  size_t NumBlocks,
                                                  Completion OnDone) {
  return I->submitEcb(Sid, In, Out, NumBlocks, std::move(OnDone),
                      /*Encrypt=*/true);
}

std::future<void> CipherService::submitEcbDecrypt(SessionId Sid,
                                                  const uint8_t *In,
                                                  uint8_t *Out,
                                                  size_t NumBlocks,
                                                  Completion OnDone) {
  return I->submitEcb(Sid, In, Out, NumBlocks, std::move(OnDone),
                      /*Encrypt=*/false);
}

void CipherService::flush() {
  std::vector<std::shared_ptr<Shard>> All;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    All.reserve(I->Shards.size());
    for (const auto &Entry : I->Shards)
      All.push_back(Entry.second);
  }
  DoneList Done;
  for (const std::shared_ptr<Shard> &Sh : All) {
    std::lock_guard<std::mutex> ShardLock(Sh->M);
    I->drainLocked(*Sh, Done, /*ByDeadline=*/false);
  }
  I->finishRequests(Done);
}

ServiceStats CipherService::stats() const {
  ServiceStats S;
  S.Requests = I->Requests.load(std::memory_order_relaxed);
  S.DirectBatches = I->DirectBatches.load(std::memory_order_relaxed);
  S.CoalescedBatches = I->CoalescedBatches.load(std::memory_order_relaxed);
  S.MultiSessionBatches =
      I->MultiSessionBatches.load(std::memory_order_relaxed);
  S.CoalescedBlocks = I->CoalescedBlocks.load(std::memory_order_relaxed);
  S.CoalescedSlots = I->CoalescedSlots.load(std::memory_order_relaxed);
  S.DeadlineFlushes = I->DeadlineFlushes.load(std::memory_order_relaxed);
  S.SlowRequests = I->SlowRequests.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(I->M);
  S.Shards = I->Shards.size();
  S.OpenSessions = I->Sessions.size();
  return S;
}
