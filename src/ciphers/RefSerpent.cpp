//===- RefSerpent.cpp - Reference Serpent implementation ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefSerpent.h"

#include "support/BitUtils.h"

using namespace usuba;

namespace {

constexpr uint8_t Sboxes[8][16] = {
    {3, 8, 15, 1, 10, 6, 5, 11, 14, 13, 4, 2, 7, 0, 9, 12},
    {15, 12, 2, 7, 9, 0, 5, 10, 1, 11, 14, 8, 6, 13, 3, 4},
    {8, 6, 7, 9, 3, 12, 10, 15, 13, 1, 14, 4, 0, 11, 5, 2},
    {0, 15, 11, 8, 12, 9, 6, 3, 13, 1, 2, 4, 10, 7, 5, 14},
    {1, 15, 8, 3, 12, 0, 11, 6, 2, 5, 4, 10, 9, 14, 7, 13},
    {15, 5, 2, 11, 4, 10, 9, 12, 0, 3, 14, 8, 13, 6, 7, 1},
    {7, 2, 12, 5, 8, 4, 6, 11, 14, 9, 1, 15, 13, 3, 10, 0},
    {1, 13, 15, 0, 14, 8, 2, 11, 7, 4, 12, 10, 9, 3, 5, 6}};

uint32_t rotl(uint32_t V, unsigned N) {
  return static_cast<uint32_t>(rotateLeft(V, N, 32));
}
uint32_t rotr(uint32_t V, unsigned N) {
  return static_cast<uint32_t>(rotateRight(V, N, 32));
}

/// Columnwise S-box application: nibble bit i is word i.
void applySbox(uint32_t X[4], const uint8_t *Box) {
  uint32_t Out[4] = {0, 0, 0, 0};
  for (unsigned Bit = 0; Bit < 32; ++Bit) {
    unsigned Nibble = 0;
    for (unsigned Word = 0; Word < 4; ++Word)
      Nibble |= ((X[Word] >> Bit) & 1u) << Word;
    unsigned Subst = Box[Nibble];
    for (unsigned Word = 0; Word < 4; ++Word)
      Out[Word] |= ((Subst >> Word) & 1u) << Bit;
  }
  for (unsigned Word = 0; Word < 4; ++Word)
    X[Word] = Out[Word];
}

void applyInvSbox(uint32_t X[4], const uint8_t *Box) {
  uint8_t Inverse[16];
  for (unsigned I = 0; I < 16; ++I)
    Inverse[Box[I]] = static_cast<uint8_t>(I);
  applySbox(X, Inverse);
}

void linearTransform(uint32_t X[4]) {
  X[0] = rotl(X[0], 13);
  X[2] = rotl(X[2], 3);
  X[1] = X[1] ^ X[0] ^ X[2];
  X[3] = X[3] ^ X[2] ^ (X[0] << 3);
  X[1] = rotl(X[1], 1);
  X[3] = rotl(X[3], 7);
  X[0] = X[0] ^ X[1] ^ X[3];
  X[2] = X[2] ^ X[3] ^ (X[1] << 7);
  X[0] = rotl(X[0], 5);
  X[2] = rotl(X[2], 22);
}

void invLinearTransform(uint32_t X[4]) {
  X[2] = rotr(X[2], 22);
  X[0] = rotr(X[0], 5);
  X[2] = X[2] ^ X[3] ^ (X[1] << 7);
  X[0] = X[0] ^ X[1] ^ X[3];
  X[3] = rotr(X[3], 7);
  X[1] = rotr(X[1], 1);
  X[3] = X[3] ^ X[2] ^ (X[0] << 3);
  X[1] = X[1] ^ X[0] ^ X[2];
  X[2] = rotr(X[2], 3);
  X[0] = rotr(X[0], 13);
}

} // namespace

void usuba::serpentKeySchedule(const uint8_t Key[16],
                               uint32_t Keys[SerpentRoundKeys][4]) {
  constexpr uint32_t Phi = 0x9e3779b9;
  uint32_t W[140];
  for (unsigned I = 0; I < 4; ++I)
    W[I] = static_cast<uint32_t>(Key[4 * I]) |
           static_cast<uint32_t>(Key[4 * I + 1]) << 8 |
           static_cast<uint32_t>(Key[4 * I + 2]) << 16 |
           static_cast<uint32_t>(Key[4 * I + 3]) << 24;
  // Short keys are padded with a single 1 bit then zeros.
  W[4] = 1;
  W[5] = W[6] = W[7] = 0;
  for (unsigned I = 8; I < 140; ++I)
    W[I] = rotl(W[I - 8] ^ W[I - 5] ^ W[I - 3] ^ W[I - 1] ^ Phi ^
                    static_cast<uint32_t>(I - 8),
                11);
  for (unsigned Group = 0; Group < SerpentRoundKeys; ++Group) {
    uint32_t X[4] = {W[8 + 4 * Group], W[9 + 4 * Group], W[10 + 4 * Group],
                     W[11 + 4 * Group]};
    applySbox(X, Sboxes[(3 + 8 - Group % 8) % 8]);
    for (unsigned Word = 0; Word < 4; ++Word)
      Keys[Group][Word] = X[Word];
  }
}

void usuba::serpentEncrypt(uint32_t State[4],
                           const uint32_t Keys[SerpentRoundKeys][4]) {
  for (unsigned Round = 0; Round < SerpentRounds; ++Round) {
    for (unsigned Word = 0; Word < 4; ++Word)
      State[Word] ^= Keys[Round][Word];
    applySbox(State, Sboxes[Round % 8]);
    if (Round != SerpentRounds - 1)
      linearTransform(State);
  }
  for (unsigned Word = 0; Word < 4; ++Word)
    State[Word] ^= Keys[SerpentRounds][Word];
}

void usuba::serpentDecrypt(uint32_t State[4],
                           const uint32_t Keys[SerpentRoundKeys][4]) {
  for (unsigned Word = 0; Word < 4; ++Word)
    State[Word] ^= Keys[SerpentRounds][Word];
  for (unsigned Round = SerpentRounds; Round-- > 0;) {
    if (Round != SerpentRounds - 1)
      invLinearTransform(State);
    applyInvSbox(State, Sboxes[Round % 8]);
    for (unsigned Word = 0; Word < 4; ++Word)
      State[Word] ^= Keys[Round][Word];
  }
}
