//===- FuzzHarness.h - Differential fuzzing campaign driver -----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-trust campaign (bench/fuzz_differential.cpp, usubac
/// --fuzz): generate random typed programs (frontend/RandomProgram.h),
/// compile each one at -O0 on GP64 as the reference and fully optimized
/// on sse/avx2/avx512 (plus a JIT-backed native leg every JitEvery-th
/// program), run all legs on the same inputs through the full
/// transposition runtime, and require byte-identical outputs. A
/// disagreement is delta-debugged down to a minimal reproducer and
/// written into the corpus directory with a replayable provenance
/// header; checked-in reproducers are replayed as regression tests.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_FUZZHARNESS_H
#define USUBA_CIPHERS_FUZZHARNESS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace usuba {

struct FuzzOptions {
  /// Campaign seed: program i fuzzes with seed derived from (Seed, i),
  /// and every failure report prints the program's own seed so one
  /// program is replayable without rerunning the campaign.
  uint64_t Seed = 1;
  /// Programs to generate.
  unsigned Count = 100;
  /// Every JitEvery-th program also runs a JIT-compiled native leg
  /// (host-compiler invocations dominate the campaign's wall clock, so
  /// the native rung is sampled, not exhaustive). 0 disables the JIT leg.
  unsigned JitEvery = 8;
  /// Compile the optimized legs under translation validation too — the
  /// validator then acts as a second oracle running inside the compiler.
  bool Validate = false;
  /// Where minimized reproducers are written. Empty = don't write.
  std::string CorpusDir;
  /// Delta-debug failures down to minimal reproducers before writing.
  bool Minimize = true;
  /// Progress/failure stream (nullptr = silent).
  std::ostream *Log = nullptr;
};

struct FuzzResult {
  unsigned Programs = 0;     ///< programs generated and checked
  unsigned Failures = 0;     ///< programs with a differential (or a
                             ///< compile failure — the generator's
                             ///< programs are well-typed by construction)
  unsigned JitLegs = 0;      ///< programs that exercised the native rung
  std::vector<std::string> ReproPaths; ///< minimized reproducers written

  bool clean() const { return Failures == 0; }
};

/// Runs the campaign. Deterministic for a fixed FuzzOptions (modulo the
/// host compiler's availability for the JIT legs).
FuzzResult runFuzzCampaign(const FuzzOptions &Opts);

/// Replays one reproducer: compiles \p Source under the configuration in
/// its `// usuba-fuzz:` header and re-runs the interpreter differential
/// (optimized legs vs -O0). Returns "" when all legs agree, else the
/// failure description. A missing/malformed header is a failure.
std::string replayFuzzSource(const std::string &Source);

/// replayFuzzSource over a file's contents ("" on pass).
std::string replayFuzzFile(const std::string &Path);

} // namespace usuba

#endif // USUBA_CIPHERS_FUZZHARNESS_H
