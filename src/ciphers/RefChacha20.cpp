//===- RefChacha20.cpp - Reference ChaCha20 implementation ----------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefChacha20.h"

#include "support/BitUtils.h"

using namespace usuba;

namespace {

uint32_t rotl32(uint32_t Value, unsigned Amount) {
  return static_cast<uint32_t>(rotateLeft(Value, Amount, 32));
}

void quarterRound(uint32_t &A, uint32_t &B, uint32_t &C, uint32_t &D) {
  A += B;
  D = rotl32(D ^ A, 16);
  C += D;
  B = rotl32(B ^ C, 12);
  A += B;
  D = rotl32(D ^ A, 8);
  C += D;
  B = rotl32(B ^ C, 7);
}

uint32_t load32le(const uint8_t *Bytes) {
  return static_cast<uint32_t>(Bytes[0]) |
         static_cast<uint32_t>(Bytes[1]) << 8 |
         static_cast<uint32_t>(Bytes[2]) << 16 |
         static_cast<uint32_t>(Bytes[3]) << 24;
}

} // namespace

void usuba::chacha20InitState(uint32_t State[16], const uint8_t Key[32],
                              uint32_t Counter, const uint8_t Nonce[12]) {
  State[0] = 0x61707865; // "expa"
  State[1] = 0x3320646e; // "nd 3"
  State[2] = 0x79622d32; // "2-by"
  State[3] = 0x6b206574; // "te k"
  for (unsigned I = 0; I < 8; ++I)
    State[4 + I] = load32le(Key + 4 * I);
  State[12] = Counter;
  for (unsigned I = 0; I < 3; ++I)
    State[13 + I] = load32le(Nonce + 4 * I);
}

void usuba::chacha20Block(const uint32_t In[16], uint32_t Out[16]) {
  uint32_t X[16];
  for (unsigned I = 0; I < 16; ++I)
    X[I] = In[I];
  for (unsigned Round = 0; Round < 10; ++Round) {
    quarterRound(X[0], X[4], X[8], X[12]);
    quarterRound(X[1], X[5], X[9], X[13]);
    quarterRound(X[2], X[6], X[10], X[14]);
    quarterRound(X[3], X[7], X[11], X[15]);
    quarterRound(X[0], X[5], X[10], X[15]);
    quarterRound(X[1], X[6], X[11], X[12]);
    quarterRound(X[2], X[7], X[8], X[13]);
    quarterRound(X[3], X[4], X[9], X[14]);
  }
  for (unsigned I = 0; I < 16; ++I)
    Out[I] = X[I] + In[I];
}

void usuba::chacha20Xor(uint8_t *Data, size_t Length, const uint8_t Key[32],
                        uint32_t Counter, const uint8_t Nonce[12]) {
  uint32_t State[16], Block[16];
  chacha20InitState(State, Key, Counter, Nonce);
  size_t Offset = 0;
  while (Offset < Length) {
    chacha20Block(State, Block);
    ++State[12];
    size_t Chunk = Length - Offset < 64 ? Length - Offset : 64;
    for (size_t I = 0; I < Chunk; ++I)
      Data[Offset + I] ^=
          static_cast<uint8_t>(Block[I / 4] >> (8 * (I % 4)));
    Offset += Chunk;
  }
}
