//===- RefRectangle.cpp - Reference Rectangle implementation --------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefRectangle.h"

#include "support/BitUtils.h"

using namespace usuba;

namespace {

constexpr uint8_t Sbox[16] = {6,  5, 12, 10, 1, 14, 7, 9,
                              11, 0, 3,  13, 8, 15, 4, 2};

constexpr uint8_t InvSbox[16] = {9, 4, 15, 10, 14, 1, 0,  6,
                                 12, 7, 3,  8,  2,  11, 5, 13};

uint16_t rotl16(uint16_t Value, unsigned Amount) {
  return static_cast<uint16_t>(rotateLeft(Value, Amount, 16));
}

/// Applies \p Table to every column nibble: bit i of the nibble is row i.
void subColumn(uint16_t State[4], const uint8_t *Table) {
  uint16_t Out[4] = {0, 0, 0, 0};
  for (unsigned Col = 0; Col < 16; ++Col) {
    unsigned Nibble = 0;
    for (unsigned Row = 0; Row < 4; ++Row)
      Nibble |= ((State[Row] >> Col) & 1u) << Row;
    unsigned Subst = Table[Nibble];
    for (unsigned Row = 0; Row < 4; ++Row)
      Out[Row] |= static_cast<uint16_t>(((Subst >> Row) & 1u) << Col);
  }
  for (unsigned Row = 0; Row < 4; ++Row)
    State[Row] = Out[Row];
}

} // namespace

void usuba::rectangleEncrypt(uint16_t State[4],
                             const uint16_t Keys[RectangleRoundKeys][4]) {
  for (unsigned Round = 0; Round < RectangleRounds; ++Round) {
    for (unsigned Row = 0; Row < 4; ++Row)
      State[Row] ^= Keys[Round][Row];
    subColumn(State, Sbox);
    State[1] = rotl16(State[1], 1);
    State[2] = rotl16(State[2], 12);
    State[3] = rotl16(State[3], 13);
  }
  for (unsigned Row = 0; Row < 4; ++Row)
    State[Row] ^= Keys[RectangleRounds][Row];
}

void usuba::rectangleDecrypt(uint16_t State[4],
                             const uint16_t Keys[RectangleRoundKeys][4]) {
  for (unsigned Row = 0; Row < 4; ++Row)
    State[Row] ^= Keys[RectangleRounds][Row];
  for (unsigned Round = RectangleRounds; Round-- > 0;) {
    State[1] = rotl16(State[1], 15);
    State[2] = rotl16(State[2], 4);
    State[3] = rotl16(State[3], 3);
    subColumn(State, InvSbox);
    for (unsigned Row = 0; Row < 4; ++Row)
      State[Row] ^= Keys[Round][Row];
  }
}

void usuba::rectangleKeySchedule80(const uint16_t Key[5],
                                   uint16_t Keys[RectangleRoundKeys][4]) {
  // The 80-bit key schedule of the RECTANGLE specification, per our
  // reading of the CHES 2014 paper: the key state is 5 rows of 16 bits;
  // each round key is rows 0-3; the update applies the S-box to the four
  // rightmost columns of rows 0-3, a generalized Feistel mixing, and a
  // 5-bit LFSR round constant. Validated by internal consistency
  // (encrypt-decrypt round trips), not official vectors — see DESIGN.md.
  uint16_t K[5];
  for (unsigned Row = 0; Row < 5; ++Row)
    K[Row] = Key[Row];

  uint8_t Rc = 1; // 5-bit LFSR state
  for (unsigned Round = 0; Round <= RectangleRounds; ++Round) {
    for (unsigned Row = 0; Row < 4; ++Row)
      Keys[Round][Row] = K[Row];
    if (Round == RectangleRounds)
      break;

    // S-box on columns 0-3 of rows 0-3.
    for (unsigned Col = 0; Col < 4; ++Col) {
      unsigned Nibble = 0;
      for (unsigned Row = 0; Row < 4; ++Row)
        Nibble |= ((K[Row] >> Col) & 1u) << Row;
      unsigned Subst = Sbox[Nibble];
      for (unsigned Row = 0; Row < 4; ++Row)
        K[Row] = static_cast<uint16_t>(
            (K[Row] & ~(1u << Col)) | (((Subst >> Row) & 1u) << Col));
    }
    // Generalized Feistel.
    uint16_t Row0 = static_cast<uint16_t>(rotl16(K[0], 8) ^ K[1]);
    uint16_t Row1 = K[2];
    uint16_t Row2 = K[3];
    uint16_t Row3 = static_cast<uint16_t>(rotl16(K[3], 12) ^ K[4]);
    uint16_t Row4 = K[0];
    K[0] = Row0;
    K[1] = Row1;
    K[2] = Row2;
    K[3] = Row3;
    K[4] = Row4;
    // Round constant into the low bits of row 0.
    K[0] ^= Rc;
    Rc = static_cast<uint8_t>(((Rc << 1) | (((Rc >> 4) ^ (Rc >> 2)) & 1)) &
                              0x1F);
  }
}
