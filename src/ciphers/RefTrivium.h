//===- RefTrivium.h - Reference Trivium implementation ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable Trivium (De Cannière, ISC 2006) — the paper's *future work*:
/// "Trivium is a stateful stream cipher in which the bits of the state
/// are only used 64 rounds after their definition. It can therefore be
/// efficiently bitsliced on 64-bit registers." The bundled Usuba program
/// triviumSource() computes 64 rounds as one combinational kernel; this
/// reference provides the bit-serial semantics it is validated against.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFTRIVIUM_H
#define USUBA_CIPHERS_REFTRIVIUM_H

#include <cstdint>

namespace usuba {

/// The 288-bit Trivium state, bit-addressed: S[0] is the spec's s1.
struct TriviumState {
  uint8_t S[288];
};

/// Loads key/IV (80 bits each, big-endian bytes, bit 0 of the spec = the
/// first byte's MSB) and runs the 4x288 warm-up rounds.
void triviumInit(TriviumState &State, const uint8_t Key[10],
                 const uint8_t Iv[10]);

/// One keystream bit (advances the state).
unsigned triviumStep(TriviumState &State);

/// 64 keystream bits, most significant first (64 sequential steps).
uint64_t triviumBlock64(TriviumState &State);

} // namespace usuba

#endif // USUBA_CIPHERS_REFTRIVIUM_H
