//===- RefDes.cpp - Reference DES implementation --------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefDes.h"

#include "ciphers/DesTables.h"

using namespace usuba;

namespace {

/// DES bit \p K (1-based, bit 1 leftmost) of a \p Width-bit value.
uint64_t desBit(uint64_t Value, unsigned K, unsigned Width) {
  return (Value >> (Width - K)) & 1;
}

/// Applies a 1-based permutation table, producing \p OutBits bits.
uint64_t permute(uint64_t Value, unsigned InBits, const uint8_t *Table,
                 unsigned OutBits) {
  uint64_t Out = 0;
  for (unsigned I = 0; I < OutBits; ++I)
    Out = (Out << 1) | desBit(Value, Table[I], InBits);
  return Out;
}

uint32_t feistel(uint32_t Right, uint64_t Subkey) {
  uint64_t Expanded = permute(Right, 32, des::E, 48) ^ Subkey;
  uint32_t SboxOut = 0;
  for (unsigned Box = 0; Box < 8; ++Box) {
    unsigned Bits =
        static_cast<unsigned>((Expanded >> (42 - 6 * Box)) & 0x3F);
    unsigned B1 = (Bits >> 5) & 1, B6 = Bits & 1;
    unsigned Row = (B1 << 1) | B6;
    unsigned Col = (Bits >> 1) & 0xF;
    SboxOut = (SboxOut << 4) | des::Sboxes[Box][Row][Col];
  }
  return static_cast<uint32_t>(permute(SboxOut, 32, des::P, 32));
}

uint64_t desRounds(uint64_t Block, const uint64_t Subkeys[16],
                   bool Decrypt) {
  uint64_t Permuted = permute(Block, 64, des::IP, 64);
  uint32_t Left = static_cast<uint32_t>(Permuted >> 32);
  uint32_t Right = static_cast<uint32_t>(Permuted);
  for (unsigned Round = 0; Round < 16; ++Round) {
    uint64_t Subkey = Subkeys[Decrypt ? 15 - Round : Round];
    uint32_t Next = Left ^ feistel(Right, Subkey);
    Left = Right;
    Right = Next;
  }
  // Pre-output: R16 then L16 (the halves are swapped).
  uint64_t Pre = (static_cast<uint64_t>(Right) << 32) | Left;
  return permute(Pre, 64, des::FP, 64);
}

} // namespace

void usuba::desKeySchedule(uint64_t Key, uint64_t Subkeys[16]) {
  uint64_t CD = permute(Key, 64, des::PC1, 56);
  uint32_t C = static_cast<uint32_t>(CD >> 28) & 0x0FFFFFFF;
  uint32_t D = static_cast<uint32_t>(CD) & 0x0FFFFFFF;
  for (unsigned Round = 0; Round < 16; ++Round) {
    unsigned Shift = des::Shifts[Round];
    C = ((C << Shift) | (C >> (28 - Shift))) & 0x0FFFFFFF;
    D = ((D << Shift) | (D >> (28 - Shift))) & 0x0FFFFFFF;
    uint64_t Combined = (static_cast<uint64_t>(C) << 28) | D;
    Subkeys[Round] = permute(Combined, 56, des::PC2, 48);
  }
}

uint64_t usuba::desEncryptBlock(uint64_t Block, const uint64_t Subkeys[16]) {
  return desRounds(Block, Subkeys, /*Decrypt=*/false);
}

uint64_t usuba::desDecryptBlock(uint64_t Block, const uint64_t Subkeys[16]) {
  return desRounds(Block, Subkeys, /*Decrypt=*/true);
}

void usuba::desBlockToAtoms(uint64_t Block, uint64_t Atoms[64]) {
  for (unsigned I = 0; I < 64; ++I)
    Atoms[I] = desBit(Block, I + 1, 64);
}

uint64_t usuba::desAtomsToBlock(const uint64_t Atoms[64]) {
  uint64_t Block = 0;
  for (unsigned I = 0; I < 64; ++I)
    Block = (Block << 1) | (Atoms[I] & 1);
  return Block;
}

void usuba::desSubkeysToAtoms(const uint64_t Subkeys[16],
                              uint64_t Atoms[768]) {
  for (unsigned Round = 0; Round < 16; ++Round)
    for (unsigned J = 0; J < 48; ++J)
      Atoms[Round * 48 + J] = desBit(Subkeys[Round], J + 1, 48);
}
