//===- UsubaSourceChacha20.cpp - ChaCha20 in Usuba -------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

using namespace usuba;

const std::string &usuba::chacha20Source() {
  // ChaCha20 (Bernstein, 2008; RFC 8439 parameters): the 512-bit state is
  // 16 32-bit words; a block is 10 double-rounds followed by a word-wise
  // addition of the input state. Relies on 32-bit addition, so it only
  // supports vertical slicing (the paper's Table 2/3 benchmark it
  // vsliced) — requesting -H or -B yields a type error, as expected.
  static const std::string Source = R"(
node QR (a:u32, b:u32, c:u32, d:u32)
  returns (ao:u32, bo:u32, co:u32, do_:u32)
vars a1:u32, b1:u32, c1:u32, d1:u32
let
  a1 = a + b;
  d1 = (d ^ a1) <<< 16;
  c1 = c + d1;
  b1 = (b ^ c1) <<< 12;
  ao = a1 + b1;
  do_ = (d1 ^ ao) <<< 8;
  co = c1 + do_;
  bo = (b1 ^ co) <<< 7
tel

node DoubleRound (s:u32x16) returns (out:u32x16)
vars t:u32x16
let
  (t[0], t[4], t[8],  t[12]) = QR(s[0], s[4], s[8],  s[12]);
  (t[1], t[5], t[9],  t[13]) = QR(s[1], s[5], s[9],  s[13]);
  (t[2], t[6], t[10], t[14]) = QR(s[2], s[6], s[10], s[14]);
  (t[3], t[7], t[11], t[15]) = QR(s[3], s[7], s[11], s[15]);
  (out[0], out[5], out[10], out[15]) = QR(t[0], t[5], t[10], t[15]);
  (out[1], out[6], out[11], out[12]) = QR(t[1], t[6], t[11], t[12]);
  (out[2], out[7], out[8],  out[13]) = QR(t[2], t[7], t[8],  t[13]);
  (out[3], out[4], out[9],  out[14]) = QR(t[3], t[4], t[9],  t[14])
tel

node Chacha20 (input:u32x16) returns (out:u32x16)
vars round:u32x16[11]
let
  round[0] = input;
  forall i in [0,9] {
    round[i+1] = DoubleRound(round[i])
  }
  forall i in [0,15] {
    out[i] = round[10][i] + input[i]
  }
tel
)";
  return Source;
}
