//===- RefPresent.cpp - Reference PRESENT implementation ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefPresent.h"

using namespace usuba;

const uint8_t usuba::PresentSbox[16] = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0,
                                        0xA, 0xD, 0x3, 0xE, 0xF, 0x8,
                                        0x4, 0x7, 0x1, 0x2};

namespace {

constexpr uint8_t InvSbox[16] = {0x5, 0xE, 0xF, 0x8, 0xC, 0x1, 0x2, 0xD,
                                 0xB, 0x4, 0x6, 0x3, 0x0, 0x7, 0x9, 0xA};

/// The bit permutation: bit i (LSB = 0) moves to position 16i mod 63,
/// with bit 63 fixed.
unsigned permuteIndex(unsigned I) { return I == 63 ? 63 : (16 * I) % 63; }

uint64_t sboxLayer(uint64_t State, const uint8_t *Box) {
  uint64_t Out = 0;
  for (unsigned Nibble = 0; Nibble < 16; ++Nibble)
    Out |= static_cast<uint64_t>(Box[(State >> (4 * Nibble)) & 0xF])
           << (4 * Nibble);
  return Out;
}

uint64_t pLayer(uint64_t State, bool Inverse) {
  uint64_t Out = 0;
  for (unsigned I = 0; I < 64; ++I) {
    unsigned To = Inverse ? I : permuteIndex(I);
    unsigned From = Inverse ? permuteIndex(I) : I;
    Out |= ((State >> From) & 1) << To;
  }
  return Out;
}

} // namespace

void usuba::presentKeySchedule80(const uint8_t Key[10],
                                 uint64_t RoundKeys[32]) {
  // The 80-bit key register, bit 79 leftmost: high 64 bits + low 16 bits.
  uint64_t High = 0;
  uint16_t Low = 0;
  for (unsigned I = 0; I < 8; ++I)
    High = (High << 8) | Key[I];
  Low = static_cast<uint16_t>((Key[8] << 8) | Key[9]);

  for (unsigned Round = 1; Round <= 32; ++Round) {
    RoundKeys[Round - 1] = High; // leftmost 64 bits
    // Rotate the 80-bit register left by 61.
    uint64_t NewHigh = (High << 61) | (static_cast<uint64_t>(Low) << 45) |
                       (High >> 19);
    uint16_t NewLow = static_cast<uint16_t>(High >> 3);
    High = NewHigh;
    Low = NewLow;
    // S-box on the top nibble.
    High = (High & 0x0FFFFFFFFFFFFFFFull) |
           (static_cast<uint64_t>(PresentSbox[High >> 60]) << 60);
    // XOR the round counter into bits 19..15 of the register.
    uint64_t Counter = Round;
    High ^= Counter >> 1;         // bits 19..16 live in High bits 3..0
    Low = static_cast<uint16_t>(Low ^ (Counter << 15)); // bit 15
  }
}

uint64_t usuba::presentEncryptBlock(uint64_t Block,
                                    const uint64_t RoundKeys[32]) {
  for (unsigned Round = 0; Round < PresentRounds; ++Round) {
    Block ^= RoundKeys[Round];
    Block = sboxLayer(Block, PresentSbox);
    Block = pLayer(Block, /*Inverse=*/false);
  }
  return Block ^ RoundKeys[PresentRounds];
}

uint64_t usuba::presentDecryptBlock(uint64_t Block,
                                    const uint64_t RoundKeys[32]) {
  Block ^= RoundKeys[PresentRounds];
  for (unsigned Round = PresentRounds; Round-- > 0;) {
    Block = pLayer(Block, /*Inverse=*/true);
    Block = sboxLayer(Block, InvSbox);
    Block ^= RoundKeys[Round];
  }
  return Block;
}
