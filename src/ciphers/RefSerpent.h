//===- RefSerpent.h - Reference Serpent implementation ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable Serpent-128 in the bitsliced-mode formulation (state = 4
/// 32-bit words, columnwise S-boxes): correctness oracle and Table 3
/// baseline, plus the key schedule. Validation is by encrypt/decrypt
/// round-trips and agreement with the Usuba-compiled kernels (see
/// DESIGN.md on test-vector provenance).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFSERPENT_H
#define USUBA_CIPHERS_REFSERPENT_H

#include <cstdint>

namespace usuba {

inline constexpr unsigned SerpentRounds = 32;
inline constexpr unsigned SerpentRoundKeys = 33;

/// Expands a 128-bit key (16 bytes, little-endian words) into the 33
/// round keys of 4 words each.
void serpentKeySchedule(const uint8_t Key[16],
                        uint32_t Keys[SerpentRoundKeys][4]);

/// Encrypts/decrypts one block (4 words) in place.
void serpentEncrypt(uint32_t State[4],
                    const uint32_t Keys[SerpentRoundKeys][4]);
void serpentDecrypt(uint32_t State[4],
                    const uint32_t Keys[SerpentRoundKeys][4]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFSERPENT_H
