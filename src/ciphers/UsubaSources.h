//===- UsubaSources.h - The Usuba programs of the evaluation ----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Usuba source of the five ciphers of the paper's evaluation
/// (Section 4): Rectangle, DES, AES, ChaCha20, Serpent. Sources are
/// embedded so that examples, tests and benches need no file lookup; the
/// usubac CLI example can also dump them.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_USUBASOURCES_H
#define USUBA_CIPHERS_USUBASOURCES_H

#include <string>
#include <vector>

namespace usuba {

/// Rectangle (Figure 1 of the paper): 16-bit atoms, 4 rows, 26 round
/// keys. Supports vslicing, hslicing and bitslicing.
const std::string &rectangleSource();

/// DES, bitsliced: 64-bit block, 16 48-bit round keys (key schedule in
/// the runtime). Bitslice-only (Boolean circuit).
const std::string &desSource();

/// AES-128, hsliced in the Käsper-Schwabe style: the 128-bit state as 8
/// uH16 bit-plane atoms, 11 round keys in the same representation.
/// Supports hslicing and bitslicing.
const std::string &aesSource();

/// ChaCha20: 16 uV32 words, 20 rounds. Vertical (or general-purpose)
/// slicing only — it relies on 32-bit addition.
const std::string &chacha20Source();

/// Serpent-128: 4 uV32 words, 32 rounds, 33 round keys (key schedule in
/// the runtime). Supports vslicing and bitslicing.
const std::string &serpentSource();

/// PRESENT-80, bitsliced: 64-bit block, 32 round keys (key schedule in
/// the runtime). An extension beyond the paper's evaluation set.
const std::string &presentSource();

/// Trivium, 64 rounds as one combinational kernel (the paper's future
/// work, Section 6): stateless node state -> (keystream, next state).
const std::string &triviumSource();

/// Decryption programs (ECB): the inverse kernels of the block ciphers.
/// DES decrypts with the forward kernel and reversed subkeys, so it has
/// no separate source.
const std::string &rectangleDecSource();
const std::string &serpentDecSource();
const std::string &presentDecSource();
const std::string &aesDecSource();

/// Names and sources of all bundled ciphers (for the CLI example).
struct BundledProgram {
  const char *Name;
  const std::string &Source;
};
std::vector<BundledProgram> bundledPrograms();

} // namespace usuba

#endif // USUBA_CIPHERS_USUBASOURCES_H
