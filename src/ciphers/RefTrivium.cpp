//===- RefTrivium.cpp - Reference Trivium implementation ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefTrivium.h"

#include <cstring>

using namespace usuba;

void usuba::triviumInit(TriviumState &State, const uint8_t Key[10],
                        const uint8_t Iv[10]) {
  std::memset(State.S, 0, sizeof(State.S));
  // (s1..s80) = key bits, (s94..s173) = IV bits, s286..s288 = 1.
  for (unsigned I = 0; I < 80; ++I) {
    State.S[I] = (Key[I / 8] >> (7 - I % 8)) & 1;
    State.S[93 + I] = (Iv[I / 8] >> (7 - I % 8)) & 1;
  }
  State.S[285] = State.S[286] = State.S[287] = 1;
  for (unsigned Round = 0; Round < 4 * 288; ++Round)
    triviumStep(State);
}

unsigned usuba::triviumStep(TriviumState &State) {
  uint8_t *S = State.S; // S[i] = spec s(i+1)
  unsigned T1 = S[65] ^ S[92];
  unsigned T2 = S[161] ^ S[176];
  unsigned T3 = S[242] ^ S[287];
  unsigned Z = T1 ^ T2 ^ T3;
  T1 ^= (S[90] & S[91]) ^ S[170];
  T2 ^= (S[174] & S[175]) ^ S[263];
  T3 ^= (S[285] & S[286]) ^ S[68];
  // Shift the three registers, inserting the feedback bits.
  std::memmove(S + 1, S, 92);          // s1..s93
  std::memmove(S + 94, S + 93, 83);    // s94..s177
  std::memmove(S + 178, S + 177, 110); // s178..s288
  S[0] = static_cast<uint8_t>(T3);
  S[93] = static_cast<uint8_t>(T1);
  S[177] = static_cast<uint8_t>(T2);
  return Z;
}

uint64_t usuba::triviumBlock64(TriviumState &State) {
  uint64_t Block = 0;
  for (unsigned I = 0; I < 64; ++I)
    Block = (Block << 1) | triviumStep(State);
  return Block;
}
