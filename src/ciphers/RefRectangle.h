//===- RefRectangle.h - Reference Rectangle implementation ------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A straightforward C++ implementation of the Rectangle block cipher
/// (Zhang et al., 2014): the correctness oracle and Table 3 baseline for
/// the Usuba-compiled kernels. The state is 4 rows of 16 bits; round keys
/// are supplied by the caller (the paper's benchmarks exclude the key
/// schedule from the primitive).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFRECTANGLE_H
#define USUBA_CIPHERS_REFRECTANGLE_H

#include <cstdint>

namespace usuba {

inline constexpr unsigned RectangleRounds = 25;
inline constexpr unsigned RectangleRoundKeys = 26;

/// Encrypts one block in place. \p Keys holds 26 round keys of 4 rows.
void rectangleEncrypt(uint16_t State[4],
                      const uint16_t Keys[RectangleRoundKeys][4]);

/// Decrypts one block in place (inverse S-box and rotations).
void rectangleDecrypt(uint16_t State[4],
                      const uint16_t Keys[RectangleRoundKeys][4]);

/// The 80-bit-key schedule of the Rectangle specification, producing the
/// 26 round keys from a 5-row key state.
void rectangleKeySchedule80(const uint16_t Key[5],
                            uint16_t Keys[RectangleRoundKeys][4]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFRECTANGLE_H
