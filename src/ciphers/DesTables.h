//===- DesTables.h - The DES specification tables ---------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FIPS-46 DES tables, verbatim in the specification's layout (bit
/// numbering 1-based, bit 1 = leftmost). They are shared by the reference
/// implementation and by the generator that produces the DES Usuba source
/// (which re-indexes the S-boxes into the compiler's wire convention), so
/// a transcription error would be caught once by the known-answer tests.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_DESTABLES_H
#define USUBA_CIPHERS_DESTABLES_H

#include <cstdint>

namespace usuba {
namespace des {

/// Initial permutation (64 entries, 1-based source bits).
extern const uint8_t IP[64];
/// Final permutation (inverse of IP).
extern const uint8_t FP[64];
/// Expansion of the 32-bit half to 48 bits (with repeats).
extern const uint8_t E[48];
/// Permutation P of the 32-bit S-box output.
extern const uint8_t P[32];
/// Key-schedule permuted choices.
extern const uint8_t PC1[56];
extern const uint8_t PC2[48];
/// Per-round left-rotation amounts of the key halves.
extern const uint8_t Shifts[16];
/// S-boxes in the specification layout: S[i][row][column] with
/// row = b1b6 and column = b2b3b4b5 of the 6 input bits b1..b6.
extern const uint8_t Sboxes[8][4][16];

} // namespace des
} // namespace usuba

#endif // USUBA_CIPHERS_DESTABLES_H
