//===- FuzzHarness.cpp - Differential fuzzing campaign driver -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/FuzzHarness.h"

#include "cbackend/NativeJit.h"
#include "core/Compiler.h"
#include "frontend/RandomProgram.h"
#include "runtime/KernelRunner.h"

#include <filesystem>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>

using namespace usuba;

namespace {

uint64_t splitmix64(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// Blocks checked per leg (every leg pads ragged batches internally, so
/// this need not divide blocksPerCall).
constexpr unsigned FuzzBlocks = 24;

struct LegResult {
  std::vector<uint64_t> Out; ///< block-major output atoms
  std::string Error;         ///< nonempty = the leg itself failed
};

/// Compiles \p Source under \p Options and runs it on deterministic
/// inputs derived from \p InputSeed. All legs of one program share the
/// slicing (direction/word size/bitslice), so their runtime layouts — and
/// therefore their input atom streams — are identical and outputs compare
/// directly.
LegResult runLeg(const std::string &Source, const CompileOptions &Options,
                 uint64_t InputSeed, bool Jit) {
  LegResult R;
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel = compileUsuba(Source, Options, Diags);
  if (!Kernel) {
    R.Error = "compilation failed: " + Diags.str();
    return R;
  }
  KernelRunner Runner(std::move(*Kernel));

  std::optional<NativeKernel> Native;
  if (Jit) {
    const Arch &Target = Options.Target ? *Options.Target : archGP64();
    if (hostSupports(Target)) {
      JitError Error;
      std::optional<NativeKernel> Jitted =
          jitCompile(Runner.kernel(), "-O2", &Error);
      if (!Jitted) {
        R.Error = "jit leg unavailable: " + Error.str();
        return R;
      }
      Native.emplace(std::move(*Jitted));
      Runner.setNativeFn(Native->fn());
    }
  }

  const unsigned MBits = Runner.kernel().Prog.MBits;
  const uint64_t Mask =
      MBits >= 64 ? ~uint64_t{0} : (uint64_t{1} << MBits) - 1;
  const std::vector<unsigned> &Params = Runner.paramLens();
  const unsigned InAtoms = std::accumulate(Params.begin(), Params.end(), 0u);
  const unsigned OutAtomsPerBlock = Runner.outputAtomsPerBlock();
  const unsigned Blocks = Runner.blocksPerCall();

  // One flat atom stream, block-major, identical across legs.
  uint64_t Rng = InputSeed;
  std::vector<uint64_t> AllIn(size_t{FuzzBlocks} * InAtoms);
  for (uint64_t &A : AllIn)
    A = splitmix64(Rng) & Mask;

  std::vector<uint64_t> OutAtoms(size_t{Blocks} * OutAtomsPerBlock);
  for (unsigned Base = 0; Base < FuzzBlocks; Base += Blocks) {
    // Per-parameter, block-major staging (zero-padded ragged tail).
    std::vector<std::vector<uint64_t>> Staged(Params.size());
    std::vector<KernelRunner::ParamData> Data;
    for (size_t P = 0; P < Params.size(); ++P)
      Staged[P].assign(size_t{Blocks} * Params[P], 0);
    for (unsigned B = 0; B < Blocks && Base + B < FuzzBlocks; ++B) {
      const uint64_t *Block = AllIn.data() + size_t{Base + B} * InAtoms;
      unsigned Offset = 0;
      for (size_t P = 0; P < Params.size(); ++P) {
        for (unsigned A = 0; A < Params[P]; ++A)
          Staged[P][size_t{B} * Params[P] + A] = Block[Offset + A];
        Offset += Params[P];
      }
    }
    for (size_t P = 0; P < Params.size(); ++P)
      Data.push_back({/*Broadcast=*/false, Staged[P].data(), 0});
    Runner.runBatch(Data, OutAtoms.data());
    for (unsigned B = 0; B < Blocks && Base + B < FuzzBlocks; ++B)
      R.Out.insert(R.Out.end(),
                   OutAtoms.begin() + size_t{B} * OutAtomsPerBlock,
                   OutAtoms.begin() + size_t{B + 1} * OutAtomsPerBlock);
  }

  // The native rung's first batch self-checks against the interpreter;
  // a demotion IS the interpreter-vs-JIT differential firing.
  if (Jit && Runner.fallbackKind() == EngineFallback::SelfCheckMismatch)
    R.Error = "jit self-check differential: " + Runner.fallbackReason();
  return R;
}

CompileOptions baseOptions(Dir Direction, unsigned WordBits, bool Bitslice) {
  CompileOptions Options;
  Options.Direction = Direction;
  Options.WordBits = WordBits;
  Options.Bitslice = Bitslice;
  return Options;
}

/// The per-program differential: -O0 GP64 reference vs optimized legs on
/// every vector ISA (and optionally the JIT rung). Returns "" when every
/// leg agrees byte for byte, else the first failure.
std::string diffOne(const std::string &Source, Dir Direction,
                    unsigned WordBits, bool Bitslice, uint64_t InputSeed,
                    bool Jit, bool Validate) {
  // Horizontal programs use shuffles, which GP64 has no instance for
  // (Table 1) — their reference and legs start at SSE.
  const bool Horiz = Direction == Dir::Horiz && !Bitslice;
  CompileOptions Ref = baseOptions(Direction, WordBits, Bitslice);
  Ref.Target = Horiz ? &archSSE() : &archGP64();
  Ref.Inline = false;
  Ref.Unroll = false;
  Ref.Schedule = false;
  Ref.FuseAndn = false;
  Ref.CopyProp = Ref.ConstantFold = Ref.Cse = Ref.Dce = false;
  LegResult Reference = runLeg(Source, Ref, InputSeed, /*Jit=*/false);
  if (!Reference.Error.empty())
    return std::string("reference (-O0 ") + Ref.Target->Name +
           "): " + Reference.Error;

  struct Leg {
    const char *Name;
    const Arch *Target;
    bool Interleave;
    bool Jit;
  };
  std::vector<Leg> Legs;
  if (!Horiz)
    Legs.push_back({"gp64-opt", &archGP64(), false, Jit});
  Legs.push_back({"sse-opt", &archSSE(), false, Horiz && Jit});
  Legs.push_back({"avx2-opt", &archAVX2(), false, false});
  Legs.push_back({"avx512-opt-interleave", &archAVX512(), true, false});
  for (const Leg &L : Legs) {
    CompileOptions Options = baseOptions(Direction, WordBits, Bitslice);
    Options.Target = L.Target;
    Options.Interleave = L.Interleave;
    Options.ValidatePasses = Validate;
    LegResult Result = runLeg(Source, Options, InputSeed, L.Jit);
    if (!Result.Error.empty())
      return std::string(L.Name) + ": " + Result.Error;
    if (Result.Out != Reference.Out) {
      size_t At = 0;
      while (At < Result.Out.size() && At < Reference.Out.size() &&
             Result.Out[At] == Reference.Out[At])
        ++At;
      std::ostringstream OS;
      OS << L.Name << ": output differs from -O0 reference at atom " << At
         << " (got 0x" << std::hex
         << (At < Result.Out.size() ? Result.Out[At] : 0) << ", want 0x"
         << (At < Reference.Out.size() ? Reference.Out[At] : 0) << ")";
      return OS.str();
    }
  }
  return "";
}

std::string diffSpec(const RandomProgramSpec &Spec, uint64_t InputSeed,
                     bool Jit, bool Validate) {
  return diffOne(Spec.render(), Spec.Direction, Spec.WordBits, Spec.Bitslice,
                 InputSeed, Jit, Validate);
}

} // namespace

FuzzResult usuba::runFuzzCampaign(const FuzzOptions &Opts) {
  FuzzResult Result;
  uint64_t CampaignRng = Opts.Seed;
  for (unsigned I = 0; I < Opts.Count; ++I) {
    const uint64_t ProgramSeed = splitmix64(CampaignRng);
    const uint64_t InputSeed = ProgramSeed ^ 0xB10C5EED;
    const bool Jit = Opts.JitEvery && I % Opts.JitEvery == 0;
    RandomProgramSpec Spec = generateRandomProgram(ProgramSeed);
    ++Result.Programs;
    if (Jit)
      ++Result.JitLegs;

    std::string Failure = diffSpec(Spec, InputSeed, Jit, Opts.Validate);
    if (Failure.empty())
      continue;
    ++Result.Failures;
    if (Opts.Log)
      *Opts.Log << "[fuzz] seed " << ProgramSeed << ": " << Failure << "\n";

    RandomProgramSpec Minimal = Spec;
    if (Opts.Minimize)
      // Shrink against the interpreter-only differential (the failure
      // must persist without the sampled JIT leg to minimize cheaply; if
      // it is JIT-only, the original spec is kept as the reproducer).
      Minimal = minimizeRandomProgram(
          Spec, [&](const RandomProgramSpec &Candidate) {
            return !diffSpec(Candidate, InputSeed, /*Jit=*/false,
                             Opts.Validate)
                        .empty();
          });

    if (!Opts.CorpusDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Opts.CorpusDir, Ec);
      const std::string Path = Opts.CorpusDir + "/diff-seed-" +
                               std::to_string(ProgramSeed) + ".ua";
      std::ofstream Out(Path);
      Out << Minimal.render();
      Out << "\n// failure: " << Failure << "\n";
      if (Out) {
        Result.ReproPaths.push_back(Path);
        if (Opts.Log)
          *Opts.Log << "[fuzz] reproducer written: " << Path << "\n";
      } else if (Opts.Log) {
        *Opts.Log << "[fuzz] failed to write reproducer to " << Path << "\n";
      }
    }
  }
  if (Opts.Log)
    *Opts.Log << "[fuzz] " << Result.Programs << " programs, "
              << Result.JitLegs << " with a native leg, " << Result.Failures
              << " failure(s)\n";
  return Result;
}

std::string usuba::replayFuzzSource(const std::string &Source) {
  std::optional<FuzzHeader> Header = parseFuzzHeader(Source);
  if (!Header)
    return "missing or malformed '// usuba-fuzz:' header";
  return diffOne(Source, Header->Direction, Header->WordBits,
                 Header->Bitslice, Header->Seed ^ 0xB10C5EED,
                 /*Jit=*/false, /*Validate=*/false);
}

std::string usuba::replayFuzzFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "cannot open " + Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return replayFuzzSource(Buffer.str());
}
