//===- UsubaSourcePresent.cpp - PRESENT in Usuba ----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The PRESENT-80 Usuba program, generated from the specification (S-box
/// re-indexed into the compiler's wire convention, bit permutation
/// emitted as a perm). An extension beyond the paper's five ciphers: a
/// second lightweight SPN whose permutation layer costs zero instructions
/// once sliced.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

#include "ciphers/RefPresent.h"

using namespace usuba;

namespace {

unsigned reverse4(unsigned V) {
  return ((V & 1) << 3) | ((V & 2) << 1) | ((V & 4) >> 1) | ((V & 8) >> 3);
}

std::string buildPresentSource() {
  std::string Out =
      "// PRESENT-80 (Bogdanov et al., 2007); generated tables.\n"
      "// Vector index i holds block bit 63-i (leftmost first).\n";

  // S-box with wire 0 = the nibble's most significant bit.
  Out += "table Sbox (in:b4) returns (out:b4) {\n  ";
  for (unsigned Index = 0; Index < 16; ++Index) {
    unsigned Entry = reverse4(PresentSbox[reverse4(Index)]);
    Out += std::to_string(Entry);
    if (Index != 15)
      Out += Index == 7 ? ",\n  " : ", ";
  }
  Out += "\n}\n\n";

  // pLayer: out vector index i <- in vector index 63 - Pinv(63 - i),
  // where Pinv(t) = 4t mod 63 (and 63 fixed).
  Out += "perm PLayer (in:b64) returns (out:b64) {\n  ";
  for (unsigned I = 0; I < 64; ++I) {
    unsigned OutBit = 63 - I;
    unsigned InBit = OutBit == 63 ? 63 : (4 * OutBit) % 63;
    unsigned Source1Based = 64 - InBit; // vector index (63 - InBit) + 1
    Out += std::to_string(Source1Based);
    if (I != 63)
      Out += I % 16 == 15 ? ",\n  " : ", ";
  }
  Out += "\n}\n\n";

  Out += R"(node Round (state:b64, k:b64) returns (out:b64)
vars t:b64, u:b64
let
  t = state ^ k;
  forall i in [0,15] {
    u[4*i..4*i+3] = Sbox(t[4*i..4*i+3])
  }
  out = PLayer(u)
tel

node Present (plain:b64, key:b64[32]) returns (cipher:b64)
vars r:b64[32]
let
  r[0] = plain;
  forall i in [0,30] {
    r[i+1] = Round(r[i], key[i])
  }
  cipher = r[31] ^ key[31]
tel
)";
  return Out;
}

} // namespace

const std::string &usuba::presentSource() {
  static const std::string Source = buildPresentSource();
  return Source;
}
