//===- RefChacha20.h - Reference ChaCha20 implementation --------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable ChaCha20 (RFC 8439 flavor: 32-bit counter, 96-bit nonce):
/// correctness oracle and Table 3 baseline.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFCHACHA20_H
#define USUBA_CIPHERS_REFCHACHA20_H

#include <cstddef>
#include <cstdint>

namespace usuba {

/// Builds the initial ChaCha20 state from key/counter/nonce
/// (constants || key || counter || nonce, all words little-endian).
void chacha20InitState(uint32_t State[16], const uint8_t Key[32],
                       uint32_t Counter, const uint8_t Nonce[12]);

/// One keystream block: Out = permuted(In) + In (RFC 8439 block function).
void chacha20Block(const uint32_t In[16], uint32_t Out[16]);

/// XORs \p Length bytes of keystream into \p Data (encrypt == decrypt),
/// starting at block \p Counter.
void chacha20Xor(uint8_t *Data, size_t Length, const uint8_t Key[32],
                 uint32_t Counter, const uint8_t Nonce[12]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFCHACHA20_H
