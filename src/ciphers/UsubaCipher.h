//===- UsubaCipher.h - High-level cipher API --------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-stream building block of the library: pick a bundled
/// cipher and a slicing, get back an object that encrypts byte buffers.
/// Under the hood this compiles the Usuba program for the requested
/// target, optionally JIT-compiles the emitted C to native code, and
/// drives the transposition runtime in ECB or CTR mode.
///
/// A UsubaCipher serves ONE stream at a time: one key, one caller
/// thread (batched calls parallelize internally). Deployments serving
/// many small, independent streams should sit behind
/// service/CipherService.h — the recommended front door — which opens
/// per-session handles over shared UsubaCipher instances and coalesces
/// sub-batch requests from different sessions into full kernel batches.
///
/// \code
///   CipherResult Result = UsubaCipher::compile(
///       {CipherId::Chacha20, SlicingMode::Vslice, &archAVX2()});
///   if (!Result)
///     report(Result.errorText()); // structured diagnostics available too
///   UsubaCipher &Cipher = Result.cipher();
///   Cipher.setKey(Key, 32);
///   Cipher.ctrXor(Buffer, Size, Nonce, /*Counter=*/0);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_USUBACIPHER_H
#define USUBA_CIPHERS_USUBACIPHER_H

#include "core/Compiler.h"
#include "runtime/KernelRunner.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace usuba {

class NativeKernel;
class CipherResult;

/// The bundled primitives of the paper's evaluation.
enum class CipherId : uint8_t {
  Rectangle,
  Des,
  Aes128,
  Chacha20,
  Serpent,
  /// Extension beyond the paper's evaluation set (lightweight SPN).
  Present,
};

const char *cipherName(CipherId Id);

/// How the primitive is sliced (paper Section 1). Availability depends on
/// the cipher: supportedSlicings() reports which combinations type-check.
enum class SlicingMode : uint8_t { Bitslice, Vslice, Hslice };

const char *slicingName(SlicingMode Mode);

/// Creation parameters.
struct CipherConfig {
  CipherId Id = CipherId::Rectangle;
  SlicingMode Slicing = SlicingMode::Vslice;
  /// Target ISA: nullptr = GP64; &archAuto() = runtime dispatch (compile
  /// resolves it to the widest host-supported arch — see archBest() — and
  /// the resulting cipher's config().Target names the resolved arch).
  const Arch *Target = nullptr;
  /// Back-end toggles forwarded to the compiler (Table 2 sweeps these).
  bool Inline = true;
  bool Unroll = true;
  bool Interleave = false;
  bool Schedule = true;
  /// 0 = the registers/max-live heuristic picks the factor.
  unsigned InterleaveFactorOverride = 0;
  /// JIT the emitted C and run natively when the host supports the
  /// target; otherwise (or on failure) fall back to the simulator.
  bool PreferNative = true;
  /// Worker threads for ctrXor / ecbEncrypt / ecbDecrypt. Typed knob
  /// (see the block comment below): 0 = unset, resolving to
  /// USUBA_THREADS, else hardware concurrency; 1 forces the
  /// single-threaded engine; effectiveThreadCount() implements the
  /// precedence. Small calls always run single-threaded regardless (see
  /// DESIGN.md on the threading model). Purely a runtime knob — it
  /// never enters the kernel-cache key because it does not change the
  /// compiled artifact.
  unsigned Threads = 0;

  // --- Typed runtime knobs. Every knob resolves the same way, in one
  // place: explicit field value > environment variable > built-in
  // default; the effective*() helpers below implement the precedence,
  // and every consumer (including the kernel cache) goes through them.
  // A knob participates in the kernel-cache key exactly when its
  // effective value changes the compiled artifact: JitOptLevel /
  // CcTimeoutMillis / Optimize / ValidatePasses do (see
  // kernelCacheKey), while Threads and SpecializeCtr do not — Threads
  // only schedules work at runtime, and a counter-specialized clone is
  // cached under its own "|ctrspec=<epoch>:<key-hash>" key suffix
  // rather than forking the base kernel's entry. New fields are
  // appended so existing aggregate initializers keep their meaning.

  /// Optimization level handed to the JIT's host-compiler invocation
  /// ("-O0".."-O3"). Empty = USUBA_JIT_OPT when set, else a per-kernel
  /// size heuristic (-O0 for enormous bitsliced kernels, -O3 otherwise).
  std::string JitOptLevel;
  /// Wall-clock budget for one host-compiler invocation, in
  /// milliseconds. 0 = USUBA_CC_TIMEOUT_MS when set (where "0" disables
  /// the timeout), else 120000.
  unsigned CcTimeoutMillis = 0;
  /// Process-wide kernel-cache participation. Unset = enabled unless
  /// USUBA_KERNEL_CACHE=0.
  std::optional<bool> UseKernelCache;
  /// The Usuba0 mid-end optimizer (copy propagation, constant folding,
  /// value numbering, DCE — see core/Optimizer.h; usubac's -O0 / -O1).
  /// Unset = enabled unless USUBA_MIDEND=0.
  std::optional<bool> Optimize;
  /// The CTR fast path: analytic incremental counter transposition with
  /// the keystream XOR fused into the untransposition. Applies to
  /// bitsliced 64-bit-block ciphers (DES, PRESENT, bitsliced Rectangle);
  /// other configurations use the generic path regardless. Unset =
  /// enabled unless USUBA_CTR_FAST=0.
  std::optional<bool> CtrFastPath;
  /// Translation validation (core/Validator.h): prove or differentially
  /// check every mid-end/back-end pass of this compile, demoting to -O0
  /// on a mismatch (SkippedPasses then carries the "demote-to-O0"
  /// marker). Unset = enabled when USUBA_VALIDATE is set non-zero.
  std::optional<bool> ValidatePasses;
  /// Test-only fault injection forwarded to
  /// CompileOptions::DebugMiscompilePass (see Compiler.h). Leave null.
  const char *DebugMiscompilePass = nullptr;
  /// Counter-mode kernel specialization: clone the kernel with the
  /// batch-constant high counter slices and the key's broadcast bits
  /// bound to literals, fold + DCE the constant cone, and JIT the
  /// residue, cached per (key, counter-epoch). Unset = enabled only
  /// when USUBA_SPECIALIZE_CTR is set non-zero; the default is off —
  /// each new epoch pays one host-compiler run, which only amortizes
  /// over large streams. Requires the CTR fast path to be applicable.
  std::optional<bool> SpecializeCtr;

  /// The opt level the JIT will actually use for a kernel of
  /// \p InstrCount instructions.
  std::string effectiveJitOptLevel(size_t InstrCount) const;
  /// The host-compiler timeout the JIT will actually use (0 = no
  /// timeout, reachable only via USUBA_CC_TIMEOUT_MS=0).
  unsigned effectiveCcTimeoutMillis() const;
  /// Whether kernel-cache lookups/stores happen for this config.
  bool effectiveKernelCache() const;
  /// Whether the Usuba0 mid-end runs for this config.
  bool effectiveOptimize() const;
  /// Whether eligible CTR calls take the fast path for this config.
  bool effectiveCtrFastPath() const;
  /// Whether this compile runs under translation validation.
  bool effectiveValidatePasses() const;
  /// Whether eligible CTR calls build per-(key,epoch) specialized
  /// kernels for this config.
  bool effectiveSpecializeCtr() const;
  /// The participant slots the batched entry points will actually
  /// request (>= 1; capped at ThreadPool::MaxThreads).
  unsigned effectiveThreadCount() const;
};

/// Stable per-cipher statistics (satellite of the telemetry subsystem):
/// which engine rung execution is on and why, whether creation hit the
/// process-wide kernel cache, and what the compiler pipeline did.
/// Callers switch on the enums instead of string-matching free text.
struct CipherStats {
  /// True when running JIT-compiled native code.
  bool Native = false;
  /// Why execution is not on the native rung (None when it is).
  EngineFallback Fallback = EngineFallback::None;
  /// Human-readable detail for Fallback (empty when None).
  std::string FallbackDetail;
  /// True when creation was served by the process-wide kernel cache
  /// (no Usubac pipeline or host-compiler run).
  bool FromKernelCache = false;
  /// Final instruction count of the compiled forward kernel.
  uint64_t InstrCount = 0;
  /// Instruction count as the mid-end optimizer found it (after inlining,
  /// before copy-prop/fold/CSE/DCE). The optimizer never increases the
  /// count, so InstrCount <= InstrCountPreOpt always holds.
  uint64_t InstrCountPreOpt = 0;
  /// Logic-gate count of the final forward kernel (instructions minus
  /// free wiring: Mov/Const/Barrier). Machine-independent; with
  /// KernelDepth, the measurable product of circuit synthesis (the
  /// known-circuit database + superoptimizer) and scheduling.
  uint64_t KernelGates = 0;
  /// Critical-path length of the final forward kernel — the longest
  /// chain of dependent non-Mov instructions.
  uint64_t KernelDepth = 0;
  /// Back-end passes the budget/checkpoint machinery skipped.
  std::vector<std::string> SkippedPasses;
  /// Per-pass wall time / instruction delta (see PassStat).
  std::vector<PassStat> PassStats;
  /// Optimization remarks recorded while this cipher's kernel compiled
  /// (empty unless remarks were enabled — see support/Remarks.h). A
  /// kernel-cache hit reuses the remarks captured when the kernel was
  /// first compiled.
  std::vector<Remark> CompileRemarks;

  /// CompileRemarks rendered as a JSON array (RemarkEngine::jsonArray).
  std::string remarksJson() const;

  /// The process-wide telemetry snapshot (Telemetry::snapshotJson()) —
  /// the handle tying per-cipher stats to the global counters/spans.
  /// "{}"-like minimal object when telemetry is disabled.
  std::string telemetryJson() const;
};

/// A ready-to-use sliced cipher.
class UsubaCipher {
public:
  /// Compiles the cipher. The result either holds a ready cipher or the
  /// structured diagnostics explaining why the (cipher, slicing, target)
  /// combination was rejected (a type error, e.g. bitsliced ChaCha20).
  static CipherResult compile(const CipherConfig &Config);

  UsubaCipher(UsubaCipher &&) = default;

  /// Key sizes: Rectangle 10, DES 8, AES-128 16, ChaCha20 32, Serpent 16,
  /// PRESENT 10 bytes.
  unsigned keyBytes() const;
  /// Block sizes: Rectangle/DES 8, AES/Serpent 16; ChaCha20 produces
  /// 64-byte keystream blocks.
  unsigned blockBytes() const;
  /// Blocks processed per kernel invocation (slices x interleave).
  unsigned blocksPerCall() const { return Runner->blocksPerCall(); }
  /// True when running JIT-compiled native code (vs the simulator).
  bool isNative() const { return Runner->usingNative(); }
  /// Worker threads the batched entry points may use (0 = auto). The
  /// effective count is additionally capped by the work available per
  /// call; outputs are bit-identical for every thread count.
  void setThreadCount(unsigned N) { ThreadsRequested = N; }
  unsigned threadCount() const;
  /// Stable statistics: engine rung + structured fallback kind, kernel
  /// cache hit, pass skips/timings — see CipherStats. The structured
  /// Fallback/FallbackDetail pair is the only fallback surface (the old
  /// free-text engineNote() facade is gone).
  CipherStats stats() const;

  /// Installs the key (expands the key schedule — which, as in the
  /// paper's benchmarks, lives outside the measured primitive).
  void setKey(const uint8_t *Key, size_t Length);

  /// ECB encryption of whole blocks (block ciphers only). In and Out may
  /// alias. Partial batches are padded internally with zero blocks.
  void ecbEncrypt(const uint8_t *In, uint8_t *Out, size_t NumBlocks);

  /// Runs \p NumBlocks independent blocks through the forward kernel.
  /// For block ciphers this is exactly ecbEncrypt; for ChaCha20 each
  /// "block" is a 64-byte input state and the output is the keystream
  /// block it produces. This is the building block the coalescing
  /// service layer uses to pack counter blocks from many streams into
  /// one transposed batch (see service/CipherService.h). In and Out may
  /// alias.
  void encryptBlocks(const uint8_t *In, uint8_t *Out, size_t NumBlocks);

  /// ECB decryption. Compiles the inverse kernel lazily on first use
  /// (DES reuses the forward kernel with reversed subkeys).
  void ecbDecrypt(const uint8_t *In, uint8_t *Out, size_t NumBlocks);

  /// Counter-mode keystream XOR (all ciphers; encryption == decryption).
  /// \p Nonce: 8 bytes for 64-bit blocks, 12 for ChaCha20 (RFC 8439), 12
  /// for 128-bit blocks (counter in the last 4 bytes).
  void ctrXor(uint8_t *Data, size_t Length, const uint8_t *Nonce,
              uint64_t Counter);

  /// One kernel execution with no transposition (benchmark harness use:
  /// measures the primitive alone, like the paper's Figures 3 and 4).
  void rawKernelCall() { Runner->kernelOnly(); }

  /// Compilation statistics (for the benches' reporting).
  const CompiledKernel &kernel() const { return Runner->kernel(); }
  const CipherConfig &config() const { return Config; }

  /// Which slicings type-check for \p Id on \p Target (first column of
  /// Table 3 / Figure 3).
  static std::vector<SlicingMode> supportedSlicings(CipherId Id,
                                                    const Arch &Target);

private:
  UsubaCipher(CipherConfig Config, CompiledKernel Kernel);

  /// Resolves the archAuto() sentinel against the host CPU (widest
  /// supported ISA first) and compiles the winner; the returned cipher's
  /// config().Target names the resolved arch.
  static CipherResult compileAuto(const CipherConfig &Config);

  /// Per-slot batch scratch: the threaded engine gives every participant
  /// slot its own copy (plus a KernelRunner clone), so chunks that share
  /// a slot — which the pool never runs concurrently — never share
  /// mutable state with other slots. Slot 0 is the calling thread,
  /// driving the main Runner.
  struct BatchScratch {
    std::vector<uint64_t> Structured, InAtoms, OutAtoms;
    std::vector<uint8_t> Counter, Keystream;
  };
  /// Per-slot state for one kernel (forward or inverse): runner clones
  /// (slot 0 unused — the main runner serves the calling thread, which
  /// the pool always assigns slot 0) and scratch.
  struct EngineWorkers {
    std::vector<std::unique_ptr<KernelRunner>> Runners;
    std::vector<BatchScratch> Scratch;
  };

  /// Batched block transform (shared by ECB and CTR paths); decomposes
  /// the call into batch-aligned chunks the work-stealing pool spreads
  /// over participant slots.
  void processBlocks(KernelRunner &R, EngineWorkers &Workers,
                     const std::vector<uint64_t> &Keys, const uint8_t *In,
                     uint8_t *Out, size_t NumBlocks);
  /// A contiguous run of batches on one worker.
  void processRange(KernelRunner &R, BatchScratch &S,
                    const std::vector<uint64_t> &Keys, const uint8_t *In,
                    uint8_t *Out, size_t NumBlocks);
  /// One kernel invocation's worth of blocks (Count <= R.blocksPerCall()).
  void processBatch(KernelRunner &R, BatchScratch &S,
                    const std::vector<uint64_t> &Keys, const uint8_t *In,
                    uint8_t *Out, size_t Count);
  /// ctrXor's engine-splitting body, parameterized over the kernel that
  /// produces the keystream (the forward runner, or a counter-specialized
  /// clone of it — see CipherConfig::SpecializeCtr).
  void ctrXorWith(KernelRunner &R, EngineWorkers &Workers, uint8_t *Data,
                  size_t Length, const uint8_t *Nonce, uint64_t Counter);
  /// A contiguous CTR span on one worker; \p Counter is the absolute
  /// counter of the span's first block.
  void ctrChunk(KernelRunner &R, BatchScratch &S, uint8_t *Data,
                size_t Length, const uint8_t *Nonce, uint64_t Counter);
  /// Probes blockToAtoms/atomsToBlock for the bit permutations the CTR
  /// fast path needs (once per cipher; Unsupported when the block
  /// conversion is not a bit permutation or the kernel shape disagrees).
  void ensureCtrProbe();
  /// Builds (or reuses) the counter-specialized runner for \p Epoch
  /// (counter bits 32..63). False when specialization is unavailable.
  bool ensureSpecRunner(uint64_t Epoch);
  /// Participant slots to actually use for a call of \p NumBatches kernel
  /// batches (1 when the call is too small to amortize the pool).
  unsigned effectiveThreads(size_t NumBatches) const;
  /// Clones \p Proto into \p Workers up to \p Threads workers.
  void ensureWorkers(KernelRunner &Proto, EngineWorkers &Workers,
                     unsigned Threads);
  /// Builds the decryption runner on first use; false when unsupported.
  bool ensureDecryptRunner();

  /// Converts one block of bytes to kernel atoms and back.
  void blockToAtoms(const uint8_t *Block, uint64_t *Atoms) const;
  void atomsToBlock(const uint64_t *Atoms, uint8_t *Block) const;

  CipherConfig Config;
  std::unique_ptr<KernelRunner> Runner;
  std::shared_ptr<NativeKernel> Native; ///< keeps the dlopen handle alive
  std::unique_ptr<KernelRunner> DecRunner; ///< inverse kernel (lazy)
  std::shared_ptr<NativeKernel> DecNative;
  std::vector<uint64_t> KeyAtoms;    ///< broadcast key material
  std::vector<uint64_t> DecKeyAtoms; ///< DES: reversed subkeys
  std::vector<uint8_t> RawKey;          ///< ChaCha20 keeps the raw key
  uint64_t KeyEpoch = 0; ///< bumped per setKey; keys broadcast-cache tag
  unsigned ThreadsRequested = 0;        ///< 0 = auto
  unsigned AtomsPerBlockStructured = 0; ///< pre-flattening atom count
  unsigned StructuredBits = 0;          ///< atom size pre-flattening
  bool FromCache = false; ///< creation was served by the kernel cache
  EngineWorkers EncWorkers, DecWorkers; ///< per-thread runners + scratch

  /// CTR fast-path probe result (structural; independent of the
  /// CtrFastPath knob, which is consulted per call).
  enum class CtrProbe : uint8_t { Unknown, Ready, Unsupported };
  CtrProbe CtrProbeState = CtrProbe::Unknown;
  KernelRunner::CtrPerm CtrMap{}; ///< valid when CtrProbeState == Ready

  /// Counter-specialized kernel (CipherConfig::SpecializeCtr): the
  /// forward kernel with the epoch's high counter slices and the key's
  /// broadcast bits folded in, plus its own worker clones.
  std::unique_ptr<KernelRunner> SpecRunner;
  std::shared_ptr<NativeKernel> SpecNative;
  uint64_t SpecEpoch = 0;
  uint64_t SpecKeyEpoch = 0; ///< KeyEpoch the specialization captured
  EngineWorkers SpecWorkers;
};

/// What UsubaCipher::compile returns: a ready cipher, or the compiler's
/// structured diagnostics. Testable as a boolean; the diagnostics are
/// the DiagnosticEngine's verbatim output, so callers can inspect
/// severities and locations instead of parsing a flat string.
class CipherResult {
public:
  /*implicit*/ CipherResult(UsubaCipher Cipher) : Value(std::move(Cipher)) {}
  explicit CipherResult(std::vector<Diagnostic> Diags)
      : Diags(std::move(Diags)) {}

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The compiled cipher; only valid when ok().
  UsubaCipher &cipher() & { return *Value; }
  const UsubaCipher &cipher() const & { return *Value; }
  /// Moves the cipher out (for callers that outlive the result).
  UsubaCipher take() && { return std::move(*Value); }

  /// Empty when ok().
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  /// Every diagnostic rendered one per line ("" when ok()).
  std::string errorText() const;

private:
  std::optional<UsubaCipher> Value;
  std::vector<Diagnostic> Diags;
};

} // namespace usuba

#endif // USUBA_CIPHERS_USUBACIPHER_H
