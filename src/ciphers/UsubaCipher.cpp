//===- UsubaCipher.cpp - High-level cipher API ----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaCipher.h"

#include "cbackend/NativeJit.h"
#include "ciphers/KernelCache.h"
#include "core/Optimizer.h"
#include "ciphers/RefAes.h"
#include "ciphers/RefChacha20.h"
#include "ciphers/RefDes.h"
#include "ciphers/RefPresent.h"
#include "ciphers/RefRectangle.h"
#include "ciphers/RefSerpent.h"
#include "ciphers/UsubaSources.h"
#include "runtime/Layout.h"
#include "runtime/ThreadPool.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace usuba;

const char *usuba::cipherName(CipherId Id) {
  switch (Id) {
  case CipherId::Rectangle:
    return "rectangle";
  case CipherId::Des:
    return "des";
  case CipherId::Aes128:
    return "aes128";
  case CipherId::Chacha20:
    return "chacha20";
  case CipherId::Serpent:
    return "serpent";
  case CipherId::Present:
    return "present";
  }
  return "?";
}

const char *usuba::slicingName(SlicingMode Mode) {
  switch (Mode) {
  case SlicingMode::Bitslice:
    return "bitslice";
  case SlicingMode::Vslice:
    return "vslice";
  case SlicingMode::Hslice:
    return "hslice";
  }
  return "?";
}

namespace {

struct CipherMeta {
  const std::string &(*Source)();
  /// Inverse program; nullptr when decryption reuses the forward kernel
  /// (DES) or does not apply (ChaCha20).
  const std::string &(*DecSource)();
  Dir NaturalDirection; ///< direction of the m-sliced form
  unsigned WordBits;
  unsigned KeyBytes;
  unsigned BlockBytes;
  unsigned AtomsPerBlock; ///< structured (pre-flattening) atoms
};

CipherMeta metaFor(CipherId Id) {
  switch (Id) {
  case CipherId::Rectangle:
    return {rectangleSource, rectangleDecSource, Dir::Vert, 16, 10, 8, 4};
  case CipherId::Des:
    return {desSource, nullptr, Dir::Vert, 1, 8, 8, 64};
  case CipherId::Aes128:
    return {aesSource, aesDecSource, Dir::Horiz, 16, 16, 16, 8};
  case CipherId::Chacha20:
    return {chacha20Source, nullptr, Dir::Vert, 32, 32, 64, 16};
  case CipherId::Serpent:
    return {serpentSource, serpentDecSource, Dir::Vert, 32, 16, 16, 4};
  case CipherId::Present:
    return {presentSource, presentDecSource, Dir::Vert, 1, 10, 8, 64};
  }
  return {rectangleSource, rectangleDecSource, Dir::Vert, 16, 10, 8, 4};
}

/// The compile options a CipherConfig denotes (shared by the forward and
/// inverse kernels).
CompileOptions optionsFor(const CipherConfig &Config) {
  CipherMeta Meta = metaFor(Config.Id);
  CompileOptions Options;
  switch (Config.Slicing) {
  case SlicingMode::Hslice:
    Options.Direction = Dir::Horiz;
    break;
  case SlicingMode::Vslice:
    Options.Direction = Dir::Vert;
    break;
  case SlicingMode::Bitslice:
    // Directions collapse under -B; keep the cipher's natural one.
    Options.Direction = Meta.NaturalDirection;
    break;
  }
  Options.WordBits = Meta.WordBits;
  Options.Bitslice = Config.Slicing == SlicingMode::Bitslice;
  Options.Target = Config.Target ? Config.Target : &archGP64();
  Options.Inline = Config.Inline;
  Options.Unroll = Config.Unroll;
  Options.Interleave = Config.Interleave;
  Options.Schedule = Config.Schedule;
  Options.InterleaveFactorOverride = Config.InterleaveFactorOverride;
  const bool MidEnd = Config.effectiveOptimize();
  Options.CopyProp = MidEnd;
  Options.ConstantFold = MidEnd;
  Options.Cse = MidEnd;
  Options.Dce = MidEnd;
  Options.ValidatePasses = Config.effectiveValidatePasses();
  Options.DebugMiscompilePass = Config.DebugMiscompilePass;
  return Options;
}

/// Batches per work-stealing chunk for a threaded call: aim for several
/// chunks per participant slot so an uneven tail or a slow slot can be
/// rebalanced, without shrinking chunks so far that per-chunk overhead
/// shows up. Imbalance is bounded by one chunk ~= NumBatches / (4 *
/// Threads) batches.
size_t batchesPerChunk(size_t NumBatches, unsigned Threads) {
  const size_t TargetChunks = size_t{Threads} * 4;
  return std::max<size_t>(1, (NumBatches + TargetChunks - 1) / TargetChunks);
}

uint64_t load64be(const uint8_t *Bytes) {
  uint64_t Value = 0;
  for (unsigned I = 0; I < 8; ++I)
    Value = (Value << 8) | Bytes[I];
  return Value;
}

void store64be(uint64_t Value, uint8_t *Bytes) {
  for (unsigned I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(Value >> (8 * (7 - I)));
}

uint32_t load32le(const uint8_t *Bytes) {
  return static_cast<uint32_t>(Bytes[0]) |
         static_cast<uint32_t>(Bytes[1]) << 8 |
         static_cast<uint32_t>(Bytes[2]) << 16 |
         static_cast<uint32_t>(Bytes[3]) << 24;
}

} // namespace

std::string CipherConfig::effectiveJitOptLevel(size_t InstrCount) const {
  if (!JitOptLevel.empty())
    return JitOptLevel;
  if (const char *Env = std::getenv("USUBA_JIT_OPT"))
    return Env;
  // Size heuristic: -O3 normally, degrading for enormous bitsliced
  // kernels where high -O hits host-compiler pathologies.
  return InstrCount > 50000 ? "-O0" : "-O3";
}

unsigned CipherConfig::effectiveCcTimeoutMillis() const {
  if (CcTimeoutMillis)
    return CcTimeoutMillis;
  if (const char *Env = std::getenv("USUBA_CC_TIMEOUT_MS")) {
    char *End = nullptr;
    unsigned long Value = std::strtoul(Env, &End, 10);
    // "0" is a valid setting: it disables the timeout entirely.
    if (End != Env && *End == '\0')
      return static_cast<unsigned>(Value);
  }
  return 120000;
}

bool CipherConfig::effectiveKernelCache() const {
  if (UseKernelCache)
    return *UseKernelCache;
  return kernelCacheEnabled();
}

bool CipherConfig::effectiveOptimize() const {
  if (Optimize)
    return *Optimize;
  const char *Env = std::getenv("USUBA_MIDEND");
  return !(Env && Env[0] == '0');
}

bool CipherConfig::effectiveCtrFastPath() const {
  if (CtrFastPath)
    return *CtrFastPath;
  const char *Env = std::getenv("USUBA_CTR_FAST");
  return !(Env && Env[0] == '0');
}

bool CipherConfig::effectiveValidatePasses() const {
  if (ValidatePasses)
    return *ValidatePasses;
  const char *Env = std::getenv("USUBA_VALIDATE");
  return Env && Env[0] != '0' && Env[0] != '\0';
}

bool CipherConfig::effectiveSpecializeCtr() const {
  if (SpecializeCtr)
    return *SpecializeCtr;
  const char *Env = std::getenv("USUBA_SPECIALIZE_CTR");
  return Env && Env[0] != '0' && Env[0] != '\0';
}

unsigned CipherConfig::effectiveThreadCount() const {
  if (Threads)
    return std::min(Threads, ThreadPool::MaxThreads);
  return ThreadPool::defaultThreads();
}

std::string CipherStats::telemetryJson() const {
  return Telemetry::instance().snapshotJson();
}

std::string CipherStats::remarksJson() const {
  return RemarkEngine::jsonArray(CompileRemarks);
}

std::string CipherResult::errorText() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

UsubaCipher::UsubaCipher(CipherConfig ConfigIn, CompiledKernel Kernel)
    : Config(ConfigIn),
      Runner(std::make_unique<KernelRunner>(std::move(Kernel))) {
  CipherMeta Meta = metaFor(Config.Id);
  AtomsPerBlockStructured = Meta.AtomsPerBlock;
  StructuredBits = Meta.WordBits;
  ThreadsRequested = Config.Threads;
}

namespace {

/// The structured fallback kind for a JIT failure.
EngineFallback fallbackKindFor(JitError::Reason Kind) {
  switch (Kind) {
  case JitError::Reason::None:
    return EngineFallback::None;
  case JitError::Reason::NoCompiler:
    return EngineFallback::NoCompiler;
  case JitError::Reason::WriteFailed:
    return EngineFallback::WriteFailed;
  case JitError::Reason::CompileFailed:
    return EngineFallback::CompileFailed;
  case JitError::Reason::Timeout:
    return EngineFallback::Timeout;
  case JitError::Reason::LoadFailed:
    return EngineFallback::LoadFailed;
  case JitError::Reason::SymbolMissing:
    return EngineFallback::SymbolMissing;
  }
  return EngineFallback::None;
}

/// JITs \p Runner's kernel when \p Config asks for native execution,
/// recording a ladder note on any failure. Returns the shared native
/// handle (null when not native).
std::shared_ptr<NativeKernel> attachNative(const CipherConfig &Config,
                                           KernelRunner &Runner) {
  if (!Config.PreferNative) {
    Runner.noteFallback(EngineFallback::NativeDisabled,
                        "native execution disabled by configuration");
    return nullptr;
  }
  const Arch &Target = Config.Target ? *Config.Target : archGP64();
  // Degradation ladder rung 1: JIT the emitted C. Any failure —
  // unsupported host ISA, missing compiler, compile error, timeout —
  // leaves execution on the interpreter with the reason recorded.
  if (!hostSupports(Target)) {
    Runner.noteFallback(EngineFallback::HostUnsupported,
                        std::string("host CPU cannot execute ") + Target.Name +
                            " code");
    return nullptr;
  }
  JitError Err;
  std::optional<NativeKernel> Native = jitCompile(
      Runner.kernel(),
      Config.effectiveJitOptLevel(Runner.kernel().InstrCount), &Err,
      Config.effectiveCcTimeoutMillis());
  if (!Native) {
    Runner.noteFallback(fallbackKindFor(Err.Kind), Err.str());
    return nullptr;
  }
  auto Shared = std::make_shared<NativeKernel>(std::move(*Native));
  Runner.setNativeFn(Shared->fn());
  return Shared;
}

/// Installs a cache entry's native code / ladder note on \p Runner.
std::shared_ptr<NativeKernel> attachCached(const CipherConfig &Config,
                                           const CachedKernel &Cached,
                                           KernelRunner &Runner) {
  if (!Config.PreferNative) {
    Runner.noteFallback(EngineFallback::NativeDisabled,
                        "native execution disabled by configuration");
    return nullptr;
  }
  if (Cached.Native) {
    Runner.setNativeFn(Cached.Native->fn());
    return Cached.Native;
  }
  Runner.noteFallback(Cached.FallbackKind, Cached.EngineNote);
  return nullptr;
}

} // namespace

CipherResult UsubaCipher::compile(const CipherConfig &Config) {
  if (Config.Target == &archAuto())
    return compileAuto(Config);
  TelemetrySpan CompileSpan("cipher.compile");
  CipherMeta Meta = metaFor(Config.Id);
  const bool CacheOn = Config.effectiveKernelCache();

  std::string CacheKey = kernelCacheKey(Config, "enc");
  if (std::shared_ptr<const CachedKernel> Cached =
          kernelCacheLookup(CacheKey, CacheOn)) {
    UsubaCipher Cipher(Config, Cached->Kernel);
    Cipher.Native = attachCached(Config, *Cached, *Cipher.Runner);
    Cipher.FromCache = true;
    return CipherResult(std::move(Cipher));
  }

  CompileOptions Options = optionsFor(Config);
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Meta.Source(), Options, Diags);
  if (!Kernel) {
    telemetryCount("cipher.compile_failures");
    std::vector<Diagnostic> Out = Diags.diagnostics();
    if (Out.empty())
      Out.push_back({DiagSeverity::Error, SourceLoc(), "compilation failed"});
    return CipherResult(std::move(Out));
  }

  UsubaCipher Cipher(Config, std::move(*Kernel));
  Cipher.Native = attachNative(Config, *Cipher.Runner);
  kernelCacheStore(CacheKey,
                   {Cipher.Runner->kernel(), Cipher.Native,
                    Cipher.Runner->fallbackReason(),
                    Cipher.Runner->fallbackKind()},
                   CacheOn);
  return CipherResult(std::move(Cipher));
}

CipherResult UsubaCipher::compileAuto(const CipherConfig &Config) {
  // Runtime architecture dispatch: resolve the archAuto() sentinel
  // against the host CPU, widest supported ISA first, before the cache
  // or the compiler pipeline ever see it. The winner is pinned into the
  // cipher's config, so config().Target names a real arch and the
  // kernel-cache entry is the same one an explicitly pinned compile
  // would produce (byte-identical output follows). Narrower rungs are
  // not compiled eagerly: each sits one cache miss away for the day a
  // pinned compile (or a future heterogeneous deployment) asks for it.
  unsigned Count = 0;
  const Arch *const *Ladder = allArchs(Count);
  std::vector<Diagnostic> FirstDiags;
  bool SawFailure = false;
  for (unsigned I = Count; I-- > 0;) { // allArchs is narrowest-first
    const Arch *A = Ladder[I];
    if (!archSupported(*A))
      continue;
    CipherConfig Pinned = Config;
    Pinned.Target = A;
    CipherResult Result = compile(Pinned);
    if (Result) {
      telemetryCount((std::string("cipher.dispatch.") + A->Name).c_str());
      if (remarksEnabled()) {
        Remark R = Remark::analysis("dispatch", "ArchDispatch");
        R.Function = cipherName(Config.Id);
        R.Message = std::string("runtime dispatch selected ") + A->Name +
                    " (" + archBestWhy() + ")";
        RemarkEngine::instance().record(R);
      }
      return Result;
    }
    // Keep the widest rung's diagnostics: they name the real obstacle
    // (e.g. a slicing that does not type-check on any arch).
    if (!SawFailure) {
      FirstDiags = Result.diagnostics();
      SawFailure = true;
    }
  }
  if (FirstDiags.empty())
    FirstDiags.push_back({DiagSeverity::Error, SourceLoc(),
                          "runtime dispatch found no compilable target"});
  return CipherResult(std::move(FirstDiags));
}

CipherStats UsubaCipher::stats() const {
  CipherStats S;
  S.Native = Runner->usingNative();
  S.Fallback = Runner->fallbackKind();
  S.FallbackDetail = Runner->fallbackReason();
  S.FromKernelCache = FromCache;
  S.InstrCount = Runner->kernel().InstrCount;
  S.InstrCountPreOpt = Runner->kernel().InstrCountPreOpt;
  S.KernelGates = Runner->kernel().KernelGates;
  S.KernelDepth = Runner->kernel().KernelDepth;
  S.SkippedPasses = Runner->kernel().SkippedPasses;
  S.PassStats = Runner->kernel().PassStats;
  S.CompileRemarks = Runner->kernel().Remarks;
  return S;
}

bool UsubaCipher::ensureDecryptRunner() {
  if (DecRunner)
    return true;
  CipherMeta Meta = metaFor(Config.Id);
  if (!Meta.DecSource)
    return Config.Id == CipherId::Des; // DES reuses the forward kernel

  const bool CacheOn = Config.effectiveKernelCache();
  std::string CacheKey = kernelCacheKey(Config, "dec");
  if (std::shared_ptr<const CachedKernel> Cached =
          kernelCacheLookup(CacheKey, CacheOn)) {
    DecRunner = std::make_unique<KernelRunner>(Cached->Kernel);
    DecNative = attachCached(Config, *Cached, *DecRunner);
    return true;
  }

  CompileOptions Options = optionsFor(Config);
  DiagnosticEngine Diags;
  std::optional<CompiledKernel> Kernel =
      compileUsuba(Meta.DecSource(), Options, Diags);
  if (!Kernel)
    return false;
  DecRunner = std::make_unique<KernelRunner>(std::move(*Kernel));
  DecNative = attachNative(Config, *DecRunner);
  kernelCacheStore(CacheKey,
                   {DecRunner->kernel(), DecNative,
                    DecRunner->fallbackReason(), DecRunner->fallbackKind()},
                   CacheOn);
  return true;
}

unsigned UsubaCipher::threadCount() const {
  if (ThreadsRequested)
    return std::min(ThreadsRequested, ThreadPool::MaxThreads);
  return ThreadPool::defaultThreads();
}

unsigned UsubaCipher::effectiveThreads(size_t NumBatches) const {
  unsigned Threads = threadCount();
  if (Threads <= 1)
    return 1;
  // Auto mode keeps small calls on the fast single-threaded path; an
  // explicit request (setThreadCount / USUBA_THREADS on a small machine)
  // engages from two batches, which is how the tests exercise the
  // threaded engine on tiny inputs.
  const size_t MinBatches = ThreadsRequested ? 2 : 8;
  if (NumBatches < MinBatches)
    return 1;
  return static_cast<unsigned>(std::min<size_t>(Threads, NumBatches));
}

void UsubaCipher::ensureWorkers(KernelRunner &Proto, EngineWorkers &Workers,
                                unsigned Threads) {
  if (Workers.Scratch.size() < Threads)
    Workers.Scratch.resize(Threads);
  if (Workers.Runners.size() < Threads)
    Workers.Runners.resize(Threads);
  // Slot 0 stays empty: the calling thread drives Proto directly.
  for (unsigned T = 1; T < Threads; ++T)
    if (!Workers.Runners[T])
      Workers.Runners[T] = Proto.clone();
}

unsigned UsubaCipher::keyBytes() const { return metaFor(Config.Id).KeyBytes; }
unsigned UsubaCipher::blockBytes() const {
  return metaFor(Config.Id).BlockBytes;
}

void UsubaCipher::setKey(const uint8_t *Key, size_t Length) {
  assert(Length == keyBytes() && "wrong key length");
  (void)Length;
  // New epoch: runners drop their cached broadcast of the old keys.
  ++KeyEpoch;
  const bool Flat = Config.Slicing == SlicingMode::Bitslice;
  std::vector<uint64_t> Structured;

  switch (Config.Id) {
  case CipherId::Rectangle: {
    uint16_t KeyRows[5];
    for (unsigned Row = 0; Row < 5; ++Row)
      KeyRows[Row] = static_cast<uint16_t>(Key[2 * Row]) |
                     static_cast<uint16_t>(Key[2 * Row + 1]) << 8;
    uint16_t Keys[RectangleRoundKeys][4];
    rectangleKeySchedule80(KeyRows, Keys);
    for (unsigned R = 0; R < RectangleRoundKeys; ++R)
      for (unsigned W = 0; W < 4; ++W)
        Structured.push_back(Keys[R][W]);
    break;
  }
  case CipherId::Des: {
    uint64_t Subkeys[16];
    desKeySchedule(load64be(Key), Subkeys);
    Structured.resize(768);
    desSubkeysToAtoms(Subkeys, Structured.data());
    // The Feistel structure decrypts with reversed subkeys.
    uint64_t Reversed[16];
    for (unsigned R = 0; R < 16; ++R)
      Reversed[R] = Subkeys[15 - R];
    DecKeyAtoms.resize(768);
    desSubkeysToAtoms(Reversed, DecKeyAtoms.data());
    break;
  }
  case CipherId::Aes128: {
    uint8_t RoundKeys[11][16];
    aes128KeySchedule(Key, RoundKeys);
    Structured.resize(11 * 8);
    for (unsigned R = 0; R < 11; ++R)
      aesBlockToAtoms(RoundKeys[R], &Structured[size_t{R} * 8]);
    break;
  }
  case CipherId::Chacha20:
    RawKey.assign(Key, Key + 32);
    return; // the key is folded into each block's input state
  case CipherId::Serpent: {
    uint32_t Keys[SerpentRoundKeys][4];
    serpentKeySchedule(Key, Keys);
    for (unsigned R = 0; R < SerpentRoundKeys; ++R)
      for (unsigned W = 0; W < 4; ++W)
        Structured.push_back(Keys[R][W]);
    break;
  }
  case CipherId::Present: {
    uint64_t RoundKeys[32];
    presentKeySchedule80(Key, RoundKeys);
    for (unsigned R = 0; R < 32; ++R)
      for (unsigned J = 0; J < 64; ++J)
        Structured.push_back((RoundKeys[R] >> (63 - J)) & 1);
    break;
  }
  }

  if (Flat && StructuredBits > 1) {
    KeyAtoms.resize(Structured.size() * StructuredBits);
    expandAtomsToBits(Structured.data(),
                      static_cast<unsigned>(Structured.size()),
                      StructuredBits, KeyAtoms.data());
  } else {
    KeyAtoms = std::move(Structured);
  }
}

void UsubaCipher::blockToAtoms(const uint8_t *Block,
                               uint64_t *Atoms) const {
  switch (Config.Id) {
  case CipherId::Rectangle:
    for (unsigned Row = 0; Row < 4; ++Row)
      Atoms[Row] = static_cast<uint64_t>(Block[2 * Row]) |
                   static_cast<uint64_t>(Block[2 * Row + 1]) << 8;
    return;
  case CipherId::Des:
    desBlockToAtoms(load64be(Block), Atoms);
    return;
  case CipherId::Aes128:
    aesBlockToAtoms(Block, Atoms);
    return;
  case CipherId::Chacha20:
    for (unsigned W = 0; W < 16; ++W)
      Atoms[W] = load32le(Block + 4 * W);
    return;
  case CipherId::Serpent:
    for (unsigned W = 0; W < 4; ++W)
      Atoms[W] = load32le(Block + 4 * W);
    return;
  case CipherId::Present: {
    uint64_t Value = load64be(Block);
    for (unsigned J = 0; J < 64; ++J)
      Atoms[J] = (Value >> (63 - J)) & 1;
    return;
  }
  }
}

void UsubaCipher::atomsToBlock(const uint64_t *Atoms,
                               uint8_t *Block) const {
  switch (Config.Id) {
  case CipherId::Rectangle:
    for (unsigned Row = 0; Row < 4; ++Row) {
      Block[2 * Row] = static_cast<uint8_t>(Atoms[Row]);
      Block[2 * Row + 1] = static_cast<uint8_t>(Atoms[Row] >> 8);
    }
    return;
  case CipherId::Des:
    store64be(desAtomsToBlock(Atoms), Block);
    return;
  case CipherId::Aes128:
    aesAtomsToBlock(Atoms, Block);
    return;
  case CipherId::Chacha20:
    for (unsigned W = 0; W < 16; ++W) {
      uint32_t Value = static_cast<uint32_t>(Atoms[W]);
      std::memcpy(Block + 4 * W, &Value, 4);
    }
    return;
  case CipherId::Serpent:
    for (unsigned W = 0; W < 4; ++W) {
      uint32_t Value = static_cast<uint32_t>(Atoms[W]);
      std::memcpy(Block + 4 * W, &Value, 4);
    }
    return;
  case CipherId::Present: {
    uint64_t Value = 0;
    for (unsigned J = 0; J < 64; ++J)
      Value = (Value << 1) | (Atoms[J] & 1);
    store64be(Value, Block);
    return;
  }
  }
}

void UsubaCipher::ecbEncrypt(const uint8_t *In, uint8_t *Out,
                             size_t NumBlocks) {
  assert(Config.Id != CipherId::Chacha20 && "ChaCha20 is a stream cipher");
  encryptBlocks(In, Out, NumBlocks);
}

void UsubaCipher::encryptBlocks(const uint8_t *In, uint8_t *Out,
                                size_t NumBlocks) {
  processBlocks(*Runner, EncWorkers, KeyAtoms, In, Out, NumBlocks);
}

void UsubaCipher::ecbDecrypt(const uint8_t *In, uint8_t *Out,
                             size_t NumBlocks) {
  assert(Config.Id != CipherId::Chacha20 && "ChaCha20 is a stream cipher");
  [[maybe_unused]] bool Ok = ensureDecryptRunner();
  assert(Ok && "decryption kernel failed to compile");
  if (Config.Id == CipherId::Des) {
    // Same forward kernel, reversed subkeys: the broadcast cache keys on
    // the atoms pointer, so flipping between KeyAtoms and DecKeyAtoms
    // repacks correctly.
    processBlocks(*Runner, EncWorkers, DecKeyAtoms, In, Out, NumBlocks);
    return;
  }
  processBlocks(*DecRunner, DecWorkers, KeyAtoms, In, Out, NumBlocks);
}

void UsubaCipher::processBlocks(KernelRunner &R, EngineWorkers &Workers,
                                const std::vector<uint64_t> &Keys,
                                const uint8_t *In, uint8_t *Out,
                                size_t NumBlocks) {
  const unsigned Batch = R.blocksPerCall();
  const unsigned BlockLen = blockBytes();
  const size_t NumBatches = (NumBlocks + Batch - 1) / Batch;
  const unsigned Threads = effectiveThreads(NumBatches);
  ensureWorkers(R, Workers, Threads);
  if (Threads <= 1) {
    processRange(R, Workers.Scratch[0], Keys, In, Out, NumBlocks);
    return;
  }
  // Batch-aligned chunks, several per slot so the pool can rebalance by
  // stealing. The chunk -> block-range mapping is a pure function of the
  // chunk index and each chunk reads and writes only its own span, so
  // In == Out aliasing stays safe and the output is bit-identical to the
  // single-threaded engine no matter which slot runs which chunk.
  const size_t BatchesPerChunk = batchesPerChunk(NumBatches, Threads);
  const size_t NumChunks = (NumBatches + BatchesPerChunk - 1) / BatchesPerChunk;
  ThreadPool::global().parallelFor(
      Threads, NumChunks, [&](size_t Chunk, unsigned Slot) {
        const size_t B0 = Chunk * BatchesPerChunk;
        const size_t B1 = std::min(NumBatches, B0 + BatchesPerChunk);
        const size_t Block0 = B0 * Batch;
        const size_t BlockEnd = std::min(NumBlocks, B1 * Batch);
        KernelRunner &WR = Slot == 0 ? R : *Workers.Runners[Slot];
        processRange(WR, Workers.Scratch[Slot], Keys, In + Block0 * BlockLen,
                     Out + Block0 * BlockLen, BlockEnd - Block0);
      });
}

void UsubaCipher::processRange(KernelRunner &R, BatchScratch &S,
                               const std::vector<uint64_t> &Keys,
                               const uint8_t *In, uint8_t *Out,
                               size_t NumBlocks) {
  const unsigned Batch = R.blocksPerCall();
  const unsigned BlockLen = blockBytes();
  for (size_t Base = 0; Base < NumBlocks; Base += Batch) {
    size_t Count = std::min<size_t>(Batch, NumBlocks - Base);
    processBatch(R, S, Keys, In + Base * BlockLen, Out + Base * BlockLen,
                 Count);
  }
}

void UsubaCipher::processBatch(KernelRunner &R, BatchScratch &S,
                               const std::vector<uint64_t> &Keys,
                               const uint8_t *In, uint8_t *Out,
                               size_t Count) {
  const bool Flat = Config.Slicing == SlicingMode::Bitslice;
  const unsigned Scale = Flat && StructuredBits > 1 ? StructuredBits : 1;
  const unsigned AtomsStructured = AtomsPerBlockStructured;
  const unsigned AtomsFlat = AtomsStructured * Scale;
  const unsigned Batch = R.blocksPerCall();
  const unsigned BlockLen = blockBytes();
  assert(Count >= 1 && Count <= Batch && "batch size out of range");

  if (S.Structured.size() < size_t{Batch} * AtomsStructured) {
    S.Structured.resize(size_t{Batch} * AtomsStructured);
    S.InAtoms.resize(size_t{Batch} * AtomsFlat);
    S.OutAtoms.resize(size_t{Batch} * AtomsFlat);
  }
  if (Count < Batch)
    std::fill(S.Structured.begin(), S.Structured.end(), 0);
  for (size_t B = 0; B < Count; ++B)
    blockToAtoms(In + B * BlockLen, &S.Structured[B * AtomsStructured]);
  const uint64_t *InAtoms = S.Structured.data();
  if (Scale > 1) {
    expandAtomsToBits(S.Structured.data(),
                      static_cast<unsigned>(size_t{Batch} * AtomsStructured),
                      StructuredBits, S.InAtoms.data());
    InAtoms = S.InAtoms.data();
  }
  std::vector<KernelRunner::ParamData> Params;
  Params.push_back({/*Broadcast=*/false, InAtoms});
  if (Config.Id != CipherId::Chacha20)
    Params.push_back({/*Broadcast=*/true, Keys.data(), KeyEpoch});
  R.runBatch(Params, S.OutAtoms.data());
  const uint64_t *OutAtoms = S.OutAtoms.data();
  if (Scale > 1) {
    collapseBitsToAtoms(S.OutAtoms.data(),
                        static_cast<unsigned>(size_t{Batch} * AtomsStructured),
                        StructuredBits, S.Structured.data());
    OutAtoms = S.Structured.data();
  }
  for (size_t B = 0; B < Count; ++B)
    atomsToBlock(OutAtoms + B * AtomsStructured, Out + B * BlockLen);
}

void UsubaCipher::ctrXor(uint8_t *Data, size_t Length, const uint8_t *Nonce,
                         uint64_t Counter) {
  if (Length == 0)
    return;
  const unsigned BlockLen = blockBytes();
  // Probe for the fast path up front, on the calling thread — the worker
  // lambdas read the probe result concurrently.
  if (BlockLen == 8 && Config.Id != CipherId::Chacha20 &&
      Config.effectiveCtrFastPath() && Runner->ctrFastShape())
    ensureCtrProbe();

  // Opt-in counter specialization: when the whole call stays inside one
  // counter epoch (bits 32..63 constant), route it through a kernel with
  // those bits and the key folded in.
  if (Config.effectiveSpecializeCtr() && CtrProbeState == CtrProbe::Ready &&
      Config.effectiveCtrFastPath()) {
    const uint64_t Base = load64be(Nonce) + Counter;
    const uint64_t LastBlock = Base + (Length - 1) / BlockLen;
    if (Base <= LastBlock && (Base >> 32) == (LastBlock >> 32) &&
        ensureSpecRunner(Base >> 32)) {
      ctrXorWith(*SpecRunner, SpecWorkers, Data, Length, Nonce, Counter);
      return;
    }
  }
  ctrXorWith(*Runner, EncWorkers, Data, Length, Nonce, Counter);
}

void UsubaCipher::ctrXorWith(KernelRunner &R, EngineWorkers &Workers,
                             uint8_t *Data, size_t Length,
                             const uint8_t *Nonce, uint64_t Counter) {
  const unsigned BlockLen = blockBytes();
  const unsigned Batch = R.blocksPerCall();
  const size_t BatchBytes = size_t{Batch} * BlockLen;
  const size_t NumBatches = (Length + BatchBytes - 1) / BatchBytes;
  const unsigned Threads = effectiveThreads(NumBatches);
  ensureWorkers(R, Workers, Threads);
  if (Threads <= 1) {
    ctrChunk(R, Workers.Scratch[0], Data, Length, Nonce, Counter);
    return;
  }
  // Batch-aligned chunks with position-derived counters: a chunk starting
  // at batch B0 encrypts with Counter + B0 * Batch regardless of which
  // slot runs it, so the keystream is bit-identical to the
  // single-threaded engine for any thread count and any steal pattern.
  const size_t BatchesPerChunk = batchesPerChunk(NumBatches, Threads);
  const size_t NumChunks = (NumBatches + BatchesPerChunk - 1) / BatchesPerChunk;
  ThreadPool::global().parallelFor(
      Threads, NumChunks, [&](size_t Chunk, unsigned Slot) {
        const size_t B0 = Chunk * BatchesPerChunk;
        const size_t B1 = std::min(NumBatches, B0 + BatchesPerChunk);
        const size_t Off0 = B0 * BatchBytes;
        const size_t OffEnd = std::min(Length, B1 * BatchBytes);
        KernelRunner &WR = Slot == 0 ? R : *Workers.Runners[Slot];
        ctrChunk(WR, Workers.Scratch[Slot], Data + Off0, OffEnd - Off0, Nonce,
                 Counter + B0 * Batch);
      });
}

void UsubaCipher::ctrChunk(KernelRunner &R, BatchScratch &S, uint8_t *Data,
                           size_t Length, const uint8_t *Nonce,
                           uint64_t Counter) {
  const unsigned BlockLen = blockBytes();
  const unsigned Batch = R.blocksPerCall();
  const size_t BatchBytes = size_t{Batch} * BlockLen;
  if (S.Counter.size() != BatchBytes) {
    S.Counter.resize(BatchBytes);
    S.Keystream.resize(BatchBytes);
  }

  // Fast path: analytic incremental counter slices with the keystream
  // XOR fused into the untransposition (see KernelRunner::runCtrBatch).
  // Checked per batch: the first batch of a native runner still goes
  // through the generic path so the differential self-check runs.
  const bool FastPath =
      CtrProbeState == CtrProbe::Ready && Config.effectiveCtrFastPath();

  size_t Offset = 0;
  while (Offset < Length) {
    size_t Chunk = std::min(Length - Offset, BatchBytes);
    size_t NumBlocks = (Chunk + BlockLen - 1) / BlockLen;

    if (FastPath && R.ctrFastReady()) {
      R.runCtrBatch(CtrMap, load64be(Nonce) + Counter,
                    {/*Broadcast=*/true, KeyAtoms.data(), KeyEpoch},
                    Data + Offset, Chunk);
      Counter += NumBlocks;
      Offset += Chunk;
      continue;
    }

    if (Config.Id == CipherId::Chacha20) {
      // A ChaCha20 "counter block" is the whole 16-word input state; the
      // kernel output is the keystream directly.
      for (size_t B = 0; B < NumBlocks; ++B) {
        uint32_t State[16];
        chacha20InitState(State, RawKey.data(),
                          static_cast<uint32_t>(Counter + B), Nonce);
        for (unsigned W = 0; W < 16; ++W)
          for (unsigned Byte = 0; Byte < 4; ++Byte)
            S.Counter[B * 64 + 4 * W + Byte] =
                static_cast<uint8_t>(State[W] >> (8 * Byte));
      }
    } else if (BlockLen == 8) {
      // 64-bit blocks: the counter block is nonce-as-integer plus index.
      uint64_t Base = load64be(Nonce);
      for (size_t B = 0; B < NumBlocks; ++B)
        store64be(Base + Counter + B, &S.Counter[B * BlockLen]);
    } else {
      // 128-bit blocks: 12-byte nonce followed by a 32-bit counter.
      for (size_t B = 0; B < NumBlocks; ++B) {
        uint8_t *Block = &S.Counter[B * BlockLen];
        std::memcpy(Block, Nonce, 12);
        uint32_t Ctr = static_cast<uint32_t>(Counter + B);
        for (unsigned I = 0; I < 4; ++I)
          Block[12 + I] = static_cast<uint8_t>(Ctr >> (8 * (3 - I)));
      }
    }

    processBatch(R, S, KeyAtoms, S.Counter.data(), S.Keystream.data(),
                 NumBlocks);

    // Word-wise keystream XOR; the scalar tail is at most 7 bytes.
    uint8_t *Dst = Data + Offset;
    const uint8_t *Ks = S.Keystream.data();
    size_t I = 0;
    for (; I + 8 <= Chunk; I += 8) {
      uint64_t D, K;
      std::memcpy(&D, Dst + I, 8);
      std::memcpy(&K, Ks + I, 8);
      D ^= K;
      std::memcpy(Dst + I, &D, 8);
    }
    for (; I < Chunk; ++I)
      Dst[I] ^= Ks[I];

    Counter += NumBlocks;
    Offset += Chunk;
  }
}

void UsubaCipher::ensureCtrProbe() {
  if (CtrProbeState != CtrProbe::Unknown)
    return;
  CtrProbeState = CtrProbe::Unsupported;
  if (Config.Id == CipherId::Chacha20 || blockBytes() != 8 ||
      !Runner->ctrFastShape())
    return;
  const bool Flat = Config.Slicing == SlicingMode::Bitslice;
  const unsigned Scale = Flat && StructuredBits > 1 ? StructuredBits : 1;
  if (AtomsPerBlockStructured * Scale != 64)
    return;

  // The block <-> atom conversions must be bit permutations: feeding the
  // block integer 1<<j in must light exactly one flat atom (with all 64
  // covered), and each flat output atom must land on exactly one block
  // bit. The derived maps are what runCtrBatch writes and gathers by.
  uint64_t Structured[64], FlatAtoms[64];
  uint8_t Block[8];
  bool InSeen[64] = {};
  for (unsigned J = 0; J < 64; ++J) {
    store64be(uint64_t{1} << J, Block);
    blockToAtoms(Block, Structured);
    const uint64_t *Atoms = Structured;
    if (Scale > 1) {
      expandAtomsToBits(Structured, AtomsPerBlockStructured, StructuredBits,
                        FlatAtoms);
      Atoms = FlatAtoms;
    }
    int Hot = -1;
    for (unsigned R = 0; R < 64; ++R) {
      if (Atoms[R] == 0)
        continue;
      if (Atoms[R] != 1 || Hot >= 0)
        return;
      Hot = static_cast<int>(R);
    }
    if (Hot < 0 || InSeen[Hot])
      return;
    InSeen[Hot] = true;
    CtrMap.InSlice[J] = static_cast<uint8_t>(Hot);
  }

  bool OutSeen[64] = {};
  for (unsigned R = 0; R < 64; ++R) {
    std::memset(FlatAtoms, 0, sizeof(FlatAtoms));
    FlatAtoms[R] = 1;
    const uint64_t *Atoms = FlatAtoms;
    if (Scale > 1) {
      collapseBitsToAtoms(FlatAtoms, AtomsPerBlockStructured, StructuredBits,
                          Structured);
      Atoms = Structured;
    }
    atomsToBlock(Atoms, Block);
    const uint64_t V = load64be(Block);
    if (V == 0 || (V & (V - 1)) != 0)
      return;
    unsigned J = 0;
    while (((V >> J) & 1) == 0)
      ++J;
    if (OutSeen[J])
      return;
    OutSeen[J] = true;
    CtrMap.OutSlice[J] = static_cast<uint8_t>(R);
  }
  CtrProbeState = CtrProbe::Ready;
}

bool UsubaCipher::ensureSpecRunner(uint64_t Epoch) {
  if (SpecRunner && SpecEpoch == Epoch && SpecKeyEpoch == KeyEpoch)
    return true;
  SpecRunner.reset();
  SpecNative.reset();
  SpecWorkers = EngineWorkers{};

  // The specialized artifact depends on the exact key material and the
  // epoch, so both go into the cache key (key material content-hashed —
  // FNV-1a — rather than by instance epoch).
  uint64_t Hash = 1469598103934665603ull;
  for (uint64_t A : KeyAtoms) {
    Hash ^= A;
    Hash *= 1099511628211ull;
  }
  std::string Key = kernelCacheKey(Config, "enc");
  Key += "|ctrspec=";
  Key += std::to_string(Epoch);
  Key += ':';
  Key += std::to_string(Hash);

  const bool CacheOn = Config.effectiveKernelCache();
  if (std::shared_ptr<const CachedKernel> Cached =
          kernelCacheLookup(Key, CacheOn)) {
    SpecRunner = std::make_unique<KernelRunner>(Cached->Kernel);
    SpecNative = attachCached(Config, *Cached, *SpecRunner);
    SpecEpoch = Epoch;
    SpecKeyEpoch = KeyEpoch;
    return true;
  }

  // Bind the epoch's counter bits (batch-constant within the epoch) and
  // every key broadcast bit to literals, then fold the constant cone.
  // The entry ABI is unchanged: bound inputs become dead registers, so
  // the fast path's counter writes and key packing stay valid.
  CompiledKernel Kernel = Runner->kernel();
  std::vector<std::pair<unsigned, uint64_t>> Bindings;
  for (unsigned J = 32; J < 64; ++J)
    Bindings.push_back({CtrMap.InSlice[J], (Epoch >> (J - 32)) & 1});
  const unsigned KeyBase = Runner->paramLens()[0];
  for (size_t I = 0; I < KeyAtoms.size(); ++I)
    Bindings.push_back(
        {static_cast<unsigned>(KeyBase + I), KeyAtoms[I] & 1});
  specializeEntryInputs(Kernel.Prog, Bindings);
  U0Function &Entry = Kernel.Prog.entry();
  foldConstants(Entry, Kernel.Prog.Direction, Kernel.Prog.MBits);
  valueNumber(Entry);
  sweepDeadCode(Entry);
  Kernel.InstrCount = Entry.Instrs.size();
  Kernel.KernelGates = countKernelGates(Entry);
  Kernel.KernelDepth = criticalPathLength(Entry);
  if (!verifyU0(Kernel.Prog).empty())
    return false; // never expected; keep the generic kernel on any doubt

  SpecRunner = std::make_unique<KernelRunner>(std::move(Kernel));
  SpecNative = attachNative(Config, *SpecRunner);
  kernelCacheStore(Key,
                   {SpecRunner->kernel(), SpecNative,
                    SpecRunner->fallbackReason(), SpecRunner->fallbackKind()},
                   CacheOn);
  SpecEpoch = Epoch;
  SpecKeyEpoch = KeyEpoch;
  return true;
}

std::vector<SlicingMode> UsubaCipher::supportedSlicings(CipherId Id,
                                                        const Arch &Target) {
  std::vector<SlicingMode> Out;
  for (SlicingMode Mode :
       {SlicingMode::Bitslice, SlicingMode::Vslice, SlicingMode::Hslice}) {
    CipherConfig Config;
    Config.Id = Id;
    Config.Slicing = Mode;
    Config.Target = &Target;
    Config.PreferNative = false;
    if (compile(Config))
      Out.push_back(Mode);
  }
  return Out;
}
