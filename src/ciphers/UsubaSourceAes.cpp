//===- UsubaSourceAes.cpp - AES-128 in Usuba --------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The hsliced AES program in the Käsper-Schwabe representation: the
/// 128-bit state is 8 atoms of 16 positions (atom j = bit plane j, atom
/// position p = state byte p, column-major). SubBytes is the 8->8 S-box
/// table (expanded to a circuit by the compiler); ShiftRows and the
/// column rotations of MixColumns are Shuffles on the 16 positions,
/// compiled to byte shuffles in horizontal mode and to free renamings
/// under -B. The S-box entries and shuffle patterns are generated from
/// the reference implementation's definitions.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

#include "ciphers/RefAes.h"

#include <string>

using namespace usuba;

namespace {

/// Formats a 16-position Shuffle pattern.
std::string patternText(unsigned (*From)(unsigned)) {
  std::string Out = "[";
  for (unsigned P = 0; P < 16; ++P) {
    Out += std::to_string(From(P));
    if (P != 15)
      Out += ", ";
  }
  return Out + "]";
}

/// ShiftRows: out byte (r, c) = in byte (r, (c + r) mod 4).
unsigned shiftRowsFrom(unsigned P) {
  unsigned Row = P % 4, Col = P / 4;
  return Row + 4 * ((Col + Row) % 4);
}
/// Column rotations of MixColumns: out byte (r, c) = in byte ((r+k)%4, c).
unsigned rot1From(unsigned P) { return (P % 4 + 1) % 4 + 4 * (P / 4); }
unsigned rot2From(unsigned P) { return (P % 4 + 2) % 4 + 4 * (P / 4); }
unsigned rot3From(unsigned P) { return (P % 4 + 3) % 4 + 4 * (P / 4); }

std::string buildAesSource() {
  std::string Out = "// AES-128 (FIPS-197), hsliced bit-plane "
                    "representation; generated tables.\n";
  Out += "table SubBytes (in:v8) returns (out:v8) {\n";
  for (unsigned Row = 0; Row < 16; ++Row) {
    Out += "  ";
    for (unsigned Col = 0; Col < 16; ++Col) {
      Out += std::to_string(aesSbox()[16 * Row + Col]);
      if (Row != 15 || Col != 15)
        Out += ",";
      if (Col != 15)
        Out += " ";
    }
    Out += "\n";
  }
  Out += "}\n\n";

  Out += "node ShiftRows (st:u16x8) returns (out:u16x8)\nlet\n";
  Out += "  forall j in [0,7] { out[j] = Shuffle(st[j], " +
         patternText(shiftRowsFrom) + ") }\ntel\n\n";

  Out += R"(node Xtime (x:u16x8) returns (out:u16x8)
let
  out[0] = x[7];
  out[1] = x[0] ^ x[7];
  out[2] = x[1];
  out[3] = x[2] ^ x[7];
  out[4] = x[3] ^ x[7];
  out[5] = x[4];
  out[6] = x[5];
  out[7] = x[6]
tel

)";

  Out += "node MixColumns (st:u16x8) returns (out:u16x8)\n"
         "vars r1:u16x8, r2:u16x8, r3:u16x8, x:u16x8, xt:u16x8\nlet\n";
  Out += "  forall j in [0,7] {\n";
  Out += "    r1[j] = Shuffle(st[j], " + patternText(rot1From) + ");\n";
  Out += "    r2[j] = Shuffle(st[j], " + patternText(rot2From) + ");\n";
  Out += "    r3[j] = Shuffle(st[j], " + patternText(rot3From) + ")\n";
  Out += "  }\n";
  Out += R"(  x = st ^ r1;
  xt = Xtime(x);
  out = ((xt ^ r1) ^ r2) ^ r3
tel

node AES (plain:u16x8, key:u16x8[11]) returns (cipher:u16x8)
vars st:u16x8[10]
let
  st[0] = plain ^ key[0];
  forall i in [1,9] {
    st[i] = MixColumns(ShiftRows(SubBytes(st[i-1]))) ^ key[i]
  }
  cipher = ShiftRows(SubBytes(st[9])) ^ key[10]
tel
)";
  return Out;
}

} // namespace

const std::string &usuba::aesSource() {
  static const std::string Source = buildAesSource();
  return Source;
}
