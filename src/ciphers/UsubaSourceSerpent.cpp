//===- UsubaSourceSerpent.cpp - Serpent in Usuba ---------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

using namespace usuba;

const std::string &usuba::serpentSource() {
  // Serpent (Biham, Anderson, Knudsen, 1998) in its bitsliced-mode
  // formulation: the state is 4 32-bit words x0..x3; the 4x4 S-boxes are
  // applied columnwise (nibble bit i = word i) and the linear transform
  // mixes the words with rotations and shifts. 32 rounds, 33 round keys
  // (key schedule in the runtime). Vertical slicing is the paper's
  // benchmarked mode; -B flattens it automatically.
  static const std::string Source = R"(
table S0 (in:v4) returns (out:v4) {
  3, 8, 15, 1, 10, 6, 5, 11, 14, 13, 4, 2, 7, 0, 9, 12
}
table S1 (in:v4) returns (out:v4) {
  15, 12, 2, 7, 9, 0, 5, 10, 1, 11, 14, 8, 6, 13, 3, 4
}
table S2 (in:v4) returns (out:v4) {
  8, 6, 7, 9, 3, 12, 10, 15, 13, 1, 14, 4, 0, 11, 5, 2
}
table S3 (in:v4) returns (out:v4) {
  0, 15, 11, 8, 12, 9, 6, 3, 13, 1, 2, 4, 10, 7, 5, 14
}
table S4 (in:v4) returns (out:v4) {
  1, 15, 8, 3, 12, 0, 11, 6, 2, 5, 4, 10, 9, 14, 7, 13
}
table S5 (in:v4) returns (out:v4) {
  15, 5, 2, 11, 4, 10, 9, 12, 0, 3, 14, 8, 13, 6, 7, 1
}
table S6 (in:v4) returns (out:v4) {
  7, 2, 12, 5, 8, 4, 6, 11, 14, 9, 1, 15, 13, 3, 10, 0
}
table S7 (in:v4) returns (out:v4) {
  1, 13, 15, 0, 14, 8, 2, 11, 7, 4, 12, 10, 9, 3, 5, 6
}

node LT (x:u32x4) returns (out:u32x4)
vars t0:u32, t1:u32, t2:u32, t3:u32, u1:u32, u3:u32
let
  t0 = x[0] <<< 13;
  t2 = x[2] <<< 3;
  t1 = (x[1] ^ t0) ^ t2;
  t3 = (x[3] ^ t2) ^ (t0 << 3);
  u1 = t1 <<< 1;
  u3 = t3 <<< 7;
  out[0] = ((t0 ^ u1) ^ u3) <<< 5;
  out[1] = u1;
  out[2] = ((t2 ^ u3) ^ (u1 << 7)) <<< 22;
  out[3] = u3
tel

node R0 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S0(x ^ k)) tel
node R1 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S1(x ^ k)) tel
node R2 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S2(x ^ k)) tel
node R3 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S3(x ^ k)) tel
node R4 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S4(x ^ k)) tel
node R5 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S5(x ^ k)) tel
node R6 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S6(x ^ k)) tel
node R7 (x:u32x4, k:u32x4) returns (out:u32x4) let out = LT(S7(x ^ k)) tel

node Serpent (plain:u32x4, key:u32x4[33]) returns (cipher:u32x4)
vars st:u32x4[32]
let
  st[0] = plain;
  forall g in [0,2] {
    st[8*g+1] = R0(st[8*g+0], key[8*g+0]);
    st[8*g+2] = R1(st[8*g+1], key[8*g+1]);
    st[8*g+3] = R2(st[8*g+2], key[8*g+2]);
    st[8*g+4] = R3(st[8*g+3], key[8*g+3]);
    st[8*g+5] = R4(st[8*g+4], key[8*g+4]);
    st[8*g+6] = R5(st[8*g+5], key[8*g+5]);
    st[8*g+7] = R6(st[8*g+6], key[8*g+6]);
    st[8*g+8] = R7(st[8*g+7], key[8*g+7])
  }
  st[25] = R0(st[24], key[24]);
  st[26] = R1(st[25], key[25]);
  st[27] = R2(st[26], key[26]);
  st[28] = R3(st[27], key[27]);
  st[29] = R4(st[28], key[28]);
  st[30] = R5(st[29], key[29]);
  st[31] = R6(st[30], key[30]);
  cipher = S7(st[31] ^ key[31]) ^ key[32]
tel
)";
  return Source;
}
