//===- RefPresent.h - Reference PRESENT implementation ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable PRESENT-80 (Bogdanov et al., CHES 2007), one of the
/// lightweight ciphers the paper's introduction motivates ("a niche left
/// vacant by AES"). Bundled as an extension beyond the paper's five
/// evaluation ciphers: its bit-permutation layer exercises Usuba's perm
/// construct exactly like DES's wire permutations.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFPRESENT_H
#define USUBA_CIPHERS_REFPRESENT_H

#include <cstdint>

namespace usuba {

inline constexpr unsigned PresentRounds = 31;

/// The PRESENT S-box and its bit permutation (P(i) = 16i mod 63).
extern const uint8_t PresentSbox[16];

/// Expands an 80-bit key (10 bytes, big-endian) into 32 round keys.
void presentKeySchedule80(const uint8_t Key[10], uint64_t RoundKeys[32]);

/// Encrypts/decrypts one 64-bit block (big-endian reading of 8 bytes).
uint64_t presentEncryptBlock(uint64_t Block, const uint64_t RoundKeys[32]);
uint64_t presentDecryptBlock(uint64_t Block, const uint64_t RoundKeys[32]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFPRESENT_H
