//===- RefAes.cpp - Reference AES-128 implementation ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/RefAes.h"

#include "support/BitUtils.h"

using namespace usuba;

namespace {

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1.
uint8_t gmul(uint8_t A, uint8_t B) {
  uint8_t Product = 0;
  for (unsigned Bit = 0; Bit < 8; ++Bit) {
    if (B & 1)
      Product ^= A;
    bool High = A & 0x80;
    A = static_cast<uint8_t>(A << 1);
    if (High)
      A ^= 0x1B;
    B >>= 1;
  }
  return Product;
}

uint8_t rotl8(uint8_t V, unsigned N) {
  return static_cast<uint8_t>(rotateLeft(V, N, 8));
}

struct SboxTables {
  uint8_t Forward[256];
  uint8_t Inverse[256];

  SboxTables() {
    // s(a) = affine(inverse(a)); inverse(0) = 0.
    for (unsigned A = 0; A < 256; ++A) {
      uint8_t Inv = 0;
      if (A != 0)
        for (unsigned B = 1; B < 256; ++B)
          if (gmul(static_cast<uint8_t>(A), static_cast<uint8_t>(B)) == 1) {
            Inv = static_cast<uint8_t>(B);
            break;
          }
      uint8_t S = static_cast<uint8_t>(Inv ^ rotl8(Inv, 1) ^ rotl8(Inv, 2) ^
                                       rotl8(Inv, 3) ^ rotl8(Inv, 4) ^ 0x63);
      Forward[A] = S;
      Inverse[S] = static_cast<uint8_t>(A);
    }
  }
};

const SboxTables &tables() {
  static const SboxTables Tables;
  return Tables;
}

} // namespace

const uint8_t *usuba::aesSbox() { return tables().Forward; }
const uint8_t *usuba::aesInvSbox() { return tables().Inverse; }

void usuba::aes128KeySchedule(const uint8_t Key[16],
                              uint8_t RoundKeys[11][16]) {
  uint8_t W[44][4];
  for (unsigned I = 0; I < 4; ++I)
    for (unsigned J = 0; J < 4; ++J)
      W[I][J] = Key[4 * I + J];
  uint8_t Rcon = 1;
  for (unsigned I = 4; I < 44; ++I) {
    uint8_t Temp[4] = {W[I - 1][0], W[I - 1][1], W[I - 1][2], W[I - 1][3]};
    if (I % 4 == 0) {
      uint8_t First = Temp[0];
      for (unsigned J = 0; J < 3; ++J)
        Temp[J] = aesSbox()[Temp[J + 1]];
      Temp[3] = aesSbox()[First];
      Temp[0] ^= Rcon;
      Rcon = gmul(Rcon, 2);
    }
    for (unsigned J = 0; J < 4; ++J)
      W[I][J] = W[I - 4][J] ^ Temp[J];
  }
  for (unsigned Round = 0; Round < 11; ++Round)
    for (unsigned I = 0; I < 16; ++I)
      RoundKeys[Round][I] = W[4 * Round + I / 4][I % 4];
}

namespace {

/// State byte index p = row (p mod 4), column (p div 4) — the FIPS-197
/// mapping from the input byte sequence.
void addRoundKey(uint8_t State[16], const uint8_t Key[16]) {
  for (unsigned I = 0; I < 16; ++I)
    State[I] ^= Key[I];
}

void subBytes(uint8_t State[16], const uint8_t *Box) {
  for (unsigned I = 0; I < 16; ++I)
    State[I] = Box[State[I]];
}

void shiftRows(uint8_t State[16], bool Inverse) {
  uint8_t Out[16];
  for (unsigned P = 0; P < 16; ++P) {
    unsigned Row = P % 4, Col = P / 4;
    unsigned From = Inverse ? Row + 4 * ((Col + 4 - Row) % 4)
                            : Row + 4 * ((Col + Row) % 4);
    Out[P] = State[From];
  }
  for (unsigned I = 0; I < 16; ++I)
    State[I] = Out[I];
}

void mixColumns(uint8_t State[16], bool Inverse) {
  static const uint8_t Forward[4] = {2, 3, 1, 1};
  static const uint8_t Backward[4] = {14, 11, 13, 9};
  const uint8_t *Coef = Inverse ? Backward : Forward;
  for (unsigned Col = 0; Col < 4; ++Col) {
    uint8_t In[4], Out[4];
    for (unsigned Row = 0; Row < 4; ++Row)
      In[Row] = State[Row + 4 * Col];
    for (unsigned Row = 0; Row < 4; ++Row) {
      Out[Row] = 0;
      for (unsigned K = 0; K < 4; ++K)
        Out[Row] ^= gmul(Coef[(K + 4 - Row) % 4], In[K]);
    }
    for (unsigned Row = 0; Row < 4; ++Row)
      State[Row + 4 * Col] = Out[Row];
  }
}

} // namespace

void usuba::aesEncryptBlock(uint8_t Block[16],
                            const uint8_t RoundKeys[11][16]) {
  addRoundKey(Block, RoundKeys[0]);
  for (unsigned Round = 1; Round <= 9; ++Round) {
    subBytes(Block, aesSbox());
    shiftRows(Block, /*Inverse=*/false);
    mixColumns(Block, /*Inverse=*/false);
    addRoundKey(Block, RoundKeys[Round]);
  }
  subBytes(Block, aesSbox());
  shiftRows(Block, /*Inverse=*/false);
  addRoundKey(Block, RoundKeys[10]);
}

void usuba::aesDecryptBlock(uint8_t Block[16],
                            const uint8_t RoundKeys[11][16]) {
  addRoundKey(Block, RoundKeys[10]);
  shiftRows(Block, /*Inverse=*/true);
  subBytes(Block, aesInvSbox());
  for (unsigned Round = 9; Round >= 1; --Round) {
    addRoundKey(Block, RoundKeys[Round]);
    mixColumns(Block, /*Inverse=*/true);
    shiftRows(Block, /*Inverse=*/true);
    subBytes(Block, aesInvSbox());
  }
  addRoundKey(Block, RoundKeys[0]);
}

void usuba::aesBlockToAtoms(const uint8_t Block[16], uint64_t Atoms[8]) {
  for (unsigned J = 0; J < 8; ++J) {
    uint64_t Atom = 0;
    for (unsigned P = 0; P < 16; ++P)
      Atom |= static_cast<uint64_t>((Block[P] >> J) & 1) << (15 - P);
    Atoms[J] = Atom;
  }
}

void usuba::aesAtomsToBlock(const uint64_t Atoms[8], uint8_t Block[16]) {
  for (unsigned P = 0; P < 16; ++P) {
    uint8_t Byte = 0;
    for (unsigned J = 0; J < 8; ++J)
      Byte |= static_cast<uint8_t>(((Atoms[J] >> (15 - P)) & 1) << J);
    Block[P] = Byte;
  }
}
