//===- UsubaSources.cpp - The Usuba programs of the evaluation ------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

using namespace usuba;

//===----------------------------------------------------------------------===//
// Rectangle (paper Figure 1)
//===----------------------------------------------------------------------===//

const std::string &usuba::rectangleSource() {
  static const std::string Source = R"(
// Rectangle (Zhang et al., 2014), as in Figure 1 of the Usuba paper.
// State: 4 rows of 16 bits. S-box input/output bit i = row i.
table SubColumn (in:v4) returns (out:v4) {
  6, 5, 12, 10, 1, 14, 7, 9,
  11, 0, 3, 13, 8, 15, 4, 2
}

node ShiftRows (input:u16x4) returns (out:u16x4)
let
  out[0] = input[0];
  out[1] = input[1] <<< 1;
  out[2] = input[2] <<< 12;
  out[3] = input[3] <<< 13
tel

node Rectangle (plain:u16x4, key:u16x4[26]) returns (cipher:u16x4)
vars round : u16x4[26]
let
  round[0] = plain;
  forall i in [0,24] {
    round[i+1] = ShiftRows(SubColumn(round[i] ^ key[i]))
  }
  cipher = round[25] ^ key[25]
tel
)";
  return Source;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

std::vector<BundledProgram> usuba::bundledPrograms() {
  return {
      {"rectangle", rectangleSource()},
      {"des", desSource()},
      {"aes", aesSource()},
      {"chacha20", chacha20Source()},
      {"serpent", serpentSource()},
      {"present", presentSource()},
      {"trivium", triviumSource()},
      {"rectangle_dec", rectangleDecSource()},
      {"serpent_dec", serpentDecSource()},
      {"present_dec", presentDecSource()},
      {"aes_dec", aesDecSource()},
  };
}

//===----------------------------------------------------------------------===//
// Placeholders (filled in by their own translation units below)
//===----------------------------------------------------------------------===//
