//===- UsubaSourceTrivium.cpp - Trivium in Usuba ----------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

using namespace usuba;

const std::string &usuba::triviumSource() {
  // The paper's future-work example realized: Trivium's taps sit at
  // least 64 positions behind the feedback insertions (a new bit first
  // influences anything 66 steps later), so 64 steps form a combinational
  // function of the current 288-bit state — expressible in Usuba as a
  // stateless node the caller iterates. Vector index i holds the spec's
  // s(i+1); z[0] is the first keystream bit of the 64.
  static const std::string Source = R"(
node Trivium64 (s:b288) returns (z:b64, n:b288)
vars a:b64, b:b64, c:b64, t1:b64, t2:b64, t3:b64
let
  forall i in [0,63] {
    a[i] = s[65-i] ^ s[92-i];
    b[i] = s[161-i] ^ s[176-i];
    c[i] = s[242-i] ^ s[287-i];
    z[i] = (a[i] ^ b[i]) ^ c[i];
    t1[i] = a[i] ^ ((s[90-i] & s[91-i]) ^ s[170-i]);
    t2[i] = b[i] ^ ((s[174-i] & s[175-i]) ^ s[263-i]);
    t3[i] = c[i] ^ ((s[285-i] & s[286-i]) ^ s[68-i])
  }
  forall i in [0,63] {
    n[63-i] = t3[i];
    n[156-i] = t1[i];
    n[240-i] = t2[i]
  }
  n[64..92] = s[0..28];
  n[157..176] = s[93..112];
  n[241..287] = s[177..223]
tel
)";
  return Source;
}
