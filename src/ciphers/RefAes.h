//===- RefAes.h - Reference AES-128 implementation --------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable byte-oriented AES-128 (FIPS-197): correctness oracle and
/// Table 3 baseline. The S-box is computed from first principles
/// (GF(2^8) inversion + affine map) and shared with the generator of the
/// hsliced Usuba source. Includes the conversions between 16-byte blocks
/// and the Käsper-Schwabe bit-plane representation the kernel uses.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFAES_H
#define USUBA_CIPHERS_REFAES_H

#include <cstdint>

namespace usuba {

/// The AES S-box (computed once, cached).
const uint8_t *aesSbox();
/// Its inverse.
const uint8_t *aesInvSbox();

/// Expands a 128-bit key into 11 round keys of 16 bytes.
void aes128KeySchedule(const uint8_t Key[16], uint8_t RoundKeys[11][16]);

/// Encrypts/decrypts one 16-byte block in place.
void aesEncryptBlock(uint8_t Block[16], const uint8_t RoundKeys[11][16]);
void aesDecryptBlock(uint8_t Block[16], const uint8_t RoundKeys[11][16]);

/// Conversions to the kernel representation: 8 atoms of 16 positions;
/// atom j, position p (= state byte index p) holds bit j of byte p.
/// Positions map to atom-value bits MSB-first (position p = bit 15-p),
/// matching the runtime layout convention.
void aesBlockToAtoms(const uint8_t Block[16], uint64_t Atoms[8]);
void aesAtomsToBlock(const uint64_t Atoms[8], uint8_t Block[16]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFAES_H
