//===- UsubaSourceDes.cpp - DES in Usuba ------------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The DES Usuba program is generated from the specification tables of
/// DesTables.h: permutations are emitted verbatim (Usuba's perm construct
/// is 1-based, like FIPS-46), while S-boxes are re-indexed from the
/// spec's (row = b1b6, column = b2b3b4b5) layout into the compiler's flat
/// wire convention (input wire i = bit i of the table index, wire 0
/// carrying b1; output wire 0 carrying the substitution's leftmost bit).
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

#include "ciphers/DesTables.h"
#include "support/BitUtils.h"

#include <string>

using namespace usuba;

namespace {

std::string permDef(const char *Name, const char *InTy, const char *OutTy,
                    const uint8_t *Indices, unsigned Count) {
  std::string Out = std::string("perm ") + Name + " (in:" + InTy +
                    ") returns (out:" + OutTy + ") {\n  ";
  for (unsigned I = 0; I < Count; ++I) {
    Out += std::to_string(Indices[I]);
    if (I + 1 != Count)
      Out += I % 16 == 15 ? ",\n  " : ", ";
  }
  Out += "\n}\n\n";
  return Out;
}

/// Re-indexes S-box \p Box into the flat wire convention:
///   flat[index] has wire j = leftmost output bit j of
///   S[row = b1b6][col = b2b3b4b5], where bk = bit (k-1) of index.
std::string sboxDef(unsigned Box) {
  std::string Out =
      "table S" + std::to_string(Box + 1) + " (in:b6) returns (out:b4) {\n  ";
  for (unsigned Index = 0; Index < 64; ++Index) {
    unsigned B1 = Index & 1, B2 = (Index >> 1) & 1, B3 = (Index >> 2) & 1;
    unsigned B4 = (Index >> 3) & 1, B5 = (Index >> 4) & 1,
             B6 = (Index >> 5) & 1;
    unsigned Row = (B1 << 1) | B6;
    unsigned Col = (B2 << 3) | (B3 << 2) | (B4 << 1) | B5;
    unsigned Value = des::Sboxes[Box][Row][Col];
    // Output wire 0 is the substitution's leftmost (most significant)
    // bit, and the compiler reads entry bit j as wire j: reverse.
    unsigned Entry = 0;
    for (unsigned J = 0; J < 4; ++J)
      Entry |= ((Value >> (3 - J)) & 1u) << J;
    Out += std::to_string(Entry);
    if (Index != 63)
      Out += Index % 16 == 15 ? ",\n  " : ", ";
  }
  Out += "\n}\n\n";
  return Out;
}

std::string buildDesSource() {
  std::string Out = "// DES (FIPS-46), bitsliced; generated from the "
                    "specification tables.\n";
  Out += permDef("InitialPerm", "b64", "b64", des::IP, 64);
  Out += permDef("FinalPerm", "b64", "b64", des::FP, 64);
  Out += permDef("Expand", "b32", "b48", des::E, 48);
  Out += permDef("PermP", "b32", "b32", des::P, 32);
  for (unsigned Box = 0; Box < 8; ++Box)
    Out += sboxDef(Box);

  Out += R"(node Feistel (right:b32, k:b48) returns (out:b32)
vars e:b48, s:b32
let
  e = Expand(right) ^ k;
  s[0..3]   = S1(e[0..5]);
  s[4..7]   = S2(e[6..11]);
  s[8..11]  = S3(e[12..17]);
  s[12..15] = S4(e[18..23]);
  s[16..19] = S5(e[24..29]);
  s[20..23] = S6(e[30..35]);
  s[24..27] = S7(e[36..41]);
  s[28..31] = S8(e[42..47]);
  out = PermP(s)
tel

node DES (plain:b64, key:b48[16]) returns (cipher:b64)
vars ip:b64, pre:b64, l:b32[17], r:b32[17]
let
  ip = InitialPerm(plain);
  l[0] = ip[0..31];
  r[0] = ip[32..63];
  forall i in [0,15] {
    l[i+1] = r[i];
    r[i+1] = l[i] ^ Feistel(r[i], key[i])
  }
  pre = (r[16], l[16]);
  cipher = FinalPerm(pre)
tel
)";
  return Out;
}

} // namespace

const std::string &usuba::desSource() {
  static const std::string Source = buildDesSource();
  return Source;
}
