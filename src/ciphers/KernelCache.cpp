//===- KernelCache.cpp - Process-wide compiled-kernel cache ---------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ciphers/KernelCache.h"

#include "cbackend/NativeJit.h"
#include "ciphers/UsubaCipher.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace usuba;

namespace {

struct CacheState {
  std::mutex M;
  std::map<std::string, std::shared_ptr<const CachedKernel>> Entries;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

CacheState &state() {
  static CacheState *S = new CacheState; // leaked: dlopen handles inside
                                         // entries must outlive users
  return *S;
}

void appendEnv(std::string &Key, const char *Name) {
  Key += '|';
  Key += Name;
  Key += '=';
  if (const char *Value = std::getenv(Name))
    Key += Value;
}

} // namespace

bool usuba::kernelCacheEnabled() {
  const char *Env = std::getenv("USUBA_KERNEL_CACHE");
  return !(Env && Env[0] == '0');
}

std::string usuba::kernelCacheKey(const CipherConfig &Config,
                                  const char *Variant) {
  // The runtime-dispatch sentinel must be resolved to a concrete arch
  // before any cache traffic: keying on "auto" would alias kernels
  // compiled on differently-capable hosts. UsubaCipher::compileAuto
  // rewrites Target before recursing into the pinned compile.
  assert(Config.Target != &archAuto() &&
         "archAuto() sentinel reached the kernel cache unresolved");
  const Arch &Target = Config.Target ? *Config.Target : archGP64();
  std::string Key;
  Key += cipherName(Config.Id);
  Key += '|';
  Key += slicingName(Config.Slicing);
  Key += '|';
  Key += Target.Name;
  Key += '|';
  Key += Config.Inline ? 'I' : 'i';
  Key += Config.Unroll ? 'U' : 'u';
  Key += Config.Interleave ? 'L' : 'l';
  Key += Config.Schedule ? 'S' : 's';
  Key += Config.PreferNative ? 'N' : 'n';
  // The mid-end optimizer changes the compiled artifact like any other
  // back-end toggle (and resolves through an env default, so it must be
  // in the key even for default-constructed configs).
  Key += Config.effectiveOptimize() ? 'O' : 'o';
  // A validated compile can demote itself to -O0 mid-pipeline, and the
  // test-only miscompile injection corrupts the artifact outright —
  // neither may share a key with a clean compile.
  Key += Config.effectiveValidatePasses() ? 'V' : 'v';
  if (Config.DebugMiscompilePass) {
    Key += "|miscompile=";
    Key += Config.DebugMiscompilePass;
  }
  Key += '|';
  Key += std::to_string(Config.InterleaveFactorOverride);
  Key += '|';
  Key += Variant;
  // The JIT shells out to an environment-selected compiler: its identity
  // is part of what the cached artifact depends on.
  appendEnv(Key, "USUBA_CC");
  appendEnv(Key, "CC");
  // JIT policy as the typed knobs resolve it (explicit > env > default).
  // An empty opt level means the per-kernel size heuristic, which is
  // deterministic from the kernel and so safe to share under one key.
  Key += "|opt=";
  if (!Config.JitOptLevel.empty())
    Key += Config.JitOptLevel;
  else if (const char *Env = std::getenv("USUBA_JIT_OPT"))
    Key += Env;
  Key += "|ccms=";
  Key += std::to_string(Config.effectiveCcTimeoutMillis());
  // Deliberately absent: Threads (a pure runtime scheduling knob — the
  // same artifact serves any participant count) and SpecializeCtr (the
  // per-(key,epoch) specialized clone is stored under this key plus a
  // "|ctrspec=<epoch>:<key-hash>" suffix, so the base artifact is shared
  // and the clones never alias across keys or epochs).
  return Key;
}

std::shared_ptr<const CachedKernel>
usuba::kernelCacheLookup(const std::string &Key, bool Enabled) {
  if (!Enabled)
    return nullptr;
  CacheState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Entries.find(Key);
  if (It == S.Entries.end()) {
    ++S.Misses;
    telemetryCount("kernelcache.misses");
    return nullptr;
  }
  ++S.Hits;
  telemetryCount("kernelcache.hits");
  return It->second;
}

void usuba::kernelCacheStore(const std::string &Key, CachedKernel Entry,
                             bool Enabled) {
  if (!Enabled)
    return;
  telemetryCount("kernelcache.stores");
  CacheState &S = state();
  auto Shared = std::make_shared<const CachedKernel>(std::move(Entry));
  std::lock_guard<std::mutex> Lock(S.M);
  S.Entries.emplace(Key, std::move(Shared)); // first writer wins
}

void usuba::kernelCacheClear() {
  CacheState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Entries.clear();
  S.Hits = S.Misses = 0;
}

KernelCacheStats usuba::kernelCacheStats() {
  CacheState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return {S.Hits, S.Misses, static_cast<uint64_t>(S.Entries.size())};
}
