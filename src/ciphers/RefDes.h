//===- RefDes.h - Reference DES implementation ------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable bit-level DES (FIPS-46): correctness oracle and Table 3
/// baseline, plus the key schedule shared with the Usuba-compiled kernel
/// (the paper benchmarks the primitive with the key schedule outside it).
/// Blocks are uint64_t with DES bit k (1-based, leftmost) at word bit
/// 64-k — i.e. the natural big-endian reading of the 8-byte block.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_REFDES_H
#define USUBA_CIPHERS_REFDES_H

#include <cstdint>

namespace usuba {

/// Derives the 16 48-bit subkeys (subkey bit j, 1-based, at word bit
/// 48-j) from the 64-bit key (parity bits ignored).
void desKeySchedule(uint64_t Key, uint64_t Subkeys[16]);

/// Encrypts/decrypts one 64-bit block with precomputed subkeys.
uint64_t desEncryptBlock(uint64_t Block, const uint64_t Subkeys[16]);
uint64_t desDecryptBlock(uint64_t Block, const uint64_t Subkeys[16]);

/// Conversions between packed blocks and the kernel's atom vectors
/// (atom i = DES bit i+1).
void desBlockToAtoms(uint64_t Block, uint64_t Atoms[64]);
uint64_t desAtomsToBlock(const uint64_t Atoms[64]);
void desSubkeysToAtoms(const uint64_t Subkeys[16], uint64_t Atoms[768]);

} // namespace usuba

#endif // USUBA_CIPHERS_REFDES_H
