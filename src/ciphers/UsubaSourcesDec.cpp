//===- UsubaSourcesDec.cpp - Decryption kernels in Usuba --------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Inverse ciphers, expressed in Usuba like the forward ones (the paper
/// needs only encryption for CTR, but a block-cipher library without ECB
/// decryption is incomplete). Inverse S-boxes are computed from the
/// forward tables; descending round loops are written with ascending
/// `forall`s and index arithmetic. DES needs no inverse kernel (its
/// Feistel structure decrypts by reversing the subkeys, handled in the
/// runtime); Trivium is a stream cipher.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"

#include "ciphers/RefAes.h"
#include "ciphers/RefPresent.h"

#include <string>

using namespace usuba;

namespace {

unsigned reverse4(unsigned V) {
  return ((V & 1) << 3) | ((V & 2) << 1) | ((V & 4) >> 1) | ((V & 8) >> 3);
}

std::string tableText(const char *Name, const char *Ty,
                      const unsigned *Entries, unsigned Count) {
  std::string Out = std::string("table ") + Name + " (in:" + Ty +
                    ") returns (out:" + Ty + ") {\n  ";
  for (unsigned I = 0; I < Count; ++I) {
    Out += std::to_string(Entries[I]);
    if (I + 1 != Count)
      Out += I % 16 == 15 ? ",\n  " : ", ";
  }
  return Out + "\n}\n\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Rectangle
//===----------------------------------------------------------------------===//

const std::string &usuba::rectangleDecSource() {
  static const std::string Source = [] {
    // Invert the paper's S-box.
    const unsigned Sbox[16] = {6, 5, 12, 10, 1, 14, 7, 9,
                               11, 0, 3, 13, 8, 15, 4, 2};
    unsigned Inv[16];
    for (unsigned I = 0; I < 16; ++I)
      Inv[Sbox[I]] = I;
    std::string Out = tableText("InvSubColumn", "v4", Inv, 16);
    Out += R"(node InvShiftRows (input:u16x4) returns (out:u16x4)
let
  out[0] = input[0];
  out[1] = input[1] >>> 1;
  out[2] = input[2] >>> 12;
  out[3] = input[3] >>> 13
tel

node RectangleDec (cipher:u16x4, key:u16x4[26]) returns (plain:u16x4)
vars round : u16x4[26]
let
  round[25] = cipher ^ key[25];
  forall i in [0,24] {
    round[24-i] = InvSubColumn(InvShiftRows(round[25-i])) ^ key[24-i]
  }
  plain = round[0]
tel
)";
    return Out;
  }();
  return Source;
}

//===----------------------------------------------------------------------===//
// Serpent
//===----------------------------------------------------------------------===//

const std::string &usuba::serpentDecSource() {
  static const std::string Source = [] {
    const unsigned Sboxes[8][16] = {
        {3, 8, 15, 1, 10, 6, 5, 11, 14, 13, 4, 2, 7, 0, 9, 12},
        {15, 12, 2, 7, 9, 0, 5, 10, 1, 11, 14, 8, 6, 13, 3, 4},
        {8, 6, 7, 9, 3, 12, 10, 15, 13, 1, 14, 4, 0, 11, 5, 2},
        {0, 15, 11, 8, 12, 9, 6, 3, 13, 1, 2, 4, 10, 7, 5, 14},
        {1, 15, 8, 3, 12, 0, 11, 6, 2, 5, 4, 10, 9, 14, 7, 13},
        {15, 5, 2, 11, 4, 10, 9, 12, 0, 3, 14, 8, 13, 6, 7, 1},
        {7, 2, 12, 5, 8, 4, 6, 11, 14, 9, 1, 15, 13, 3, 10, 0},
        {1, 13, 15, 0, 14, 8, 2, 11, 7, 4, 12, 10, 9, 3, 5, 6}};
    std::string Out;
    for (unsigned Box = 0; Box < 8; ++Box) {
      unsigned Inv[16];
      for (unsigned I = 0; I < 16; ++I)
        Inv[Sboxes[Box][I]] = I;
      Out += tableText(("InvS" + std::to_string(Box)).c_str(), "v4", Inv,
                       16);
    }
    Out += R"(node InvLT (y:u32x4) returns (x:u32x4)
vars u0:u32, u2:u32, t0:u32, t1:u32, t2:u32, t3:u32
let
  u2 = y[2] >>> 22;
  u0 = y[0] >>> 5;
  t2 = (u2 ^ y[3]) ^ (y[1] << 7);
  t0 = (u0 ^ y[1]) ^ y[3];
  t3 = y[3] >>> 7;
  t1 = y[1] >>> 1;
  x[3] = (t3 ^ t2) ^ (t0 << 3);
  x[1] = (t1 ^ t0) ^ t2;
  x[2] = t2 >>> 3;
  x[0] = t0 >>> 13
tel

)";
    for (unsigned Box = 0; Box < 8; ++Box)
      Out += "node InvR" + std::to_string(Box) +
             " (x:u32x4, k:u32x4) returns (out:u32x4) "
             "let out = InvS" +
             std::to_string(Box) + "(InvLT(x)) ^ k tel\n";
    Out += R"(
node SerpentDec (cipher:u32x4, key:u32x4[33]) returns (plain:u32x4)
vars st:u32x4[32]
let
  st[31] = InvS7(cipher ^ key[32]) ^ key[31];
)";
    // Rounds 30..0: st[r] = InvS_{r mod 8}(InvLT(st[r+1])) ^ key[r],
    // written as explicit equations (the S-box index cycles).
    for (int Round = 30; Round >= 0; --Round)
      Out += "  st[" + std::to_string(Round) + "] = InvR" +
             std::to_string(Round % 8) + "(st[" +
             std::to_string(Round + 1) + "], key[" +
             std::to_string(Round) + "]);\n";
    Out += "  plain = st[0]\ntel\n";
    return Out;
  }();
  return Source;
}

//===----------------------------------------------------------------------===//
// PRESENT
//===----------------------------------------------------------------------===//

const std::string &usuba::presentDecSource() {
  static const std::string Source = [] {
    // Inverse S-box in the compiler's wire convention (see
    // UsubaSourcePresent.cpp).
    unsigned Inv[16], Entries[16];
    for (unsigned I = 0; I < 16; ++I)
      Inv[PresentSbox[I]] = I;
    for (unsigned Index = 0; Index < 16; ++Index)
      Entries[Index] = reverse4(Inv[reverse4(Index)]);
    std::string Out = tableText("InvSbox", "b4", Entries, 16);

    // Inverse pLayer: output bit t takes input bit P(t) = 16t mod 63.
    Out += "perm InvPLayer (in:b64) returns (out:b64) {\n  ";
    for (unsigned I = 0; I < 64; ++I) {
      unsigned OutBit = 63 - I;
      unsigned InBit = OutBit == 63 ? 63 : (16 * OutBit) % 63;
      Out += std::to_string(64 - InBit);
      if (I != 63)
        Out += I % 16 == 15 ? ",\n  " : ", ";
    }
    Out += "\n}\n\n";

    Out += R"(node InvRound (state:b64, k:b64) returns (out:b64)
vars t:b64, u:b64
let
  t = InvPLayer(state);
  forall i in [0,15] {
    u[4*i..4*i+3] = InvSbox(t[4*i..4*i+3])
  }
  out = u ^ k
tel

node PresentDec (cipher:b64, key:b64[32]) returns (plain:b64)
vars r:b64[32]
let
  r[0] = cipher ^ key[31];
  forall i in [0,30] {
    r[i+1] = InvRound(r[i], key[30-i])
  }
  plain = r[31]
tel
)";
    return Out;
  }();
  return Source;
}

//===----------------------------------------------------------------------===//
// AES-128
//===----------------------------------------------------------------------===//

const std::string &usuba::aesDecSource() {
  static const std::string Source = [] {
    std::string Out = "// AES-128 decryption; InvMixColumns uses the\n"
                      "// order-4 identity InvMC = MC^3.\n";
    Out += "table InvSubBytes (in:v8) returns (out:v8) {\n";
    for (unsigned Row = 0; Row < 16; ++Row) {
      Out += "  ";
      for (unsigned Col = 0; Col < 16; ++Col) {
        Out += std::to_string(aesInvSbox()[16 * Row + Col]);
        if (Row != 15 || Col != 15)
          Out += ",";
        if (Col != 15)
          Out += " ";
      }
      Out += "\n";
    }
    Out += "}\n\n";

    // Inverse ShiftRows: out byte (r, c) = in byte (r, (c - r) mod 4).
    Out += "node InvShiftRows (st:u16x8) returns (out:u16x8)\nlet\n"
           "  forall j in [0,7] { out[j] = Shuffle(st[j], [";
    for (unsigned P = 0; P < 16; ++P) {
      unsigned Row = P % 4, Col = P / 4;
      Out += std::to_string(Row + 4 * ((Col + 4 - Row) % 4));
      if (P != 15)
        Out += ", ";
    }
    Out += "]) }\ntel\n\n";

    // Reuse the forward MixColumns structure (duplicated here so the
    // decryption program is self-contained).
    auto Rot = [&](unsigned K) {
      std::string Pattern = "[";
      for (unsigned P = 0; P < 16; ++P) {
        Pattern += std::to_string((P % 4 + K) % 4 + 4 * (P / 4));
        if (P != 15)
          Pattern += ", ";
      }
      return Pattern + "]";
    };
    Out += R"(node Xtime (x:u16x8) returns (out:u16x8)
let
  out[0] = x[7];
  out[1] = x[0] ^ x[7];
  out[2] = x[1];
  out[3] = x[2] ^ x[7];
  out[4] = x[3] ^ x[7];
  out[5] = x[4];
  out[6] = x[5];
  out[7] = x[6]
tel

)";
    Out += "node MixColumns (st:u16x8) returns (out:u16x8)\n"
           "vars r1:u16x8, r2:u16x8, r3:u16x8, x:u16x8, xt:u16x8\nlet\n";
    Out += "  forall j in [0,7] {\n";
    Out += "    r1[j] = Shuffle(st[j], " + Rot(1) + ");\n";
    Out += "    r2[j] = Shuffle(st[j], " + Rot(2) + ");\n";
    Out += "    r3[j] = Shuffle(st[j], " + Rot(3) + ")\n";
    Out += "  }\n";
    Out += R"(  x = st ^ r1;
  xt = Xtime(x);
  out = ((xt ^ r1) ^ r2) ^ r3
tel

node InvMixColumns (st:u16x8) returns (out:u16x8)
let
  out = MixColumns(MixColumns(MixColumns(st)))
tel

node AesDec (cipher:u16x8, key:u16x8[11]) returns (plain:u16x8)
vars st:u16x8[10]
let
  st[0] = InvSubBytes(InvShiftRows(cipher ^ key[10]));
  forall i in [1,9] {
    st[i] = InvSubBytes(InvShiftRows(InvMixColumns(st[i-1] ^ key[10-i])))
  }
  plain = st[9] ^ key[0]
tel
)";
    return Out;
  }();
  return Source;
}
