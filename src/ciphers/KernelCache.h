//===- KernelCache.h - Process-wide compiled-kernel cache -------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of compiled cipher kernels, keyed on a
/// canonicalized CipherConfig. Benches and servers that instantiate the
/// same cipher repeatedly (the ablation sweeps re-create each
/// configuration per measurement, a server re-creates one per
/// connection) skip both the Usubac pipeline and the host-compiler JIT
/// on every hit.
///
/// The key covers everything that changes the compiled artifact: cipher,
/// slicing, target architecture, the back-end toggles, the JIT policy
/// (PreferNative), the *effective* JIT knobs (the typed CipherConfig
/// fields JitOptLevel / CcTimeoutMillis after environment fallback) and
/// — because the JIT shells out to an environment-selected host compiler
/// — the USUBA_CC / CC environment values in effect. Entries store the
/// CompiledKernel (copied out per cipher instance; a KernelRunner owns
/// its program) plus the shared dlopen'd NativeKernel, which is
/// re-entrant and safely shared across instances and threads. A failed
/// JIT attempt is cached too (as a null NativeKernel with the fallback
/// kind and note) so a fleet of instances does not re-run a doomed
/// host-compiler invocation; changing the JIT knobs changes the key and
/// retries.
///
/// Participation: CipherConfig::UseKernelCache when set, else enabled
/// unless USUBA_KERNEL_CACHE=0 (checked per lookup/store, so tests can
/// flip it). Lookups and stores feed the kernelcache.* telemetry
/// counters when telemetry is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CIPHERS_KERNELCACHE_H
#define USUBA_CIPHERS_KERNELCACHE_H

#include "core/Compiler.h"

#include <cstdint>
#include <memory>
#include <string>

namespace usuba {

class NativeKernel;
struct CipherConfig;
enum class EngineFallback : uint8_t;

/// One cached compilation result.
struct CachedKernel {
  CompiledKernel Kernel;
  /// Shared native code (may be null when the JIT failed, was skipped,
  /// or the host cannot run the target ISA).
  std::shared_ptr<NativeKernel> Native;
  /// The degradation-ladder note to install when Native is null but
  /// native execution was requested.
  std::string EngineNote;
  /// The structured fallback kind matching EngineNote (value-initialized
  /// to EngineFallback::None).
  EngineFallback FallbackKind{};
};

/// The canonical cache key for \p Config compiling \p Variant
/// ("enc"/"dec"). Includes the effective JIT knobs and the compiler
/// identity environment.
std::string kernelCacheKey(const CipherConfig &Config, const char *Variant);

/// The environment default: true unless USUBA_KERNEL_CACHE=0. Callers
/// holding a CipherConfig should pass Config.effectiveKernelCache() to
/// lookup/store instead, which lets the typed knob override this.
bool kernelCacheEnabled();

/// Returns the cached entry for \p Key, or null on a miss (or when
/// \p Enabled is false). Thread-safe.
std::shared_ptr<const CachedKernel>
kernelCacheLookup(const std::string &Key, bool Enabled = kernelCacheEnabled());

/// Stores \p Entry under \p Key (no-op when \p Enabled is false).
/// Thread-safe; an existing entry is kept (first writer wins).
void kernelCacheStore(const std::string &Key, CachedKernel Entry,
                      bool Enabled = kernelCacheEnabled());

/// Drops every entry (tests; also frees the dlopen handles of unused
/// kernels).
void kernelCacheClear();

/// Cache observability for tests and benches.
struct KernelCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Entries = 0;
};
KernelCacheStats kernelCacheStats();

} // namespace usuba

#endif // USUBA_CIPHERS_KERNELCACHE_H
