//===- Interpreter.cpp - Usuba0 reference execution -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

using namespace usuba;

Interpreter::Interpreter(const U0Program &Prog)
    : Prog(Prog),
      Words((Prog.Target ? Prog.Target->SliceBits : 64) / 64),
      Scratch(Prog.entry().NumRegs) {
  assert(verifyU0(Prog).empty() && "interpreting ill-formed program");
}

void Interpreter::run(const SimdReg *Inputs, SimdReg *Outputs) {
  const U0Function &Entry = Prog.entry();
  for (unsigned I = 0; I < Entry.NumInputs; ++I)
    Scratch[I] = Inputs[I];
  runFunction(Entry, Scratch);
  for (size_t I = 0; I < Entry.Outputs.size(); ++I)
    Outputs[I] = Scratch[Entry.Outputs[I]];
}

void Interpreter::runFunction(const U0Function &F,
                              std::vector<SimdReg> &Regs) {
  const unsigned W = Words;
  const unsigned MBits = Prog.MBits;
  for (const U0Instr &I : F.Instrs) {
    switch (I.Op) {
    case U0Op::Mov:
      Regs[I.Dests[0]] = Regs[I.Srcs[0]];
      break;
    case U0Op::Const:
      if (Prog.Direction == Dir::Horiz && MBits > 1)
        simd::broadcastHorizontal(Regs[I.Dests[0]], I.Imm, W, MBits);
      else
        simd::broadcastVertical(Regs[I.Dests[0]], I.Imm, W, MBits);
      break;
    case U0Op::Not:
      simd::bitNot(Regs[I.Dests[0]], Regs[I.Srcs[0]], W);
      break;
    case U0Op::And:
      simd::bitAnd(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W);
      break;
    case U0Op::Or:
      simd::bitOr(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W);
      break;
    case U0Op::Xor:
      simd::bitXor(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W);
      break;
    case U0Op::Andn:
      simd::bitAndn(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W);
      break;
    case U0Op::Add:
      simd::addElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W,
                     MBits);
      break;
    case U0Op::Sub:
      simd::subElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W,
                     MBits);
      break;
    case U0Op::Mul:
      simd::mulElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], Regs[I.Srcs[1]], W,
                     MBits);
      break;
    case U0Op::Lshift:
      simd::shlElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], I.Amount, W, MBits);
      break;
    case U0Op::Rshift:
      simd::shrElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], I.Amount, W, MBits);
      break;
    case U0Op::Lrotate:
      simd::rotlElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], I.Amount, W,
                      MBits);
      break;
    case U0Op::Rrotate:
      simd::rotrElems(Regs[I.Dests[0]], Regs[I.Srcs[0]], I.Amount, W,
                      MBits);
      break;
    case U0Op::Shuffle:
      simd::shuffle(Regs[I.Dests[0]], Regs[I.Srcs[0]], I.Pattern.data(),
                    MBits, W);
      break;
    case U0Op::Call: {
      const U0Function &Callee = Prog.Funcs[I.Callee];
      std::vector<SimdReg> Frame(Callee.NumRegs);
      for (unsigned A = 0; A < Callee.NumInputs; ++A)
        Frame[A] = Regs[I.Srcs[A]];
      runFunction(Callee, Frame);
      for (size_t R = 0; R < I.Dests.size(); ++R)
        Regs[I.Dests[R]] = Frame[Callee.Outputs[R]];
      break;
    }
    case U0Op::Barrier:
      break;
    }
  }
}
