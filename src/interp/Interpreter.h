//===- Interpreter.h - Usuba0 reference execution ---------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct execution of Usuba0 kernels over the SIMD simulator. This is
/// the semantic reference for the whole system: the C backend, every
/// optimization pass and every cipher test validate against it (and it
/// validates against independent cipher implementations).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_INTERP_INTERPRETER_H
#define USUBA_INTERP_INTERPRETER_H

#include "core/Usuba0.h"
#include "interp/SimdReg.h"

#include <vector>

namespace usuba {

/// Executes the entry function of an Usuba0 program. One instance owns
/// scratch space sized for the program, so repeated runs do not allocate.
class Interpreter {
public:
  explicit Interpreter(const U0Program &Prog);

  /// Runs the entry kernel: \p Inputs must hold entry().NumInputs
  /// registers, \p Outputs receives entry().Outputs.size() registers.
  void run(const SimdReg *Inputs, SimdReg *Outputs);

  unsigned numInputs() const { return Prog.entry().NumInputs; }
  unsigned numOutputs() const {
    return static_cast<unsigned>(Prog.entry().Outputs.size());
  }

  /// Effective register width in 64-bit words (from the target
  /// architecture).
  unsigned widthWords() const { return Words; }

private:
  void runFunction(const U0Function &F, std::vector<SimdReg> &Regs);

  const U0Program &Prog;
  unsigned Words;
  std::vector<SimdReg> Scratch; ///< entry frame, reused across runs
};

} // namespace usuba

#endif // USUBA_INTERP_INTERPRETER_H
