//===- SimdReg.cpp - Portable SIMD register simulator ---------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/SimdReg.h"

using namespace usuba;

/// A word whose every m-bit element equals \p Elem.
static uint64_t repeatElem(uint64_t Elem, unsigned MBits) {
  if (MBits == 64)
    return Elem;
  uint64_t Word = 0;
  for (unsigned Low = 0; Low < 64; Low += MBits)
    Word |= Elem << Low;
  return Word;
}

void simd::addElems(SimdReg &D, const SimdReg &A, const SimdReg &B,
                    unsigned W, unsigned MBits) {
  assert(isPowerOf2(MBits) && MBits <= 64 && "unsupported element size");
  if (MBits == 64) {
    for (unsigned I = 0; I < W; ++I)
      D.Words[I] = A.Words[I] + B.Words[I];
    return;
  }
  // Carry isolation: add the low m-1 bits, then fix the top bit with xor.
  uint64_t High = repeatElem(uint64_t{1} << (MBits - 1), MBits);
  for (unsigned I = 0; I < W; ++I) {
    uint64_t X = A.Words[I], Y = B.Words[I];
    D.Words[I] = ((X & ~High) + (Y & ~High)) ^ ((X ^ Y) & High);
  }
}

void simd::subElems(SimdReg &D, const SimdReg &A, const SimdReg &B,
                    unsigned W, unsigned MBits) {
  assert(isPowerOf2(MBits) && MBits <= 64 && "unsupported element size");
  if (MBits == 64) {
    for (unsigned I = 0; I < W; ++I)
      D.Words[I] = A.Words[I] - B.Words[I];
    return;
  }
  // a - b = a + ~b + 1, elementwise: use the borrow-isolation dual of the
  // addition formula.
  uint64_t High = repeatElem(uint64_t{1} << (MBits - 1), MBits);
  for (unsigned I = 0; I < W; ++I) {
    uint64_t X = A.Words[I], Y = B.Words[I];
    uint64_t Diff = (X | High) - (Y & ~High);
    D.Words[I] = Diff ^ ((X ^ ~Y) & High);
  }
}

void simd::mulElems(SimdReg &D, const SimdReg &A, const SimdReg &B,
                    unsigned W, unsigned MBits) {
  assert(isPowerOf2(MBits) && MBits <= 64 && "unsupported element size");
  SimdReg Out{};
  for (unsigned Low = 0; Low < W * 64; Low += MBits) {
    uint64_t X = A.field(Low, MBits);
    uint64_t Y = B.field(Low, MBits);
    Out.setField(Low, MBits, (X * Y) & lowBitMask(MBits));
  }
  D = Out;
}

void simd::shlElems(SimdReg &D, const SimdReg &A, unsigned Amount,
                    unsigned W, unsigned MBits) {
  assert(isPowerOf2(MBits) && MBits <= 64 && "unsupported element size");
  if (Amount >= MBits) {
    for (unsigned I = 0; I < W; ++I)
      D.Words[I] = 0;
    return;
  }
  // Shift whole words, then clear the bits that crossed an element
  // boundary: surviving bits of each element are those at positions
  // >= Amount.
  uint64_t Keep = repeatElem((lowBitMask(MBits) << Amount) &
                                 lowBitMask(MBits),
                             MBits);
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = (A.Words[I] << Amount) & Keep;
}

void simd::shrElems(SimdReg &D, const SimdReg &A, unsigned Amount,
                    unsigned W, unsigned MBits) {
  assert(isPowerOf2(MBits) && MBits <= 64 && "unsupported element size");
  if (Amount >= MBits) {
    for (unsigned I = 0; I < W; ++I)
      D.Words[I] = 0;
    return;
  }
  uint64_t Keep = repeatElem(lowBitMask(MBits) >> Amount, MBits);
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = (A.Words[I] >> Amount) & Keep;
}

void simd::rotlElems(SimdReg &D, const SimdReg &A, unsigned Amount,
                     unsigned W, unsigned MBits) {
  Amount %= MBits;
  if (Amount == 0) {
    for (unsigned I = 0; I < W; ++I)
      D.Words[I] = A.Words[I];
    return;
  }
  SimdReg Hi, Lo;
  shlElems(Hi, A, Amount, W, MBits);
  shrElems(Lo, A, MBits - Amount, W, MBits);
  bitOr(D, Hi, Lo, W);
}

void simd::rotrElems(SimdReg &D, const SimdReg &A, unsigned Amount,
                     unsigned W, unsigned MBits) {
  Amount %= MBits;
  rotlElems(D, A, Amount == 0 ? 0 : MBits - Amount, W, MBits);
}

void simd::shuffle(SimdReg &D, const SimdReg &A, const uint8_t *Pattern,
                   unsigned MBits, unsigned W) {
  unsigned GroupBits = (W * 64) / MBits;
  assert(GroupBits >= 1 && GroupBits * MBits == W * 64 &&
         "atom size must divide the register width");
  SimdReg Out{};
  for (unsigned J = 0; J < MBits; ++J) {
    if (Pattern[J] == 0xFF)
      continue;
    unsigned From = Pattern[J] * GroupBits;
    unsigned To = J * GroupBits;
    if (GroupBits >= 64) {
      assert(GroupBits % 64 == 0 && From % 64 == 0 && To % 64 == 0 &&
             "group straddles words");
      for (unsigned K = 0; K < GroupBits / 64; ++K)
        Out.Words[To / 64 + K] = A.Words[From / 64 + K];
    } else {
      Out.setField(To, GroupBits, A.field(From, GroupBits));
    }
  }
  D = Out;
}

void simd::broadcastVertical(SimdReg &D, uint64_t Imm, unsigned W,
                             unsigned MBits) {
  uint64_t Word = repeatElem(Imm & lowBitMask(MBits), MBits);
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = Word;
}

void simd::broadcastHorizontal(SimdReg &D, uint64_t Imm, unsigned W,
                               unsigned MBits) {
  unsigned GroupBits = (W * 64) / MBits;
  D = SimdReg{};
  for (unsigned J = 0; J < MBits; ++J) {
    if (!getBit(Imm, MBits - 1 - J))
      continue;
    unsigned To = J * GroupBits;
    if (GroupBits >= 64) {
      for (unsigned K = 0; K < GroupBits / 64; ++K)
        D.Words[To / 64 + K] = ~uint64_t{0};
    } else {
      D.setField(To, GroupBits, lowBitMask(GroupBits));
    }
  }
}
