//===- SimdReg.h - Portable SIMD register simulator -------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A portable simulation of one SIMD register of up to 512 bits, with the
/// operations Usuba0 needs: bitwise logic, vertical (packed) arithmetic
/// and shifts on m-bit elements, and horizontal element shuffles. This is
/// the substitution for running on the paper's Intel SIMD testbed: the
/// native C backend uses real intrinsics when a host compiler is
/// available, while this simulator guarantees that every kernel runs —
/// bit-exactly — everywhere.
///
/// Layout conventions (shared with runtime/Layout.h):
///  * vertical element e (one slice) occupies bits [e*m, (e+1)*m);
///  * horizontal position j (one atom bit, vector index j = the atom's
///    MSB at j = 0) occupies bits [j*g, (j+1)*g) where g = width/m.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_INTERP_SIMDREG_H
#define USUBA_INTERP_SIMDREG_H

#include "support/BitUtils.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>

namespace usuba {

/// One simulated register. Capacity is fixed at 512 bits; the effective
/// width is carried by the operations (the interpreter knows the target).
struct SimdReg {
  static constexpr unsigned MaxWords = 8;
  std::array<uint64_t, MaxWords> Words{};

  static SimdReg zero() { return SimdReg{}; }

  bool operator==(const SimdReg &O) const { return Words == O.Words; }

  /// Gets/sets a single bit (LSB-first across words). \p Value must be 0
  /// or 1. Branchless: transposition runs on secret data, so even the
  /// packing code must not branch on bit values (our dudect harness
  /// catches the data-dependent branch-predictor timing otherwise).
  uint64_t bit(unsigned Index) const {
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }
  void setBit(unsigned Index, uint64_t Value) {
    assert(Value <= 1 && "setBit takes a single bit");
    uint64_t &Word = Words[Index / 64];
    unsigned Shift = Index % 64;
    Word = (Word & ~(uint64_t{1} << Shift)) | (Value << Shift);
  }

  /// Extracts the \p Bits-wide field starting at bit \p Low (field must
  /// not straddle a word boundary; all Usuba element sizes are powers of
  /// two, so they never do).
  uint64_t field(unsigned Low, unsigned Bits) const {
    assert(Low / 64 == (Low + Bits - 1) / 64 && "field straddles words");
    return (Words[Low / 64] >> (Low % 64)) & lowBitMask(Bits);
  }
  void setField(unsigned Low, unsigned Bits, uint64_t Value) {
    assert(Low / 64 == (Low + Bits - 1) / 64 && "field straddles words");
    uint64_t Mask = lowBitMask(Bits) << (Low % 64);
    Words[Low / 64] =
        (Words[Low / 64] & ~Mask) | ((Value << (Low % 64)) & Mask);
  }
};

/// The register-wide operations, parameterized by the effective width in
/// 64-bit words (W) and the element size m where relevant. Results only
/// depend on the low W*64 bits; higher bits are left zero.
namespace simd {

inline void bitAnd(SimdReg &D, const SimdReg &A, const SimdReg &B,
                   unsigned W) {
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = A.Words[I] & B.Words[I];
}
inline void bitOr(SimdReg &D, const SimdReg &A, const SimdReg &B,
                  unsigned W) {
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = A.Words[I] | B.Words[I];
}
inline void bitXor(SimdReg &D, const SimdReg &A, const SimdReg &B,
                   unsigned W) {
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = A.Words[I] ^ B.Words[I];
}
inline void bitNot(SimdReg &D, const SimdReg &A, unsigned W) {
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = ~A.Words[I];
}
inline void bitAndn(SimdReg &D, const SimdReg &A, const SimdReg &B,
                    unsigned W) {
  for (unsigned I = 0; I < W; ++I)
    D.Words[I] = ~A.Words[I] & B.Words[I];
}

/// Packed addition of m-bit elements (m a power of two <= 64): the
/// classic carry-isolation formula keeps carries from crossing element
/// boundaries.
void addElems(SimdReg &D, const SimdReg &A, const SimdReg &B, unsigned W,
              unsigned MBits);
void subElems(SimdReg &D, const SimdReg &A, const SimdReg &B, unsigned W,
              unsigned MBits);
void mulElems(SimdReg &D, const SimdReg &A, const SimdReg &B, unsigned W,
              unsigned MBits);

/// Packed logical shifts / rotates of m-bit elements.
void shlElems(SimdReg &D, const SimdReg &A, unsigned Amount, unsigned W,
              unsigned MBits);
void shrElems(SimdReg &D, const SimdReg &A, unsigned Amount, unsigned W,
              unsigned MBits);
void rotlElems(SimdReg &D, const SimdReg &A, unsigned Amount, unsigned W,
               unsigned MBits);
void rotrElems(SimdReg &D, const SimdReg &A, unsigned Amount, unsigned W,
               unsigned MBits);

/// Horizontal shuffle: position j of the result takes position
/// Pattern[j] of A (0xFF = zero). Positions are g-bit groups with
/// g = (W*64)/MBits.
void shuffle(SimdReg &D, const SimdReg &A, const uint8_t *Pattern,
             unsigned MBits, unsigned W);

/// Broadcast of an atom constant (see SimdReg.h conventions):
/// vertical — every m-bit element receives Imm; horizontal — position j
/// is filled with ones when bit (m-1-j) of Imm is set.
void broadcastVertical(SimdReg &D, uint64_t Imm, unsigned W,
                       unsigned MBits);
void broadcastHorizontal(SimdReg &D, uint64_t Imm, unsigned W,
                         unsigned MBits);

} // namespace simd
} // namespace usuba

#endif // USUBA_INTERP_SIMDREG_H
